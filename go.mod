module angstrom

go 1.22

// Top-level benchmarks: one per table/figure of the paper's evaluation,
// plus ablations for the design choices DESIGN.md calls out. Each bench
// regenerates its artifact end to end, so `go test -bench . -benchmem`
// doubles as the reproduction driver; per-figure data lands in
// EXPERIMENTS.md via cmd/figures.
package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"angstrom/internal/actuator"
	"angstrom/internal/angstrom"
	"angstrom/internal/cache"
	"angstrom/internal/core"
	"angstrom/internal/experiment"
	"angstrom/internal/heartbeat"
	"angstrom/internal/journal"
	"angstrom/internal/noc"
	"angstrom/internal/scenario"
	"angstrom/internal/server"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
	"angstrom/internal/xeon"
)

// BenchmarkFigure2 regenerates Figure 2: the barnes cores × cache sweep
// on the trace-driven simulator, with Pareto frontier and closed-system
// choices.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig2(experiment.Fig2Options{Accesses: 30000})
		if err != nil {
			b.Fatal(err)
		}
		cacheOff, coreOff := res.OffFrontier()
		if len(cacheOff) == 0 && len(coreOff) == 0 {
			b.Fatal("closed systems landed on the frontier")
		}
	}
}

// BenchmarkFigure3 regenerates Figure 3: five benchmarks × five systems
// on the Linux/x86 server model (shortened runs; cmd/figures runs the
// full length).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig3(experiment.Fig3Options{DurationS: 30, WarmupS: 10})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 5 {
			b.Fatal("missing benchmarks")
		}
	}
}

// BenchmarkFigure4 regenerates Figure 4: the 256-core Angstrom sweep and
// projection (and the §5.3 in-text numbers).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunFig4(1.15)
		if err != nil {
			b.Fatal(err)
		}
		if res.NoAdaptCfg.Cores != 64 {
			b.Fatalf("non-adaptive config drifted to %d cores", res.NoAdaptCfg.Cores)
		}
	}
}

// BenchmarkSEECLoop measures one observe-decide iteration of the SEEC
// runtime — the recurring cost the partner cores exist to absorb (§4.3).
func BenchmarkSEECLoop(b *testing.B) {
	clock := sim.NewClock(0)
	p := xeon.DefaultParams()
	srv, err := xeon.NewServer(p, xeon.Config{Cores: 1, PState: 0, Duty: 10}, clock)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.ByName("barnes")
	if err != nil {
		b.Fatal(err)
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter))
	srv.Attach(workload.NewInstance(spec, 1), mon)
	mon.SetPerformanceGoal(1000, 1100)
	acts, err := srv.Actuators()
	if err != nil {
		b.Fatal(err)
	}
	space, err := actuator.NewSpace(acts...)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := core.New("bench", clock, mon, space, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.RunInterval(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUncoordinated is ablation A1: the per-knob multi-runtime
// baseline's decision cost (it runs one full runtime per actuator).
func BenchmarkUncoordinated(b *testing.B) {
	clock := sim.NewClock(0)
	p := xeon.DefaultParams()
	srv, err := xeon.NewServer(p, xeon.Config{Cores: 1, PState: 0, Duty: 10}, clock)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.ByName("water")
	if err != nil {
		b.Fatal(err)
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter))
	srv.Attach(workload.NewInstance(spec, 1), mon)
	mon.SetPerformanceGoal(1000, 1100)
	acts, err := srv.Actuators()
	if err != nil {
		b.Fatal(err)
	}
	space, err := actuator.NewSpace(acts...)
	if err != nil {
		b.Fatal(err)
	}
	u, err := core.NewUncoordinated("bench", clock, mon, space, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.RunInterval(1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := u.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartnerCore is ablation A2: decision workload on the partner
// core vs the main core (§4.3's 10%-power claim).
func BenchmarkPartnerCore(b *testing.B) {
	var cf angstrom.CounterFile
	q, err := angstrom.NewEventQueue(16)
	if err != nil {
		b.Fatal(err)
	}
	pc, err := angstrom.NewPartnerCore(angstrom.VFPoints()[1], angstrom.DefaultCoreEnergy(), &cf, q)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("partner", func(b *testing.B) {
		j := 0.0
		for i := 0; i < b.N; i++ {
			j += pc.RunDecision(50_000).Joules
		}
		_ = j
	})
	b.Run("main", func(b *testing.B) {
		j := 0.0
		for i := 0; i < b.N; i++ {
			j += pc.RunDecisionOnMain(50_000).Joules
		}
		_ = j
	})
}

// BenchmarkNoCAdaptations is ablation A3: mesh latency evaluation with
// each §4.2.2 feature toggled.
func BenchmarkNoCAdaptations(b *testing.B) {
	run := func(b *testing.B, evc, ban, aor bool) {
		cfg := noc.DefaultConfig(16, 16)
		cfg.EVC, cfg.BAN = evc, ban
		m, err := noc.NewMesh(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for i := 1; i < 15; i++ {
			if err := m.SetFlow(i, 255-i, 0.1); err != nil {
				b.Fatal(err)
			}
		}
		if aor {
			m.OptimizeAOR()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if m.AvgFlowLatency() <= 0 {
				b.Fatal("no latency")
			}
		}
	}
	b.Run("baseline", func(b *testing.B) { run(b, false, false, false) })
	b.Run("evc", func(b *testing.B) { run(b, true, false, false) })
	b.Run("evc+ban", func(b *testing.B) { run(b, true, true, false) })
	b.Run("evc+ban+aor", func(b *testing.B) { run(b, true, true, true) })
}

// BenchmarkCoherenceProtocols is ablation A4: per-access cost of the
// three coherence protocols on a mixed sharing pattern.
func BenchmarkCoherenceProtocols(b *testing.B) {
	const tiles = 16
	newCaches := func() []*cache.Cache {
		out := make([]*cache.Cache, tiles)
		for i := range out {
			c, err := cache.New(64, 8, 64)
			if err != nil {
				b.Fatal(err)
			}
			out[i] = c
		}
		return out
	}
	nm, err := noc.NewMesh(noc.DefaultConfig(4, 4))
	if err != nil {
		b.Fatal(err)
	}
	adapter := meshAdapter{nm}
	run := func(b *testing.B, p cache.Protocol) {
		rng := sim.NewRNG(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core := rng.Intn(tiles)
			var line uint64
			if i%2 == 0 {
				line = uint64(rng.Intn(4096)) // shared
			} else {
				line = uint64(core*100000 + rng.Intn(256)) // private
			}
			p.Access(core, line, rng.Float64() < 0.3)
		}
	}
	dir, err := cache.NewDirectory(newCaches(), adapter, 2, 100)
	if err != nil {
		b.Fatal(err)
	}
	nuca, err := cache.NewNUCA(newCaches(), adapter, 2, 100)
	if err != nil {
		b.Fatal(err)
	}
	arcc, err := cache.NewAdaptive(dir, nuca, 4096, 500)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("directory", func(b *testing.B) { run(b, dir) })
	b.Run("nuca", func(b *testing.B) { run(b, nuca) })
	b.Run("arcc", func(b *testing.B) { run(b, arcc) })
}

// BenchmarkDetailedAccess measures one warmed coherence-protocol access
// over the real mesh — the innermost operation of the trace-driven
// sweep (EvaluateDetailed performs exactly one per trace element). The
// sharded open-addressing directory, uint64 sharer bitsets, and the
// mesh's memoized per-pair latency table make the steady state
// allocation-free; the acceptance gate for this bench is 0 allocs/op.
func BenchmarkDetailedAccess(b *testing.B) {
	const tiles = 16
	newCaches := func() []*cache.Cache {
		out := make([]*cache.Cache, tiles)
		for i := range out {
			c, err := cache.New(64, 8, 64)
			if err != nil {
				b.Fatal(err)
			}
			out[i] = c
		}
		return out
	}
	run := func(b *testing.B, p cache.Protocol) {
		rng := sim.NewRNG(3)
		access := func(i int) {
			core := rng.Intn(tiles)
			var line uint64
			if i%2 == 0 {
				line = uint64(rng.Intn(4096)) // shared
			} else {
				line = uint64(core*100000 + rng.Intn(256)) // private
			}
			p.Access(core, line, rng.Float64() < 0.3)
		}
		// Warm until the directory table and latency memos stop growing.
		for i := 0; i < 200000; i++ {
			access(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			access(i)
		}
	}
	b.Run("directory", func(b *testing.B) {
		nm, err := noc.NewMesh(noc.DefaultConfig(4, 4))
		if err != nil {
			b.Fatal(err)
		}
		dir, err := cache.NewDirectory(newCaches(), meshAdapter{nm}, 2, 100)
		if err != nil {
			b.Fatal(err)
		}
		run(b, dir)
	})
	b.Run("nuca", func(b *testing.B) {
		nm, err := noc.NewMesh(noc.DefaultConfig(4, 4))
		if err != nil {
			b.Fatal(err)
		}
		nuca, err := cache.NewNUCA(newCaches(), meshAdapter{nm}, 2, 100)
		if err != nil {
			b.Fatal(err)
		}
		run(b, nuca)
	})
}

// meshAdapter bridges noc.Mesh to cache.Network for the benches.
type meshAdapter struct{ m *noc.Mesh }

func (a meshAdapter) LatencyCycles(src, dst int) float64 { return a.m.LatencyCycles(src, dst) }
func (a meshAdapter) Hops(src, dst int) int              { return a.m.Hops(src, dst) }

// BenchmarkChipEvaluate measures the interval chip model — the inner
// loop of every Figure-4 sweep.
func BenchmarkChipEvaluate(b *testing.B) {
	p := angstrom.DefaultParams()
	spec, err := workload.ByName("ocean")
	if err != nil {
		b.Fatal(err)
	}
	cfg := angstrom.Config{Cores: 256, CacheKB: 64, VF: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := angstrom.Evaluate(p, spec, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChipEvaluateDetailed measures the trace-driven mode — the
// inner loop of Figure 2.
func BenchmarkChipEvaluateDetailed(b *testing.B) {
	p := angstrom.DefaultParams()
	spec, err := workload.ByName("barnes")
	if err != nil {
		b.Fatal(err)
	}
	cfg := angstrom.Config{Cores: 16, CacheKB: 64, VF: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := angstrom.EvaluateDetailed(p, spec, cfg, 20000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Serving daemon benchmarks (PR 2) -------------------------------
//
// The daemon's two hot paths: beat ingestion (per-request) and the ODA
// tick (per decision period, scanning every enrolled application).

// newBenchDaemon builds an accelerated daemon with n enrolled apps.
func newBenchDaemon(b *testing.B, n int) *server.Daemon {
	b.Helper()
	d, err := server.NewDaemon(server.Config{Cores: 4096, Accel: 0.1, Period: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < n; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%04d", i),
			Workload: names[i%len(names)],
			MinRate:  50,
			MaxRate:  70,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// BenchmarkDaemonBeat measures direct beat ingestion — registry lookup
// plus the O(1) monitor ring insert — under full parallel contention.
func BenchmarkDaemonBeat(b *testing.B) {
	d := newBenchDaemon(b, 64)
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		name := fmt.Sprintf("app-%04d", next.Add(1)%64)
		for pb.Next() {
			if err := d.Beat(name, 1, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDaemonHTTPBeats measures the full request path of the
// daemon's hottest endpoint: JSON decode, registry lookup, a 10-beat
// batch, JSON-free 202.
func BenchmarkDaemonHTTPBeats(b *testing.B) {
	d := newBenchDaemon(b, 8)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	body := []byte(`{"count": 10}`)
	url := ts.URL + "/v1/apps/app-0000/beats"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkBeatIngestWire measures the binary beat wire path end to
// end over a real TCP connection: 100-beat frames streamed unack'd,
// decoded by the server into the monitor ring through the same ingest
// helpers as the JSON path. Gated against BenchmarkDaemonHTTPBeats
// (the acceptance bar is ≥5x its beats/s) and at ~0 allocs/op — both
// sides of the warm path run on reused buffers.
func BenchmarkBeatIngestWire(b *testing.B) {
	d := newBenchDaemon(b, 8)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ws := server.NewWireServer(d, ln)
	go ws.Serve()
	defer ws.Close()
	wc, err := server.DialWire(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer wc.Close()
	h, err := wc.Hello("app-0000")
	if err != nil {
		b.Fatal(err)
	}
	const batch = 100
	// Warm the reusable buffers on both ends before the timed region.
	if err := wc.Beats(h, batch, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := wc.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wc.Beats(h, batch, 0); err != nil {
			b.Fatal(err)
		}
	}
	// The flush barrier inside the timed region makes the metric honest:
	// every streamed beat has been decoded and counted by the server.
	total, err := wc.Flush()
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if want := uint64(batch) * uint64(b.N+1); total != want {
		b.Fatalf("flush ack %d, want %d", total, want)
	}
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "beats/s")
}

// BenchmarkBeatIngestWireParallel is the multi-core variant: one
// connection and one target app per worker, so ingestion throughput
// must scale with cores — distinct apps land on distinct monitor locks
// and (mostly) distinct shard counters.
func BenchmarkBeatIngestWireParallel(b *testing.B) {
	d := newBenchDaemon(b, 64)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	ws := server.NewWireServer(d, ln)
	go ws.Serve()
	defer ws.Close()
	nw := runtime.GOMAXPROCS(0)
	clients := make([]*server.WireClient, nw)
	handles := make([]uint32, nw)
	for i := range clients {
		wc, err := server.DialWire(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer wc.Close()
		h, err := wc.Hello(fmt.Sprintf("app-%04d", i%64))
		if err != nil {
			b.Fatal(err)
		}
		if err := wc.Beats(h, 100, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := wc.Flush(); err != nil {
			b.Fatal(err)
		}
		clients[i], handles[i] = wc, h
	}
	const batch = 100
	var next atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := int(next.Add(1)-1) % nw
		wc, h := clients[i], handles[i]
		for pb.Next() {
			if err := wc.Beats(h, batch, 0); err != nil {
				b.Error(err)
				return
			}
		}
		if _, err := wc.Flush(); err != nil {
			b.Error(err)
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "beats/s")
}

// BenchmarkDaemonTick1000 measures one ODA decision period over 1000
// enrolled applications: manager water-filling plus 1000 SEEC runtime
// steps.
func BenchmarkDaemonTick1000(b *testing.B) {
	d := newBenchDaemon(b, 1000)
	for i := 0; i < 1000; i++ {
		if err := d.Beat(fmt.Sprintf("app-%04d", i), 8, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick()
	}
}

// BenchmarkDaemonTick10k gates fleet-scale serving (the PR 5 sharding
// work): one decision period over 10,000 enrolled applications on an
// oversubscribed 4096-core pool. The pre-shard daemon (single mutex
// directory, full O(n·cores) re-price and re-sort every tick) took
// ~28.3ms here; the acceptance gate is ≥5x faster. The incremental
// manager re-prices only apps whose demand inputs moved, the decide
// phase skips quiescent apps, and the sharded directory keeps beat
// ingestion off every lock the tick takes.
func BenchmarkDaemonTick10k(b *testing.B) {
	d, err := server.NewDaemon(server.Config{
		Cores: 4096, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < 10000; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%05d", i),
			Workload: names[i%len(names)],
			MinRate:  50,
			MaxRate:  70,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		if err := d.Beat(fmt.Sprintf("app-%05d", i), 8, 0); err != nil {
			b.Fatal(err)
		}
	}
	d.Tick() // warm: first decisions for the whole fleet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick()
	}
}

// BenchmarkDaemonTick10kActive is the companion worst case: every app
// beats every period, so nothing is quiescent and every demand is
// re-priced — the bound the incremental machinery cannot skip past.
func BenchmarkDaemonTick10kActive(b *testing.B) {
	d, err := server.NewDaemon(server.Config{
		Cores: 4096, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < 10000; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%05d", i),
			Workload: names[i%len(names)],
			MinRate:  50,
			MaxRate:  70,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	d.Tick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 10000; j++ {
			if err := d.Beat(fmt.Sprintf("app-%05d", j), 6, 0); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		d.Tick()
	}
}

// BenchmarkDaemonTick10kJournaled is the durable-serving gate: the same
// 10k-app decision period with the journal enabled. The tick path only
// buffers its epoch record (no I/O, no fsync — the background flusher
// owns durability), so journaling must cost the tick nearly nothing
// next to BenchmarkDaemonTick10k.
func BenchmarkDaemonTick10kJournaled(b *testing.B) {
	d, err := server.NewDaemon(server.Config{
		Cores: 4096, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
		DataDir: "j", FS: journal.NewMemFS(), SnapshotEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < 10000; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%05d", i),
			Workload: names[i%len(names)],
			MinRate:  50,
			MaxRate:  70,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		if err := d.Beat(fmt.Sprintf("app-%05d", i), 8, 0); err != nil {
			b.Fatal(err)
		}
	}
	d.Tick()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick()
	}
	b.StopTimer()
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalAppend gates the journal's hot-path entry: appending
// one framed record is pure buffering — no I/O, no fsync, amortized
// zero allocations — so beats and tick records can journal from the
// serving path without touching the disk.
func BenchmarkJournalAppend(b *testing.B) {
	w, err := journal.NewWriter(journal.NewMemFS(), "j", 0, journal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"op":"beat","t":123.456,"name":"app-01234","count":8}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append(payload); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			b.StopTimer() // drain so the buffer doesn't grow with b.N
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// BenchmarkRecovery10k measures cold boot from a durable control plane:
// recover the journal and replay 10,000 enrollments back into the
// sharded directory and the manager.
func BenchmarkRecovery10k(b *testing.B) {
	fs := journal.NewMemFS()
	cfg := server.Config{
		Cores: 4096, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
		DataDir: "j", FS: fs, SnapshotEvery: -1, JournalFlush: -1,
	}
	d, err := server.NewDaemon(cfg)
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < 10000; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%05d", i),
			Workload: names[i%len(names)],
			MinRate:  50,
			MaxRate:  70,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		boot := cfg
		boot.FS = fs.Crash(0)
		r, err := server.NewDaemon(boot)
		if err != nil {
			b.Fatal(err)
		}
		if r.RecoveryInfo().Apps != 10000 {
			b.Fatal("fleet not fully restored")
		}
	}
}

// BenchmarkMonitorBeatWindow4096 gates the circular-buffer fix: the
// per-beat cost must not scale with the window (the pre-PR-2 ring
// shifted O(window) records per beat).
func BenchmarkMonitorBeatWindow4096(b *testing.B) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock, heartbeat.WithWindow(4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(1e-6)
		mon.Beat()
	}
}

// --- Chip-backed serving benchmarks (PR 3) --------------------------
//
// The chip-backed daemon's hot paths: the per-app Sensor read (gated at
// 0 allocs/op — it sits on every status request and every budget
// rebalance) and the full chip-backed ODA tick, which executes every
// partition's schedule, emits its heartbeats, water-fills the pool, and
// steps every decision engine.

// newChipBenchDaemon builds an accelerated chip-backed daemon with n
// enrolled apps holding partitions of one shared chip.
func newChipBenchDaemon(b *testing.B, n, tiles int) *server.Daemon {
	b.Helper()
	d, err := server.NewDaemon(server.Config{
		Cores: tiles, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
		Chip: &server.ChipConfig{Tiles: tiles},
	})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < n; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%04d", i),
			Workload: names[i%len(names)],
			Window:   256,
			MinRate:  20,
			MaxRate:  30,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// BenchmarkPartitionSense gates the per-app observe path of chip-backed
// serving at 0 allocs/op: one Sensor sample off the shared chip.
func BenchmarkPartitionSense(b *testing.B) {
	sc, err := angstrom.NewSharedChip(angstrom.DefaultParams(), 64)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := workload.ByName("barnes")
	if err != nil {
		b.Fatal(err)
	}
	mon := heartbeat.New(sim.NewClock(0))
	pt, err := sc.Acquire("bench", workload.NewInstance(spec, 1), mon,
		angstrom.Config{Cores: 4, CacheKB: 64, VF: 0}, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	var ips float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ips += pt.Sense().IPS
	}
	_ = ips
}

// BenchmarkDaemonChipTick256 measures one chip-backed decision period
// over 256 partitions of a 1024-tile chip: schedule execution + beat
// emission + water-filling + 256 runtime steps.
func BenchmarkDaemonChipTick256(b *testing.B) {
	d := newChipBenchDaemon(b, 256, 1024)
	d.Tick() // warm: first decisions, initial knob moves
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick()
	}
}

// BenchmarkDaemonChipTickOversub measures the oversubscribed variant:
// 128 partitions time-sharing a 32-tile chip, so every tick also
// rebalances fractional shares through the ledger.
func BenchmarkDaemonChipTickOversub(b *testing.B) {
	d := newChipBenchDaemon(b, 128, 32)
	d.Tick()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick()
	}
}

// newFederatedBenchDaemon builds an accelerated four-die fleet with n
// chip-backed apps spread across it by the interference-aware placer.
func newFederatedBenchDaemon(b *testing.B, n int) *server.Daemon {
	b.Helper()
	d, err := server.NewDaemon(server.Config{
		Cores: 4096, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
		Chip: &server.ChipConfig{Chips: 4, Tiles: 1024},
	})
	if err != nil {
		b.Fatal(err)
	}
	names := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < n; i++ {
		err := d.Enroll(server.EnrollRequest{
			Name:     fmt.Sprintf("app-%05d", i),
			Workload: names[i%len(names)],
			Window:   256,
			MinRate:  20,
			MaxRate:  30,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return d
}

// BenchmarkDaemonTickFederated gates fleet-scale federated serving: one
// decision period over 10,000 chip-backed applications placed across a
// four-die fleet (2,500 partitions per 1,024-tile die, oversubscribed).
// Each tick runs every die's contention pass, executes every
// partition's schedule, splits the core budget through the broker's
// per-die managers, and runs the migration scan — the whole multi-chip
// tick pipeline, so a regression here means federation made serving
// itself slower.
func BenchmarkDaemonTickFederated(b *testing.B) {
	d := newFederatedBenchDaemon(b, 10000)
	d.Tick() // warm: first decisions for the whole fleet
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick()
	}
}

// BenchmarkPlacement gates the interference-aware enroll path on a
// populated four-die fleet: one Enroll — the placer pricing the
// candidate's predicted mem/NoC contribution against every die's
// ledger, then partition acquire and manager add on the winner — plus
// the Withdraw that undoes it, with 2,000 standing tenants supplying
// the contention aggregates the placer ranks.
func BenchmarkPlacement(b *testing.B) {
	d := newFederatedBenchDaemon(b, 2000)
	d.Tick() // contention pass: the placer prices measured aggregates
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Enroll(server.EnrollRequest{
			Name: "probe", Workload: "ocean", Window: 256, MinRate: 20, MaxRate: 30,
		}); err != nil {
			b.Fatal(err)
		}
		if err := d.Withdraw("probe"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioFlashCrowd drives the builtin flash-crowd torture
// scenario (internal/scenario) end to end against a real daemon: a
// steady fleet, a 10x arrival burst in one tick, exponential decay, a
// mass withdrawal, and oracle-regret scoring of every tick. Gated in
// bench-compare: a slowdown here means the whole serve-observe-decide
// loop got slower under churn, not just one hot path.
func BenchmarkScenarioFlashCrowd(b *testing.B) {
	spec, err := scenario.ByName("flash-crowd")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := scenario.Run(spec, scenario.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Scorecard.CheckBudgets(spec.Budgets); err != nil {
			b.Fatal(err)
		}
	}
}

package cache

import "fmt"

// Adaptive is the ARCc-style adaptive coherence architecture (§4.2.2,
// [19]): it provides both a directory protocol and a shared-NUCA
// protocol over the same physical cache slices and selects, per
// application, whichever currently serves accesses with lower average
// latency.
//
// Selection is measurement-driven, modeled after shadow-tag monitoring:
// every access is performed by the active protocol (whose latency the
// core pays) and also replayed against the alternative's shadow state,
// so both protocols' steady-state costs are continuously known. At each
// epoch boundary the controller switches to the alternative if it has
// been cheaper by more than a hysteresis margin, paying a flush penalty
// — the real cost of migrating the on-chip data layout.
//
// In the Angstrom design this knob is exposed to SEEC like any other
// actuator; Adaptive is the hardware-autonomous policy it defaults to,
// and ForceProtocol is the software override.
type Adaptive struct {
	prots  [2]Protocol
	active int

	epochLen   int
	hysteresis float64
	forced     bool

	n            int
	cycles       [2]float64 // per-protocol latency this epoch
	switches     int
	flushPenalty float64
}

// NewAdaptive wraps a directory and a NUCA protocol. epochLen is the
// decision epoch in accesses.
func NewAdaptive(dir, nuca Protocol, epochLen int, flushPenaltyCycles float64) (*Adaptive, error) {
	if dir == nil || nuca == nil {
		return nil, fmt.Errorf("cache: adaptive protocol needs both protocols")
	}
	if epochLen < 16 {
		return nil, fmt.Errorf("cache: epoch %d too short", epochLen)
	}
	return &Adaptive{
		prots:        [2]Protocol{dir, nuca},
		epochLen:     epochLen,
		hysteresis:   0.95, // alternative must be >=5% better to switch
		flushPenalty: flushPenaltyCycles,
	}, nil
}

// Name implements Protocol.
func (a *Adaptive) Name() string { return "arcc(" + a.prots[a.active].Name() + ")" }

// Active returns the currently selected protocol's name.
func (a *Adaptive) Active() string { return a.prots[a.active].Name() }

// Switches reports how many protocol switches have occurred.
func (a *Adaptive) Switches() int { return a.switches }

// ForceProtocol pins the protocol by index (0 = directory, 1 = NUCA),
// disabling autonomous adaptation — this is the software-exposure path.
func (a *Adaptive) ForceProtocol(idx int) error {
	if idx < 0 || idx > 1 {
		return fmt.Errorf("cache: protocol index %d outside [0,1]", idx)
	}
	if idx != a.active {
		a.active = idx
		a.switches++
		a.n, a.cycles = 0, [2]float64{}
	}
	a.forced = true
	return nil
}

// Unforce re-enables autonomous adaptation.
func (a *Adaptive) Unforce() { a.forced = false }

// Access implements Protocol: the active protocol serves the access, the
// alternative's shadow state replays it, and epoch accounting may flip
// the selection.
func (a *Adaptive) Access(core int, line uint64, write bool) Outcome {
	out := a.prots[a.active].Access(core, line, write)
	shadow := a.prots[1-a.active].Access(core, line, write)
	if a.forced {
		return out
	}
	a.cycles[a.active] += out.Cycles
	a.cycles[1-a.active] += shadow.Cycles
	a.n++
	if a.n >= a.epochLen {
		if a.cycles[1-a.active] < a.cycles[a.active]*a.hysteresis {
			a.active = 1 - a.active
			a.switches++
			out.Cycles += a.flushPenalty
		}
		a.n, a.cycles = 0, [2]float64{}
	}
	return out
}

// FlushAll implements Protocol.
func (a *Adaptive) FlushAll() int {
	return a.prots[0].FlushAll() + a.prots[1].FlushAll()
}

// Stats implements Protocol, reporting the active protocol's counters
// (the shadow protocol's counters are monitoring state, not traffic).
func (a *Adaptive) Stats() Stats { return a.prots[a.active].Stats() }

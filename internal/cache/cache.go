// Package cache implements Angstrom's reconfigurable cache substrate
// (§4.2.1) and its adaptive coherence protocols (§4.2.2):
//
//   - a set-associative cache with way and set disabling, so the SEEC
//     runtime can shrink a core's L2 from 256 KB down to 16 KB "for the
//     same performance" at lower power [4];
//   - a voltage-scalable SRAM energy/latency model (the paper's cores
//     "need to feature voltage-scalable SRAMs");
//   - directory-based MSI, shared-NUCA, and ARCc-style adaptive
//     coherence that picks the better protocol per application [19].
package cache

import (
	"fmt"
	"math/bits"
)

// Stats counts cache events. All counters are cumulative.
type Stats struct {
	Accesses      uint64
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Writebacks    uint64
	Invalidations uint64
}

// MissRate returns misses/accesses (0 before any access).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line is one cache line's bookkeeping.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp
}

// Cache is a set-associative cache with run-time way and set disabling.
// Addresses are cache-line granular (the workload generators emit line
// addresses directly).
type Cache struct {
	totalSets int // physical sets
	ways      int // physical ways
	lineBytes int

	enabledWays int
	setShift    uint // sets disabled in powers of two: enabled = total >> shift

	sets  [][]line
	stamp uint64

	// stats sits on its own cache lines: a Cache belongs to one tile (and
	// under the parallel sweep engine to one worker), and its per-access
	// counter increments must not write-share a line with a neighbouring
	// tile's bookkeeping.
	_     [64]byte
	stats Stats
	_     [16]byte // round the 48-byte Stats up to a full line
}

// New builds a cache of sizeKB with the given associativity and line
// size. sizeKB must yield a power-of-two number of sets.
func New(sizeKB, ways, lineBytes int) (*Cache, error) {
	if sizeKB <= 0 || ways <= 0 || lineBytes <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry (%d KB, %d ways, %d B)", sizeKB, ways, lineBytes)
	}
	lines := sizeKB * 1024 / lineBytes
	if lines%ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, ways)
	}
	nsets := lines / ways
	if nsets == 0 || nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("cache: %d sets is not a power of two", nsets)
	}
	c := &Cache{
		totalSets: nsets, ways: ways, lineBytes: lineBytes,
		enabledWays: ways,
		sets:        make([][]line, nsets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, ways)
	}
	return c, nil
}

// Resize reconfigures the enabled portion: waysEnabled of the physical
// ways and totalSets>>setShift of the physical sets. Disabled lines are
// flushed (counted as evictions; dirty ones as writebacks).
func (c *Cache) Resize(waysEnabled int, setShift uint) error {
	if waysEnabled < 1 || waysEnabled > c.ways {
		return fmt.Errorf("cache: ways %d outside [1,%d]", waysEnabled, c.ways)
	}
	if c.totalSets>>setShift < 1 {
		return fmt.Errorf("cache: set shift %d disables every set", setShift)
	}
	c.enabledWays = waysEnabled
	c.setShift = setShift
	enabledSets := c.totalSets >> setShift
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			if !ln.valid {
				continue
			}
			if si >= enabledSets || wi >= waysEnabled {
				if ln.dirty {
					c.stats.Writebacks++
				}
				c.stats.Evictions++
				ln.valid = false
				ln.dirty = false
			}
		}
	}
	return nil
}

// EnabledKB reports the currently enabled capacity.
func (c *Cache) EnabledKB() int {
	return (c.totalSets >> c.setShift) * c.enabledWays * c.lineBytes / 1024
}

// SizeKB reports the physical capacity.
func (c *Cache) SizeKB() int { return c.totalSets * c.ways * c.lineBytes / 1024 }

// Ways reports physical associativity.
func (c *Cache) Ways() int { return c.ways }

// setIndex maps a line address to its (enabled) set.
func (c *Cache) setIndex(lineAddr uint64) int {
	enabled := uint64(c.totalSets >> c.setShift)
	return int(lineAddr & (enabled - 1))
}

func (c *Cache) tag(lineAddr uint64) uint64 {
	shift := uint(bits.TrailingZeros64(uint64(c.totalSets >> c.setShift)))
	return lineAddr >> shift
}

// AccessResult describes one access's outcome.
type AccessResult struct {
	Hit bool
	// Evicted is set when a valid line was displaced; EvictedLine is its
	// line address and EvictedDirty whether it needed a writeback.
	Evicted      bool
	EvictedLine  uint64
	EvictedDirty bool
}

// Access looks up lineAddr, filling it on a miss (allocate-on-miss for
// both reads and writes) and applying LRU replacement within the enabled
// ways. write marks the line dirty.
func (c *Cache) Access(lineAddr uint64, write bool) AccessResult {
	c.stats.Accesses++
	c.stamp++
	si := c.setIndex(lineAddr)
	tg := c.tag(lineAddr)
	set := c.sets[si]
	// Hit path.
	for wi := 0; wi < c.enabledWays; wi++ {
		if set[wi].valid && set[wi].tag == tg {
			set[wi].lru = c.stamp
			if write {
				set[wi].dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
	}
	// Miss: find a victim among enabled ways (invalid first, else LRU).
	c.stats.Misses++
	victim := 0
	var oldest uint64 = ^uint64(0)
	found := false
	for wi := 0; wi < c.enabledWays; wi++ {
		if !set[wi].valid {
			victim = wi
			found = true
			break
		}
		if set[wi].lru < oldest {
			oldest = set[wi].lru
			victim = wi
		}
	}
	res := AccessResult{}
	v := &set[victim]
	if !found && v.valid {
		res.Evicted = true
		res.EvictedDirty = v.dirty
		res.EvictedLine = c.reconstruct(v.tag, si)
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	*v = line{tag: tg, valid: true, dirty: write, lru: c.stamp}
	return res
}

// reconstruct rebuilds a line address from tag and set index.
func (c *Cache) reconstruct(tag uint64, setIdx int) uint64 {
	shift := uint(bits.TrailingZeros64(uint64(c.totalSets >> c.setShift)))
	return tag<<shift | uint64(setIdx)
}

// Contains reports whether lineAddr is currently cached (no LRU update).
func (c *Cache) Contains(lineAddr uint64) bool {
	si := c.setIndex(lineAddr)
	tg := c.tag(lineAddr)
	for wi := 0; wi < c.enabledWays; wi++ {
		if c.sets[si][wi].valid && c.sets[si][wi].tag == tg {
			return true
		}
	}
	return false
}

// Invalidate drops lineAddr if present (coherence), reporting whether it
// was present and dirty.
func (c *Cache) Invalidate(lineAddr uint64) (present, dirty bool) {
	si := c.setIndex(lineAddr)
	tg := c.tag(lineAddr)
	for wi := 0; wi < c.enabledWays; wi++ {
		ln := &c.sets[si][wi]
		if ln.valid && ln.tag == tg {
			present, dirty = true, ln.dirty
			ln.valid = false
			ln.dirty = false
			c.stats.Invalidations++
			return present, dirty
		}
	}
	return false, false
}

// Flush invalidates everything, counting writebacks for dirty lines.
func (c *Cache) Flush() (writebacks int) {
	for si := range c.sets {
		for wi := range c.sets[si] {
			ln := &c.sets[si][wi]
			if ln.valid {
				if ln.dirty {
					writebacks++
					c.stats.Writebacks++
				}
				ln.valid = false
				ln.dirty = false
			}
		}
	}
	return writebacks
}

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters (contents are preserved).
func (c *Cache) ResetStats() { c.stats = Stats{} }

package cache

import (
	"fmt"
	"math/bits"
)

// Network abstracts the on-chip interconnect for the coherence protocols
// (the noc package provides the real implementation; tests use stubs).
type Network interface {
	// LatencyCycles is the one-way latency of a message from tile src to
	// tile dst, in core cycles.
	LatencyCycles(src, dst int) float64
	// Hops is the path length in links, for energy accounting.
	Hops(src, dst int) int
}

// Outcome summarizes one memory access under a coherence protocol.
type Outcome struct {
	Cycles      float64 // total latency in cycles
	Flits       int     // network flits generated
	FlitHops    int     // Σ flits×hops, for network energy
	MemAccesses int     // off-chip accesses
	Hit         bool    // serviced on chip (any tile)
}

// Protocol is a cache-coherence protocol over a set of per-tile caches.
type Protocol interface {
	Name() string
	// Access performs a line-granular access from the given core.
	Access(core int, line uint64, write bool) Outcome
	// FlushAll invalidates every cached line (protocol switch), returning
	// the number of writebacks.
	FlushAll() int
	// Stats aggregates the underlying caches' counters.
	Stats() Stats
}

// Message sizing: control messages are one flit; a 64-byte line payload
// is 64/16 = 4 data flits plus the head flit.
const (
	ctrlFlits = 1
	dataFlits = 5
)

// ---------------------------------------------------------------------
// Directory-based MSI (Gupta et al. [13])
// ---------------------------------------------------------------------

// The directory state lives in a sharded open-addressing hash table
// instead of a Go map: the trace-driven simulator performs one directory
// lookup per memory access, and map[uint64]*dirEntry was both the
// dominant allocation source and the dominant lookup cost of the sweep.
// Sharers are uint64 bitsets (one word covers the ≤64-core paper
// configurations; wider chips get ⌈cores/64⌉ words per entry, stored
// flat), so invalidation broadcasts walk set bits instead of map keys
// and the whole hot path allocates nothing in steady state.

// dirShards is the shard count (power of two). Sharding keeps each
// open-addressing table small so growth rehashes stay short and cheap.
const dirShards = 16

// noOwner marks an entry without a dirty owner.
const noOwner = int32(-1)

// hashLine is a 64-bit finalizer (splitmix64) spreading line addresses
// across shards and slots.
func hashLine(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// dirShard is one open-addressing table: parallel slot arrays with
// linear probing. Entries are never individually deleted — an entry
// whose sharer set is empty and whose owner is clear behaves exactly
// like an absent one, and the address universe of a run is bounded — so
// there are no tombstones and probes stay short.
type dirShard struct {
	mask  uint64   // len(lines)-1; len is a power of two
	used  int      // occupied slots
	lines []uint64 // line address per slot
	state []uint8  // 0 = empty, 1 = occupied
	owner []int32  // dirty owner per slot, noOwner if none
	bits  []uint64 // sharer bitsets, nw words per slot
	nw    int      // bitset words per slot
}

const dirShardInitSlots = 64

func (s *dirShard) init(nw int) {
	s.nw = nw
	s.mask = dirShardInitSlots - 1
	s.used = 0
	s.lines = make([]uint64, dirShardInitSlots)
	s.state = make([]uint8, dirShardInitSlots)
	s.owner = make([]int32, dirShardInitSlots)
	s.bits = make([]uint64, dirShardInitSlots*nw)
}

// find returns the slot of line, creating it if needed (growing at ¾
// load so probe chains stay short).
func (s *dirShard) find(line uint64, h uint64) int {
	for {
		i := h & s.mask
		for s.state[i] != 0 {
			if s.lines[i] == line {
				return int(i)
			}
			i = (i + 1) & s.mask
		}
		if uint64(s.used+1) <= (s.mask+1)*3/4 {
			s.state[i] = 1
			s.lines[i] = line
			s.owner[i] = noOwner
			s.used++
			return int(i)
		}
		s.grow()
	}
}

// lookup returns the slot of line, or -1 if absent.
func (s *dirShard) lookup(line uint64, h uint64) int {
	i := h & s.mask
	for s.state[i] != 0 {
		if s.lines[i] == line {
			return int(i)
		}
		i = (i + 1) & s.mask
	}
	return -1
}

// grow doubles the table, re-inserting live entries.
func (s *dirShard) grow() {
	old := *s
	n := (old.mask + 1) * 2
	s.mask = n - 1
	s.used = 0
	s.lines = make([]uint64, n)
	s.state = make([]uint8, n)
	s.owner = make([]int32, n)
	s.bits = make([]uint64, int(n)*s.nw)
	for i := range old.state {
		if old.state[i] == 0 {
			continue
		}
		// Probe with the same key entry() and dropSharer use (the hash
		// shifted past the shard-selection bits), or re-inserted entries
		// become unfindable after growth.
		j := s.find(old.lines[i], hashLine(old.lines[i])>>4)
		s.owner[j] = old.owner[i]
		copy(s.bits[j*s.nw:(j+1)*s.nw], old.bits[i*s.nw:(i+1)*s.nw])
	}
}

// Bitset accessors for slot i.

func (s *dirShard) addSharer(i, core int) {
	s.bits[i*s.nw+core>>6] |= 1 << (uint(core) & 63)
}

func (s *dirShard) dropSharerBit(i, core int) {
	s.bits[i*s.nw+core>>6] &^= 1 << (uint(core) & 63)
}

func (s *dirShard) isSharer(i, core int) bool {
	return s.bits[i*s.nw+core>>6]&(1<<(uint(core)&63)) != 0
}

func (s *dirShard) sharerCount(i int) int {
	n := 0
	for _, w := range s.bits[i*s.nw : (i+1)*s.nw] {
		n += bits.OnesCount64(w)
	}
	return n
}

// minSharer returns the lowest-numbered sharer, or -1 if none (matches
// the deterministic "forward from the smallest tile id" policy).
func (s *dirShard) minSharer(i int) int {
	for w, word := range s.bits[i*s.nw : (i+1)*s.nw] {
		if word != 0 {
			return w*64 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// clearSharers empties slot i's bitset, optionally keeping one core.
func (s *dirShard) clearSharers(i int, keep int) {
	for w := range s.bits[i*s.nw : (i+1)*s.nw] {
		s.bits[i*s.nw+w] = 0
	}
	if keep >= 0 {
		s.addSharer(i, keep)
	}
}

// Directory is a distributed directory-based MSI protocol: each line has
// a home tile (striped by address) whose directory tracks sharers and a
// possible dirty owner. Private per-tile caches replicate read-shared
// lines; writes invalidate remote copies.
type Directory struct {
	caches []*Cache
	net    Network
	mem    float64 // off-chip latency, cycles
	l2     float64 // local cache access latency, cycles
	shards [dirShards]dirShard
}

// NewDirectory builds the protocol over per-tile caches. Any core count
// is supported; sharer bitsets are sized at ⌈cores/64⌉ words.
func NewDirectory(caches []*Cache, net Network, l2Cycles, memCycles float64) (*Directory, error) {
	if len(caches) == 0 {
		return nil, fmt.Errorf("cache: directory needs at least one cache")
	}
	d := &Directory{caches: caches, net: net, mem: memCycles, l2: l2Cycles}
	d.resetDir()
	return d, nil
}

func (d *Directory) resetDir() {
	nw := (len(d.caches) + 63) / 64
	for i := range d.shards {
		d.shards[i].init(nw)
	}
}

// Name implements Protocol.
func (d *Directory) Name() string { return "directory-msi" }

func (d *Directory) home(line uint64) int { return int(line % uint64(len(d.caches))) }

// entry locates (creating if needed) the directory entry for line.
func (d *Directory) entry(line uint64) (*dirShard, int) {
	h := hashLine(line)
	s := &d.shards[h&(dirShards-1)]
	return s, s.find(line, h>>4)
}

// Access implements Protocol.
func (d *Directory) Access(core int, line uint64, write bool) Outcome {
	c := d.caches[core]
	out := Outcome{}
	s, e := d.entry(line)
	isSharer := s.isSharer(e, core)
	ownerIsCore := s.owner[e] == int32(core)
	localHit := c.Contains(line) && (isSharer || ownerIsCore)
	if localHit && (!write || ownerIsCore) {
		// Read hit, or write hit on an already-exclusive line.
		c.Access(line, write)
		out.Cycles = d.l2
		out.Hit = true
		return out
	}
	home := d.home(line)
	if localHit && write {
		// Write hit on a shared line: upgrade via home, invalidating the
		// other sharers.
		c.Access(line, true)
		out.Cycles = d.l2 + d.msg(core, home, ctrlFlits, &out)
		far := 0.0
		for w := 0; w < s.nw; w++ {
			word := s.bits[e*s.nw+w]
			for word != 0 {
				sh := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if sh == core {
					continue
				}
				lat := d.msg(home, sh, ctrlFlits, &out)
				d.msg(sh, home, ctrlFlits, &out) // ack
				if lat > far {
					far = lat
				}
				d.caches[sh].Invalidate(line)
			}
		}
		out.Cycles += 2 * far
		s.clearSharers(e, core)
		s.owner[e] = int32(core)
		out.Hit = true
		return out
	}
	// Miss in the local cache: request to home.
	out.Cycles = d.l2 // tag check
	out.Cycles += d.msg(core, home, ctrlFlits, &out)
	switch {
	case s.owner[e] >= 0 && !ownerIsCore:
		// Dirty remote: forward, owner supplies data (cache-to-cache).
		owner := int(s.owner[e])
		out.Cycles += d.msg(home, owner, ctrlFlits, &out)
		out.Cycles += d.l2 // owner cache read
		out.Cycles += d.msg(owner, core, dataFlits, &out)
		out.Hit = true
		if write {
			d.caches[owner].Invalidate(line)
			s.dropSharerBit(e, owner)
			s.owner[e] = int32(core)
		} else {
			s.owner[e] = noOwner // downgraded to shared; owner keeps a copy
			s.addSharer(e, owner)
		}
	case s.sharerCount(e) > 0 && !write:
		// Clean shared somewhere on chip: home forwards from a sharer.
		src := s.minSharer(e)
		out.Cycles += d.msg(home, src, ctrlFlits, &out)
		out.Cycles += d.l2
		out.Cycles += d.msg(src, core, dataFlits, &out)
		out.Hit = true
	case s.sharerCount(e) > 0 && write:
		// Write to a shared line: invalidate all sharers, fetch from one.
		src := s.minSharer(e)
		far := 0.0
		for w := 0; w < s.nw; w++ {
			word := s.bits[e*s.nw+w]
			for word != 0 {
				sh := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				lat := d.msg(home, sh, ctrlFlits, &out)
				d.msg(sh, home, ctrlFlits, &out)
				if lat > far {
					far = lat
				}
				if sh != core {
					d.caches[sh].Invalidate(line)
				}
			}
		}
		out.Cycles += 2*far + d.l2
		out.Cycles += d.msg(src, core, dataFlits, &out)
		out.Hit = true
		s.clearSharers(e, -1)
		s.owner[e] = int32(core)
	default:
		// Nowhere on chip: fetch from memory via home.
		out.Cycles += d.mem
		out.MemAccesses++
		out.Cycles += d.msg(home, core, dataFlits, &out)
		if write {
			s.owner[e] = int32(core)
		}
	}
	s.addSharer(e, core)
	res := c.Access(line, write)
	if res.Evicted {
		d.dropSharer(res.EvictedLine, core, res.EvictedDirty, &out)
	}
	return out
}

// msg accounts one message and returns its latency.
func (d *Directory) msg(src, dst int, flits int, out *Outcome) float64 {
	out.Flits += flits
	out.FlitHops += flits * d.net.Hops(src, dst)
	return d.net.LatencyCycles(src, dst)
}

// dropSharer removes an evicted line's bookkeeping; dirty victims write
// back to the home memory controller. The emptied entry is left in
// place (it is indistinguishable from an absent one), so evictions
// never restructure the table.
func (d *Directory) dropSharer(line uint64, core int, dirty bool, out *Outcome) {
	h := hashLine(line)
	s := &d.shards[h&(dirShards-1)]
	e := s.lookup(line, h>>4)
	if e < 0 {
		return
	}
	s.dropSharerBit(e, core)
	if s.owner[e] == int32(core) {
		s.owner[e] = noOwner
	}
	if dirty {
		d.msg(core, d.home(line), dataFlits, out)
		out.MemAccesses++
	}
}

// FlushAll implements Protocol.
func (d *Directory) FlushAll() int {
	wb := 0
	for _, c := range d.caches {
		wb += c.Flush()
	}
	d.resetDir()
	return wb
}

// Stats implements Protocol.
func (d *Directory) Stats() Stats { return sumStats(d.caches) }

// ---------------------------------------------------------------------
// Shared NUCA (Kim et al. [20])
// ---------------------------------------------------------------------

// NUCA treats all per-tile cache slices as one chip-wide shared cache:
// every line lives in exactly one home slice (striped by address), so
// there is no replication and no invalidation traffic, at the cost of a
// network round trip on every access. Large aggregate capacity, uniform
// sharing — the better protocol for big working sets with little reuse
// locality, exactly the trade ARCc exploits [19].
type NUCA struct {
	slices []*Cache
	net    Network
	mem    float64
	l2     float64
}

// NewNUCA builds the protocol over per-tile slices.
func NewNUCA(slices []*Cache, net Network, l2Cycles, memCycles float64) (*NUCA, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("cache: NUCA needs at least one slice")
	}
	return &NUCA{slices: slices, net: net, mem: memCycles, l2: l2Cycles}, nil
}

// Name implements Protocol.
func (n *NUCA) Name() string { return "shared-nuca" }

// Access implements Protocol.
func (n *NUCA) Access(core int, line uint64, write bool) Outcome {
	out := Outcome{}
	home := int(line % uint64(len(n.slices)))
	sliceLocal := line / uint64(len(n.slices))
	if home != core {
		out.Flits += ctrlFlits
		out.FlitHops += ctrlFlits * n.net.Hops(core, home)
		out.Cycles += n.net.LatencyCycles(core, home)
	}
	res := n.slices[home].Access(sliceLocal, write)
	out.Cycles += n.l2
	if res.Hit {
		out.Hit = true
	} else {
		out.Cycles += n.mem
		out.MemAccesses++
		if res.Evicted && res.EvictedDirty {
			out.MemAccesses++ // victim writeback
			out.Flits += dataFlits
			out.FlitHops += dataFlits // to the slice's memory controller
		}
	}
	if home != core {
		out.Flits += dataFlits
		out.FlitHops += dataFlits * n.net.Hops(home, core)
		out.Cycles += n.net.LatencyCycles(home, core)
	}
	return out
}

// FlushAll implements Protocol.
func (n *NUCA) FlushAll() int {
	wb := 0
	for _, c := range n.slices {
		wb += c.Flush()
	}
	return wb
}

// Stats implements Protocol.
func (n *NUCA) Stats() Stats { return sumStats(n.slices) }

func sumStats(caches []*Cache) Stats {
	var s Stats
	for _, c := range caches {
		cs := c.Stats()
		s.Accesses += cs.Accesses
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Evictions += cs.Evictions
		s.Writebacks += cs.Writebacks
		s.Invalidations += cs.Invalidations
	}
	return s
}

package cache

import (
	"fmt"
	"math"
)

// Network abstracts the on-chip interconnect for the coherence protocols
// (the noc package provides the real implementation; tests use stubs).
type Network interface {
	// LatencyCycles is the one-way latency of a message from tile src to
	// tile dst, in core cycles.
	LatencyCycles(src, dst int) float64
	// Hops is the path length in links, for energy accounting.
	Hops(src, dst int) int
}

// Outcome summarizes one memory access under a coherence protocol.
type Outcome struct {
	Cycles      float64 // total latency in cycles
	Flits       int     // network flits generated
	FlitHops    int     // Σ flits×hops, for network energy
	MemAccesses int     // off-chip accesses
	Hit         bool    // serviced on chip (any tile)
}

// Protocol is a cache-coherence protocol over a set of per-tile caches.
type Protocol interface {
	Name() string
	// Access performs a line-granular access from the given core.
	Access(core int, line uint64, write bool) Outcome
	// FlushAll invalidates every cached line (protocol switch), returning
	// the number of writebacks.
	FlushAll() int
	// Stats aggregates the underlying caches' counters.
	Stats() Stats
}

// Message sizing: control messages are one flit; a 64-byte line payload
// is 64/16 = 4 data flits plus the head flit.
const (
	ctrlFlits = 1
	dataFlits = 5
)

// ---------------------------------------------------------------------
// Directory-based MSI (Gupta et al. [13])
// ---------------------------------------------------------------------

type dirEntry struct {
	sharers map[int]struct{}
	owner   int // dirty owner, -1 if none
}

// Directory is a distributed directory-based MSI protocol: each line has
// a home tile (striped by address) whose directory tracks sharers and a
// possible dirty owner. Private per-tile caches replicate read-shared
// lines; writes invalidate remote copies.
type Directory struct {
	caches []*Cache
	net    Network
	mem    float64 // off-chip latency, cycles
	l2     float64 // local cache access latency, cycles
	dir    map[uint64]*dirEntry
}

// NewDirectory builds the protocol over per-tile caches.
func NewDirectory(caches []*Cache, net Network, l2Cycles, memCycles float64) (*Directory, error) {
	if len(caches) == 0 {
		return nil, fmt.Errorf("cache: directory needs at least one cache")
	}
	return &Directory{
		caches: caches, net: net, mem: memCycles, l2: l2Cycles,
		dir: make(map[uint64]*dirEntry),
	}, nil
}

// Name implements Protocol.
func (d *Directory) Name() string { return "directory-msi" }

func (d *Directory) home(line uint64) int { return int(line % uint64(len(d.caches))) }

func (d *Directory) entry(line uint64) *dirEntry {
	e, ok := d.dir[line]
	if !ok {
		e = &dirEntry{sharers: make(map[int]struct{}), owner: -1}
		d.dir[line] = e
	}
	return e
}

// Access implements Protocol.
func (d *Directory) Access(core int, line uint64, write bool) Outcome {
	c := d.caches[core]
	out := Outcome{}
	e := d.entry(line)
	_, isSharer := e.sharers[core]
	localHit := c.Contains(line) && (isSharer || e.owner == core)
	if localHit && (!write || e.owner == core) {
		// Read hit, or write hit on an already-exclusive line.
		c.Access(line, write)
		out.Cycles = d.l2
		out.Hit = true
		return out
	}
	home := d.home(line)
	if localHit && write {
		// Write hit on a shared line: upgrade via home, invalidating the
		// other sharers.
		c.Access(line, true)
		out.Cycles = d.l2 + d.msg(core, home, ctrlFlits, &out)
		far := 0.0
		for s := range e.sharers {
			if s == core {
				continue
			}
			lat := d.msg(home, s, ctrlFlits, &out)
			d.msg(s, home, ctrlFlits, &out) // ack
			if lat > far {
				far = lat
			}
			d.caches[s].Invalidate(line)
		}
		out.Cycles += 2 * far
		e.sharers = map[int]struct{}{core: {}}
		e.owner = core
		out.Hit = true
		return out
	}
	// Miss in the local cache: request to home.
	out.Cycles = d.l2 // tag check
	out.Cycles += d.msg(core, home, ctrlFlits, &out)
	switch {
	case e.owner >= 0 && e.owner != core:
		// Dirty remote: forward, owner supplies data (cache-to-cache).
		owner := e.owner
		out.Cycles += d.msg(home, owner, ctrlFlits, &out)
		out.Cycles += d.l2 // owner cache read
		out.Cycles += d.msg(owner, core, dataFlits, &out)
		out.Hit = true
		if write {
			d.caches[owner].Invalidate(line)
			delete(e.sharers, owner)
			e.owner = core
		} else {
			e.owner = -1 // downgraded to shared; owner keeps a copy
			e.sharers[owner] = struct{}{}
		}
	case len(e.sharers) > 0 && !write:
		// Clean shared somewhere on chip: home forwards from a sharer.
		src := anySharer(e)
		out.Cycles += d.msg(home, src, ctrlFlits, &out)
		out.Cycles += d.l2
		out.Cycles += d.msg(src, core, dataFlits, &out)
		out.Hit = true
	case len(e.sharers) > 0 && write:
		// Write to a shared line: invalidate all sharers, fetch from one.
		src := anySharer(e)
		far := 0.0
		for s := range e.sharers {
			lat := d.msg(home, s, ctrlFlits, &out)
			d.msg(s, home, ctrlFlits, &out)
			if lat > far {
				far = lat
			}
			if s != core {
				d.caches[s].Invalidate(line)
			}
		}
		out.Cycles += 2*far + d.l2
		out.Cycles += d.msg(src, core, dataFlits, &out)
		out.Hit = true
		e.sharers = make(map[int]struct{})
		e.owner = core
	default:
		// Nowhere on chip: fetch from memory via home.
		out.Cycles += d.mem
		out.MemAccesses++
		out.Cycles += d.msg(home, core, dataFlits, &out)
		if write {
			e.owner = core
		}
	}
	e.sharers[core] = struct{}{}
	res := c.Access(line, write)
	if res.Evicted {
		d.dropSharer(res.EvictedLine, core, res.EvictedDirty, &out)
	}
	return out
}

// msg accounts one message and returns its latency.
func (d *Directory) msg(src, dst int, flits int, out *Outcome) float64 {
	out.Flits += flits
	out.FlitHops += flits * d.net.Hops(src, dst)
	return d.net.LatencyCycles(src, dst)
}

// dropSharer removes an evicted line's bookkeeping; dirty victims write
// back to the home memory controller.
func (d *Directory) dropSharer(line uint64, core int, dirty bool, out *Outcome) {
	e, ok := d.dir[line]
	if !ok {
		return
	}
	delete(e.sharers, core)
	if e.owner == core {
		e.owner = -1
	}
	if dirty {
		d.msg(core, d.home(line), dataFlits, out)
		out.MemAccesses++
	}
	if len(e.sharers) == 0 && e.owner < 0 {
		delete(d.dir, line)
	}
}

func anySharer(e *dirEntry) int {
	min := math.MaxInt
	for s := range e.sharers {
		if s < min {
			min = s
		}
	}
	return min
}

// FlushAll implements Protocol.
func (d *Directory) FlushAll() int {
	wb := 0
	for _, c := range d.caches {
		wb += c.Flush()
	}
	d.dir = make(map[uint64]*dirEntry)
	return wb
}

// Stats implements Protocol.
func (d *Directory) Stats() Stats { return sumStats(d.caches) }

// ---------------------------------------------------------------------
// Shared NUCA (Kim et al. [20])
// ---------------------------------------------------------------------

// NUCA treats all per-tile cache slices as one chip-wide shared cache:
// every line lives in exactly one home slice (striped by address), so
// there is no replication and no invalidation traffic, at the cost of a
// network round trip on every access. Large aggregate capacity, uniform
// sharing — the better protocol for big working sets with little reuse
// locality, exactly the trade ARCc exploits [19].
type NUCA struct {
	slices []*Cache
	net    Network
	mem    float64
	l2     float64
}

// NewNUCA builds the protocol over per-tile slices.
func NewNUCA(slices []*Cache, net Network, l2Cycles, memCycles float64) (*NUCA, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("cache: NUCA needs at least one slice")
	}
	return &NUCA{slices: slices, net: net, mem: memCycles, l2: l2Cycles}, nil
}

// Name implements Protocol.
func (n *NUCA) Name() string { return "shared-nuca" }

// Access implements Protocol.
func (n *NUCA) Access(core int, line uint64, write bool) Outcome {
	out := Outcome{}
	home := int(line % uint64(len(n.slices)))
	sliceLocal := line / uint64(len(n.slices))
	if home != core {
		out.Flits += ctrlFlits
		out.FlitHops += ctrlFlits * n.net.Hops(core, home)
		out.Cycles += n.net.LatencyCycles(core, home)
	}
	res := n.slices[home].Access(sliceLocal, write)
	out.Cycles += n.l2
	if res.Hit {
		out.Hit = true
	} else {
		out.Cycles += n.mem
		out.MemAccesses++
		if res.Evicted && res.EvictedDirty {
			out.MemAccesses++ // victim writeback
			out.Flits += dataFlits
			out.FlitHops += dataFlits // to the slice's memory controller
		}
	}
	if home != core {
		out.Flits += dataFlits
		out.FlitHops += dataFlits * n.net.Hops(home, core)
		out.Cycles += n.net.LatencyCycles(home, core)
	}
	return out
}

// FlushAll implements Protocol.
func (n *NUCA) FlushAll() int {
	wb := 0
	for _, c := range n.slices {
		wb += c.Flush()
	}
	return wb
}

// Stats implements Protocol.
func (n *NUCA) Stats() Stats { return sumStats(n.slices) }

func sumStats(caches []*Cache) Stats {
	var s Stats
	for _, c := range caches {
		cs := c.Stats()
		s.Accesses += cs.Accesses
		s.Hits += cs.Hits
		s.Misses += cs.Misses
		s.Evictions += cs.Evictions
		s.Writebacks += cs.Writebacks
		s.Invalidations += cs.Invalidations
	}
	return s
}

package cache

import (
	"testing"

	"angstrom/internal/sim"
)

// lineNet is a stub interconnect: tiles on a line, 2 cycles per hop.
type lineNet struct{}

func (lineNet) Hops(src, dst int) int {
	if src > dst {
		src, dst = dst, src
	}
	return dst - src
}

func (n lineNet) LatencyCycles(src, dst int) float64 {
	return float64(3 + 2*n.Hops(src, dst))
}

func newTiles(t *testing.T, n, kb int) []*Cache {
	t.Helper()
	out := make([]*Cache, n)
	for i := range out {
		out[i] = mustCache(t, kb, 8)
	}
	return out
}

func newDir(t *testing.T, n, kb int) *Directory {
	t.Helper()
	d, err := NewDirectory(newTiles(t, n, kb), lineNet{}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newNUCA(t *testing.T, n, kb int) *NUCA {
	t.Helper()
	nu, err := NewNUCA(newTiles(t, n, kb), lineNet{}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	return nu
}

func TestDirectoryColdMissGoesToMemory(t *testing.T) {
	d := newDir(t, 4, 64)
	out := d.Access(0, 1000, false)
	if out.Hit {
		t.Fatal("cold miss reported as on-chip hit")
	}
	if out.MemAccesses != 1 {
		t.Fatalf("MemAccesses = %d, want 1", out.MemAccesses)
	}
	if out.Cycles <= 100 {
		t.Fatalf("cycles = %g, must exceed memory latency", out.Cycles)
	}
}

func TestDirectoryLocalHitIsCheap(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false)
	out := d.Access(0, 1000, false)
	if !out.Hit || out.Cycles != 2 || out.Flits != 0 {
		t.Fatalf("local read hit = %+v, want 2 cycles, no traffic", out)
	}
}

func TestDirectoryCacheToCacheTransfer(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false) // memory fill to core 0
	out := d.Access(1, 1000, false)
	if !out.Hit {
		t.Fatal("second core's read should be serviced on chip")
	}
	if out.MemAccesses != 0 {
		t.Fatalf("MemAccesses = %d, want 0 (cache-to-cache)", out.MemAccesses)
	}
}

func TestDirectoryWriteInvalidatesSharers(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false)
	d.Access(1, 1000, false)
	d.Access(2, 1000, false)
	// Core 3 writes: all other copies must die.
	d.Access(3, 1000, true)
	for core := 0; core < 3; core++ {
		if d.caches[core].Contains(1000) {
			t.Fatalf("core %d still caches line after remote write", core)
		}
	}
	// Core 3's subsequent write is an exclusive local hit.
	out := d.Access(3, 1000, true)
	if !out.Hit || out.Flits != 0 {
		t.Fatalf("exclusive write hit = %+v, want silent local hit", out)
	}
}

func TestDirectoryDirtyForwarding(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, true) // core 0 owns dirty
	out := d.Access(1, 1000, false)
	if !out.Hit || out.MemAccesses != 0 {
		t.Fatalf("read of dirty remote = %+v, want forwarded on-chip", out)
	}
	// After downgrade both cores share; another read hits locally.
	if !d.caches[0].Contains(1000) {
		t.Fatal("previous owner lost its copy on downgrade")
	}
}

func TestDirectoryUpgradeOnSharedWrite(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false)
	d.Access(1, 1000, false)
	out := d.Access(0, 1000, true) // upgrade
	if !out.Hit {
		t.Fatal("upgrade treated as miss")
	}
	if d.caches[1].Contains(1000) {
		t.Fatal("sharer survived upgrade")
	}
}

func TestNUCASingleCopyNoInvalidations(t *testing.T) {
	nu := newNUCA(t, 4, 64)
	for core := 0; core < 4; core++ {
		nu.Access(core, 1000, true)
	}
	if s := nu.Stats(); s.Invalidations != 0 {
		t.Fatalf("NUCA produced %d invalidations, want 0", s.Invalidations)
	}
	// Exactly one slice holds the line.
	holders := 0
	for _, c := range nu.slices {
		if c.Contains(1000 / 4) {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("line held by %d slices, want 1", holders)
	}
}

func TestNUCARemoteAccessPaysNetwork(t *testing.T) {
	nu := newNUCA(t, 4, 64)
	line := uint64(1001) // home = 1001 % 4 = 1
	nu.Access(1, line, false)
	local := nu.Access(1, line, false)
	remote := nu.Access(3, line, false)
	if !local.Hit || !remote.Hit {
		t.Fatal("warm NUCA accesses should hit")
	}
	if remote.Cycles <= local.Cycles {
		t.Fatalf("remote slice access (%g cycles) must cost more than home access (%g)",
			remote.Cycles, local.Cycles)
	}
	if remote.Flits == 0 {
		t.Fatal("remote access generated no traffic")
	}
}

// TestNUCACapacityBeatsDirectoryOnHugeSharedSet reproduces the ARCc
// trade-off: a shared working set larger than one tile's cache but
// smaller than the chip's aggregate capacity thrashes per-tile private
// caches under the directory protocol but fits the NUCA aggregate.
func TestNUCACapacityBeatsDirectoryOnHugeSharedSet(t *testing.T) {
	const tiles, kb = 16, 64
	// Working set: 16 × 64 KB = 1 MB aggregate; use 8192 lines (512 KB).
	const wsLines = 8192
	run := func(p Protocol) float64 {
		rng := sim.NewRNG(5)
		misses := 0
		const accesses = 60000
		for i := 0; i < accesses; i++ {
			core := rng.Intn(tiles)
			line := uint64(rng.Intn(wsLines))
			out := p.Access(core, line, false)
			if out.MemAccesses > 0 {
				misses++
			}
		}
		return float64(misses) / accesses
	}
	dirMiss := run(newDir(t, tiles, kb))
	nucaMiss := run(newNUCA(t, tiles, kb))
	if nucaMiss >= dirMiss {
		t.Fatalf("NUCA off-chip rate %g not below directory %g on capacity-bound set",
			nucaMiss, dirMiss)
	}
}

// TestDirectoryLatencyBeatsNUCAOnPrivateSets: private per-core data with
// high locality favours the directory protocol (local hits, no network).
func TestDirectoryLatencyBeatsNUCAOnPrivateSets(t *testing.T) {
	const tiles, kb = 16, 64
	run := func(p Protocol) float64 {
		rng := sim.NewRNG(6)
		cycles := 0.0
		const accesses = 40000
		for i := 0; i < accesses; i++ {
			core := rng.Intn(tiles)
			// 256 hot private lines per core, disjoint regions.
			line := uint64(core*10000 + rng.Intn(256))
			cycles += p.Access(core, line, false).Cycles
		}
		return cycles / accesses
	}
	dirLat := run(newDir(t, tiles, kb))
	nucaLat := run(newNUCA(t, tiles, kb))
	if dirLat >= nucaLat {
		t.Fatalf("directory latency %g not below NUCA %g on private working sets",
			dirLat, nucaLat)
	}
}

func TestAdaptiveSelectsNUCAForCapacityBoundSharing(t *testing.T) {
	const tiles, kb = 16, 64
	ad, err := NewAdaptive(newDir(t, tiles, kb), newNUCA(t, tiles, kb), 2048, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 120000; i++ {
		core := rng.Intn(tiles)
		line := uint64(rng.Intn(8192))
		ad.Access(core, line, false)
	}
	if ad.Active() != "shared-nuca" {
		t.Fatalf("adaptive protocol settled on %s, want shared-nuca", ad.Active())
	}
}

func TestAdaptiveSelectsDirectoryForPrivateLocality(t *testing.T) {
	const tiles, kb = 16, 64
	ad, err := NewAdaptive(newDir(t, tiles, kb), newNUCA(t, tiles, kb), 2048, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(8)
	for i := 0; i < 120000; i++ {
		core := rng.Intn(tiles)
		line := uint64(core*10000 + rng.Intn(256))
		ad.Access(core, line, false)
	}
	if ad.Active() != "directory-msi" {
		t.Fatalf("adaptive protocol settled on %s, want directory-msi", ad.Active())
	}
}

func TestAdaptiveForceProtocol(t *testing.T) {
	ad, err := NewAdaptive(newDir(t, 4, 64), newNUCA(t, 4, 64), 1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.ForceProtocol(1); err != nil {
		t.Fatal(err)
	}
	if ad.Active() != "shared-nuca" {
		t.Fatalf("Active = %s after ForceProtocol(1)", ad.Active())
	}
	// Forced: many accesses must not flip it back.
	rng := sim.NewRNG(9)
	for i := 0; i < 30000; i++ {
		ad.Access(rng.Intn(4), uint64(rng.Intn(100)), false)
	}
	if ad.Active() != "shared-nuca" {
		t.Fatal("forced protocol changed autonomously")
	}
	if err := ad.ForceProtocol(5); err == nil {
		t.Fatal("bad protocol index accepted")
	}
}

func TestAdaptiveRejectsBadConfig(t *testing.T) {
	if _, err := NewAdaptive(nil, nil, 1024, 0); err == nil {
		t.Fatal("nil protocols accepted")
	}
	if _, err := NewAdaptive(newDir(t, 2, 64), newNUCA(t, 2, 64), 4, 0); err == nil {
		t.Fatal("tiny epoch accepted")
	}
}

func TestProtocolsRejectEmptyCaches(t *testing.T) {
	if _, err := NewDirectory(nil, lineNet{}, 1, 10); err == nil {
		t.Fatal("empty directory accepted")
	}
	if _, err := NewNUCA(nil, lineNet{}, 1, 10); err == nil {
		t.Fatal("empty NUCA accepted")
	}
}

func TestFlushAllResetsProtocols(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1, true)
	d.Access(1, 1, false)
	if wb := d.FlushAll(); wb < 1 {
		t.Fatalf("FlushAll writebacks = %d, want >= 1", wb)
	}
	out := d.Access(2, 1, false)
	if out.MemAccesses != 1 {
		t.Fatal("directory state survived FlushAll")
	}
}

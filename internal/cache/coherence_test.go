package cache

import (
	"testing"

	"angstrom/internal/sim"
)

// lineNet is a stub interconnect: tiles on a line, 2 cycles per hop.
type lineNet struct{}

func (lineNet) Hops(src, dst int) int {
	if src > dst {
		src, dst = dst, src
	}
	return dst - src
}

func (n lineNet) LatencyCycles(src, dst int) float64 {
	return float64(3 + 2*n.Hops(src, dst))
}

func newTiles(t *testing.T, n, kb int) []*Cache {
	t.Helper()
	out := make([]*Cache, n)
	for i := range out {
		out[i] = mustCache(t, kb, 8)
	}
	return out
}

func newDir(t *testing.T, n, kb int) *Directory {
	t.Helper()
	d, err := NewDirectory(newTiles(t, n, kb), lineNet{}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func newNUCA(t *testing.T, n, kb int) *NUCA {
	t.Helper()
	nu, err := NewNUCA(newTiles(t, n, kb), lineNet{}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	return nu
}

func TestDirectoryColdMissGoesToMemory(t *testing.T) {
	d := newDir(t, 4, 64)
	out := d.Access(0, 1000, false)
	if out.Hit {
		t.Fatal("cold miss reported as on-chip hit")
	}
	if out.MemAccesses != 1 {
		t.Fatalf("MemAccesses = %d, want 1", out.MemAccesses)
	}
	if out.Cycles <= 100 {
		t.Fatalf("cycles = %g, must exceed memory latency", out.Cycles)
	}
}

func TestDirectoryLocalHitIsCheap(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false)
	out := d.Access(0, 1000, false)
	if !out.Hit || out.Cycles != 2 || out.Flits != 0 {
		t.Fatalf("local read hit = %+v, want 2 cycles, no traffic", out)
	}
}

func TestDirectoryCacheToCacheTransfer(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false) // memory fill to core 0
	out := d.Access(1, 1000, false)
	if !out.Hit {
		t.Fatal("second core's read should be serviced on chip")
	}
	if out.MemAccesses != 0 {
		t.Fatalf("MemAccesses = %d, want 0 (cache-to-cache)", out.MemAccesses)
	}
}

func TestDirectoryWriteInvalidatesSharers(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false)
	d.Access(1, 1000, false)
	d.Access(2, 1000, false)
	// Core 3 writes: all other copies must die.
	d.Access(3, 1000, true)
	for core := 0; core < 3; core++ {
		if d.caches[core].Contains(1000) {
			t.Fatalf("core %d still caches line after remote write", core)
		}
	}
	// Core 3's subsequent write is an exclusive local hit.
	out := d.Access(3, 1000, true)
	if !out.Hit || out.Flits != 0 {
		t.Fatalf("exclusive write hit = %+v, want silent local hit", out)
	}
}

func TestDirectoryDirtyForwarding(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, true) // core 0 owns dirty
	out := d.Access(1, 1000, false)
	if !out.Hit || out.MemAccesses != 0 {
		t.Fatalf("read of dirty remote = %+v, want forwarded on-chip", out)
	}
	// After downgrade both cores share; another read hits locally.
	if !d.caches[0].Contains(1000) {
		t.Fatal("previous owner lost its copy on downgrade")
	}
}

func TestDirectoryUpgradeOnSharedWrite(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1000, false)
	d.Access(1, 1000, false)
	out := d.Access(0, 1000, true) // upgrade
	if !out.Hit {
		t.Fatal("upgrade treated as miss")
	}
	if d.caches[1].Contains(1000) {
		t.Fatal("sharer survived upgrade")
	}
}

func TestNUCASingleCopyNoInvalidations(t *testing.T) {
	nu := newNUCA(t, 4, 64)
	for core := 0; core < 4; core++ {
		nu.Access(core, 1000, true)
	}
	if s := nu.Stats(); s.Invalidations != 0 {
		t.Fatalf("NUCA produced %d invalidations, want 0", s.Invalidations)
	}
	// Exactly one slice holds the line.
	holders := 0
	for _, c := range nu.slices {
		if c.Contains(1000 / 4) {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("line held by %d slices, want 1", holders)
	}
}

func TestNUCARemoteAccessPaysNetwork(t *testing.T) {
	nu := newNUCA(t, 4, 64)
	line := uint64(1001) // home = 1001 % 4 = 1
	nu.Access(1, line, false)
	local := nu.Access(1, line, false)
	remote := nu.Access(3, line, false)
	if !local.Hit || !remote.Hit {
		t.Fatal("warm NUCA accesses should hit")
	}
	if remote.Cycles <= local.Cycles {
		t.Fatalf("remote slice access (%g cycles) must cost more than home access (%g)",
			remote.Cycles, local.Cycles)
	}
	if remote.Flits == 0 {
		t.Fatal("remote access generated no traffic")
	}
}

// TestNUCACapacityBeatsDirectoryOnHugeSharedSet reproduces the ARCc
// trade-off: a shared working set larger than one tile's cache but
// smaller than the chip's aggregate capacity thrashes per-tile private
// caches under the directory protocol but fits the NUCA aggregate.
func TestNUCACapacityBeatsDirectoryOnHugeSharedSet(t *testing.T) {
	const tiles, kb = 16, 64
	// Working set: 16 × 64 KB = 1 MB aggregate; use 8192 lines (512 KB).
	const wsLines = 8192
	run := func(p Protocol) float64 {
		rng := sim.NewRNG(5)
		misses := 0
		const accesses = 60000
		for i := 0; i < accesses; i++ {
			core := rng.Intn(tiles)
			line := uint64(rng.Intn(wsLines))
			out := p.Access(core, line, false)
			if out.MemAccesses > 0 {
				misses++
			}
		}
		return float64(misses) / accesses
	}
	dirMiss := run(newDir(t, tiles, kb))
	nucaMiss := run(newNUCA(t, tiles, kb))
	if nucaMiss >= dirMiss {
		t.Fatalf("NUCA off-chip rate %g not below directory %g on capacity-bound set",
			nucaMiss, dirMiss)
	}
}

// TestDirectoryLatencyBeatsNUCAOnPrivateSets: private per-core data with
// high locality favours the directory protocol (local hits, no network).
func TestDirectoryLatencyBeatsNUCAOnPrivateSets(t *testing.T) {
	const tiles, kb = 16, 64
	run := func(p Protocol) float64 {
		rng := sim.NewRNG(6)
		cycles := 0.0
		const accesses = 40000
		for i := 0; i < accesses; i++ {
			core := rng.Intn(tiles)
			// 256 hot private lines per core, disjoint regions.
			line := uint64(core*10000 + rng.Intn(256))
			cycles += p.Access(core, line, false).Cycles
		}
		return cycles / accesses
	}
	dirLat := run(newDir(t, tiles, kb))
	nucaLat := run(newNUCA(t, tiles, kb))
	if dirLat >= nucaLat {
		t.Fatalf("directory latency %g not below NUCA %g on private working sets",
			dirLat, nucaLat)
	}
}

func TestAdaptiveSelectsNUCAForCapacityBoundSharing(t *testing.T) {
	const tiles, kb = 16, 64
	ad, err := NewAdaptive(newDir(t, tiles, kb), newNUCA(t, tiles, kb), 2048, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 120000; i++ {
		core := rng.Intn(tiles)
		line := uint64(rng.Intn(8192))
		ad.Access(core, line, false)
	}
	if ad.Active() != "shared-nuca" {
		t.Fatalf("adaptive protocol settled on %s, want shared-nuca", ad.Active())
	}
}

func TestAdaptiveSelectsDirectoryForPrivateLocality(t *testing.T) {
	const tiles, kb = 16, 64
	ad, err := NewAdaptive(newDir(t, tiles, kb), newNUCA(t, tiles, kb), 2048, 500)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(8)
	for i := 0; i < 120000; i++ {
		core := rng.Intn(tiles)
		line := uint64(core*10000 + rng.Intn(256))
		ad.Access(core, line, false)
	}
	if ad.Active() != "directory-msi" {
		t.Fatalf("adaptive protocol settled on %s, want directory-msi", ad.Active())
	}
}

func TestAdaptiveForceProtocol(t *testing.T) {
	ad, err := NewAdaptive(newDir(t, 4, 64), newNUCA(t, 4, 64), 1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ad.ForceProtocol(1); err != nil {
		t.Fatal(err)
	}
	if ad.Active() != "shared-nuca" {
		t.Fatalf("Active = %s after ForceProtocol(1)", ad.Active())
	}
	// Forced: many accesses must not flip it back.
	rng := sim.NewRNG(9)
	for i := 0; i < 30000; i++ {
		ad.Access(rng.Intn(4), uint64(rng.Intn(100)), false)
	}
	if ad.Active() != "shared-nuca" {
		t.Fatal("forced protocol changed autonomously")
	}
	if err := ad.ForceProtocol(5); err == nil {
		t.Fatal("bad protocol index accepted")
	}
}

func TestAdaptiveRejectsBadConfig(t *testing.T) {
	if _, err := NewAdaptive(nil, nil, 1024, 0); err == nil {
		t.Fatal("nil protocols accepted")
	}
	if _, err := NewAdaptive(newDir(t, 2, 64), newNUCA(t, 2, 64), 4, 0); err == nil {
		t.Fatal("tiny epoch accepted")
	}
}

func TestProtocolsRejectEmptyCaches(t *testing.T) {
	if _, err := NewDirectory(nil, lineNet{}, 1, 10); err == nil {
		t.Fatal("empty directory accepted")
	}
	if _, err := NewNUCA(nil, lineNet{}, 1, 10); err == nil {
		t.Fatal("empty NUCA accepted")
	}
}

// TestDirShardGrowthKeepsEntriesFindable is the regression gate for the
// open-addressing rehash: entries re-inserted by grow() must use the
// same probe key as entry()/lookup (the hash shifted past the
// shard-selection bits), or lines silently duplicate after the table
// grows and coherence state forks.
func TestDirShardGrowthKeepsEntriesFindable(t *testing.T) {
	var s dirShard
	s.init(1)
	const lines = 5000 // forces many doublings from the 64-slot start
	for pass := 0; pass < 3; pass++ {
		for line := uint64(0); line < lines; line++ {
			s.find(line, hashLine(line)>>4)
		}
	}
	if s.used != lines {
		t.Fatalf("shard holds %d entries for %d distinct lines (growth created duplicates)", s.used, lines)
	}
	for line := uint64(0); line < lines; line++ {
		if s.lookup(line, hashLine(line)>>4) < 0 {
			t.Fatalf("line %d unfindable after growth", line)
		}
	}
}

// TestDirectoryStateSurvivesTableGrowth checks the same property at the
// protocol surface: a sharer recorded before the table grows must still
// be invalidated by a write that lands after it.
func TestDirectoryStateSurvivesTableGrowth(t *testing.T) {
	d := newDir(t, 4, 256) // 4096-line tiles: nothing evicts below
	line := uint64(12345)
	d.Access(0, line, false) // core 0 shares early
	// Touch enough distinct lines to force every shard through growth.
	for l := uint64(0); l < 3000; l++ {
		d.Access(1, 100000+l*4, false)
	}
	out := d.Access(2, line, false)
	if !out.Hit || out.MemAccesses != 0 {
		t.Fatalf("read of a pre-growth shared line = %+v, want on-chip forward", out)
	}
	d.Access(3, line, true)
	if d.caches[0].Contains(line) {
		t.Fatal("pre-growth sharer survived a post-growth write (directory lost its bit)")
	}
}

// TestDirectoryBroadcastBeyond32Sharers drives the sharer bitset past a
// 32-bit word: 48 cores read the same line, then one writes. Every one
// of the 47 remote copies must be invalidated in a single upgrade, and
// the write must generate one invalidation round-trip per remote sharer.
func TestDirectoryBroadcastBeyond32Sharers(t *testing.T) {
	const tiles = 48
	d := newDir(t, tiles, 64)
	line := uint64(4242)
	for core := 0; core < tiles; core++ {
		d.Access(core, line, false)
	}
	writer := tiles - 1
	out := d.Access(writer, line, true)
	if !out.Hit {
		t.Fatal("upgrade on a fully-shared line treated as off-chip miss")
	}
	// 47 invalidations + 47 acks + the upgrade request itself.
	if wantMin := 2*(tiles-1) + 1; out.Flits < wantMin {
		t.Fatalf("broadcast generated %d flits, want >= %d", out.Flits, wantMin)
	}
	for core := 0; core < tiles; core++ {
		if core == writer {
			if !d.caches[core].Contains(line) {
				t.Fatal("writer lost its own copy during the broadcast")
			}
			continue
		}
		if d.caches[core].Contains(line) {
			t.Fatalf("core %d (bit %d of a >32-sharer set) survived the broadcast", core, core)
		}
	}
	if s := d.Stats(); s.Invalidations != tiles-1 {
		t.Fatalf("%d invalidations recorded, want %d", s.Invalidations, tiles-1)
	}
	// The writer now owns the line exclusively: silent local write hits.
	if out := d.Access(writer, line, true); !out.Hit || out.Flits != 0 {
		t.Fatalf("post-broadcast write = %+v, want silent exclusive hit", out)
	}
}

// TestDirectoryOwnerDowngradePath pins the dirty-owner bookkeeping
// through a downgrade: after a remote read the old owner must remain a
// sharer (not owner), so a third core's write invalidates both copies.
func TestDirectoryOwnerDowngradePath(t *testing.T) {
	d := newDir(t, 8, 64)
	line := uint64(77)
	d.Access(0, line, true)  // core 0 dirty owner
	d.Access(1, line, false) // downgrade: 0 and 1 now share
	// A write from core 2 must invalidate both previous holders and no
	// memory fetch may occur (the data is on chip).
	out := d.Access(2, line, true)
	if !out.Hit || out.MemAccesses != 0 {
		t.Fatalf("write after downgrade = %+v, want on-chip service", out)
	}
	if d.caches[0].Contains(line) || d.caches[1].Contains(line) {
		t.Fatal("downgraded owner or sharer survived a remote write")
	}
	// Core 2 is the new exclusive owner: a dirty eviction must write back.
	if !d.caches[2].Contains(line) {
		t.Fatal("writer did not fill its cache")
	}
}

// TestDirectoryResetDropsAllState covers the directory-reset path of the
// sharded table: FlushAll after heavy multi-word traffic must leave no
// sharer, owner, or entry behind.
func TestDirectoryResetDropsAllState(t *testing.T) {
	const tiles = 40
	d := newDir(t, tiles, 64)
	rng := sim.NewRNG(11)
	for i := 0; i < 20000; i++ {
		d.Access(rng.Intn(tiles), uint64(rng.Intn(2048)), rng.Float64() < 0.3)
	}
	if wb := d.FlushAll(); wb < 1 {
		t.Fatalf("FlushAll wrote back %d lines, want >= 1 after dirty traffic", wb)
	}
	for _, sh := range d.shards {
		if sh.used != 0 {
			t.Fatalf("shard retained %d entries after reset", sh.used)
		}
	}
	// Every post-reset first touch is a cold miss.
	for core := 0; core < 4; core++ {
		if out := d.Access(core, uint64(1000+core), false); out.MemAccesses != 1 {
			t.Fatalf("core %d post-reset access = %+v, want cold memory fill", core, out)
		}
	}
}

// TestDirectoryEvictionClearsSharerBit: an eviction must drop the
// core's bit so later writes skip the stale sharer; with >32 cores this
// exercises the multi-word clear path.
func TestDirectoryEvictionClearsSharerBit(t *testing.T) {
	const tiles = 34
	d := newDir(t, tiles, 16) // small cache: easy to evict
	line := uint64(33)        // lands in core-33 territory of the bitset's second word
	d.Access(33, line, false)
	// Thrash core 33's cache with conflicting lines until 'line' is gone.
	set := d.caches[33]
	for i := uint64(1); set.Contains(line); i++ {
		d.Access(33, line+i*4096, false)
	}
	inv := d.Stats().Invalidations
	// A write from core 0 must not try to invalidate core 33.
	d.Access(0, line, true)
	if got := d.Stats().Invalidations; got != inv {
		t.Fatalf("write invalidated %d stale copies; eviction left the sharer bit set", got-inv)
	}
}

func TestFlushAllResetsProtocols(t *testing.T) {
	d := newDir(t, 4, 64)
	d.Access(0, 1, true)
	d.Access(1, 1, false)
	if wb := d.FlushAll(); wb < 1 {
		t.Fatalf("FlushAll writebacks = %d, want >= 1", wb)
	}
	out := d.Access(2, 1, false)
	if out.MemAccesses != 1 {
		t.Fatal("directory state survived FlushAll")
	}
}

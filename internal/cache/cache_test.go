package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, kb, ways int) *Cache {
	t.Helper()
	c, err := New(kb, ways, 64)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(0, 4, 64); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := New(64, 0, 64); err == nil {
		t.Fatal("zero ways accepted")
	}
	if _, err := New(3, 4, 64); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, 64, 8)
	if r := c.Access(0x42, false); r.Hit {
		t.Fatal("cold access reported hit")
	}
	if r := c.Access(0x42, false); !r.Hit {
		t.Fatal("second access reported miss")
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2/1/1", s)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, small cache: fill a set with lines A and B, touch A, insert
	// C mapping to the same set → B must be the victim.
	c := mustCache(t, 8, 2) // 8KB/64B/2 = 64 sets
	const sets = 64
	a, b, x := uint64(0), uint64(sets), uint64(2*sets) // same set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // A is now MRU
	r := c.Access(x, false)
	if !r.Evicted || r.EvictedLine != b {
		t.Fatalf("evicted %+v, want line %d (LRU)", r, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(x) {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := mustCache(t, 8, 1) // direct-mapped, 128 sets
	const sets = 128
	c.Access(5, true) // dirty
	r := c.Access(5+sets, false)
	if !r.Evicted || !r.EvictedDirty || r.EvictedLine != 5 {
		t.Fatalf("eviction result = %+v, want dirty line 5", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestResizeShrinksCapacityAndFlushesDisabled(t *testing.T) {
	c := mustCache(t, 256, 8)
	if c.EnabledKB() != 256 {
		t.Fatalf("EnabledKB = %d, want 256", c.EnabledKB())
	}
	// Fill some lines, then shrink to 2 ways and 1/4 the sets = 16 KB.
	for i := uint64(0); i < 1000; i++ {
		c.Access(i, i%3 == 0)
	}
	if err := c.Resize(2, 2); err != nil {
		t.Fatal(err)
	}
	if c.EnabledKB() != 16 {
		t.Fatalf("EnabledKB after resize = %d, want 16", c.EnabledKB())
	}
	if c.SizeKB() != 256 {
		t.Fatalf("SizeKB changed to %d; physical capacity must not change", c.SizeKB())
	}
}

func TestResizeRejectsBadConfigs(t *testing.T) {
	c := mustCache(t, 64, 4)
	if err := c.Resize(0, 0); err == nil {
		t.Fatal("0 ways accepted")
	}
	if err := c.Resize(5, 0); err == nil {
		t.Fatal("more ways than physical accepted")
	}
	if err := c.Resize(1, 30); err == nil {
		t.Fatal("shift disabling all sets accepted")
	}
}

func TestSmallerCacheMissesMore(t *testing.T) {
	// A fixed Zipf-ish working set of 2048 lines (128 KB): the 256 KB
	// configuration must hit more than the 16 KB one.
	run := func(ways int, shift uint) float64 {
		c := mustCache(t, 256, 8)
		if err := c.Resize(ways, shift); err != nil {
			t.Fatal(err)
		}
		// Stride pattern with reuse.
		for pass := 0; pass < 20; pass++ {
			for i := uint64(0); i < 2048; i++ {
				c.Access(i, false)
			}
		}
		return c.Stats().MissRate()
	}
	big := run(8, 0)   // 256 KB: entire set fits
	small := run(2, 2) // 16 KB
	if big >= small {
		t.Fatalf("256KB miss rate %g not below 16KB miss rate %g", big, small)
	}
	if big > 0.06 {
		t.Fatalf("256KB cache should capture a 128KB working set; miss rate %g", big)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, 64, 4)
	c.Access(7, true)
	present, dirty := c.Invalidate(7)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(7) {
		t.Fatal("line still present after Invalidate")
	}
	if p, _ := c.Invalidate(7); p {
		t.Fatal("second Invalidate found the line")
	}
}

func TestFlushWritesBackDirtyLines(t *testing.T) {
	c := mustCache(t, 64, 4)
	c.Access(1, true)
	c.Access(2, false)
	c.Access(3, true)
	if wb := c.Flush(); wb != 2 {
		t.Fatalf("Flush writebacks = %d, want 2", wb)
	}
	if c.Contains(1) || c.Contains(2) || c.Contains(3) {
		t.Fatal("lines survive Flush")
	}
}

func TestCacheCapacityNeverExceededProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := mustCache(t, 16, 4) // 256 lines
		for _, a := range addrs {
			c.Access(uint64(a), a%2 == 0)
		}
		valid := 0
		for _, set := range c.sets {
			for _, ln := range set {
				if ln.valid {
					valid++
				}
			}
		}
		return valid <= 256
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHitAfterAccessProperty(t *testing.T) {
	// Property: immediately re-accessing any line is a hit.
	f := func(addrs []uint16) bool {
		c := mustCache(t, 16, 4)
		for _, a := range addrs {
			c.Access(uint64(a), false)
			if r := c.Access(uint64(a), false); !r.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSRAMVoltageScaling(t *testing.T) {
	s := DefaultSRAM()
	if !s.Operational(0.8) || !s.Operational(0.4) {
		t.Fatal("SRAM must operate across the Angstrom voltage range")
	}
	if s.Operational(0.3) {
		t.Fatal("SRAM must not operate below the assist limit")
	}
	if s.ReadPJ(0.4) >= s.ReadPJ(0.8) {
		t.Fatal("read energy must drop with voltage")
	}
	// CV²: quarter energy at half voltage.
	ratio := s.ReadPJ(0.4) / s.ReadPJ(0.8)
	if ratio < 0.24 || ratio > 0.26 {
		t.Fatalf("energy ratio at half voltage = %g, want 0.25", ratio)
	}
	if s.LatencyCycles(0.4) <= s.LatencyCycles(0.8) {
		t.Fatal("latency must rise at low voltage")
	}
	if s.LeakW(128, 0.4) >= s.LeakW(128, 0.8) {
		t.Fatal("leakage must drop with voltage")
	}
	if s.LeakW(256, 0.8) <= s.LeakW(128, 0.8) {
		t.Fatal("leakage must grow with capacity")
	}
	if s.WritePJ(0.8) != 15 {
		t.Fatalf("nominal write energy = %g, want 15", s.WritePJ(0.8))
	}
}

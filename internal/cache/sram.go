package cache

import "math"

// SRAM models Angstrom's voltage-scalable SRAM arrays (§4.2.1).
// Conventional SRAM fails below ~0.7 V; Angstrom's arrays use 8T-style
// bit cells and peripheral assist circuits [7, 6, 21, 33] to stay stable
// down to sub-threshold voltages at reduced speed. The model captures
// the three things the chip simulator needs: access energy (∝ V²),
// access latency (grows steeply at low voltage), and leakage power
// (drops superlinearly with voltage).
type SRAM struct {
	// NominalV is the voltage at which the reference numbers hold.
	NominalV float64
	// MinV is the lowest operational voltage (assist limit).
	MinV float64
	// ReadPJAtNominal is energy per line read at NominalV, in pJ.
	ReadPJAtNominal float64
	// WritePJAtNominal is energy per line write at NominalV, in pJ.
	WritePJAtNominal float64
	// LatencyCyclesAtNominal is the access latency at NominalV in core
	// cycles (at the core's matching frequency).
	LatencyCyclesAtNominal float64
	// LeakUWPerKBAtNominal is leakage per KB at NominalV, in µW.
	LeakUWPerKBAtNominal float64
}

// DefaultSRAM is the 28 nm-class array used by the Angstrom model:
// numbers follow the voltage-scalable parts cited by the paper
// ([33]: 28 nm 6T with assist to 0.6 V; [6]: sub-threshold to ~0.4 V).
func DefaultSRAM() SRAM {
	return SRAM{
		NominalV:               0.8,
		MinV:                   0.4,
		ReadPJAtNominal:        12,
		WritePJAtNominal:       15,
		LatencyCyclesAtNominal: 2,
		LeakUWPerKBAtNominal:   30,
	}
}

// Operational reports whether the array is stable at v.
func (s SRAM) Operational(v float64) bool { return v >= s.MinV }

// ReadPJ returns energy per line read at voltage v (CV² scaling).
func (s SRAM) ReadPJ(v float64) float64 {
	r := v / s.NominalV
	return s.ReadPJAtNominal * r * r
}

// WritePJ returns energy per line write at voltage v.
func (s SRAM) WritePJ(v float64) float64 {
	r := v / s.NominalV
	return s.WritePJAtNominal * r * r
}

// LatencyCycles returns the access latency at voltage v, in cycles of a
// clock that itself slows with voltage. The latency ratio follows the
// alpha-power-law delay model: delay ∝ V/(V−Vt)^α with Vt = 0.3 V and
// α = 1.3, normalized at NominalV.
func (s SRAM) LatencyCycles(v float64) float64 {
	const vt, alpha = 0.3, 1.3
	delay := func(volt float64) float64 {
		return volt / math.Pow(volt-vt, alpha)
	}
	return s.LatencyCyclesAtNominal * delay(v) / delay(s.NominalV)
}

// LeakW returns leakage power for kb kilobytes at voltage v, in watts.
// Leakage scales ≈ V·exp((V−Vnom)/Vslope): DIBL-driven superlinear drop
// as voltage falls.
func (s SRAM) LeakW(kb float64, v float64) float64 {
	const vslope = 0.25
	scale := (v / s.NominalV) * math.Exp((v-s.NominalV)/vslope)
	return s.LeakUWPerKBAtNominal * 1e-6 * kb * scale
}

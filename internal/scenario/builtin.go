package scenario

import "fmt"

// Builtins returns the named scenario library: each entry is a
// self-contained spec with budgets tuned to the daemon's current
// behavior, so a regression in arbitration, control, or recovery shows
// up as a budget violation in `make scenarios`.
func Builtins() []Spec {
	return []Spec{
		{
			// A steady fleet comfortably inside the pool: the baseline
			// gate — if this regresses, everything else is noise.
			Name: "steady", Seed: 1, Ticks: 120, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 20,
			Classes: []Class{
				{Name: "web", Workload: "barnes", Count: 24, MinRate: 16, MaxRate: 48, BaseRate: 10, NoiseStd: 0.05},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.05, MinFleetInBandFrac: 0.85, MaxAppRegretFrac: 0.10},
		},
		{
			// Sinusoidal arrivals with exponential lifetimes: the fleet
			// breathes and the allocator must track the churn.
			Name: "diurnal", Seed: 7, Ticks: 240, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 30, Oversubscribe: true,
			Classes: []Class{
				{Name: "base", Workload: "ocean", Count: 16, MinRate: 12, MaxRate: 40, BaseRate: 10, NoiseStd: 0.05},
				{Name: "tide", Workload: "water", Count: 4, MinRate: 8, MaxRate: 30, BaseRate: 10,
					ArrivalsPerTick: 0.5, DiurnalAmp: 0.8, DiurnalPeriodTicks: 80, MeanLifeTicks: 30, NoiseStd: 0.05},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.05, MinFleetInBandFrac: 0.80, MaxAppRegretFrac: 0.15},
		},
		{
			// The 10x arrival burst in one tick, decaying over ~30 ticks,
			// followed by a mass withdrawal of the survivors.
			Name: "flash-crowd", Seed: 11, Ticks: 200, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 20, Oversubscribe: true,
			Classes: []Class{
				{Name: "web", Workload: "barnes", Count: 20, MinRate: 14, MaxRate: 48, BaseRate: 10, NoiseStd: 0.05},
				{Name: "burst", Workload: "raytrace", Count: 2, MinRate: 8, MaxRate: 30, BaseRate: 10,
					MeanLifeTicks: 30, NoiseStd: 0.05},
			},
			Events: []Event{
				{AtTick: 60, Kind: EventFlashCrowd, Class: "burst", Count: 40},
				{AtTick: 140, Kind: EventMassWithdraw, Class: "burst", Fraction: 0.8},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.06, MinFleetInBandFrac: 0.80, MaxAppRegretFrac: 0.15},
		},
		{
			// Program phases: work per beat steps through a deterministic
			// program and an event doubles it mid-run, invalidating every
			// demand estimate the controllers have cached.
			Name: "phased", Seed: 13, Ticks: 200, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 20,
			Classes: []Class{
				{Name: "app", Workload: "volrend", Count: 20, MinRate: 10, MaxRate: 40, BaseRate: 10,
					NoiseStd: 0.05,
					Phases:   []PhaseStep{{AtTick: 50, WorkScale: 1.6}, {AtTick: 110, WorkScale: 0.7}}},
			},
			Events: []Event{
				{AtTick: 150, Kind: EventPhaseShift, Class: "app", Factor: 2},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.05, MinFleetInBandFrac: 0.85, MaxAppRegretFrac: 0.10},
		},
		{
			// Two SLO classes fighting over a scarce pool: gold's weight-8
			// priority must buy it the band while bronze is shed.
			Name: "slo-classes", Seed: 17, Ticks: 160, TickSeconds: 0.5,
			Cores: 32, WarmupTicks: 20, Oversubscribe: true,
			Classes: []Class{
				{Name: "gold", Workload: "water", Count: 20, MinRate: 10, MaxRate: 30, Priority: 8, BaseRate: 10, NoiseStd: 0.05},
				{Name: "bronze", Workload: "water", Count: 20, MinRate: 10, MaxRate: 30, BaseRate: 10, NoiseStd: 0.05},
			},
			Budgets: Budgets{MinFleetInBandFrac: 0.40},
		},
		{
			// Goal thrash: the band doubles and reverts every 10 ticks for
			// 80 ticks while the fleet keeps serving.
			Name: "goal-thrash", Seed: 19, Ticks: 200, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 20,
			Classes: []Class{
				{Name: "app", Workload: "barnes", Count: 24, MinRate: 10, MaxRate: 30, BaseRate: 10, NoiseStd: 0.05},
			},
			Events: []Event{
				{AtTick: 60, Kind: EventGoalThrash, Class: "app", Factor: 2, EveryTicks: 10, UntilTick: 140},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.05, MinFleetInBandFrac: 0.80, MaxAppRegretFrac: 0.10},
		},
		{
			// Two crash-restarts mid-scenario: the daemon is killed and
			// recovered from its journal while the fleet keeps beating.
			// Journal-only recovery is byte-identical to an uncrashed run,
			// so the budgets are the steady ones.
			Name: "crash-restart", Seed: 23, Ticks: 160, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 20,
			Classes: []Class{
				{Name: "app", Workload: "ocean", Count: 20, MinRate: 12, MaxRate: 40, BaseRate: 10, NoiseStd: 0.05},
			},
			Events: []Event{
				{AtTick: 60, Kind: EventCrashRestart},
				{AtTick: 110, Kind: EventCrashRestart},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.05, MinFleetInBandFrac: 0.80, MaxAppRegretFrac: 0.10},
		},
		{
			// Multi-chip federation: a memory-heavy fleet spread across two
			// dies by the interference-aware placer, then one die's memory
			// bandwidth collapses to 35% mid-run. The migration policy must
			// walk applications off the saturated die until both dies serve
			// their bands again; with migration disabled (the control the
			// federation test runs) the stranded apps eat the regret budget.
			Name: "federation", Seed: 31, Ticks: 200, TickSeconds: 0.5,
			Cores: 48, WarmupTicks: 40, Oversubscribe: true,
			Chips: 2, ChipMemBWGBps: 30,
			Classes: []Class{
				// BaseRate documents ocean's one-core model heart rate; in
				// chip mode execution comes from the hardware model itself.
				{Name: "mem", Workload: "ocean", Count: 6, MinRate: 22, MaxRate: 40, BaseRate: 13.6},
			},
			Events: []Event{
				{AtTick: 90, Kind: EventChipSaturate, Chip: 0, Factor: 0.35},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.10, MinFleetInBandFrac: 0.60, MaxAppRegretFrac: 0.30},
		},
		{
			// Everything at once: priorities, diurnal churn, a flash crowd
			// landing during a goal thrash, a phase shift, a crash, and a
			// mass withdrawal. The budgets are looser than the single-chaos
			// scenarios'; the hard gate is survival plus byte-identical
			// replay.
			Name: "torture", Seed: 29, Ticks: 300, TickSeconds: 0.5,
			Cores: 64, WarmupTicks: 30, Oversubscribe: true,
			Classes: []Class{
				{Name: "gold", Workload: "water", Count: 12, MinRate: 12, MaxRate: 36, Priority: 4, BaseRate: 10, NoiseStd: 0.08, DistortionAmp: 0.2},
				{Name: "churn", Workload: "raytrace", Count: 6, MinRate: 8, MaxRate: 30, BaseRate: 10,
					ArrivalsPerTick: 0.4, DiurnalAmp: 0.7, DiurnalPeriodTicks: 100, MeanLifeTicks: 40, NoiseStd: 0.1},
				{Name: "phasey", Workload: "volrend", Count: 8, MinRate: 10, MaxRate: 40, BaseRate: 10,
					Phases: []PhaseStep{{AtTick: 80, WorkScale: 1.5}, {AtTick: 200, WorkScale: 0.8}}},
			},
			Events: []Event{
				{AtTick: 70, Kind: EventGoalThrash, Class: "gold", Factor: 1.5, EveryTicks: 12, UntilTick: 150},
				{AtTick: 100, Kind: EventFlashCrowd, Class: "churn", Count: 30},
				{AtTick: 160, Kind: EventCrashRestart},
				{AtTick: 180, Kind: EventPhaseShift, Class: "phasey", Factor: 1.8},
				{AtTick: 240, Kind: EventMassWithdraw, Fraction: 0.3},
			},
			Budgets: Budgets{MaxFleetRegretFrac: 0.08, MinFleetInBandFrac: 0.70, MaxAppRegretFrac: 0.30},
		},
	}
}

// ByName returns the builtin scenario with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: no builtin named %q", name)
}

package scenario

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// FuzzDecodeSpec throws arbitrary bytes at the spec decoder. The
// contract under fuzz: never panic; anything accepted is fully
// validated (finite rates, ordered schedules, bounded sizes) and
// round-trips through JSON to an equally valid spec.
func FuzzDecodeSpec(f *testing.F) {
	for _, spec := range Builtins() {
		data, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","ticks":10,"tick_seconds":0.5,"cores":4,"classes":[{"name":"a","workload":"barnes","count":1,"min_rate":5,"base_rate":10}]}`))
	f.Add([]byte(`{"name":"x","ticks":10,"tick_seconds":1e309,"cores":4,"classes":[]}`))
	f.Add([]byte(`{"name":"x","ticks":10,"tick_seconds":0.5,"cores":4,"classes":[{"name":"a","workload":"barnes","count":1,"min_rate":-5,"base_rate":10}]}`))
	f.Add([]byte(`{"name":"x","ticks":10,"tick_seconds":0.5,"cores":4,"classes":[{"name":"a","workload":"barnes","count":1,"min_rate":5,"base_rate":10,"phases":[{"at_tick":8,"work_scale":2},{"at_tick":3,"work_scale":1}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSpec(data)
		if err != nil {
			return
		}
		// Accepted specs are validated: spot-check the invariants the
		// engine depends on.
		if s.Ticks < 1 || s.Ticks > maxTicks || s.Cores < 1 {
			t.Fatalf("accepted spec with bad dimensions: %+v", s)
		}
		if math.IsNaN(s.TickSeconds) || s.TickSeconds <= 0 {
			t.Fatalf("accepted non-positive tick seconds %g", s.TickSeconds)
		}
		for _, c := range s.Classes {
			if !finitePos(c.MinRate) || !finitePos(c.BaseRate) {
				t.Fatalf("accepted class with non-finite rates: %+v", c)
			}
			prev := -1
			for _, p := range c.Phases {
				if p.AtTick <= prev || !finitePos(p.WorkScale) {
					t.Fatalf("accepted unordered or degenerate phases: %+v", c.Phases)
				}
				prev = p.AtTick
			}
		}
		prev := 0
		for _, ev := range s.Events {
			if ev.AtTick < prev {
				t.Fatalf("accepted unordered events: %+v", s.Events)
			}
			prev = ev.AtTick
		}
		// Round trip: encode and decode again; the spec must survive
		// unchanged (no lossy fields, no re-validation failure).
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted spec does not re-encode: %v", err)
		}
		back, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("accepted spec does not re-decode: %v", err)
		}
		enc2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed spec:\n%s\n%s", enc, enc2)
		}
	})
}

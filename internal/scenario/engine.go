package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"strconv"

	"angstrom/internal/oracle"
	"angstrom/internal/server"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// Host is the daemon surface the engine drives: the real mutation paths
// (enroll, withdraw, goal, beat) plus the manually-stepped tick. It is
// an interface on purpose — angstromlint's clock-discipline flood stops
// at interface calls, which makes this the sanctioned boundary between
// the deterministic engine (annotated below) and server internals that
// legitimately touch the wall clock (snapshot pacing, uptime counters).
// Determinism across layouts is the daemon's own sharding contract; the
// engine's job is to feed it a byte-identical schedule.
type Host interface {
	Enroll(req server.EnrollRequest) error
	Withdraw(name string) error
	SetGoal(name string, minRate, maxRate float64) error
	Beat(name string, count int, distortion float64) error
	Tick()
	List() []server.AppStatus
	Stats() server.StatsResponse
	// CrashRestart flushes and kills the current daemon and boots a
	// successor from its journal through the real recovery path,
	// reporting how many applications survived. Hosts without a journal
	// return an error.
	CrashRestart() (restoredApps int, err error)
	// SaturateChip derates one die's memory bandwidth to factor of
	// nominal (chip-backed hosts only; factor 1 restores).
	SaturateChip(chip int, factor float64) error
	Close() error
}

// Options selects the daemon layout under test. The scenario contract
// is that every layout produces the same transcript bytes.
type Options struct {
	Shards      int
	TickWorkers int
}

// Result is one scenario run: the scorecard and the byte-exact
// transcript the determinism tests compare across layouts.
type Result struct {
	Scorecard  Scorecard
	Transcript []byte
}

// Run builds a daemon-backed host for spec and drives the scenario
// through it.
func Run(spec Spec, opts Options) (*Result, error) {
	h, err := NewDaemonHost(spec, opts)
	if err != nil {
		return nil, err
	}
	defer h.Close()
	return Drive(spec, h)
}

// liveApp is the engine's model of one enrolled application: it emits
// beats at the rate its class's scaling curve predicts for its current
// allocation, divided by its current work per beat.
type liveApp struct {
	name  string
	class int
	rng   *sim.RNG
	// carry accumulates fractional beats across ticks.
	carry float64
	// units/share mirror the daemon's latest allocation.
	units int
	share float64
	// minRate/maxRate is the current goal; base* the declared one
	// (goal thrash flips between them).
	minRate, maxRate float64
	baseMin, baseMax float64
	thrashed         bool
	// dieAt is the tick this app withdraws itself (-1 = immortal).
	dieAt int
	// Per-tick emission state consumed by the scorer.
	emitted  int
	lastWork float64
	lastDist float64
	// lastBeats is the daemon-side beat counter at the previous
	// observation (chip mode derives emitted from its delta: the chip
	// emits the beats, the engine only reads them back).
	lastBeats uint64
	tally     *appTally
}

// engine holds one run's state. All of it is deterministic in
// (spec, seed); nothing reads a clock or global randomness.
type engine struct {
	spec *Spec
	h    Host
	rng  *sim.RNG
	// chipMode: applications run on the daemon's chip model and emit
	// their own beats; the engine neither beats nor models execution.
	chipMode bool

	// Per-class compiled tables.
	points    [][]oracle.Point // speedup points for the oracle
	workScale []float64        // current phase work multiplier
	phaseIdx  []int            // next pending PhaseStep
	arrCarry  []float64        // fractional arrivals
	seq       []int            // name sequence numbers

	nextID     uint64
	apps       []*liveApp
	finished   []AppScore
	transcript []byte
	crashes    int
	rejected   int
	peak       int

	// scratch buffers reused across ticks.
	demScratch []float64
	okScratch  []bool
}

// Drive compiles spec into its timed schedule and executes it against
// h, one tick at a time: events, arrivals, departures, beat emission,
// the daemon tick, observation, scoring. Everything stochastic draws
// from sim.RNG streams keyed by (seed, enrollment id), so a fixed spec
// replays byte-identically on any host layout.
//
//angstrom:deterministic
func Drive(spec Spec, h Host) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	nc := len(spec.Classes)
	e := &engine{
		spec:      &spec,
		h:         h,
		rng:       sim.NewRNG(spec.Seed),
		chipMode:  spec.Chips > 0,
		points:    make([][]oracle.Point, nc),
		workScale: make([]float64, nc),
		phaseIdx:  make([]int, nc),
		arrCarry:  make([]float64, nc),
		seq:       make([]int, nc),
	}
	for ci := range spec.Classes {
		ws, err := workload.ByName(spec.Classes[ci].Workload)
		if err != nil {
			return nil, err
		}
		curve := ws.CachedSpeedup(spec.Cores)
		pts := make([]oracle.Point, spec.Cores)
		for u := 1; u <= spec.Cores; u++ {
			pts[u-1] = oracle.Point{Rate: curve(u), Power: float64(u)}
		}
		e.points[ci] = pts
		e.workScale[ci] = 1
	}
	for ci := range spec.Classes {
		for k := 0; k < spec.Classes[ci].Count; k++ {
			if err := e.enroll(ci, 0); err != nil {
				return nil, err
			}
		}
	}
	for t := 0; t < spec.Ticks; t++ {
		e.advancePhases(t)
		if err := e.events(t); err != nil {
			return nil, err
		}
		if err := e.arrivals(t); err != nil {
			return nil, err
		}
		if err := e.departures(t); err != nil {
			return nil, err
		}
		if err := e.emit(); err != nil {
			return nil, err
		}
		e.h.Tick()
		e.observe(t)
		e.score(t)
	}
	st := e.h.Stats()
	sc := Scorecard{
		Scenario: spec.Name, Seed: spec.Seed, Ticks: spec.Ticks,
		Crashes: e.crashes, PeakApps: e.peak,
		Beats: st.Beats, Decisions: st.Decisions,
		Migrations: st.Migrations,
	}
	collectScores(&sc, e.finished, e.tallies())
	sum := sha256.Sum256(e.transcript)
	sc.TranscriptSHA256 = hex.EncodeToString(sum[:])
	return &Result{Scorecard: sc, Transcript: e.transcript}, nil
}

func (e *engine) tallies() []*appTally {
	out := make([]*appTally, len(e.apps))
	for i, a := range e.apps {
		out[i] = a.tally
	}
	return out
}

// windowFor sizes an enrollment's averaging window to roughly two
// ticks of on-target beats, clamped to a sane range.
func windowFor(c *Class, tickSeconds float64) int {
	w := int(2 * c.MinRate * tickSeconds)
	if w < 8 {
		w = 8
	}
	if w > 256 {
		w = 256
	}
	return w
}

// enroll admits one application of class ci at tick t. A pool-exhausted
// refusal (space-shared daemon, full pool) is an admission-control
// outcome, not an engine failure: the arrival is counted rejected and
// the scenario continues.
func (e *engine) enroll(ci, t int) error {
	c := &e.spec.Classes[ci]
	name := fmt.Sprintf("%s-%05d", c.Name, e.seq[ci])
	e.seq[ci]++
	id := e.nextID
	e.nextID++
	mode := server.ModeAdvisory
	if e.chipMode {
		// Chip-backed: the placer picks the die and the partition emits
		// the app's beats as the hardware model executes.
		mode = server.ModeChip
	}
	err := e.h.Enroll(server.EnrollRequest{
		Name:     name,
		Workload: c.Workload,
		Mode:     mode,
		Window:   windowFor(c, e.spec.TickSeconds),
		MinRate:  c.MinRate,
		MaxRate:  c.MaxRate,
		Priority: c.Priority,
	})
	if errors.Is(err, server.ErrPoolExhausted) {
		e.rejected++
		e.logf("reject %s pool-exhausted\n", name)
		return nil
	}
	if err != nil {
		return fmt.Errorf("scenario %s: enroll %s: %w", e.spec.Name, name, err)
	}
	a := &liveApp{
		name: name, class: ci, rng: e.rng.Split(id),
		units: 1, share: 1,
		minRate: c.MinRate, maxRate: c.MaxRate,
		baseMin: c.MinRate, baseMax: c.MaxRate,
		dieAt: -1,
		tally: &appTally{name: name, class: c.Name},
	}
	if c.MeanLifeTicks > 0 {
		a.dieAt = t + 1 + int(a.rng.Exp(c.MeanLifeTicks))
	}
	e.apps = append(e.apps, a)
	if len(e.apps) > e.peak {
		e.peak = len(e.apps)
	}
	return nil
}

// withdraw removes one live app (by index into e.apps) through the
// host and folds its tally into the finished scores.
func (e *engine) withdraw(a *liveApp) error {
	if err := e.h.Withdraw(a.name); err != nil {
		return fmt.Errorf("scenario %s: withdraw %s: %w", e.spec.Name, a.name, err)
	}
	e.finished = append(e.finished, a.tally.finish())
	return nil
}

// advancePhases applies each class's phase program steps due at t.
func (e *engine) advancePhases(t int) {
	for ci := range e.spec.Classes {
		c := &e.spec.Classes[ci]
		for e.phaseIdx[ci] < len(c.Phases) && c.Phases[e.phaseIdx[ci]].AtTick == t {
			e.workScale[ci] = c.Phases[e.phaseIdx[ci]].WorkScale
			e.logf("phase %s scale=%s\n", c.Name, fstr(e.workScale[ci]))
			e.phaseIdx[ci]++
		}
	}
}

// classIndex resolves an event's class name (validated, so it exists).
func (e *engine) classIndex(name string) int {
	for ci := range e.spec.Classes {
		if e.spec.Classes[ci].Name == name {
			return ci
		}
	}
	return -1
}

// events executes the schedule entries due at tick t.
func (e *engine) events(t int) error {
	for i := range e.spec.Events {
		ev := &e.spec.Events[i]
		switch ev.Kind {
		case EventGoalThrash:
			if t >= ev.AtTick && t < ev.UntilTick && (t-ev.AtTick)%ev.EveryTicks == 0 {
				if err := e.thrashFlip(ev.Class, ev.Factor); err != nil {
					return err
				}
			}
			if t == ev.UntilTick {
				if err := e.thrashRestore(ev.Class); err != nil {
					return err
				}
			}
		case EventFlashCrowd:
			if t == ev.AtTick {
				ci := e.classIndex(ev.Class)
				e.logf("event flash_crowd %s count=%d\n", ev.Class, ev.Count)
				for k := 0; k < ev.Count; k++ {
					if err := e.enroll(ci, t); err != nil {
						return err
					}
				}
			}
		case EventMassWithdraw:
			if t == ev.AtTick {
				if err := e.massWithdraw(ev); err != nil {
					return err
				}
			}
		case EventPhaseShift:
			if t == ev.AtTick {
				ci := e.classIndex(ev.Class)
				e.workScale[ci] *= ev.Factor
				e.logf("event phase_shift %s scale=%s\n", ev.Class, fstr(e.workScale[ci]))
			}
		case EventCrashRestart:
			if t == ev.AtTick {
				n, err := e.h.CrashRestart()
				if err != nil {
					return fmt.Errorf("scenario %s: %w", e.spec.Name, err)
				}
				e.crashes++
				e.logf("event crash_restart restored=%d\n", n)
			}
		case EventChipSaturate:
			if t == ev.AtTick {
				if err := e.h.SaturateChip(ev.Chip, ev.Factor); err != nil {
					return fmt.Errorf("scenario %s: %w", e.spec.Name, err)
				}
				e.logf("event chip_saturate chip=%d factor=%s\n", ev.Chip, fstr(ev.Factor))
			}
		}
	}
	return nil
}

// thrashFlip toggles every app of the class between its declared band
// and the band scaled by factor.
func (e *engine) thrashFlip(class string, factor float64) error {
	ci := e.classIndex(class)
	flipped := 0
	for _, a := range e.apps {
		if a.class != ci {
			continue
		}
		if a.thrashed {
			a.minRate, a.maxRate = a.baseMin, a.baseMax
		} else {
			a.minRate = a.baseMin * factor
			a.maxRate = a.baseMax * factor
		}
		a.thrashed = !a.thrashed
		if err := e.h.SetGoal(a.name, a.minRate, a.maxRate); err != nil {
			return fmt.Errorf("scenario %s: thrash %s: %w", e.spec.Name, a.name, err)
		}
		flipped++
	}
	e.logf("event goal_thrash %s factor=%s flipped=%d\n", class, fstr(factor), flipped)
	return nil
}

// thrashRestore puts every still-flipped app of the class back on its
// declared band when the thrash window closes.
func (e *engine) thrashRestore(class string) error {
	ci := e.classIndex(class)
	for _, a := range e.apps {
		if a.class != ci || !a.thrashed {
			continue
		}
		a.minRate, a.maxRate = a.baseMin, a.baseMax
		a.thrashed = false
		if err := e.h.SetGoal(a.name, a.minRate, a.maxRate); err != nil {
			return fmt.Errorf("scenario %s: unthrash %s: %w", e.spec.Name, a.name, err)
		}
	}
	return nil
}

// massWithdraw removes each matching app with probability Fraction.
func (e *engine) massWithdraw(ev *Event) error {
	ci := -1
	if ev.Class != "" {
		ci = e.classIndex(ev.Class)
	}
	kept := e.apps[:0]
	victims := 0
	for _, a := range e.apps {
		match := ci < 0 || a.class == ci
		if match && e.rng.Float64() < ev.Fraction {
			if err := e.withdraw(a); err != nil {
				return err
			}
			victims++
			continue
		}
		kept = append(kept, a)
	}
	e.apps = kept
	e.logf("event mass_withdraw class=%s victims=%d\n", ev.Class, victims)
	return nil
}

// arrivals enrolls each class's (possibly diurnally modulated) mean
// arrivals for this tick, carrying fractions across ticks.
func (e *engine) arrivals(t int) error {
	for ci := range e.spec.Classes {
		c := &e.spec.Classes[ci]
		if c.ArrivalsPerTick <= 0 {
			continue
		}
		mean := c.ArrivalsPerTick
		if c.DiurnalAmp > 0 {
			mean *= 1 + c.DiurnalAmp*math.Sin(2*math.Pi*float64(t)/c.DiurnalPeriodTicks)
		}
		e.arrCarry[ci] += mean
		for e.arrCarry[ci] >= 1 {
			e.arrCarry[ci]--
			if err := e.enroll(ci, t); err != nil {
				return err
			}
		}
	}
	return nil
}

// departures withdraws apps whose drawn lifetime expires at t.
func (e *engine) departures(t int) error {
	kept := e.apps[:0]
	for _, a := range e.apps {
		if a.dieAt >= 0 && t >= a.dieAt {
			if err := e.withdraw(a); err != nil {
				return err
			}
			continue
		}
		kept = append(kept, a)
	}
	e.apps = kept
	return nil
}

// speedup reads the class's scaling at a clamped unit count.
func (e *engine) speedup(ci, units int) float64 {
	pts := e.points[ci]
	if units < 1 {
		units = 1
	}
	if units > len(pts) {
		units = len(pts)
	}
	return pts[units-1].Rate
}

// emit models one tick of execution for every live app: its heart rate
// is the class base rate times the speedup of its current allocation,
// divided by its current work per beat (phase program × noise), and the
// integral beats land on the daemon through the real beat path.
func (e *engine) emit() error {
	if e.chipMode {
		// Chip partitions emit their own beats as the hardware model
		// executes; the daemon refuses API beats for chip-backed apps.
		// observe() recovers per-app emission from the beat counters.
		return nil
	}
	dt := e.spec.TickSeconds
	for _, a := range e.apps {
		c := &e.spec.Classes[a.class]
		work := e.workScale[a.class]
		if c.NoiseStd > 0 {
			work *= math.Max(0.25, 1+a.rng.Norm(0, c.NoiseStd))
		}
		a.lastWork = work
		share := a.share
		if share <= 0 || share > 1 {
			share = 1
		}
		rate := c.BaseRate * e.speedup(a.class, a.units) * share / work
		a.carry += rate * dt
		n := int(a.carry)
		a.carry -= float64(n)
		if n > server.MaxBeatBatch {
			n = server.MaxBeatBatch
		}
		a.emitted = n
		a.lastDist = 0
		if n == 0 {
			continue
		}
		if c.DistortionAmp > 0 {
			a.lastDist = c.DistortionAmp * (2*a.rng.Float64() - 1)
		}
		if err := e.h.Beat(a.name, n, a.lastDist); err != nil {
			return fmt.Errorf("scenario %s: beat %s: %w", e.spec.Name, a.name, err)
		}
	}
	return nil
}

// observe reads the post-tick serving state, mirrors each app's new
// allocation into the model, and appends the tick's transcript block
// (statuses arrive sorted by name, so the bytes are layout-independent
// exactly when the daemon's determinism contract holds).
func (e *engine) observe(t int) {
	statuses := e.h.List()
	byName := make(map[string]int, len(statuses))
	for i := range statuses {
		byName[statuses[i].Name] = i
	}
	for _, a := range e.apps {
		i, ok := byName[a.name]
		if !ok {
			continue
		}
		a.units = statuses[i].Cores.Units
		a.share = statuses[i].Cores.Share
		if a.share <= 0 {
			a.share = 1
		}
		if e.chipMode {
			beats := statuses[i].Observation.Beats
			a.emitted = int(beats - a.lastBeats)
			a.lastBeats = beats
		}
	}
	e.logf("tick %d apps=%d\n", t, len(statuses))
	for i := range statuses {
		st := &statuses[i]
		e.transcript = append(e.transcript, "  "...)
		e.transcript = append(e.transcript, st.Name...)
		e.logf(" u=%d sh=%s d=%s fit=%t beats=%d win=%s dist=%s goal=%s,%s\n",
			st.Cores.Units, fstr(st.Cores.Share), fstr(st.Cores.Demand), st.GoalMet,
			st.Observation.Beats, fstr(st.Observation.WindowRate),
			fstr(st.Observation.Distortion), fstr(st.Goal.MinRate), fstr(st.Goal.MaxRate))
	}
}

// score charges this tick to every live app's tally (post-warmup).
func (e *engine) score(t int) {
	if t < e.spec.WarmupTicks {
		return
	}
	dt := e.spec.TickSeconds
	n := len(e.apps)
	if cap(e.demScratch) < n {
		e.demScratch = make([]float64, n)
		e.okScratch = make([]bool, n)
	}
	dem, oks := e.demScratch[:n], e.okScratch[:n]
	fleetDemand := 0.0
	for i, a := range e.apps {
		if e.chipMode {
			// The oracle's core-count model does not price shared-resource
			// contention, so it cannot say what a chip fleet could have
			// delivered; regret is charged over all live time instead —
			// chip-mode scenarios must declare bands the hardware model
			// meets, and a saturated die shows up as regret until the
			// fleet migrates its way out.
			dem[i], oks[i] = 0, true
			continue
		}
		c := &e.spec.Classes[a.class]
		scaled := a.minRate * a.lastWork / c.BaseRate
		d, ok := oracleDemand(e.points[a.class], scaled)
		dem[i], oks[i] = d, ok
		if ok {
			fleetDemand += d
		} else {
			fleetDemand += float64(e.spec.Cores)
		}
	}
	feasible := e.chipMode || fleetDemand <= float64(e.spec.Cores)+1e-9
	for i, a := range e.apps {
		achieved := float64(a.emitted) / dt
		target := a.minRate
		tl := a.tally
		tl.liveSec += dt
		tl.rateInt += achieved * dt
		tl.targetInt += target * dt
		tl.distortion += math.Abs(a.lastDist) * dt
		hi := math.Inf(1)
		if a.maxRate > 0 {
			hi = a.maxRate * (1 + inBandTolerance)
		}
		if achieved >= target*(1-inBandTolerance) && achieved <= hi {
			tl.inBandSec += dt
		}
		if oks[i] && feasible {
			tl.meetSec += dt
			if achieved < target {
				tl.regretSec += (target - achieved) / target * dt
			}
		}
	}
}

// fstr formats a float with exact round-trip precision: transcript
// bytes must distinguish every distinct float64.
func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// logf appends one formatted line to the transcript.
func (e *engine) logf(format string, args ...any) {
	e.transcript = fmt.Appendf(e.transcript, format, args...)
}

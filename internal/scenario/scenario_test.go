package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestScenarioBudgets is the scenario tier's main gate: every builtin
// must meet its own regret budgets on the default daemon layout.
func TestScenarioBudgets(t *testing.T) {
	for _, spec := range Builtins() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(spec, Options{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := res.Scorecard.CheckBudgets(spec.Budgets); err != nil {
				t.Fatalf("budgets: %v", err)
			}
			if res.Scorecard.Beats == 0 || res.Scorecard.Decisions == 0 {
				t.Fatalf("scenario drove no traffic: %+v", res.Scorecard)
			}
		})
	}
}

// TestScenarioReplayByteIdentical is the determinism gate: a fixed
// (spec, seed) must produce the same transcript bytes on every shard
// and tick-worker layout, including through flash crowds, priority
// classes, and crash-restart recovery.
func TestScenarioReplayByteIdentical(t *testing.T) {
	layouts := []Options{
		{Shards: 1, TickWorkers: 1},
		{Shards: 4, TickWorkers: 3},
		{Shards: 8, TickWorkers: 2},
	}
	for _, name := range []string{"flash-crowd", "slo-classes", "crash-restart", "torture", "federation"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			var want *Result
			for _, opt := range layouts {
				res, err := Run(spec, opt)
				if err != nil {
					t.Fatalf("layout %+v: %v", opt, err)
				}
				if want == nil {
					want = res
					continue
				}
				if !bytes.Equal(res.Transcript, want.Transcript) {
					t.Fatalf("layout %+v transcript diverges:\n%s", opt,
						firstDiff(want.Transcript, res.Transcript))
				}
				if res.Scorecard.TranscriptSHA256 != want.Scorecard.TranscriptSHA256 {
					t.Fatalf("layout %+v hash %s != %s", opt,
						res.Scorecard.TranscriptSHA256, want.Scorecard.TranscriptSHA256)
				}
			}
		})
	}
}

// firstDiff locates the first line where two transcripts diverge.
func firstDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return "transcripts are prefixes of each other"
}

// TestScenarioSameSeedSameScore pins that rerunning a spec reproduces
// the full scorecard, not just the transcript.
func TestScenarioSameSeedSameScore(t *testing.T) {
	spec, err := ByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, Options{Shards: 3, TickWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a.Scorecard)
	jb, _ := json.Marshal(b.Scorecard)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("scorecards diverge:\n%s\n%s", ja, jb)
	}
}

// TestScenarioSeedChangesTranscript guards against the harness
// accidentally ignoring the seed (a constant transcript would make the
// replay gate vacuous).
func TestScenarioSeedChangesTranscript(t *testing.T) {
	spec, err := ByName("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed++
	b, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Transcript, b.Transcript) {
		t.Fatal("different seeds produced identical transcripts")
	}
}

// TestScenarioPriorityClasses asserts the slo-classes outcome by
// class: gold's weight must buy it the band while bronze starves — if
// both classes land in the middle, priority plumbing is broken.
func TestScenarioPriorityClasses(t *testing.T) {
	spec, err := ByName("slo-classes")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inBand := map[string]float64{}
	live := map[string]float64{}
	for i := range res.Scorecard.Apps {
		a := &res.Scorecard.Apps[i]
		inBand[a.Class] += a.InBandFrac * a.LiveSeconds
		live[a.Class] += a.LiveSeconds
	}
	gold := inBand["gold"] / live["gold"]
	bronze := inBand["bronze"] / live["bronze"]
	if gold < 0.8 {
		t.Fatalf("gold in-band %.3f < 0.8 — priority not honored", gold)
	}
	if bronze > gold/2 {
		t.Fatalf("bronze in-band %.3f not starved relative to gold %.3f", bronze, gold)
	}
}

// TestScenarioCrashRestartRecoversFleet pins that the crash-restart
// scenario actually crashed and that recovery kept the fleet serving
// with steady-state quality.
func TestScenarioCrashRestartRecoversFleet(t *testing.T) {
	spec, err := ByName("crash-restart")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, Options{Shards: 4, TickWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scorecard.Crashes != 2 {
		t.Fatalf("crashes = %d, want 2", res.Scorecard.Crashes)
	}
	if err := res.Scorecard.CheckBudgets(spec.Budgets); err != nil {
		t.Fatalf("recovery degraded service: %v", err)
	}
}

// TestScenarioFederationMigrationRescues is the federation gate: when
// one die's memory bandwidth collapses, live migration must walk
// applications off it until the fleet serves its bands again. The
// control run — same spec, migration disabled — must visibly strand
// the saturated die's tenants, or the gate proves nothing.
func TestScenarioFederationMigrationRescues(t *testing.T) {
	spec, err := ByName("federation")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scorecard.CheckBudgets(spec.Budgets); err != nil {
		t.Fatalf("federation budgets: %v", err)
	}
	if res.Scorecard.Migrations == 0 {
		t.Fatal("saturating a die caused no migrations")
	}

	control := spec
	control.MigrateSlowdown = -1 // migration disabled: the stranded-fleet control
	ctl, err := Run(control, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Scorecard.Migrations != 0 {
		t.Fatalf("control migrated %d times with migration disabled", ctl.Scorecard.Migrations)
	}
	if ctl.Scorecard.FleetRegretFrac < 2*res.Scorecard.FleetRegretFrac {
		t.Fatalf("control regret %.4f not clearly worse than migrated %.4f — saturation isn't biting",
			ctl.Scorecard.FleetRegretFrac, res.Scorecard.FleetRegretFrac)
	}
	if ctl.Scorecard.FleetInBandFrac > res.Scorecard.FleetInBandFrac-0.2 {
		t.Fatalf("control in-band %.4f too close to migrated %.4f",
			ctl.Scorecard.FleetInBandFrac, res.Scorecard.FleetInBandFrac)
	}
}

// TestCrashRestartRequiresJournal: the chaos host refuses to fake a
// crash when the daemon has no journal to recover from.
func TestCrashRestartRequiresJournal(t *testing.T) {
	spec, err := ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewDaemonHost(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.CrashRestart(); err == nil {
		t.Fatal("CrashRestart on a journal-less host succeeded")
	}
}

// TestBuiltinsValidateAndRoundTrip: every builtin passes its own
// validation and survives a JSON encode/decode round trip unchanged —
// the builtins double as documentation of the spec format.
func TestBuiltinsValidateAndRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, spec := range Builtins() {
		if err := spec.Validate(); err != nil {
			t.Fatalf("builtin %s invalid: %v", spec.Name, err)
		}
		if seen[spec.Name] {
			t.Fatalf("duplicate builtin name %q", spec.Name)
		}
		seen[spec.Name] = true
		data, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("builtin %s does not round-trip: %v", spec.Name, err)
		}
		again, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("builtin %s round trip changed:\n%s\n%s", spec.Name, data, again)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("ByName on unknown scenario succeeded")
	}
}

// TestValidateRejectsBadSpecs covers the decoder/validator error paths
// the fuzz target relies on.
func TestValidateRejectsBadSpecs(t *testing.T) {
	base := func() Spec {
		s, err := ByName("steady")
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	cases := map[string]func(*Spec){
		"empty name":        func(s *Spec) { s.Name = "" },
		"name with slash":   func(s *Spec) { s.Name = "a/b" },
		"zero ticks":        func(s *Spec) { s.Ticks = 0 },
		"huge ticks":        func(s *Spec) { s.Ticks = maxTicks + 1 },
		"nan tick seconds":  func(s *Spec) { s.TickSeconds = nan() },
		"zero cores":        func(s *Spec) { s.Cores = 0 },
		"warmup past end":   func(s *Spec) { s.WarmupTicks = s.Ticks },
		"no classes":        func(s *Spec) { s.Classes = nil },
		"empty fleet":       func(s *Spec) { s.Classes[0].Count = 0 },
		"duplicate class":   func(s *Spec) { s.Classes = append(s.Classes, s.Classes[0]) },
		"unknown workload":  func(s *Spec) { s.Classes[0].Workload = "doom" },
		"negative min rate": func(s *Spec) { s.Classes[0].MinRate = -1 },
		"nan min rate":      func(s *Spec) { s.Classes[0].MinRate = nan() },
		"inverted band":     func(s *Spec) { s.Classes[0].MaxRate = s.Classes[0].MinRate / 2 },
		"negative priority": func(s *Spec) { s.Classes[0].Priority = -2 },
		"nan base rate":     func(s *Spec) { s.Classes[0].BaseRate = nan() },
		"negative arrivals": func(s *Spec) { s.Classes[0].ArrivalsPerTick = -0.5 },
		"amp without period": func(s *Spec) {
			s.Classes[0].DiurnalAmp = 0.5
			s.Classes[0].DiurnalPeriodTicks = 0
		},
		"amp of one":      func(s *Spec) { s.Classes[0].DiurnalAmp = 1 },
		"noise above one": func(s *Spec) { s.Classes[0].NoiseStd = 1.5 },
		"unordered phases": func(s *Spec) {
			s.Classes[0].Phases = []PhaseStep{{AtTick: 30, WorkScale: 2}, {AtTick: 10, WorkScale: 1}}
		},
		"phase at end": func(s *Spec) {
			s.Classes[0].Phases = []PhaseStep{{AtTick: s.Ticks, WorkScale: 2}}
		},
		"phase scale zero": func(s *Spec) {
			s.Classes[0].Phases = []PhaseStep{{AtTick: 10, WorkScale: 0}}
		},
		"unknown event kind": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: "meteor"}}
		},
		"event for unknown class": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: EventFlashCrowd, Class: "ghost", Count: 3}}
		},
		"events out of order": func(s *Spec) {
			s.Events = []Event{
				{AtTick: 50, Kind: EventCrashRestart},
				{AtTick: 10, Kind: EventCrashRestart},
			}
		},
		"flash count zero": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: EventFlashCrowd, Class: "web"}}
		},
		"withdraw fraction above one": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: EventMassWithdraw, Fraction: 1.5}}
		},
		"thrash without cadence": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: EventGoalThrash, Class: "web", Factor: 2, UntilTick: 20}}
		},
		"thrash window inverted": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: EventGoalThrash, Class: "web", Factor: 2, EveryTicks: 2, UntilTick: 5}}
		},
		"nan budget":        func(s *Spec) { s.Budgets.MaxFleetRegretFrac = nan() },
		"negative chips":    func(s *Spec) { s.Chips = -1 },
		"too many chips":    func(s *Spec) { s.Chips = maxChips + 1 },
		"cores below chips": func(s *Spec) { s.Chips = s.Cores + 1 },
		"tiles without chips": func(s *Spec) {
			s.ChipTiles = 16
		},
		"bandwidth without chips": func(s *Spec) {
			s.ChipMemBWGBps = 30
		},
		"migrate slowdown without chips": func(s *Spec) {
			s.MigrateSlowdown = -1
		},
		"migrate slowdown of one": func(s *Spec) {
			s.Chips = 2
			s.MigrateSlowdown = 1
		},
		"nan chip bandwidth": func(s *Spec) {
			s.Chips = 2
			s.ChipMemBWGBps = nan()
		},
		"chip_saturate without chips": func(s *Spec) {
			s.Events = []Event{{AtTick: 5, Kind: EventChipSaturate, Factor: 0.5}}
		},
		"chip_saturate chip out of range": func(s *Spec) {
			s.Chips = 2
			s.Events = []Event{{AtTick: 5, Kind: EventChipSaturate, Chip: 2, Factor: 0.5}}
		},
		"chip_saturate factor above one": func(s *Spec) {
			s.Chips = 2
			s.Events = []Event{{AtTick: 5, Kind: EventChipSaturate, Chip: 0, Factor: 1.5}}
		},
		"chip_saturate factor zero": func(s *Spec) {
			s.Chips = 2
			s.Events = []Event{{AtTick: 5, Kind: EventChipSaturate, Chip: 0}}
		},
	}
	for name, mutate := range cases {
		s := base()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the spec", name)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestDecodeSpecRejectsMalformed covers the decode-layer guards on top
// of validation: unknown fields and trailing data.
func TestDecodeSpecRejectsMalformed(t *testing.T) {
	spec, err := ByName("steady")
	if err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSpec(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, data := range map[string][]byte{
		"empty":         nil,
		"not json":      []byte("ticks: 5"),
		"unknown field": []byte(`{"name":"x","ticks":1,"tick_seconds":1,"cores":1,"classes":[],"bogus":1}`),
		"trailing data": append(append([]byte{}, good...), []byte(" {}")...),
	} {
		if _, err := DecodeSpec(data); err == nil {
			t.Errorf("%s: DecodeSpec accepted malformed input", name)
		}
	}
}

// TestCheckBudgets exercises each gate direction.
func TestCheckBudgets(t *testing.T) {
	sc := Scorecard{
		Scenario:        "x",
		FleetRegretFrac: 0.2, FleetInBandFrac: 0.5,
		WorstApp: "a", WorstRegretFrac: 0.4,
	}
	if err := sc.CheckBudgets(Budgets{}); err != nil {
		t.Fatalf("ungated budgets failed: %v", err)
	}
	if err := sc.CheckBudgets(Budgets{MaxFleetRegretFrac: 0.3, MinFleetInBandFrac: 0.4, MaxAppRegretFrac: 0.5}); err != nil {
		t.Fatalf("satisfied budgets failed: %v", err)
	}
	err := sc.CheckBudgets(Budgets{MaxFleetRegretFrac: 0.1, MinFleetInBandFrac: 0.6, MaxAppRegretFrac: 0.3})
	if err == nil {
		t.Fatal("violated budgets passed")
	}
	for _, want := range []string{"fleet regret", "fleet in-band", "worst app"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

package scenario

import (
	"errors"
	"fmt"
	"time"

	"angstrom/internal/journal"
	"angstrom/internal/server"
)

// DaemonHost drives a real server.Daemon. The daemon runs on its
// accelerated simulation clock (Accel = the scenario's tick seconds, so
// each manual Tick advances sim time by exactly one scenario tick) with
// the periodic ticker effectively disabled by a huge Period. Scenarios
// containing crash_restart events get a journal-only persistence stack
// on an in-memory filesystem: snapshots are disabled, so recovery is a
// full journal replay through the live mutation paths and the restored
// daemon is byte-identical to one that never crashed.
type DaemonHost struct {
	cfg server.Config
	fs  *journal.MemFS
	d   *server.Daemon
}

// NewDaemonHost builds the daemon layout (shards, tick workers) the
// scenario should run against.
func NewDaemonHost(spec Spec, opts Options) (*DaemonHost, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	h := &DaemonHost{
		cfg: server.Config{
			Cores:         spec.Cores,
			Period:        time.Hour,
			Accel:         spec.TickSeconds,
			Oversubscribe: spec.Oversubscribe,
			Shards:        opts.Shards,
			TickWorkers:   opts.TickWorkers,
		},
	}
	if spec.Chips > 0 {
		h.cfg.Chip = &server.ChipConfig{
			Chips:           spec.Chips,
			Tiles:           spec.ChipTiles,
			MemBandwidthBps: spec.ChipMemBWGBps * 1e9,
			MigrateSlowdown: spec.MigrateSlowdown,
		}
	}
	if spec.needsJournal() {
		h.fs = journal.NewMemFS()
		h.cfg.DataDir = "scenario"
		h.cfg.FS = h.fs
		h.cfg.SnapshotEvery = -1
		h.cfg.JournalFlush = -1
	}
	d, err := server.NewDaemon(h.cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: daemon: %w", err)
	}
	h.d = d
	return h, nil
}

func (h *DaemonHost) Enroll(req server.EnrollRequest) error { return h.d.Enroll(req) }
func (h *DaemonHost) Withdraw(name string) error            { return h.d.Withdraw(name) }
func (h *DaemonHost) SetGoal(name string, minRate, maxRate float64) error {
	return h.d.SetGoal(name, minRate, maxRate)
}
func (h *DaemonHost) Beat(name string, count int, distortion float64) error {
	return h.d.Beat(name, count, distortion)
}
func (h *DaemonHost) Tick()                       { h.d.Tick() }
func (h *DaemonHost) List() []server.AppStatus    { return h.d.List() }
func (h *DaemonHost) Stats() server.StatsResponse { return h.d.Stats() }
func (h *DaemonHost) SaturateChip(chip int, factor float64) error {
	return h.d.SaturateChip(chip, factor)
}

// CrashRestart closes the current daemon — with snapshots disabled that
// is a journal flush, not a checkpoint — and boots a successor from the
// same in-memory filesystem, forcing a full journal replay.
func (h *DaemonHost) CrashRestart() (int, error) {
	if h.fs == nil {
		return 0, errors.New("scenario: crash_restart requires a journaled host (spec has no crash_restart event)")
	}
	if err := h.d.Close(); err != nil {
		return 0, fmt.Errorf("scenario: crash: %w", err)
	}
	d, err := server.NewDaemon(h.cfg)
	if err != nil {
		return 0, fmt.Errorf("scenario: recovery: %w", err)
	}
	h.d = d
	return d.RecoveryInfo().Apps, nil
}

func (h *DaemonHost) Close() error { return h.d.Close() }

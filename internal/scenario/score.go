package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"angstrom/internal/oracle"
)

// inBandTolerance widens the goal band for the in-band check: beats are
// emitted in integral batches per tick, so a rate that sits exactly on
// the band edge quantizes in and out of it. 10% absorbs the
// quantization without hiding real misses.
const inBandTolerance = 0.10

// AppScore is one application's integrated scenario outcome.
type AppScore struct {
	Name  string `json:"name"`
	Class string `json:"class"`
	// LiveSeconds is the scored (post-warmup) time the app was enrolled.
	LiveSeconds float64 `json:"live_seconds"`
	// InBandFrac is the fraction of live time the achieved rate sat
	// inside the goal band (with the quantization tolerance).
	InBandFrac float64 `json:"in_band_frac"`
	// OracleMeetSeconds is the live time during which a clairvoyant
	// allocator could have met the goal within the shared pool; regret
	// is only charged there — missing an impossible goal is not regret.
	OracleMeetSeconds float64 `json:"oracle_meet_seconds"`
	// RegretSeconds integrates the normalized shortfall
	// max(0, target-achieved)/target over oracle-meetable time.
	RegretSeconds float64 `json:"regret_seconds"`
	// RegretFrac is RegretSeconds / OracleMeetSeconds (0 when the
	// oracle never had a feasible tick).
	RegretFrac float64 `json:"regret_frac"`
	// DistortionIntegral integrates |distortion| over live time.
	DistortionIntegral float64 `json:"distortion_integral"`
	// MeanRate and MeanTarget summarize the achieved and asked rates.
	MeanRate   float64 `json:"mean_rate"`
	MeanTarget float64 `json:"mean_target"`
}

// Scorecard is a scenario run's full outcome.
type Scorecard struct {
	Scenario string `json:"scenario"`
	Seed     uint64 `json:"seed"`
	Ticks    int    `json:"ticks"`
	// Apps is every application that ever enrolled, sorted by name.
	Apps []AppScore `json:"apps"`
	// FleetRegretFrac is sum(RegretSeconds) / sum(OracleMeetSeconds).
	FleetRegretFrac float64 `json:"fleet_regret_frac"`
	// FleetInBandFrac is the live-time-weighted in-band fraction.
	FleetInBandFrac float64 `json:"fleet_in_band_frac"`
	// WorstApp / WorstRegretFrac single out the worst-served app.
	WorstApp        string  `json:"worst_app,omitempty"`
	WorstRegretFrac float64 `json:"worst_regret_frac"`
	// PeakApps is the largest concurrent fleet observed.
	PeakApps int `json:"peak_apps"`
	// Crashes counts crash-restart events executed.
	Crashes int `json:"crashes"`
	// Migrations counts inter-die partition moves the daemon applied
	// (chip-backed scenarios only).
	Migrations uint64 `json:"migrations,omitempty"`
	// Beats and Decisions are the daemon's final counters.
	Beats     uint64 `json:"beats"`
	Decisions uint64 `json:"decisions"`
	// TranscriptSHA256 fingerprints the run's byte-exact transcript.
	TranscriptSHA256 string `json:"transcript_sha256"`
}

// CheckBudgets compares the scorecard against the spec's gates,
// returning one error naming every violated budget.
func (sc *Scorecard) CheckBudgets(b Budgets) error {
	var viol []string
	if b.MaxFleetRegretFrac > 0 && sc.FleetRegretFrac > b.MaxFleetRegretFrac {
		viol = append(viol, fmt.Sprintf("fleet regret %.4f > budget %.4f", sc.FleetRegretFrac, b.MaxFleetRegretFrac))
	}
	if b.MinFleetInBandFrac > 0 && sc.FleetInBandFrac < b.MinFleetInBandFrac {
		viol = append(viol, fmt.Sprintf("fleet in-band %.4f < budget %.4f", sc.FleetInBandFrac, b.MinFleetInBandFrac))
	}
	if b.MaxAppRegretFrac > 0 && sc.WorstRegretFrac > b.MaxAppRegretFrac {
		viol = append(viol, fmt.Sprintf("worst app (%s) regret %.4f > budget %.4f", sc.WorstApp, sc.WorstRegretFrac, b.MaxAppRegretFrac))
	}
	if len(viol) > 0 {
		return fmt.Errorf("scenario %s: budget violations: %s", sc.Scenario, strings.Join(viol, "; "))
	}
	return nil
}

// appTally accumulates one application's scoring integrals while it is
// live; it is folded into an AppScore when the app leaves or the
// scenario ends.
type appTally struct {
	name       string
	class      string
	liveSec    float64
	inBandSec  float64
	meetSec    float64
	regretSec  float64
	distortion float64
	rateInt    float64
	targetInt  float64
}

func (a *appTally) finish() AppScore {
	s := AppScore{
		Name: a.name, Class: a.class,
		LiveSeconds:        a.liveSec,
		OracleMeetSeconds:  a.meetSec,
		RegretSeconds:      a.regretSec,
		DistortionIntegral: a.distortion,
	}
	if a.liveSec > 0 {
		s.InBandFrac = a.inBandSec / a.liveSec
		s.MeanRate = a.rateInt / a.liveSec
		s.MeanTarget = a.targetInt / a.liveSec
	}
	if a.meetSec > 0 {
		s.RegretFrac = a.regretSec / a.meetSec
	}
	return s
}

// oracleDemand inverts a class's speedup points for the units a
// clairvoyant allocator would need to deliver scaledTarget (the target
// expressed as a required speedup over one dedicated unit). ok is false
// when even the whole pool cannot meet it.
func oracleDemand(points []oracle.Point, scaledTarget float64) (units float64, ok bool) {
	idx, ok := oracle.BestMeeting(points, scaledTarget)
	if idx < 0 {
		return 0, false
	}
	if !ok {
		return float64(len(points)), false
	}
	if idx == 0 {
		// Sub-unit demands time-share a single core.
		if r := points[0].Rate; r > 0 && scaledTarget < r {
			return math.Max(scaledTarget/r, 0.01), true
		}
		return 1, true
	}
	return float64(idx + 1), true
}

// collectScores folds live tallies and finished apps into the final
// sorted scorecard.
func collectScores(sc *Scorecard, finished []AppScore, live []*appTally) {
	apps := append([]AppScore{}, finished...)
	for _, t := range live {
		apps = append(apps, t.finish())
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	sc.Apps = apps
	var regret, meet, inBand, liveSec float64
	worst := -1
	for i := range apps {
		a := &apps[i]
		regret += a.RegretSeconds
		meet += a.OracleMeetSeconds
		inBand += a.InBandFrac * a.LiveSeconds
		liveSec += a.LiveSeconds
		if a.OracleMeetSeconds > 0 && (worst < 0 || a.RegretFrac > apps[worst].RegretFrac) {
			worst = i
		}
	}
	if meet > 0 {
		sc.FleetRegretFrac = regret / meet
	}
	if liveSec > 0 {
		sc.FleetInBandFrac = inBand / liveSec
	}
	if worst >= 0 {
		sc.WorstApp = apps[worst].Name
		sc.WorstRegretFrac = apps[worst].RegretFrac
	}
}

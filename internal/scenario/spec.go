// Package scenario is the deterministic torture harness for the serving
// daemon: declarative scenario specs — diurnal load curves, flash
// crowds, phase-changing applications, priority/SLO classes, and chaos
// events (mass withdraw, goal thrash, journal crash-restart) — compile
// into timed event schedules driven through the daemon's real mutation
// paths on the accelerated sim clock, and every run is scored against
// internal/oracle for per-application and fleet regret. Everything is
// seeded: a fixed (spec, seed) replays byte-identically across shard
// and worker layouts, which is what makes a regret budget a test gate
// instead of a flaky aspiration.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"angstrom/internal/workload"
)

// Event kinds a scenario schedule may carry.
const (
	// EventFlashCrowd enrolls Count applications of one class in a
	// single tick — the 10x-arrival burst.
	EventFlashCrowd = "flash_crowd"
	// EventMassWithdraw withdraws a random Fraction of the live fleet
	// (of one class, or of every class when Class is empty).
	EventMassWithdraw = "mass_withdraw"
	// EventGoalThrash multiplies a class's goal band by Factor and back,
	// flipping every EveryTicks until UntilTick.
	EventGoalThrash = "goal_thrash"
	// EventCrashRestart kills the daemon mid-scenario and recovers a
	// successor from its journal through the real boot path.
	EventCrashRestart = "crash_restart"
	// EventPhaseShift multiplies a class's work-per-beat by Factor from
	// this tick on (a program-phase change that invalidates every
	// cached demand of the class).
	EventPhaseShift = "phase_shift"
	// EventChipSaturate derates one die's off-chip memory bandwidth to
	// Factor of nominal (a thermal throttle / failed channel): every
	// partition on the die suddenly contends for less capacity, and the
	// fleet's migration policy is what's under test. Factor 1 restores
	// nominal. Requires a chip-backed scenario (Chips >= 1).
	EventChipSaturate = "chip_saturate"
)

// Spec is one declarative scenario: a fleet of application classes, a
// timed chaos schedule, and the regret budgets the run must meet.
type Spec struct {
	Name string `json:"name"`
	// Seed keys every stochastic element (arrival jitter, beat noise,
	// withdraw selection); one seed, one byte-exact transcript.
	Seed uint64 `json:"seed"`
	// Ticks is the scenario length in decision periods.
	Ticks int `json:"ticks"`
	// TickSeconds is the simulated seconds each tick advances the
	// accelerated clock.
	TickSeconds float64 `json:"tick_seconds"`
	// Cores is the daemon's shared pool.
	Cores int `json:"cores"`
	// Oversubscribe admits fleets beyond one app per core (time-shared).
	Oversubscribe bool `json:"oversubscribe,omitempty"`
	// Chips, when positive, runs the scenario against a chip-backed
	// daemon: a fleet of Chips identical dies, enrollments placed by
	// predicted shared-resource pressure and migrated off saturated
	// dies. Applications then run on the daemon's hardware model —
	// their beats are chip-emitted, so classes' BaseRate/noise/phase
	// programs only shape goals and scoring, not execution.
	Chips int `json:"chips,omitempty"`
	// ChipTiles is each die's physical tile count (0 = the daemon's
	// default sizing). Only meaningful with Chips >= 1.
	ChipTiles int `json:"chip_tiles,omitempty"`
	// ChipMemBWGBps overrides each die's off-chip memory bandwidth in
	// GB/s (0 = the chip model's default). Only meaningful with
	// Chips >= 1.
	ChipMemBWGBps float64 `json:"chip_mem_bw_gbps,omitempty"`
	// MigrateSlowdown passes the daemon's migration trigger through:
	// 0 = the server default, negative disables migration entirely
	// (the no-migration control for federation scenarios). Only
	// meaningful with Chips >= 2.
	MigrateSlowdown float64 `json:"migrate_slowdown,omitempty"`
	// WarmupTicks excludes the controllers' convergence transient from
	// scoring (the ticks still run and still appear in the transcript).
	WarmupTicks int     `json:"warmup_ticks,omitempty"`
	Classes     []Class `json:"classes"`
	Events      []Event `json:"events,omitempty"`
	Budgets     Budgets `json:"budgets,omitempty"`
}

// Class describes one population of like applications.
type Class struct {
	Name string `json:"name"`
	// Workload names the internal/workload spec whose scaling curve the
	// class declares to the daemon and the engine's app model obeys.
	Workload string `json:"workload"`
	// Count applications enroll at tick zero.
	Count int `json:"count"`
	// MinRate/MaxRate is the declared goal band in beats/s.
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
	// Priority is the water-fill weight (0 = default 1).
	Priority float64 `json:"priority,omitempty"`
	// BaseRate is the modeled heart rate in beats/s on one dedicated
	// core at nominal work per beat.
	BaseRate float64 `json:"base_rate"`
	// ArrivalsPerTick is the mean arrival rate of new applications;
	// DiurnalAmp/DiurnalPeriodTicks modulate it sinusoidally.
	ArrivalsPerTick    float64 `json:"arrivals_per_tick,omitempty"`
	DiurnalAmp         float64 `json:"diurnal_amp,omitempty"`
	DiurnalPeriodTicks float64 `json:"diurnal_period_ticks,omitempty"`
	// MeanLifeTicks draws each arrival's lifetime from an exponential
	// (0 = applications stay until withdrawn by an event).
	MeanLifeTicks float64 `json:"mean_life_ticks,omitempty"`
	// NoiseStd perturbs each tick's work multiplicatively.
	NoiseStd float64 `json:"noise_std,omitempty"`
	// DistortionAmp bounds the uniform per-batch distortion reports.
	DistortionAmp float64 `json:"distortion_amp,omitempty"`
	// Phases is the class's deterministic phase program: at each step's
	// tick the work-per-beat multiplier jumps to WorkScale. Steps must
	// be strictly increasing in AtTick.
	Phases []PhaseStep `json:"phases,omitempty"`
}

// PhaseStep is one step of a class's phase program.
type PhaseStep struct {
	AtTick    int     `json:"at_tick"`
	WorkScale float64 `json:"work_scale"`
}

// Event is one scheduled chaos action.
type Event struct {
	AtTick int    `json:"at_tick"`
	Kind   string `json:"kind"`
	// Class scopes the event (required for flash_crowd, goal_thrash and
	// phase_shift; empty means every class for mass_withdraw).
	Class string `json:"class,omitempty"`
	// Count is the flash crowd's arrival burst size.
	Count int `json:"count,omitempty"`
	// Fraction is the mass withdrawal's victim probability in (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
	// Factor scales the goal band (goal_thrash) or the work per beat
	// (phase_shift).
	Factor float64 `json:"factor,omitempty"`
	// EveryTicks/UntilTick bound the goal thrash's flip cadence.
	EveryTicks int `json:"every_ticks,omitempty"`
	UntilTick  int `json:"until_tick,omitempty"`
	// Chip is the die index chip_saturate targets.
	Chip int `json:"chip,omitempty"`
}

// Budgets are the scenario's acceptance gates; zero fields are ungated.
type Budgets struct {
	// MaxFleetRegretFrac caps the fleet's integrated normalized
	// shortfall over oracle-meetable time.
	MaxFleetRegretFrac float64 `json:"max_fleet_regret_frac,omitempty"`
	// MinFleetInBandFrac floors the live-time fraction the fleet spends
	// inside its goal bands.
	MinFleetInBandFrac float64 `json:"min_fleet_in_band_frac,omitempty"`
	// MaxAppRegretFrac caps the worst single application's regret.
	MaxAppRegretFrac float64 `json:"max_app_regret_frac,omitempty"`
}

// Size caps: a spec is a test input (and a fuzz target), so every
// dimension is bounded far above any useful scenario but far below
// anything that could wedge the suite.
const (
	maxTicks     = 1_000_000
	maxClasses   = 64
	maxFleet     = 100_000
	maxEvents    = 10_000
	maxPriority  = 1e6
	maxWorkScale = 100
	maxChips     = 64
)

func validName(s string) bool {
	return s != "" && len(s) <= 64 && s == strings.TrimSpace(s) && !strings.ContainsAny(s, "/ \t\n")
}

func finitePos(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0 }

func finiteNonNeg(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }

// Validate checks every parameter against the engine's contracts; the
// fuzz target asserts that anything it accepts drives a run that cannot
// panic and round-trips through JSON unchanged.
func (s *Spec) Validate() error {
	if !validName(s.Name) {
		return fmt.Errorf("scenario: invalid name %q", s.Name)
	}
	if s.Ticks < 1 || s.Ticks > maxTicks {
		return fmt.Errorf("scenario %s: ticks %d outside [1, %d]", s.Name, s.Ticks, maxTicks)
	}
	if !finitePos(s.TickSeconds) || s.TickSeconds > 3600 {
		return fmt.Errorf("scenario %s: tick_seconds %g outside (0, 3600]", s.Name, s.TickSeconds)
	}
	if s.Cores < 1 || s.Cores > 4096 {
		return fmt.Errorf("scenario %s: cores %d outside [1, 4096]", s.Name, s.Cores)
	}
	if s.WarmupTicks < 0 || s.WarmupTicks >= s.Ticks {
		return fmt.Errorf("scenario %s: warmup_ticks %d outside [0, ticks)", s.Name, s.WarmupTicks)
	}
	if s.Chips < 0 || s.Chips > maxChips {
		return fmt.Errorf("scenario %s: chips %d outside [0, %d]", s.Name, s.Chips, maxChips)
	}
	if s.Chips > 0 && s.Cores < s.Chips {
		return fmt.Errorf("scenario %s: cores %d below chips %d (each die needs a core unit)", s.Name, s.Cores, s.Chips)
	}
	if s.ChipTiles < 0 || s.ChipTiles > 4096 {
		return fmt.Errorf("scenario %s: chip_tiles %d outside [0, 4096]", s.Name, s.ChipTiles)
	}
	if !finiteNonNeg(s.ChipMemBWGBps) || s.ChipMemBWGBps > 100_000 {
		return fmt.Errorf("scenario %s: chip_mem_bw_gbps %g outside [0, 100000]", s.Name, s.ChipMemBWGBps)
	}
	if math.IsNaN(s.MigrateSlowdown) || math.IsInf(s.MigrateSlowdown, 0) || s.MigrateSlowdown >= 1 {
		return fmt.Errorf("scenario %s: migrate_slowdown %g not below 1 and finite", s.Name, s.MigrateSlowdown)
	}
	if s.Chips == 0 && (s.ChipTiles != 0 || s.ChipMemBWGBps != 0 || s.MigrateSlowdown != 0) {
		return fmt.Errorf("scenario %s: chip parameters set without chips", s.Name)
	}
	if len(s.Classes) == 0 || len(s.Classes) > maxClasses {
		return fmt.Errorf("scenario %s: %d classes outside [1, %d]", s.Name, len(s.Classes), maxClasses)
	}
	initial := 0
	seen := map[string]bool{}
	for i := range s.Classes {
		c := &s.Classes[i]
		if err := c.validate(s); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario %s: duplicate class %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		initial += c.Count
	}
	if initial < 1 {
		return fmt.Errorf("scenario %s: no applications enroll at tick zero", s.Name)
	}
	if initial > maxFleet {
		return fmt.Errorf("scenario %s: initial fleet %d exceeds %d", s.Name, initial, maxFleet)
	}
	if len(s.Events) > maxEvents {
		return fmt.Errorf("scenario %s: %d events exceed %d", s.Name, len(s.Events), maxEvents)
	}
	prev := 0
	for i := range s.Events {
		ev := &s.Events[i]
		if err := ev.validate(s, seen); err != nil {
			return err
		}
		if ev.AtTick < prev {
			return fmt.Errorf("scenario %s: events out of order at tick %d (after %d)", s.Name, ev.AtTick, prev)
		}
		prev = ev.AtTick
	}
	b := s.Budgets
	if !finiteNonNeg(b.MaxFleetRegretFrac) || !finiteNonNeg(b.MaxAppRegretFrac) ||
		!finiteNonNeg(b.MinFleetInBandFrac) || b.MinFleetInBandFrac > 1 {
		return fmt.Errorf("scenario %s: invalid budgets %+v", s.Name, b)
	}
	return nil
}

func (c *Class) validate(s *Spec) error {
	if !validName(c.Name) {
		return fmt.Errorf("scenario %s: invalid class name %q", s.Name, c.Name)
	}
	if _, err := workload.ByName(c.Workload); err != nil {
		return fmt.Errorf("scenario %s class %s: %w", s.Name, c.Name, err)
	}
	if c.Count < 0 || c.Count > maxFleet {
		return fmt.Errorf("scenario %s class %s: count %d outside [0, %d]", s.Name, c.Name, c.Count, maxFleet)
	}
	if !finitePos(c.MinRate) {
		return fmt.Errorf("scenario %s class %s: min_rate %g not positive and finite", s.Name, c.Name, c.MinRate)
	}
	if !finiteNonNeg(c.MaxRate) || (c.MaxRate != 0 && c.MaxRate < c.MinRate) {
		return fmt.Errorf("scenario %s class %s: bad rate band [%g, %g]", s.Name, c.Name, c.MinRate, c.MaxRate)
	}
	if c.Priority != 0 && (!finitePos(c.Priority) || c.Priority > maxPriority) {
		return fmt.Errorf("scenario %s class %s: priority %g outside (0, %g]", s.Name, c.Name, c.Priority, maxPriority)
	}
	if !finitePos(c.BaseRate) {
		return fmt.Errorf("scenario %s class %s: base_rate %g not positive and finite", s.Name, c.Name, c.BaseRate)
	}
	if !finiteNonNeg(c.ArrivalsPerTick) || c.ArrivalsPerTick > 1000 {
		return fmt.Errorf("scenario %s class %s: arrivals_per_tick %g outside [0, 1000]", s.Name, c.Name, c.ArrivalsPerTick)
	}
	if !finiteNonNeg(c.DiurnalAmp) || c.DiurnalAmp >= 1 {
		return fmt.Errorf("scenario %s class %s: diurnal_amp %g outside [0, 1)", s.Name, c.Name, c.DiurnalAmp)
	}
	if c.DiurnalAmp > 0 && !finitePos(c.DiurnalPeriodTicks) {
		return fmt.Errorf("scenario %s class %s: diurnal amplitude without a positive period", s.Name, c.Name)
	}
	if c.DiurnalPeriodTicks != 0 && !finitePos(c.DiurnalPeriodTicks) {
		return fmt.Errorf("scenario %s class %s: diurnal_period_ticks %g not positive and finite", s.Name, c.Name, c.DiurnalPeriodTicks)
	}
	if !finiteNonNeg(c.MeanLifeTicks) || c.MeanLifeTicks > float64(maxTicks) {
		return fmt.Errorf("scenario %s class %s: mean_life_ticks %g outside [0, %d]", s.Name, c.Name, c.MeanLifeTicks, maxTicks)
	}
	if !finiteNonNeg(c.NoiseStd) || c.NoiseStd > 1 {
		return fmt.Errorf("scenario %s class %s: noise_std %g outside [0, 1]", s.Name, c.Name, c.NoiseStd)
	}
	if !finiteNonNeg(c.DistortionAmp) || c.DistortionAmp > 1 {
		return fmt.Errorf("scenario %s class %s: distortion_amp %g outside [0, 1]", s.Name, c.Name, c.DistortionAmp)
	}
	prev := -1
	for _, p := range c.Phases {
		if p.AtTick < 0 || p.AtTick >= s.Ticks {
			return fmt.Errorf("scenario %s class %s: phase at tick %d outside [0, ticks)", s.Name, c.Name, p.AtTick)
		}
		if p.AtTick <= prev {
			return fmt.Errorf("scenario %s class %s: phases out of order at tick %d", s.Name, c.Name, p.AtTick)
		}
		prev = p.AtTick
		if !finitePos(p.WorkScale) || p.WorkScale > maxWorkScale {
			return fmt.Errorf("scenario %s class %s: phase work_scale %g outside (0, %d]", s.Name, c.Name, p.WorkScale, maxWorkScale)
		}
	}
	return nil
}

func (ev *Event) validate(s *Spec, classes map[string]bool) error {
	if ev.AtTick < 0 || ev.AtTick >= s.Ticks {
		return fmt.Errorf("scenario %s: event at tick %d outside [0, ticks)", s.Name, ev.AtTick)
	}
	needsClass := false
	switch ev.Kind {
	case EventFlashCrowd:
		needsClass = true
		if ev.Count < 1 || ev.Count > maxFleet {
			return fmt.Errorf("scenario %s: flash_crowd count %d outside [1, %d]", s.Name, ev.Count, maxFleet)
		}
	case EventMassWithdraw:
		if !(finitePos(ev.Fraction) && ev.Fraction <= 1) {
			return fmt.Errorf("scenario %s: mass_withdraw fraction %g outside (0, 1]", s.Name, ev.Fraction)
		}
	case EventGoalThrash:
		needsClass = true
		if !finitePos(ev.Factor) || ev.Factor > maxWorkScale {
			return fmt.Errorf("scenario %s: goal_thrash factor %g outside (0, %d]", s.Name, ev.Factor, maxWorkScale)
		}
		if ev.EveryTicks < 1 {
			return fmt.Errorf("scenario %s: goal_thrash every_ticks %d < 1", s.Name, ev.EveryTicks)
		}
		if ev.UntilTick <= ev.AtTick || ev.UntilTick > s.Ticks {
			return fmt.Errorf("scenario %s: goal_thrash until_tick %d outside (at_tick, ticks]", s.Name, ev.UntilTick)
		}
	case EventCrashRestart:
	case EventChipSaturate:
		if s.Chips < 1 {
			return fmt.Errorf("scenario %s: chip_saturate in a chipless scenario", s.Name)
		}
		if ev.Chip < 0 || ev.Chip >= s.Chips {
			return fmt.Errorf("scenario %s: chip_saturate chip %d outside [0, %d)", s.Name, ev.Chip, s.Chips)
		}
		if !(finitePos(ev.Factor) && ev.Factor <= 1) {
			return fmt.Errorf("scenario %s: chip_saturate factor %g outside (0, 1]", s.Name, ev.Factor)
		}
	case EventPhaseShift:
		needsClass = true
		if !finitePos(ev.Factor) || ev.Factor > maxWorkScale {
			return fmt.Errorf("scenario %s: phase_shift factor %g outside (0, %d]", s.Name, ev.Factor, maxWorkScale)
		}
	default:
		return fmt.Errorf("scenario %s: unknown event kind %q", s.Name, ev.Kind)
	}
	if needsClass && !classes[ev.Class] {
		return fmt.Errorf("scenario %s: event %s names unknown class %q", s.Name, ev.Kind, ev.Class)
	}
	if ev.Class != "" && !classes[ev.Class] {
		return fmt.Errorf("scenario %s: event %s names unknown class %q", s.Name, ev.Kind, ev.Class)
	}
	return nil
}

// needsJournal reports whether the schedule contains a crash-restart
// (only then does the host pay for a journaled daemon).
func (s *Spec) needsJournal() bool {
	for i := range s.Events {
		if s.Events[i].Kind == EventCrashRestart {
			return true
		}
	}
	return false
}

// DecodeSpec parses and validates a JSON scenario spec. Unknown fields
// are rejected — a typoed budget key must fail loudly, not silently
// ungate a scenario.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: decode: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file.
	if dec.More() {
		return Spec{}, fmt.Errorf("scenario: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

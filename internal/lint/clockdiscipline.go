package lint

import (
	"go/ast"
	"go/types"
)

// ClockDiscipline extends the determinism contract transitively: replay
// re-executes journaled mutations through the live code paths, so not
// just the annotated entry points but everything statically reachable
// from them must take time from the settable daemon clock, never from
// the host's. The analyzer builds a static call graph over the whole
// module (direct calls, method calls on concrete receivers, go/defer
// statements), floods from every //angstrom:deterministic function,
// and flags wall-clock and timer uses anywhere in the reachable set,
// naming the path that makes them reachable.
//
// Calls through interfaces (sim.Nower, actuator.Knob) have no static
// target and end the walk — which is the point: the interface IS the
// sanctioned clock boundary, and code that reaches time.Now without
// crossing it is journal-replay state leaking wall time.
var ClockDiscipline = &Analyzer{
	Name:   "clockdiscipline",
	Doc:    "flag wall-clock and timer use in code statically reachable from //angstrom:deterministic scopes",
	Module: true,
	Run:    runClockDiscipline,
}

// wallClockFuncs are the time package's process-clock reads and timer
// constructors. Pure arithmetic on time.Duration/time.Time values is
// clock-free and allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func runClockDiscipline(pass *Pass) error {
	type fnode struct {
		pkg  *Package
		decl *ast.FuncDecl
	}
	nodes := make(map[string]fnode)   // key -> declaration
	edges := make(map[string][]string) // caller key -> callee keys
	for _, pkg := range pass.Module {
		funcDecls(pkg, func(decl *ast.FuncDecl, obj *types.Func, key string) {
			nodes[key] = fnode{pkg, decl}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := callee(pkg.Info, call); f != nil && f.Pkg() != nil {
					edges[key] = append(edges[key], FuncKey(f))
				}
				return true
			})
		})
	}

	// Flood from every deterministic scope, remembering how each
	// function was reached so the report can name the path.
	reachedVia := make(map[string]string)
	var queue []string
	for _, pkg := range pass.Module {
		funcDecls(pkg, func(_ *ast.FuncDecl, _ *types.Func, key string) {
			if pass.Ann.Deterministic(pkg.Path, key) {
				if _, ok := reachedVia[key]; !ok {
					reachedVia[key] = ""
					queue = append(queue, key)
				}
			}
		})
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		for _, callee := range edges[key] {
			if _, ok := reachedVia[callee]; ok {
				continue
			}
			if _, ok := nodes[callee]; !ok {
				continue // outside the module (stdlib)
			}
			reachedVia[callee] = key
			queue = append(queue, callee)
		}
	}

	for key, via := range reachedVia {
		n := nodes[key]
		info := n.pkg.Info
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := callee(info, call)
			if f == nil || f.Pkg() == nil || f.Pkg().Path() != "time" || hasRecv(f) || !wallClockFuncs[f.Name()] {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s in %s, which is reachable from deterministic scope%s: route time through the settable daemon clock (sim.Nower)",
				f.Name(), key, viaChain(reachedVia, via))
			return true
		})
	}
	return nil
}

// viaChain renders the reach path back to the nearest annotated root,
// capped so a deep chain stays readable.
func viaChain(reachedVia map[string]string, via string) string {
	if via == "" {
		return ""
	}
	s := " (via "
	for i := 0; via != "" && i < 4; i++ {
		if i > 0 {
			s += " <- "
		}
		s += via
		via = reachedVia[via]
	}
	return s + ")"
}

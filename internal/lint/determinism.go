package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the repro's bit-reproducibility contract inside
// //angstrom:deterministic scopes: the sweep engine must produce
// byte-identical results at any worker count, journal replay must
// rebuild a daemon byte-identical to one that never crashed, and the
// chip model must aggregate floats in a schedule-independent order.
// Four bug classes are flagged:
//
//   - wall-clock reads (time.Now, time.Since): replayed code must take
//     time from its caller's settable clock, never from the host;
//   - the global math/rand source: unseeded process-global randomness
//     differs run to run — derive a seeded rand.New(...) from the
//     configuration instead;
//   - goroutine spawns: concurrency belongs in the sweep/shard worker
//     pools, whose merge order is fixed; an ad-hoc goroutine races its
//     results into whatever order the scheduler picks;
//   - map iteration feeding results: Go randomizes range-over-map
//     order, the exact bug class fixed when SharedChip moved from map
//     iteration to acquisition order. Collecting keys and sorting
//     before use is recognized and accepted.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag wall clocks, global RNG, goroutine spawns, and map-order aggregation in //angstrom:deterministic scopes",
	Run:  runDeterminism,
}

// Package-level rand functions that draw from the process-global,
// run-dependent source. Constructors for seeded generators are fine.
var seededConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl, obj *types.Func, key string) {
		if !pass.Ann.Deterministic(pass.Pkg.Path, key) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, info, n)
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "goroutine spawned in deterministic scope: fan out through the sweep/shard worker pool, whose merge order is fixed")
			case *ast.RangeStmt:
				checkMapRange(pass, info, decl.Body, n)
			}
			return true
		})
	})
	return nil
}

func checkDeterministicCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	f := callee(info, call)
	if f == nil || f.Pkg() == nil {
		return
	}
	switch f.Pkg().Path() {
	case "time":
		if !hasRecv(f) && (f.Name() == "Now" || f.Name() == "Since" || f.Name() == "Until") {
			pass.Reportf(call.Pos(), "time.%s in deterministic scope: take time from the caller's settable clock (sim.Nower)", f.Name())
		}
	case "math/rand", "math/rand/v2":
		if !hasRecv(f) && !seededConstructors[f.Name()] {
			pass.Reportf(call.Pos(), "%s.%s draws from the global unseeded source: derive a seeded rand.New(...) from the configuration", f.Pkg().Name(), f.Name())
		}
	}
}

// checkMapRange flags `range` over a map unless it is the recognized
// collect-then-sort idiom: every statement in the loop body appends the
// iteration variables to slices, and each such slice is later passed to
// a sort.* or slices.Sort* call in the same function.
func checkMapRange(pass *Pass, info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	t := info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if collectThenSort(info, fnBody, rng) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration order is randomized and this range feeds results in a deterministic scope: collect keys, sort, then iterate")
}

func collectThenSort(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	var collected []types.Object
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" {
			return false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false
		}
		collected = append(collected, obj)
	}
	if len(collected) == 0 {
		return false
	}
	// Every collected slice must flow into a sort after the loop.
	for _, obj := range collected {
		if !sortedAfter(info, fnBody, rng, obj) {
			return false
		}
	}
	return true
}

func sortedAfter(info *types.Info, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || sorted {
			return !sorted
		}
		f := callee(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// The loader. x/tools drivers use go/packages; this offline build
// shells out to `go list -deps -export -json` instead, which yields the
// same two ingredients: the source files of every package matching the
// patterns, and compiled export data for every dependency (stdlib
// included), so each target package can be parsed and type-checked
// independently with the gc importer instead of topologically from
// source.

// listPkg is the slice of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
}

// Load type-checks the packages matching patterns (plus their
// annotation index) for analysis. Only packages of the surrounding
// module are returned; test files are not loaded — contracts bind the
// shipped code, and tests exercise violations on purpose.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, *Index, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Standard,Export,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if derr := dec.Decode(&p); derr == io.EOF {
			break
		} else if derr != nil {
			return nil, nil, nil, fmt.Errorf("lint: decode go list output: %w", derr)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, cerr := checkPackage(fset, imp, t)
		if cerr != nil {
			return nil, nil, nil, cerr
		}
		pkgs = append(pkgs, pkg)
	}
	idx, err := BuildIndex(fset, pkgs)
	if err != nil {
		return nil, nil, nil, err
	}
	return fset, pkgs, idx, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, t listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %w", t.ImportPath, err)
	}
	return &Package{Path: t.ImportPath, Files: files, Types: tpkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map the analyzers read.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Package hot seeds hot-path allocation violations for the analyzer
// tests.
package hot

import (
	"errors"
	"fmt"
)

type ring struct {
	buf []int
	n   int
}

func sink(x any) { _ = x }

//angstrom:hotpath
func badPush(v int, name string) (string, error) {
	if v < 0 {
		return "", errors.New("negative") // want "errors.New allocates per call"
	}
	msg := fmt.Sprintf("push %d", v) // want "fmt.Sprintf allocates per call"
	local := []int{}                 // want "slice literal allocates on the hot path"
	local = append(local, v)         // want "append to local, a slice born in this function"
	_ = local
	fn := func() int { return v } // want "closure captures v"
	_ = fn()
	return msg + name, nil // want "string concatenation allocates on the hot path"
}

//angstrom:hotpath
func badBox(v int) any {
	sink(v)  // want "passing int as interface .* boxes the value"
	return v // want "returning int as interface .* boxes the value"
}

//angstrom:hotpath
func badGrow(r *ring) {
	r.buf = make([]int, 64) // want "make allocates on the hot path"
}

// goodPush writes into a caller-owned ring buffer: zero allocations.
//
//angstrom:hotpath
func goodPush(r *ring, v int) {
	r.buf[r.n%len(r.buf)] = v
	r.n++
}

// fill reuses the caller's backing array via the reslice idiom: the
// append target was not born here, so growth is the caller's bargain.
//
//angstrom:hotpath
func fill(buf []int, n int) []int {
	out := buf[:0]
	for v := 0; v < n; v++ {
		out = append(out, v)
	}
	return out
}

// slowPath proves the doc-comment waiver covers the whole function.
//
//lint:allow hotpath cold refusal path, formatting cost is irrelevant here
//angstrom:hotpath
func slowPath(v int) string {
	return fmt.Sprintf("refused %d", v)
}

// Package jrnl seeds journal-before-mutate violations for the analyzer
// tests.
package jrnl

type store struct {
	apps    map[string]int
	journal []string
}

// insert mutates journaled state.
//
//angstrom:journaled mutator
func (s *store) insert(name string) {
	s.apps[name] = len(s.apps)
}

// logAndInsert is the sanctioned path: journal first, then mutate.
//
//angstrom:journaled writer
func (s *store) logAndInsert(name string) {
	s.journal = append(s.journal, name)
	s.insert(name)
}

// sneak mutates without journaling.
func (s *store) sneak(name string) {
	s.insert(name) // want "call to journaled mutator insert outside a journaling writer"
}

// sneakDeferred hides the mutation inside a closure: the call still
// belongs to sneakDeferred, which is not a writer.
func (s *store) sneakDeferred(name string) func() {
	return func() {
		s.insert(name) // want "call to journaled mutator insert outside a journaling writer"
	}
}

// readOnly touches nothing journaled.
func (s *store) readOnly(name string) int {
	return s.apps[name]
}

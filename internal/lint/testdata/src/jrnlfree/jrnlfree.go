// Package jrnlfree has a mutator annotation but no writer: the
// journalbefore check must stay inactive, because there is no journaling
// discipline here to defend (e.g. a client-side cache of the same
// type).
package jrnlfree

type cache struct {
	vals map[string]int
}

//angstrom:journaled mutator
func (c *cache) insert(name string) {
	c.vals[name] = len(c.vals)
}

// caller may call the mutator freely: no writer exists in this package,
// so nothing here is expected to be flagged.
func (c *cache) caller(name string) {
	c.insert(name)
}

// Package clockd seeds clock-discipline violations for the analyzer
// tests: wall-clock reads reachable from a deterministic scope through
// plain calls, but not through the sanctioned clock interface.
package clockd

import "time"

type nower interface {
	Now() float64
}

type record struct {
	at   float64
	name string
}

//angstrom:deterministic
func replay(c nower, names []string) []record {
	out := make([]record, 0, len(names))
	for _, n := range names {
		out = append(out, helper(c, n))
	}
	return out
}

func helper(c nower, name string) record {
	// Calling through the nower interface is the sanctioned boundary:
	// the walk must stop here rather than chasing implementations.
	return record{at: c.Now() + stamp(), name: name}
}

func stamp() float64 {
	return float64(time.Now().UnixNano()) // want "time.Now in clockd.stamp, which is reachable from deterministic scope"
}

// free is not reachable from any deterministic scope, so its wall-clock
// read is fine.
func free() time.Duration {
	return time.Since(time.Unix(0, 0))
}

// Package determ seeds determinism violations for the analyzer tests.
package determ

import (
	"math/rand"
	"sort"
	"time"
)

//angstrom:deterministic
func bad(byName map[string]float64) float64 {
	start := time.Now() // want "time.Now in deterministic scope"
	_ = time.Since(start) // want "time.Since in deterministic scope"
	jitter := rand.Float64() // want "rand.Float64 draws from the global unseeded source"
	total := jitter
	go func() { // want "goroutine spawned in deterministic scope"
		total++
	}()
	for _, v := range byName { // want "map iteration order is randomized"
		total += v
	}
	return total
}

//angstrom:deterministic
func good(byName map[string]float64, rng *rand.Rand) float64 {
	// The collect-then-sort idiom is the sanctioned way to drain a map.
	keys := make([]string, 0, len(byName))
	for k := range byName {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := rng.Float64()
	for _, k := range keys {
		total += byName[k]
	}
	return total
}

//angstrom:deterministic
func allowed() float64 {
	//lint:allow determinism this fixture deliberately reads the wall clock to seed the scenario
	t := time.Now()
	return float64(t.Unix())
}

// unannotated is outside every deterministic scope: nothing here may be
// flagged.
func unannotated() float64 {
	go func() {}()
	return rand.Float64() + float64(time.Now().Unix())
}

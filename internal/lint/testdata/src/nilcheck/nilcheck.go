// Package nilcheck seeds nilness violations for the analyzer tests.
package nilcheck

type box struct{ v int }

// derefOnNilBranch dereferences p on the branch where it is provably
// nil.
func derefOnNilBranch(p *box) int {
	if p == nil {
		return p.v // want "nil dereference: field selection on p"
	}
	return p.v
}

// starOnNilBranch does the same through an explicit pointer deref.
func starOnNilBranch(p *int) int {
	if p == nil {
		return *p // want "nil dereference: p is provably nil on this branch"
	}
	return *p
}

// impossibleCheck guards a value that was just allocated: the check can
// never fire.
func impossibleCheck() *box {
	b := &box{v: 1}
	if b == nil { // want "b was just assigned a freshly allocated value"
		return nil
	}
	return b
}

// guarded is the correct shape: deref only on the non-nil branch.
func guarded(p *box) int {
	if p != nil {
		return p.v
	}
	return 0
}

// reassigned kills the nil fact before the deref: no finding.
func reassigned(p *box) int {
	if p == nil {
		p = &box{}
		return p.v
	}
	return p.v
}

// Package shadowed seeds shadow violations for the analyzer tests.
package shadowed

func first() error       { return nil }
func second(v int) error { _ = v; return nil }

// lostWrite re-declares err inside the loop, then returns the stale
// outer err: the classic lost-error bug the analyzer exists to catch.
func lostWrite(vals []int) error {
	err := first()
	for _, v := range vals {
		if v > 0 {
			err := second(v) // want "declaration of \"err\" shadows declaration at line"
			_ = err
		}
	}
	return err
}

// quiet uses the idiomatic if-scoped err: there is no outer err to
// shadow, so nothing may be flagged.
func quiet() error {
	if err := second(1); err != nil {
		return err
	}
	return nil
}

// harmless shadows x, but the outer x is never read after the inner
// scope ends, so the heuristic stays silent.
func harmless(vals []int) int {
	x := 0
	_ = x
	for _, v := range vals {
		x := v * 2
		_ = x
	}
	return len(vals)
}

// Package lint is angstromlint: a static-analysis suite that enforces
// the repository's determinism, hot-path, and journaling contracts at
// compile time instead of hoping a runtime test happens to cross the
// offending path.
//
// The suite is a multichecker in the spirit of
// golang.org/x/tools/go/analysis, rebuilt self-contained on the
// standard library (go/ast, go/types, and `go list -export` for
// dependency type information) because this repository builds
// offline with no third-party modules. The analyzer surface mirrors
// the x/tools shape — an Analyzer with a Run(*Pass) — so the passes
// read like stock go/analysis passes and could be ported onto the
// real driver by swapping the loader.
//
// Contracts are declared in the code they protect with machine-readable
// directives (see annotate.go):
//
//	//angstrom:deterministic      this function (or package) must be
//	                              bit-reproducible: no wall clock, no
//	                              global RNG, no ad-hoc goroutines, no
//	                              map-order-dependent aggregation
//	//angstrom:hotpath            this function is allocation-gated:
//	                              no fmt/errors on hot branches, no
//	                              interface boxing, no capturing
//	                              closures, no fresh slices
//	//angstrom:journaled mutator  calls to this state mutator must come
//	                              from a journaling writer
//	//angstrom:journaled writer   this function journals ahead of (or
//	                              replays) the mutations it applies
//
// False positives are suppressed in place, each with an auditable
// reason:
//
//	//lint:allow <analyzer> <reason>
//
// either on (or immediately above) the offending line, or in a
// function's doc comment to waive the whole function.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one type-checked package of the module under analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Pass carries one analyzer's view of the code under analysis. Per-
// package analyzers receive one Pass per package (Pkg set); module
// analyzers (Analyzer.Module true) receive a single Pass with Pkg nil
// and every loaded package in Module.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package   // the package under analysis (nil for module passes)
	Module   []*Package // every module package, in load order
	Ann      *Index     // module-wide annotation index

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An Analyzer is one static-analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	// Module selects whole-module analysis (one pass over every
	// package, e.g. for call-graph reachability) instead of the default
	// one-pass-per-package.
	Module bool
	Run    func(*Pass) error
}

// All is the angstromlint multichecker: the four contract analyzers
// plus the stdlib-quality extra passes `go vet` does not run by
// default. (shadow and nilness are self-contained reimplementations of
// the x/tools passes of the same names; the x/tools originals cannot be
// vendored into this offline, zero-dependency build.)
var All = []*Analyzer{
	Determinism,
	Hotpath,
	JournalBefore,
	ClockDiscipline,
	Shadow,
	Nilness,
}

// ByName resolves an analyzer in All (nil if unknown).
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to the loaded module, filters the
// findings through the //lint:allow suppressions recorded in idx, and
// returns them in file/line order. Annotation errors (unknown
// directives, malformed allows) are prepended: a typoed contract must
// fail the build, not silently stop being enforced.
func RunAnalyzers(fset *token.FileSet, pkgs []*Package, idx *Index, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Module: pkgs, Ann: idx, diags: &diags}
		if a.Module {
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range pkgs {
			pass.Pkg = pkg
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s (%s): %w", a.Name, pkg.Path, err)
			}
		}
	}
	kept := idx.Errors()
	for _, d := range diags {
		if !idx.Allowed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

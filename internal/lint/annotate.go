package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annotation directives. A directive is a machine-readable comment line
// in a function's doc comment (or, for deterministic, a package
// clause's doc comment):
//
//	//angstrom:deterministic
//	//angstrom:hotpath
//	//angstrom:journaled mutator
//	//angstrom:journaled writer
//
// Unknown directives, misspelled arguments, and directives attached to
// anything but a func or package clause are hard errors — a typo must
// break the build, not silently drop a contract.

const (
	directivePrefix = "//angstrom:"
	allowPrefix     = "//lint:allow"
)

// A FuncAnn is the set of contracts declared on one function.
type FuncAnn struct {
	Deterministic bool // body must be bit-reproducible
	Hotpath       bool // body must not allocate
	Mutator       bool // callers must be journaling writers
	Writer        bool // journals ahead of the mutations it applies
}

type rangeAllow struct {
	file       string
	start, end int // line span (inclusive)
	analyzer   string
}

// An Index is the module-wide annotation table: which functions and
// packages carry which contracts, and where findings are suppressed.
type Index struct {
	fns        map[string]FuncAnn // FuncKey -> contracts
	detPkgs    map[string]bool    // package path -> //angstrom:deterministic
	lineAllows map[string]map[int]map[string]bool
	fnAllows   []rangeAllow
	errs       []Diagnostic
}

// FuncKey is the index key for a function object: "pkg.Name" for
// functions, "pkg.(Type).Name" for methods (pointer receivers
// normalized away, generic instantiations folded to their origin).
func FuncKey(f *types.Func) string {
	f = f.Origin()
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path()
	}
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return pkg + "." + f.Name()
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	name := "?"
	switch t := rt.(type) {
	case *types.Named:
		name = t.Obj().Name()
	case *types.Interface:
		// Interface method keys never match an annotation: contracts
		// bind implementations, which static calls resolve to.
		name = "interface"
	}
	return pkg + ".(" + name + ")." + f.Name()
}

// Fn returns the contracts declared on the given function key.
func (idx *Index) Fn(key string) FuncAnn { return idx.fns[key] }

// DeterministicPkg reports whether the whole package is annotated
// //angstrom:deterministic on its package clause.
func (idx *Index) DeterministicPkg(path string) bool { return idx.detPkgs[path] }

// Deterministic reports whether fn (by key) is in a deterministic
// scope, either directly or through its package's annotation.
func (idx *Index) Deterministic(pkgPath, key string) bool {
	return idx.fns[key].Deterministic || idx.detPkgs[pkgPath]
}

// Errors returns the scanner's own findings (unknown directives,
// malformed allows, misplaced annotations).
func (idx *Index) Errors() []Diagnostic { return append([]Diagnostic(nil), idx.errs...) }

// Allowed reports whether a diagnostic is suppressed by a
// //lint:allow comment on its line, the line above it, or the doc
// comment of the function containing it.
func (idx *Index) Allowed(d Diagnostic) bool {
	if lines, ok := idx.lineAllows[d.Pos.Filename]; ok {
		for _, ln := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			if lines[ln][d.Analyzer] {
				return true
			}
		}
	}
	for _, ra := range idx.fnAllows {
		if ra.file == d.Pos.Filename && ra.analyzer == d.Analyzer &&
			d.Pos.Line >= ra.start && d.Pos.Line <= ra.end {
			return true
		}
	}
	return false
}

// BuildIndex scans every package's comments for //angstrom: directives
// and //lint:allow suppressions. Scan errors are collected on the
// index, not returned: the driver reports them alongside analyzer
// findings so one typo does not hide the rest of the run.
func BuildIndex(fset *token.FileSet, pkgs []*Package) (*Index, error) {
	idx := &Index{
		fns:        make(map[string]FuncAnn),
		detPkgs:    make(map[string]bool),
		lineAllows: make(map[string]map[int]map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			idx.scanFile(fset, pkg, file)
		}
	}
	return idx, nil
}

func (idx *Index) scanFile(fset *token.FileSet, pkg *Package, file *ast.File) {
	// Comment groups that legitimately carry directives: the package
	// clause doc and each top-level function's doc.
	docFor := make(map[*ast.CommentGroup]ast.Node)
	if file.Doc != nil {
		docFor[file.Doc] = file
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			docFor[fd.Doc] = fd
		}
	}
	for _, cg := range file.Comments {
		owner := docFor[cg]
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			switch {
			case strings.HasPrefix(text, directivePrefix):
				idx.directive(fset, pkg, file, owner, c, strings.TrimPrefix(text, directivePrefix))
			case strings.HasPrefix(text, allowPrefix):
				idx.allow(fset, owner, c, strings.TrimPrefix(text, allowPrefix))
			}
		}
	}
}

func (idx *Index) errorf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	idx.errs = append(idx.errs, Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: "annotations",
		Message:  fmt.Sprintf(format, args...),
	})
}

func (idx *Index) directive(fset *token.FileSet, pkg *Package, file *ast.File, owner ast.Node, c *ast.Comment, body string) {
	fields := strings.Fields(body)
	verb := ""
	if len(fields) > 0 {
		verb = fields[0]
	}
	args := fields[1:]

	fd, onFunc := owner.(*ast.FuncDecl)
	_, onPkg := owner.(*ast.File)
	if !onFunc && !onPkg {
		idx.errorf(fset, c.Pos(), "misplaced //angstrom:%s directive: directives attach to a function's doc comment or the package clause", verb)
		return
	}

	var key string
	if onFunc {
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			idx.errorf(fset, c.Pos(), "cannot resolve annotated function %s", fd.Name.Name)
			return
		}
		key = FuncKey(obj)
	}

	set := func(f func(*FuncAnn)) {
		ann := idx.fns[key]
		f(&ann)
		idx.fns[key] = ann
	}
	switch verb {
	case "deterministic":
		if len(args) != 0 {
			idx.errorf(fset, c.Pos(), "//angstrom:deterministic takes no arguments (got %q)", strings.Join(args, " "))
			return
		}
		if onPkg {
			idx.detPkgs[pkg.Path] = true
		} else {
			set(func(a *FuncAnn) { a.Deterministic = true })
		}
	case "hotpath":
		if onPkg {
			idx.errorf(fset, c.Pos(), "//angstrom:hotpath applies to functions, not packages")
			return
		}
		if len(args) != 0 {
			idx.errorf(fset, c.Pos(), "//angstrom:hotpath takes no arguments (got %q)", strings.Join(args, " "))
			return
		}
		set(func(a *FuncAnn) { a.Hotpath = true })
	case "journaled":
		if onPkg {
			idx.errorf(fset, c.Pos(), "//angstrom:journaled applies to functions, not packages")
			return
		}
		if len(args) != 1 || (args[0] != "mutator" && args[0] != "writer") {
			idx.errorf(fset, c.Pos(), "//angstrom:journaled requires exactly one of: mutator, writer")
			return
		}
		if args[0] == "mutator" {
			set(func(a *FuncAnn) { a.Mutator = true })
		} else {
			set(func(a *FuncAnn) { a.Writer = true })
		}
	default:
		idx.errorf(fset, c.Pos(), "unknown directive //angstrom:%s (known: deterministic, hotpath, journaled)", verb)
	}
}

func (idx *Index) allow(fset *token.FileSet, owner ast.Node, c *ast.Comment, body string) {
	fields := strings.Fields(body)
	if len(fields) < 2 {
		idx.errorf(fset, c.Pos(), "//lint:allow requires an analyzer name and a reason")
		return
	}
	name := fields[0]
	if ByName(name) == nil && name != "annotations" {
		idx.errorf(fset, c.Pos(), "//lint:allow names unknown analyzer %q", name)
		return
	}
	if fd, ok := owner.(*ast.FuncDecl); ok {
		p := fset.Position(fd.Pos())
		idx.fnAllows = append(idx.fnAllows, rangeAllow{
			file:     p.Filename,
			start:    p.Line,
			end:      fset.Position(fd.End()).Line,
			analyzer: name,
		})
		return
	}
	p := fset.Position(c.Pos())
	lines := idx.lineAllows[p.Filename]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		idx.lineAllows[p.Filename] = lines
	}
	if lines[p.Line] == nil {
		lines[p.Line] = make(map[string]bool)
	}
	lines[p.Line][name] = true
}

package lint

import (
	"go/ast"
	"go/types"
)

// Shared resolution helpers for the analyzers.

// callee resolves the static target of a call expression: a plain
// function, a method on a concrete receiver, or a qualified import
// reference. Calls through function values, interface methods, builtins
// and type conversions resolve to nil.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no static target.
				if sel.Kind() == types.MethodVal && isInterfaceRecv(f) {
					return nil
				}
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func isInterfaceRecv(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isFunc reports whether f is the package-level function pkgPath.name.
func isFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && !hasRecv(f)
}

func hasRecv(f *types.Func) bool {
	sig, _ := f.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil
}

// funcDecls yields every top-level function declaration with a body in
// the package, together with its types object and annotation key.
func funcDecls(pkg *Package, fn func(decl *ast.FuncDecl, obj *types.Func, key string)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn(fd, obj, FuncKey(obj))
		}
	}
}

// enclosingIdent finds the local declaration form of an object: the
// expression a local variable was initialized from, searched within
// body. Returns nil when the variable has no initializer (var x []T)
// or is not declared by an assignment in body.
func declInit(body *ast.BlockStmt, info *types.Info, obj types.Object) (init ast.Expr, found bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || info.Defs[id] != obj {
				continue
			}
			if len(as.Rhs) == len(as.Lhs) {
				init = as.Rhs[i]
			}
			found = true
			return false
		}
		return true
	})
	return init, found
}

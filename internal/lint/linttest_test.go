package lint

// The analysistest-style harness: each testdata/src/<pkg> package seeds
// violations and marks the expected findings with `// want "regex"`
// comments on the offending line, mirroring
// golang.org/x/tools/go/analysis/analysistest (which this offline build
// cannot depend on). Test packages are type-checked with the stdlib
// source importer, so they may import anything in GOROOT but nothing
// from this module.

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// testLoader caches type-checked testdata packages across tests: the
// source importer re-checks imported stdlib packages from GOROOT
// source, which is worth paying once, not once per test.
var testLoader struct {
	mu   sync.Mutex
	fset *token.FileSet
	imp  types.Importer
	pkgs map[string]*Package
}

func loadTestPkg(t *testing.T, name string) *Package {
	t.Helper()
	tl := &testLoader
	tl.mu.Lock()
	defer tl.mu.Unlock()
	if tl.fset == nil {
		tl.fset = token.NewFileSet()
		tl.imp = importer.ForCompiler(tl.fset, "source", nil)
		tl.pkgs = make(map[string]*Package)
	}
	if pkg, ok := tl.pkgs[name]; ok {
		return pkg
	}
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, perr := parser.ParseFile(tl.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			t.Fatalf("parse: %v", perr)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: tl.imp}
	tpkg, err := conf.Check(name, tl.fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", name, err)
	}
	pkg := &Package{Path: name, Files: files, Types: tpkg, Info: info}
	tl.pkgs[name] = pkg
	return pkg
}

// expectation is one `// want "regex"` comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "want ")
					if i < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					ms := quotedRe.FindAllStringSubmatch(c.Text[i+len("want "):], -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment without a quoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
					}
				}
			}
		}
	}
	return wants
}

// runTestdata runs analyzers over the named testdata packages and
// checks the findings against the packages' want comments: every
// finding must be expected, and every expectation must fire.
func runTestdata(t *testing.T, analyzers []*Analyzer, names ...string) {
	t.Helper()
	var pkgs []*Package
	for _, name := range names {
		pkgs = append(pkgs, loadTestPkg(t, name))
	}
	idx, err := BuildIndex(testLoader.fset, pkgs)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	diags, err := RunAnalyzers(testLoader.fset, pkgs, idx, analyzers)
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	wants := collectWants(t, testLoader.fset, pkgs)
outer:
	for _, d := range diags {
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				continue outer
			}
		}
		t.Errorf("unexpected finding: %s", d)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %v finding matched %q", w.file, w.line, analyzerNames(analyzers), w.raw)
		}
	}
}

func analyzerNames(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestDeterminismTestdata(t *testing.T) {
	runTestdata(t, []*Analyzer{Determinism}, "determ")
}

func TestHotpathTestdata(t *testing.T) {
	runTestdata(t, []*Analyzer{Hotpath}, "hot")
}

func TestJournalBeforeTestdata(t *testing.T) {
	// jrnlfree has a mutator but no writer: the check must stay inactive
	// there (no expectations in the package, so any finding fails).
	runTestdata(t, []*Analyzer{JournalBefore}, "jrnl", "jrnlfree")
}

func TestClockDisciplineTestdata(t *testing.T) {
	runTestdata(t, []*Analyzer{ClockDiscipline}, "clockd")
}

func TestShadowTestdata(t *testing.T) {
	runTestdata(t, []*Analyzer{Shadow}, "shadowed")
}

func TestNilnessTestdata(t *testing.T) {
	runTestdata(t, []*Analyzer{Nilness}, "nilcheck")
}

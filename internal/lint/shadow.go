package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shadow reports declarations that shadow an outer variable which is
// still used after the inner scope ends — the classic lost-write:
//
//	err := f()
//	if cond {
//		err := g() // shadows; the check below reads f's err
//	}
//	if err != nil { ... }
//
// It is a self-contained reimplementation of the x/tools `shadow` pass
// (which go vet does not run by default, and which this offline build
// cannot vendor), using the same heuristic: a shadowing declaration is
// only reported when the shadowed variable is read again after the
// shadowing scope closes, so the ubiquitous and harmless
// `if err := f(); err != nil` idiom stays quiet.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "flag declarations that shadow an outer variable still used after the inner scope ends",
	Run:  runShadow,
}

func runShadow(pass *Pass) error {
	info := pass.Pkg.Info
	for id, obj := range info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		inner := v.Parent()
		if inner == nil || inner.Parent() == types.Universe {
			continue // package-level declarations shadow nothing local
		}
		// Look the name up starting from the scope enclosing the
		// declaration's own scope.
		_, outerObj := inner.Parent().LookupParent(id.Name, id.Pos())
		outer, ok := outerObj.(*types.Var)
		if !ok || outer == v || outer.IsField() {
			continue
		}
		// Only same-function shadowing: shadowing a package-level var
		// is deliberate style in table-driven code, and x/tools skips
		// it too unless asked for strict mode.
		if outer.Parent() == nil || outer.Parent().Parent() == types.Universe {
			continue
		}
		// The shadow matters only if the outer variable is read after
		// the inner scope has ended. A later reassignment alone is
		// harmless: the write cannot observe the stale value.
		if !readAfter(pass.Pkg, outer, inner.End()) {
			continue
		}
		pass.Reportf(id.Pos(), "declaration of %q shadows declaration at line %d, and the shadowed variable is used after this scope ends",
			id.Name, pass.Fset.Position(outer.Pos()).Line)
	}
	return nil
}

func readAfter(pkg *Package, obj types.Object, end token.Pos) bool {
	writes := writePositions(pkg, obj)
	for id, o := range pkg.Info.Uses {
		if o == obj && id.Pos() > end && !writes[id.Pos()] {
			return true
		}
	}
	return false
}

// writePositions collects the positions where obj appears as a plain
// assignment target (x = ... or a redeclaring x in a :=): those uses
// write the variable without reading it.
func writePositions(pkg *Package, obj types.Object) map[token.Pos]bool {
	writes := make(map[token.Pos]bool)
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					writes[id.Pos()] = true
				}
			}
			return true
		})
	}
	return writes
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath turns the bench gate's after-the-fact 0-alloc check into a
// compile-time one: functions annotated //angstrom:hotpath (Sense,
// Monitor.emit, journal.AppendFrame, the directory's beat reads) are
// the paths BenchmarkDetailedAccess-style gates pin at 0 allocs/op,
// and this analyzer rejects the constructs that silently reintroduce
// an allocation:
//
//   - fmt.Sprintf / fmt.Errorf / errors.New and friends: formatting
//     boxes every argument and builds a string per call;
//   - implicit conversion of a concrete value to an interface
//     parameter or result (boxing) and explicit interface conversions;
//   - closures capturing locals: the captured variables move to the
//     heap (the AppendFrame header-escape bug class);
//   - append to a slice born in this function: growth allocates every
//     call — append into a reused caller- or field-owned buffer;
//   - string concatenation and string<->[]byte conversions;
//   - make / new / pointer-to-composite / map and slice literals.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "flag allocation-forcing constructs in //angstrom:hotpath functions",
	Run:  runHotpath,
}

// alwaysAllocates lists pkg.Func calls that allocate by construction.
var alwaysAllocates = map[string]map[string]bool{
	"fmt":     {"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true, "Appendf": true, "Append": true, "Appendln": true},
	"errors":  {"New": true, "Join": true},
	"strings": {"Join": true, "Repeat": true},
}

func runHotpath(pass *Pass) error {
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl, obj *types.Func, key string) {
		if !pass.Ann.Fn(key).Hotpath {
			return
		}
		h := &hotpathCheck{pass: pass, info: info, decl: decl}
		ast.Inspect(decl.Body, h.visit)
	})
	return nil
}

type hotpathCheck struct {
	pass *Pass
	info *types.Info
	decl *ast.FuncDecl
}

func (h *hotpathCheck) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		h.call(n)
	case *ast.FuncLit:
		h.funcLit(n)
		return false // the closure's own body is the closure's problem
	case *ast.BinaryExpr:
		h.binary(n)
	case *ast.CompositeLit:
		h.composite(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				h.pass.Reportf(n.Pos(), "&composite literal allocates on the hot path")
			}
		}
	case *ast.ReturnStmt:
		h.returns(n)
	}
	return true
}

func (h *hotpathCheck) call(call *ast.CallExpr) {
	// Builtins: make and new allocate; append is checked against the
	// reused-buffer rule.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := h.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				h.pass.Reportf(call.Pos(), "%s allocates on the hot path: hoist the buffer to the caller or a reused field", b.Name())
			case "append":
				h.append(call)
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune copy; conversion to an
	// interface type boxes.
	if tv, ok := h.info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		h.conversion(call, tv.Type)
		return
	}
	f := callee(h.info, call)
	if f != nil && f.Pkg() != nil && !hasRecv(f) && alwaysAllocates[f.Pkg().Path()][f.Name()] {
		h.pass.Reportf(call.Pos(), "%s.%s allocates per call: precompute the message or return a sentinel", f.Pkg().Name(), f.Name())
		return
	}
	h.boxedArgs(call)
}

// append flags growth of a slice that was born inside the annotated
// function: every call allocates. Appending to parameters, fields, and
// reslices of caller-owned memory is the reuse idiom and passes.
func (h *hotpathCheck) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // selector (field buffer) or more complex base: reused
	}
	obj := h.info.Uses[id]
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return
	}
	// Only locals declared within this function body are "born here".
	if v.Pos() < h.decl.Body.Pos() || v.Pos() > h.decl.Body.End() {
		return
	}
	init, found := declInit(h.decl.Body, h.info, obj)
	if found && init != nil {
		switch e := ast.Unparen(init).(type) {
		case *ast.SliceExpr:
			return // x := buf[:0] — reuse of caller-owned memory
		case *ast.CallExpr:
			// Initialized from a call: assume the callee handed over a
			// reusable buffer (e.g. a pool get); make() is already
			// flagged at its own call site.
			_ = e
			return
		}
	}
	h.pass.Reportf(call.Pos(), "append to %s, a slice born in this function: every call allocates — append into a reused caller- or field-owned buffer", id.Name)
}

func (h *hotpathCheck) conversion(call *ast.CallExpr, to types.Type) {
	if types.IsInterface(to) && len(call.Args) == 1 {
		if from := h.info.TypeOf(call.Args[0]); from != nil && !types.IsInterface(from) && !isNil(h.info, call.Args[0]) {
			h.pass.Reportf(call.Pos(), "conversion of %s to interface %s boxes the value on the hot path", from, to)
		}
		return
	}
	if len(call.Args) != 1 {
		return
	}
	from := h.info.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	if isStringByteConv(to, from) {
		// Constant-folded conversions are free.
		if tv, ok := h.info.Types[call.Args[0]]; ok && tv.Value != nil {
			return
		}
		h.pass.Reportf(call.Pos(), "%s(%s) copies its operand on the hot path", to, from)
	}
}

func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Kind() == types.String
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}

// boxedArgs flags concrete values passed to interface parameters.
func (h *hotpathCheck) boxedArgs(call *ast.CallExpr) {
	sig, ok := h.info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := h.info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isNil(h.info, arg) {
			continue
		}
		h.pass.Reportf(arg.Pos(), "passing %s as interface %s boxes the value on the hot path", at, pt)
	}
}

func (h *hotpathCheck) funcLit(lit *ast.FuncLit) {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured != "" {
			return captured == ""
		}
		v, ok := h.info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared in the enclosing function, outside the literal.
		if v.Pos() >= h.decl.Pos() && v.Pos() < lit.Pos() {
			captured = id.Name
		}
		return true
	})
	if captured != "" {
		h.pass.Reportf(lit.Pos(), "closure captures %s: captured variables escape to the heap on the hot path", captured)
	} else {
		h.pass.Reportf(lit.Pos(), "function literal allocates its closure object on the hot path")
	}
}

func (h *hotpathCheck) binary(b *ast.BinaryExpr) {
	if b.Op != token.ADD {
		return
	}
	t := h.info.TypeOf(b)
	if t == nil {
		return
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsString == 0 {
		return
	}
	// Constant folding is free.
	if tv, ok := h.info.Types[b]; ok && tv.Value != nil {
		return
	}
	h.pass.Reportf(b.Pos(), "string concatenation allocates on the hot path")
}

func (h *hotpathCheck) composite(lit *ast.CompositeLit) {
	t := h.info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		h.pass.Reportf(lit.Pos(), "slice literal allocates on the hot path")
	case *types.Map:
		h.pass.Reportf(lit.Pos(), "map literal allocates on the hot path")
	}
	// Value struct/array literals live in registers or the caller's
	// frame; they are free unless their address is taken (flagged at
	// the & operator).
}

func (h *hotpathCheck) returns(ret *ast.ReturnStmt) {
	sig, _ := h.info.Defs[h.decl.Name].(*types.Func)
	if sig == nil {
		return
	}
	results := sig.Type().(*types.Signature).Results()
	if results.Len() != len(ret.Results) {
		return // bare return or single multi-value call
	}
	for i, r := range ret.Results {
		rt := results.At(i).Type()
		if !types.IsInterface(rt) {
			continue
		}
		at := h.info.TypeOf(r)
		if at == nil || types.IsInterface(at) || isNil(h.info, r) {
			continue
		}
		h.pass.Reportf(r.Pos(), "returning %s as interface %s boxes the value on the hot path", at, rt)
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

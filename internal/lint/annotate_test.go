package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// indexSource builds an annotation Index from one inline source file
// (no imports allowed: the test type-checker has no importer).
func indexSource(t *testing.T, src string) (*Index, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	pkg := &Package{Path: "p", Files: []*ast.File{f}, Types: tpkg, Info: info}
	idx, err := BuildIndex(fset, []*Package{pkg})
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	return idx, fset
}

func scanErrors(idx *Index) []string {
	var msgs []string
	for _, d := range idx.Errors() {
		msgs = append(msgs, d.Message)
	}
	return msgs
}

func wantNoErrors(t *testing.T, idx *Index) {
	t.Helper()
	if errs := scanErrors(idx); len(errs) != 0 {
		t.Fatalf("unexpected scan errors: %v", errs)
	}
}

func wantOneError(t *testing.T, idx *Index, substr string) {
	t.Helper()
	errs := scanErrors(idx)
	if len(errs) != 1 {
		t.Fatalf("want exactly one scan error containing %q, got %v", substr, errs)
	}
	if !strings.Contains(errs[0], substr) {
		t.Fatalf("scan error %q does not contain %q", errs[0], substr)
	}
}

func TestDirectiveOnFunc(t *testing.T) {
	idx, _ := indexSource(t, `package p

//angstrom:deterministic
func Det() {}

//angstrom:hotpath
func Hot() {}
`)
	wantNoErrors(t, idx)
	if !idx.Fn("p.Det").Deterministic {
		t.Errorf("p.Det not marked deterministic: %+v", idx.Fn("p.Det"))
	}
	if !idx.Deterministic("p", "p.Det") {
		t.Errorf("Deterministic(p, p.Det) = false")
	}
	if !idx.Fn("p.Hot").Hotpath {
		t.Errorf("p.Hot not marked hotpath: %+v", idx.Fn("p.Hot"))
	}
	if idx.Fn("p.Hot").Deterministic || idx.Fn("p.Det").Hotpath {
		t.Errorf("contracts leaked across functions")
	}
}

func TestDirectiveOnMethod(t *testing.T) {
	idx, _ := indexSource(t, `package p

type Store struct{ n int }

// Insert mutates journaled state.
//
//angstrom:journaled mutator
func (s *Store) Insert() { s.n++ }

//angstrom:journaled writer
func (s Store) Log() {}
`)
	wantNoErrors(t, idx)
	// Pointer receivers are normalized away in the key.
	if !idx.Fn("p.(Store).Insert").Mutator {
		t.Errorf("p.(Store).Insert not marked mutator: %+v", idx.Fn("p.(Store).Insert"))
	}
	if !idx.Fn("p.(Store).Log").Writer {
		t.Errorf("p.(Store).Log not marked writer: %+v", idx.Fn("p.(Store).Log"))
	}
}

func TestDirectiveOnPackageClause(t *testing.T) {
	idx, _ := indexSource(t, `// Package p is reproducible end to end.
//
//angstrom:deterministic
package p

func anything() {}
`)
	wantNoErrors(t, idx)
	if !idx.DeterministicPkg("p") {
		t.Fatalf("package directive not recorded")
	}
	if !idx.Deterministic("p", "p.anything") {
		t.Errorf("package annotation does not cover member functions")
	}
}

func TestUnknownDirectiveIsError(t *testing.T) {
	idx, _ := indexSource(t, `package p

//angstrom:frobnicate
func f() {}
`)
	wantOneError(t, idx, "unknown directive //angstrom:frobnicate")
}

func TestDirectiveArgValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"deterministic rejects arguments",
			"package p\n\n//angstrom:deterministic extra\nfunc f() {}\n",
			"takes no arguments",
		},
		{
			"journaled requires role",
			"package p\n\n//angstrom:journaled\nfunc f() {}\n",
			"requires exactly one of: mutator, writer",
		},
		{
			"journaled rejects unknown role",
			"package p\n\n//angstrom:journaled observer\nfunc f() {}\n",
			"requires exactly one of: mutator, writer",
		},
		{
			"hotpath is function-only",
			"//angstrom:hotpath\npackage p\n",
			"applies to functions, not packages",
		},
		{
			"misplaced directive",
			"package p\n\n//angstrom:deterministic\nvar x = 1\n",
			"misplaced //angstrom:deterministic directive",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx, _ := indexSource(t, tc.src)
			wantOneError(t, idx, tc.wantErr)
		})
	}
}

func TestAllowParsing(t *testing.T) {
	idx, _ := indexSource(t, `package p

func f() int {
	//lint:allow determinism fixture needs ambient entropy
	return 1
}
`)
	wantNoErrors(t, idx)
	// The allow covers its own line and the line below.
	if !idx.Allowed(Diagnostic{Pos: token.Position{Filename: "src.go", Line: 5}, Analyzer: "determinism"}) {
		t.Errorf("line below the allow comment not suppressed")
	}
	if idx.Allowed(Diagnostic{Pos: token.Position{Filename: "src.go", Line: 5}, Analyzer: "hotpath"}) {
		t.Errorf("allow leaked to a different analyzer")
	}
	if idx.Allowed(Diagnostic{Pos: token.Position{Filename: "src.go", Line: 3}, Analyzer: "determinism"}) {
		t.Errorf("allow leaked to an unrelated line")
	}
}

func TestAllowOnFuncDocCoversWholeBody(t *testing.T) {
	idx, _ := indexSource(t, `package p

// f is a cold path.
//
//lint:allow hotpath cold path, allocation cost is irrelevant
func f() int {
	return 1
}
`)
	wantNoErrors(t, idx)
	for line := 6; line <= 8; line++ {
		if !idx.Allowed(Diagnostic{Pos: token.Position{Filename: "src.go", Line: line}, Analyzer: "hotpath"}) {
			t.Errorf("line %d inside f not covered by the doc-comment allow", line)
		}
	}
	if idx.Allowed(Diagnostic{Pos: token.Position{Filename: "src.go", Line: 1}, Analyzer: "hotpath"}) {
		t.Errorf("doc-comment allow leaked outside the function span")
	}
}

func TestAllowValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"missing reason",
			"package p\n\n//lint:allow determinism\nfunc f() {}\n",
			"requires an analyzer name and a reason",
		},
		{
			"unknown analyzer",
			"package p\n\n//lint:allow speling because reasons\nfunc f() {}\n",
			`unknown analyzer "speling"`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			idx, _ := indexSource(t, tc.src)
			wantOneError(t, idx, tc.wantErr)
		})
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// JournalBefore enforces the daemon's journal-before-mutate discipline:
// every control-plane mutation must be written ahead to the WAL before
// it is applied, or replay diverges from the live daemon. The raw
// state mutators — directory insert/remove, registry enroll/withdraw,
// manager membership, the chip's tile ledger — are annotated
// //angstrom:journaled mutator; the persist.go wrappers that commit a
// record first (and the replay paths that re-execute committed
// records) are annotated //angstrom:journaled writer. Any other call
// site of a mutator is a mutation that could silently skip the WAL.
//
// The check applies inside packages that contain at least one writer
// (the journaled control plane, internal/server): library packages and
// their own tests may call mutators freely — the discipline binds the
// layer that owns the journal, not the primitives.
var JournalBefore = &Analyzer{
	Name: "journalbefore",
	Doc:  "flag calls to //angstrom:journaled mutators outside //angstrom:journaled writers",
	Run:  runJournalBefore,
}

func runJournalBefore(pass *Pass) error {
	// Does this package own journaling discipline (contain a writer)?
	journaled := false
	funcDecls(pass.Pkg, func(_ *ast.FuncDecl, _ *types.Func, key string) {
		if pass.Ann.Fn(key).Writer {
			journaled = true
		}
	})
	if !journaled {
		return nil
	}
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl, obj *types.Func, key string) {
		if pass.Ann.Fn(key).Writer {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := callee(info, call)
			if f == nil {
				return true
			}
			if pass.Ann.Fn(FuncKey(f)).Mutator {
				pass.Reportf(call.Pos(), "call to journaled mutator %s outside a journaling writer: journal the mutation first (see persist.go) or annotate the caller //angstrom:journaled writer", f.Name())
			}
			return true
		})
	})
	return nil
}

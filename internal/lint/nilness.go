package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness reports dereferences of values the surrounding control flow
// has just proven nil, and nil checks that can never fire. It is a
// deliberately conservative, syntax-directed stand-in for the x/tools
// SSA-based `nilness` pass (not vendorable into this offline build):
// it only reasons about branches guarded by an explicit `x == nil` /
// `x != nil` comparison of a local identifier, and abandons a fact the
// moment the identifier is reassigned — so every report is a real
// contradiction, at the cost of missing the deeper flow-dependent
// cases the SSA pass would catch.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences of provably nil values and nil checks that cannot fire",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	info := pass.Pkg.Info
	funcDecls(pass.Pkg, func(decl *ast.FuncDecl, obj *types.Func, key string) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			id, eq := nilComparison(info, ifs.Cond)
			if id == nil {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if eq {
				// x == nil: x is nil in the then-branch.
				checkNilUses(pass, info, obj, id.Name, ifs.Body)
			} else if ifs.Else != nil {
				// x != nil: x is nil in the else-branch.
				checkNilUses(pass, info, obj, id.Name, ifs.Else)
			}
			return true
		})
		checkImpossibleNil(pass, info, decl.Body)
	})
	return nil
}

// nilComparison matches `x == nil` / `nil == x` (eq=true) and
// `x != nil` / `nil != x` (eq=false) where x is a plain identifier of
// a nilable type.
func nilComparison(info *types.Info, cond ast.Expr) (*ast.Ident, bool) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return nil, false
	}
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if isNil(info, x) {
		x, y = y, x
	}
	if !isNil(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	return id, b.Op == token.EQL
}

// checkNilUses flags dereferences of obj inside body, stopping at the
// first reassignment (or address-taking, which may feed a setter).
func checkNilUses(pass *Pass, info *types.Info, obj types.Object, name string, body ast.Stmt) {
	reassigned := token.NoPos
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lid, ok := ast.Unparen(lhs).(*ast.Ident); ok && info.Uses[lid] == obj {
					if reassigned == token.NoPos || as.Pos() < reassigned {
						reassigned = as.Pos()
					}
				}
			}
		}
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if lid, ok := ast.Unparen(ue.X).(*ast.Ident); ok && info.Uses[lid] == obj {
				if reassigned == token.NoPos || ue.Pos() < reassigned {
					reassigned = ue.Pos()
				}
			}
		}
		return true
	})
	dead := func(pos token.Pos) bool { return reassigned != token.NoPos && pos >= reassigned }

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.StarExpr:
			if usesObj(info, n.X, obj) && !dead(n.Pos()) {
				pass.Reportf(n.Pos(), "nil dereference: %s is provably nil on this branch", name)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[n]; ok && usesObj(info, n.X, obj) && !dead(n.Pos()) {
				// Selection through a nil pointer panics; method values
				// with pointer receivers only panic when they deref, so
				// restrict to field selections and embedded derefs.
				if sel.Kind() == types.FieldVal && derefs(sel) {
					pass.Reportf(n.Pos(), "nil dereference: field selection on %s, which is provably nil on this branch", name)
				}
			}
		case *ast.IndexExpr:
			if usesObj(info, n.X, obj) && !dead(n.Pos()) {
				if t := info.TypeOf(n.X); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						pass.Reportf(n.Pos(), "index of %s, a provably nil slice on this branch: always out of range", name)
					case *types.Pointer:
						pass.Reportf(n.Pos(), "nil dereference: index through %s, which is provably nil on this branch", name)
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && info.Uses[id] == obj && !dead(n.Pos()) {
				pass.Reportf(n.Pos(), "call of %s, a provably nil function value on this branch", name)
			}
		}
		return true
	})
}

func usesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// derefs reports whether a field selection dereferences a pointer at
// its first hop (x.f with x a pointer).
func derefs(sel *types.Selection) bool {
	_, ok := sel.Recv().Underlying().(*types.Pointer)
	return ok
}

// checkImpossibleNil flags `if x == nil` immediately after x was
// assigned a freshly allocated value (&T{}, new, make): the check can
// never fire and usually marks an error-handling slip.
func checkImpossibleNil(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i := 1; i < len(block.List); i++ {
			ifs, ok := block.List[i].(*ast.IfStmt)
			if !ok || ifs.Init != nil {
				continue
			}
			id, eq := nilComparison(info, ifs.Cond)
			if id == nil || !eq {
				continue
			}
			as, ok := block.List[i-1].(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lid, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[lid]
			if obj == nil {
				obj = info.Uses[lid]
			}
			if obj == nil || info.Uses[id] != obj {
				continue
			}
			if freshlyAllocated(info, as.Rhs[0]) {
				pass.Reportf(ifs.Cond.Pos(), "%s was just assigned a freshly allocated value: this nil check can never fire", id.Name)
			}
		}
		return true
	})
}

func freshlyAllocated(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		return ok && (b.Name() == "new" || b.Name() == "make")
	}
	return false
}

package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (xorshift64* core with a splitmix64 seeder). Every stochastic element
// of an experiment draws from an RNG seeded by the experiment so that all
// tables and figures regenerate bit-identically.
//
// RNG is not safe for concurrent use; give each goroutine its own stream
// via Split.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian deviate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 scramble so that small consecutive seeds yield
	// uncorrelated streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x853c49e6748fea9b // xorshift state must be nonzero
	}
	r.state = z
	return r
}

// Split derives an independent stream from this one, keyed by id.
// Deterministic: the same (parent seed, id) always yields the same child.
func (r *RNG) Split(id uint64) *RNG {
	return NewRNG(r.state ^ (id+1)*0xd1342543de82ef95)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a Gaussian deviate with the given mean and standard
// deviation, using Box-Muller with caching of the second deviate.
func (r *RNG) Norm(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return mean + stddev*u*f
}

// Exp returns an exponential deviate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Zipf returns an integer in [0, n) drawn from a Zipf-like distribution
// with exponent s (s = 0 is uniform; larger s concentrates mass on small
// indices). It uses inverse-CDF sampling over a harmonic table that is
// rebuilt only when parameters change, so repeated draws are cheap.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	return NewZipfFromCDF(rng, ZipfCDF(n, s))
}

// ZipfCDF precomputes the harmonic CDF table for [0, n) with exponent
// s. The table depends only on (n, s), so callers building many
// samplers over the same distribution (one per core of a swept
// configuration) can compute it once and share it — the math.Pow loop
// here is by far the expensive part of sampler construction.
func ZipfCDF(n int, s float64) []float64 {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return cdf
}

// NewZipfFromCDF wraps a precomputed ZipfCDF table. The table is read,
// never written: any number of samplers may share one.
func NewZipfFromCDF(rng *RNG, cdf []float64) *Zipf {
	if len(cdf) == 0 {
		panic("sim: Zipf with empty CDF")
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw samples one index.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

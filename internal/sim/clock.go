// Package sim provides the small pieces of deterministic simulation
// infrastructure shared by every platform model in this repository: a
// virtual clock, reproducible random-number streams, and helpers for
// interval-based simulation.
//
// All models in this reproduction are simulated rather than measured on
// real hardware, so time never comes from the operating system; it comes
// from a Clock that the experiment driver advances explicitly.
package sim

import "fmt"

// Time is a point in simulated time, in seconds. float64 seconds gives
// sub-nanosecond resolution over the minutes-long horizons simulated here.
type Time = float64

// Clock is a virtual clock. The zero value is a clock at time zero.
//
// Clock is not safe for concurrent use; simulations in this repository are
// single-goroutine event loops (see Effective Go: share memory by
// communicating — here there is exactly one communicating party).
type Clock struct {
	now Time
}

// NewClock returns a clock set to start.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the current simulated time in seconds.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by dt seconds. It panics if dt is
// negative: simulated time is monotone, and a negative step is always a
// driver bug that should fail loudly.
func (c *Clock) Advance(dt Time) {
	if dt < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative dt %g", dt))
	}
	c.now += dt
}

// AdvanceTo moves the clock forward to t. It panics if t is in the past.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards from %g to %g", c.now, t))
	}
	c.now = t
}

// Nower is the read-only view of a clock. Components that must observe
// time but never advance it (heartbeat monitors, sensors, power meters)
// accept a Nower.
type Nower interface {
	Now() Time
}

var _ Nower = (*Clock)(nil)

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestClockStartsAtGivenTime(t *testing.T) {
	c := NewClock(3.5)
	if got := c.Now(); got != 3.5 {
		t.Fatalf("Now() = %g, want 3.5", got)
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	c.Advance(1.25)
	c.Advance(0.75)
	if got := c.Now(); got != 2.0 {
		t.Fatalf("Now() = %g, want 2.0", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock(1)
	c.AdvanceTo(4)
	if got := c.Now(); got != 4 {
		t.Fatalf("Now() = %g, want 4", got)
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestClockBackwardsAdvanceToPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo into the past did not panic")
		}
	}()
	NewClock(5).AdvanceTo(4)
}

func TestClockMonotoneProperty(t *testing.T) {
	// Property: any sequence of non-negative advances keeps time monotone
	// non-decreasing.
	f := func(steps []uint16) bool {
		c := NewClock(0)
		prev := c.Now()
		for _, s := range steps {
			c.Advance(float64(s) / 1000.0)
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws across different seeds", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling streams produced identical first draw")
	}
	// Splitting again with the same id from an untouched parent must
	// reproduce the same child stream.
	parent2 := NewRNG(7)
	c1b := parent2.Split(1)
	if c1b.Uint64() != NewRNG(7).Split(1).Uint64() {
		t.Fatal("Split is not deterministic")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(2.0, 3.0)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("normal mean = %g, want ~2.0", mean)
	}
	if math.Abs(math.Sqrt(variance)-3.0) > 0.05 {
		t.Fatalf("normal stddev = %g, want ~3.0", math.Sqrt(variance))
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / n
	if math.Abs(mean-4.0) > 0.1 {
		t.Fatalf("exponential mean = %g, want ~4.0", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(17)
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := NewRNG(5)
	z := NewZipf(r, 4, 0)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("bucket %d frequency %g, want ~0.25", i, frac)
		}
	}
}

func TestZipfSkewsTowardSmallIndices(t *testing.T) {
	r := NewRNG(6)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("count[0]=%d not greater than count[50]=%d for skewed Zipf",
			counts[0], counts[50])
	}
	head := counts[0] + counts[1] + counts[2]
	if float64(head)/n < 0.15 {
		t.Fatalf("head mass %g too small for s=1.2", float64(head)/n)
	}
}

func TestZipfDrawInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		z := NewZipf(r, 13, 0.8)
		for i := 0; i < 200; i++ {
			v := z.Draw()
			if v < 0 || v >= 13 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfPanicsOnEmptyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(_, 0, 1) did not panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

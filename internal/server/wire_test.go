package server

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"angstrom/internal/journal"
)

// Unit tests for the binary beat wire protocol: handshake, batch
// placement, the fail-fast error contract, and counter accounting.
// The JSON-equivalence property harness lives in wire_equiv_test.go.

// wireFixture is a daemon plus a served wire listener and one client.
type wireFixture struct {
	d  *Daemon
	ws *WireServer
	wc *WireClient
}

func newWireFixture(t *testing.T, cfg Config, apps ...string) *wireFixture {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range apps {
		if err := d.Enroll(EnrollRequest{Name: name, Mode: ModeAdvisory, MinRate: 10, MaxRate: 20}); err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(d, ln)
	go ws.Serve()
	wc, err := DialWire(ln.Addr().String())
	if err != nil {
		ws.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		wc.Close()
		ws.Close()
	})
	return &wireFixture{d: d, ws: ws, wc: wc}
}

func advisoryCfg() Config {
	return Config{Cores: 64, Accel: 0.5, Period: time.Hour, Oversubscribe: true, Shards: 4, TickWorkers: 2}
}

func TestWireHelloBeatsFlush(t *testing.T) {
	fx := newWireFixture(t, advisoryCfg(), "alpha", "beta")
	h1, err := fx.wc.Hello("alpha")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := fx.wc.Hello("beta")
	if err != nil {
		t.Fatal(err)
	}
	if h1 != 0 || h2 != 1 {
		t.Fatalf("handles = %d, %d; want sequential 0, 1", h1, h2)
	}
	for i := 0; i < 10; i++ {
		if err := fx.wc.Beats(h1, 7, 0); err != nil {
			t.Fatal(err)
		}
		if err := fx.wc.Beats(h2, 3, 0.25); err != nil {
			t.Fatal(err)
		}
	}
	total, err := fx.wc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if total != 100 {
		t.Fatalf("flush total = %d, want 100", total)
	}
	st := fx.d.Stats()
	if st.Beats != 100 {
		t.Fatalf("Stats.Beats = %d after flush barrier, want 100", st.Beats)
	}
	if st.WireFrames != 20 {
		t.Fatalf("Stats.WireFrames = %d, want 20", st.WireFrames)
	}
	if st.WireConns != 1 {
		t.Fatalf("Stats.WireConns = %d, want 1", st.WireConns)
	}
	if got, _ := fx.d.Status("alpha"); got.Observation.Beats != 70 {
		t.Fatalf("alpha beats = %d, want 70", got.Observation.Beats)
	}
	if got, _ := fx.d.Status("beta"); got.Observation.Beats != 30 {
		t.Fatalf("beta beats = %d, want 30", got.Observation.Beats)
	}
	// The per-shard counters reconcile with the flushed fleet total.
	var sum uint64
	for _, n := range fx.d.ShardBeats() {
		sum += n
	}
	if sum != st.Beats {
		t.Fatalf("sum(ShardBeats) = %d, Stats.Beats = %d", sum, st.Beats)
	}
}

// TestWireBeatsTSMatchesBeatTimestamps drives the same nanosecond
// schedule through the wire decoder and through the JSON-path
// BeatTimestamps entry point on a twin daemon: the monitors must end
// byte-identical (the window includes exact float timestamps).
func TestWireBeatsTSMatchesBeatTimestamps(t *testing.T) {
	fx := newWireFixture(t, advisoryCfg(), "a")
	ctl, err := NewDaemon(advisoryCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Enroll(EnrollRequest{Name: "a", Mode: ModeAdvisory, MinRate: 10, MaxRate: 20}); err != nil {
		t.Fatal(err)
	}
	h, err := fx.wc.Hello("a")
	if err != nil {
		t.Fatal(err)
	}
	ns := []uint64{0, 0, 1, 1_000_000, 999_999_999, 1_000_000_000, 5_500_000_000, 5_500_000_000}
	ts := make([]float64, len(ns))
	for i, v := range ns {
		ts[i] = float64(v) / 1e9
	}
	if err := fx.wc.BeatsAt(h, ns, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.wc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ctl.BeatTimestamps("a", ts, 0.5); err != nil {
		t.Fatal(err)
	}
	aw, _ := fx.d.lookup("a")
	ac, _ := ctl.lookup("a")
	got, want := aw.mon.Window(), ac.mon.Window()
	if len(got) != len(want) {
		t.Fatalf("window sizes differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("window[%d] differs:\n  wire: %+v\n  json: %+v", i, got[i], want[i])
		}
	}
}

// TestWireFailFast exercises the error contract: each bad stream gets
// an error frame whose message matches, and the connection is closed.
func TestWireFailFast(t *testing.T) {
	rawFrame := func(payload []byte) []byte { return journal.AppendFrame(nil, payload) }
	beatsPayload := func(handle, count uint32) []byte {
		p := []byte{wireOpBeats}
		p = binary.LittleEndian.AppendUint32(p, handle)
		p = binary.LittleEndian.AppendUint32(p, count)
		p = binary.LittleEndian.AppendUint64(p, 0)
		return p
	}
	cases := []struct {
		name string
		raw  func(t *testing.T, fx *wireFixture) []byte // bytes to write verbatim
		want string
	}{
		{"unknown opcode", func(t *testing.T, fx *wireFixture) []byte {
			return rawFrame([]byte{0x7e})
		}, "unknown wire opcode"},
		{"empty payload", func(t *testing.T, fx *wireFixture) []byte {
			return rawFrame(nil)
		}, "malformed wire frame"},
		{"bad crc", func(t *testing.T, fx *wireFixture) []byte {
			f := rawFrame([]byte{wireOpFlush})
			f[len(f)-1] ^= 0xff
			return f
		}, "checksum mismatch"},
		{"oversized length prefix", func(t *testing.T, fx *wireFixture) []byte {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[:4], MaxWireFrame+1)
			return hdr[:]
		}, "exceeds MaxWireFrame"},
		{"hello for unknown app", func(t *testing.T, fx *wireFixture) []byte {
			p := []byte{wireOpHello, WireVersion}
			p = binary.LittleEndian.AppendUint16(p, 5)
			return rawFrame(append(p, "ghost"...))
		}, "not enrolled"},
		{"hello bad version", func(t *testing.T, fx *wireFixture) []byte {
			p := []byte{wireOpHello, 99}
			p = binary.LittleEndian.AppendUint16(p, 1)
			return rawFrame(append(p, 'a'))
		}, "unsupported wire protocol version"},
		{"beats unknown handle", func(t *testing.T, fx *wireFixture) []byte {
			return rawFrame(beatsPayload(42, 1))
		}, "unknown wire handle"},
		{"beats zero count", func(t *testing.T, fx *wireFixture) []byte {
			helloWire(t, fx.wc, "a")
			return rawFrame(beatsPayload(0, 0))
		}, "outside [1, 10000]"},
		{"beats count over batch cap", func(t *testing.T, fx *wireFixture) []byte {
			helloWire(t, fx.wc, "a")
			return rawFrame(beatsPayload(0, MaxBeatBatch+1))
		}, "outside [1, 10000]"},
		{"beatsTS trailing bytes", func(t *testing.T, fx *wireFixture) []byte {
			helloWire(t, fx.wc, "a")
			p := []byte{wireOpBeatsTS}
			p = binary.LittleEndian.AppendUint32(p, 0)
			p = binary.LittleEndian.AppendUint32(p, 1)
			p = binary.LittleEndian.AppendUint64(p, 0)
			p = binary.AppendUvarint(p, 1e9)
			p = append(p, 0xAB) // junk after the last timestamp
			return rawFrame(p)
		}, "trailing bytes"},
		{"beatsTS overflow", func(t *testing.T, fx *wireFixture) []byte {
			helloWire(t, fx.wc, "a")
			p := []byte{wireOpBeatsTS}
			p = binary.LittleEndian.AppendUint32(p, 0)
			p = binary.LittleEndian.AppendUint32(p, 2)
			p = binary.LittleEndian.AppendUint64(p, 0)
			p = binary.AppendUvarint(p, 1<<63)
			p = binary.AppendUvarint(p, 1<<63)
			return rawFrame(p)
		}, "overflows uint64"},
		{"beats NaN distortion", func(t *testing.T, fx *wireFixture) []byte {
			helloWire(t, fx.wc, "a")
			p := []byte{wireOpBeats}
			p = binary.LittleEndian.AppendUint32(p, 0)
			p = binary.LittleEndian.AppendUint32(p, 1)
			p = binary.LittleEndian.AppendUint64(p, 0x7ff8000000000001) // NaN bits
			return rawFrame(p)
		}, "distortion"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := newWireFixture(t, advisoryCfg(), "a")
			raw := tc.raw(t, fx)
			fx.wc.mu.Lock()
			_, werr := fx.wc.bw.Write(raw)
			if werr == nil {
				werr = fx.wc.bw.Flush()
			}
			fx.wc.mu.Unlock()
			if werr != nil {
				t.Fatal(werr)
			}
			_, err := fx.wc.Flush()
			if err == nil {
				t.Fatal("flush after poisoned stream succeeded; want error frame")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// Fail-fast: the server closed the conn; a fresh write fails.
			if _, err := fx.wc.Flush(); err == nil {
				t.Fatal("connection still usable after error frame")
			}
		})
	}
}

// helloWire registers name and fails the test on error.
func helloWire(t *testing.T, wc *WireClient, name string) uint32 {
	t.Helper()
	h, err := wc.Hello(name)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestWireChipBackedRefused(t *testing.T) {
	cfg := advisoryCfg()
	cfg.Chip = &ChipConfig{Tiles: 16}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "hw", MinRate: 10, MaxRate: 20}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(d, ln)
	go ws.Serve()
	defer ws.Close()
	wc, err := DialWire(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if _, err := wc.Hello("hw"); err == nil || !strings.Contains(err.Error(), "chip-backed") {
		t.Fatalf("hello to chip-backed app = %v; want chip-backed refusal", err)
	}
}

// TestWireWithdrawnHandleFails: handles resolve through the directory
// per batch, so a withdrawn app's handle poisons the stream instead of
// writing into a dead monitor.
func TestWireWithdrawnHandleFails(t *testing.T) {
	fx := newWireFixture(t, advisoryCfg(), "gone")
	h := helloWire(t, fx.wc, "gone")
	if err := fx.wc.Beats(h, 5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.wc.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fx.d.Withdraw("gone"); err != nil {
		t.Fatal(err)
	}
	if err := fx.wc.Beats(h, 5, 0); err != nil {
		t.Fatal(err) // buffered, unacknowledged
	}
	if _, err := fx.wc.Flush(); err == nil || !strings.Contains(err.Error(), "not enrolled") {
		t.Fatalf("beat to withdrawn app = %v; want not-enrolled rejection", err)
	}
}

// TestWireConnCloseFlushesDeltas: a connection that dies without a
// flush barrier still publishes its pending deltas on teardown.
func TestWireConnCloseFlushesDeltas(t *testing.T) {
	fx := newWireFixture(t, advisoryCfg(), "a")
	h := helloWire(t, fx.wc, "a")
	// 10 beats: far below wireFlushBeats, so they sit in the conn delta.
	if err := fx.wc.Beats(h, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := fx.wc.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is async from the server's perspective; wait for the handler
	// to drain and publish.
	deadline := time.Now().Add(5 * time.Second)
	for fx.d.Stats().Beats != 10 || fx.d.Stats().WireConns != 0 {
		if time.Now().After(deadline) {
			st := fx.d.Stats()
			t.Fatalf("conn teardown did not reconcile: beats=%d conns=%d", st.Beats, st.WireConns)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWireServerClose: Close unblocks Serve, kills live conns, and a
// client's next barrier fails cleanly.
func TestWireServerClose(t *testing.T) {
	fx := newWireFixture(t, advisoryCfg(), "a")
	if err := fx.ws.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.wc.Flush(); err == nil {
		t.Fatal("flush succeeded against a closed wire server")
	}
	if err := fx.wc.Err(); err == nil {
		t.Fatal("client error not latched after server close")
	}
}

// TestWireTornHeaderRejected: a stream ending mid-header is a malformed
// stream (covered too by FuzzWireFrame, but pinned here explicitly).
func TestWireTornHeaderRejected(t *testing.T) {
	d, err := NewDaemon(advisoryCfg())
	if err != nil {
		t.Fatal(err)
	}
	wc := newWireConn(d, strings.NewReader("\x03\x00\x00"), io.Discard)
	if err := wc.run(); !errors.Is(err, errWireFrame) {
		t.Fatalf("torn header: run() = %v, want errWireFrame", err)
	}
	// A clean EOF at a frame boundary is a clean close.
	wc2 := newWireConn(d, strings.NewReader(""), io.Discard)
	if err := wc2.run(); err != io.EOF {
		t.Fatalf("empty stream: run() = %v, want io.EOF", err)
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"angstrom/internal/journal"
)

// The tentpole property: the binary wire path is byte-equivalent to
// JSON ingestion. One seeded beat schedule is driven through two
// journaled daemons — one fed through the HTTP/JSON endpoints, one fed
// the identical batches through the binary protocol (control plane
// stays HTTP on both) — and every observable artifact must match
// byte for byte: per-tick status transcripts (heartbeat windows, rates,
// allocations, decisions), the fleet beat counters, and the daemons
// restored by replaying each journal.
//
// Timestamped batches are the delicate part: the wire encodes them as
// nanosecond uvarints, so the schedule is generated on a nanosecond
// grid and the JSON side is fed float64(ns)/1e9 — the exact conversion
// the wire decoder performs. Go's JSON round-trips float64 exactly, so
// any divergence is a real decoder bug, not float noise.

// equivOp is one round's action for one app, applied to both daemons.
type equivOp struct {
	app        int
	count      int      // count-mode batch size (0 = ts-mode)
	ns         []uint64 // ts-mode nanosecond timestamps
	distortion float64
	goal       float64 // >0: SetGoal(min=goal) this round instead of beating
	churn      bool    // withdraw + re-enroll before anything else
}

func TestWireMatchesJSONIngestion(t *testing.T) {
	base := Config{Cores: 48, Accel: 0.5, Period: time.Hour, Oversubscribe: true, Shards: 4, TickWorkers: 2}
	const apps, rounds = 8, 25

	fsJSON, fsWire := journal.NewMemFS(), journal.NewMemFS()
	dj, err := NewDaemon(journalOnly(base, fsJSON))
	if err != nil {
		t.Fatal(err)
	}
	dw, err := NewDaemon(journalOnly(base, fsWire))
	if err != nil {
		t.Fatal(err)
	}
	srvJSON := httptest.NewServer(dj.Handler())
	defer srvJSON.Close()
	srvWireCtl := httptest.NewServer(dw.Handler())
	defer srvWireCtl.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(dw, ln)
	go ws.Serve()
	defer ws.Close()
	wc, err := DialWire(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()

	name := func(i int) string { return fmt.Sprintf("eq-%02d", i) }
	post := func(t *testing.T, srv *httptest.Server, path string, body any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: %s", path, resp.Status)
		}
	}
	do := func(t *testing.T, srv *httptest.Server, method, path string, body any) {
		t.Helper()
		var rd *bytes.Reader
		if body != nil {
			raw, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(raw)
		} else {
			rd = bytes.NewReader(nil)
		}
		req, err := http.NewRequest(method, srv.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			t.Fatalf("%s %s: %s", method, path, resp.Status)
		}
	}
	enrollBoth := func(t *testing.T, i int) {
		t.Helper()
		req := EnrollRequest{Name: name(i), Mode: ModeAdvisory, MinRate: 10 + float64(i), MaxRate: 40}
		post(t, srvJSON, "/v1/apps", req)
		post(t, srvWireCtl, "/v1/apps", req)
	}

	handles := make([]uint32, apps)
	for i := 0; i < apps; i++ {
		enrollBoth(t, i)
		h, err := wc.Hello(name(i))
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}

	// Generate the whole seeded schedule up front from one rng, then
	// apply the identical ops to both transports.
	rng := rand.New(rand.NewSource(42))
	distortions := []float64{0, 0, 0.25, 0.5}
	cursors := make([]uint64, apps) // per-app ns clocks, arbitrary epochs
	for i := range cursors {
		cursors[i] = uint64(rng.Intn(1e9))
	}
	schedule := make([][]equivOp, rounds)
	for r := range schedule {
		for i := 0; i < apps; i++ {
			if (r+i)%4 == 3 {
				continue // idle this round: quiescence paths stay exercised
			}
			op := equivOp{app: i, distortion: distortions[rng.Intn(len(distortions))]}
			switch {
			case i == 0 && r%7 == 5:
				op.churn = true
				op.count = 1 + rng.Intn(10)
			case rng.Intn(10) == 0:
				op.goal = 12 + float64(rng.Intn(25))
			case rng.Intn(2) == 0:
				op.count = 1 + rng.Intn(40)
			default:
				n := 1 + rng.Intn(20)
				op.ns = make([]uint64, n)
				for j := 0; j < n; j++ {
					cursors[i] += uint64(1_000_00 + rng.Intn(100_000_000)) // 0.1ms..100ms
					op.ns[j] = cursors[i]
				}
			}
			schedule[r] = append(schedule[r], op)
		}
	}

	var wantTr, gotTr [][]AppStatus
	for r, ops := range schedule {
		for _, op := range ops {
			if op.churn {
				do(t, srvJSON, "DELETE", "/v1/apps/"+name(op.app), nil)
				do(t, srvWireCtl, "DELETE", "/v1/apps/"+name(op.app), nil)
				enrollBoth(t, op.app)
				// Handles map to names, not app identities, so the
				// existing handle tracks the re-enrollment — but a
				// mid-stream re-hello must also keep working.
				h, err := wc.Hello(name(op.app))
				if err != nil {
					t.Fatal(err)
				}
				handles[op.app] = h
			}
			switch {
			case op.goal > 0:
				do(t, srvJSON, "PUT", "/v1/apps/"+name(op.app)+"/goal", GoalRequest{MinRate: op.goal})
				do(t, srvWireCtl, "PUT", "/v1/apps/"+name(op.app)+"/goal", GoalRequest{MinRate: op.goal})
			case op.count > 0:
				post(t, srvJSON, "/v1/apps/"+name(op.app)+"/beats",
					BeatRequest{Count: op.count, Distortion: op.distortion})
				if err := wc.Beats(handles[op.app], op.count, op.distortion); err != nil {
					t.Fatal(err)
				}
			default:
				ts := make([]float64, len(op.ns))
				for j, v := range op.ns {
					ts[j] = float64(v) / 1e9 // the decoder's exact conversion
				}
				post(t, srvJSON, "/v1/apps/"+name(op.app)+"/beats",
					BeatRequest{Timestamps: ts, Distortion: op.distortion})
				if err := wc.BeatsAt(handles[op.app], op.ns, op.distortion); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Barrier: every wire batch of this round is ingested (and the
		// conn's counter deltas published) before either daemon ticks.
		if _, err := wc.Flush(); err != nil {
			t.Fatalf("round %d flush: %v", r, err)
		}
		dj.Tick()
		dw.Tick()
		wantTr = append(wantTr, dj.List())
		gotTr = append(gotTr, dw.List())
	}
	diffTranscripts(t, "wire vs json transcript", wantTr, gotTr)

	stJ, stW := dj.Stats(), dw.Stats()
	if stJ.Beats != stW.Beats {
		t.Fatalf("fleet beat totals diverge: json=%d wire=%d", stJ.Beats, stW.Beats)
	}
	if stJ.Ticks != stW.Ticks || stJ.Decisions != stW.Decisions {
		t.Fatalf("tick/decision counters diverge: json=%d/%d wire=%d/%d",
			stJ.Ticks, stJ.Decisions, stW.Ticks, stW.Decisions)
	}
	var shardSum uint64
	for _, n := range dw.ShardBeats() {
		shardSum += n
	}
	if shardSum != stW.Beats {
		t.Fatalf("wire shard counters (%d) do not reconcile with fleet total (%d)", shardSum, stW.Beats)
	}

	// Journal-replay restore: both journals replayed into fresh daemons
	// must rebuild the exact live state — and each other's.
	if err := dj.jd.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := dw.jd.w.Flush(); err != nil {
		t.Fatal(err)
	}
	rj, err := NewDaemon(journalOnly(base, fsJSON.Crash(0)))
	if err != nil {
		t.Fatalf("restore json journal: %v", err)
	}
	rw, err := NewDaemon(journalOnly(base, fsWire.Crash(0)))
	if err != nil {
		t.Fatalf("restore wire journal: %v", err)
	}
	diffTranscripts(t, "json replay vs live", [][]AppStatus{dj.List()}, [][]AppStatus{rj.List()})
	diffTranscripts(t, "wire replay vs live", [][]AppStatus{dw.List()}, [][]AppStatus{rw.List()})
	diffTranscripts(t, "wire replay vs json replay", [][]AppStatus{rj.List()}, [][]AppStatus{rw.List()})
	if rj.Stats().Beats != rw.Stats().Beats || rj.Stats().Beats != stJ.Beats {
		t.Fatalf("replayed beat totals diverge: json=%d wire=%d live=%d",
			rj.Stats().Beats, rw.Stats().Beats, stJ.Beats)
	}
	// And the restored daemons keep agreeing once they tick on.
	rj.Tick()
	rw.Tick()
	diffTranscripts(t, "post-replay tick", [][]AppStatus{rj.List()}, [][]AppStatus{rw.List()})
}

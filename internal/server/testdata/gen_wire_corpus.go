//go:build ignore

// gen_wire_corpus regenerates the committed FuzzWireFrame seed corpus:
//
//	go run internal/server/testdata/gen_wire_corpus.go
//
// Each seed is a whole client→server byte stream (several frames, not
// one) so the fuzzer starts from realistic sessions: handshakes, mixed
// count/timestamp batches, flush barriers — plus one corruption of each
// kind the decoder must reject (torn frame, bad CRC, hostile length,
// oversized count, timestamp overflow, trailing junk). Opcode bytes are
// spelled literally here; they are the protocol's wire contract
// (internal/server/wire.go), not an implementation detail.
package main

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"angstrom/internal/journal"
)

const (
	opHello   = 0x01
	opBeats   = 0x02
	opBeatsTS = 0x03
	opFlush   = 0x04
)

func hello(name string) []byte {
	p := []byte{opHello, 1}
	p = binary.LittleEndian.AppendUint16(p, uint16(len(name)))
	return append(p, name...)
}

func beats(handle, count uint32, distortion float64) []byte {
	p := []byte{opBeats}
	p = binary.LittleEndian.AppendUint32(p, handle)
	p = binary.LittleEndian.AppendUint32(p, count)
	return binary.LittleEndian.AppendUint64(p, bits(distortion))
}

func beatsTS(handle uint32, ns []uint64, distortion float64) []byte {
	p := []byte{opBeatsTS}
	p = binary.LittleEndian.AppendUint32(p, handle)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(ns)))
	p = binary.LittleEndian.AppendUint64(p, bits(distortion))
	prev := uint64(0)
	for i, t := range ns {
		if i == 0 {
			p = binary.AppendUvarint(p, t)
		} else {
			p = binary.AppendUvarint(p, t-prev)
		}
		prev = t
	}
	return p
}

// bits avoids importing math for one call.
func bits(f float64) uint64 {
	if f == 0 {
		return 0
	}
	if f == 0.5 {
		return 0x3FE0000000000000
	}
	panic("unsupported distortion literal")
}

func frames(payloads ...[]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = journal.AppendFrame(out, p)
	}
	return out
}

func main() {
	seeds := map[string][]byte{
		// Valid sessions: the app name matches the fuzz daemon's "fz".
		"session-count": frames(hello("fz"), beats(0, 10, 0), beats(0, 1, 0.5), []byte{opFlush}),
		"session-ts": frames(hello("fz"),
			beatsTS(0, []uint64{1_000_000_000, 1_250_000_000, 1_500_000_000}, 0),
			[]byte{opFlush}),
		"session-mixed": frames(hello("fz"), beats(0, 3, 0),
			beatsTS(0, []uint64{5_000_000_000, 5_100_000_000}, 0.5),
			beats(0, 7, 0), []byte{opFlush}),
		// Rejections the decoder must survive.
		"torn-frame":      frames(hello("fz"), beats(0, 5, 0))[:20],
		"bad-crc":         flipLastByte(frames(hello("fz"))),
		"hostile-length":  {0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4},
		"oversized-count": frames(hello("fz"), beats(0, 1_000_000, 0)),
		"unknown-handle":  frames(beats(9, 1, 0)),
		"ts-overflow":     frames(hello("fz"), tsOverflowPayload()),
		"ts-trailing":     frames(hello("fz"), append(beatsTS(0, []uint64{1e9}, 0), 0xAB)),
		"bad-version":     frames([]byte{opHello, 9, 2, 0, 'f', 'z'}),
		"ghost-hello":     frames(hello("nobody-home")),
	}
	dir := filepath.Join("internal", "server", "testdata", "fuzz", "FuzzWireFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	for name, stream := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", stream)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}

func flipLastByte(b []byte) []byte {
	b[len(b)-1] ^= 0xff
	return b
}

// tsOverflowPayload: a count=2 timestamped batch whose deltas sum past
// uint64 nanoseconds.
func tsOverflowPayload() []byte {
	p := []byte{opBeatsTS}
	p = binary.LittleEndian.AppendUint32(p, 0)
	p = binary.LittleEndian.AppendUint32(p, 2)
	p = binary.LittleEndian.AppendUint64(p, 0)
	p = binary.AppendUvarint(p, 1<<63)
	p = binary.AppendUvarint(p, 1<<63)
	return p
}

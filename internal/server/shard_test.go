package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// Directory unit coverage: the copy-on-write read path must agree with
// the writers and keep map and list views consistent.
func TestDirectoryBasics(t *testing.T) {
	d := newDirectory(5) // rounds up to 8
	if got := len(d.shards); got != 8 {
		t.Fatalf("shard count %d, want 8 (rounded up)", got)
	}
	names := []string{"a", "b", "c", "dd", "ee", "ff", "g-0", "g-1"}
	for _, n := range names {
		if !d.insert(n, &app{name: n}) {
			t.Fatalf("insert %q failed", n)
		}
	}
	if !d.insert("dup", &app{name: "dup"}) || d.insert("dup", &app{name: "dup"}) {
		t.Fatal("duplicate insert not refused")
	}
	if d.len() != len(names)+1 {
		t.Fatalf("len %d, want %d", d.len(), len(names)+1)
	}
	for _, n := range names {
		a, ok := d.get(n)
		if !ok || a.name != n {
			t.Fatalf("get %q = %v, %v", n, a, ok)
		}
	}
	snap := d.snapshot(nil)
	if len(snap) != len(names)+1 {
		t.Fatalf("snapshot %d entries, want %d", len(snap), len(names)+1)
	}
	if a, ok := d.remove("dd"); !ok || a.name != "dd" {
		t.Fatal("remove dd failed")
	}
	if _, ok := d.remove("dd"); ok {
		t.Fatal("double remove succeeded")
	}
	if _, ok := d.get("dd"); ok {
		t.Fatal("removed name still resolves")
	}
	if d.len() != len(names) {
		t.Fatalf("len %d after remove, want %d", d.len(), len(names))
	}
	// Shard assignment is a fixed hash: two directories agree.
	d2 := newDirectory(8)
	for _, n := range names {
		if d.shardFor(n) != &d.shards[0] && d2.shardFor(n) == &d2.shards[0] {
			t.Fatalf("shard assignment for %q differs between directories", n)
		}
	}
}

// Satellite: the sharded-directory churn test. Concurrent
// enroll/withdraw/beat/goal traffic against a fast-ticking chip-backed
// daemon, run under -race (make test does). At every quiesce point the
// tile ledger must account exactly for the survivors — never
// overcommitted, never faulted.
func TestShardedDirectoryChurnRace(t *testing.T) {
	const tiles = 16
	d, err := NewDaemon(Config{
		Cores: tiles, Period: time.Millisecond, Oversubscribe: true,
		Shards: 8, TickWorkers: 4,
		Chip: &ChipConfig{Tiles: tiles},
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	const workers = 8
	const rounds = 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			chipName := fmt.Sprintf("churn-%d", w)
			advName := fmt.Sprintf("adv-%d", w)
			for r := 0; r < rounds; r++ {
				// Chip app: enroll, let it execute a few periods, withdraw.
				if err := d.Enroll(EnrollRequest{Name: chipName, Workload: "water", MinRate: 2}); err != nil {
					t.Error(err)
					return
				}
				// Advisory app beats through the lock-free path meanwhile.
				if err := d.Enroll(EnrollRequest{Name: advName, Mode: ModeAdvisory, MinRate: 10, MaxRate: 30}); err != nil {
					t.Error(err)
					return
				}
				for b := 0; b < 20; b++ {
					if err := d.Beat(advName, 3, 0); err != nil {
						t.Error(err)
						return
					}
					if b == 10 {
						if err := d.SetGoal(advName, 12, 35); err != nil {
							t.Error(err)
							return
						}
					}
				}
				if r%3 == 0 {
					time.Sleep(time.Millisecond) // let ticks interleave the fleet
				}
				if err := d.Withdraw(chipName); err != nil {
					t.Error(err)
					return
				}
				if err := d.Withdraw(advName); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stopReaders := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
					d.List()
					d.Stats()
					if st, ok := d.ChipStatus(); ok {
						if st.CoreEquivalents > float64(tiles)+1e-6 {
							t.Errorf("ledger overcommitted mid-churn: %g > %d", st.CoreEquivalents, tiles)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stopReaders)
	rwg.Wait()
	d.Stop()

	if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after churn", f)
	}
	parts, used := d.fleet.Chip(0).Usage()
	if parts != 0 || used > 1e-6 {
		t.Fatalf("ledger not empty after full churn: %d partitions, %g core-equivalents", parts, used)
	}
	if apps := d.Stats().Apps; apps != 0 {
		t.Fatalf("%d apps still enrolled after full churn", apps)
	}
}

// Property-style coverage for makeRoom through the public surface:
// deterministic enroll/withdraw churn on a deeply oversubscribed chip.
// After every operation the ledger stays within the tile pool, no
// partition sits below the admission floor, and accounting matches the
// survivors exactly.
func TestMakeRoomChurnInvariants(t *testing.T) {
	const tiles = 2
	d, err := NewDaemon(Config{
		Cores: tiles, Accel: 0.2, Period: time.Hour, Oversubscribe: true,
		Shards: 4, TickWorkers: 2,
		Chip: &ChipConfig{Tiles: tiles},
	})
	if err != nil {
		t.Fatal(err)
	}
	check := func(op string) {
		t.Helper()
		if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
			t.Fatalf("%s: %d ledger faults", op, f)
		}
		_, used := d.fleet.Chip(0).Usage()
		if used > tiles+1e-6 {
			t.Fatalf("%s: ledger %g exceeds %d tiles", op, used, tiles)
		}
		sum := 0.0
		for _, a := range d.dir.snapshot(nil) {
			if a.partition() == nil {
				continue
			}
			share := a.partition().Share()
			if share < minChipShare-1e-9 {
				t.Fatalf("%s: %s share %g below floor %g", op, a.name, share, minChipShare)
			}
			sum += float64(a.partition().Config().Cores) * share
		}
		if diff := used - sum; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s: ledger %g != survivors %g", op, used, sum)
		}
	}
	live := 0
	name := func(i int) string { return fmt.Sprintf("mk-%03d", i) }
	for i := 0; i < 120; i++ {
		op := fmt.Sprintf("enroll %d", i)
		if err := d.Enroll(EnrollRequest{Name: name(i), Workload: "barnes", MinRate: 1}); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		live++
		check(op)
		if i%3 == 2 {
			victim := name(i - 2)
			if err := d.Withdraw(victim); err != nil {
				t.Fatalf("withdraw %s: %v", victim, err)
			}
			live--
			check("withdraw " + victim)
		}
		if i%10 == 9 {
			d.Tick()
			check(fmt.Sprintf("tick after %d", i))
		}
	}
	if got := d.Stats().Apps; got != live {
		t.Fatalf("%d apps enrolled, want %d", got, live)
	}
	// Oversubscription has a floor: beyond 1/minChipShare apps per tile
	// admission must refuse cleanly, not overcommit.
	for i := 1000; i < 1000+int(float64(tiles)/minChipShare); i++ {
		if err := d.Enroll(EnrollRequest{Name: name(i), Workload: "barnes", MinRate: 1}); err != nil {
			break
		}
		check(fmt.Sprintf("deep enroll %d", i))
	}
}

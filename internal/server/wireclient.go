package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"

	"angstrom/internal/journal"
)

// WireClient speaks the client side of the binary beat protocol (see
// wire.go and docs/API.md): Hello handshakes resolve enrolled app names
// to conn-local handles, Beats/BeatsAt append unacknowledged batch
// frames to an internal write buffer, and Flush is the only barrier —
// it pushes the buffer, waits for the server's ack, and returns the
// connection-lifetime ingested count. Many app goroutines may share one
// client (the intended shape: one persistent connection multiplexing a
// process's apps); all methods serialize on an internal mutex.
//
// Errors are fail-fast and latched: the server answers a rejected frame
// with one error frame and closes the connection, so the first failure
// poisons the client and every later call returns it.
type WireClient struct {
	mu    sync.Mutex
	c     net.Conn
	bw    *bufio.Writer
	br    *bufio.Reader
	hdr   [wireHeader]byte
	enc   []byte // reused payload build buffer
	frame []byte // reused framed-bytes build buffer
	err   error  // first fatal error, latched
}

// DialWire connects to a daemon's -beat-listen address.
func DialWire(addr string) (*WireClient, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewWireClient(c), nil
}

// NewWireClient wraps an established connection.
func NewWireClient(c net.Conn) *WireClient {
	return &WireClient{c: c, bw: bufio.NewWriterSize(c, 64<<10), br: bufio.NewReader(c)}
}

// Hello resolves an enrolled app name to a handle for this connection.
// It flushes buffered frames and round-trips.
func (w *WireClient) Hello(name string) (uint32, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if len(name) == 0 || len(name) > math.MaxUint16 {
		return 0, errors.New("wire: app name length unsupported")
	}
	p := append(w.enc[:0], wireOpHello, WireVersion)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(name)))
	p = append(p, name...)
	w.enc = p
	if err := w.writeLocked(p); err != nil {
		return 0, err
	}
	reply, err := w.roundTripLocked(wireOpHelloOK)
	if err != nil {
		return 0, err
	}
	if len(reply) != 5 {
		return 0, w.fatal(errors.New("wire: malformed hello ack"))
	}
	return binary.LittleEndian.Uint32(reply[1:]), nil
}

// Beats appends a server-spread batch frame: count beats for handle,
// the last carrying distortion. The frame is buffered and
// unacknowledged; transport or rejection errors surface on the next
// barrier (Flush/Hello) or, for earlier failures, immediately.
func (w *WireClient) Beats(handle uint32, count int, distortion float64) error {
	if count < 1 || count > MaxBeatBatch {
		return fmt.Errorf("wire: beat count %d outside [1, %d]", count, MaxBeatBatch)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	p := append(w.enc[:0], wireOpBeats)
	p = binary.LittleEndian.AppendUint32(p, handle)
	p = binary.LittleEndian.AppendUint32(p, uint32(count))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(distortion))
	w.enc = p
	return w.writeLocked(p)
}

// BeatsAt appends a timestamped batch frame. ns holds absolute
// non-decreasing nanosecond timestamps in any epoch (a client monotonic
// clock, Unix nanos): like the JSON timestamps field, only their
// spacing matters — the server shifts the batch so its last beat lands
// at the daemon clock's current time. On the wire the batch is
// delta-encoded: the first uvarint is ns[0], each later one the gap to
// its predecessor.
func (w *WireClient) BeatsAt(handle uint32, ns []uint64, distortion float64) error {
	if len(ns) < 1 || len(ns) > MaxBeatBatch {
		return fmt.Errorf("wire: beat count %d outside [1, %d]", len(ns), MaxBeatBatch)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	p := append(w.enc[:0], wireOpBeatsTS)
	p = binary.LittleEndian.AppendUint32(p, handle)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(ns)))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(distortion))
	prev := uint64(0)
	for i, t := range ns {
		if i == 0 {
			p = binary.AppendUvarint(p, t)
		} else {
			if t < prev {
				return fmt.Errorf("wire: timestamps decrease at index %d (%d after %d)", i, t, prev)
			}
			p = binary.AppendUvarint(p, t-prev)
		}
		prev = t
	}
	w.enc = p
	return w.writeLocked(p)
}

// Flush writes buffered frames and waits for the server's ack — the
// protocol's only barrier. When it returns, every prior batch on this
// connection has been ingested and the daemon's shared counters include
// them. The result is the connection-lifetime ingested beat count.
func (w *WireClient) Flush() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	p := append(w.enc[:0], wireOpFlush)
	w.enc = p
	if err := w.writeLocked(p); err != nil {
		return 0, err
	}
	reply, err := w.roundTripLocked(wireOpFlushOK)
	if err != nil {
		return 0, err
	}
	if len(reply) != 9 {
		return 0, w.fatal(errors.New("wire: malformed flush ack"))
	}
	return binary.LittleEndian.Uint64(reply[1:]), nil
}

// Err reports the latched fatal error, if any.
func (w *WireClient) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close flushes the write buffer (best effort) and closes the
// connection.
func (w *WireClient) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err == nil {
		_ = w.bw.Flush()
	}
	return w.c.Close()
}

func (w *WireClient) writeLocked(payload []byte) error {
	w.frame = journal.AppendFrame(w.frame[:0], payload)
	if _, err := w.bw.Write(w.frame); err != nil {
		return w.fatal(err)
	}
	return nil
}

func (w *WireClient) roundTripLocked(want byte) ([]byte, error) {
	if err := w.bw.Flush(); err != nil {
		return nil, w.fatal(err)
	}
	reply, err := w.readFrameLocked()
	if err != nil {
		return nil, err
	}
	if len(reply) == 0 {
		return nil, w.fatal(errors.New("wire: empty reply frame"))
	}
	if reply[0] == wireOpError {
		if len(reply) >= 3 {
			if n := int(binary.LittleEndian.Uint16(reply[1:3])); 3+n <= len(reply) {
				return nil, w.fatal(fmt.Errorf("wire: server rejected: %s", reply[3:3+n]))
			}
		}
		return nil, w.fatal(errors.New("wire: server rejected the stream"))
	}
	if reply[0] != want {
		return nil, w.fatal(fmt.Errorf("wire: unexpected reply opcode %#02x", reply[0]))
	}
	return reply, nil
}

// readFrameLocked reads one server reply frame. Replies are rare
// (hello/flush acks), so a per-read allocation is fine.
func (w *WireClient) readFrameLocked() ([]byte, error) {
	if _, err := io.ReadFull(w.br, w.hdr[:]); err != nil {
		return nil, w.fatal(err)
	}
	n := int(binary.LittleEndian.Uint32(w.hdr[:4]))
	want := binary.LittleEndian.Uint32(w.hdr[4:])
	if n > MaxWireFrame {
		return nil, w.fatal(errWireOversize)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(w.br, buf); err != nil {
		return nil, w.fatal(err)
	}
	crc := crc32.ChecksumIEEE(w.hdr[:4])
	crc = crc32.Update(crc, crc32.IEEETable, buf)
	if crc != want {
		return nil, w.fatal(errWireCRC)
	}
	return buf, nil
}

func (w *WireClient) fatal(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

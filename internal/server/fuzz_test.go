package server

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Fuzz targets for the HTTP JSON surface. The contract under arbitrary
// input: no panic, no tile-ledger fault, and the application monitors'
// time frontier stays finite (a NaN smuggled through a beat payload
// would silently poison every windowed rate downstream). `go test`
// runs the seed corpus on every CI pass; `go test -fuzz=FuzzX` explores
// from it.

// fuzzDaemon builds a small accelerated daemon with one advisory app
// enrolled for the beat/goal endpoints to aim at.
func fuzzDaemon(f *testing.F) (*Daemon, http.Handler) {
	f.Helper()
	d, err := NewDaemon(Config{
		Cores: 8, Accel: 0.1, Period: time.Hour, Oversubscribe: true,
		Shards: 4, TickWorkers: 2,
		Chip: &ChipConfig{Tiles: 8},
	})
	if err != nil {
		f.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "fz", Mode: ModeAdvisory, MinRate: 10, MaxRate: 20}); err != nil {
		f.Fatal(err)
	}
	return d, d.Handler()
}

// checkDaemonHealthy asserts the post-request invariants shared by
// every HTTP fuzz target.
func checkDaemonHealthy(t *testing.T, d *Daemon, status int) {
	t.Helper()
	if status < 200 || status > 599 {
		t.Fatalf("implausible HTTP status %d", status)
	}
	if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults", f)
	}
	if _, used := d.fleet.Chip(0).Usage(); used > float64(d.fleet.Chip(0).Tiles())+1e-6 {
		t.Fatalf("ledger overcommitted: %g", used)
	}
	st, err := d.Status("fz")
	if err != nil {
		t.Fatalf("resident app lost: %v", err)
	}
	if math.IsNaN(st.Observation.LastTime) || math.IsInf(st.Observation.LastTime, 0) {
		t.Fatalf("monitor frontier corrupted: %g", st.Observation.LastTime)
	}
	if math.IsNaN(st.Observation.WindowRate) || math.IsInf(st.Observation.WindowRate, 0) {
		t.Fatalf("window rate corrupted: %g", st.Observation.WindowRate)
	}
}

// FuzzBeatRequestJSON drives POST /v1/apps/{name}/beats with arbitrary
// bodies: counts, distortions, and timestamp arrays (the server-side
// spreading path and the client-timestamp path both decode from here).
func FuzzBeatRequestJSON(f *testing.F) {
	d, h := fuzzDaemon(f)
	seeds := []string{
		`{"count": 10}`,
		`{"count": 1, "distortion": 0.5}`,
		`{"count": 10000}`,
		`{"count": 10001}`,
		`{"count": -3}`,
		`{"timestamps": [1, 2, 3]}`,
		`{"timestamps": [3, 2, 1]}`,
		`{"timestamps": [1e308, 1e308]}`,
		`{"timestamps": [-1e308, 1e308]}`,
		`{"count": 3, "timestamps": [0.1, 0.2, 0.3]}`,
		`{"count": 2, "timestamps": [0.1]}`,
		`{"distortion": 1e308}`,
		`{"count": 5, "distortion": -1e-310}`,
		`{`,
		`[]`,
		`{"count": "ten"}`,
		`{"unknown_field": 1}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	var ticks int
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/apps/fz/beats", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if ticks++; ticks%64 == 0 {
			d.Tick() // periodically run the full loop over whatever state fuzzing built
		}
		checkDaemonHealthy(t, d, rec.Code)
	})
}

// FuzzEnrollRequestJSON drives POST /v1/apps (and a withdraw of
// whatever it created) on a chip-backed daemon: arbitrary names,
// modes, windows, and goal bands must never corrupt the tile ledger.
func FuzzEnrollRequestJSON(f *testing.F) {
	d, h := fuzzDaemon(f)
	seeds := []string{
		`{"name": "a", "min_rate": 10}`,
		`{"name": "a", "min_rate": 10, "max_rate": 5}`,
		`{"name": "a", "min_rate": -1}`,
		`{"name": "a", "min_rate": 1e308, "max_rate": 1e308}`,
		`{"name": "b", "workload": "ocean", "window": 2, "min_rate": 3}`,
		`{"name": "b", "workload": "nosuch", "min_rate": 3}`,
		`{"name": "c", "mode": "chip", "min_rate": 1}`,
		`{"name": "c", "mode": "advisory", "min_rate": 1}`,
		`{"name": "c", "mode": "warp", "min_rate": 1}`,
		`{"name": "", "min_rate": 1}`,
		`{"name": "x/y", "min_rate": 1}`,
		`{"name": " pad", "min_rate": 1}`,
		`{"name": "fz", "min_rate": 1}`,
		`{"name": "w", "window": 1, "min_rate": 1}`,
		`{"name": "w", "window": -5, "min_rate": 1}`,
		`not json`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("POST", "/v1/apps", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code == http.StatusCreated {
			// Withdraw by the name the daemon actually enrolled (echoed in
			// the response) so the fleet cannot grow without bound.
			var st AppStatus
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err == nil && st.Name != "" && st.Name != "fz" {
				_ = d.Withdraw(st.Name)
			}
		}
		checkDaemonHealthy(t, d, rec.Code)
	})
}

// FuzzGoalRequestJSON drives PUT /v1/apps/fz/goal: goal churn must
// reject non-positive, inverted, and non-finite bands and never stall
// the resident app's serving state.
func FuzzGoalRequestJSON(f *testing.F) {
	d, h := fuzzDaemon(f)
	seeds := []string{
		`{"min_rate": 10, "max_rate": 20}`,
		`{"min_rate": 10}`,
		`{"min_rate": 0}`,
		`{"min_rate": -5, "max_rate": -1}`,
		`{"min_rate": 1e308, "max_rate": 1e308}`,
		`{"min_rate": 5e-324}`,
		`{"max_rate": 10}`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	var ticks int
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest("PUT", "/v1/apps/fz/goal", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if ticks++; ticks%64 == 0 {
			d.Tick()
		}
		checkDaemonHealthy(t, d, rec.Code)
	})
}

// FuzzBeatTimestampsDirect attacks the spreading math below the JSON
// layer, where NaN and Inf are reachable (JSON cannot carry them):
// arbitrary float timestamps and distortions must be rejected or
// ingested finitely — never panic, never leave a non-finite frontier.
func FuzzBeatTimestampsDirect(f *testing.F) {
	d, _ := fuzzDaemon(f)
	f.Add(1.0, 0.5, 0.25, uint8(3), 0.0)
	f.Add(0.0, 0.0, 0.0, uint8(1), 0.0)
	f.Add(math.NaN(), 1.0, 1.0, uint8(3), 0.0)
	f.Add(1.0, math.Inf(1), 1.0, uint8(3), 0.0)
	f.Add(1.0, 1.0, 1.0, uint8(2), math.NaN())
	f.Add(-1e308, 1e308, 1e308, uint8(3), 1e308)
	f.Add(5.0, -1.0, 0.0, uint8(3), 0.0) // decreasing
	f.Fuzz(func(t *testing.T, t0, d1, d2 float64, n uint8, distortion float64) {
		count := int(n%8) + 1
		ts := make([]float64, count)
		cur := t0
		for i := range ts {
			ts[i] = cur
			if i%2 == 0 {
				cur += d1
			} else {
				cur += d2
			}
		}
		_ = d.BeatTimestamps("fz", ts, distortion)
		_ = d.Beat("fz", count, distortion)
		st, err := d.Status("fz")
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(st.Observation.LastTime) || math.IsInf(st.Observation.LastTime, 0) {
			t.Fatalf("monitor frontier corrupted by ts=%v: %g", ts, st.Observation.LastTime)
		}
		if math.IsNaN(st.Observation.Distortion) || math.IsInf(st.Observation.Distortion, 0) {
			t.Fatalf("distortion corrupted: %g", st.Observation.Distortion)
		}
	})
}

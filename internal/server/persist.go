package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"angstrom/internal/angstrom"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/journal"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// This file is the daemon's durability layer: every control-plane
// mutation (enroll, withdraw, goal change, decision epoch) is written
// ahead to an internal/journal WAL, and the directory is periodically
// compacted into an atomic snapshot. Recovery is replay: the journal
// records each mutation with the daemon-clock time it executed at, and
// boot re-executes the tail through the same public entry points under
// a settable replay clock — so the restored directory, tile ledger, and
// contention state are rebuilt by the exact code paths that built them
// live, and byte-identity falls out of the daemon's tick determinism
// rather than from serializing controller internals.
//
// Two recovery contracts, by configuration:
//
//   - Journal-only (SnapshotEvery < 0): the full history replays from
//     genesis. The restored daemon is byte-identical to one that never
//     crashed — the recovery-determinism tests pin this.
//   - Snapshot + tail (the default): membership, goals, chip
//     configurations and time shares, clock, and counters restore
//     exactly (the ledger re-sums to the live value — zero faults);
//     controller learning (Kalman/RLS estimates, monitor windows) and
//     chip execution phase restore fresh and reconverge within a few
//     ticks, the same way they converged at first enrollment.
//
// The journal records a linearization of concurrent mutations; replay
// applies them in that order. Beats are data plane: they are appended
// asynchronously (group commit makes them durable within JournalFlush)
// and still accepted in degraded mode, when control mutations are
// refused with ErrDegraded.

// ErrDegraded marks a daemon whose journal has failed: serving and
// observation continue, but mutations are refused (HTTP 503) so no
// state change can outlive what the journal can no longer record.
var ErrDegraded = errors.New("journal degraded")

// Journal record operations.
const (
	opEnroll    = "enroll"
	opWithdraw  = "withdraw"
	opGoal      = "goal"
	opBeat      = "beat"
	opBeatTS    = "beat_ts"
	opTick      = "tick"
	opMigrate   = "migrate"    // move one app's partition between dies
	opChipScale = "chip_scale" // derate one die's memory bandwidth
)

// record is one journaled mutation. T is the daemon-clock time the
// mutation executed at; replay re-executes under a clock set to it.
type record struct {
	Op         string         `json:"op"`
	T          sim.Time       `json:"t"`
	Name       string         `json:"name,omitempty"`
	Enroll     *EnrollRequest `json:"enroll,omitempty"`
	MinRate    float64        `json:"min_rate,omitempty"`
	MaxRate    float64        `json:"max_rate,omitempty"`
	Count      int            `json:"count,omitempty"`
	Distortion float64        `json:"distortion,omitempty"`
	Timestamps []float64      `json:"timestamps,omitempty"`
	Evict      bool           `json:"evict,omitempty"`
	// Chip is the target die of an opMigrate / opChipScale record; Scale
	// is opChipScale's bandwidth factor.
	Chip  int     `json:"chip,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// snapImage is a snapshot's payload: the compacted prefix of the
// journal. Apps are stored in enrollment order — the order the manager
// and the chip's contention pass iterate in — so restoring them
// re-enrolls the fleet exactly as it was built.
type snapImage struct {
	Seq         uint64    `json:"seq"`
	Clock       sim.Time  `json:"clock"`
	Ticks       uint64    `json:"ticks"`
	Beats       uint64    `json:"beats"`
	Decisions   uint64    `json:"decisions"`
	Evicted     uint64    `json:"evicted"`
	Migrations  uint64    `json:"migrations,omitempty"`
	// LastMigrate is when the most recent inter-die move applied (zero
	// if never): restores must resume the migration scan's settle window
	// exactly where the imaged daemon left it.
	LastMigrate sim.Time  `json:"last_migrate,omitempty"`
	OvercommitW float64   `json:"overcommit_w,omitempty"`
	// ChipScales is each die's bandwidth derating (absent when every die
	// is nominal; a shorter slice leaves the remaining dies at 1).
	ChipScales []float64 `json:"chip_scales,omitempty"`
	// LoadAvgMem/LoadAvgNoC are the per-die smoothed offered
	// utilizations the migration scan prices (absent for single-die
	// daemons); a restore resumes the EWMAs in place so post-restore
	// scans see what the imaged daemon saw.
	LoadAvgMem []float64 `json:"load_avg_mem,omitempty"`
	LoadAvgNoC []float64 `json:"load_avg_noc,omitempty"`
	Apps       []snapApp `json:"apps"`
}

type snapApp struct {
	Name       string   `json:"name"`
	Workload   string   `json:"workload"`
	Window     int      `json:"window"`
	MinRate    float64  `json:"min_rate"`
	MaxRate    float64  `json:"max_rate,omitempty"`
	// Priority is the declared water-fill weight (0 = default 1).
	Priority   float64  `json:"priority,omitempty"`
	EnrolledAt sim.Time `json:"enrolled_at"`
	// MigratedAt is when the app last moved between dies (zero if
	// never); restores must resume its migration cooldown in place.
	MigratedAt sim.Time `json:"migrated_at,omitempty"`
	// The manager's last allocation view (status continuity until the
	// first post-restore tick re-prices the fleet).
	Units      int     `json:"units"`
	Demand     float64 `json:"demand,omitempty"`
	AllocShare float64 `json:"alloc_share,omitempty"`
	GoalFit    bool    `json:"goal_fit,omitempty"`
	// Chip partition placement, nil for advisory apps. Restoring each
	// partition at its recorded configuration and time share re-sums
	// the tile ledger to its pre-crash value exactly.
	Chip *snapChip `json:"chip,omitempty"`
}

type snapChip struct {
	// Chip is the die index the partition lives on (omitted for die 0,
	// so single-chip snapshots are unchanged on the wire).
	Chip    int     `json:"chip,omitempty"`
	Cores   int     `json:"cores"`
	CacheKB int     `json:"cache_kb"`
	VF      int     `json:"vf"`
	Share   float64 `json:"share"`
}

// durability is the daemon's journal state (nil without -data-dir).
type durability struct {
	fs        journal.FS
	dir       string
	w         *journal.Writer
	snapEvery time.Duration // <= 0: periodic snapshots disabled

	// replaying suppresses journaling while boot replays the tail
	// through the public mutation paths (single-goroutine phase).
	replaying bool

	degraded    atomic.Bool
	degradedErr atomic.Value // string
	restored    atomic.Bool
	snapSeq     atomic.Uint64

	// lastSnap is touched only by the tick goroutine (maybeSnapshot)
	// and Close, which runs after the loop has stopped.
	lastSnap time.Time

	// Recovery accounting for RecoveryInfo.
	restoredApps    int
	replayedRecords int
	badRecords      int
	truncatedBytes  int
	droppedSegments []string
}

func (jd *durability) reason() string {
	if s, ok := jd.degradedErr.Load().(string); ok {
		return s
	}
	return ""
}

// JournalStats is the durability slice of /v1/stats.
type JournalStats struct {
	// Records is the sequence number of the last appended record.
	Records uint64 `json:"records"`
	// SnapshotSeq is the newest durable snapshot's compaction point (0
	// before the first snapshot).
	SnapshotSeq uint64 `json:"snapshot_seq,omitempty"`
	// Degraded reports read-only journal-degraded mode; Error is the
	// failure that latched it.
	Degraded bool   `json:"degraded,omitempty"`
	Error    string `json:"error,omitempty"`
}

// RecoveryInfo summarizes what boot restored from the data directory.
type RecoveryInfo struct {
	Apps            int      // applications restored
	SnapshotSeq     uint64   // compaction point restored from (0 = genesis)
	ReplayedRecords int      // journal-tail records re-executed
	BadRecords      int      // checksum-valid records that failed to decode
	TruncatedBytes  int      // torn-tail bytes repaired away
	DroppedSegments []string // segments beyond a mid-chain corruption
}

// RecoveryInfo reports the last boot's restore summary (zero without a
// data directory).
func (d *Daemon) RecoveryInfo() RecoveryInfo {
	if d.jd == nil {
		return RecoveryInfo{}
	}
	return RecoveryInfo{
		Apps:            d.jd.restoredApps,
		SnapshotSeq:     d.jd.snapSeq.Load(),
		ReplayedRecords: d.jd.replayedRecords,
		BadRecords:      d.jd.badRecords,
		TruncatedBytes:  d.jd.truncatedBytes,
		DroppedSegments: d.jd.droppedSegments,
	}
}

// Ready reports whether the daemon can accept mutations: true without a
// data directory, and with one, once the journal is restored and
// healthy. /readyz gates on it.
func (d *Daemon) Ready() (bool, string) {
	jd := d.jd
	if jd == nil {
		return true, ""
	}
	if !jd.restored.Load() {
		return false, "restoring from journal"
	}
	if jd.degraded.Load() {
		return false, "journal degraded: " + jd.reason()
	}
	return true, ""
}

// Degraded reports read-only journal-degraded mode.
func (d *Daemon) Degraded() bool { return d.jd != nil && d.jd.degraded.Load() }

// degrade latches the daemon into journal-degraded mode (first failure
// wins). Reached from failed commits and from the journal's background
// flusher via Options.OnError.
func (d *Daemon) degrade(err error) {
	jd := d.jd
	if jd == nil || jd.replaying {
		return
	}
	if jd.degraded.CompareAndSwap(false, true) {
		jd.degradedErr.Store(err.Error())
	}
}

// journalCommit writes rec ahead of the mutation it describes and
// blocks until it is durable (group commit amortizes concurrent
// callers). The caller must not have mutated state yet: on failure the
// daemon degrades and the mutation is refused, so the journal never
// trails the directory.
func (d *Daemon) journalCommit(rec record) error {
	jd := d.jd
	if jd == nil || jd.replaying || jd.w == nil {
		return nil
	}
	if jd.degraded.Load() {
		return fmt.Errorf("server: %w: %s", ErrDegraded, jd.reason())
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("server: encode journal record: %w", err)
	}
	if _, err := jd.w.Commit(payload); err != nil {
		d.degrade(err)
		return fmt.Errorf("server: %w: %v", ErrDegraded, err)
	}
	return nil
}

// journalAppend buffers rec without waiting for durability — the
// data-plane path (beats, tick records): no fsync, no I/O, durable
// within JournalFlush. Failures latch through the writer's OnError;
// in degraded mode the record is dropped and serving continues.
func (d *Daemon) journalAppend(rec record) {
	jd := d.jd
	if jd == nil || jd.replaying || jd.w == nil || jd.degraded.Load() {
		return
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_, _ = jd.w.Append(payload)
}

// openJournal recovers cfg.DataDir and replays it into the daemon, then
// opens the writer the serving phase appends to. Called once from
// NewDaemon, before the daemon is visible to any other goroutine.
func (d *Daemon) openJournal() error {
	jfs := d.cfg.FS
	if jfs == nil {
		jfs = journal.OS()
	}
	st, err := journal.Recover(jfs, d.cfg.DataDir)
	if err != nil {
		return err
	}
	snapEvery := d.cfg.SnapshotEvery
	if snapEvery == 0 {
		snapEvery = 30 * time.Second
	}
	jd := &durability{fs: jfs, dir: d.cfg.DataDir, snapEvery: snapEvery, lastSnap: time.Now()}
	jd.snapSeq.Store(st.SnapshotSeq)
	jd.truncatedBytes = st.TruncatedBytes
	jd.droppedSegments = st.DroppedSegments
	d.jd = jd
	if err = d.restore(st); err != nil {
		return err
	}
	flush := d.cfg.JournalFlush
	if flush == 0 {
		flush = 100 * time.Millisecond
	}
	if flush < 0 {
		flush = 0 // tests flush explicitly
	}
	jd.w, err = journal.NewWriter(jfs, d.cfg.DataDir, st.NextSeq, journal.Options{
		FlushEvery: flush,
		OnError:    d.degrade,
		BeforeSync: d.cfg.journalBeforeSync,
	})
	if err != nil {
		return err
	}
	jd.restored.Store(true)
	return nil
}

// restore rebuilds the daemon from a recovered journal state: install
// the snapshot image (if any), then re-execute the record tail through
// the public mutation paths under a settable replay clock. When replay
// finishes, the serving clock is swapped in at the recovered timeline's
// frontier so time continues instead of rewinding.
//
// restore is the root of the replay scope: everything it reaches must
// be deterministic and every mutation it applies is covered by the
// recovered journal, so it is both a deterministic scope and the
// journaling writer the mutators below it answer to.
//
//angstrom:deterministic
//angstrom:journaled writer
func (d *Daemon) restore(st *journal.State) error {
	jd := d.jd
	if st.Snapshot == nil && len(st.Records) == 0 {
		return nil // genesis: nothing to replay, keep the boot clock
	}
	clk := NewAtomicClock(0)
	d.swClock.swap(clk)
	jd.replaying = true
	defer func() { jd.replaying = false }()

	var last sim.Time
	if st.Snapshot != nil {
		var img snapImage
		if err := json.Unmarshal(st.Snapshot, &img); err != nil {
			return fmt.Errorf("server: decode snapshot %d: %w", st.SnapshotSeq, err)
		}
		clk.Set(img.Clock)
		last = img.Clock
		d.ticks.Store(img.Ticks)
		d.beats.Store(img.Beats)
		d.decisions.Store(img.Decisions)
		d.evicted.Store(img.Evicted)
		d.migrations.Store(img.Migrations)
		d.lastMigrate = img.LastMigrate
		d.powerOvercommit.Store(math.Float64bits(img.OvercommitW))
		// Re-derate before re-binding: restored partitions must see the
		// same effective bandwidth their contention was priced at.
		for i, s := range img.ChipScales {
			if d.fleet != nil && i < d.fleet.Chips() && s > 0 {
				if err := d.fleet.Chip(i).SetMemBandwidthScale(s); err != nil {
					return fmt.Errorf("server: restore chip %d scale: %w", i, err)
				}
			}
		}
		for i, v := range img.LoadAvgMem {
			if i < len(d.loadAvgMem) {
				d.loadAvgMem[i] = v
			}
		}
		for i, v := range img.LoadAvgNoC {
			if i < len(d.loadAvgNoC) {
				d.loadAvgNoC[i] = v
			}
		}
		for _, sa := range img.Apps {
			if err := d.restoreApp(sa); err != nil {
				return fmt.Errorf("server: restore %q: %w", sa.Name, err)
			}
		}
	}
	for _, payload := range st.Records {
		var rec record
		if err := json.Unmarshal(payload, &rec); err != nil {
			jd.badRecords++
			continue
		}
		if rec.T > last {
			last = rec.T
		}
		clk.Set(rec.T)
		d.replayRecord(rec)
	}
	jd.restoredApps = d.dir.len()
	jd.replayedRecords = len(st.Records)

	// Hand the clock over to the serving phase at the replay frontier.
	if d.cfg.Accel > 0 {
		d.simClock = NewAtomicClock(last)
		d.swClock.swap(d.simClock)
	} else {
		d.swClock.swap(NewWallClockAt(last))
	}
	return nil
}

// replayRecord re-executes one journaled mutation. Errors are
// deliberately discarded: a mutation that failed live (duplicate
// enroll, exhausted pool) was journaled ahead of its apply and fails
// identically here, which is exactly the history being reproduced.
//
//angstrom:deterministic
//angstrom:journaled writer
func (d *Daemon) replayRecord(rec record) {
	switch rec.Op {
	case opEnroll:
		if rec.Enroll != nil {
			_ = d.Enroll(*rec.Enroll)
		}
	case opWithdraw:
		_ = d.withdraw(rec.Name, rec.Evict)
	case opGoal:
		_ = d.SetGoal(rec.Name, rec.MinRate, rec.MaxRate)
	case opBeat:
		_ = d.Beat(rec.Name, rec.Count, rec.Distortion)
	case opBeatTS:
		_ = d.BeatTimestamps(rec.Name, rec.Timestamps, rec.Distortion)
	case opTick:
		d.tickAt(rec.T)
	case opMigrate:
		_ = d.applyMigration(rec.Name, rec.Chip, rec.T)
	case opChipScale:
		_ = d.applyChipScale(rec.Chip, rec.Scale)
	default:
		d.jd.badRecords++
	}
}

// restoreApp rebuilds one application from a snapshot entry: same
// monitor, same goal, and — for chip apps — the partition re-acquired
// at its recorded configuration and time share, so the ledger re-sums
// to its pre-crash value. Controller learning restores fresh. Runs
// single-goroutine during NewDaemon.
//
//angstrom:deterministic
//angstrom:journaled writer
func (d *Daemon) restoreApp(sa snapApp) error {
	spec, err := workload.ByName(sa.Workload)
	if err != nil {
		return err
	}
	if sa.Window < 2 {
		return fmt.Errorf("server: snapshot window %d too small", sa.Window)
	}
	if err := validGoal(sa.MinRate, sa.MaxRate); err != nil {
		return err
	}
	if err := validPriority(sa.Priority); err != nil {
		return err
	}
	mon := heartbeat.New(d.clock, heartbeat.WithWindow(sa.Window))
	mon.SetPerformanceGoal(sa.MinRate, sa.MaxRate)
	a := &app{name: sa.Name, spec: spec, mon: mon, window: sa.Window, enrolledAt: sa.EnrolledAt, migratedAt: sa.MigratedAt, prio: sa.Priority}
	units := sa.Units
	if units < 1 {
		units = 1
	}
	a.units.Store(int64(units))
	a.alloc = core.Allocation{App: sa.Name, Units: units, Demand: sa.Demand, Share: sa.AllocShare, GoalMet: sa.GoalFit}
	if a.alloc.Share <= 0 {
		a.alloc.Share = 1
	}
	if sa.Chip != nil {
		if d.fleet == nil {
			return fmt.Errorf("server: snapshot has chip app %q but the daemon runs without -chip", sa.Name)
		}
		if sa.Chip.Chip < 0 || sa.Chip.Chip >= d.fleet.Chips() {
			return fmt.Errorf("server: snapshot places %q on chip %d of %d", sa.Name, sa.Chip.Chip, d.fleet.Chips())
		}
		a.chip = sa.Chip.Chip
		cfg := angstrom.Config{Cores: sa.Chip.Cores, CacheKB: sa.Chip.CacheKB, VF: sa.Chip.VF}
		if err := d.bindChipAt(a, spec, cfg, sa.Chip.Share, d.clock.Now()); err != nil {
			return err
		}
	} else {
		space, err := buildSpace(spec)
		if err != nil {
			return err
		}
		if a.rt, err = core.New(sa.Name, d.clock, mon, space, core.Options{}); err != nil {
			return err
		}
	}
	scaling := spec.CachedSpeedup(d.cfg.Cores)
	shape := curveShapeFor(spec, d.cfg.Cores, scaling)
	mgr := d.mgrs[a.chip]
	if err := mgr.AddAppWithShape(sa.Name, mon, scaling, shape.peak, shape.unimodal); err != nil {
		d.unbindChip(a)
		return err
	}
	if sa.Priority > 0 {
		if err := mgr.SetPriority(sa.Name, sa.Priority); err != nil {
			mgr.RemoveApp(sa.Name)
			d.unbindChip(a)
			return err
		}
	}
	a.mgrID, _ = mgr.AppID(sa.Name)
	a.alloc.ID = a.mgrID
	if err := d.reg.Enroll(sa.Name, mon); err != nil {
		mgr.RemoveApp(sa.Name)
		d.unbindChip(a)
		return err
	}
	d.appSeq++
	a.seq = d.appSeq
	if !d.dir.insert(sa.Name, a) {
		d.reg.Withdraw(sa.Name)
		mgr.RemoveApp(sa.Name)
		d.unbindChip(a)
		return fmt.Errorf("server: %q %w", sa.Name, ErrDuplicate)
	}
	if a.partition() != nil {
		d.chipCount.Add(1)
	}
	return nil
}

// buildImage captures the compacted prefix the snapshot at sequence seq
// stands for. Called with d.mu held, so no control-plane mutation can
// straddle the rotation boundary.
func (d *Daemon) buildImage(seq uint64) snapImage {
	img := snapImage{
		Seq:         seq,
		Clock:       d.clock.Now(),
		Ticks:       d.ticks.Load(),
		Beats:       d.beats.Load(),
		Decisions:   d.decisions.Load(),
		Evicted:     d.evicted.Load(),
		Migrations:  d.migrations.Load(),
		LastMigrate: d.lastMigrate,
		OvercommitW: math.Float64frombits(d.powerOvercommit.Load()),
	}
	if d.fleet != nil {
		derated := false
		scales := make([]float64, d.fleet.Chips())
		for i := range scales {
			scales[i] = d.fleet.Chip(i).MemBandwidthScale()
			if scales[i] != 1 {
				derated = true
			}
		}
		if derated {
			img.ChipScales = scales
		}
		if d.loadAvgMem != nil {
			img.LoadAvgMem = append([]float64(nil), d.loadAvgMem...)
			img.LoadAvgNoC = append([]float64(nil), d.loadAvgNoC...)
		}
	}
	apps := d.dir.snapshot(make([]*app, 0, d.dir.len()))
	sort.Slice(apps, func(i, j int) bool { return apps[i].seq < apps[j].seq })
	img.Apps = make([]snapApp, 0, len(apps))
	for _, a := range apps {
		sa := snapApp{Name: a.name, Workload: a.spec.Name, Window: a.window, Priority: a.prio}
		if g := a.mon.Goals().Performance; g != nil {
			sa.MinRate, sa.MaxRate = g.MinRate, g.MaxRate
		}
		a.mu.Lock()
		sa.EnrolledAt = a.enrolledAt
		sa.MigratedAt = a.migratedAt
		sa.Units = a.alloc.Units
		sa.Demand = a.alloc.Demand
		sa.AllocShare = a.alloc.Share
		sa.GoalFit = a.alloc.GoalMet
		a.mu.Unlock()
		if part := a.partition(); part != nil {
			cfg := part.Config()
			sa.Chip = &snapChip{Chip: a.chip, Cores: cfg.Cores, CacheKB: cfg.CacheKB, VF: cfg.VF, Share: part.Share()}
		}
		img.Apps = append(img.Apps, sa)
	}
	return img
}

// Snapshot rotates the journal and atomically installs a snapshot at
// the rotation boundary, then prunes the segments and snapshots it
// supersedes. The rotation and the image capture happen under d.mu, so
// no mutation can land in both the image and the replay tail.
func (d *Daemon) Snapshot() error {
	jd := d.jd
	if jd == nil || jd.w == nil {
		return errors.New("server: no data directory configured")
	}
	if jd.degraded.Load() {
		return fmt.Errorf("server: %w: %s", ErrDegraded, jd.reason())
	}
	d.mu.Lock()
	seq, err := jd.w.Rotate()
	if err != nil {
		d.mu.Unlock()
		d.degrade(err)
		return fmt.Errorf("server: %w: %v", ErrDegraded, err)
	}
	img := d.buildImage(seq)
	d.mu.Unlock()
	payload, err := json.Marshal(img)
	if err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	if err := journal.WriteSnapshot(jd.fs, jd.dir, seq, payload); err != nil {
		d.degrade(err)
		return fmt.Errorf("server: %w: %v", ErrDegraded, err)
	}
	jd.snapSeq.Store(seq)
	journal.Prune(jd.fs, jd.dir, seq)
	return nil
}

// maybeSnapshot takes a periodic snapshot when one is due. Called from
// the tick goroutine only.
func (d *Daemon) maybeSnapshot() {
	jd := d.jd
	if jd == nil || jd.snapEvery <= 0 || jd.degraded.Load() {
		return
	}
	if time.Since(jd.lastSnap) < jd.snapEvery {
		return
	}
	if err := d.Snapshot(); err == nil {
		jd.lastSnap = time.Now()
	}
}

// Close drains the daemon for a clean exit: stop the ODA loop (the
// in-flight tick finishes), take a final snapshot (unless snapshots are
// disabled or the journal already failed), and flush and close the
// journal. The SIGTERM path runs this after the HTTP server has
// drained. Safe without a data directory (plain Stop).
func (d *Daemon) Close() error {
	d.Stop()
	jd := d.jd
	if jd == nil {
		return nil
	}
	var first error
	if jd.snapEvery > 0 && !jd.degraded.Load() {
		if err := d.Snapshot(); err != nil {
			first = err
		}
	}
	if jd.w != nil {
		if err := jd.w.Close(); err != nil && first == nil && !jd.degraded.Load() {
			first = err
		}
	}
	return first
}

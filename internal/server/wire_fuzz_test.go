package server

import (
	"bytes"
	"io"
	"testing"

	"angstrom/internal/journal"
)

// FuzzWireFrame throws arbitrary byte streams at the binary beat
// decoder: torn frames, corrupt CRCs, hostile length prefixes and
// counts, timestamp overflow, interleaved valid traffic. The decoder
// must never panic, must fail the stream fast on the first bad frame,
// and must leave the daemon healthy with its counters reconciled. The
// committed seed corpus lives in testdata/fuzz/FuzzWireFrame
// (regenerable with `go run internal/server/testdata/gen_wire_corpus.go`);
// CI replays it on every `go test` pass, `go test -fuzz=FuzzWireFrame`
// explores from it.
func FuzzWireFrame(f *testing.F) {
	d, _ := fuzzDaemon(f)
	// Inline structural seeds; the committed corpus carries the richer
	// protocol streams (valid hello+beats+flush sessions and their
	// corruptions).
	f.Add([]byte{})
	f.Add([]byte{0x03, 0x00, 0x00})                        // torn header
	f.Add(journal.AppendFrame(nil, []byte{wireOpFlush}))   // lone flush
	f.Add(journal.AppendFrame(nil, []byte{wireOpHello}))   // short hello
	f.Add(journal.AppendFrame(nil, nil))                   // empty payload
	f.Add(journal.AppendFrame(nil, []byte{0x7f, 1, 2, 3})) // unknown opcode

	var iters int
	f.Fuzz(func(t *testing.T, stream []byte) {
		wc := newWireConn(d, bytes.NewReader(stream), io.Discard)
		err := wc.run()
		if err == nil {
			t.Fatal("run() returned nil; a finite stream must end in io.EOF or a rejection")
		}
		wc.flushCounters()
		// With every delta flushed and no concurrent writers, the
		// sharded counters must reconcile with the fleet total exactly.
		var shardSum uint64
		for _, n := range d.ShardBeats() {
			shardSum += n
		}
		if st := d.Stats(); st.Beats != shardSum {
			t.Fatalf("counters diverged: Stats.Beats=%d sum(ShardBeats)=%d", st.Beats, shardSum)
		}
		if iters++; iters%64 == 0 {
			d.Tick()
		}
		checkDaemonHealthy(t, d, 200)
	})
}

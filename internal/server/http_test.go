package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func testServer(t *testing.T) (*Daemon, *httptest.Server) {
	t.Helper()
	d, err := NewDaemon(Config{Cores: 64, Accel: 0.5, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)
	return d, ts
}

func doJSON(t *testing.T, method, url string, body any, wantStatus int, out any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("%s %s: status %d (want %d): %s", method, url, resp.StatusCode, wantStatus, e.Error)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// End-to-end over the wire: enroll, beat, tick, read decision, change
// goal, withdraw.
func TestHTTPLifecycle(t *testing.T) {
	d, ts := testServer(t)

	var health map[string]string
	doJSON(t, "GET", ts.URL+"/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	var enrolled AppStatus
	doJSON(t, "POST", ts.URL+"/v1/apps",
		EnrollRequest{Name: "svc", Workload: "volrend", Window: 256, MinRate: 40, MaxRate: 60},
		http.StatusCreated, &enrolled)
	if enrolled.Name != "svc" || enrolled.Workload != "volrend" {
		t.Fatalf("enrolled = %+v", enrolled)
	}
	if enrolled.Goal.MinRate != 40 {
		t.Fatalf("goal = %+v", enrolled.Goal)
	}

	// Duplicate → 409; bad goal → 400; unknown app → 404.
	doJSON(t, "POST", ts.URL+"/v1/apps",
		EnrollRequest{Name: "svc", MinRate: 40}, http.StatusConflict, nil)
	doJSON(t, "POST", ts.URL+"/v1/apps",
		EnrollRequest{Name: "bad", MinRate: -1}, http.StatusBadRequest, nil)
	doJSON(t, "GET", ts.URL+"/v1/apps/nosuch", nil, http.StatusNotFound, nil)
	doJSON(t, "POST", ts.URL+"/v1/apps/nosuch/beats", BeatRequest{Count: 1}, http.StatusNotFound, nil)

	// Beats (batched) then a manual tick → a decision appears.
	for i := 0; i < 10; i++ {
		doJSON(t, "POST", ts.URL+"/v1/apps/svc/beats", BeatRequest{Count: 25}, http.StatusAccepted, nil)
		d.Tick()
	}
	var st AppStatus
	doJSON(t, "GET", ts.URL+"/v1/apps/svc", nil, http.StatusOK, &st)
	if st.Observation.Beats != 250 {
		t.Fatalf("beats = %d, want 250", st.Observation.Beats)
	}
	if st.Decision == nil {
		t.Fatal("no decision over the wire")
	}
	if len(st.Decision.HiConfig) == 0 {
		t.Fatal("decision carries no actuator labels")
	}
	if st.Cores.Units < 1 {
		t.Fatalf("allocation %d", st.Cores.Units)
	}

	// Goal update is visible in the next status.
	doJSON(t, "PUT", ts.URL+"/v1/apps/svc/goal", GoalRequest{MinRate: 80, MaxRate: 120}, http.StatusNoContent, nil)
	doJSON(t, "GET", ts.URL+"/v1/apps/svc", nil, http.StatusOK, &st)
	if st.Goal.MinRate != 80 || st.Goal.MaxRate != 120 {
		t.Fatalf("goal after PUT = %+v", st.Goal)
	}
	doJSON(t, "PUT", ts.URL+"/v1/apps/svc/goal", GoalRequest{MinRate: 10, MaxRate: 5}, http.StatusBadRequest, nil)

	// List + stats.
	var list []AppStatus
	doJSON(t, "GET", ts.URL+"/v1/apps", nil, http.StatusOK, &list)
	if len(list) != 1 || list[0].Name != "svc" {
		t.Fatalf("list = %+v", list)
	}
	var stats StatsResponse
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.Apps != 1 || stats.Beats != 250 || !stats.Accelerated {
		t.Fatalf("stats = %+v", stats)
	}

	doJSON(t, "DELETE", ts.URL+"/v1/apps/svc", nil, http.StatusNoContent, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/apps/svc", nil, http.StatusNotFound, nil)
	doJSON(t, "GET", ts.URL+"/v1/apps/svc", nil, http.StatusNotFound, nil)
}

// Malformed JSON and unknown fields are rejected, not silently dropped.
func TestHTTPRejectsBadJSON(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/apps", "application/json",
		bytes.NewBufferString(`{"name": "x", "min_rate": 10, "bogus": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/apps", "application/json",
		bytes.NewBufferString(`{not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

// Pool exhaustion surfaces as 429 so load generators can back off.
func TestHTTPPoolExhaustion(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 2, Accel: 1, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()
	for i := 0; i < 2; i++ {
		doJSON(t, "POST", ts.URL+"/v1/apps",
			EnrollRequest{Name: fmt.Sprintf("a%d", i), MinRate: 10}, http.StatusCreated, nil)
	}
	doJSON(t, "POST", ts.URL+"/v1/apps",
		EnrollRequest{Name: "a2", MinRate: 10}, http.StatusTooManyRequests, nil)
}

// Chip endpoints over the wire: /v1/chip ledger, per-app chip views,
// and 404 on an advisory daemon.
func TestHTTPChip(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 16, Accel: 0.5, Period: time.Hour, Chip: &ChipConfig{Tiles: 16}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(d.Handler())
	t.Cleanup(ts.Close)

	lo, hi := chipGoal(t, "barnes", 4, 0.5)
	var st AppStatus
	doJSON(t, "POST", ts.URL+"/v1/apps", EnrollRequest{Name: "a", MinRate: lo, MaxRate: hi}, http.StatusCreated, &st)
	if st.Chip == nil {
		t.Fatal("no chip view in the enroll response")
	}
	for i := 0; i < 5; i++ {
		d.Tick()
	}
	var chip ChipStatusResponse
	doJSON(t, "GET", ts.URL+"/v1/chip", nil, http.StatusOK, &chip)
	if chip.Tiles != 16 || chip.Partitions != 1 || chip.CoreEquivalents < 1 {
		t.Fatalf("chip status %+v", chip)
	}
	doJSON(t, "GET", ts.URL+"/v1/apps/a", nil, http.StatusOK, &st)
	if st.Chip == nil || st.Chip.IPS <= 0 {
		t.Fatalf("chip view %+v", st.Chip)
	}
	var stats StatsResponse
	doJSON(t, "GET", ts.URL+"/v1/stats", nil, http.StatusOK, &stats)
	if stats.ChipApps != 1 {
		t.Fatalf("stats %+v, want 1 chip app", stats)
	}

	_, plain := testServer(t)
	doJSON(t, "GET", plain.URL+"/v1/chip", nil, http.StatusNotFound, nil)
}

// Per-beat timestamps over the wire, including the count/timestamps
// consistency check.
func TestHTTPBeatTimestamps(t *testing.T) {
	d, ts := testServer(t)
	var st AppStatus
	doJSON(t, "POST", ts.URL+"/v1/apps", EnrollRequest{Name: "a", Window: 4, MinRate: 1}, http.StatusCreated, &st)
	d.Tick()
	doJSON(t, "POST", ts.URL+"/v1/apps/a/beats",
		BeatRequest{Timestamps: []float64{0, 0.25, 0.5, 0.75}}, http.StatusAccepted, nil)
	doJSON(t, "GET", ts.URL+"/v1/apps/a", nil, http.StatusOK, &st)
	if got := st.Observation.WindowRate; got < 3.99 || got > 4.01 {
		t.Fatalf("window rate %g, want 4", got)
	}
	doJSON(t, "POST", ts.URL+"/v1/apps/a/beats",
		BeatRequest{Count: 3, Timestamps: []float64{1, 2}}, http.StatusBadRequest, nil)
	doJSON(t, "POST", ts.URL+"/v1/apps/a/beats",
		BeatRequest{Timestamps: []float64{2, 1}}, http.StatusBadRequest, nil)
}

package server

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"angstrom/internal/journal"
)

// Satellite regression: goal thrash at fleet scale. 1k advisory apps on
// a journaled sharded daemon while flipper goroutines hammer SetGoal
// and beaters keep the monitors hot, concurrent with manual ticks —
// all under -race via make test. The gates:
//
//  1. zero ledger faults (the chaos never corrupts accounting),
//  2. the journal linearizes the storm: a daemon restored from the
//     post-storm image agrees with the live daemon on membership and
//     final goals,
//  3. recovery is deterministic: two independent restores from the same
//     image produce byte-identical transcripts.
//
// Live-vs-restored transcript identity is deliberately NOT asserted:
// with SetGoal racing Tick, the journal's linearization and the actual
// interleaving may legitimately order a flip on opposite sides of a
// decision, so controller state diverges. Final goals and determinism
// of the replayed history are the invariants.
func TestGoalThrashRaceAtScale(t *testing.T) {
	const (
		apps     = 1000 // advisory fleet
		chipApps = 16   // chip-backed apps exercising the tile ledger
		flippers = 8
		flips    = 150
		beaters  = 8
		ticks    = 20
	)
	base := Config{
		Cores: 64, Period: time.Hour, Accel: 0.5,
		Oversubscribe: true, Shards: 8, TickWorkers: 4,
		Chip: &ChipConfig{Tiles: 16},
	}
	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(base, fs))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{
			Name: fmt.Sprintf("thrash-%04d", i), Mode: ModeAdvisory,
			Window: 16, MinRate: 10, MaxRate: 40,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < chipApps; i++ {
		if err := d.Enroll(EnrollRequest{
			Name:     fmt.Sprintf("chip-%02d", i),
			Workload: []string{"barnes", "ocean", "water"}[i%3],
			Window:   16, MinRate: 2 + float64(i%4),
		}); err != nil {
			t.Fatal(err)
		}
	}
	d.Tick()

	var wg sync.WaitGroup
	for w := 0; w < flippers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each flipper owns the stripe i ≡ w (mod flippers), so the
			// final goal of every app is written by exactly one
			// goroutine (apps is a multiple of flippers).
			for f := 0; f < flips; f++ {
				i := (f*flippers + w) % apps
				min, max := 10.0, 40.0
				if f%2 == 0 {
					min, max = 20, 80
				}
				if err := d.SetGoal(fmt.Sprintf("thrash-%04d", i), min, max); err != nil {
					t.Error(err)
					return
				}
				// Thrash the chip-backed stripe too: goal flips there
				// re-plan tile placements against the ledger.
				if f%4 == 0 {
					c := (f/4*flippers + w) % chipApps
					if err := d.SetGoal(fmt.Sprintf("chip-%02d", c), 2+float64(f%3), 0); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < beaters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 200; b++ {
				name := fmt.Sprintf("thrash-%04d", (w*200+b)%apps)
				if err := d.Beat(name, 5, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for k := 0; k < ticks; k++ {
		d.Tick()
		runtime.Gosched()
	}
	<-done
	d.Tick() // one quiet tick past the storm

	if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after goal thrash", f)
	}
	if err := d.jd.w.Flush(); err != nil {
		t.Fatal(err)
	}
	img := fs.Crash(0)

	live := d.List()
	if len(live) != apps+chipApps {
		t.Fatalf("live fleet %d != %d", len(live), apps+chipApps)
	}

	restore := func() *Daemon {
		t.Helper()
		cfg := journalOnly(base, img.Crash(0))
		r, err := NewDaemon(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := restore()
	r2 := restore()
	defer r1.Close()
	defer r2.Close()

	if got := r1.RecoveryInfo(); got.Apps != apps+chipApps || got.BadRecords != 0 {
		t.Fatalf("recovery info %+v, want %d apps and clean records", got, apps+chipApps)
	}

	// Gate 2: the restored daemon agrees with the live one on
	// membership and final goals.
	restored := r1.List()
	if len(restored) != len(live) {
		t.Fatalf("restored fleet %d != live %d", len(restored), len(live))
	}
	for i := range live {
		if restored[i].Name != live[i].Name || restored[i].Goal != live[i].Goal {
			t.Fatalf("app %d diverges after replay: live %s %+v, restored %s %+v",
				i, live[i].Name, live[i].Goal, restored[i].Name, restored[i].Goal)
		}
	}

	// Gate 3: double restore is byte-identical, ticking included.
	var first, second [][]AppStatus
	for k := 0; k < 3; k++ {
		r1.Tick()
		r2.Tick()
		first = append(first, r1.List())
		second = append(second, r2.List())
	}
	diffTranscripts(t, "goal-thrash double restore", first, second)
	if f := r1.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after restore", f)
	}
}

package server

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"angstrom/internal/actuator"
	"angstrom/internal/angstrom"
	"angstrom/internal/workload"
)

// knobMove is one recorded actuation at the Knob interface boundary.
type knobMove struct {
	app, knob string
	level     int
}

// recorder interposes fakes at the daemon's Actuator/Sensor boundary,
// logging every level that actually reaches the hardware knobs.
type recorder struct {
	mu    sync.Mutex
	moves []knobMove
}

func (r *recorder) wrap(app string, k actuator.Knob) actuator.Knob {
	return &recordingKnob{Knob: k, app: app, rec: r}
}

func (r *recorder) log(app, knob string, level int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.moves = append(r.moves, knobMove{app: app, knob: knob, level: level})
}

func (r *recorder) snapshot() []knobMove {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]knobMove(nil), r.moves...)
}

type recordingKnob struct {
	actuator.Knob
	app string
	rec *recorder
}

func (k *recordingKnob) SetLevel(level int) error {
	err := k.Knob.SetLevel(level)
	if err == nil {
		k.rec.log(k.app, k.Knob.Name(), level)
	}
	return err
}

// chipGoal returns a reachable heart-rate band for a chip-backed app:
// a fraction of the model's rate at a mid-size configuration.
func chipGoal(t *testing.T, wl string, cores int, frac float64) (lo, hi float64) {
	t.Helper()
	spec, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	p := angstrom.DefaultParams()
	m, err := angstrom.Evaluate(p, spec, angstrom.Config{Cores: cores, CacheKB: 64, VF: 1})
	if err != nil {
		t.Fatal(err)
	}
	target := m.HeartRate * frac
	return target * 0.9, target * 1.1
}

// The chip-backed ODA loop closes end to end: the partition emits the
// heartbeats, the decision engine actuates real knobs, and the app
// converges into its goal band with no client-side beats at all.
func TestChipDaemonConvergesToGoal(t *testing.T) {
	d, err := NewDaemon(Config{
		Cores: 64, Accel: 0.5, Period: time.Hour,
		Chip: &ChipConfig{Tiles: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := chipGoal(t, "barnes", 8, 0.5)
	// The window must span several decision periods: a time-multiplexed
	// interval ends in its high slice, so a sub-period window overreads.
	if err := d.Enroll(EnrollRequest{Name: "vid", Workload: "barnes", Window: 2048, MinRate: lo, MaxRate: hi}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 80; i++ {
		d.Tick()
	}
	st, err := d.Status("vid")
	if err != nil {
		t.Fatal(err)
	}
	if st.Chip == nil {
		t.Fatal("no chip view on a chip-backed app")
	}
	if st.Decision == nil || st.DecisionErr != "" {
		t.Fatalf("decision missing or errored: %+v / %s", st.Decision, st.DecisionErr)
	}
	if st.Observation.Beats == 0 {
		t.Fatal("partition emitted no beats")
	}
	if st.Chip.Cores == 1 && st.Chip.VF == "0.4V/100MHz" {
		t.Fatalf("knobs never moved off the base configuration: %+v", st.Chip)
	}
	if !st.GoalMet {
		t.Fatalf("goal [%g, %g] not met: observed %g (chip %+v)", lo, hi, st.Observation.WindowRate, st.Chip)
	}
	if st.Chip.IPS <= 0 || st.Chip.PowerW <= 0 || st.Chip.EnergyJ <= 0 {
		t.Fatalf("sensor sample degenerate: %+v", st.Chip)
	}
	if cs, ok := d.ChipStatus(); !ok || cs.Partitions != 1 || cs.PowerW <= cs.UncoreW {
		t.Fatalf("chip status %+v", cs)
	}
}

// The interface-boundary contract under oversubscription: a fake knob
// at the Actuator/Sensor seam sees only monotone single-rung ladder
// moves, and the shared chip's core ledger never exceeds the pool even
// with 3x more apps than tiles.
func TestChipDaemonOversubscribedNeverExceedsPool(t *testing.T) {
	const tiles = 8
	const apps = 24
	rec := &recorder{}
	d, err := NewDaemon(Config{
		Cores: tiles, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Chip: &ChipConfig{Tiles: tiles, KnobWrap: rec.wrap},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := chipGoal(t, "water", 2, 0.25)
	for i := 0; i < apps; i++ {
		err := d.Enroll(EnrollRequest{
			Name: fmt.Sprintf("app-%02d", i), Workload: "water",
			Window: 64, MinRate: lo, MaxRate: hi,
		})
		if err != nil {
			t.Fatalf("enroll %d of %d on %d tiles: %v", i+1, apps, tiles, err)
		}
		if _, used := usage(d); used > tiles+1e-9 {
			t.Fatalf("ledger overdrawn during enrollment: %g > %d", used, tiles)
		}
	}
	for i := 0; i < 40; i++ {
		d.Tick()
		parts, used := usage(d)
		if parts != apps {
			t.Fatalf("tick %d: %d partitions, want %d", i, parts, apps)
		}
		if used > tiles+1e-9 {
			t.Fatalf("tick %d: core ledger %g exceeds the %d-tile pool", i, used, tiles)
		}
	}
	timeShared := 0
	for _, st := range d.List() {
		if st.Chip == nil {
			t.Fatalf("%s lost its chip binding", st.Name)
		}
		if st.Chip.TimeShare < 1 {
			timeShared++
		}
		if st.Chip.Cores > tiles {
			t.Fatalf("%s holds %d cores on a %d-tile chip", st.Name, st.Chip.Cores, tiles)
		}
	}
	if timeShared == 0 {
		t.Fatalf("%d apps on %d tiles but nobody time-shares", apps, tiles)
	}

	// Every recorded hardware move is a single rung from the knob's
	// previous position: the stepped actuation contract.
	last := make(map[string]int)
	for _, m := range rec.snapshot() {
		key := m.app + "/" + m.knob
		if prev, ok := last[key]; ok {
			if delta := m.level - prev; delta < -1 || delta > 1 {
				t.Fatalf("%s jumped %d rungs (%d -> %d)", key, delta, prev, m.level)
			}
		} else if m.level > 1 {
			t.Fatalf("%s first move to rung %d skipped the ladder", key, m.level)
		}
		last[key] = m.level
	}
	if len(last) == 0 {
		t.Fatal("recorder saw no hardware moves")
	}
}

func usage(d *Daemon) (int, float64) {
	parts, used := d.fleet.Chip(0).Usage()
	return parts, used
}

// mustApp resolves an enrolled app through the sharded directory.
func mustApp(t *testing.T, d *Daemon, name string) *app {
	t.Helper()
	a, ok := d.lookup(name)
	if !ok {
		t.Fatalf("%q not enrolled", name)
	}
	return a
}

// Advisory enrollment still works on a chip daemon, and chip mode is
// refused on an advisory daemon.
func TestEnrollModes(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 16, Accel: 1, Period: time.Hour, Chip: &ChipConfig{Tiles: 16}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "adv", Mode: ModeAdvisory, MinRate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "chip", Mode: ModeChip, MinRate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "bad", Mode: "quantum", MinRate: 10}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	st, err := d.Status("adv")
	if err != nil {
		t.Fatal(err)
	}
	if st.Chip != nil {
		t.Fatal("advisory app has a chip view")
	}
	// Client beats reach advisory apps only; a chip-backed app's beat
	// stream belongs to its partition.
	if err := d.Beat("adv", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Beat("chip", 1, 0); err == nil {
		t.Fatal("client beat accepted for a chip-backed app")
	}
	if err := d.BeatTimestamps("chip", []float64{1}, 0); err == nil {
		t.Fatal("client timestamps accepted for a chip-backed app")
	}
	stats := d.Stats()
	if stats.Apps != 2 || stats.ChipApps != 1 {
		t.Fatalf("stats %+v, want 2 apps / 1 chip", stats)
	}

	plain, err := NewDaemon(Config{Cores: 16, Accel: 1, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Enroll(EnrollRequest{Name: "x", Mode: ModeChip, MinRate: 10}); err == nil {
		t.Fatal("chip mode accepted without a chip")
	}
	if _, ok := plain.ChipStatus(); ok {
		t.Fatal("chip status on an advisory daemon")
	}
}

// Withdrawing a chip-backed app frees its tiles for the next tenant.
func TestChipWithdrawFreesTiles(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 4, Accel: 1, Period: time.Hour, Chip: &ChipConfig{Tiles: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("a%d", i), MinRate: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Enroll(EnrollRequest{Name: "overflow", MinRate: 10}); err == nil {
		t.Fatal("enrolled past the tile pool without oversubscription")
	}
	if err := d.Withdraw("a0"); err != nil {
		t.Fatal(err)
	}
	if parts, _ := usage(d); parts != 3 {
		t.Fatalf("%d partitions after withdraw", parts)
	}
	if err := d.Enroll(EnrollRequest{Name: "replacement", MinRate: 10}); err != nil {
		t.Fatalf("tiles not freed: %v", err)
	}
	d.Tick() // the withdrawn app's released partition must not wedge the loop
}

// The batched-beats fix: with server-side spreading, a window smaller
// than a batch still measures the true stream rate (the pre-fix daemon
// collapsed a batch onto one timestamp, zeroing small-window rates;
// loadgen compensated with window = 20x batch).
func TestBeatSpreadingUnbiasesSmallWindows(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 8, Accel: 1, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	const batch = 10 // beats per simulated second, delivered as one batch
	if err := d.Enroll(EnrollRequest{Name: "s", Window: batch, MinRate: batch - 1, MaxRate: batch + 1}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		d.Tick() // advance the accelerated clock 1s
		if err := d.Beat("s", batch, 0); err != nil {
			t.Fatal(err)
		}
	}
	st, err := d.Status("s")
	if err != nil {
		t.Fatal(err)
	}
	got := st.Observation.WindowRate
	if math.Abs(got-batch)/batch > 0.02 {
		t.Fatalf("window(%d) rate %g, want ~%d (batch timestamp bias)", batch, got, batch)
	}
}

// Client-supplied per-beat timestamps: only the spacing matters (the
// batch is shifted onto the server clock), so skewed client epochs
// still yield exact rates.
func TestBeatTimestamps(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 8, Accel: 1, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "c", Window: 4, MinRate: 1}); err != nil {
		t.Fatal(err)
	}
	d.Tick()
	// Client clock ~1e9 seconds off the server's: 4 beats, 0.25s apart.
	ts := []float64{1e9, 1e9 + 0.25, 1e9 + 0.5, 1e9 + 0.75}
	if err := d.BeatTimestamps("c", ts, 0); err != nil {
		t.Fatal(err)
	}
	st, err := d.Status("c")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Observation.WindowRate; math.Abs(got-4) > 1e-6 {
		t.Fatalf("window rate %g from 0.25s spacing, want 4", got)
	}
	if err := d.BeatTimestamps("c", []float64{2, 1}, 0); err == nil {
		t.Fatal("decreasing timestamps accepted")
	}
	if err := d.BeatTimestamps("c", nil, 0); err == nil {
		t.Fatal("empty timestamp batch accepted")
	}
	if err := d.BeatTimestamps("nosuch", []float64{1}, 0); err == nil {
		t.Fatal("unknown app accepted")
	}
}

// A chip power budget bounds fleet power: with a scarce budget the
// daemon caps decision engines (goals are sacrificed before the budget
// is), and with a generous one the goals are unaffected.
func TestChipPowerBudget(t *testing.T) {
	run := func(budgetW float64) (met int, powerW float64) {
		d, err := NewDaemon(Config{
			Cores: 64, Accel: 0.5, Period: time.Hour,
			Chip: &ChipConfig{Tiles: 64, PowerBudgetW: budgetW},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, wl := range []string{"barnes", "ocean", "water", "volrend"} {
			lo, hi := chipGoal(t, wl, 4, 0.5)
			err := d.Enroll(EnrollRequest{
				Name: fmt.Sprintf("%s-%d", wl, i), Workload: wl,
				Window: 2048, MinRate: lo, MaxRate: hi,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 120; i++ {
			d.Tick()
		}
		for _, st := range d.List() {
			if st.GoalMet {
				met++
			}
		}
		cs, _ := d.ChipStatus()
		return met, cs.PowerW
	}
	met, power := run(20)
	if met != 4 {
		t.Fatalf("generous 20W budget: only %d/4 goals met", met)
	}
	if power > 20 {
		t.Fatalf("fleet draws %gW over the 20W budget", power)
	}
	starvedMet, starvedPower := run(0.5)
	if starvedPower > 0.5+0.2 {
		t.Fatalf("0.5W budget but fleet draws %gW", starvedPower)
	}
	if starvedMet == 4 && starvedPower >= power {
		t.Fatal("scarce budget changed nothing")
	}
}

// Cross-partition contention through the full serving stack: two
// bandwidth-heavy apps on a scarce-memory chip each sense lower IPS
// than the same app running alone, the manager provisions more units
// for the contended fleet, and both still converge into their goal
// bands (the RLS layer absorbs the model divergence).
func TestChipContentionCoLocation(t *testing.T) {
	newD := func() *Daemon {
		d, err := NewDaemon(Config{
			Cores: 256, Accel: 0.5, Period: time.Hour,
			Chip: &ChipConfig{Tiles: 256, MemBandwidthBps: 24e9},
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	lo, hi := chipGoal(t, "ocean", 16, 0.6)
	enroll := func(d *Daemon, name string) {
		t.Helper()
		if err := d.Enroll(EnrollRequest{Name: name, Workload: "ocean", Window: 2048, MinRate: lo, MaxRate: hi}); err != nil {
			t.Fatal(err)
		}
	}

	solo := newD()
	enroll(solo, "a")
	for i := 0; i < 150; i++ {
		solo.Tick()
	}
	stSolo, err := solo.Status("a")
	if err != nil {
		t.Fatal(err)
	}
	if !stSolo.GoalMet {
		t.Fatalf("solo app missed its band: rate %g vs [%g, %g] chip %+v",
			stSolo.Observation.WindowRate, lo, hi, stSolo.Chip)
	}
	if stSolo.Chip.Slowdown < 0.99 {
		t.Fatalf("solo slowdown %g, want ~1 (no co-tenant)", stSolo.Chip.Slowdown)
	}
	soloChip, _ := solo.ChipStatus()

	// Co-located, the fleet breathes around the band (the contention
	// couples the two control loops), so assert over a window rather
	// than at one instant: both apps jointly in band most of the time,
	// clearly degraded throughput, and clearly higher chip pressure.
	duo := newD()
	enroll(duo, "a")
	enroll(duo, "b")
	for i := 0; i < 300; i++ {
		duo.Tick()
	}
	inBand := 0
	var slowSum, rhoSum float64
	const tail = 100
	for i := 0; i < tail; i++ {
		duo.Tick()
		stA, _ := duo.Status("a")
		stB, _ := duo.Status("b")
		if stA.GoalMet && stB.GoalMet {
			inBand++
		}
		slowSum += (stA.Chip.Slowdown + stB.Chip.Slowdown) / 2 / tail
		cs, _ := duo.ChipStatus()
		rhoSum += cs.MemRho / tail
	}
	if inBand < tail*6/10 {
		t.Fatalf("co-located apps jointly in band only %d/%d ticks", inBand, tail)
	}
	if slowSum > 0.92 {
		t.Fatalf("mean co-located slowdown %g, want clear degradation below solo %g", slowSum, stSolo.Chip.Slowdown)
	}
	if rhoSum < soloChip.MemRho+0.08 {
		t.Fatalf("mean co-located mem rho %g not clearly above solo %g", rhoSum, soloChip.MemRho)
	}
}

// makeRoom regression at deep oversubscription: when most incumbents
// sit at the minimum share, a single proportional scale under-shrinks
// (the floored shares cannot give their proportion) and the old code
// spuriously refused the newcomer. The rescale loop must carve the full
// slot out of the above-floor mass.
func TestMakeRoomDeepOversubscription(t *testing.T) {
	const tiles = 1
	const incumbents = 51
	d, err := NewDaemon(Config{
		Cores: tiles, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Chip: &ChipConfig{Tiles: tiles},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < incumbents; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("inc-%02d", i), Workload: "water", MinRate: 1}); err != nil {
			t.Fatalf("enroll incumbent %d: %v", i, err)
		}
	}
	// Skew the fleet: 50 partitions pinned at the minimum share, one
	// holding nearly everything else (shrinks first so the grow fits).
	for i := 1; i < incumbents; i++ {
		if err := mustApp(t, d, fmt.Sprintf("inc-%02d", i)).partition().SetShare(minChipShare); err != nil {
			t.Fatal(err)
		}
	}
	if err := mustApp(t, d, "inc-00").partition().SetShare(0.49); err != nil {
		t.Fatal(err)
	}
	if _, used := usage(d); used < 0.98 {
		t.Fatalf("setup used %g, want ~0.99", used)
	}

	if err := d.Enroll(EnrollRequest{Name: "newcomer", Workload: "water", MinRate: 1}); err != nil {
		t.Fatalf("newcomer refused at deep oversubscription: %v", err)
	}
	_, used := usage(d)
	if used > tiles+1e-9 {
		t.Fatalf("ledger overcommitted: %g > %d", used, tiles)
	}
	slot := float64(tiles) / float64(incumbents+1)
	if got := mustApp(t, d, "newcomer").partition().Share(); got < slot*0.9 {
		t.Fatalf("newcomer share %g, want ~fair slot %g", got, slot)
	}
	if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults", f)
	}
}

// An unsatisfiable power budget floors every cap at the cheapest
// configuration and surfaces the overdraft in stats instead of
// pretending the budget holds; a generous budget reports zero
// overcommit and keeps the summed caps inside it.
func TestPowerCapOvercommitSurfaced(t *testing.T) {
	run := func(budgetW float64) (*Daemon, StatsResponse) {
		d, err := NewDaemon(Config{
			Cores: 64, Accel: 0.5, Period: time.Hour,
			Chip: &ChipConfig{Tiles: 64, PowerBudgetW: budgetW},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, wl := range []string{"barnes", "ocean", "water", "volrend"} {
			lo, hi := chipGoal(t, wl, 4, 0.5)
			if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("%s-%d", wl, i), Workload: wl, Window: 2048, MinRate: lo, MaxRate: hi}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 60; i++ {
			d.Tick()
		}
		return d, d.Stats()
	}

	d, stats := run(20)
	if stats.PowerOvercommitW != 0 {
		t.Fatalf("generous 20W budget reports %gW overcommit", stats.PowerOvercommitW)
	}
	avail := 20 - d.cfg.Chip.Params.UncoreW
	sum := 0.0
	for _, a := range d.dir.snapshot(nil) {
		sum += a.lastCapX * a.nomActiveW
	}
	if sum > avail*1.05 {
		t.Fatalf("summed caps %gW exceed the available %gW", sum, avail)
	}

	_, starved := run(0.3)
	if starved.PowerOvercommitW <= 0 {
		t.Fatal("0.3W budget (below uncore + floors) reports no overcommit")
	}
}

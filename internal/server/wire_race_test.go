package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The churn race test: concurrent binary writers against a live fleet —
// enroll/withdraw churn, goal storms, and ticks on a sharded directory,
// with chip-backed apps in the mix so the tile ledger is under load too
// (meaningful under -race, which make test always applies). At the end
// every counter must reconcile exactly with per-beat ground truth:
// the delta-batched fleet total, the per-connection flush acks, and the
// per-shard counters all agree once the writers hit their barriers.
func TestWireChurnRace(t *testing.T) {
	cfg := Config{
		Cores: 256, Accel: 0.05, Period: time.Hour, Oversubscribe: true,
		Shards: 8, TickWorkers: 4,
		Chip: &ChipConfig{Tiles: 256},
	}
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const stable = 16
	for i := 0; i < stable; i++ {
		err := d.Enroll(EnrollRequest{
			Name: fmt.Sprintf("st-%02d", i), Mode: ModeAdvisory,
			MinRate: 20, MaxRate: 60,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWireServer(d, ln)
	go ws.Serve()
	defer ws.Close()

	const writers, framesPerWriter = 4, 1200
	var (
		wireGround  atomic.Uint64 // per-beat ground truth, wire transport
		jsonGround  atomic.Uint64 // ground truth for the direct/JSON path
		churnGround atomic.Uint64 // beats to churned apps (direct path)
		wg          sync.WaitGroup
		stopTick    = make(chan struct{})
		stopChurn   = make(chan struct{})
	)

	// Tick loop: decide/actuate/advance racing every writer.
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		for {
			select {
			case <-stopTick:
				return
			default:
				d.Tick()
			}
		}
	}()

	// Churn loop: chip-backed enroll/beat-refusal/withdraw cycles plus
	// advisory churn apps beaten through the direct path, plus goal
	// storms on the stable fleet.
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for j := 0; ; j++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			chipName := fmt.Sprintf("hw-%04d", j)
			if err := d.Enroll(EnrollRequest{Name: chipName, MinRate: 10, MaxRate: 30}); err == nil {
				_ = d.Withdraw(chipName)
			}
			advName := fmt.Sprintf("adv-%04d", j)
			if err := d.Enroll(EnrollRequest{Name: advName, Mode: ModeAdvisory, MinRate: 10, MaxRate: 30}); err == nil {
				n := 1 + j%17
				if err := d.Beat(advName, n, 0); err == nil {
					churnGround.Add(uint64(n))
				}
				_ = d.Withdraw(advName)
			}
			_ = d.SetGoal(fmt.Sprintf("st-%02d", j%stable), 15+float64(j%40), 0)
		}
	}()

	// Wire writers: one persistent connection each, multiplexing four
	// stable apps, mixed count/timestamp batches, flush barrier every
	// 100 frames. A fifth of the stable fleet is also beaten over the
	// direct (JSON-path) entry point concurrently, so both transports
	// land on the same monitors at once.
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			wc, err := DialWire(ln.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer wc.Close()
			handles := make([]uint32, 4)
			names := make([]string, 4)
			for k := range handles {
				names[k] = fmt.Sprintf("st-%02d", (w*4+k)%stable)
				h, err := wc.Hello(names[k])
				if err != nil {
					t.Error(err)
					return
				}
				handles[k] = h
			}
			var local uint64
			ns := uint64(1 + w*1e9)
			for f := 0; f < framesPerWriter; f++ {
				k := f % 4
				n := 1 + (f*7+w)%50
				if f%3 == 0 {
					buf := make([]uint64, n)
					for j := range buf {
						ns += uint64(1_000_000 + (f+j)%5_000_000)
						buf[j] = ns
					}
					if err := wc.BeatsAt(handles[k], buf, 0); err != nil {
						t.Error(err)
						return
					}
				} else {
					if err := wc.Beats(handles[k], n, 0.25); err != nil {
						t.Error(err)
						return
					}
				}
				local += uint64(n)
				if f%10 == 5 {
					// The direct entry point is the JSON path's core:
					// both transports interleave on one app's monitor.
					if err := d.Beat(names[k], 2, 0); err != nil {
						t.Error(err)
						return
					}
					jsonGround.Add(2)
				}
				if f%100 == 99 {
					if _, err := wc.Flush(); err != nil {
						t.Error(err)
						return
					}
				}
			}
			total, err := wc.Flush()
			if err != nil {
				t.Error(err)
				return
			}
			if total != local {
				t.Errorf("writer %d: flush ack %d != per-beat ground truth %d", w, total, local)
			}
			wireGround.Add(local)
		}(w)
	}
	wg.Wait()
	close(stopChurn)
	churnWG.Wait()
	close(stopTick)
	tickWG.Wait()
	if t.Failed() {
		return
	}

	want := wireGround.Load() + jsonGround.Load() + churnGround.Load()
	if got := d.Stats().Beats; got != want {
		t.Fatalf("fleet beat total %d != ground truth %d (wire %d + json %d + churn %d)",
			got, want, wireGround.Load(), jsonGround.Load(), churnGround.Load())
	}
	var shardSum uint64
	for _, n := range d.ShardBeats() {
		shardSum += n
	}
	if shardSum != want {
		t.Fatalf("per-shard counters %d != ground truth %d", shardSum, want)
	}
	for i, st := range d.ChipStatuses() {
		if st.LedgerFaults != 0 {
			t.Fatalf("chip %d: %d ledger faults under churn", i, st.LedgerFaults)
		}
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the daemon's HTTP/JSON API:
//
//	GET    /healthz               liveness
//	GET    /readyz                readiness (503 until restored + journal healthy)
//	GET    /v1/stats              daemon counters
//	GET    /v1/chip               single-die ledger (404 unless -chip with one die)
//	GET    /v1/chips              fleet-wide per-die ledgers (404 unless -chip)
//	GET    /v1/apps               all application statuses
//	POST   /v1/apps               enroll (EnrollRequest)
//	GET    /v1/apps/{name}        one application's status + decision
//	DELETE /v1/apps/{name}        withdraw
//	POST   /v1/apps/{name}/beats  batched heartbeats (BeatRequest)
//	PUT    /v1/apps/{name}/goal   replace the performance goal (GoalRequest)
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if ok, reason := d.Ready(); !ok {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unavailable", "reason": reason})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("GET /v1/chip", func(w http.ResponseWriter, r *http.Request) {
		// Back-compat: pre-fleet clients get exactly the old view as long
		// as exactly one die is configured. Multi-die daemons refuse it —
		// a single-chip answer would silently hide the rest of the fleet.
		st, ok := d.ChipStatus()
		if !ok {
			if d.fleet != nil {
				writeError(w, http.StatusNotFound, errors.New("server: multi-chip fleet; use /v1/chips"))
				return
			}
			writeError(w, http.StatusNotFound, errors.New("server: chip mode not enabled"))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/chips", func(w http.ResponseWriter, r *http.Request) {
		sts := d.ChipStatuses()
		if sts == nil {
			writeError(w, http.StatusNotFound, errors.New("server: chip mode not enabled"))
			return
		}
		writeJSON(w, http.StatusOK, ChipsResponse{Chips: sts, Migrations: d.Migrations()})
	})
	mux.HandleFunc("GET /v1/apps", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.List())
	})
	mux.HandleFunc("POST /v1/apps", func(w http.ResponseWriter, r *http.Request) {
		var req EnrollRequest
		if !readJSON(w, r, &req) {
			return
		}
		if err := d.Enroll(req); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		st, err := d.Status(req.Name)
		if err != nil {
			// Withdrawn between enroll and read-back; report the enroll.
			writeJSON(w, http.StatusCreated, AppStatus{Name: req.Name})
			return
		}
		writeJSON(w, http.StatusCreated, st)
	})
	mux.HandleFunc("GET /v1/apps/{name}", func(w http.ResponseWriter, r *http.Request) {
		st, err := d.Status(r.PathValue("name"))
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("DELETE /v1/apps/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := d.Withdraw(r.PathValue("name")); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /v1/apps/{name}/beats", func(w http.ResponseWriter, r *http.Request) {
		var req BeatRequest
		if !readJSON(w, r, &req) {
			return
		}
		name := r.PathValue("name")
		var err error
		if len(req.Timestamps) > 0 {
			if req.Count != 0 && req.Count != len(req.Timestamps) {
				writeError(w, http.StatusBadRequest,
					fmt.Errorf("server: count %d disagrees with %d timestamps", req.Count, len(req.Timestamps)))
				return
			}
			err = d.BeatTimestamps(name, req.Timestamps, req.Distortion)
		} else {
			if req.Count == 0 {
				req.Count = 1
			}
			err = d.Beat(name, req.Count, req.Distortion)
		}
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("PUT /v1/apps/{name}/goal", func(w http.ResponseWriter, r *http.Request) {
		var req GoalRequest
		if !readJSON(w, r, &req) {
			return
		}
		name := r.PathValue("name")
		if err := d.SetGoal(name, req.MinRate, req.MaxRate); err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

// statusFor maps the daemon's sentinel errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotEnrolled):
		return http.StatusNotFound
	case errors.Is(err, ErrDuplicate):
		return http.StatusConflict
	case errors.Is(err, ErrPoolExhausted):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

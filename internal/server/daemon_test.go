package server

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

// emulatedApp closes the loop the way a remote client would: it reads
// the daemon's latest advisory decision and beats at its base rate times
// the decided speedup.
type emulatedApp struct {
	name string
	base float64 // beats/s at the nominal rung
}

func (e *emulatedApp) beatOneTick(t *testing.T, d *Daemon, dt float64) {
	t.Helper()
	speedup := 1.0
	st, err := d.Status(e.name)
	if err != nil {
		t.Fatal(err)
	}
	if st.Decision != nil {
		dec := st.Decision
		speedup = dec.TargetSpeedup
		if speedup <= 0 {
			speedup = 1
		}
	}
	n := int(math.Round(e.base * speedup * dt))
	if n < 1 {
		n = 1
	}
	if err := d.Beat(e.name, n, 0); err != nil {
		t.Fatal(err)
	}
}

func newAcceleratedDaemon(t *testing.T, cores int) *Daemon {
	t.Helper()
	d, err := NewDaemon(Config{Cores: cores, Accel: 1.0, Period: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// The full ODA loop converges an emulated application onto its goal band
// using only the public daemon surface (enroll, beat, status, tick).
func TestDaemonConvergesToGoal(t *testing.T) {
	d := newAcceleratedDaemon(t, 64)
	// Window larger than one tick's beats so windowed rates span ticks
	// (in accelerated mode a batch shares one timestamp).
	if err := d.Enroll(EnrollRequest{Name: "vid", Workload: "barnes", Window: 2048, MinRate: 240, MaxRate: 260}); err != nil {
		t.Fatal(err)
	}
	app := &emulatedApp{name: "vid", base: 100}
	for i := 0; i < 40; i++ {
		app.beatOneTick(t, d, 1.0)
		d.Tick()
	}
	st, err := d.Status("vid")
	if err != nil {
		t.Fatal(err)
	}
	if st.Decision == nil {
		t.Fatal("no decision after 40 ticks")
	}
	if st.DecisionErr != "" {
		t.Fatalf("decision error: %s", st.DecisionErr)
	}
	if st.Decision.Observed < 200 || st.Decision.Observed > 300 {
		t.Fatalf("observed rate %g nowhere near goal 250", st.Decision.Observed)
	}
	if st.Decision.TargetSpeedup <= 1 {
		t.Fatalf("target speedup %g should exceed 1 for a 2.5x goal", st.Decision.TargetSpeedup)
	}
	if st.Observation.Beats == 0 {
		t.Fatal("no beats observed")
	}
}

// The manager apportions the shared pool by demand: a heavier goal gets
// more cores, allocations stay within the pool, every app keeps >= 1.
func TestDaemonArbitratesCores(t *testing.T) {
	d := newAcceleratedDaemon(t, 32)
	apps := []*emulatedApp{
		{name: "light", base: 100},
		{name: "heavy", base: 100},
	}
	if err := d.Enroll(EnrollRequest{Name: "light", Workload: "barnes", Window: 4096, MinRate: 140, MaxRate: 160}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "heavy", Workload: "barnes", Window: 4096, MinRate: 900, MaxRate: 1100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for _, a := range apps {
			a.beatOneTick(t, d, 1.0)
		}
		d.Tick()
	}
	light, err := d.Status("light")
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := d.Status("heavy")
	if err != nil {
		t.Fatal(err)
	}
	if light.Cores.Units < 1 || heavy.Cores.Units < 1 {
		t.Fatalf("allocations %d/%d below 1", light.Cores.Units, heavy.Cores.Units)
	}
	if light.Cores.Units+heavy.Cores.Units > 32 {
		t.Fatalf("allocations %d+%d exceed the 32-core pool", light.Cores.Units, heavy.Cores.Units)
	}
	if heavy.Cores.Units <= light.Cores.Units {
		t.Fatalf("heavy (goal 1000) got %d cores, light (goal 150) got %d",
			heavy.Cores.Units, light.Cores.Units)
	}
}

func TestEnrollValidation(t *testing.T) {
	d := newAcceleratedDaemon(t, 8)
	cases := []EnrollRequest{
		{Name: "", MinRate: 10},                       // empty name
		{Name: "a/b", MinRate: 10},                    // path separator
		{Name: " pad", MinRate: 10},                   // would not round-trip
		{Name: "pad\n", MinRate: 10},                  // would not round-trip
		{Name: "ok", MinRate: 0},                      // missing goal
		{Name: "ok", MinRate: 10, MaxRate: 5},         // inverted band
		{Name: "ok", MinRate: 10, Workload: "nosuch"}, // unknown workload
		{Name: "ok", MinRate: 10, Window: 1},          // window too small
	}
	for _, req := range cases {
		if err := d.Enroll(req); err == nil {
			t.Fatalf("enroll %+v accepted", req)
		}
	}
	if err := d.Enroll(EnrollRequest{Name: "ok", MinRate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "ok", MinRate: 10}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate enroll: err = %v, want ErrDuplicate", err)
	}
}

// One request cannot monopolize the daemon: the batch size is bounded.
func TestBeatBatchBounded(t *testing.T) {
	d := newAcceleratedDaemon(t, 8)
	if err := d.Enroll(EnrollRequest{Name: "a", MinRate: 10}); err != nil {
		t.Fatal(err)
	}
	if err := d.Beat("a", MaxBeatBatch+1, 0); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if err := d.Beat("a", 0, 0); err == nil {
		t.Fatal("zero batch accepted")
	}
	if err := d.Beat("a", MaxBeatBatch, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Beat("nosuch", 1, 0); !errors.Is(err, ErrNotEnrolled) {
		t.Fatalf("unknown app: err = %v, want ErrNotEnrolled", err)
	}
}

// Withdrawing frees both the registry entry and the manager share.
func TestWithdrawFreesPool(t *testing.T) {
	d := newAcceleratedDaemon(t, 4)
	for i := 0; i < 4; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("a%d", i), MinRate: 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Enroll(EnrollRequest{Name: "overflow", MinRate: 10}); err == nil {
		t.Fatal("enrolled past the core pool")
	}
	if err := d.Withdraw("a0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Registry().Lookup("a0"); ok {
		t.Fatal("registry still lists withdrawn app")
	}
	if err := d.Enroll(EnrollRequest{Name: "replacement", MinRate: 10}); err != nil {
		t.Fatalf("pool not freed by withdraw: %v", err)
	}
	if err := d.Withdraw("a0"); err == nil {
		t.Fatal("double withdraw succeeded")
	}
	if err := d.Beat("a0", 1, 0); err == nil {
		t.Fatal("beat accepted for withdrawn app")
	}
}

// The serving surface must be race-clean: the ticking loop runs on a
// fast period while goroutines enroll, beat, read, change goals, and
// withdraw. Run under -race (make test does).
func TestDaemonConcurrentServing(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 256, Period: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	const workers = 16
	const beatsEach = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("app-%d", w)
			if err := d.Enroll(EnrollRequest{Name: name, MinRate: 50, MaxRate: 70}); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < beatsEach; i++ {
				if err := d.Beat(name, 1, 0); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					if _, err := d.Status(name); err != nil {
						t.Error(err)
						return
					}
				}
				if i == beatsEach/2 {
					if err := d.SetGoal(name, 80, 100); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if w%4 == 0 {
				if err := d.Withdraw(name); err != nil {
					t.Error(err)
				}
			}
		}(w)
	}
	readers := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-readers:
					return
				default:
					d.List()
					d.Stats()
				}
			}
		}()
	}
	wg.Wait()
	close(readers)
	rwg.Wait()

	stats := d.Stats()
	if want := uint64(workers * beatsEach); stats.Beats != want {
		t.Fatalf("beats = %d, want %d", stats.Beats, want)
	}
	if stats.Apps != workers-workers/4 {
		t.Fatalf("apps = %d, want %d", stats.Apps, workers-workers/4)
	}
	// The loop must tick alongside the serving surface. The worker storm
	// can finish inside the very first 1ms period on a fast machine, so
	// wait out a bounded grace window instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for d.Stats().Ticks == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ticks := d.Stats().Ticks; ticks == 0 {
		t.Fatal("ODA loop never ticked within 5s")
	}
}

// AtomicClock keeps monotone time under concurrent readers.
func TestAtomicClock(t *testing.T) {
	c := NewAtomicClock(1.5)
	if c.Now() != 1.5 {
		t.Fatalf("start = %g", c.Now())
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				now := c.Now()
				if now < last {
					t.Error("clock went backwards")
					return
				}
				last = now
			}
		}()
	}
	for i := 0; i < 1000; i++ {
		c.Advance(0.001)
	}
	close(stop)
	wg.Wait()
	if got := c.Now(); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("end = %g, want 2.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	c.Advance(-1)
}

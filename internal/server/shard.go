package server

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sharded application directory. One daemon mutex in front of a
// single map bounds fleet size long before the ingestion path does:
// every beat, status read, and tick snapshot serializes on it. The
// directory instead hashes application names across N shards. Reads
// (the beat hot path, status lookups, tick snapshots) are lock-free:
// each shard publishes an immutable map (name lookup) and an immutable
// slice (iteration) through atomic pointers, and writers
// (enroll/withdraw — rare next to beats) copy-on-write under the
// shard's mutex. The tick fans its per-application phases across a
// worker pool one shard at a time, so decide-phase work scales with
// cores instead of running single-threaded, and its snapshot phase is
// a slice-header load per shard rather than a map walk.

// dirShard is one slice of the directory. The mutex serializes writers
// only; readers go straight through the atomic pointers.
type dirShard struct {
	mu   sync.Mutex
	apps atomic.Pointer[map[string]*app]
	list atomic.Pointer[[]*app]
	// ingested counts client-ingested beats (JSON and binary wire alike)
	// for apps homed on this shard. Sharding the hot beat total is the
	// other half of the delta-then-atomic-add pattern: distinct apps
	// hash to distinct shards, so parallel writers add to distinct cache
	// lines. The churn race test reconciles sum(shards) against per-beat
	// ground truth.
	ingested atomic.Uint64
	// Pad the struct to a full 64-byte cache line (8 mutex + 16
	// pointers + 8 counter + 32) so write-heavy churn on one shard does
	// not false-share a line with its neighbors' read pointers.
	_ [32]byte
}

// directory is the N-way sharded application index.
type directory struct {
	shards []dirShard
	mask   uint64
	count  atomic.Int64
}

// defaultShardCount sizes the directory when the config does not:
// enough shards that tick workers (one per core) rarely idle behind a
// straggler shard and writer contention spreads, without making
// tiny-fleet snapshots scan hundreds of empty shards.
func defaultShardCount() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	if n > 128 {
		n = 128
	}
	return n
}

// newDirectory builds a directory with n shards (rounded up to a power
// of two so the hash can mask instead of mod).
func newDirectory(n int) *directory {
	size := 1
	for size < n {
		size <<= 1
	}
	d := &directory{shards: make([]dirShard, size), mask: uint64(size - 1)}
	for i := range d.shards {
		empty := make(map[string]*app)
		d.shards[i].apps.Store(&empty)
		d.shards[i].list.Store(new([]*app))
	}
	return d
}

// shardFor hashes a name to its shard with FNV-1a. A fixed hash (not a
// per-directory random seed) keeps shard assignment — and therefore
// tick iteration order — identical across daemons and runs: the same
// determinism discipline Sweep follows, enforced by the replay tests.
//
//angstrom:hotpath
func (d *directory) shardFor(name string) *dirShard {
	return &d.shards[d.shardIndex(name)]
}

// shardIndex is shardFor returning the index instead of the shard:
// insert stamps it into the app so the ingestion path can bump the
// shard's beat counter without rehashing the name per batch.
//
//angstrom:hotpath
func (d *directory) shardIndex(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h & d.mask
}

// get is the lock-free read path: one hash, one atomic load, one map
// lookup. Beat ingestion rides entirely on it.
//
//angstrom:hotpath
func (d *directory) get(name string) (*app, bool) {
	a, ok := (*d.shardFor(name).apps.Load())[name]
	return a, ok
}

// insert adds an application, reporting false on a duplicate name.
// Directory membership is journaled state: only persist.go writers
// (enroll live or replayed) may call it.
//
//angstrom:journaled mutator
func (d *directory) insert(name string, a *app) bool {
	a.shard = int(d.shardIndex(name))
	s := &d.shards[a.shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.apps.Load()
	if _, dup := old[name]; dup {
		return false
	}
	next := make(map[string]*app, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = a
	oldList := *s.list.Load()
	nextList := make([]*app, len(oldList)+1)
	copy(nextList, oldList)
	nextList[len(oldList)] = a
	s.apps.Store(&next)
	s.list.Store(&nextList)
	d.count.Add(1)
	return true
}

// remove deletes an application, returning it (ok=false if absent).
// Directory membership is journaled state: only persist.go writers
// (withdraw/evict live or replayed) may call it.
//
//angstrom:journaled mutator
func (d *directory) remove(name string) (*app, bool) {
	s := d.shardFor(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.apps.Load()
	a, ok := old[name]
	if !ok {
		return nil, false
	}
	next := make(map[string]*app, len(old)-1)
	for k, v := range old {
		if k != name {
			next[k] = v
		}
	}
	oldList := *s.list.Load()
	nextList := make([]*app, 0, len(oldList)-1)
	for _, v := range oldList {
		if v != a {
			nextList = append(nextList, v)
		}
	}
	s.apps.Store(&next)
	s.list.Store(&nextList)
	d.count.Add(-1)
	return a, true
}

// len reports the enrolled-application count.
func (d *directory) len() int { return int(d.count.Load()) }

// ingestTotals appends each shard's client-ingested beat count to buf.
// The reads are independent atomic loads, so under concurrent ingestion
// the slice is a near-point-in-time view; after writers flush their
// deltas and stop, sum(ingestTotals) equals the daemon's beat total
// exactly.
func (d *directory) ingestTotals(buf []uint64) []uint64 {
	for i := range d.shards {
		buf = append(buf, d.shards[i].ingested.Load())
	}
	return buf
}

// snapshot appends every enrolled application to buf and returns it.
// The result is a point-in-time view: apps withdrawn afterwards remain
// in the slice (callers re-check identity via get before acting).
func (d *directory) snapshot(buf []*app) []*app {
	for i := range d.shards {
		buf = append(buf, *d.shards[i].list.Load()...)
	}
	return buf
}

// shardList returns shard i's published app slice. It is immutable
// (writers replace, never mutate), so callers may hold it across an
// entire tick without copying.
//
//angstrom:hotpath
func (d *directory) shardList(i int) []*app { return *d.shards[i].list.Load() }

// forEachShard runs fn(shard index) across a pool of `workers`
// goroutines, each claiming whole shards so per-shard state never needs
// cross-worker synchronization. workers <= 1 runs inline — the serial
// pass the parallel one must match byte for byte.
func (d *directory) forEachShard(workers int, fn func(shard int)) {
	n := len(d.shards)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"angstrom/internal/journal"
)

// Recovery-determinism tests: the durability contract (persist.go) says
// a journal-only daemon restored from any crash-consistent image is
// byte-identical to a daemon that applied the same durable prefix and
// never crashed. These tests drive a journaled daemon through a fixed
// mutation script on a MemFS, crash-image it at every commit boundary,
// and compare next-tick List() transcripts against fresh controls.

// fleetOp is one scripted mutation, replayable against any daemon.
type fleetOp struct {
	kind     string // "enroll", "withdraw", "goal", "beat", "beat_ts", "tick"
	req      EnrollRequest
	name     string
	min, max float64
	n        int
	dist     float64
	ts       []float64
}

func applyOp(t *testing.T, d *Daemon, op fleetOp) {
	t.Helper()
	var err error
	switch op.kind {
	case "enroll":
		err = d.Enroll(op.req)
	case "withdraw":
		err = d.Withdraw(op.name)
	case "goal":
		err = d.SetGoal(op.name, op.min, op.max)
	case "beat":
		err = d.Beat(op.name, op.n, op.dist)
	case "beat_ts":
		err = d.BeatTimestamps(op.name, op.ts, op.dist)
	case "tick":
		d.Tick()
	}
	if err != nil {
		t.Fatalf("%s %s: %v", op.kind, op.name+op.req.Name, err)
	}
}

// recoveryOps builds a deterministic enroll/beat/churn/goal/tick script
// exercising every journaled record type.
func recoveryOps(apps, ticks int) []fleetOp {
	rng := rand.New(rand.NewSource(11))
	workloads := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	name := func(i int) string { return fmt.Sprintf("rec-%03d", i) }
	var ops []fleetOp
	enrolled := make(map[string]bool)
	for i := 0; i < apps; i++ {
		goal := 10 + rng.Float64()*90
		ops = append(ops, fleetOp{kind: "enroll", req: EnrollRequest{
			Name: name(i), Workload: workloads[i%len(workloads)],
			Window: 32, MinRate: goal, MaxRate: goal * 1.3,
		}})
		enrolled[name(i)] = true
	}
	for tick := 0; tick < ticks; tick++ {
		if tick == ticks/2 {
			for i := 0; i < apps; i += 4 {
				ops = append(ops, fleetOp{kind: "withdraw", name: name(i)})
				delete(enrolled, name(i))
			}
			ops = append(ops, fleetOp{kind: "enroll", req: EnrollRequest{
				Name: name(0), Workload: "ocean", Window: 32, MinRate: 20, MaxRate: 35,
			}})
			enrolled[name(0)] = true
			for i := 1; i < apps; i += 5 {
				if enrolled[name(i)] {
					ops = append(ops, fleetOp{kind: "goal", name: name(i), min: 15 + float64(i%20)})
				}
			}
		}
		for i := 0; i < apps; i++ {
			if !enrolled[name(i)] || (tick+i)%3 == 0 {
				continue
			}
			if tick > 0 && i == 1 {
				// Timestamped batch: replay must reproduce the shift-to-now
				// placement from the recorded daemon-clock time.
				ops = append(ops, fleetOp{kind: "beat_ts", name: name(i),
					ts: []float64{0, 0.05, 0.15, 0.2}, dist: 0.1})
				continue
			}
			ops = append(ops, fleetOp{kind: "beat", name: name(i), n: 1 + (tick*5+i*11)%20})
		}
		ops = append(ops, fleetOp{kind: "tick"})
	}
	return ops
}

// journalOnly returns base configured for journal-only durability on fs:
// no snapshots (full-history replay) and no background flusher (tests
// control durability boundaries with explicit flushes).
func journalOnly(base Config, fs journal.FS) Config {
	base.DataDir = "j"
	base.FS = fs
	base.SnapshotEvery = -1
	base.JournalFlush = -1
	return base
}

// The tentpole contract: crash a journaled advisory daemon after every
// op, restore each image into a fresh daemon, and its next tick must be
// byte-identical to a control daemon that applied the same prefix live
// and never crashed.
func TestJournalReplayMatchesControl(t *testing.T) {
	base := Config{Cores: 24, Accel: 0.5, Period: time.Hour, Oversubscribe: true, Shards: 4, TickWorkers: 2}
	ops := recoveryOps(10, 6)

	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(base, fs))
	if err != nil {
		t.Fatal(err)
	}
	var images []*journal.MemFS
	for _, op := range ops {
		applyOp(t, d, op)
		if err := d.jd.w.Flush(); err != nil {
			t.Fatal(err)
		}
		images = append(images, fs.Crash(0))
	}

	for i, img := range images {
		restored, err := NewDaemon(journalOnly(base, img))
		if err != nil {
			t.Fatalf("restore after op %d (%s): %v", i, ops[i].kind, err)
		}
		control, err := NewDaemon(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops[:i+1] {
			applyOp(t, control, op)
		}
		control.Tick()
		restored.Tick()
		diffTranscripts(t, fmt.Sprintf("crash after op %d (%s)", i, ops[i].kind),
			[][]AppStatus{control.List()}, [][]AppStatus{restored.List()})
	}
}

// A torn tail — garbage after the durable prefix — is repaired away,
// and recovery lands exactly on the durable prefix.
func TestTornTailTruncated(t *testing.T) {
	base := Config{Cores: 24, Accel: 0.5, Period: time.Hour, Oversubscribe: true, Shards: 4, TickWorkers: 2}
	ops := recoveryOps(8, 4)

	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(base, fs))
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyOp(t, d, op)
	}
	if err := d.jd.w.Flush(); err != nil {
		t.Fatal(err)
	}
	img := fs.Crash(0)

	// Tear the newest segment: half a frame plus noise lands after the
	// last durable record, as a crash mid-write would leave it.
	names, err := img.ReadDir("j")
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, name := range names {
		if strings.HasSuffix(name, ".log") {
			seg = "j/" + name // journal-only: a single segment
		}
	}
	if seg == "" {
		t.Fatal("no segment file in the crash image")
	}
	f, err := img.OpenAppend(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := journal.AppendFrame(nil, []byte(`{"op":"enroll","t":99}`))
	garbage := append(torn[:len(torn)-5], 0xde, 0xad)
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	restored, err := NewDaemon(journalOnly(base, img))
	if err != nil {
		t.Fatal(err)
	}
	ri := restored.RecoveryInfo()
	if ri.TruncatedBytes != len(garbage) {
		t.Fatalf("repaired %d torn bytes, want %d", ri.TruncatedBytes, len(garbage))
	}
	control, err := NewDaemon(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyOp(t, control, op)
	}
	control.Tick()
	restored.Tick()
	diffTranscripts(t, "torn tail", [][]AppStatus{control.List()}, [][]AppStatus{restored.List()})
}

// Crash-inject a chip-backed daemon at every journal commit boundary
// (the BeforeSync hook images the filesystem as each batch becomes
// durable). Every image must restore without error, with the tile
// ledger exact — zero faults, no overcommit — and restoring the same
// image twice must be byte-identical.
func TestChipCrashAtEveryCommitBoundary(t *testing.T) {
	const tiles = 16
	base := Config{
		Cores: tiles, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Shards: 4, TickWorkers: 1,
		Chip: &ChipConfig{Tiles: tiles},
	}
	fs := journal.NewMemFS()
	cfg := journalOnly(base, fs)
	var images []*journal.MemFS
	cfg.journalBeforeSync = func([]byte) { images = append(images, fs.Crash(0)) }
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const apps = 8
	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("chip-%02d", i),
			Workload: []string{"barnes", "ocean", "water"}[i%3], Window: 32,
			MinRate: 5 + float64(i%10)}); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 0; tick < 6; tick++ {
		if tick == 3 {
			if err := d.Withdraw("chip-02"); err != nil {
				t.Fatal(err)
			}
			if err := d.Withdraw("chip-05"); err != nil {
				t.Fatal(err)
			}
		}
		d.Tick()
		if err := d.jd.w.Flush(); err != nil { // tick records cross a boundary
			t.Fatal(err)
		}
	}
	if len(images) < apps+6 {
		t.Fatalf("only %d commit boundaries imaged", len(images))
	}

	rcfg := journalOnly(base, nil)
	restoreFrom := func(img *journal.MemFS) *Daemon {
		t.Helper()
		c := rcfg
		c.FS = img.Crash(0) // private copy: restores must not share state
		r, err := NewDaemon(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for i, img := range images {
		r1 := restoreFrom(img)
		r2 := restoreFrom(img)
		var first, second [][]AppStatus
		for tick := 0; tick < 2; tick++ {
			r1.Tick()
			r2.Tick()
			first = append(first, r1.List())
			second = append(second, r2.List())
		}
		diffTranscripts(t, fmt.Sprintf("boundary %d double restore", i), first, second)
		if f := r1.fleet.Chip(0).LedgerFaults(); f != 0 {
			t.Fatalf("boundary %d: %d ledger faults after restore", i, f)
		}
		if _, used := r1.fleet.Chip(0).Usage(); used > tiles+1e-6 {
			t.Fatalf("boundary %d: ledger overcommitted: %g > %d tiles", i, used, tiles)
		}
	}
}

// The federation durability contract: crash-inject a two-die fleet at
// every journal commit boundary of a run that saturates one die and
// migrates tenants off it, so opChipScale and opMigrate commits land
// among the imaged boundaries. Every image — including those cut
// mid-migration — must restore byte-identically (two restores of the
// same image agree tick for tick), with zero ledger faults on either
// die and neither die's tile ledger overcommitted.
func TestFederationCrashAtEveryCommitBoundary(t *testing.T) {
	const tiles = 48
	base := Config{
		Cores: tiles, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Shards: 4, TickWorkers: 1,
		Chip: &ChipConfig{Chips: 2, MemBandwidthBps: 12e9},
	}
	fs := journal.NewMemFS()
	cfg := journalOnly(base, fs)
	var images []*journal.MemFS
	cfg.journalBeforeSync = func([]byte) { images = append(images, fs.Crash(0)) }
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const apps = 6
	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("fed-%02d", i),
			Workload: "ocean", Window: 22, MinRate: 22, MaxRate: 40}); err != nil {
			t.Fatal(err)
		}
	}
	// Warmup: let the controllers ramp onto multi-core allocations and
	// the placer spread demand; flush sparsely so replay cost per image
	// stays sane while still imaging real tick-batch boundaries.
	for tick := 0; tick < 60; tick++ {
		d.Tick()
		if tick%6 == 5 {
			if err := d.jd.w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Collapse die 0's memory bandwidth: the following ticks must walk
	// tenants off it, committing the migration records under test.
	if err := d.SaturateChip(0, 0.35); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 12; tick++ {
		d.Tick()
		if err := d.jd.w.Flush(); err != nil { // tick records cross a boundary
			t.Fatal(err)
		}
	}
	if d.Migrations() == 0 {
		t.Fatal("saturating die 0 produced no migrations; the boundaries exercise nothing new")
	}
	if len(images) < apps+12 {
		t.Fatalf("only %d commit boundaries imaged", len(images))
	}

	rcfg := journalOnly(base, nil)
	restoreFrom := func(img *journal.MemFS) *Daemon {
		t.Helper()
		c := rcfg
		c.FS = img.Crash(0) // private copy: restores must not share state
		r, err := NewDaemon(c)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for i, img := range images {
		r1 := restoreFrom(img)
		r2 := restoreFrom(img)
		var first, second [][]AppStatus
		for tick := 0; tick < 2; tick++ {
			r1.Tick()
			r2.Tick()
			first = append(first, r1.List())
			second = append(second, r2.List())
		}
		diffTranscripts(t, fmt.Sprintf("boundary %d double restore", i), first, second)
		if f := r1.fleet.LedgerFaults(); f != 0 {
			t.Fatalf("boundary %d: %d ledger faults after restore", i, f)
		}
		for die := 0; die < r1.fleet.Chips(); die++ {
			if _, used := r1.fleet.Chip(die).Usage(); used > tiles+1e-6 {
				t.Fatalf("boundary %d die %d: overcommitted: %g > %d tiles", i, die, used, tiles)
			}
		}
	}
}

// Snapshot + tail: membership, goals, chip placement, clock, and
// counters restore exactly from a compacted snapshot, and the restored
// tile ledger re-sums to the live daemon's value.
func TestSnapshotRestoreExact(t *testing.T) {
	const tiles = 24
	base := Config{
		Cores: tiles, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Shards: 4, TickWorkers: 1,
		Chip: &ChipConfig{Tiles: tiles},
	}
	fs := journal.NewMemFS()
	cfg := journalOnly(base, fs)
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const apps = 10
	name := func(i int) string { return fmt.Sprintf("snap-%02d", i) }
	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{Name: name(i),
			Workload: []string{"barnes", "ocean", "water"}[i%3], Window: 32,
			MinRate: 4 + float64(i%8)}); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 0; tick < 5; tick++ {
		d.Tick()
	}
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail: committed control mutations (no decision
	// epochs — replayed ticks re-run fresh controllers, which the
	// exactness contract deliberately excludes; the crash-boundary test
	// covers tick replay under the journal-only contract).
	if err := d.Withdraw(name(3)); err != nil {
		t.Fatal(err)
	}
	if err := d.SetGoal(name(6), 9, 14); err != nil {
		t.Fatal(err)
	}

	r, err := NewDaemon(journalOnly(base, fs.Crash(0)))
	if err != nil {
		t.Fatal(err)
	}
	ri := r.RecoveryInfo()
	if ri.SnapshotSeq == 0 {
		t.Fatal("restored without a snapshot")
	}
	if ri.Apps != apps-1 {
		t.Fatalf("restored %d apps, want %d", ri.Apps, apps-1)
	}

	ls, rs := d.Stats(), r.Stats()
	if ls.Ticks != rs.Ticks || ls.Beats != rs.Beats || ls.Decisions != rs.Decisions {
		t.Fatalf("counters drifted: live ticks/beats/decisions %d/%d/%d, restored %d/%d/%d",
			ls.Ticks, ls.Beats, ls.Decisions, rs.Ticks, rs.Beats, rs.Decisions)
	}
	if ls.ClockSeconds != rs.ClockSeconds {
		t.Fatalf("clock drifted: live %g, restored %g", ls.ClockSeconds, rs.ClockSeconds)
	}

	// Per-app: goals and chip placement exact.
	live := make(map[string]*app)
	for _, a := range d.dir.snapshot(nil) {
		live[a.name] = a
	}
	restoredApps := r.dir.snapshot(nil)
	if len(restoredApps) != len(live) {
		t.Fatalf("membership %d vs %d", len(restoredApps), len(live))
	}
	for _, ra := range restoredApps {
		la, ok := live[ra.name]
		if !ok {
			t.Fatalf("restored %q was not live", ra.name)
		}
		lg, rg := la.mon.Goals().Performance, ra.mon.Goals().Performance
		if lg.MinRate != rg.MinRate || lg.MaxRate != rg.MaxRate {
			t.Fatalf("%s: goal (%g,%g) restored as (%g,%g)", ra.name, lg.MinRate, lg.MaxRate, rg.MinRate, rg.MaxRate)
		}
		if la.partition().Config() != ra.partition().Config() {
			t.Fatalf("%s: chip config %+v restored as %+v", ra.name, la.partition().Config(), ra.partition().Config())
		}
		if la.partition().Share() != ra.partition().Share() {
			t.Fatalf("%s: time share %g restored as %g", ra.name, la.partition().Share(), ra.partition().Share())
		}
	}
	lp, lu := d.fleet.Chip(0).Usage()
	rp, ru := r.fleet.Chip(0).Usage()
	if lp != rp || lu != ru {
		t.Fatalf("ledger drifted: live %d partitions/%g tiles, restored %d/%g", lp, lu, rp, ru)
	}
	if f := r.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after snapshot restore", f)
	}
	// And the restored daemon keeps serving cleanly.
	for tick := 0; tick < 3; tick++ {
		r.Tick()
	}
	if f := r.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after post-restore ticks", f)
	}
}

// The acceptance scenario: kill -9 a daemon mid-tick with a large
// fleet; restart from the data directory. The whole fleet comes back
// and the next tick is byte-identical to a daemon that never crashed
// (the in-flight tick never committed, so it simply never happened).
func TestKillMidTickRestoresFleet(t *testing.T) {
	apps := 10000
	if testing.Short() {
		apps = 1000
	}
	base := Config{Cores: 4096, Accel: 0.1, Period: time.Hour, Oversubscribe: true}
	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(base, fs))
	if err != nil {
		t.Fatal(err)
	}
	enrolls := make([]fleetOp, 0, apps)
	workloads := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	for i := 0; i < apps; i++ {
		enrolls = append(enrolls, fleetOp{kind: "enroll", req: EnrollRequest{
			Name: fmt.Sprintf("app-%05d", i), Workload: workloads[i%len(workloads)],
			Window: 32, MinRate: 5 + float64(i%40),
		}})
	}
	for _, op := range enrolls {
		applyOp(t, d, op)
	}
	for i := 0; i < apps; i += 3 {
		if err := d.Beat(enrolls[i].req.Name, 1+i%7, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.jd.w.Flush(); err != nil {
		t.Fatal(err)
	}

	// kill -9 mid-tick: image the filesystem while the tick holds its
	// per-shard snapshots, before the tick record could ever commit.
	var img *journal.MemFS
	d.testHookAfterSnapshot = func() {
		if img == nil {
			img = fs.Crash(0)
		}
	}
	d.Tick()
	d.testHookAfterSnapshot = nil
	if img == nil {
		t.Fatal("mid-tick hook never fired")
	}

	restored, err := NewDaemon(journalOnly(base, img))
	if err != nil {
		t.Fatal(err)
	}
	if ri := restored.RecoveryInfo(); ri.Apps != apps {
		t.Fatalf("restored %d apps, want %d", ri.Apps, apps)
	}
	control, err := NewDaemon(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range enrolls {
		applyOp(t, control, op)
	}
	for i := 0; i < apps; i += 3 {
		if err := control.Beat(enrolls[i].req.Name, 1+i%7, 0); err != nil {
			t.Fatal(err)
		}
	}
	restored.Tick()
	control.Tick()
	diffTranscripts(t, "kill mid-tick", [][]AppStatus{control.List()}, [][]AppStatus{restored.List()})
}

// A journal failure degrades the daemon to read-only serving: mutations
// refuse with ErrDegraded (503 over HTTP), beats and reads keep
// working, and /readyz turns unavailable while /healthz stays alive.
func TestDegradedMode(t *testing.T) {
	base := Config{Cores: 16, Accel: 1, Period: time.Hour}
	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(base, fs))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "ok", MinRate: 10}); err != nil {
		t.Fatal(err)
	}

	fs.SetSyncErr(errors.New("I/O error: bad sector"))
	err = d.Enroll(EnrollRequest{Name: "doomed", MinRate: 10})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("enroll on failed journal: %v", err)
	}
	if !d.Degraded() {
		t.Fatal("daemon not degraded after journal failure")
	}
	// Journal-then-apply: the refused mutation left no state behind.
	if _, err := d.Status("doomed"); err == nil {
		t.Fatal("refused enroll mutated the directory")
	}
	// Every control mutation refuses; ErrDegraded is sticky.
	if err := d.SetGoal("ok", 12, 0); !errors.Is(err, ErrDegraded) {
		t.Fatalf("goal change: %v", err)
	}
	if err := d.Withdraw("ok"); !errors.Is(err, ErrDegraded) {
		t.Fatalf("withdraw: %v", err)
	}
	// The data plane survives: beats accepted, reads served, ticks run.
	if err := d.Beat("ok", 3, 0); err != nil {
		t.Fatalf("beat in degraded mode: %v", err)
	}
	d.Tick()
	if st, err := d.Status("ok"); err != nil || st.Observation.Beats != 3 {
		t.Fatalf("degraded serving: %+v, %v", st, err)
	}

	st := d.Stats()
	if st.Journal == nil || !st.Journal.Degraded || st.Journal.Error == "" {
		t.Fatalf("stats don't surface degradation: %+v", st.Journal)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", resp.StatusCode, err)
	}
	if resp, err := http.Get(srv.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz in degraded mode: %v %v", resp.StatusCode, err)
	}
	resp, err := http.Post(srv.URL+"/v1/apps", "application/json",
		strings.NewReader(`{"name":"late","min_rate":5}`))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation in degraded mode: %v %v", resp.StatusCode, err)
	}
}

// A healthy journaled daemon is ready.
func TestReadyz(t *testing.T) {
	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(Config{Cores: 8, Accel: 1, Period: time.Hour}, fs))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %v %v", resp.StatusCode, err)
	}
}

// BeatTimeout evicts advisory apps that stopped beating — tiles and
// cores released, the eviction counted and journaled, so a restore
// reproduces the post-eviction fleet.
func TestBeatTimeoutEvictsStale(t *testing.T) {
	base := Config{Cores: 16, Accel: 1, Period: time.Hour, BeatTimeout: 5 * time.Second}
	fs := journal.NewMemFS()
	d, err := NewDaemon(journalOnly(base, fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("ev-%d", i), MinRate: 10}); err != nil {
			t.Fatal(err)
		}
	}
	// ev-0 keeps beating; ev-1 and ev-2 go silent.
	for tick := 0; tick < 7; tick++ {
		if err := d.Beat("ev-0", 2, 0); err != nil {
			t.Fatal(err)
		}
		d.Tick()
	}
	if got := d.Evicted(); got != 2 {
		t.Fatalf("evicted %d apps, want 2", got)
	}
	if _, err := d.Status("ev-1"); err == nil {
		t.Fatal("stale app still enrolled")
	}
	if st := d.Stats(); st.Apps != 1 || st.Evicted != 2 {
		t.Fatalf("stats after eviction: apps %d evicted %d", st.Apps, st.Evicted)
	}
	// The survivor owns the whole pool again.
	st, err := d.Status("ev-0")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cores.Units != base.Cores {
		t.Fatalf("survivor holds %d cores, want the full pool of %d", st.Cores.Units, base.Cores)
	}

	// Evictions are journaled: the restored fleet is the post-eviction
	// one, counter included.
	if err := d.jd.w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewDaemon(journalOnly(base, fs.Crash(0)))
	if err != nil {
		t.Fatal(err)
	}
	if rs := r.Stats(); rs.Apps != 1 || rs.Evicted != 2 {
		t.Fatalf("restored stats: apps %d evicted %d", rs.Apps, rs.Evicted)
	}
}

// Close drains: final snapshot, journal closed, and the next boot
// restores from the compacted snapshot with an empty replay tail.
func TestCloseCompactsIntoFinalSnapshot(t *testing.T) {
	base := Config{Cores: 16, Accel: 1, Period: time.Hour}
	fs := journal.NewMemFS()
	cfg := journalOnly(base, fs)
	cfg.SnapshotEvery = time.Hour // periodic never fires; Close still compacts
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const apps = 4
	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("cl-%d", i), MinRate: 10}); err != nil {
			t.Fatal(err)
		}
		if err := d.Beat(fmt.Sprintf("cl-%d", i), 5, 0); err != nil {
			t.Fatal(err)
		}
	}
	d.Tick()
	ticks := d.Stats().Ticks
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ri := r.RecoveryInfo()
	if ri.SnapshotSeq == 0 {
		t.Fatal("close did not install a final snapshot")
	}
	if ri.ReplayedRecords != 0 {
		t.Fatalf("%d records left outside the final snapshot", ri.ReplayedRecords)
	}
	if ri.Apps != apps {
		t.Fatalf("restored %d apps, want %d", ri.Apps, apps)
	}
	if got := r.Stats().Ticks; got != ticks {
		t.Fatalf("restored %d ticks, want %d", got, ticks)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// Package server runs the SEEC observe–decide–act loop as a long-lived
// concurrent service: many applications enroll through an HTTP/JSON API,
// POST heartbeats (batched) as they make progress, and read back the
// runtime's latest Decision and core allocation. This is the paper's
// §3.1/§3.3 machinery lifted from a single simulated experiment to a
// daemon — one heartbeat.Monitor and one core.Runtime per enrolled
// application, plus core.Manager water-filling arbitration over a shared
// core pool, ticking continuously on a wall clock (or an accelerated
// simulated clock for tests and offline drivers).
//
// Concurrency model: the application directory is sharded (shard.go) —
// beat ingestion and status lookups resolve an app with one lock-free
// atomic load, enroll/withdraw copy-on-write under a per-shard mutex,
// and the tick fans its per-application phases across a worker pool one
// shard at a time. The Daemon's own mutex guards only the control plane
// (the single-threaded Manager and chip admission); per-app decision
// state is guarded by the app's mutex; each app's core.Runtime is
// touched by exactly one tick worker per tick (ticks never overlap).
// The sharded tick is byte-identical to the serial pass: allocations
// come from one deterministic Manager.Step, and every per-app phase is
// independent across apps (enforced by the invariant tests).
package server

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"angstrom/internal/actuator"
	"angstrom/internal/angstrom"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/journal"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// Sentinel errors the HTTP layer maps to status codes with errors.Is.
var (
	// ErrNotEnrolled marks requests naming an unknown application.
	ErrNotEnrolled = errors.New("not enrolled")
	// ErrDuplicate marks an enrollment under a name already in use.
	ErrDuplicate = errors.New("already enrolled")
	// ErrPoolExhausted marks enrollment beyond one app per pool core.
	ErrPoolExhausted = errors.New("core pool exhausted")
)

// MaxBeatBatch bounds one BeatRequest's count: large enough for any
// sane batching interval, small enough that a single request cannot
// monopolize the daemon.
const MaxBeatBatch = 10000

// MaxDistortion bounds a beat's |distortion| report. Distortion is a
// linear distance from the application's nominal value — any real
// report is modest — while values near MaxFloat64 would overflow the
// monitor's windowed sum to Inf (found by FuzzBeatTimestampsDirect)
// and poison the accuracy goal check.
const MaxDistortion = 1e150

func validDistortion(d float64) error {
	if math.IsNaN(d) || d > MaxDistortion || d < -MaxDistortion {
		return fmt.Errorf("server: distortion %g outside [-%g, %g]", d, MaxDistortion, MaxDistortion)
	}
	return nil
}

// Config tunes the daemon. Zero fields select documented defaults.
type Config struct {
	// Cores is the shared resource pool the Manager water-fills across
	// enrolled applications (default 1024). Enrollment beyond one app per
	// core is refused, exactly like the in-simulation Manager, unless
	// Oversubscribe is set.
	Cores int
	// Period is the decision period of the ODA loop (default 100ms).
	Period time.Duration
	// Accel, when positive, replaces the wall clock with an accelerated
	// simulated clock that advances Accel seconds per tick. Zero (the
	// default) serves in real time.
	Accel float64
	// Window is the default heartbeat averaging window in beats when an
	// enrollment does not specify one (default heartbeat.DefaultWindow).
	Window int
	// Oversubscribe admits fleets larger than the core pool: surplus
	// applications time-share units (fractional Allocation.Share)
	// instead of being refused at enrollment.
	Oversubscribe bool
	// Shards is the application-directory shard count, rounded up to a
	// power of two (default: scaled from GOMAXPROCS). One shard plus one
	// tick worker reproduces the serial daemon exactly.
	Shards int
	// TickWorkers is the tick's worker-pool size for the per-shard
	// advance and decide phases (default GOMAXPROCS). Allocations are
	// byte-identical for any worker count.
	TickWorkers int
	// Chip, when non-nil, turns on chip-backed serving: every enrolled
	// application is bound to a partition of a shared angstrom chip —
	// one die by default, a placed and migratable fleet of ChipConfig.
	// Chips dies — and actuated through real hardware knobs (cores, L2,
	// DVFS) instead of an advisory ladder.
	Chip *ChipConfig
	// DataDir, when set, turns on the durability layer (persist.go):
	// control-plane mutations are journaled to a write-ahead log under
	// this directory, periodic snapshots compact it, and boot restores
	// the enrolled fleet from it instead of starting empty.
	DataDir string
	// SnapshotEvery is the snapshot interval (default 30s). Negative
	// disables periodic snapshots — journal-only mode, where recovery
	// replays the full history and is byte-identical to an uncrashed
	// daemon.
	SnapshotEvery time.Duration
	// JournalFlush bounds how long an asynchronously appended record
	// (beats, tick marks) stays buffered before the background flusher
	// makes it durable (default 100ms). Negative disables the flusher;
	// synchronous commits still flush. Requires DataDir.
	JournalFlush time.Duration
	// BeatTimeout, when positive, evicts advisory applications whose
	// last heartbeat (or enrollment, if they never beat) is older than
	// this many daemon-clock seconds — their cores, tiles, and power
	// caps return to the pool and stats.evicted counts them. Chip-backed
	// apps are exempt: the chip emits their beats, so client silence
	// does not mean death.
	BeatTimeout time.Duration
	// FS overrides the journal's filesystem (default: the real one).
	// Tests interpose journal.MemFS to inject faults and crash images.
	FS journal.FS

	// journalBeforeSync, when set, runs before every journal fsync with
	// the batch about to become durable — the commit-boundary hook the
	// crash-injection tests image the filesystem from.
	journalBeforeSync func(batch []byte)
}

func (c *Config) fill() {
	if c.Cores == 0 {
		c.Cores = 1024
	}
	if c.Period == 0 {
		c.Period = 100 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = heartbeat.DefaultWindow
	}
	if c.Shards == 0 {
		c.Shards = defaultShardCount()
	}
	if c.TickWorkers == 0 {
		c.TickWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Chip != nil {
		c.Chip.fill(c.Cores)
	}
}

// app is one enrolled application's serving state.
type app struct {
	name string
	// seq orders apps by enrollment (assigned under d.mu): snapshots
	// store the fleet in this order so a restore re-enrolls it exactly
	// as it was built (manager and contention-pass iteration order).
	seq    uint64
	window int // heartbeat averaging window (persisted by snapshots)
	// prio is the enrollment's declared water-fill weight (0 = default
	// 1); persisted by snapshots so a restore re-weights the manager.
	prio   float64
	mgrID  int // the Manager's stable handle; indexes the tick's alloc table
	// shard is the directory shard the name hashes to, stamped by
	// insert so the ingestion path bumps the shard beat counter without
	// rehashing the name per batch.
	shard  int
	spec   workload.Spec
	mon    *heartbeat.Monitor
	rt     *core.Runtime // stepped only by the owning tick worker

	// goalEpoch counts SetGoal calls; the tick's quiescence check uses
	// it to re-decide after a goal change without re-reading the goal.
	goalEpoch atomic.Uint64

	// Chip-backed state (nil/zero for advisory apps). part is the app's
	// slice of its chip — an atomic pointer because live migration
	// rebinds it while lock-free beat/status readers race the tick;
	// chip is the die index it is placed on (0 for advisory apps,
	// rewritten under d.mu on migration); units mirrors the manager's
	// latest unit grant for the core-knob clamp; pending is the previous
	// decision's schedule, executed by the next tick; settle is the
	// schedule's duration-weighted configuration the knobs are parked at
	// between intervals (tick workers only).
	part       atomic.Pointer[angstrom.Partition]
	chip       int
	// migratedAt is when the app last moved between dies (zero if
	// never): the migration scan won't pick it as a victim again until
	// its controller has had a cooldown to re-converge on the new die.
	// Written under d.mu on migration, read by the tick goroutine;
	// persisted by snapshots.
	migratedAt sim.Time
	units      atomic.Int64
	pending    []core.Slice
	settle     actuator.Config
	nomActiveW float64 // active watts at the nominal configuration
	minPowerX  float64 // cheapest power multiplier in the action space
	lastCapX   float64 // last applied power cap (tick goroutine only)

	// Quiescence tracking, touched only by the app's tick worker: the
	// inputs the last real rt.Step consumed. While none move (no new
	// beats, same allocation, same goal epoch, last step clean) the
	// previous decision stands and the decide phase skips the app.
	stepped          bool
	steppedErrored   bool
	steppedBeats     uint64
	steppedGoalEpoch uint64
	steppedUnits     int
	steppedShare     float64

	mu          sync.Mutex
	decision    core.Decision
	hasDecision bool
	decisionErr string
	actErr      string // last chip actuation error ("" when clean)
	alloc       core.Allocation
	enrolledAt  sim.Time
}

// allocUnits reports the manager's current unit grant (the core-knob
// clamp reads it from the actuation path).
func (a *app) allocUnits() int { return int(a.units.Load()) }

// partition is the app's current chip slice (nil for advisory apps).
// One atomic load: safe from the lock-free beat/status paths while a
// migration rebinds the app.
//
//angstrom:hotpath
func (a *app) partition() *angstrom.Partition { return a.part.Load() }

// Daemon is the multi-application serving runtime.
type Daemon struct {
	cfg      Config
	clock    sim.Nower
	simClock *AtomicClock // non-nil iff Accel > 0
	// swClock indirects the clock when a data directory is configured,
	// so boot-time journal replay can run under a settable clock and
	// hand over to the serving clock afterwards (non-nil iff DataDir).
	swClock *swapClock
	workers int

	// jd is the durability layer (persist.go), nil without DataDir.
	jd *durability

	reg   *heartbeat.Registry
	fleet *angstrom.Fleet // non-nil iff cfg.Chip != nil

	dir *directory // sharded app index; lock-free reads

	// mu is the control-plane lock: the (single-threaded) per-chip
	// Managers and broker, chip admission (makeRoom), placement,
	// migration, enroll/withdraw/goal sequencing, and the journal's
	// snapshot rotation. The beat and status paths never take it.
	mu sync.Mutex
	// mgrs is one water-filling Manager per chip (one entry for a
	// non-chip daemon; advisory apps always live in mgrs[0]). broker
	// splits the global core/power budget across them each tick by
	// aggregate corrected demand.
	mgrs      []*core.Manager
	broker    *core.Broker
	appSeq    uint64 // enrollment counter behind app.seq (under mu)
	chipCount atomic.Int64

	// The tick's allocation table, indexed by [chip][Manager app ID]
	// (no string hashing on the per-app path): an entry is valid for
	// this tick iff its epoch stamp matches allocTick. Written under
	// d.mu before the decide fan-out, read-only by the workers.
	allocByID [][]core.Allocation
	allocSeen [][]uint64
	allocTick uint64

	// snapBuf holds the tick's per-shard snapshots: immutable slice
	// headers published by the directory, valid for the whole tick.
	snapBuf [][]*app
	chipBuf [][]*app // reused per-shard chip-app scratch
	// chipApps is the tick's name-sorted chip-backed fleet, reused
	// across ticks (tick goroutine only); the migration scan reads it
	// after the tick. loadBuf is the placement/migration ledger scratch.
	chipApps []*app
	loadBuf  []angstrom.ChipLoad
	// loadAvgMem/loadAvgNoC are per-die EWMAs of the offered mem/NoC
	// utilization (alpha = loadAvgAlpha, updated once per tick under
	// d.mu). The migration scan prices these instead of the last
	// contention pass: instantaneous offered demand swings tick to tick
	// as bang-bang schedules alternate configurations, and pricing that
	// noise made balanced dies look transiently imbalanced. Nil unless
	// the fleet has more than one die; persisted by snapshots and
	// rebuilt by opTick replay.
	loadAvgMem []float64
	loadAvgNoC []float64

	// testHookAfterSnapshot, when set, runs between the tick's snapshot
	// phase and the advance phase — the window where a concurrent
	// withdraw historically raced the held snapshots. Tests use it to
	// withdraw deterministically mid-tick.
	testHookAfterSnapshot func()

	ticks atomic.Uint64
	// beats is the fleet-wide ingested-beat total. It sits on its own
	// cache line (heartbeat.Counter) because every ingesting connection
	// adds to it: JSON handlers add per request, binary wire connections
	// buffer writer-private deltas (heartbeat.Delta) and publish at
	// flush barriers, so the line is contended at flush rate rather than
	// beat rate.
	beats heartbeat.Counter
	// wireConns gauges live binary-protocol connections; wireFrames
	// counts accepted wire batch frames (delta-published per conn).
	wireConns  atomic.Int64
	wireFrames heartbeat.Counter
	decisions  atomic.Uint64
	evicted    atomic.Uint64 // stale apps withdrawn by BeatTimeout
	migrations atomic.Uint64 // apps moved between chips by maybeMigrate
	// lastMigrate is when the most recent inter-die move was applied —
	// the migration scan sits out a settle window after it so the
	// re-decision transient a move causes is never priced as imbalance.
	// Written by applyMigration (under d.mu, from the tick goroutine or
	// boot replay), read by the tick goroutine; persisted by snapshots.
	lastMigrate sim.Time
	// powerOvercommit is the float64 bits of the watts by which the sum
	// of floored per-app power caps exceeds the chip budget (0 when the
	// budget is satisfiable). Written by the tick goroutine, read by
	// Stats.
	powerOvercommit atomic.Uint64
	started time.Time

	running  atomic.Bool // set by Start; Stop only waits when it ran
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewDaemon builds a daemon; call Start to begin ticking.
func NewDaemon(cfg Config) (*Daemon, error) {
	cfg.fill()
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("server: %d cores", cfg.Cores)
	}
	if cfg.Window < 2 {
		return nil, fmt.Errorf("server: window %d too small (need >= 2)", cfg.Window)
	}
	if cfg.Shards < 1 || cfg.Shards > 1<<16 {
		return nil, fmt.Errorf("server: shard count %d outside [1, 65536]", cfg.Shards)
	}
	if cfg.TickWorkers < 1 {
		return nil, fmt.Errorf("server: %d tick workers", cfg.TickWorkers)
	}
	d := &Daemon{
		cfg:     cfg,
		workers: cfg.TickWorkers,
		reg:     heartbeat.NewRegistry(),
		dir:     newDirectory(cfg.Shards),
		started: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	d.snapBuf = make([][]*app, len(d.dir.shards))
	d.chipBuf = make([][]*app, len(d.dir.shards))
	if cfg.Accel > 0 {
		d.simClock = NewAtomicClock(0)
		d.clock = d.simClock
	} else {
		d.clock = NewWallClock()
	}
	if cfg.DataDir != "" {
		// Indirect the clock so boot-time journal replay can drive every
		// component that captures it (manager, monitors, runtimes)
		// through a settable replay clock, then swap the serving clock
		// back in at the recovered frontier.
		d.swClock = newSwapClock(d.clock)
		d.clock = d.swClock
	}
	chips := 1
	if cfg.Chip != nil {
		if err := cfg.Chip.validate(); err != nil {
			return nil, err
		}
		chips = cfg.Chip.Chips
		if cfg.Cores < chips {
			// The broker floors every non-empty chip at one unit, so the
			// global pool must cover the fleet.
			return nil, fmt.Errorf("server: %d cores cannot cover %d chips", cfg.Cores, chips)
		}
		var err error
		if d.fleet, err = angstrom.NewFleet(*cfg.Chip.Params, cfg.Chip.Tiles, chips); err != nil {
			return nil, err
		}
		if chips > 1 {
			d.loadAvgMem = make([]float64, chips)
			d.loadAvgNoC = make([]float64, chips)
		}
	}
	d.mgrs = make([]*core.Manager, chips)
	for i := range d.mgrs {
		m, err := core.NewManager(d.clock, cfg.Cores)
		if err != nil {
			return nil, err
		}
		m.SetOversubscription(cfg.Oversubscribe)
		d.mgrs[i] = m
	}
	d.broker = core.NewBroker()
	d.allocByID = make([][]core.Allocation, chips)
	d.allocSeen = make([][]uint64, chips)
	if cfg.DataDir != "" {
		if err := d.openJournal(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Registry exposes the shared application directory (observer side).
func (d *Daemon) Registry() *heartbeat.Registry { return d.reg }

// Clock exposes the daemon's clock (read-only).
func (d *Daemon) Clock() sim.Nower { return d.clock }

// buildSpace builds the app's advisory action space: a thread-count
// ladder whose speedups come from the workload's declared Amdahl curve
// (power scales with active cores) crossed with a DVFS-like frequency
// ladder (power ~ f³). The daemon decides a rung; the application reads
// it back and actuates on its side.
func buildSpace(spec workload.Spec) (*actuator.Space, error) {
	threads := []int{1, 2, 4, 8, 16}
	tLabels := make([]string, len(threads))
	tSpeed := make([]float64, len(threads))
	tPower := make([]float64, len(threads))
	for i, t := range threads {
		tLabels[i] = fmt.Sprintf("%d threads", t)
		tSpeed[i] = spec.ParallelSpeedup(t)
		tPower[i] = float64(t)
	}
	threadsAct, err := actuator.NewLadder("threads", tLabels, tSpeed, tPower)
	if err != nil {
		return nil, err
	}
	freqs := []float64{0.6, 0.8, 1.0, 1.2}
	fLabels := make([]string, len(freqs))
	fPower := make([]float64, len(freqs))
	for i, f := range freqs {
		fLabels[i] = fmt.Sprintf("%.1fx clock", f)
		fPower[i] = f * f * f
	}
	dvfsAct, err := actuator.NewLadder("dvfs", fLabels, freqs, fPower)
	if err != nil {
		return nil, err
	}
	return actuator.NewSpace(threadsAct, dvfsAct)
}

// curveShapes memoizes core.VerifyCurve per scaling curve. The key
// mirrors workload's speedup-table memo — the curve is a pure function
// of (ParallelFrac, SyncOverhead) sampled over the pool size — so a
// fleet enrolled over a handful of workloads verifies each curve once.
var curveShapes sync.Map // curveShapeKey -> curveShape

type curveShapeKey struct {
	parallelFrac float64
	syncOverhead float64
	cores        int
}

type curveShape struct {
	peak     int
	unimodal bool
}

func curveShapeFor(spec workload.Spec, cores int, scaling func(int) float64) curveShape {
	key := curveShapeKey{spec.ParallelFrac, spec.SyncOverhead, cores}
	if v, ok := curveShapes.Load(key); ok {
		return v.(curveShape)
	}
	peak, unimodal := core.VerifyCurve(scaling, cores)
	v, _ := curveShapes.LoadOrStore(key, curveShape{peak: peak, unimodal: unimodal})
	return v.(curveShape)
}

// validPriority vets an enrollment's water-fill weight: 0 selects the
// default weight 1; anything else must be finite, positive, and within
// a sane magnitude (a runaway weight would starve every other class to
// its one-unit floor).
func validPriority(p float64) error {
	if p == 0 {
		return nil
	}
	if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1e6 {
		return fmt.Errorf("server: priority %g outside (0, 1e6]", p)
	}
	return nil
}

func validGoal(minRate, maxRate float64) error {
	// NaN slips through ordered comparisons, so finiteness is checked
	// explicitly: a NaN/Inf band would poison every controller estimate
	// downstream.
	if math.IsNaN(minRate) || math.IsInf(minRate, 0) || math.IsNaN(maxRate) || math.IsInf(maxRate, 0) {
		return fmt.Errorf("server: non-finite rate band [%g, %g]", minRate, maxRate)
	}
	if minRate <= 0 {
		return fmt.Errorf("server: min_rate %g must be positive", minRate)
	}
	if maxRate != 0 && maxRate < minRate {
		return fmt.Errorf("server: inverted rate band [%g, %g]", minRate, maxRate)
	}
	return nil
}

// Enroll registers an application and starts controlling it on the next
// tick. The request must carry a performance goal: a goalless app would
// stall both decision layers (core.Runtime and core.Manager refuse to
// step without one). In chip-backed mode the application is bound to a
// partition of the shared chip unless it asks for advisory mode.
//
// Enroll is a journaling writer: it commits the record ahead of every
// mutation, and replay re-enters it to rebuild the fleet.
//
//angstrom:journaled writer
//angstrom:deterministic
func (d *Daemon) Enroll(req EnrollRequest) error {
	// The name is an URL path segment and the registry key; accept only
	// names that round-trip unchanged (no whitespace, no separators) so
	// the client's name and the enrolled name can never diverge.
	name := req.Name
	if name == "" || name != strings.TrimSpace(name) || strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("server: invalid app name %q", req.Name)
	}
	if err := validGoal(req.MinRate, req.MaxRate); err != nil {
		return err
	}
	if err := validPriority(req.Priority); err != nil {
		return err
	}
	chipBacked := false
	switch req.Mode {
	case "", ModeDefault:
		chipBacked = d.fleet != nil
	case ModeChip:
		if d.fleet == nil {
			return fmt.Errorf("server: chip mode not enabled on this daemon")
		}
		chipBacked = true
	case ModeAdvisory:
	default:
		return fmt.Errorf("server: unknown mode %q", req.Mode)
	}
	if req.Chip != nil {
		if !chipBacked {
			return fmt.Errorf("server: chip pin on a non-chip enrollment")
		}
		if *req.Chip < 0 || *req.Chip >= d.fleet.Chips() {
			return fmt.Errorf("server: chip %d outside fleet of %d", *req.Chip, d.fleet.Chips())
		}
	}
	wl := req.Workload
	if wl == "" {
		wl = "barnes"
	}
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	window := req.Window
	if window == 0 {
		window = d.cfg.Window
	}
	if window < 2 {
		return fmt.Errorf("server: window %d too small (need >= 2)", window)
	}

	mon := heartbeat.New(d.clock, heartbeat.WithWindow(window))
	mon.SetPerformanceGoal(req.MinRate, req.MaxRate)
	a := &app{name: name, spec: spec, mon: mon, window: window}
	a.units.Store(1)
	a.alloc = core.Allocation{App: name, Units: 1, Share: 1}

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.dir.get(name); dup {
		return fmt.Errorf("server: %q %w", name, ErrDuplicate)
	}
	if apps := d.totalApps(); !d.cfg.Oversubscribe && apps >= d.cfg.Cores {
		return fmt.Errorf("server: %w (%d apps on %d cores)", ErrPoolExhausted, apps, d.cfg.Cores)
	}
	// Place the enrollment before journaling and stamp the decision into
	// the record: the chosen die is part of the durable history, so
	// replay re-binds at the recorded placement instead of re-running the
	// bin-packer against a ledger mid-rebuild. (Old journals carry no pin
	// and re-place; a single-chip fleet always resolves to die 0.)
	if chipBacked && req.Chip == nil {
		idx := d.placeChip(spec)
		req.Chip = &idx
	}
	if req.Chip != nil {
		a.chip = *req.Chip
	}
	// Journal ahead of the apply (after the cheap pre-checks): a commit
	// failure degrades the daemon before any state changes, and an
	// apply failure below replays to the same failure. One timestamp
	// covers enrollment and chip acquisition so replay reproduces both.
	now := d.clock.Now()
	if err := d.journalCommit(record{Op: opEnroll, T: now, Enroll: &req}); err != nil {
		return err
	}
	a.enrolledAt = now
	if chipBacked {
		if err := d.bindChip(a, spec, now); err != nil {
			return err
		}
	} else {
		space, err := buildSpace(spec)
		if err != nil {
			return err
		}
		if a.rt, err = core.New(name, d.clock, mon, space, core.Options{}); err != nil {
			return err
		}
	}
	// The memoized curve shares one table across every app on the same
	// workload, and its verified shape is memoized alongside it: the
	// manager's per-tick demand inversion reads array slots, and the
	// O(cores) VerifyCurve scan runs once per curve, not once per
	// enrollment (a 10k-app burst re-deriving it cost more than the
	// enrollments themselves).
	scaling := spec.CachedSpeedup(d.cfg.Cores)
	shape := curveShapeFor(spec, d.cfg.Cores, scaling)
	mgr := d.mgrs[a.chip]
	if err := mgr.AddAppWithShape(name, mon, scaling, shape.peak, shape.unimodal); err != nil {
		d.unbindChip(a)
		return err
	}
	if req.Priority > 0 {
		if err := mgr.SetPriority(name, req.Priority); err != nil {
			mgr.RemoveApp(name)
			d.unbindChip(a)
			return err
		}
		a.prio = req.Priority
	}
	a.mgrID, _ = mgr.AppID(name)
	if err := d.reg.Enroll(name, mon); err != nil {
		mgr.RemoveApp(name)
		d.unbindChip(a)
		return err
	}
	d.appSeq++
	a.seq = d.appSeq
	if !d.dir.insert(name, a) {
		// Unreachable while enrolls serialize on d.mu, but keep the
		// bookkeeping honest if that ever changes.
		d.reg.Withdraw(name)
		mgr.RemoveApp(name)
		d.unbindChip(a)
		return fmt.Errorf("server: %q %w", name, ErrDuplicate)
	}
	if a.partition() != nil {
		d.chipCount.Add(1)
	}
	return nil
}

// totalApps sums enrollments across the per-chip managers (under d.mu).
func (d *Daemon) totalApps() int {
	n := 0
	for _, m := range d.mgrs {
		n += m.Apps()
	}
	return n
}

// unbindChip releases an app's chip partition, if any. The pointer is
// left in place (tick workers may hold a snapshot of the app); the
// released partition turns further actuation into clean errors.
// Reached only from journaling writers (Enroll rollback, withdraw), so
// the release it applies is always covered by their committed record.
//
//angstrom:journaled writer
func (d *Daemon) unbindChip(a *app) {
	if a.partition() != nil {
		d.fleet.Chip(a.chip).Release(a.name)
	}
}

// Withdraw removes an application and frees its core share.
func (d *Daemon) Withdraw(name string) error { return d.withdraw(name, false) }

// withdraw journals and applies one withdrawal. Client withdrawals
// commit synchronously (refused when degraded); evictions append
// asynchronously — a lost eviction record replays to a stale app that
// the next tick simply evicts again.
//
//angstrom:journaled writer
//angstrom:deterministic
func (d *Daemon) withdraw(name string, evict bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.dir.get(name)
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	rec := record{Op: opWithdraw, T: d.clock.Now(), Name: name, Evict: evict}
	if evict {
		d.journalAppend(rec)
	} else if err := d.journalCommit(rec); err != nil {
		return err
	}
	d.dir.remove(name)
	d.reg.Withdraw(name)
	d.mgrs[a.chip].RemoveApp(name)
	d.unbindChip(a)
	if a.partition() != nil {
		d.chipCount.Add(-1)
	}
	if evict {
		d.evicted.Add(1)
	}
	return nil
}

// lookup resolves an app through the sharded directory: one hash, one
// atomic load, one map read — no locks on the ingestion path.
func (d *Daemon) lookup(name string) (*app, bool) { return d.dir.get(name) }

// Beat ingests count heartbeats for name, the last one carrying the
// given distortion. The monitor is internally synchronized, so beats
// from many connections interleave safely with the tick workers.
//
// A batch does not share one timestamp: the beats are spread evenly
// across the interval since the application's previous beat, so
// windowed rates stay unbiased even when the averaging window is
// smaller than a batch. (The very first batch has no prior reference
// and lands at the current time; clients that need exact placement send
// per-beat timestamps via BeatTimestamps.)
//
// Chip-backed applications are refused: their partition is the beat
// source, and a client beat stamped at wall-clock time would drag the
// monitor ahead of the partition's execution frontier and corrupt the
// controller's signal.
func (d *Daemon) Beat(name string, count int, distortion float64) error {
	a, err := d.beatTarget(name, count, distortion)
	if err != nil {
		return err
	}
	d.ingestSpread(a, count, distortion)
	d.beats.Add(uint64(count))
	return nil
}

// beatTarget validates a beat batch's shape and resolves its target
// application. It is shared by the JSON handlers and the binary wire
// decoder so the two transports enforce identical admission rules —
// the first link in the chain that makes them equivalent by
// construction (wire_equiv_test locks the whole chain in end to end).
func (d *Daemon) beatTarget(name string, count int, distortion float64) (*app, error) {
	if count < 1 || count > MaxBeatBatch {
		return nil, fmt.Errorf("server: beat count %d outside [1, %d]", count, MaxBeatBatch)
	}
	if err := validDistortion(distortion); err != nil {
		return nil, err
	}
	a, ok := d.lookup(name)
	if !ok {
		return nil, fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	if a.partition() != nil {
		return nil, fmt.Errorf("server: %q is chip-backed; its beats are chip-emitted", name)
	}
	return a, nil
}

// ingestSpread journals and applies a validated server-spread batch:
// count beats spread across the interval since the app's previous
// beat, the last carrying distortion (one lock acquisition on the
// monitor, one atomic add on the app's shard counter). Both ingestion
// transports funnel here; only the fleet-wide beats total is left to
// the caller, because the wire path publishes it through per-connection
// deltas instead of per batch.
func (d *Daemon) ingestSpread(a *app, count int, distortion float64) {
	now := d.clock.Now()
	if d.jd != nil {
		d.journalAppend(record{Op: opBeat, T: now, Name: a.name, Count: count, Distortion: distortion})
	}
	a.mon.BeatBatchSpreadAt(now, count, distortion)
	d.dir.shards[a.shard].ingested.Add(uint64(count))
}

// ingestShifted journals and applies a validated client-timestamped
// batch, shifted so its final beat lands at the daemon's current time.
// ts must be finite and non-decreasing (the JSON handler validates, the
// wire decoder guarantees it by construction); it may alias a reusable
// buffer — the journal record is encoded and the monitor copies the
// values before ingestShifted returns.
func (d *Daemon) ingestShifted(a *app, ts []float64, distortion float64) {
	now := d.clock.Now()
	if d.jd != nil {
		// The raw client timestamps are journaled: replay recomputes the
		// same shift from the same `now` (the record's T).
		d.journalAppend(record{Op: opBeatTS, T: now, Name: a.name, Timestamps: ts, Distortion: distortion})
	}
	shift := now - ts[len(ts)-1]
	a.mon.BeatBatchShiftedAt(ts[:len(ts)-1], shift, now, distortion)
	d.dir.shards[a.shard].ingested.Add(uint64(len(ts)))
}

// BeatTimestamps ingests a batch whose per-beat timestamps the client
// supplied. The timestamps may use any epoch (a client monotonic clock,
// Unix seconds): only their spacing is used — the batch is shifted so
// its last beat lands at the daemon's current time, which makes the
// path immune to client/server clock skew. Timestamps must be finite
// and non-decreasing; beats that would land before the application's
// previous beat are clamped to it by the monitor.
func (d *Daemon) BeatTimestamps(name string, ts []float64, distortion float64) error {
	if len(ts) < 1 || len(ts) > MaxBeatBatch {
		return fmt.Errorf("server: beat count %d outside [1, %d]", len(ts), MaxBeatBatch)
	}
	if err := validDistortion(distortion); err != nil {
		return err
	}
	for i, t := range ts {
		// NaN also passes ordered comparisons, so check finiteness
		// first: a NaN timestamp would corrupt the monitor's frontier.
		if math.IsNaN(t) || math.IsInf(t, 0) {
			return fmt.Errorf("server: non-finite timestamp %g at index %d", t, i)
		}
		if i > 0 && t < ts[i-1] {
			return fmt.Errorf("server: timestamps decrease at index %d (%g after %g)", i, t, ts[i-1])
		}
	}
	a, err := d.beatTarget(name, len(ts), distortion)
	if err != nil {
		return err
	}
	d.ingestShifted(a, ts, distortion)
	d.beats.Add(uint64(len(ts)))
	return nil
}

// SetGoal replaces the application's performance goal. Chip-backed apps
// under a power budget see their budget share re-derived on the next
// tick. Goal changes serialize on d.mu (they are rare next to beats):
// journaling them outside the lock could race a snapshot rotation and
// strand a committed change in a pruned segment.
//
//angstrom:journaled writer
//angstrom:deterministic
func (d *Daemon) SetGoal(name string, minRate, maxRate float64) error {
	if err := validGoal(minRate, maxRate); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.lookup(name)
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	rec := record{Op: opGoal, T: d.clock.Now(), Name: name, MinRate: minRate, MaxRate: maxRate}
	if err := d.journalCommit(rec); err != nil {
		return err
	}
	a.mon.SetPerformanceGoal(minRate, maxRate)
	a.goalEpoch.Add(1)
	return nil
}

// Tick runs one decision period for every enrolled application: advance
// the accelerated clock (if any), execute chip-backed apps over the
// elapsed interval (emitting their heartbeats), arbitrate shared cores,
// then step each app's SEEC runtime and queue its schedule for the next
// interval. The per-application phases fan out across the tick worker
// pool shard by shard; quiescent apps (no new beats, unchanged
// allocation and goal, last step clean) keep their previous decision
// without re-running the decision engine. Start runs this on a timer;
// accelerated drivers and benchmarks may call it directly instead
// (never concurrently with Start).
func (d *Daemon) Tick() {
	if d.simClock != nil {
		d.simClock.Advance(d.cfg.Accel)
	}
	now := d.clock.Now()
	d.tickAt(now)
	// The tick record (the decision epoch) is appended after the tick
	// ran but before any eviction it triggers, so replay interleaves
	// tick and eviction withdrawals in live order. Appending is pure
	// buffering — no I/O on the tick path; the background flusher (or
	// the next commit) makes it durable.
	if d.jd != nil {
		d.journalAppend(record{Op: opTick, T: now})
	}
	// Migration rides after the tick record, not inside tickAt: replaying
	// an opTick must not re-run the migration scan (its outcome is its
	// own journaled record, the same pattern evictions use).
	d.maybeMigrate(now)
	d.evictStale(now)
	d.maybeSnapshot()
}

// tickAt is one decision epoch at time now. Journal replay calls it
// directly (the clock already set to the recorded time); the live path
// wraps it with the tick record, eviction, and snapshot phases above.
// Tick state is journaled by the opTick record, so this is the writer
// for every per-tick mutation (interference pricing, Manager.Step,
// partition shares).
//
//angstrom:journaled writer
//angstrom:deterministic
func (d *Daemon) tickAt(now sim.Time) {
	// Re-price cross-partition contention before executing the interval:
	// this tick's Advance (and every Sense the controllers read) runs at
	// the degradation implied by the fleet's current configurations.
	// Die order — each chip's ledger is independent, so the pass order
	// only needs to be stable.
	if d.fleet != nil {
		for i := 0; i < d.fleet.Chips(); i++ {
			d.fleet.Chip(i).UpdateContention()
		}
	}

	// Snapshot phase: one immutable slice header per shard. Withdrawn
	// apps may linger in a snapshot; every later phase re-checks
	// identity through the directory before acting.
	for i := range d.snapBuf {
		d.snapBuf[i] = d.dir.shardList(i)
	}
	if d.testHookAfterSnapshot != nil {
		d.testHookAfterSnapshot()
	}

	// Act + observe: run every chip partition up to `now` under the
	// previous decision's schedule, so the heartbeats the manager and
	// controllers are about to read reflect this interval's execution.
	// Fanned per shard; partitions advance independently.
	if d.fleet != nil {
		d.dir.forEachShard(d.workers, func(i int) {
			chips := d.chipBuf[i][:0]
			for _, a := range d.snapBuf[i] {
				if a.partition() == nil {
					continue
				}
				if cur, ok := d.lookup(a.name); !ok || cur != a {
					continue // withdrawn since the snapshot; partition released
				}
				chips = append(chips, a)
				d.runChipInterval(a, now)
			}
			d.chipBuf[i] = chips
		})
	}
	chipApps := d.chipApps[:0]
	if d.fleet != nil {
		for i := range d.chipBuf {
			chipApps = append(chipApps, d.chipBuf[i]...)
		}
		// Name order, not shard order: the share-apply and power-cap
		// passes below interact with the shared tile ledgers, so a stable
		// order keeps them independent of the shard layout.
		sort.Slice(chipApps, func(i, j int) bool { return chipApps[i].name < chipApps[j].name })
	}
	d.chipApps = chipApps // the post-tick migration scan reads it

	d.mu.Lock()
	// Fold this tick's offered utilization into the per-die EWMAs the
	// migration scan prices (under d.mu so snapshots capture a
	// consistent value; replayed ticks rebuild it identically).
	if d.loadAvgMem != nil {
		d.loadBuf = d.fleet.Loads(d.loadBuf[:0])
		for i, l := range d.loadBuf {
			d.loadAvgMem[i] += loadAvgAlpha * (l.MemRho - d.loadAvgMem[i])
			d.loadAvgNoC[i] += loadAvgAlpha * (l.NoCRho - d.loadAvgNoC[i])
		}
	}
	// Feed each chip app's measured contention factor to its die's
	// manager so water-filling provisions for contended throughput.
	for _, a := range chipApps {
		d.mgrs[a.chip].SetInterference(a.name, a.partition().Interference().Slowdown)
	}
	// Broker pass: split the global core pool across the per-chip
	// managers by last tick's aggregate corrected demand. A single
	// manager keeps its full pool (the broker is the identity), so the
	// one-chip daemon arbitrates bit-identically to the pre-fleet code.
	if len(d.mgrs) > 1 {
		units := d.broker.SplitUnits(d.cfg.Cores, d.mgrs)
		for i, m := range d.mgrs {
			if m.Apps() > 0 {
				_ = m.SetBudget(units[i])
			}
		}
	}
	// Publish each manager's allocations into its ID-indexed table:
	// integer reads on the per-app path instead of a 10k-entry name map
	// rebuilt every tick. Epoch stamping makes last tick's entries
	// invisible without clearing anything.
	d.allocTick++
	for ci, m := range d.mgrs {
		if m.Apps() == 0 {
			continue
		}
		allocs, err := m.Step()
		if err != nil {
			continue
		}
		tbl, seen := d.allocByID[ci], d.allocSeen[ci]
		for _, al := range allocs {
			if al.ID >= len(tbl) {
				grown := make([]core.Allocation, al.ID+1+len(tbl))
				copy(grown, tbl)
				tbl = grown
				grownSeen := make([]uint64, len(grown))
				copy(grownSeen, seen)
				seen = grownSeen
			}
			tbl[al.ID] = al
			seen[al.ID] = d.allocTick
		}
		d.allocByID[ci], d.allocSeen[ci] = tbl, seen
	}

	// Apply the managers' time shares to chip partitions, shrinks first
	// so the grows always find the freed core-equivalents in the ledger.
	// Still under d.mu: Enroll's makeRoom also shrinks shares (to carve
	// a slot for a newcomer), and a concurrent grow pass working from
	// pre-shrink values would undo it and spuriously refuse admission.
	for pass := 0; pass < 2; pass++ {
		for _, a := range chipApps {
			al, ok := d.allocFor(a.chip, a.mgrID)
			if !ok || al.Share <= 0 {
				continue
			}
			part := a.partition()
			cur := part.Share()
			if (pass == 0 && al.Share < cur) || (pass == 1 && al.Share > cur) {
				_ = part.SetShare(al.Share) // transient refusals heal next tick
			}
		}
	}
	d.mu.Unlock()

	d.rebalancePowerCaps(chipApps) // no-op without a budget; cheap when caps are stable

	// Decide: step every non-quiescent app's runtime, fanned per shard.
	// The allocation table is written above and only read from here on,
	// so the workers share it without synchronization.
	d.dir.forEachShard(d.workers, func(i int) {
		for _, a := range d.snapBuf[i] {
			// Skip apps withdrawn since the snapshot: stepping them would
			// count decisions for (and actuate) an app no longer enrolled.
			if cur, ok := d.lookup(a.name); !ok || cur != a {
				continue
			}
			al, hasAlloc := d.allocFor(a.chip, a.mgrID)
			if hasAlloc {
				a.units.Store(int64(al.Units))
			}
			d.decide(a, al, hasAlloc)
		}
	})
	d.ticks.Add(1)
}

// evictStale withdraws advisory applications whose last heartbeat (or
// enrollment, for apps that never beat) is older than BeatTimeout
// daemon-clock seconds, returning their cores and power share to the
// pool. Chip-backed apps are exempt — the chip emits their beats, so a
// silent client does not mean a dead one. Called from the tick
// goroutine; evictions are journaled as withdraw records so replay
// reproduces them without re-running the scan.
func (d *Daemon) evictStale(now sim.Time) {
	timeout := d.cfg.BeatTimeout.Seconds()
	if timeout <= 0 {
		return
	}
	var stale []string
	for i := range d.snapBuf {
		for _, a := range d.snapBuf[i] {
			if a.partition() != nil {
				continue
			}
			last := a.mon.LastTime()
			a.mu.Lock()
			if a.enrolledAt > last {
				last = a.enrolledAt
			}
			a.mu.Unlock()
			if now-last > timeout {
				stale = append(stale, a.name)
			}
		}
	}
	// Name order, not shard order: eviction writes journal records, so
	// a deterministic order keeps replay independent of shard layout.
	sort.Strings(stale)
	for _, name := range stale {
		_ = d.withdraw(name, true) // already-withdrawn races are no-ops
	}
}

// Evicted reports how many stale applications BeatTimeout has evicted.
func (d *Daemon) Evicted() uint64 { return d.evicted.Load() }

// allocFor reads this tick's allocation for a Manager app ID on one
// chip's manager (ok=false when the app was not part of the tick's Step
// — e.g. enrolled after it, or the Step errored). An ID freed by a
// withdraw and re-issued to a newer app is safe: the entry is
// overwritten before it is consulted, or epoch-invisible. IDs are only
// meaningful per manager, which is why the table is two-level.
func (d *Daemon) allocFor(chip, id int) (core.Allocation, bool) {
	tbl := d.allocByID[chip]
	if id < 0 || id >= len(tbl) || d.allocSeen[chip][id] != d.allocTick {
		return core.Allocation{}, false
	}
	return tbl[id], true
}

// decide runs (or skips) one app's decision. Called only by the app's
// tick worker.
func (d *Daemon) decide(a *app, al core.Allocation, hasAlloc bool) {
	// Load the quiescence inputs before stepping: anything that moves
	// after these reads re-triggers a step next tick, never silently
	// extends a skip.
	goalEpoch := a.goalEpoch.Load()
	beats := a.mon.Count()
	if a.partition() == nil && a.stepped && !a.steppedErrored &&
		beats == a.steppedBeats && goalEpoch == a.steppedGoalEpoch &&
		(!hasAlloc || (al.Units == a.steppedUnits && al.Share == a.steppedShare)) {
		// Quiescent: hold the standing decision. Stepping an idle app
		// would feed the controller a zero-rate interval artifact and
		// wind it up; MarkIdle keeps the runtime's observation interval
		// current so the wake-up step measures only the period in which
		// beats actually reappeared, not the whole gap. Refresh the
		// allocation view (Demand/GoalMet can move even when Units/Share
		// do not).
		a.rt.MarkIdle()
		if hasAlloc {
			a.mu.Lock()
			a.alloc = al
			a.mu.Unlock()
		}
		return
	}
	dec, err := a.rt.Step()
	a.stepped = true
	a.steppedErrored = err != nil
	a.steppedBeats = beats
	a.steppedGoalEpoch = goalEpoch
	if hasAlloc {
		a.steppedUnits, a.steppedShare = al.Units, al.Share
	}
	a.mu.Lock()
	if err != nil {
		a.decisionErr = err.Error()
	} else {
		a.decision = dec
		a.hasDecision = true
		a.decisionErr = ""
		d.decisions.Add(1)
	}
	if hasAlloc {
		a.alloc = al
	}
	a.mu.Unlock()
	if a.partition() != nil && err == nil {
		// Slices(1) yields fractions of the next interval; the next
		// tick scales them by the real elapsed time.
		a.pending = dec.Slices(1)
		a.settle = settleConfig(dec)
	}
}

// Start launches the ODA loop. It returns immediately; Stop shuts the
// loop down and waits for it to exit.
func (d *Daemon) Start() {
	d.running.Store(true)
	go func() {
		defer close(d.done)
		ticker := time.NewTicker(d.cfg.Period)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				d.Tick()
			}
		}
	}()
}

// Stop halts the ODA loop, waiting for an in-flight tick to finish.
// Safe to call more than once, and before Start (it then only marks
// the daemon stopped). Close additionally drains the journal.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	if d.running.Load() {
		<-d.done
	}
}

// Status reports one application's serving state.
func (d *Daemon) Status(name string) (AppStatus, error) {
	a, ok := d.lookup(name)
	if !ok {
		return AppStatus{}, fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	return d.status(a), nil
}

// List reports every enrolled application, sorted by name.
func (d *Daemon) List() []AppStatus {
	snapshot := d.dir.snapshot(make([]*app, 0, d.dir.len()))
	out := make([]AppStatus, len(snapshot))
	for i, a := range snapshot {
		out[i] = d.status(a)
	}
	sortAppStatuses(out)
	return out
}

func (d *Daemon) status(a *app) AppStatus {
	obs := a.mon.Observe()
	goals := a.mon.Goals()
	st := AppStatus{
		Name:     a.name,
		Workload: a.spec.Name,
		Observation: ObservationView{
			Beats:         obs.Beats,
			WindowRate:    obs.WindowRate,
			GlobalRate:    obs.GlobalRate,
			InstantRate:   obs.InstantRate,
			WindowLatency: obs.WindowLatency,
			Distortion:    obs.Distortion,
			LastTime:      obs.LastTime,
		},
		GoalMet: a.mon.Check().AllMet(),
	}
	if g := goals.Performance; g != nil {
		st.Goal = GoalView{MinRate: g.MinRate, MaxRate: g.MaxRate}
	}
	if part := a.partition(); part != nil {
		st.Chip = d.chipView(a, part)
	}
	a.mu.Lock()
	st.EnrolledAt = a.enrolledAt
	st.Cores = AllocationView{
		Units:   a.alloc.Units,
		Demand:  a.alloc.Demand,
		Share:   a.alloc.Share,
		GoalFit: a.alloc.GoalMet,
	}
	st.DecisionErr = a.decisionErr
	if st.Chip != nil {
		st.Chip.ActuationErr = a.actErr
	}
	if a.hasDecision {
		// Capture the runtime alongside the decision: a migration swaps
		// a.rt under this mutex, and the decision must be rendered against
		// the space it was decided in.
		dec, rt := a.decision, a.rt
		a.mu.Unlock()
		v := decisionView(dec, rt.Space())
		st.Decision = &v
		return st
	}
	a.mu.Unlock()
	return st
}

// decisionView renders a core.Decision with actuator settings resolved
// to their human-readable labels.
func decisionView(dec core.Decision, space *actuator.Space) DecisionView {
	label := func(cfg actuator.Config) map[string]string {
		out := make(map[string]string, len(space.Acts))
		for i, act := range space.Acts {
			if i < len(cfg) && cfg[i] >= 0 && cfg[i] < len(act.Settings) {
				out[act.Name] = act.Settings[cfg[i]].Label
			}
		}
		return out
	}
	return DecisionView{
		Time:           dec.Time,
		Goal:           dec.Goal,
		Observed:       dec.Observed,
		BaseEstimate:   dec.BaseEstimate,
		TargetSpeedup:  dec.TargetSpeedup,
		HiFrac:         dec.HiFrac,
		PredictedPower: dec.PredictedPower,
		LoConfig:       label(dec.LoCfg),
		HiConfig:       label(dec.HiCfg),
	}
}

// chipView renders one chip-backed app's hardware state for the wire.
// The caller passes the partition it already loaded so the view is
// internally consistent even while a migration rebinds the app.
func (d *Daemon) chipView(a *app, part *angstrom.Partition) *ChipView {
	s := part.Sense()
	cfg := part.Config()
	in := part.Interference()
	vf := d.cfg.Chip.Params.VF[cfg.VF]
	return &ChipView{
		Chip:      a.chip,
		Cores:     cfg.Cores,
		CacheKB:   cfg.CacheKB,
		VF:        fmt.Sprintf("%.1fV/%.0fMHz", vf.Volts, vf.FHz/1e6),
		TimeShare: part.Share(),
		IPS:       s.IPS,
		PowerW:    s.PowerW,
		StallFrac: s.StallFrac,
		HeartRate: s.HeartRate,
		EnergyJ:   s.EnergyJ,
		Slowdown:  in.Slowdown,
		MemRho:    in.MemRho,
		NoCRho:    in.NoCRho,
	}
}

// ChipStatus reports the shared chip's ledger for a single-die daemon,
// or ok=false when the daemon is not chip-backed or runs more than one
// die (clients of a fleet must use ChipStatuses — the legacy view would
// silently hide every other die).
func (d *Daemon) ChipStatus() (ChipStatusResponse, bool) {
	if d.fleet == nil || d.fleet.Chips() != 1 {
		return ChipStatusResponse{}, false
	}
	return d.chipStatusAt(0), true
}

// ChipStatuses reports every die's ledger, in die order (nil when the
// daemon is not chip-backed).
func (d *Daemon) ChipStatuses() []ChipStatusResponse {
	if d.fleet == nil {
		return nil
	}
	out := make([]ChipStatusResponse, d.fleet.Chips())
	for i := range out {
		out[i] = d.chipStatusAt(i)
	}
	return out
}

func (d *Daemon) chipStatusAt(i int) ChipStatusResponse {
	sc := d.fleet.Chip(i)
	parts, used := sc.Usage()
	c := sc.Contention()
	return ChipStatusResponse{
		Chip:              i,
		Tiles:             sc.Tiles(),
		Partitions:        parts,
		CoreEquivalents:   used,
		PowerW:            sc.TotalPowerW(),
		PowerBudgetW:      d.cfg.Chip.PowerBudgetW,
		UncoreW:           d.cfg.Chip.Params.UncoreW,
		MemBandwidthBps:   c.MemCapacityBps,
		MemDemandBps:      c.MemDemandBps,
		MemRho:            c.MemRho,
		NoCRho:            c.NoCRho,
		MemBandwidthScale: sc.MemBandwidthScale(),
		LedgerFaults:      sc.LedgerFaults(),
	}
}

// ShardBeats reports each directory shard's client-ingested beat count
// (JSON and binary wire alike; chip-emitted beats are not client
// ingestion). Under concurrent ingestion each entry is an independent
// atomic load; once writers have flushed their deltas and stopped,
// the slice sums exactly to Stats().Beats — the reconciliation the
// churn race test enforces against per-beat ground truth.
func (d *Daemon) ShardBeats() []uint64 {
	return d.dir.ingestTotals(make([]uint64, 0, len(d.dir.shards)))
}

// Stats reports daemon-wide counters.
func (d *Daemon) Stats() StatsResponse {
	st := StatsResponse{
		Apps:             d.dir.len(),
		ChipApps:         int(d.chipCount.Load()),
		Cores:            d.cfg.Cores,
		Shards:           len(d.dir.shards),
		Migrations:       d.migrations.Load(),
		Ticks:            d.ticks.Load(),
		Beats:            d.beats.Load(),
		Decisions:        d.decisions.Load(),
		Evicted:          d.evicted.Load(),
		WireConns:        int(d.wireConns.Load()),
		WireFrames:       d.wireFrames.Load(),
		ClockSeconds:     d.clock.Now(),
		UptimeSeconds:    time.Since(d.started).Seconds(),
		PeriodSeconds:    d.cfg.Period.Seconds(),
		Accelerated:      d.simClock != nil,
		PowerOvercommitW: math.Float64frombits(d.powerOvercommit.Load()),
	}
	if d.fleet != nil {
		st.Chips = d.fleet.Chips()
	}
	if jd := d.jd; jd != nil {
		js := &JournalStats{
			SnapshotSeq: jd.snapSeq.Load(),
			Degraded:    jd.degraded.Load(),
			Error:       jd.reason(),
		}
		if jd.w != nil {
			js.Records = jd.w.Seq()
		}
		st.Journal = js
	}
	return st
}

// Package server runs the SEEC observe–decide–act loop as a long-lived
// concurrent service: many applications enroll through an HTTP/JSON API,
// POST heartbeats (batched) as they make progress, and read back the
// runtime's latest Decision and core allocation. This is the paper's
// §3.1/§3.3 machinery lifted from a single simulated experiment to a
// daemon — one heartbeat.Monitor and one core.Runtime per enrolled
// application, plus core.Manager water-filling arbitration over a shared
// core pool, ticking continuously on a wall clock (or an accelerated
// simulated clock for tests and offline drivers).
//
// Concurrency model: heartbeat.Monitor and heartbeat.Registry are
// internally synchronized, so beat ingestion never serializes behind the
// decision loop. The Daemon's own mutex guards only the app directory
// and the (single-threaded) Manager; per-app decision state is guarded
// by the app's mutex. core.Runtime is touched exclusively by the tick
// goroutine.
package server

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"angstrom/internal/actuator"
	"angstrom/internal/angstrom"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// Sentinel errors the HTTP layer maps to status codes with errors.Is.
var (
	// ErrNotEnrolled marks requests naming an unknown application.
	ErrNotEnrolled = errors.New("not enrolled")
	// ErrDuplicate marks an enrollment under a name already in use.
	ErrDuplicate = errors.New("already enrolled")
	// ErrPoolExhausted marks enrollment beyond one app per pool core.
	ErrPoolExhausted = errors.New("core pool exhausted")
)

// MaxBeatBatch bounds one BeatRequest's count: large enough for any
// sane batching interval, small enough that a single request cannot
// monopolize the daemon.
const MaxBeatBatch = 10000

// Config tunes the daemon. Zero fields select documented defaults.
type Config struct {
	// Cores is the shared resource pool the Manager water-fills across
	// enrolled applications (default 1024). Enrollment beyond one app per
	// core is refused, exactly like the in-simulation Manager, unless
	// Oversubscribe is set.
	Cores int
	// Period is the decision period of the ODA loop (default 100ms).
	Period time.Duration
	// Accel, when positive, replaces the wall clock with an accelerated
	// simulated clock that advances Accel seconds per tick. Zero (the
	// default) serves in real time.
	Accel float64
	// Window is the default heartbeat averaging window in beats when an
	// enrollment does not specify one (default heartbeat.DefaultWindow).
	Window int
	// Oversubscribe admits fleets larger than the core pool: surplus
	// applications time-share units (fractional Allocation.Share)
	// instead of being refused at enrollment.
	Oversubscribe bool
	// Chip, when non-nil, turns on chip-backed serving: every enrolled
	// application is bound to a partition of one shared angstrom chip
	// and actuated through real hardware knobs (cores, L2, DVFS)
	// instead of an advisory ladder.
	Chip *ChipConfig
}

func (c *Config) fill() {
	if c.Cores == 0 {
		c.Cores = 1024
	}
	if c.Period == 0 {
		c.Period = 100 * time.Millisecond
	}
	if c.Window == 0 {
		c.Window = heartbeat.DefaultWindow
	}
	if c.Chip != nil {
		c.Chip.fill(c.Cores)
	}
}

// app is one enrolled application's serving state.
type app struct {
	name string
	spec workload.Spec
	mon  *heartbeat.Monitor
	rt   *core.Runtime // stepped only by the tick goroutine

	// Chip-backed state (nil/zero for advisory apps). part is the app's
	// slice of the shared chip; units mirrors the manager's latest unit
	// grant for the core-knob clamp; pending is the previous decision's
	// schedule, executed by the next tick; settle is the schedule's
	// duration-weighted configuration the knobs are parked at between
	// intervals (tick goroutine only).
	part       *angstrom.Partition
	units      atomic.Int64
	pending    []core.Slice
	settle     actuator.Config
	nomActiveW float64 // active watts at the nominal configuration
	minPowerX  float64 // cheapest power multiplier in the action space
	lastCapX   float64 // last applied power cap (tick goroutine only)

	mu          sync.Mutex
	decision    core.Decision
	hasDecision bool
	decisionErr string
	actErr      string // last chip actuation error ("" when clean)
	alloc       core.Allocation
	enrolledAt  sim.Time
}

// allocUnits reports the manager's current unit grant (the core-knob
// clamp reads it from the actuation path).
func (a *app) allocUnits() int { return int(a.units.Load()) }

// Daemon is the multi-application serving runtime.
type Daemon struct {
	cfg      Config
	clock    sim.Nower
	simClock *AtomicClock // non-nil iff Accel > 0

	reg  *heartbeat.Registry
	chip *angstrom.SharedChip // non-nil iff cfg.Chip != nil

	mu   sync.RWMutex
	apps map[string]*app
	mgr  *core.Manager

	ticks     atomic.Uint64
	beats     atomic.Uint64
	decisions atomic.Uint64
	// powerOvercommit is the float64 bits of the watts by which the sum
	// of floored per-app power caps exceeds the chip budget (0 when the
	// budget is satisfiable). Written by the tick goroutine, read by
	// Stats.
	powerOvercommit atomic.Uint64
	started         time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewDaemon builds a daemon; call Start to begin ticking.
func NewDaemon(cfg Config) (*Daemon, error) {
	cfg.fill()
	if cfg.Cores < 1 {
		return nil, fmt.Errorf("server: %d cores", cfg.Cores)
	}
	if cfg.Window < 2 {
		return nil, fmt.Errorf("server: window %d too small (need >= 2)", cfg.Window)
	}
	d := &Daemon{
		cfg:     cfg,
		reg:     heartbeat.NewRegistry(),
		apps:    make(map[string]*app),
		started: time.Now(),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.Accel > 0 {
		d.simClock = NewAtomicClock(0)
		d.clock = d.simClock
	} else {
		d.clock = NewWallClock()
	}
	var err error
	d.mgr, err = core.NewManager(d.clock, cfg.Cores)
	if err != nil {
		return nil, err
	}
	d.mgr.SetOversubscription(cfg.Oversubscribe)
	if cfg.Chip != nil {
		if err := cfg.Chip.validate(); err != nil {
			return nil, err
		}
		d.chip, err = angstrom.NewSharedChip(*cfg.Chip.Params, cfg.Chip.Tiles)
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Registry exposes the shared application directory (observer side).
func (d *Daemon) Registry() *heartbeat.Registry { return d.reg }

// Clock exposes the daemon's clock (read-only).
func (d *Daemon) Clock() sim.Nower { return d.clock }

// buildSpace builds the app's advisory action space: a thread-count
// ladder whose speedups come from the workload's declared Amdahl curve
// (power scales with active cores) crossed with a DVFS-like frequency
// ladder (power ~ f³). The daemon decides a rung; the application reads
// it back and actuates on its side.
func buildSpace(spec workload.Spec) (*actuator.Space, error) {
	threads := []int{1, 2, 4, 8, 16}
	tLabels := make([]string, len(threads))
	tSpeed := make([]float64, len(threads))
	tPower := make([]float64, len(threads))
	for i, t := range threads {
		tLabels[i] = fmt.Sprintf("%d threads", t)
		tSpeed[i] = spec.ParallelSpeedup(t)
		tPower[i] = float64(t)
	}
	threadsAct, err := actuator.NewLadder("threads", tLabels, tSpeed, tPower)
	if err != nil {
		return nil, err
	}
	freqs := []float64{0.6, 0.8, 1.0, 1.2}
	fLabels := make([]string, len(freqs))
	fPower := make([]float64, len(freqs))
	for i, f := range freqs {
		fLabels[i] = fmt.Sprintf("%.1fx clock", f)
		fPower[i] = f * f * f
	}
	dvfsAct, err := actuator.NewLadder("dvfs", fLabels, freqs, fPower)
	if err != nil {
		return nil, err
	}
	return actuator.NewSpace(threadsAct, dvfsAct)
}

func validGoal(minRate, maxRate float64) error {
	if minRate <= 0 {
		return fmt.Errorf("server: min_rate %g must be positive", minRate)
	}
	if maxRate != 0 && maxRate < minRate {
		return fmt.Errorf("server: inverted rate band [%g, %g]", minRate, maxRate)
	}
	return nil
}

// Enroll registers an application and starts controlling it on the next
// tick. The request must carry a performance goal: a goalless app would
// stall both decision layers (core.Runtime and core.Manager refuse to
// step without one). In chip-backed mode the application is bound to a
// partition of the shared chip unless it asks for advisory mode.
func (d *Daemon) Enroll(req EnrollRequest) error {
	// The name is an URL path segment and the registry key; accept only
	// names that round-trip unchanged (no whitespace, no separators) so
	// the client's name and the enrolled name can never diverge.
	name := req.Name
	if name == "" || name != strings.TrimSpace(name) || strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("server: invalid app name %q", req.Name)
	}
	if err := validGoal(req.MinRate, req.MaxRate); err != nil {
		return err
	}
	chipBacked := false
	switch req.Mode {
	case "", ModeDefault:
		chipBacked = d.chip != nil
	case ModeChip:
		if d.chip == nil {
			return fmt.Errorf("server: chip mode not enabled on this daemon")
		}
		chipBacked = true
	case ModeAdvisory:
	default:
		return fmt.Errorf("server: unknown mode %q", req.Mode)
	}
	wl := req.Workload
	if wl == "" {
		wl = "barnes"
	}
	spec, err := workload.ByName(wl)
	if err != nil {
		return err
	}
	window := req.Window
	if window == 0 {
		window = d.cfg.Window
	}
	if window < 2 {
		return fmt.Errorf("server: window %d too small (need >= 2)", window)
	}

	mon := heartbeat.New(d.clock, heartbeat.WithWindow(window))
	mon.SetPerformanceGoal(req.MinRate, req.MaxRate)
	a := &app{name: name, spec: spec, mon: mon, enrolledAt: d.clock.Now()}
	a.units.Store(1)
	a.alloc = core.Allocation{App: name, Units: 1, Share: 1}

	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.apps[name]; dup {
		return fmt.Errorf("server: %q %w", name, ErrDuplicate)
	}
	if !d.cfg.Oversubscribe && d.mgr.Apps() >= d.cfg.Cores {
		return fmt.Errorf("server: %w (%d apps on %d cores)", ErrPoolExhausted, d.mgr.Apps(), d.cfg.Cores)
	}
	if chipBacked {
		if err := d.bindChip(a, spec); err != nil {
			return err
		}
	} else {
		space, err := buildSpace(spec)
		if err != nil {
			return err
		}
		if a.rt, err = core.New(name, d.clock, mon, space, core.Options{}); err != nil {
			return err
		}
	}
	if err := d.mgr.AddApp(name, mon, spec.ParallelSpeedup); err != nil {
		d.unbindChip(a)
		return err
	}
	if err := d.reg.Enroll(name, mon); err != nil {
		d.mgr.RemoveApp(name)
		d.unbindChip(a)
		return err
	}
	d.apps[name] = a
	return nil
}

// unbindChip releases an app's chip partition, if any. The pointer is
// left in place (the tick goroutine may hold a snapshot of the app);
// the released partition turns further actuation into clean errors.
func (d *Daemon) unbindChip(a *app) {
	if a.part != nil {
		d.chip.Release(a.name)
	}
}

// Withdraw removes an application and frees its core share.
func (d *Daemon) Withdraw(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.apps[name]
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	delete(d.apps, name)
	d.reg.Withdraw(name)
	d.mgr.RemoveApp(name)
	d.unbindChip(a)
	return nil
}

// lookup fetches an app without holding the daemon lock longer than the
// map read.
func (d *Daemon) lookup(name string) (*app, bool) {
	d.mu.RLock()
	a, ok := d.apps[name]
	d.mu.RUnlock()
	return a, ok
}

// Beat ingests count heartbeats for name, the last one carrying the
// given distortion. The monitor is internally synchronized, so beats
// from many connections interleave safely with the tick goroutine.
//
// A batch does not share one timestamp: the beats are spread evenly
// across the interval since the application's previous beat, so
// windowed rates stay unbiased even when the averaging window is
// smaller than a batch. (The very first batch has no prior reference
// and lands at the current time; clients that need exact placement send
// per-beat timestamps via BeatTimestamps.)
//
// Chip-backed applications are refused: their partition is the beat
// source, and a client beat stamped at wall-clock time would drag the
// monitor ahead of the partition's execution frontier and corrupt the
// controller's signal.
func (d *Daemon) Beat(name string, count int, distortion float64) error {
	if count < 1 || count > MaxBeatBatch {
		return fmt.Errorf("server: beat count %d outside [1, %d]", count, MaxBeatBatch)
	}
	a, ok := d.lookup(name)
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	if a.part != nil {
		return fmt.Errorf("server: %q is chip-backed; its beats are chip-emitted", name)
	}
	now := d.clock.Now()
	last := a.mon.LastTime()
	if count == 1 || last <= 0 || now <= last {
		// No interval to spread across: single beat, first-ever batch,
		// or a paused clock (accelerated daemons between ticks).
		for i := 0; i < count-1; i++ {
			a.mon.BeatAt(now)
		}
		d.finishBatch(a, now, distortion)
	} else {
		step := (now - last) / float64(count)
		for i := 1; i < count; i++ {
			a.mon.BeatAt(last + step*float64(i))
		}
		d.finishBatch(a, now, distortion)
	}
	d.beats.Add(uint64(count))
	return nil
}

// finishBatch emits a batch's final beat at t with its distortion.
func (d *Daemon) finishBatch(a *app, t sim.Time, distortion float64) {
	if distortion != 0 {
		a.mon.BeatWithAccuracyAt(t, distortion)
	} else {
		a.mon.BeatAt(t)
	}
}

// BeatTimestamps ingests a batch whose per-beat timestamps the client
// supplied. The timestamps may use any epoch (a client monotonic clock,
// Unix seconds): only their spacing is used — the batch is shifted so
// its last beat lands at the daemon's current time, which makes the
// path immune to client/server clock skew. Timestamps must be
// non-decreasing; beats that would land before the application's
// previous beat are clamped to it by the monitor.
func (d *Daemon) BeatTimestamps(name string, ts []float64, distortion float64) error {
	if len(ts) < 1 || len(ts) > MaxBeatBatch {
		return fmt.Errorf("server: beat count %d outside [1, %d]", len(ts), MaxBeatBatch)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return fmt.Errorf("server: timestamps decrease at index %d (%g after %g)", i, ts[i], ts[i-1])
		}
	}
	a, ok := d.lookup(name)
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	if a.part != nil {
		return fmt.Errorf("server: %q is chip-backed; its beats are chip-emitted", name)
	}
	now := d.clock.Now()
	shift := now - ts[len(ts)-1]
	for _, t := range ts[:len(ts)-1] {
		a.mon.BeatAt(t + shift)
	}
	d.finishBatch(a, now, distortion)
	d.beats.Add(uint64(len(ts)))
	return nil
}

// SetGoal replaces the application's performance goal. Chip-backed apps
// under a power budget see their budget share re-derived on the next
// tick.
func (d *Daemon) SetGoal(name string, minRate, maxRate float64) error {
	if err := validGoal(minRate, maxRate); err != nil {
		return err
	}
	a, ok := d.lookup(name)
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	a.mon.SetPerformanceGoal(minRate, maxRate)
	return nil
}

// Tick runs one decision period for every enrolled application: advance
// the accelerated clock (if any), execute chip-backed apps over the
// elapsed interval (emitting their heartbeats), arbitrate shared cores,
// then step each app's SEEC runtime and queue its schedule for the next
// interval. Start runs this on a timer; accelerated drivers and
// benchmarks may call it directly instead (never concurrently with
// Start).
func (d *Daemon) Tick() {
	if d.simClock != nil {
		d.simClock.Advance(d.cfg.Accel)
	}
	now := d.clock.Now()

	// Re-price cross-partition contention before executing the interval:
	// this tick's Advance (and every Sense the controllers read) runs at
	// the degradation implied by the fleet's current configurations.
	if d.chip != nil {
		d.chip.UpdateContention()
	}

	d.mu.RLock()
	snapshot := make([]*app, 0, len(d.apps))
	for _, a := range d.apps {
		snapshot = append(snapshot, a)
	}
	d.mu.RUnlock()

	// Act + observe: run every chip partition up to `now` under the
	// previous decision's schedule, so the heartbeats the manager and
	// controllers are about to read reflect this interval's execution.
	var chipApps []*app
	for _, a := range snapshot {
		if a.part == nil {
			continue
		}
		if cur, ok := d.lookup(a.name); !ok || cur != a {
			continue // withdrawn since the snapshot; partition released
		}
		chipApps = append(chipApps, a)
		d.runChipInterval(a, now)
	}

	d.mu.Lock()
	// Feed each chip app's measured contention factor to the manager so
	// water-filling provisions for contended throughput.
	for _, a := range chipApps {
		d.mgr.SetInterference(a.name, a.part.Interference().Slowdown)
	}
	var allocs []core.Allocation
	if d.mgr.Apps() > 0 {
		var err error
		if allocs, err = d.mgr.Step(); err != nil {
			allocs = nil
		}
	}
	byName := make(map[string]core.Allocation, len(allocs))
	for _, al := range allocs {
		byName[al.App] = al
	}

	// Apply the manager's time shares to chip partitions, shrinks first
	// so the grows always find the freed core-equivalents in the ledger.
	// Still under d.mu: Enroll's makeRoom also shrinks shares (to carve
	// a slot for a newcomer), and a concurrent grow pass working from
	// pre-shrink values would undo it and spuriously refuse admission.
	for pass := 0; pass < 2; pass++ {
		for _, a := range chipApps {
			al, ok := byName[a.name]
			if !ok || al.Share <= 0 {
				continue
			}
			cur := a.part.Share()
			if (pass == 0 && al.Share < cur) || (pass == 1 && al.Share > cur) {
				_ = a.part.SetShare(al.Share) // transient refusals heal next tick
			}
		}
	}
	d.mu.Unlock()

	d.rebalancePowerCaps(chipApps) // no-op without a budget; cheap when caps are stable

	for _, a := range snapshot {
		// Skip apps withdrawn since the snapshot: stepping them would
		// count decisions for (and actuate) an app no longer enrolled.
		if cur, ok := d.lookup(a.name); !ok || cur != a {
			continue
		}
		al, hasAlloc := byName[a.name]
		if hasAlloc {
			a.units.Store(int64(al.Units))
		}
		dec, err := a.rt.Step()
		a.mu.Lock()
		if err != nil {
			a.decisionErr = err.Error()
		} else {
			a.decision = dec
			a.hasDecision = true
			a.decisionErr = ""
			d.decisions.Add(1)
		}
		if hasAlloc {
			a.alloc = al
		}
		a.mu.Unlock()
		if a.part != nil && err == nil {
			// Slices(1) yields fractions of the next interval; the next
			// tick scales them by the real elapsed time.
			a.pending = dec.Slices(1)
			a.settle = settleConfig(dec)
		}
	}
	d.ticks.Add(1)
}

// Start launches the ODA loop. It returns immediately; Stop shuts the
// loop down and waits for it to exit.
func (d *Daemon) Start() {
	go func() {
		defer close(d.done)
		ticker := time.NewTicker(d.cfg.Period)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				d.Tick()
			}
		}
	}()
}

// Stop halts the ODA loop. Safe to call more than once.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// Status reports one application's serving state.
func (d *Daemon) Status(name string) (AppStatus, error) {
	a, ok := d.lookup(name)
	if !ok {
		return AppStatus{}, fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	return d.status(a), nil
}

// List reports every enrolled application, sorted by name.
func (d *Daemon) List() []AppStatus {
	d.mu.RLock()
	snapshot := make([]*app, 0, len(d.apps))
	for _, a := range d.apps {
		snapshot = append(snapshot, a)
	}
	d.mu.RUnlock()
	out := make([]AppStatus, len(snapshot))
	for i, a := range snapshot {
		out[i] = d.status(a)
	}
	sortAppStatuses(out)
	return out
}

func (d *Daemon) status(a *app) AppStatus {
	obs := a.mon.Observe()
	goals := a.mon.Goals()
	st := AppStatus{
		Name:     a.name,
		Workload: a.spec.Name,
		Observation: ObservationView{
			Beats:         obs.Beats,
			WindowRate:    obs.WindowRate,
			GlobalRate:    obs.GlobalRate,
			InstantRate:   obs.InstantRate,
			WindowLatency: obs.WindowLatency,
			Distortion:    obs.Distortion,
			LastTime:      obs.LastTime,
		},
		GoalMet: a.mon.Check().AllMet(),
	}
	if g := goals.Performance; g != nil {
		st.Goal = GoalView{MinRate: g.MinRate, MaxRate: g.MaxRate}
	}
	if a.part != nil {
		st.Chip = d.chipView(a)
	}
	a.mu.Lock()
	st.EnrolledAt = a.enrolledAt
	st.Cores = AllocationView{
		Units:   a.alloc.Units,
		Demand:  a.alloc.Demand,
		Share:   a.alloc.Share,
		GoalFit: a.alloc.GoalMet,
	}
	st.DecisionErr = a.decisionErr
	if a.part != nil {
		st.Chip.ActuationErr = a.actErr
	}
	if a.hasDecision {
		dec := a.decision
		a.mu.Unlock()
		v := decisionView(dec, a.rt.Space())
		st.Decision = &v
		return st
	}
	a.mu.Unlock()
	return st
}

// decisionView renders a core.Decision with actuator settings resolved
// to their human-readable labels.
func decisionView(dec core.Decision, space *actuator.Space) DecisionView {
	label := func(cfg actuator.Config) map[string]string {
		out := make(map[string]string, len(space.Acts))
		for i, act := range space.Acts {
			if i < len(cfg) && cfg[i] >= 0 && cfg[i] < len(act.Settings) {
				out[act.Name] = act.Settings[cfg[i]].Label
			}
		}
		return out
	}
	return DecisionView{
		Time:           dec.Time,
		Goal:           dec.Goal,
		Observed:       dec.Observed,
		BaseEstimate:   dec.BaseEstimate,
		TargetSpeedup:  dec.TargetSpeedup,
		HiFrac:         dec.HiFrac,
		PredictedPower: dec.PredictedPower,
		LoConfig:       label(dec.LoCfg),
		HiConfig:       label(dec.HiCfg),
	}
}

// chipView renders one chip-backed app's hardware state for the wire.
func (d *Daemon) chipView(a *app) *ChipView {
	s := a.part.Sense()
	cfg := a.part.Config()
	in := a.part.Interference()
	vf := d.cfg.Chip.Params.VF[cfg.VF]
	return &ChipView{
		Cores:     cfg.Cores,
		CacheKB:   cfg.CacheKB,
		VF:        fmt.Sprintf("%.1fV/%.0fMHz", vf.Volts, vf.FHz/1e6),
		TimeShare: a.part.Share(),
		IPS:       s.IPS,
		PowerW:    s.PowerW,
		StallFrac: s.StallFrac,
		HeartRate: s.HeartRate,
		EnergyJ:   s.EnergyJ,
		Slowdown:  in.Slowdown,
		MemRho:    in.MemRho,
		NoCRho:    in.NoCRho,
	}
}

// ChipStatus reports the shared chip's ledger, or ok=false when the
// daemon is not chip-backed.
func (d *Daemon) ChipStatus() (ChipStatusResponse, bool) {
	if d.chip == nil {
		return ChipStatusResponse{}, false
	}
	parts, used := d.chip.Usage()
	c := d.chip.Contention()
	return ChipStatusResponse{
		Tiles:           d.chip.Tiles(),
		Partitions:      parts,
		CoreEquivalents: used,
		PowerW:          d.chip.TotalPowerW(),
		PowerBudgetW:    d.cfg.Chip.PowerBudgetW,
		UncoreW:         d.cfg.Chip.Params.UncoreW,
		MemBandwidthBps: c.MemCapacityBps,
		MemDemandBps:    c.MemDemandBps,
		MemRho:          c.MemRho,
		NoCRho:          c.NoCRho,
		LedgerFaults:    d.chip.LedgerFaults(),
	}, true
}

// Stats reports daemon-wide counters.
func (d *Daemon) Stats() StatsResponse {
	d.mu.RLock()
	apps := len(d.apps)
	chipApps := 0
	for _, a := range d.apps {
		if a.part != nil {
			chipApps++
		}
	}
	d.mu.RUnlock()
	return StatsResponse{
		Apps:             apps,
		ChipApps:         chipApps,
		Cores:            d.cfg.Cores,
		Ticks:            d.ticks.Load(),
		Beats:            d.beats.Load(),
		Decisions:        d.decisions.Load(),
		ClockSeconds:     d.clock.Now(),
		UptimeSeconds:    time.Since(d.started).Seconds(),
		PeriodSeconds:    d.cfg.Period.Seconds(),
		Accelerated:      d.simClock != nil,
		PowerOvercommitW: math.Float64frombits(d.powerOvercommit.Load()),
	}
}

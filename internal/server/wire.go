package server

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math"
	"net"
	"sync"

	"angstrom/internal/heartbeat"
	"angstrom/internal/journal"
)

// The binary beat wire protocol: the daemon's high-rate ingestion path.
//
// HTTP/JSON tops out around 40k beats/s per core — the encode/decode
// tax dominates long before the monitor rings do — so high-rate clients
// speak a compact binary protocol over one persistent TCP connection:
// length-prefixed CRC-framed batch frames, identical in shape to the
// journal's WAL frames ([len u32 LE][crc32 u32 LE][payload], CRC-IEEE
// over the length bytes then the payload), decoded into reusable
// per-connection buffers and written into the per-shard heartbeat rings
// through the same ingestSpread/ingestShifted helpers as the JSON API.
// Control plane stays JSON: apps enroll over HTTP, then handshake a
// conn-local handle here and stream beats against it.
//
// Frame payloads (first byte is the opcode; all integers little endian):
//
//	0x01 hello:   ver u8, nameLen u16, name            → 0x81 handle u32
//	0x02 beats:   handle u32, count u32, distortion f64
//	0x03 beatsTS: handle u32, count u32, distortion f64,
//	              count uvarints (first absolute ns, rest ns deltas)
//	0x04 flush:   (empty)                              → 0x84 total u64
//	0xFF error:   msgLen u16, message — sent by the server before close
//
// Beat frames are deliberately unacknowledged; flush is the only
// barrier (it also publishes the connection's pending counter deltas).
// Any malformed frame or rejected batch is fail-fast: the server sends
// one error frame and closes the connection, so a client can never keep
// streaming into a poisoned session.
//
// See docs/API.md "Binary beat wire protocol" for the full contract.

const (
	// WireVersion is the protocol version carried by hello frames.
	WireVersion = 1
	// MaxWireFrame bounds one wire payload. A full MaxBeatBatch
	// timestamped batch needs at most ~10 bytes per uvarint plus the
	// 17-byte batch header — 256 KiB leaves generous slack without
	// letting a hostile length prefix balloon connection buffers.
	MaxWireFrame = 256 << 10
	// maxWireHandles bounds one connection's handle table.
	maxWireHandles = 1 << 16
	// wireFlushBeats is the per-connection delta threshold for the
	// fleet-wide beat total: one atomic add per ~4096 beats instead of
	// per batch. Flush frames and connection close publish the rest.
	wireFlushBeats = 4096
	// wireHeader mirrors the journal's frame header: u32 len + u32 CRC.
	wireHeader = 8
	// maxWireErrMsg truncates error-frame messages.
	maxWireErrMsg = 512
)

// Wire opcodes. Server→client replies set the high bit of the request
// they acknowledge; 0xFF is the terminal error frame.
const (
	wireOpHello   = 0x01
	wireOpBeats   = 0x02
	wireOpBeatsTS = 0x03
	wireOpFlush   = 0x04
	wireOpHelloOK = 0x81
	wireOpFlushOK = 0x84
	wireOpError   = 0xFF
)

// Wire protocol errors. Sentinels, not fmt.Errorf: the decode path is
// hot and annotated allocation-free, and each of these closes the
// connection anyway — the client sees the message in the error frame.
var (
	errWireFrame    = errors.New("server: malformed wire frame")
	errWireOversize = errors.New("server: wire frame exceeds MaxWireFrame")
	errWireCRC      = errors.New("server: wire frame checksum mismatch")
	errWireOpcode   = errors.New("server: unknown wire opcode")
	errWireVersion  = errors.New("server: unsupported wire protocol version")
	errWireHandle   = errors.New("server: unknown wire handle")
	errWireCount    = errors.New("server: wire beat count outside batch bounds")
	errWireVarint   = errors.New("server: malformed wire timestamp varint")
	errWireOverflow = errors.New("server: wire timestamp overflows uint64 nanoseconds")
	errWireTrailing = errors.New("server: trailing bytes after wire batch")
	errWireHandles  = errors.New("server: wire handle table full")
)

// WireServer accepts binary beat-protocol connections for a Daemon.
// One goroutine per connection; Close stops the accept loop, closes
// every live connection, and waits for the handlers to drain (flushing
// their pending counter deltas).
type WireServer struct {
	d  *Daemon
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewWireServer wraps ln; call Serve to begin accepting.
func NewWireServer(d *Daemon, ln net.Listener) *WireServer {
	return &WireServer{d: d, ln: ln, conns: make(map[net.Conn]struct{})}
}

// Addr reports the listener's address.
func (ws *WireServer) Addr() net.Addr { return ws.ln.Addr() }

// Serve accepts connections until Close (returning nil) or a listener
// error (returned).
func (ws *WireServer) Serve() error {
	for {
		c, err := ws.ln.Accept()
		if err != nil {
			ws.mu.Lock()
			closed := ws.closed
			ws.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		ws.mu.Lock()
		if ws.closed {
			ws.mu.Unlock()
			c.Close()
			return nil
		}
		ws.conns[c] = struct{}{}
		ws.wg.Add(1)
		ws.mu.Unlock()
		go func() {
			defer ws.wg.Done()
			ws.serveConn(c)
			ws.mu.Lock()
			delete(ws.conns, c)
			ws.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes live connections, and waits for their
// handlers (and final counter flushes) to finish.
func (ws *WireServer) Close() error {
	ws.mu.Lock()
	if ws.closed {
		ws.mu.Unlock()
		return nil
	}
	ws.closed = true
	for c := range ws.conns {
		c.Close()
	}
	ws.mu.Unlock()
	err := ws.ln.Close()
	ws.wg.Wait()
	return err
}

func (ws *WireServer) serveConn(c net.Conn) {
	d := ws.d
	d.wireConns.Add(1)
	defer d.wireConns.Add(-1)
	wc := newWireConn(d, c, c)
	defer c.Close()
	// Publish whatever the connection still holds, however it ends:
	// the fleet total must reconcile once the conn is gone.
	defer wc.flushCounters()
	if err := wc.run(); err != nil && err != io.EOF {
		wc.sendError(err)
	}
}

// wireConn is one connection's decoder state. All buffers are owned by
// the connection's single handler goroutine and reused frame to frame —
// the warm decode path performs no allocation (gated by
// BenchmarkBeatIngestWire). The reader and writer are interface-typed
// fields (not the net.Conn) so the fuzz harness can drive the decoder
// from a byte slice, and so the annotated hot path never converts a
// concrete type at a call site.
type wireConn struct {
	d *Daemon
	r io.Reader
	w io.Writer

	names   []string // handle → app name, conn-local, append-only
	hdr     [wireHeader]byte
	payload []byte    // reused frame payload buffer
	scratch []float64 // reused decoded-timestamp buffer
	reply   []byte    // reused framed-reply build buffer

	total   uint64          // conn-lifetime ingested beats (flush ack value)
	beatsD  heartbeat.Delta // pending beat-total delta → d.beats
	framesD heartbeat.Delta // pending frame-count delta → d.wireFrames
}

func newWireConn(d *Daemon, r io.Reader, w io.Writer) *wireConn {
	return &wireConn{
		d: d, r: r, w: w,
		beatsD:  heartbeat.Delta{C: &d.beats, FlushEvery: wireFlushBeats},
		framesD: heartbeat.Delta{C: &d.wireFrames, FlushEvery: 64},
	}
}

// run decodes and dispatches frames until the stream ends (io.EOF) or
// a frame is rejected.
func (wc *wireConn) run() error {
	for {
		p, err := wc.readFrame()
		if err != nil {
			return err
		}
		if err := wc.dispatch(p); err != nil {
			return err
		}
	}
}

// readFrame reads one journal-shaped frame into the connection's
// reused payload buffer. The returned slice is valid until the next
// call.
func (wc *wireConn) readFrame() ([]byte, error) {
	if _, err := io.ReadFull(wc.r, wc.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			// A torn header is a malformed stream, not a clean close.
			return nil, errWireFrame
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(wc.hdr[:4]))
	want := binary.LittleEndian.Uint32(wc.hdr[4:])
	if n > MaxWireFrame {
		return nil, errWireOversize
	}
	if cap(wc.payload) < n {
		wc.payload = make([]byte, n)
	}
	p := wc.payload[:n]
	if _, err := io.ReadFull(wc.r, p); err != nil {
		return nil, errWireFrame
	}
	crc := crc32.ChecksumIEEE(wc.hdr[:4])
	crc = crc32.Update(crc, crc32.IEEETable, p)
	if crc != want {
		return nil, errWireCRC
	}
	return p, nil
}

// dispatch routes one decoded payload by opcode.
//
//angstrom:hotpath
func (wc *wireConn) dispatch(p []byte) error {
	if len(p) == 0 {
		return errWireFrame
	}
	switch p[0] {
	case wireOpBeats:
		return wc.beats(p)
	case wireOpBeatsTS:
		return wc.beatsTS(p)
	case wireOpHello:
		return wc.hello(p)
	case wireOpFlush:
		return wc.flush()
	default:
		return errWireOpcode
	}
}

// beats handles a server-spread batch frame — the protocol's hottest
// opcode: three fixed-field reads, handle resolution, then the same
// shared ingestion helper the JSON path uses.
//
//angstrom:hotpath
func (wc *wireConn) beats(p []byte) error {
	if len(p) != 17 {
		return errWireFrame
	}
	handle := binary.LittleEndian.Uint32(p[1:5])
	count := int(binary.LittleEndian.Uint32(p[5:9]))
	distortion := math.Float64frombits(binary.LittleEndian.Uint64(p[9:17]))
	if uint64(handle) >= uint64(len(wc.names)) {
		return errWireHandle
	}
	a, err := wc.d.beatTarget(wc.names[handle], count, distortion)
	if err != nil {
		return err
	}
	wc.d.ingestSpread(a, count, distortion)
	wc.account(uint64(count))
	return nil
}

// beatsTS handles a timestamped batch frame: count uvarints on a
// nanosecond grid (first absolute, rest deltas), decoded into the
// connection's reused scratch buffer and shifted onto the daemon clock
// by the shared ingestion helper. Unsigned deltas make the sequence
// non-decreasing and finite by construction — the admission rules the
// JSON path enforces by validation.
//
//angstrom:hotpath
func (wc *wireConn) beatsTS(p []byte) error {
	if len(p) < 18 {
		return errWireFrame
	}
	handle := binary.LittleEndian.Uint32(p[1:5])
	count := int(binary.LittleEndian.Uint32(p[5:9]))
	distortion := math.Float64frombits(binary.LittleEndian.Uint64(p[9:17]))
	if uint64(handle) >= uint64(len(wc.names)) {
		return errWireHandle
	}
	if count < 1 || count > MaxBeatBatch {
		return errWireCount
	}
	if count > len(p)-17 {
		// Each timestamp takes at least one uvarint byte; reject before
		// sizing the scratch buffer off a hostile count.
		return errWireFrame
	}
	if cap(wc.scratch) < count {
		//lint:allow hotpath cold branch: scratch grows once per connection to the largest batch seen
		wc.scratch = make([]float64, 0, count)
	}
	ts := wc.scratch[:0]
	off := 17
	var cum uint64
	for i := 0; i < count; i++ {
		v, n := binary.Uvarint(p[off:])
		if n <= 0 {
			return errWireVarint
		}
		off += n
		next := cum + v
		if next < cum {
			return errWireOverflow
		}
		cum = next
		ts = append(ts, float64(cum)/1e9)
	}
	if off != len(p) {
		return errWireTrailing
	}
	a, err := wc.d.beatTarget(wc.names[handle], count, distortion)
	if err != nil {
		return err
	}
	wc.d.ingestShifted(a, ts, distortion)
	wc.account(uint64(count))
	return nil
}

// account tallies one accepted batch into the connection's delta
// counters — the delta-then-atomic-add half of the scaling story: the
// shared fleet total sees one atomic add per flush threshold, not per
// frame.
//
//angstrom:hotpath
func (wc *wireConn) account(count uint64) {
	wc.total += count
	wc.beatsD.Add(count)
	wc.framesD.Add(1)
}

// hello registers an app name and replies with its conn-local handle.
// The app must already be enrolled (control plane is HTTP/JSON) and not
// chip-backed. Handles are sequential indices into the connection's
// name table; per-batch resolution still goes through the directory, so
// a handle for a withdrawn app fails the next batch instead of writing
// into a dead monitor.
func (wc *wireConn) hello(p []byte) error {
	if len(p) < 4 {
		return errWireFrame
	}
	if p[1] != WireVersion {
		return errWireVersion
	}
	n := int(binary.LittleEndian.Uint16(p[2:4]))
	if n == 0 || len(p) != 4+n {
		return errWireFrame
	}
	name := string(p[4:])
	if _, err := wc.d.beatTarget(name, 1, 0); err != nil {
		return err
	}
	if len(wc.names) >= maxWireHandles {
		return errWireHandles
	}
	wc.names = append(wc.names, name)
	var buf [5]byte
	buf[0] = wireOpHelloOK
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(wc.names)-1))
	return wc.writeFrame(buf[:])
}

// flush is the protocol's barrier: publish the connection's pending
// counter deltas, then ack with the conn-lifetime ingested total. When
// the client reads the ack, every prior batch on this connection is in
// the monitors and the shared counters.
func (wc *wireConn) flush() error {
	wc.flushCounters()
	var buf [9]byte
	buf[0] = wireOpFlushOK
	binary.LittleEndian.PutUint64(buf[1:], wc.total)
	return wc.writeFrame(buf[:])
}

func (wc *wireConn) flushCounters() {
	wc.beatsD.Flush()
	wc.framesD.Flush()
}

func (wc *wireConn) writeFrame(payload []byte) error {
	wc.reply = journal.AppendFrame(wc.reply[:0], payload)
	_, err := wc.w.Write(wc.reply)
	return err
}

// sendError best-effort writes the terminal error frame; the connection
// closes right after, so write failures are ignored.
func (wc *wireConn) sendError(err error) {
	msg := err.Error()
	if len(msg) > maxWireErrMsg {
		msg = msg[:maxWireErrMsg]
	}
	p := make([]byte, 3+len(msg))
	p[0] = wireOpError
	binary.LittleEndian.PutUint16(p[1:3], uint16(len(msg)))
	copy(p[3:], msg)
	_ = wc.writeFrame(p)
}

package server

import (
	"fmt"
	"math"

	"angstrom/internal/angstrom"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// This file is the federation layer's serving-side policy: where a new
// enrollment lands in a multi-die fleet (placeChip), when and where a
// contention-saturated application moves (maybeMigrate), and the chaos
// entry point that derates one die's memory bandwidth (SaturateChip).
//
// Both decisions are pure functions of the fleet's ledger state — tile
// headroom and the last contention pass's demand aggregates — with
// index-order tie-breaks, so a journal replay that rebuilds the same
// ledgers re-derives the same placements. Their *outcomes* are what the
// journal records (an enrollment's pinned die, an opMigrate record):
// replay re-applies the outcome rather than re-running the scan, the
// same pattern evictions use, so recovery never depends on the policy
// and the policy is free to evolve.

// coreLoadWeight blends tile pressure into the placement score: rho
// dominates (the unpartitionable resources are what co-location
// poisons), core occupancy breaks near-ties toward the emptier die.
const coreLoadWeight = 0.1

// migrateHysteresis is how much a migration must improve the worse of
// the two dies involved before it fires — moves that would only shuffle
// saturation (or ping-pong comparable hogs between comparably loaded
// dies) stay put.
const migrateHysteresis = 0.05

// migrateSettleTicks is how many ticks the migration scan sits out
// after any move. A migration invalidates the moved app's decision and
// re-splits the broker budget, so the next few contention passes carry
// a transient the scan must not price as imbalance.
const migrateSettleTicks = 4

// migrateCooldownTicks is how many ticks a migrated app is ineligible
// to be picked as a victim again — roughly the horizon its controller
// needs to re-converge on the new die. Without it a persistent-scarcity
// fleet (every die contended, every tenant below the slowdown
// threshold) bounces its heaviest hogs between dies forever.
const migrateCooldownTicks = 40

// loadAvgAlpha is the per-tick EWMA weight for the smoothed per-die
// utilization the migration scan prices (~4-tick time constant, the
// same horizon as the settle window).
const loadAvgAlpha = 0.2

// migrateSaturation is the smoothed offered utilization a die must
// reach before its tenants are migration candidates. Below saturation
// the die can serve its aggregate demand — tenant slowdown reflects
// fleet-wide scarcity that no placement fixes, and because controllers
// escalate their configurations on a contended die and relax on an
// idle one, demand-chasing moves below this line oscillate forever.
const migrateSaturation = 1.0

// tickSimSeconds is the simulated-time width of one decision period:
// the accelerated clock advances Accel per tick, the wall clock one
// Period.
func (d *Daemon) tickSimSeconds() float64 {
	if d.cfg.Accel > 0 {
		return d.cfg.Accel
	}
	return d.cfg.Period.Seconds()
}

// placeChip picks the die for a new enrollment: the candidate's
// full-rate demand (base-configuration bytes/s and flit-hops/s) is
// added to each die's measured aggregate, and the die with the lowest
// predicted max(mem rho, NoC rho) — tile pressure as tie-break — wins.
// Dies without a whole free tile are skipped unless the daemon
// oversubscribes; if every die is skipped the one with the most
// fractional headroom is used (admission then decides). Called with
// d.mu held; pure function of ledger state, die-index tie-break.
//
//angstrom:deterministic
func (d *Daemon) placeChip(spec workload.Spec) int {
	if d.fleet.Chips() == 1 {
		return 0
	}
	cc := d.cfg.Chip
	base := angstrom.Config{Cores: 1, CacheKB: cc.CacheOptionsKB[0], VF: 0}
	var memBps, flitHops float64
	if m, err := angstrom.Evaluate(*cc.Params, spec, base); err == nil {
		memBps, flitHops = m.MemBytesPerSec, m.FlitHopsPerSec
	}
	d.loadBuf = d.fleet.Loads(d.loadBuf[:0])
	best, bestScore := -1, math.Inf(1)
	fallback, fallbackFree := 0, math.Inf(-1)
	for i, l := range d.loadBuf {
		if free := l.Free(); free > fallbackFree {
			fallback, fallbackFree = i, free
		}
		if l.Free() < 1 && !d.cfg.Oversubscribe {
			continue
		}
		mem, noc := l.PredictedRho(memBps, flitHops)
		score := math.Max(mem, noc) + coreLoadWeight*l.CoreEquivalents/float64(l.Tiles)
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

// maybeMigrate runs the per-tick migration scan: if a *saturated* die
// (smoothed offered utilization at or past migrateSaturation) has
// degraded a tenant past the configured slowdown threshold, move the
// heaviest degraded contributor to the die where its demand is
// predicted to fit best — provided the move improves the worse of the
// two dies involved by at least the hysteresis. Comparing the
// post-move pair (source without the victim, target with it) against
// the pre-move source keeps the policy monotone: a move that merely
// swaps which die is saturated never qualifies. The saturation
// precondition, the smoothed load signal, and the two cooldowns
// (fleet-wide settle window, per-app re-migration cooldown) all damp
// the same failure mode from different angles: offered demand is
// elastic — controllers escalate on a contended die and relax on an
// idle one — so chasing sub-saturation imbalance bounces hogs between
// dies forever without making anyone faster. At most one migration per
// tick: each move invalidates every ledger the scan priced, and the
// next tick re-scans with fresh contention.
//
// Called from the tick goroutine after the tick's opTick record and
// before eviction. The move itself is journaled as its own record
// (commit-before-mutate), so crash recovery replays the outcome at the
// exact point in the mutation order it happened live.
//
//angstrom:journaled writer
func (d *Daemon) maybeMigrate(now sim.Time) {
	if d.fleet == nil || d.fleet.Chips() < 2 {
		return
	}
	thr := d.cfg.Chip.MigrateSlowdown
	if thr <= 0 {
		return
	}
	dt := d.tickSimSeconds()
	if d.lastMigrate > 0 && now-d.lastMigrate < sim.Time(migrateSettleTicks)*sim.Time(dt) {
		return // let the last move's re-decision transient settle first
	}
	// Victim: among apps on a saturated die degraded past the slowdown
	// threshold, the one whose share-scaled memory demand is largest —
	// moving the heaviest contributor relieves its die the most. Apps
	// still inside their post-migration cooldown are ineligible.
	// d.chipApps is this tick's name-sorted fleet, so ties resolve by
	// name.
	var victim *app
	var victimPart *angstrom.Partition
	var victimLoad float64
	for _, a := range d.chipApps {
		part := a.partition()
		if part == nil {
			continue
		}
		if math.Max(d.loadAvgMem[a.chip], d.loadAvgNoC[a.chip]) < migrateSaturation {
			continue
		}
		if a.migratedAt > 0 && now-a.migratedAt < sim.Time(migrateCooldownTicks)*sim.Time(dt) {
			continue
		}
		in := part.Interference()
		if in.Slowdown >= thr {
			continue
		}
		load := part.Metrics().MemBytesPerSec * part.Share()
		if victim == nil || load > victimLoad {
			victim, victimPart, victimLoad = a, part, load
		}
	}
	if victim == nil {
		return
	}

	from := victim.chip
	cfg := victimPart.Config()
	share := victimPart.Share()
	memBps := victimPart.Metrics().MemBytesPerSec * share
	flitHops := victimPart.Metrics().FlitHopsPerSec * share
	// Price the scan on the smoothed per-die utilization, not the last
	// contention pass: instantaneous offered demand swings tick to tick
	// as bang-bang schedules alternate configurations, and sampling one
	// die at its peak against another at its trough reads as imbalance
	// that isn't there. Capacities and tile headroom still come from the
	// live ledgers (they move in steps, not noise).
	d.loadBuf = d.fleet.Loads(d.loadBuf[:0])
	src := d.loadBuf[from]
	vMem, vNoC := 0.0, 0.0
	if src.MemCapacityBps > 0 {
		vMem = memBps / src.MemCapacityBps
	}
	if src.NoCCapacity > 0 {
		vNoC = flitHops / src.NoCCapacity
	}
	srcRho := math.Max(d.loadAvgMem[from], d.loadAvgNoC[from])
	// Source utilization after the victim departs — its demand priced at
	// this die's (possibly derated) capacity comes off the aggregate.
	srcAfter := math.Max(d.loadAvgMem[from]-vMem, d.loadAvgNoC[from]-vNoC)

	// Target: the die whose predicted utilization with the victim's
	// demand added is lowest, among dies with ledger room to re-acquire
	// the partition at its current configuration and share.
	to, toScore := -1, math.Inf(1)
	for i, l := range d.loadBuf {
		if i == from {
			continue
		}
		if l.Free() < float64(cfg.Cores)*share {
			continue
		}
		mem, noc := d.loadAvgMem[i], d.loadAvgNoC[i]
		if l.MemCapacityBps > 0 {
			mem += memBps / l.MemCapacityBps
		}
		if l.NoCCapacity > 0 {
			noc += flitHops / l.NoCCapacity
		}
		if score := math.Max(mem, noc); score < toScore {
			to, toScore = i, score
		}
	}
	if to < 0 || math.Max(toScore, srcAfter) >= srcRho-migrateHysteresis {
		return // the move wouldn't relieve the worst die; stay put
	}
	if err := d.journalCommit(record{Op: opMigrate, T: now, Name: victim.name, Chip: to}); err != nil {
		return // degraded: no move without a durable record
	}
	_ = d.applyMigration(victim.name, to, now)
}

// applyMigration moves one chip-backed application between dies: drain
// its partition from the source ledger, re-acquire on the target at the
// same configuration and time share, and re-enroll it with the target
// die's manager under its standing goal and priority. The app keeps its
// monitor (heartbeat history survives the move); controller learning
// restarts against the new die's action space, exactly as it does on a
// snapshot restore. Reached from the maybeMigrate writer live and from
// journal replay (the opMigrate record), never concurrently with a
// tick's worker phases — always downstream of a durable opMigrate, so
// it plays the writer role for the ledger mutators it drives.
//
//angstrom:journaled writer
func (d *Daemon) applyMigration(name string, to int, now sim.Time) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	a, ok := d.dir.get(name)
	if !ok {
		return fmt.Errorf("server: %q %w", name, ErrNotEnrolled)
	}
	part := a.partition()
	if part == nil {
		return fmt.Errorf("server: %q is not chip-backed", name)
	}
	if to < 0 || to >= d.fleet.Chips() || to == a.chip {
		return fmt.Errorf("server: migration of %q to chip %d invalid", name, to)
	}
	from := a.chip
	cfg := part.Config()
	share := part.Share()

	rebindMgr := func(chip int) error {
		scaling := a.spec.CachedSpeedup(d.cfg.Cores)
		shape := curveShapeFor(a.spec, d.cfg.Cores, scaling)
		mgr := d.mgrs[chip]
		if err := mgr.AddAppWithShape(name, a.mon, scaling, shape.peak, shape.unimodal); err != nil {
			return err
		}
		if a.prio > 0 {
			if err := mgr.SetPriority(name, a.prio); err != nil {
				mgr.RemoveApp(name)
				return err
			}
		}
		a.mgrID, _ = mgr.AppID(name)
		return nil
	}

	d.fleet.Chip(from).Release(name)
	d.mgrs[from].RemoveApp(name)
	a.chip = to
	if err := d.bindChipAt(a, a.spec, cfg, share, now); err != nil {
		// Roll the drain back: re-acquire on the source so the app is
		// never left partitionless. The source ledger just freed exactly
		// this reservation, so the re-bind cannot fail for space.
		a.chip = from
		if err2 := d.bindChipAt(a, a.spec, cfg, share, now); err2 != nil {
			return fmt.Errorf("server: migration of %q failed and could not re-bind source: %v (after %w)", name, err2, err)
		}
		_ = rebindMgr(from)
		return err
	}
	if err := rebindMgr(to); err != nil {
		d.fleet.Chip(to).Release(name)
		a.chip = from
		if err2 := d.bindChipAt(a, a.spec, cfg, share, now); err2 != nil {
			return fmt.Errorf("server: migration of %q failed and could not re-bind source: %v (after %w)", name, err2, err)
		}
		_ = rebindMgr(from)
		return err
	}

	// The standing decision was made against the old die's action space:
	// drop it and force a fresh step. The goal-epoch bump breaks the
	// quiescence skip even if no beat arrives before the next tick.
	a.pending = nil
	a.settle = nil
	a.stepped = false
	a.lastCapX = 0
	a.goalEpoch.Add(1)
	a.mu.Lock()
	a.hasDecision = false
	a.decisionErr = ""
	a.actErr = ""
	a.mu.Unlock()
	// Stamp both cooldowns from the record's time, so a journal replay
	// (which re-enters here with the durable T) rebuilds the exact same
	// scan eligibility the live daemon had.
	a.migratedAt = now
	d.lastMigrate = now
	d.migrations.Add(1)
	return nil
}

// Migrations reports how many inter-die moves the daemon has applied.
func (d *Daemon) Migrations() uint64 { return d.migrations.Load() }

// SaturateChip derates one die's off-chip memory bandwidth to scale
// times nominal (0 < scale <= 1; 1 restores it) — the serving-side
// fault/chaos injection the scenario harness drives to model a thermal
// throttle or failed memory channel. Journaled ahead of the apply, so
// recovery reproduces the derated fleet and the migrations it caused.
//
//angstrom:journaled writer
func (d *Daemon) SaturateChip(chip int, scale float64) error {
	if d.fleet == nil {
		return fmt.Errorf("server: chip mode not enabled on this daemon")
	}
	if chip < 0 || chip >= d.fleet.Chips() {
		return fmt.Errorf("server: chip %d outside fleet of %d", chip, d.fleet.Chips())
	}
	if !(scale > 0 && scale <= 1) {
		return fmt.Errorf("server: mem bandwidth scale %g outside (0, 1]", scale)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.journalCommit(record{Op: opChipScale, T: d.clock.Now(), Chip: chip, Scale: scale}); err != nil {
		return err
	}
	return d.applyChipScale(chip, scale)
}

// applyChipScale applies a journaled bandwidth derating (live tail of
// SaturateChip; re-entered by replay for opChipScale records — both
// paths run downstream of a durable opChipScale record).
//
//angstrom:journaled writer
func (d *Daemon) applyChipScale(chip int, scale float64) error {
	if d.fleet == nil || chip < 0 || chip >= d.fleet.Chips() {
		return fmt.Errorf("server: chip %d outside fleet", chip)
	}
	return d.fleet.Chip(chip).SetMemBandwidthScale(scale)
}

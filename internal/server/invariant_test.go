package server

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// The sharded-tick invariant harness: the daemon's determinism contract
// (the same discipline Sweep documents) says the fan-out across shards
// and tick workers is pure mechanism — for an advisory fleet the full
// serving transcript (allocations, decisions, observations) must be
// byte-identical for ANY (Shards, TickWorkers) choice, and a chip
// daemon must replay byte-identically for a fixed configuration. These
// tests drive deterministic fleet scripts and compare entire List()
// transcripts with reflect.DeepEqual.

// fleetScript drives one daemon through a fixed, fully deterministic
// enroll/beat/goal-churn/withdraw sequence and records every tick's
// full application listing.
func fleetScript(t *testing.T, cfg Config, apps, ticks int) [][]AppStatus {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	workloads := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	name := func(i int) string { return fmt.Sprintf("app-%04d", i) }
	for i := 0; i < apps; i++ {
		goal := 10 + rng.Float64()*90
		if err := d.Enroll(EnrollRequest{
			Name:     name(i),
			Workload: workloads[i%len(workloads)],
			Window:   64,
			MinRate:  goal,
			MaxRate:  goal * 1.2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var transcript [][]AppStatus
	for tick := 0; tick < ticks; tick++ {
		switch tick {
		case ticks / 3:
			// Churn: a slice of the fleet leaves...
			for i := 0; i < apps/5; i++ {
				if err := d.Withdraw(name(i * 3)); err != nil {
					t.Fatal(err)
				}
			}
		case ticks / 2:
			// ...some return under the same names, some goals move.
			for i := 0; i < apps/10; i++ {
				if err := d.Enroll(EnrollRequest{Name: name(i * 3), Workload: workloads[i%len(workloads)],
					Window: 64, MinRate: 25, MaxRate: 40}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i < apps; i += 7 {
				if _, ok := d.lookup(name(i)); ok {
					if err := d.SetGoal(name(i), 15+float64(i%30), 0); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		for i := 0; i < apps; i++ {
			if _, ok := d.lookup(name(i)); !ok {
				continue
			}
			// Deterministic, tick-varying beat counts; a third of the
			// fleet idles on any given tick to exercise quiescence skips.
			if (tick+i)%3 == 0 {
				continue
			}
			n := 1 + (tick*7+i*13)%25
			if err := d.Beat(name(i), n, 0); err != nil {
				t.Fatal(err)
			}
		}
		d.Tick()
		list := d.List()
		// Pool invariants on every tick.
		sumUnits := 0
		sumEquiv := 0.0
		for _, st := range list {
			if st.Cores.Units < 1 {
				t.Fatalf("tick %d: %s floored below 1 unit", tick, st.Name)
			}
			sumUnits += st.Cores.Units
			share := st.Cores.Share
			if share == 0 {
				share = 1
			}
			sumEquiv += float64(st.Cores.Units) * share
		}
		if len(list) <= cfg.Cores && sumUnits > cfg.Cores {
			t.Fatalf("tick %d: %d units allocated on %d cores", tick, sumUnits, cfg.Cores)
		}
		if sumEquiv > float64(cfg.Cores)+1e-6 {
			t.Fatalf("tick %d: %g core-equivalents on %d cores", tick, sumEquiv, cfg.Cores)
		}
		transcript = append(transcript, list)
	}
	return transcript
}

// diffTranscripts pinpoints the first divergence for a readable failure.
func diffTranscripts(t *testing.T, label string, want, got [][]AppStatus) {
	t.Helper()
	if reflect.DeepEqual(want, got) {
		return
	}
	for tick := range want {
		if tick >= len(got) || !reflect.DeepEqual(want[tick], got[tick]) {
			for i := range want[tick] {
				if i >= len(got[tick]) || !reflect.DeepEqual(want[tick][i], got[tick][i]) {
					t.Fatalf("%s: transcript diverges at tick %d, app %d:\n  serial:  %+v\n  sharded: %+v",
						label, tick, i, want[tick][i], got[tick][i])
				}
			}
			t.Fatalf("%s: transcript diverges at tick %d (length %d vs %d)",
				label, tick, len(want[tick]), len(got[tick]))
		}
	}
	t.Fatalf("%s: transcripts diverge (length %d vs %d)", label, len(want), len(got))
}

// The tentpole invariant: for an advisory fleet, one shard + one worker
// (the serial daemon) and any sharded/parallel layout produce
// byte-identical serving transcripts — allocations, decisions,
// observations, everything List reports.
func TestShardedTickMatchesSerial(t *testing.T) {
	base := Config{Cores: 48, Accel: 0.5, Period: time.Hour, Oversubscribe: true}
	const apps, ticks = 90, 36 // apps > cores: exercises partitionShared too

	serialCfg := base
	serialCfg.Shards, serialCfg.TickWorkers = 1, 1
	serial := fleetScript(t, serialCfg, apps, ticks)

	layouts := []struct{ shards, workers int }{
		{8, 4},
		{32, 3},
		{4, 8},
	}
	for _, l := range layouts {
		cfg := base
		cfg.Shards, cfg.TickWorkers = l.shards, l.workers
		got := fleetScript(t, cfg, apps, ticks)
		diffTranscripts(t, fmt.Sprintf("shards=%d workers=%d", l.shards, l.workers), serial, got)
	}
}

// A space-shared fleet (fewer apps than cores) must hold the same
// contract through the integral water-fill path.
func TestShardedTickMatchesSerialSpaceShared(t *testing.T) {
	base := Config{Cores: 256, Accel: 0.5, Period: time.Hour}
	const apps, ticks = 60, 30

	serialCfg := base
	serialCfg.Shards, serialCfg.TickWorkers = 1, 1
	serial := fleetScript(t, serialCfg, apps, ticks)

	cfg := base
	cfg.Shards, cfg.TickWorkers = 16, 6
	diffTranscripts(t, "space-shared shards=16 workers=6", serial, fleetScript(t, cfg, apps, ticks))
}

// chipScript drives a chip-backed daemon deterministically (chip apps
// emit their own beats, so the script only enrolls, churns, and ticks).
func chipScript(t *testing.T, cfg Config, apps, ticks int) [][]AppStatus {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	workloads := []string{"barnes", "ocean", "water"}
	name := func(i int) string { return fmt.Sprintf("chip-%03d", i) }
	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{
			Name:     name(i),
			Workload: workloads[i%len(workloads)],
			Window:   64,
			MinRate:  5 + float64(i%20),
		}); err != nil {
			t.Fatal(err)
		}
	}
	var transcript [][]AppStatus
	for tick := 0; tick < ticks; tick++ {
		if tick == ticks/2 {
			for i := 0; i < apps/6; i++ {
				if err := d.Withdraw(name(i * 4)); err != nil {
					t.Fatal(err)
				}
			}
		}
		d.Tick()
		transcript = append(transcript, d.List())
		if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
			t.Fatalf("tick %d: %d ledger faults", tick, f)
		}
		if _, used := d.fleet.Chip(0).Usage(); used > float64(d.fleet.Chip(0).Tiles())+1e-6 {
			t.Fatalf("tick %d: ledger overcommitted: %g > %d tiles", tick, used, d.fleet.Chip(0).Tiles())
		}
	}
	return transcript
}

// Chip-backed serving replays byte-identically for a fixed
// configuration: same shard count, one tick worker (knob actuation
// shares the tile ledger, so cross-shard interleaving is the one
// source of transient nondeterminism the contract excludes).
func TestChipTickDeterministicReplay(t *testing.T) {
	cfg := Config{
		Cores: 32, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Shards: 8, TickWorkers: 1,
		Chip: &ChipConfig{Tiles: 32},
	}
	const apps, ticks = 40, 24
	first := chipScript(t, cfg, apps, ticks)
	second := chipScript(t, cfg, apps, ticks)
	diffTranscripts(t, "chip replay", first, second)
}

// Satellite regression: Tick holds per-shard snapshots across the
// advance phase. Withdrawing an app in that window must neither panic
// nor release its partition's tiles twice — the ledger must account
// exactly for the survivors, with zero faults, and the withdrawn app
// must receive no further decisions.
func TestWithdrawMidTickReleasesTilesOnce(t *testing.T) {
	const tiles = 8
	d, err := NewDaemon(Config{
		Cores: tiles, Accel: 0.5, Period: time.Hour, Oversubscribe: true,
		Shards: 4, TickWorkers: 2,
		Chip: &ChipConfig{Tiles: tiles},
	})
	if err != nil {
		t.Fatal(err)
	}
	const apps = 12
	for i := 0; i < apps; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("m-%02d", i), Workload: "water", MinRate: 2}); err != nil {
			t.Fatal(err)
		}
	}
	d.Tick() // warm: schedules queued, knobs moved

	decided := d.Stats().Decisions
	_ = decided
	d.testHookAfterSnapshot = func() {
		// The snapshots now hold m-03 and m-07; withdraw them mid-tick,
		// and immediately re-enroll one name so a stale snapshot entry
		// coexists with a live successor app.
		if err := d.Withdraw("m-03"); err != nil {
			t.Error(err)
		}
		if err := d.Withdraw("m-07"); err != nil {
			t.Error(err)
		}
		if err := d.Enroll(EnrollRequest{Name: "m-07", Workload: "water", MinRate: 2}); err != nil {
			t.Error(err)
		}
	}
	d.Tick()
	d.testHookAfterSnapshot = nil

	if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after mid-tick withdraw", f)
	}
	parts, used := d.fleet.Chip(0).Usage()
	if parts != apps-1 {
		t.Fatalf("%d partitions after withdraw+re-enroll, want %d", parts, apps-1)
	}
	// The ledger must equal the survivors' exact holdings: a double
	// release would undercount, a leak would overcount.
	sum := 0.0
	for _, a := range d.dir.snapshot(nil) {
		if a.partition() != nil {
			sum += float64(a.partition().Config().Cores) * a.partition().Share()
		}
	}
	if diff := used - sum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("ledger %g != survivors' holdings %g", used, sum)
	}
	if used > tiles+1e-6 {
		t.Fatalf("ledger overcommitted: %g > %d tiles", used, tiles)
	}
	if _, err := d.Status("m-03"); err == nil {
		t.Fatal("withdrawn app still enrolled")
	}

	// Subsequent ticks keep serving the survivors cleanly.
	for i := 0; i < 4; i++ {
		d.Tick()
	}
	if f := d.fleet.Chip(0).LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after post-withdraw ticks", f)
	}
	st, err := d.Status("m-07")
	if err != nil {
		t.Fatal(err)
	}
	if st.Decision == nil {
		t.Fatal("re-enrolled app never decided")
	}
}

// Quiescent apps keep their standing decision without re-running the
// decision engine, and wake the moment any input moves: a new beat, a
// goal change, or an allocation shift.
func TestQuiescentAppsSkipDecisions(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 16, Accel: 1, Period: time.Hour, Shards: 4, TickWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := d.Enroll(EnrollRequest{Name: fmt.Sprintf("q-%d", i), MinRate: 10, MaxRate: 20}); err != nil {
			t.Fatal(err)
		}
		if err := d.Beat(fmt.Sprintf("q-%d", i), 8, 0); err != nil {
			t.Fatal(err)
		}
	}
	d.Tick()
	base := d.Stats().Decisions
	if base == 0 {
		t.Fatal("no decisions on the first tick")
	}

	// Nothing changes: decisions must not grow.
	d.Tick()
	d.Tick()
	if got := d.Stats().Decisions; got != base {
		t.Fatalf("quiescent fleet re-decided: %d -> %d", base, got)
	}
	st, err := d.Status("q-1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Decision == nil {
		t.Fatal("standing decision lost during skip")
	}

	// One beat wakes exactly that app.
	if err := d.Beat("q-1", 1, 0); err != nil {
		t.Fatal(err)
	}
	d.Tick()
	if got := d.Stats().Decisions; got != base+1 {
		t.Fatalf("one beat woke %d decisions, want 1", got-base)
	}
	// A goal change wakes its app even with no new beats.
	if err := d.SetGoal("q-2", 12, 22); err != nil {
		t.Fatal(err)
	}
	d.Tick()
	if got := d.Stats().Decisions; got != base+2 {
		t.Fatalf("goal change woke %d decisions, want 1 more", got-base-1)
	}
}

// The skip must not dilute the wake-up measurement: after a long idle
// gap, the first real step sees the rate of the period in which beats
// reappeared (MarkIdle keeps the interval current), not the beats
// spread over the whole gap — which would corrupt the Kalman base
// estimate exactly when the app comes back.
func TestWakeAfterIdleGapMeasuresTrueRate(t *testing.T) {
	d, err := NewDaemon(Config{Cores: 16, Accel: 1, Period: time.Hour, Shards: 4, TickWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Enroll(EnrollRequest{Name: "gap", MinRate: 10, MaxRate: 20, Window: 256}); err != nil {
		t.Fatal(err)
	}
	// Establish a steady ~15/s signal, then idle for a long gap.
	for i := 0; i < 5; i++ {
		if err := d.Beat("gap", 15, 0); err != nil {
			t.Fatal(err)
		}
		d.Tick()
	}
	for i := 0; i < 50; i++ {
		d.Tick() // 50 s of silence, all skipped
	}
	// Resume at the same rate; the wake-up decision must observe ~15/s.
	if err := d.Beat("gap", 15, 0); err != nil {
		t.Fatal(err)
	}
	d.Tick()
	st, err := d.Status("gap")
	if err != nil {
		t.Fatal(err)
	}
	if st.Decision == nil {
		t.Fatal("no decision after wake-up")
	}
	// Gap dilution would report 15 beats / 51 s ≈ 0.3/s.
	if st.Decision.Observed < 10 || st.Decision.Observed > 20 {
		t.Fatalf("wake-up observed rate %g, want ~15 (gap-diluted would be ~0.3)", st.Decision.Observed)
	}
}

package server

import (
	"fmt"
	"hash/fnv"
	"math"

	"angstrom/internal/actuator"
	"angstrom/internal/angstrom"
	"angstrom/internal/core"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// This file binds the serving daemon to the Angstrom chip model: in
// chip-backed mode every enrolled application holds a Partition of one
// shared angstrom.SharedChip, and the decision engine actuates *real*
// hardware knobs — core allocation, L2 capacity, DVFS — through the
// actuator.Knob contract instead of handing the client an advisory
// ladder. Observation flows the other way through actuator.Sensor:
// model IPS, attributed power, and stall fraction feed the controller
// alongside the heartbeats the partition emits as its workload executes.

// ChipConfig enables and tunes chip-backed serving.
type ChipConfig struct {
	// Chips is the number of identical dies in the fleet (default 1).
	// Each die has its own tile ledger, contention ledger, and manager;
	// enrollments are placed across dies by predicted shared-resource
	// pressure and may migrate between them (see MigrateSlowdown).
	Chips int
	// Tiles is the physical tile count of each die (default: the
	// daemon's core pool, capped at the model's MaxCores).
	Tiles int
	// CoreOptions is the ascending core-allocation ladder offered to
	// every application. Values must be powers of two and include 1
	// (every app starts on one core). Default: 1..64 powers of two,
	// capped at Tiles.
	CoreOptions []int
	// CacheOptionsKB is the ascending per-core L2 capacity ladder.
	// Default: 32, 64, 128.
	CacheOptionsKB []int
	// PowerBudgetW, when positive, is a chip-wide power budget: each
	// tick the daemon splits the budget beyond uncore evenly across
	// chip-backed applications and caps each decision engine's power
	// multiplier accordingly.
	PowerBudgetW float64
	// MemBandwidthBps, when positive, overrides the chip model's
	// aggregate off-chip bandwidth — the capacity the cross-partition
	// contention ledger divides among co-located applications.
	MemBandwidthBps float64
	// NoCFlitBW, when positive, overrides the mesh's per-link bandwidth
	// in flits/cycle (the NoC side of the contention ledger).
	NoCFlitBW float64
	// MigrateSlowdown is the contention slowdown below which a
	// chip-backed application becomes a migration candidate in a
	// multi-die fleet (default 0.8: an app losing more than 20% of its
	// isolated throughput to co-tenant traffic may move). Negative
	// disables migration.
	MigrateSlowdown float64
	// Params overrides the chip model constants (default DefaultParams).
	Params *angstrom.Params
	// KnobWrap, when non-nil, wraps each partition's raw hardware knobs
	// before the daemon adds rate limiting and allocation clamping.
	// Tests use it to interpose recording fakes at the exact
	// Actuator/Sensor interface boundary.
	KnobWrap func(app string, k actuator.Knob) actuator.Knob
}

func (c *ChipConfig) fill(cores int) {
	if c.Chips == 0 {
		c.Chips = 1
	}
	if c.MigrateSlowdown == 0 {
		c.MigrateSlowdown = 0.8
	}
	if c.Params == nil {
		p := angstrom.DefaultParams()
		c.Params = &p
	}
	if c.MemBandwidthBps > 0 || c.NoCFlitBW > 0 {
		p := *c.Params // never mutate a caller-supplied Params
		if c.MemBandwidthBps > 0 {
			p.MemBandwidthBps = c.MemBandwidthBps
		}
		if c.NoCFlitBW > 0 {
			p.NoCFlitBW = c.NoCFlitBW
		}
		c.Params = &p
	}
	if c.Tiles == 0 {
		c.Tiles = cores
	}
	if c.Tiles > c.Params.MaxCores {
		c.Tiles = c.Params.MaxCores
	}
	if len(c.CoreOptions) == 0 {
		for v := 1; v <= 64 && v <= c.Tiles; v *= 2 {
			c.CoreOptions = append(c.CoreOptions, v)
		}
	}
	if len(c.CacheOptionsKB) == 0 {
		c.CacheOptionsKB = []int{32, 64, 128}
	}
}

func (c *ChipConfig) validate() error {
	if c.Chips < 1 {
		return fmt.Errorf("server: fleet of %d chips", c.Chips)
	}
	if c.Tiles < 1 {
		return fmt.Errorf("server: chip with %d tiles", c.Tiles)
	}
	if len(c.CoreOptions) == 0 || c.CoreOptions[0] != 1 {
		return fmt.Errorf("server: chip core options %v must start at 1", c.CoreOptions)
	}
	for _, v := range c.CoreOptions {
		if v > c.Tiles {
			return fmt.Errorf("server: core option %d exceeds %d tiles", v, c.Tiles)
		}
	}
	return nil
}

// seedFor derives a stable per-application workload seed so re-enrolling
// the same name reproduces the same beat sequence.
func seedFor(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// cappedKnob clamps every requested level so the knob's value never
// exceeds the manager's current allocation — the seam where the
// water-filling arbiter bounds the per-application decision engine.
type cappedKnob struct {
	actuator.Knob
	options []int
	units   func() int
}

func (k *cappedKnob) SetLevel(level int) error {
	if max := len(k.options) - 1; level > max {
		level = max
	}
	cap := k.units()
	for level > 0 && k.options[level] > cap {
		level--
	}
	return k.Knob.SetLevel(level)
}

// bindChip acquires a chip partition for a newly enrolling application
// and builds its hardware-backed action space. Called with d.mu held,
// only from the Enroll writer (the enrollment record covers the
// acquisition).
//
//angstrom:journaled writer
func (d *Daemon) bindChip(a *app, spec workload.Spec, now sim.Time) error {
	cc := d.cfg.Chip
	base := angstrom.Config{Cores: 1, CacheKB: cc.CacheOptionsKB[0], VF: 0}
	share, err := d.makeRoom(a.chip)
	if err != nil {
		return err
	}
	return d.bindChipAt(a, spec, base, share, now)
}

// bindChipAt binds a to a partition of die a.chip acquired at an
// explicit start configuration, time share, and time. Fresh enrollments
// start at the base configuration; snapshot restore and migration
// re-acquire each partition at its recorded placement, which re-sums
// the tile ledger to its pre-crash value. The action space (and the
// nominal power the power rebalance prices from) is always built
// against the canonical base configuration, so a restored app's
// controller sees the same effect tables an uncrashed one does. Reached
// only from journaling writers (Enroll live, restoreApp on recovery,
// applyMigration).
//
//angstrom:journaled writer
func (d *Daemon) bindChipAt(a *app, spec workload.Spec, start angstrom.Config, share float64, now sim.Time) error {
	cc := d.cfg.Chip
	sc := d.fleet.Chip(a.chip)
	p := *cc.Params
	base := angstrom.Config{Cores: 1, CacheKB: cc.CacheOptionsKB[0], VF: 0}
	inst := workload.NewInstance(spec, seedFor(a.name))

	part, err := sc.Acquire(a.name, inst, a.mon, start, share, now)
	if err != nil {
		return fmt.Errorf("server: %w: %v", ErrPoolExhausted, err)
	}

	coreK, cacheK, vfK, err := part.Knobs(cc.CoreOptions, cc.CacheOptionsKB)
	if err != nil {
		sc.Release(a.name)
		return err
	}
	wrap := func(k actuator.Knob) actuator.Knob {
		if cc.KnobWrap != nil {
			k = cc.KnobWrap(a.name, k)
		}
		return actuator.NewStepped(k)
	}
	coreKnob := &cappedKnob{Knob: wrap(coreK), options: cc.CoreOptions, units: a.allocUnits}
	cacheKnob := wrap(cacheK)
	vfKnob := wrap(vfK)

	space, err := buildChipSpace(p, spec, base, cc, coreKnob, cacheKnob, vfKnob)
	if err != nil {
		sc.Release(a.name)
		return err
	}
	rt, err := core.New(a.name, d.clock, a.mon, space, core.Options{})
	if err != nil {
		sc.Release(a.name)
		return err
	}
	// rt is swapped under a.mu because a migration replaces it while
	// concurrent status readers render the standing decision against it;
	// part is an atomic pointer for the same reason.
	a.mu.Lock()
	a.rt = rt
	a.mu.Unlock()
	a.part.Store(part)
	// Nominal active watts at the *base* configuration (what Acquire
	// caches for a fresh enrollment; recomputed explicitly so a restore
	// at a non-base placement prices the power split identically).
	baseM, err := angstrom.Evaluate(p, spec, base)
	if err != nil {
		sc.Release(a.name)
		return err
	}
	a.nomActiveW = math.Max(baseM.PowerW-p.UncoreW, 1e-6)
	minX := math.Inf(1)
	for _, pt := range space.Points() {
		minX = math.Min(minX, pt.Effect.PowerX)
	}
	a.minPowerX = minX
	return nil
}

// makeRoom returns the time share a new chip partition on die `chip`
// should start with. When that die has a free core the newcomer gets a
// dedicated one; otherwise (oversubscribed fleet) every existing
// partition *on that die* is shrunk proportionally toward the new fair
// share so the newcomer fits — co-located dies are untouched. Called
// with d.mu held (which serializes it against the tick's share pass);
// the incumbent scan walks the sharded directory. Reached only from the
// Enroll writer: the incumbent shrinks it applies are covered by the
// enrollment record (replay re-runs the same shrink).
//
//angstrom:journaled writer
func (d *Daemon) makeRoom(chip int) (float64, error) {
	sc := d.fleet.Chip(chip)
	tiles := float64(sc.Tiles())
	parts, used := sc.Usage()
	free := tiles - used
	if free >= 1 {
		return 1, nil
	}
	if !d.cfg.Oversubscribe {
		return 0, fmt.Errorf("server: %w (chip pool full)", ErrPoolExhausted)
	}
	slot := tiles / float64(parts+1)
	if slot > 1 {
		slot = 1
	}
	if slot < minChipShare {
		return 0, fmt.Errorf("server: %w (chip oversubscribed beyond %gx)", ErrPoolExhausted, 1/minChipShare)
	}
	incumbents := d.dir.snapshot(make([]*app, 0, d.dir.len()))
	// Shrink the incumbents until the newcomer's slot fits. A single
	// proportional scale is not enough: shares clamped up to
	// minChipShare shrink less than their proportion, leaving
	// Σ(cores × share) above tiles − slot — so the deficit is re-spread
	// over the mass still above the floor until the invariant holds (or
	// everyone is floored and the pool is genuinely full).
	for iter := 0; iter < 2; iter++ {
		_, used = sc.Usage()
		excess := used - (tiles - slot)
		if excess <= 1e-9 {
			break
		}
		above := 0.0 // shrinkable core-equivalents: share mass beyond the floor
		for _, other := range incumbents {
			part := other.partition()
			if part == nil || other.chip != chip {
				continue
			}
			if s := part.Share(); s > minChipShare {
				above += float64(part.Config().Cores) * (s - minChipShare)
			}
		}
		if above <= 1e-12 {
			break // every incumbent already at the floor
		}
		f := 1 - excess/above
		if f < 0 {
			f = 0
		}
		for _, other := range incumbents {
			part := other.partition()
			if part == nil || other.chip != chip {
				continue
			}
			if s := part.Share(); s > minChipShare {
				// shrink only: cannot overdraw the ledger
				_ = part.SetShare(minChipShare + (s-minChipShare)*f)
			}
		}
	}
	_, used = sc.Usage()
	free = tiles - used
	if free < minChipShare {
		return 0, fmt.Errorf("server: %w (chip pool full)", ErrPoolExhausted)
	}
	if slot > free {
		slot = free
	}
	return slot, nil
}

// minChipShare is the smallest time share a chip partition may hold —
// beyond ~100 applications per tile the model's rates stop being
// meaningful within one decision period.
const minChipShare = 0.01

// buildChipSpace turns the partition's knobs into SEEC actuators whose
// declared effects are the chip model's predicted multipliers relative
// to the base configuration (the designer-declared model of §3.2; the
// runtime's RLS layer corrects divergence on line).
func buildChipSpace(p angstrom.Params, spec workload.Spec, base angstrom.Config, cc *ChipConfig,
	coreKnob, cacheKnob, vfKnob actuator.Knob) (*actuator.Space, error) {
	baseM, err := angstrom.Evaluate(p, spec, base)
	if err != nil {
		return nil, err
	}
	baseActive := math.Max(baseM.PowerW-p.UncoreW, 1e-9)
	effect := func(cfg angstrom.Config) (speedup, power float64, _ error) {
		m, merr := angstrom.Evaluate(p, spec, cfg)
		if merr != nil {
			return 0, 0, merr
		}
		return m.HeartRate / baseM.HeartRate, math.Max(m.PowerW-p.UncoreW, 1e-9) / baseActive, nil
	}
	ladder := func(k actuator.Knob, n int, cfgAt func(int) angstrom.Config, nominalAt func(int) bool,
		label func(int) string, delay float64) (*actuator.Actuator, error) {
		labels := make([]string, n)
		speed := make([]float64, n)
		power := make([]float64, n)
		for i := 0; i < n; i++ {
			labels[i] = label(i)
			if nominalAt(i) {
				speed[i], power[i] = 1, 1
				continue
			}
			var eerr error
			if speed[i], power[i], eerr = effect(cfgAt(i)); eerr != nil {
				return nil, eerr
			}
		}
		return actuator.FromKnob(k, labels, speed, power, delay, actuator.GlobalScope)
	}

	coreAct, err := ladder(coreKnob, len(cc.CoreOptions),
		func(i int) angstrom.Config { c := base; c.Cores = cc.CoreOptions[i]; return c },
		func(i int) bool { return cc.CoreOptions[i] == base.Cores },
		func(i int) string { return fmt.Sprintf("%d cores", cc.CoreOptions[i]) }, 0.001)
	if err != nil {
		return nil, err
	}
	cacheAct, err := ladder(cacheKnob, len(cc.CacheOptionsKB),
		func(i int) angstrom.Config { c := base; c.CacheKB = cc.CacheOptionsKB[i]; return c },
		func(i int) bool { return cc.CacheOptionsKB[i] == base.CacheKB },
		func(i int) string { return fmt.Sprintf("%dKB L2", cc.CacheOptionsKB[i]) }, 0.0001)
	if err != nil {
		return nil, err
	}
	vfAct, err := ladder(vfKnob, len(p.VF),
		func(i int) angstrom.Config { c := base; c.VF = i; return c },
		func(i int) bool { return i == base.VF },
		func(i int) string { return fmt.Sprintf("%.1fV/%.0fMHz", p.VF[i].Volts, p.VF[i].FHz/1e6) }, 0.0005)
	if err != nil {
		return nil, err
	}
	return actuator.NewSpace(coreAct, cacheAct, vfAct)
}

// runChipInterval is the act+observe phase for one chip-backed app:
// execute the previous decision's schedule (low slice first) over the
// elapsed wall/simulated interval, advancing the partition so it emits
// heartbeats at model-exact times. Called only from the tick goroutine.
func (d *Daemon) runChipInterval(a *app, now sim.Time) {
	part := a.partition()
	start := part.Now()
	dt := now - start
	if dt <= 0 {
		return
	}
	beatsBefore := a.mon.Count()
	defer func() { d.beats.Add(a.mon.Count() - beatsBefore) }()
	var actErr error
	t := start
	for _, sl := range a.pending {
		if err := a.rt.Apply(sl.Cfg); err != nil && actErr == nil {
			actErr = err // knob refusals during rebalance are transient
		}
		t += sl.Duration * dt
		if t > now {
			t = now
		}
		if err := part.Advance(t); err != nil {
			if actErr == nil {
				actErr = err
			}
			break
		}
	}
	if err := part.Advance(now); err != nil && actErr == nil {
		actErr = err
	}
	// Park the knobs at the schedule's duration-weighted configuration
	// for the inter-tick gap. Without this, a wide bang-bang schedule
	// (lo at the ladder bottom, hi at the top) deadlocks the stepped
	// knobs: applying lo then hi steps one rung down then one rung up —
	// net zero movement every tick — while the schedule's intent is the
	// weighted middle. The settle apply always ratchets one rung toward
	// that intent.
	if len(a.settle) > 0 {
		if err := a.rt.Apply(a.settle); err != nil && actErr == nil {
			actErr = err
		}
	}
	a.mu.Lock()
	if actErr != nil {
		a.actErr = actErr.Error()
	} else {
		a.actErr = ""
	}
	a.mu.Unlock()
}

// settleConfig is the schedule's duration-weighted configuration: the
// per-axis rounded mean of the low and high settings. It is where the
// knobs should rest between intervals so repeated schedules make
// monotone progress toward the schedule's intent (see runChipInterval).
func settleConfig(dec core.Decision) actuator.Config {
	if len(dec.LoCfg) == 0 || len(dec.HiCfg) != len(dec.LoCfg) {
		return nil
	}
	out := make(actuator.Config, len(dec.LoCfg))
	for i := range dec.LoCfg {
		w := float64(dec.LoCfg[i])*(1-dec.HiFrac) + float64(dec.HiCfg[i])*dec.HiFrac
		// Ceil, not round: parking below the weighted level caps the
		// real mix at the lower rung pair and can pin a saturated
		// controller just under its band; erring high leaves the
		// continuous HiFrac room to trim the overshoot.
		out[i] = int(math.Ceil(w - 1e-9))
	}
	return out
}

// rebalancePowerCaps apportions the chip power budget beyond uncore
// across the chip-backed fleet in proportion to each application's
// goal-implied power requirement — the RLS-corrected multiplier its
// goal needs, priced at its nominal active power. An even split would
// starve power-hungry workloads while light ones sit on slack; and a
// requirement frozen at enrollment would go stale as the correction
// layer learns, so the split is re-derived every tick. SetPowerCap (a
// translator rebuild) only runs when an app's cap actually moves.
//
// Every cap is floored at the app's cheapest configuration (a cap below
// it would leave the decision engine with an empty feasible set). A
// floored app consumes more than its proportional slice, so the pass
// iterates: floored apps are charged at their floor, and the remaining
// budget is re-split across the rest until no new app floors. Only when
// even the floors alone exceed the budget do the summed caps overrun
// it; that overdraft is surfaced in /v1/stats as PowerOvercommitW
// rather than silently exceeding the budget. Called from the tick
// goroutine, which owns every Runtime; the opTick record journals the
// epoch, so the caps it applies replay deterministically.
//
//angstrom:journaled writer
func (d *Daemon) rebalancePowerCaps(chipApps []*app) {
	if d.cfg.Chip == nil || len(chipApps) == 0 || d.cfg.Chip.PowerBudgetW <= 0 {
		// No caps to sum: clear any overcommit left by a previous fleet
		// so stats never report an overdraft that no longer exists.
		d.powerOvercommit.Store(0)
		return
	}
	perDie := d.cfg.Chip.PowerBudgetW - d.cfg.Chip.Params.UncoreW
	needX := make([]float64, len(chipApps))
	for i, a := range chipApps {
		needX[i] = 1
		goals := a.mon.Goals()
		if g := goals.Performance; g != nil {
			base := a.rt.BaseEstimate() // observed rate at speedup 1
			if base <= 0 {
				base = a.partition().Metrics().HeartRate
			}
			if base > 0 {
				needX[i] = a.rt.RequiredPowerX(g.Target() / base)
			}
		}
	}
	nChips := len(d.mgrs)
	if nChips == 1 {
		over := d.rebalanceChipPower(chipApps, needX, perDie)
		if over < 1e-6 {
			over = 0 // float residue of an exactly-filled budget
		}
		d.powerOvercommit.Store(math.Float64bits(over))
		return
	}
	// Federated budget: the fleet shares N× the per-die envelope, and
	// the broker water-fills it across dies by aggregate goal-implied
	// need (floored at each die's minimum operating points) before the
	// per-die pass splits each grant across its tenants. A lightly
	// loaded die's slack flows to a hot one instead of idling.
	apps := make([][]*app, nChips)
	nx := make([][]float64, nChips)
	for i, a := range chipApps {
		apps[a.chip] = append(apps[a.chip], a)
		nx[a.chip] = append(nx[a.chip], needX[i])
	}
	need := make([]float64, nChips)
	floorW := make([]float64, nChips)
	for c := range apps {
		for i, a := range apps[c] {
			need[c] += nx[c][i] * a.nomActiveW
			floorW[c] += a.minPowerX * a.nomActiveW
		}
	}
	grants := d.broker.SplitWatts(perDie*float64(nChips), need, floorW)
	var over float64
	for c := range apps {
		if len(apps[c]) == 0 {
			continue
		}
		if o := d.rebalanceChipPower(apps[c], nx[c], grants[c]); o > 0 {
			over += o
		}
	}
	if over < 1e-6 {
		over = 0
	}
	d.powerOvercommit.Store(math.Float64bits(over))
}

// rebalanceChipPower splits one die's power grant across its tenants
// (see rebalancePowerCaps) and returns the overdraft: the watts by
// which the floored caps exceed the grant (negative when slack is
// left). Water-fill with floors: each round splits the budget left
// after charging floored apps across the unfloored, flooring any app
// whose slice falls below its cheapest configuration. Each round floors
// at least one more app, so len(apps) rounds suffice.
//
//angstrom:journaled writer
func (d *Daemon) rebalanceChipPower(apps []*app, needX []float64, avail float64) float64 {
	floored := make([]bool, len(apps))
	scale := 0.0
	for round := 0; round <= len(apps); round++ {
		rem, sum := avail, 0.0
		for i, a := range apps {
			if floored[i] {
				rem -= a.minPowerX * a.nomActiveW
			} else {
				sum += needX[i] * a.nomActiveW
			}
		}
		if sum <= 0 {
			break // everyone floored
		}
		scale = math.Max(rem/sum, 0)
		changed := false
		for i, a := range apps {
			if !floored[i] && needX[i]*scale < a.minPowerX {
				floored[i] = true
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	capped := 0.0
	for i, a := range apps {
		capX := needX[i] * scale
		if floored[i] || capX < a.minPowerX {
			capX = a.minPowerX
		}
		capped += capX * a.nomActiveW
		if a.lastCapX > 0 && math.Abs(capX-a.lastCapX) < 0.01*a.lastCapX {
			continue
		}
		if err := a.rt.SetPowerCap(capX); err == nil {
			a.lastCapX = capX
		}
	}
	return capped - avail
}

package server

import "sort"

// Enrollment modes: how decisions reach the application's hardware.
const (
	// ModeDefault picks the daemon's default (chip when configured).
	ModeDefault = "default"
	// ModeChip binds the app to a partition of the shared Angstrom chip;
	// decisions actuate real knobs (cores, L2, DVFS) and the partition
	// emits the app's heartbeats as its modeled execution progresses.
	ModeChip = "chip"
	// ModeAdvisory serves software ladders the client actuates itself,
	// beating over the API as it makes progress.
	ModeAdvisory = "advisory"
)

// EnrollRequest registers an application with the daemon.
//
//	POST /v1/apps
type EnrollRequest struct {
	// Name uniquely identifies the application.
	Name string `json:"name"`
	// Workload names the declared behaviour profile (internal/workload
	// spec) used for the action space and the core-scaling curve.
	// Defaults to "barnes".
	Workload string `json:"workload,omitempty"`
	// Window is the heart-rate averaging window in beats (default: the
	// daemon's configured window).
	Window int `json:"window,omitempty"`
	// Mode selects chip-backed or advisory serving (default: chip when
	// the daemon runs with a chip, advisory otherwise). See ModeChip and
	// ModeAdvisory.
	Mode string `json:"mode,omitempty"`
	// MinRate/MaxRate declare the performance goal band in beats/s.
	// MinRate is required; MaxRate 0 means "no upper bound".
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
	// Priority is the water-fill weight for contended-pool arbitration
	// (SLO classes): under scarcity the app's fair share is proportional
	// to it. 0 means the default weight 1; must be finite, positive, and
	// at most 1e6.
	Priority float64 `json:"priority,omitempty"`
	// Chip, when set, pins the enrollment to that die of a multi-chip
	// fleet instead of letting the placer choose. The daemon stamps the
	// placer's choice into the journaled record, so replayed enrollments
	// always carry a pin.
	Chip *int `json:"chip,omitempty"`
}

// BeatRequest ingests a batch of heartbeats.
//
//	POST /v1/apps/{name}/beats
type BeatRequest struct {
	// Count is how many beats to emit (default 1, or len(Timestamps)
	// when timestamps are supplied).
	Count int `json:"count,omitempty"`
	// Distortion, if nonzero, is reported with the batch's last beat.
	Distortion float64 `json:"distortion,omitempty"`
	// Timestamps optionally places each beat of the batch: one
	// non-decreasing timestamp per beat, in seconds of any client epoch
	// (only the spacing is used; the batch is shifted so its last beat
	// lands at the server's current time). Without timestamps the
	// server spreads the batch evenly since the app's previous beat.
	Timestamps []float64 `json:"timestamps,omitempty"`
}

// GoalRequest replaces an application's performance goal.
//
//	PUT /v1/apps/{name}/goal
type GoalRequest struct {
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
}

// GoalView is the declared performance band.
type GoalView struct {
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
}

// ObservationView mirrors heartbeat.Observation for the wire.
type ObservationView struct {
	Beats         uint64  `json:"beats"`
	WindowRate    float64 `json:"window_rate"`
	GlobalRate    float64 `json:"global_rate"`
	InstantRate   float64 `json:"instant_rate"`
	WindowLatency float64 `json:"window_latency"`
	Distortion    float64 `json:"distortion"`
	LastTime      float64 `json:"last_time"`
}

// AllocationView is the manager's latest core share for one app.
type AllocationView struct {
	Units int `json:"units"`
	// Demand is the un-rounded unit count the goal asked for.
	Demand float64 `json:"demand"`
	// Share is the time share of the allocated units in (0, 1]; below 1
	// the app time-shares its units (oversubscribed fleet).
	Share float64 `json:"time_share,omitempty"`
	// GoalFit reports whether the demand fit inside the partition.
	GoalFit bool `json:"goal_fit"`
}

// ChipView is a chip-backed app's hardware state: its partition's
// configuration and the Sensor sample behind the controller's feedback.
type ChipView struct {
	// Chip is the die this app's partition lives on (fleet placement;
	// may change when the daemon migrates the app off a saturated die).
	Chip      int     `json:"chip"`
	Cores     int     `json:"cores"`
	CacheKB   int     `json:"cache_kb"`
	VF        string  `json:"vf"`
	TimeShare float64 `json:"time_share"`
	IPS       float64 `json:"ips"`
	PowerW    float64 `json:"power_w"`
	StallFrac float64 `json:"stall_frac"`
	HeartRate float64 `json:"heart_rate"`
	EnergyJ   float64 `json:"energy_j"`
	// Slowdown is the cross-partition contention factor applied to this
	// app's throughput (1 = uncontended; 0.8 = running at 80% of its
	// isolated model because of co-tenant memory/NoC traffic). IPS,
	// HeartRate, and StallFrac above already include it.
	Slowdown float64 `json:"slowdown"`
	// MemRho and NoCRho are the chip-wide memory-bandwidth and mesh
	// utilizations this partition observed at the last contention pass.
	MemRho float64 `json:"mem_rho"`
	NoCRho float64 `json:"noc_rho"`
	// ActuationErr is the last knob refusal, if any ("" when clean);
	// transient during fleet rebalances.
	ActuationErr string `json:"actuation_err,omitempty"`
}

// DecisionView is the latest SEEC decision, actuator settings resolved
// to labels. Clients act on it from their side of the wire.
type DecisionView struct {
	Time           float64           `json:"time"`
	Goal           float64           `json:"goal"`
	Observed       float64           `json:"observed"`
	BaseEstimate   float64           `json:"base_estimate"`
	TargetSpeedup  float64           `json:"target_speedup"`
	HiFrac         float64           `json:"hi_frac"`
	PredictedPower float64           `json:"predicted_power"`
	LoConfig       map[string]string `json:"lo_config"`
	HiConfig       map[string]string `json:"hi_config"`
}

// AppStatus is one application's full serving state.
//
//	GET /v1/apps/{name}
type AppStatus struct {
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Goal        GoalView        `json:"goal"`
	GoalMet     bool            `json:"goal_met"`
	Observation ObservationView `json:"observation"`
	Cores       AllocationView  `json:"cores"`
	Chip        *ChipView       `json:"chip,omitempty"`
	Decision    *DecisionView   `json:"decision,omitempty"`
	DecisionErr string          `json:"decision_err,omitempty"`
	EnrolledAt  float64         `json:"enrolled_at"`
}

func sortAppStatuses(s []AppStatus) {
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
}

// StatsResponse is the daemon-wide counter snapshot.
//
//	GET /v1/stats
type StatsResponse struct {
	Apps     int `json:"apps"`
	ChipApps int `json:"chip_apps,omitempty"`
	Cores    int `json:"cores"`
	// Chips is the fleet's die count (absent for advisory daemons).
	Chips int `json:"chips,omitempty"`
	// Shards is the application-directory shard count (the tick fans
	// its per-app phases across these).
	Shards    int    `json:"shards,omitempty"`
	Ticks     uint64 `json:"ticks"`
	Beats     uint64 `json:"beats"`
	Decisions uint64 `json:"decisions"`
	// Migrations counts inter-die partition moves the fleet has applied.
	Migrations uint64 `json:"migrations,omitempty"`
	// Evicted counts stale applications withdrawn by -beat-timeout.
	Evicted uint64 `json:"evicted,omitempty"`
	// WireConns is the live binary beat-protocol connection count and
	// WireFrames the accepted wire batch frames (absent when no client
	// has used -beat-listen). Wire connections publish their beat
	// totals through per-connection deltas, so Beats may trail the
	// wire's ground truth by up to one flush threshold per connection
	// until clients issue a flush barrier.
	WireConns  int    `json:"wire_conns,omitempty"`
	WireFrames uint64 `json:"wire_frames,omitempty"`
	ClockSeconds float64 `json:"clock_seconds"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	PeriodSeconds float64 `json:"period_seconds"`
	Accelerated   bool    `json:"accelerated"`
	// PowerOvercommitW is the watts by which the sum of floored per-app
	// power caps exceeds the chip budget: 0 when the budget is
	// satisfiable, positive when even the cheapest configurations cannot
	// fit under it (the caps are then floored and the overdraft is
	// surfaced here instead of being silently hidden).
	PowerOvercommitW float64 `json:"chip_power_overcommit_w,omitempty"`
	// Journal is the durability layer's state (absent without -data-dir):
	// appended record count, newest snapshot, and whether the daemon has
	// degraded to read-only after a journal failure.
	Journal *JournalStats `json:"journal,omitempty"`
}

// ChipStatusResponse is one die's tile-ledger snapshot.
//
//	GET /v1/chip (single-die daemons), GET /v1/chips (per die)
type ChipStatusResponse struct {
	// Chip is the die index within the fleet.
	Chip int `json:"chip"`
	// Tiles is the physical tile pool.
	Tiles int `json:"tiles"`
	// Partitions is the number of applications holding a partition.
	Partitions int `json:"partitions"`
	// CoreEquivalents is the ledger in use: sum of cores × time share.
	CoreEquivalents float64 `json:"core_equivalents"`
	// PowerW is uncore plus every partition's attributed power.
	PowerW float64 `json:"power_w"`
	// PowerBudgetW is the configured chip-wide budget (0 = unlimited).
	PowerBudgetW float64 `json:"power_budget_w,omitempty"`
	// UncoreW is the constant chip overhead.
	UncoreW float64 `json:"uncore_w"`
	// MemBandwidthBps and MemDemandBps are the chip's off-chip bandwidth
	// and the fleet's aggregate effective demand on it; MemRho and NoCRho
	// are the resulting utilizations from the last contention pass.
	MemBandwidthBps float64 `json:"mem_bandwidth_bps"`
	MemDemandBps    float64 `json:"mem_demand_bps"`
	MemRho          float64 `json:"mem_rho"`
	NoCRho          float64 `json:"noc_rho"`
	// MemBandwidthScale is the die's current bandwidth derating in
	// (0, 1]: 1 nominal, lower when a thermal throttle / failed channel
	// (or the chaos harness) has taken capacity away.
	MemBandwidthScale float64 `json:"mem_bandwidth_scale,omitempty"`
	// LedgerFaults counts tile-ledger accounting violations the chip has
	// caught; any nonzero value is a bug.
	LedgerFaults uint64 `json:"ledger_faults,omitempty"`
}

// ChipsResponse is the fleet-wide ledger view.
//
//	GET /v1/chips
type ChipsResponse struct {
	// Chips is every die's ledger snapshot, in die order.
	Chips []ChipStatusResponse `json:"chips"`
	// Migrations counts inter-die partition moves applied so far.
	Migrations uint64 `json:"migrations"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

package server

import "sort"

// EnrollRequest registers an application with the daemon.
//
//	POST /v1/apps
type EnrollRequest struct {
	// Name uniquely identifies the application.
	Name string `json:"name"`
	// Workload names the declared behaviour profile (internal/workload
	// spec) used for the advisory action space and the core-scaling
	// curve. Defaults to "barnes".
	Workload string `json:"workload,omitempty"`
	// Window is the heart-rate averaging window in beats (default: the
	// daemon's configured window).
	Window int `json:"window,omitempty"`
	// MinRate/MaxRate declare the performance goal band in beats/s.
	// MinRate is required; MaxRate 0 means "no upper bound".
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
}

// BeatRequest ingests a batch of heartbeats.
//
//	POST /v1/apps/{name}/beats
type BeatRequest struct {
	// Count is how many beats to emit (default 1).
	Count int `json:"count,omitempty"`
	// Distortion, if nonzero, is reported with the batch's last beat.
	Distortion float64 `json:"distortion,omitempty"`
}

// GoalRequest replaces an application's performance goal.
//
//	PUT /v1/apps/{name}/goal
type GoalRequest struct {
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
}

// GoalView is the declared performance band.
type GoalView struct {
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate,omitempty"`
}

// ObservationView mirrors heartbeat.Observation for the wire.
type ObservationView struct {
	Beats         uint64  `json:"beats"`
	WindowRate    float64 `json:"window_rate"`
	GlobalRate    float64 `json:"global_rate"`
	InstantRate   float64 `json:"instant_rate"`
	WindowLatency float64 `json:"window_latency"`
	Distortion    float64 `json:"distortion"`
	LastTime      float64 `json:"last_time"`
}

// AllocationView is the manager's latest core share for one app.
type AllocationView struct {
	Units int `json:"units"`
	// Demand is the un-rounded unit count the goal asked for.
	Demand float64 `json:"demand"`
	// GoalFit reports whether the demand fit inside the partition.
	GoalFit bool `json:"goal_fit"`
}

// DecisionView is the latest SEEC decision, actuator settings resolved
// to labels. Clients act on it from their side of the wire.
type DecisionView struct {
	Time           float64           `json:"time"`
	Goal           float64           `json:"goal"`
	Observed       float64           `json:"observed"`
	BaseEstimate   float64           `json:"base_estimate"`
	TargetSpeedup  float64           `json:"target_speedup"`
	HiFrac         float64           `json:"hi_frac"`
	PredictedPower float64           `json:"predicted_power"`
	LoConfig       map[string]string `json:"lo_config"`
	HiConfig       map[string]string `json:"hi_config"`
}

// AppStatus is one application's full serving state.
//
//	GET /v1/apps/{name}
type AppStatus struct {
	Name        string          `json:"name"`
	Workload    string          `json:"workload"`
	Goal        GoalView        `json:"goal"`
	GoalMet     bool            `json:"goal_met"`
	Observation ObservationView `json:"observation"`
	Cores       AllocationView  `json:"cores"`
	Decision    *DecisionView   `json:"decision,omitempty"`
	DecisionErr string          `json:"decision_err,omitempty"`
	EnrolledAt  float64         `json:"enrolled_at"`
}

func sortAppStatuses(s []AppStatus) {
	sort.Slice(s, func(i, j int) bool { return s[i].Name < s[j].Name })
}

// StatsResponse is the daemon-wide counter snapshot.
//
//	GET /v1/stats
type StatsResponse struct {
	Apps          int     `json:"apps"`
	Cores         int     `json:"cores"`
	Ticks         uint64  `json:"ticks"`
	Beats         uint64  `json:"beats"`
	Decisions     uint64  `json:"decisions"`
	ClockSeconds  float64 `json:"clock_seconds"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	PeriodSeconds float64 `json:"period_seconds"`
	Accelerated   bool    `json:"accelerated"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

package server

import (
	"math"
	"sync/atomic"
	"time"

	"angstrom/internal/sim"
)

// WallClock is a sim.Nower over real time: simulated seconds are seconds
// since the clock was created (plus a base offset, for daemons resuming
// a recovered timeline). It is safe for concurrent use, which the
// single-goroutine sim.Clock deliberately is not — a serving daemon
// timestamps heartbeats from many HTTP handler goroutines at once.
type WallClock struct {
	epoch time.Time
	base  sim.Time
}

// NewWallClock starts a wall clock at time zero.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// NewWallClockAt starts a wall clock at start: a recovered daemon
// resumes its journaled timeline instead of rewinding to zero (which
// would run every monitor frontier and partition backwards).
//
// restore calls this at the very end of replay to hand the timeline
// over to real time — the time.Now here IS the replay/serving boundary,
// after every journaled record has already been re-executed, so it can
// never feed a replayed computation.
func NewWallClockAt(start sim.Time) *WallClock {
	//lint:allow clockdiscipline the serving-clock handover after replay completes; nothing replayed reads it
	return &WallClock{epoch: time.Now(), base: start}
}

// Now reports seconds elapsed since the clock was created.
func (c *WallClock) Now() sim.Time { return c.base + time.Since(c.epoch).Seconds() }

// AtomicClock is an accelerated simulated clock: one goroutine (the ODA
// loop) advances it, any number of goroutines read it. Time is stored as
// float64 bits in an atomic word, so readers never block the loop.
type AtomicClock struct {
	bits atomic.Uint64
}

// NewAtomicClock returns a clock set to start.
func NewAtomicClock(start sim.Time) *AtomicClock {
	c := &AtomicClock{}
	c.bits.Store(math.Float64bits(start))
	return c
}

// Now reports the current simulated time.
func (c *AtomicClock) Now() sim.Time { return math.Float64frombits(c.bits.Load()) }

// Advance moves the clock forward by dt seconds. Like sim.Clock, moving
// backwards is a driver bug and panics.
func (c *AtomicClock) Advance(dt sim.Time) {
	if dt < 0 {
		panic("server: clock advanced by negative dt")
	}
	c.bits.Store(math.Float64bits(c.Now() + dt))
}

// Set jumps the clock to t. Journal replay uses it to re-execute each
// record at its recorded time; unlike Advance it tolerates a backward
// jump, because the journal's linearization of concurrent mutations may
// interleave a pre-tick timestamp after a tick record (the monitors and
// partitions clamp backward times themselves).
func (c *AtomicClock) Set(t sim.Time) { c.bits.Store(math.Float64bits(t)) }

// swapClock is the daemon's clock indirection: a sim.Nower whose
// backing clock can be swapped once boot-time journal replay (driven by
// a settable replay clock) hands over to the serving clock. Every
// component that captures the daemon's clock at construction — manager,
// monitors, runtimes — holds the holder, so the swap reaches all of
// them atomically.
type swapClock struct {
	inner atomic.Pointer[sim.Nower]
}

func newSwapClock(n sim.Nower) *swapClock {
	c := &swapClock{}
	c.swap(n)
	return c
}

func (c *swapClock) Now() sim.Time      { return (*c.inner.Load()).Now() }
func (c *swapClock) swap(n sim.Nower)   { c.inner.Store(&n) }

var (
	_ sim.Nower = (*WallClock)(nil)
	_ sim.Nower = (*AtomicClock)(nil)
	_ sim.Nower = (*swapClock)(nil)
)

package server

import (
	"math"
	"sync/atomic"
	"time"

	"angstrom/internal/sim"
)

// WallClock is a sim.Nower over real time: simulated seconds are seconds
// since the clock was created. It is safe for concurrent use, which the
// single-goroutine sim.Clock deliberately is not — a serving daemon
// timestamps heartbeats from many HTTP handler goroutines at once.
type WallClock struct {
	epoch time.Time
}

// NewWallClock starts a wall clock at time zero.
func NewWallClock() *WallClock { return &WallClock{epoch: time.Now()} }

// Now reports seconds elapsed since the clock was created.
func (c *WallClock) Now() sim.Time { return time.Since(c.epoch).Seconds() }

// AtomicClock is an accelerated simulated clock: one goroutine (the ODA
// loop) advances it, any number of goroutines read it. Time is stored as
// float64 bits in an atomic word, so readers never block the loop.
type AtomicClock struct {
	bits atomic.Uint64
}

// NewAtomicClock returns a clock set to start.
func NewAtomicClock(start sim.Time) *AtomicClock {
	c := &AtomicClock{}
	c.bits.Store(math.Float64bits(start))
	return c
}

// Now reports the current simulated time.
func (c *AtomicClock) Now() sim.Time { return math.Float64frombits(c.bits.Load()) }

// Advance moves the clock forward by dt seconds. Like sim.Clock, moving
// backwards is a driver bug and panics.
func (c *AtomicClock) Advance(dt sim.Time) {
	if dt < 0 {
		panic("server: clock advanced by negative dt")
	}
	c.bits.Store(math.Float64bits(c.Now() + dt))
}

var (
	_ sim.Nower = (*WallClock)(nil)
	_ sim.Nower = (*AtomicClock)(nil)
)

package oracle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMetricCapsAtTarget(t *testing.T) {
	p := Point{Rate: 100, Power: 10}
	if got := Metric(p, 50); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Metric = %g, want 5 (capped)", got)
	}
	if got := Metric(Point{Rate: 20, Power: 10}, 50); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Metric = %g, want 2 (below target)", got)
	}
	if Metric(Point{Rate: 5, Power: 0}, 5) != 0 {
		t.Fatal("zero power must yield 0, not Inf")
	}
}

func TestBestMeetingPicksCheapestSufficient(t *testing.T) {
	pts := []Point{
		{Rate: 10, Power: 1},
		{Rate: 55, Power: 4},  // meets, cheapest
		{Rate: 60, Power: 5},  // meets, pricier
		{Rate: 90, Power: 12}, // meets, priciest
	}
	idx, ok := BestMeeting(pts, 50)
	if !ok || idx != 1 {
		t.Fatalf("BestMeeting = (%d,%v), want (1,true)", idx, ok)
	}
}

func TestBestMeetingFallsBackToFastest(t *testing.T) {
	pts := []Point{{Rate: 10, Power: 1}, {Rate: 30, Power: 2}}
	idx, ok := BestMeeting(pts, 100)
	if ok || idx != 1 {
		t.Fatalf("BestMeeting = (%d,%v), want fastest with ok=false", idx, ok)
	}
}

func TestBestMetric(t *testing.T) {
	pts := []Point{
		{Rate: 40, Power: 10}, // metric 4
		{Rate: 60, Power: 10}, // capped: 5
		{Rate: 80, Power: 20}, // capped: 2.5
	}
	if got := BestMetric(pts, 50); got != 1 {
		t.Fatalf("BestMetric = %d, want 1", got)
	}
	if BestMetric(nil, 50) != -1 {
		t.Fatal("empty input must return -1")
	}
}

func TestBestAverageAcross(t *testing.T) {
	// Config 0 is great for app 0, terrible for app 1; config 1 is a
	// decent compromise and must win on average.
	points := [][]Point{
		{{Rate: 100, Power: 10}, {Rate: 80, Power: 10}},
		{{Rate: 5, Power: 10}, {Rate: 70, Power: 10}},
	}
	targets := []float64{100, 100}
	if got := BestAverageAcross(points, targets); got != 1 {
		t.Fatalf("BestAverageAcross = %d, want 1", got)
	}
	if BestAverageAcross(nil, nil) != -1 {
		t.Fatal("empty input must return -1")
	}
}

func TestBestMeetingOptimalProperty(t *testing.T) {
	// Property: the chosen config has minimal power among those meeting
	// the target; when ok=false, nothing meets the target.
	f := func(raw []struct{ R, P uint8 }, tsel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Rate: float64(r.R), Power: float64(r.P) + 1}
		}
		target := float64(tsel)
		idx, ok := BestMeeting(pts, target)
		if idx < 0 || idx >= len(pts) {
			return false
		}
		if ok {
			if pts[idx].Rate < target {
				return false
			}
			for _, p := range pts {
				if p.Rate >= target && p.Power < pts[idx].Power {
					return false
				}
			}
		} else {
			for _, p := range pts {
				if p.Rate >= target {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBestMetricDominatesProperty(t *testing.T) {
	f := func(raw []struct{ R, P uint8 }, tsel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Rate: float64(r.R), Power: float64(r.P) + 1}
		}
		target := float64(tsel) + 1
		idx := BestMetric(pts, target)
		for _, p := range pts {
			if Metric(p, target) > Metric(pts[idx], target)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Table-driven edge cases: empty inputs, the no-meeting fallback, and
// NaN guards. The selection procedures feed the scenario scorer, which
// must never let a corrupt sample pick a configuration or crash on an
// empty action space.
func TestBestMeetingEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		points  []Point
		target  float64
		wantIdx int
		wantOK  bool
	}{
		{"empty", nil, 10, -1, false},
		{"single meets", []Point{{Rate: 12, Power: 3}}, 10, 0, true},
		{"single misses", []Point{{Rate: 5, Power: 3}}, 10, 0, false},
		{"all NaN rates", []Point{{Rate: nan, Power: 1}, {Rate: nan, Power: 2}}, 10, -1, false},
		{"NaN rate skipped", []Point{{Rate: nan, Power: 1}, {Rate: 20, Power: 5}}, 10, 1, true},
		{"NaN target falls back", []Point{{Rate: 5, Power: 1}, {Rate: 30, Power: 2}}, nan, 1, false},
		{"zero target met by zero rate", []Point{{Rate: 0, Power: 1}}, 0, 0, true},
	}
	for _, tc := range cases {
		idx, ok := BestMeeting(tc.points, tc.target)
		if idx != tc.wantIdx || ok != tc.wantOK {
			t.Errorf("%s: BestMeeting = (%d, %v), want (%d, %v)", tc.name, idx, ok, tc.wantIdx, tc.wantOK)
		}
	}
}

func TestBestMeetingAllEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name    string
		points  [][]Point
		targets []float64
		want    int
	}{
		{"no apps", nil, nil, -1},
		{"apps without configs", [][]Point{{}, {}}, []float64{1, 1}, -1},
		{
			"meets all beats meets most",
			[][]Point{
				{{Rate: 10, Power: 1}, {Rate: 50, Power: 9}},
				{{Rate: 1, Power: 1}, {Rate: 40, Power: 9}},
			},
			[]float64{5, 5},
			1,
		},
		{
			"tie on met resolved by power",
			[][]Point{
				{{Rate: 10, Power: 5}, {Rate: 10, Power: 2}},
			},
			[]float64{5},
			1,
		},
		{
			"NaN rate never counts as met",
			[][]Point{
				{{Rate: nan, Power: 1}, {Rate: 10, Power: 9}},
			},
			[]float64{5},
			1,
		},
	}
	for _, tc := range cases {
		if got := BestMeetingAll(tc.points, tc.targets); got != tc.want {
			t.Errorf("%s: BestMeetingAll = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMetricNaNGuards(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name   string
		p      Point
		target float64
	}{
		{"NaN rate", Point{Rate: nan, Power: 2}, 10},
		{"NaN power", Point{Rate: 5, Power: nan}, 10},
		{"NaN target", Point{Rate: 5, Power: 2}, nan},
	}
	for _, tc := range cases {
		if got := Metric(tc.p, tc.target); got != 0 {
			t.Errorf("%s: Metric = %g, want 0", tc.name, got)
		}
	}
	// And BestMetric must still prefer any finite point over NaN ones.
	pts := []Point{{Rate: nan, Power: 1}, {Rate: 4, Power: 2}}
	if got := BestMetric(pts, 10); got != 1 {
		t.Fatalf("BestMetric with NaN point = %d, want 1", got)
	}
}

func TestNormalizeTo(t *testing.T) {
	got := NormalizeTo([]float64{1, 2, 4}, 4)
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeTo = %v, want %v", got, want)
		}
	}
	if z := NormalizeTo([]float64{1}, 0); z[0] != 0 {
		t.Fatal("zero reference must yield zeros, not Inf")
	}
}

package oracle

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMetricCapsAtTarget(t *testing.T) {
	p := Point{Rate: 100, Power: 10}
	if got := Metric(p, 50); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Metric = %g, want 5 (capped)", got)
	}
	if got := Metric(Point{Rate: 20, Power: 10}, 50); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Metric = %g, want 2 (below target)", got)
	}
	if Metric(Point{Rate: 5, Power: 0}, 5) != 0 {
		t.Fatal("zero power must yield 0, not Inf")
	}
}

func TestBestMeetingPicksCheapestSufficient(t *testing.T) {
	pts := []Point{
		{Rate: 10, Power: 1},
		{Rate: 55, Power: 4},  // meets, cheapest
		{Rate: 60, Power: 5},  // meets, pricier
		{Rate: 90, Power: 12}, // meets, priciest
	}
	idx, ok := BestMeeting(pts, 50)
	if !ok || idx != 1 {
		t.Fatalf("BestMeeting = (%d,%v), want (1,true)", idx, ok)
	}
}

func TestBestMeetingFallsBackToFastest(t *testing.T) {
	pts := []Point{{Rate: 10, Power: 1}, {Rate: 30, Power: 2}}
	idx, ok := BestMeeting(pts, 100)
	if ok || idx != 1 {
		t.Fatalf("BestMeeting = (%d,%v), want fastest with ok=false", idx, ok)
	}
}

func TestBestMetric(t *testing.T) {
	pts := []Point{
		{Rate: 40, Power: 10}, // metric 4
		{Rate: 60, Power: 10}, // capped: 5
		{Rate: 80, Power: 20}, // capped: 2.5
	}
	if got := BestMetric(pts, 50); got != 1 {
		t.Fatalf("BestMetric = %d, want 1", got)
	}
	if BestMetric(nil, 50) != -1 {
		t.Fatal("empty input must return -1")
	}
}

func TestBestAverageAcross(t *testing.T) {
	// Config 0 is great for app 0, terrible for app 1; config 1 is a
	// decent compromise and must win on average.
	points := [][]Point{
		{{Rate: 100, Power: 10}, {Rate: 80, Power: 10}},
		{{Rate: 5, Power: 10}, {Rate: 70, Power: 10}},
	}
	targets := []float64{100, 100}
	if got := BestAverageAcross(points, targets); got != 1 {
		t.Fatalf("BestAverageAcross = %d, want 1", got)
	}
	if BestAverageAcross(nil, nil) != -1 {
		t.Fatal("empty input must return -1")
	}
}

func TestBestMeetingOptimalProperty(t *testing.T) {
	// Property: the chosen config has minimal power among those meeting
	// the target; when ok=false, nothing meets the target.
	f := func(raw []struct{ R, P uint8 }, tsel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Rate: float64(r.R), Power: float64(r.P) + 1}
		}
		target := float64(tsel)
		idx, ok := BestMeeting(pts, target)
		if idx < 0 || idx >= len(pts) {
			return false
		}
		if ok {
			if pts[idx].Rate < target {
				return false
			}
			for _, p := range pts {
				if p.Rate >= target && p.Power < pts[idx].Power {
					return false
				}
			}
		} else {
			for _, p := range pts {
				if p.Rate >= target {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBestMetricDominatesProperty(t *testing.T) {
	f := func(raw []struct{ R, P uint8 }, tsel uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{Rate: float64(r.R), Power: float64(r.P) + 1}
		}
		target := float64(tsel) + 1
		idx := BestMetric(pts, target)
		for _, p := range pts {
			if Metric(p, target) > Metric(pts[idx], target)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeTo(t *testing.T) {
	got := NormalizeTo([]float64{1, 2, 4}, 4)
	want := []float64{0.25, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NormalizeTo = %v, want %v", got, want)
		}
	}
	if z := NormalizeTo([]float64{1}, 0); z[0] != 0 {
		t.Fatal("zero reference must yield zeros, not Inf")
	}
}

// Package oracle implements the comparison policies of §5.2 as pure
// selection procedures over evaluated configuration spaces:
//
//   - the best *non-adaptive* configuration ("all applications use the
//     same number of cores and the same clock speed") — the single
//     configuration with the best average efficiency across applications;
//   - the *static oracle*, which provisions once per application;
//   - the *dynamic oracle*, which re-selects every interval with perfect
//     knowledge of the next interval's workload ("computed after the fact
//     by post processing empirical data") — the normalization target of
//     Figure 3.
//
// The uncoordinated baseline is not here: it is a composition of SEEC
// runtimes (core.Uncoordinated), because its defining property is its
// control structure, not a selection rule.
package oracle

import "math"

// Point is one configuration's evaluated behaviour for one application:
// the heart rate it delivers and its power beyond idle.
type Point struct {
	Rate  float64
	Power float64
}

// Metric is the paper's efficiency measure: min(achieved, target) per
// Watt beyond idle. Unphysical inputs — non-positive power, NaN rate or
// target — score 0, so a corrupt sample can never win a selection by
// propagating NaN through the comparisons (NaN compares false against
// everything, which would freeze BestMetric's running maximum).
func Metric(p Point, target float64) float64 {
	if p.Power <= 0 || math.IsNaN(p.Rate) || math.IsNaN(target) || math.IsNaN(p.Power) {
		return 0
	}
	return math.Min(p.Rate, target) / p.Power
}

// BestMeeting returns the index of the minimum-power point whose rate
// meets the target. If no point meets it, ok is false and the index of
// the highest-rate point is returned (the best-effort fallback any real
// provisioner would take). Empty input returns (-1, false). NaN rates
// never meet a target and never win the fallback (every comparison
// against NaN is false), so a slice of all-NaN points also returns
// (-1, false); a NaN target is met by nothing and falls back.
func BestMeeting(points []Point, target float64) (idx int, ok bool) {
	idx = -1
	bestPower := math.Inf(1)
	bestRate := math.Inf(-1)
	bestRateIdx := -1
	for i, p := range points {
		if p.Rate >= target && p.Power < bestPower {
			idx, bestPower = i, p.Power
		}
		if p.Rate > bestRate {
			bestRate, bestRateIdx = p.Rate, i
		}
	}
	if idx >= 0 {
		return idx, true
	}
	return bestRateIdx, false
}

// BestMetric returns the index maximizing the paper's efficiency metric
// for one application (first maximal point wins ties, deterministically).
func BestMetric(points []Point, target float64) int {
	best, bestIdx := math.Inf(-1), -1
	for i, p := range points {
		if m := Metric(p, target); m > best {
			best, bestIdx = m, i
		}
	}
	return bestIdx
}

// BestMeetingAll returns the single configuration that meets every
// application's target at minimum power — the best *valid* non-adaptive
// system (§5.2: "all applications use the same number of cores and the
// same clock speed"; a configuration that misses goals is not doing the
// job SEEC is being compared on). If no configuration meets all targets,
// it falls back to the one meeting the most, cheapest first. Empty
// input — no applications, or applications with no evaluated
// configurations — returns -1.
func BestMeetingAll(points [][]Point, targets []float64) int {
	if len(points) == 0 {
		return -1
	}
	nCfg := len(points[0])
	bestIdx := -1
	bestMet := -1
	bestPower := math.Inf(1)
	for c := 0; c < nCfg; c++ {
		met := 0
		power := 0.0
		for a := range points {
			if points[a][c].Rate >= targets[a] {
				met++
			}
			power += points[a][c].Power
		}
		if met > bestMet || (met == bestMet && power < bestPower) {
			bestIdx, bestMet, bestPower = c, met, power
		}
	}
	return bestIdx
}

// BestAverageAcross returns the configuration index maximizing the mean
// efficiency metric across applications: points[app][cfg] must be
// rectangular, targets[app] gives each application's goal. This is the
// §5.3 non-adaptive selection (the one that lands on 64 cores).
func BestAverageAcross(points [][]Point, targets []float64) int {
	if len(points) == 0 {
		return -1
	}
	nCfg := len(points[0])
	best, bestIdx := math.Inf(-1), -1
	for c := 0; c < nCfg; c++ {
		sum := 0.0
		for a := range points {
			sum += Metric(points[a][c], targets[a])
		}
		if sum > best {
			best, bestIdx = sum, c
		}
	}
	return bestIdx
}

// NormalizeTo divides each value by the reference, guarding zeros.
func NormalizeTo(values []float64, reference float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		if reference > 0 {
			out[i] = v / reference
		}
	}
	return out
}

package journal

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func commit(t *testing.T, w *Writer, payload string) uint64 {
	t.Helper()
	seq, err := w.Commit([]byte(payload))
	if err != nil {
		t.Fatalf("commit %q: %v", payload, err)
	}
	return seq
}

func recover2(t *testing.T, fs FS) *State {
	t.Helper()
	st, err := Recover(fs, "j")
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return st
}

func payloads(st *State) []string {
	out := make([]string, len(st.Records))
	for i, p := range st.Records {
		out[i] = string(p)
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	var buf []byte
	want := []string{"", "a", "hello world", strings.Repeat("x", 4096)}
	for _, p := range want {
		buf = AppendFrame(buf, []byte(p))
	}
	got, valid := Scan(buf)
	if valid != len(buf) {
		t.Fatalf("valid prefix %d, want %d", valid, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("%d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("payload %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestScanRejectsCorruption(t *testing.T) {
	clean := AppendFrame(AppendFrame(nil, []byte("first")), []byte("second"))
	firstLen := len(AppendFrame(nil, []byte("first")))

	// Truncations at every boundary: everything before the cut survives
	// iff whole frames fit.
	for cut := 0; cut < len(clean); cut++ {
		got, valid := Scan(clean[:cut])
		wantFrames := 0
		if cut >= firstLen {
			wantFrames = 1
		}
		if len(got) != wantFrames {
			t.Fatalf("cut %d: %d frames, want %d", cut, len(got), wantFrames)
		}
		if valid > cut {
			t.Fatalf("cut %d: valid %d beyond buffer", cut, valid)
		}
	}

	// A bit flip anywhere in the second frame leaves exactly the first.
	for i := firstLen; i < len(clean); i++ {
		buf := append([]byte(nil), clean...)
		buf[i] ^= 0x40
		got, valid := Scan(buf)
		if len(got) != 1 || string(got[0]) != "first" {
			t.Fatalf("flip at %d: got %d frames", i, len(got))
		}
		if valid != firstLen {
			t.Fatalf("flip at %d: valid %d, want %d", i, valid, firstLen)
		}
	}

	// An oversized length prefix is corruption, not an allocation.
	huge := AppendFrame(nil, []byte("x"))
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if got, valid := Scan(huge); len(got) != 0 || valid != 0 {
		t.Fatalf("oversized frame accepted: %d frames, valid %d", len(got), valid)
	}
}

func TestCommitRecoverRoundTrip(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if seq := commit(t, w, fmt.Sprintf("rec-%d", i)); seq != uint64(i) {
			t.Fatalf("commit %d: seq %d", i, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := recover2(t, fs)
	want := []string{"rec-1", "rec-2", "rec-3", "rec-4", "rec-5"}
	if got := payloads(st); !equalStrings(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if st.NextSeq != 5 || st.SnapshotSeq != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("state %+v", st)
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// N committers queued behind one in-flight flush must cost ONE fsync:
	// the flush-lock holder carries everyone buffered behind it. Holding
	// flushMu while they append makes the grouping deterministic.
	const n = 64
	w.flushMu.Lock()
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer done.Done()
			if _, err := w.Commit([]byte(fmt.Sprintf("c-%02d", i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for w.Seq() < n { // all appended, blocked on durability
		runtime.Gosched()
	}
	before := fs.Syncs()
	w.flushMu.Unlock()
	done.Wait()
	if got := fs.Syncs() - before; got != 1 {
		t.Fatalf("%d syncs for %d queued commits, want 1 (group commit)", got, n)
	}
	if w.Seq() != n {
		t.Fatalf("seq %d, want %d", w.Seq(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st := recover2(t, fs); len(st.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(st.Records), n)
	}
}

func TestAppendIsPureBuffering(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := fs.Syncs()
	for i := 0; i < 100; i++ {
		if _, err := w.Append([]byte("async")); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.Syncs(); got != before {
		t.Fatalf("%d syncs issued by Append", got-before)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := fs.Syncs(); got != before+1 {
		t.Fatalf("flush cost %d syncs, want 1", got-before)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRotateSplitsSegments(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w, "a")
	commit(t, w, "b")
	seq, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotation boundary %d, want 2", seq)
	}
	commit(t, w, "c")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	old, err := fs.ReadFile("j/" + segmentName(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := Scan(old); len(got) != 2 {
		t.Fatalf("old segment holds %d records, want 2", len(got))
	}
	st := recover2(t, fs)
	if got := payloads(st); !equalStrings(got, []string{"a", "b", "c"}) {
		t.Fatalf("recovered %v", got)
	}
	if st.NextSeq != 3 {
		t.Fatalf("next seq %d", st.NextSeq)
	}
}

func TestSnapshotCompactsAndPrunes(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w, "pre-1")
	commit(t, w, "pre-2")
	seq, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(fs, "j", seq, []byte("image@2")); err != nil {
		t.Fatal(err)
	}
	Prune(fs, "j", seq)
	commit(t, w, "post-3")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("j/" + segmentName(0)); err == nil {
		t.Fatal("pre-snapshot segment survived pruning")
	}
	st := recover2(t, fs)
	if string(st.Snapshot) != "image@2" || st.SnapshotSeq != 2 {
		t.Fatalf("snapshot %q@%d", st.Snapshot, st.SnapshotSeq)
	}
	if got := payloads(st); !equalStrings(got, []string{"post-3"}) {
		t.Fatalf("tail %v", got)
	}
	if st.NextSeq != 3 {
		t.Fatalf("next seq %d", st.NextSeq)
	}
}

func TestRecoverPrefersNewestValidSnapshot(t *testing.T) {
	fs := NewMemFS()
	if err := WriteSnapshot(fs, "j", 2, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(fs, "j", 5, []byte("new")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest: recovery must fall back to the older one.
	buf, _ := fs.ReadFile("j/" + snapshotName(5))
	f, _ := fs.Create("j/" + snapshotName(5))
	f.Write(buf[:len(buf)-3])
	f.Sync()
	f.Close()
	// A full segment chain from genesis keeps the fallback consistent.
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		commit(t, w, fmt.Sprintf("r%d", i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := recover2(t, fs)
	if string(st.Snapshot) != "old" || st.SnapshotSeq != 2 {
		t.Fatalf("snapshot %q@%d, want old@2", st.Snapshot, st.SnapshotSeq)
	}
	if got := payloads(st); !equalStrings(got, []string{"r3", "r4", "r5", "r6"}) {
		t.Fatalf("tail %v", got)
	}
}

func TestRecoverTruncatesTornTail(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w, "whole-1")
	commit(t, w, "whole-2")
	// A torn write: half a frame lands after the durable prefix.
	name := "j/" + segmentName(0)
	torn := AppendFrame(nil, []byte("torn-3"))
	f, _ := fs.OpenAppend(name)
	f.Write(torn[:len(torn)-2])
	f.Close()
	st := recover2(t, fs)
	if got := payloads(st); !equalStrings(got, []string{"whole-1", "whole-2"}) {
		t.Fatalf("recovered %v", got)
	}
	if st.TruncatedBytes != len(torn)-2 {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(torn)-2)
	}
	// The repair is durable: a second recovery sees a clean chain.
	st2 := recover2(t, fs)
	if st2.TruncatedBytes != 0 || len(st2.Records) != 2 {
		t.Fatalf("repair not persisted: %+v", st2)
	}
	// And the journal continues from the repaired frontier.
	w2, err := NewWriter(fs, "j", st.NextSeq, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w2, "whole-3")
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := payloads(recover2(t, fs)); !equalStrings(got, []string{"whole-1", "whole-2", "whole-3"}) {
		t.Fatalf("after repair+append: %v", got)
	}
}

func TestRecoverDropsSegmentsPastGap(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w, "a")
	commit(t, w, "b")
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	commit(t, w, "c")
	if _, err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	commit(t, w, "d")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Lose the middle segment: the history past the hole is unusable.
	if err := fs.Remove("j/" + segmentName(2)); err != nil {
		t.Fatal(err)
	}
	st := recover2(t, fs)
	if got := payloads(st); !equalStrings(got, []string{"a", "b"}) {
		t.Fatalf("recovered %v, want the pre-gap prefix", got)
	}
	if len(st.DroppedSegments) != 1 || st.DroppedSegments[0] != segmentName(3) {
		t.Fatalf("dropped %v", st.DroppedSegments)
	}
	if st.NextSeq != 2 {
		t.Fatalf("next seq %d", st.NextSeq)
	}
}

func TestCrashImageLosesOnlyUnsynced(t *testing.T) {
	fs := NewMemFS()
	w, err := NewWriter(fs, "j", 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w, "durable")
	if _, err := w.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	// Buffered but never synced: a crash image must not contain it.
	st := recover2(t, fs.Crash(0))
	if got := payloads(st); !equalStrings(got, []string{"durable"}) {
		t.Fatalf("crash image recovered %v", got)
	}
	// Flush, then crash with a torn partial write of the next record.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("torn")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil { // lands on disk...
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	w.flushMu.Lock() // write without sync so the tail is torn
	w.mu.Lock()
	batch := w.buf
	w.buf = nil
	w.mu.Unlock()
	w.f.Write(batch)
	w.flushMu.Unlock()
	for torn := 1; torn < frameHeader; torn++ {
		st := recover2(t, fs.Crash(torn))
		if got := payloads(st); !equalStrings(got, []string{"durable", "buffered", "torn"}) {
			t.Fatalf("torn=%d: recovered %v", torn, got)
		}
	}
}

func TestWriteErrorLatchesAndReports(t *testing.T) {
	fs := NewMemFS()
	var reported error
	w, err := NewWriter(fs, "j", 0, Options{OnError: func(err error) { reported = err }})
	if err != nil {
		t.Fatal(err)
	}
	commit(t, w, "ok")
	fs.SetSyncErr(errors.New("disk on fire"))
	if _, err := w.Commit([]byte("doomed")); !errors.Is(err, ErrFailed) {
		t.Fatalf("commit on failed disk: %v", err)
	}
	if reported == nil || !errors.Is(reported, ErrFailed) {
		t.Fatalf("OnError got %v", reported)
	}
	// Latched: the disk healing does not un-fail the writer.
	fs.SetSyncErr(nil)
	if _, err := w.Append([]byte("later")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after latch: %v", err)
	}
	if err := w.Err(); !errors.Is(err, ErrFailed) {
		t.Fatalf("Err() = %v", err)
	}
	w.Close()
	// Everything durable before the failure still recovers. (The crash
	// image: bytes written but never fsynced don't survive.)
	if got := payloads(recover2(t, fs.Crash(0))); !equalStrings(got, []string{"ok"}) {
		t.Fatalf("recovered %v", got)
	}
}

func TestSnapshotWriteIsAtomic(t *testing.T) {
	fs := NewMemFS()
	if err := WriteSnapshot(fs, "j", 3, bytes.Repeat([]byte("s"), 100)); err != nil {
		t.Fatal(err)
	}
	// A crash right now keeps the installed snapshot (rename is atomic).
	st := recover2(t, fs.Crash(0))
	if st.SnapshotSeq != 3 || len(st.Snapshot) != 100 {
		t.Fatalf("snapshot %d/%d bytes", st.SnapshotSeq, len(st.Snapshot))
	}
	// A failed write leaves no half-installed snapshot behind.
	fs2 := NewMemFS()
	fs2.SetSyncErr(errors.New("enospc"))
	if err := WriteSnapshot(fs2, "j", 4, []byte("doomed")); err == nil {
		t.Fatal("snapshot write on failing disk succeeded")
	}
	if st := recover2(t, fs2); st.Snapshot != nil {
		t.Fatalf("half snapshot visible: %q", st.Snapshot)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

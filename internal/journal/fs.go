package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the journal's window onto a filesystem. The daemon runs on the
// real one (OS); tests interpose MemFS to inject write/fsync failures
// and to take crash-consistent images (only synced bytes survive, plus
// an arbitrary torn prefix of what was still buffered) without killing
// the process. Paths use forward slashes; implementations may treat
// them as opaque keys.
type FS interface {
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// ReadFile returns name's full contents.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the base names of the files directly under dir,
	// sorted. A missing directory is an empty listing, not an error.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Truncate cuts name down to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
}

// File is an open journal file: sequential writes, durability on Sync.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (osFS) Create(name string) (File, error)    { return os.Create(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) MkdirAll(dir string) error            { return os.MkdirAll(dir, 0o755) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// MemFS is an in-memory FS for fault-injection tests. Every file tracks
// how many of its bytes have been fsynced; Crash returns an image of
// what a machine crash would leave behind. SetWriteErr and SetSyncErr
// turn subsequent writes or syncs into failures, driving the journal's
// degraded-mode paths without touching a real disk.
type MemFS struct {
	mu       sync.Mutex
	files    map[string]*memData
	writeErr error
	syncErr  error
	// Syncs counts File.Sync calls (group-commit batching assertions).
	syncs int
}

type memData struct {
	data   []byte
	synced int // bytes guaranteed to survive a crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memData)} }

// SetWriteErr makes every subsequent Write (and Create/OpenAppend of
// new files) fail with err. nil restores normal operation.
func (m *MemFS) SetWriteErr(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.writeErr = err
}

// SetSyncErr makes every subsequent Sync fail with err.
func (m *MemFS) SetSyncErr(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.syncErr = err
}

// Syncs reports how many Sync calls the filesystem has served.
func (m *MemFS) Syncs() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.syncs
}

// Crash returns the filesystem image a hard crash would leave: synced
// bytes survive; of each file's unsynced tail, at most torn bytes make
// it to disk (a torn write). The original is untouched, so one run can
// be crash-imaged at many points.
func (m *MemFS) Crash(torn int) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	img := NewMemFS()
	for name, f := range m.files {
		keep := f.synced
		if extra := len(f.data) - f.synced; extra > 0 && torn > 0 {
			if extra > torn {
				extra = torn
			}
			keep += extra
		}
		img.files[name] = &memData{data: append([]byte(nil), f.data[:keep]...), synced: keep}
	}
	return img
}

func (m *MemFS) open(name string, truncate bool) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.writeErr != nil {
		return nil, m.writeErr
	}
	f, ok := m.files[name]
	if !ok {
		f = &memData{}
		m.files[name] = f
	}
	if truncate {
		f.data = f.data[:0]
		f.synced = 0
	}
	return &memFile{fs: m, d: f}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) { return m.open(name, false) }
func (m *MemFS) Create(name string) (File, error)     { return m.open(name, true) }

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", oldname, os.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) MkdirAll(dir string) error { return nil }

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("memfs: %s: %w", name, os.ErrNotExist)
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir + "/"
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir || (len(name) > len(prefix) && name[:len(prefix)] == prefix) {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// memFile is an open handle onto a MemFS entry.
type memFile struct {
	fs *MemFS
	d  *memData
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.writeErr != nil {
		return 0, f.fs.writeErr
	}
	f.d.data = append(f.d.data, p...)
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.fs.syncs++
	if f.fs.syncErr != nil {
		return f.fs.syncErr
	}
	f.d.synced = len(f.d.data)
	return nil
}

func (f *memFile) Close() error { return nil }

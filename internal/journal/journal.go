// Package journal is the serving daemon's durability layer: a
// write-ahead log of control-plane mutations plus periodic atomic
// snapshots, so an angstromd restart (or crash) restores its enrolled
// fleet instead of forgetting it.
//
// The log is a sequence of frames, each `[len u32][crc32 u32][payload]`
// (little-endian; the IEEE CRC covers the length and the payload), laid
// down in segment files named wal-<start>.log where <start> is the
// sequence number of the segment's first record. Writers batch appends
// in memory and make them durable with one fsync per batch — group
// commit: every record appended while a sync is in flight rides the
// next one, so N concurrent control mutations cost one disk flush, not
// N. Snapshots are single-frame files written to a temp name and
// renamed into place (snap-<seq>.snap), each one a compaction point:
// after a snapshot at sequence K, segments before K are pruned.
//
// Recovery (Recover) walks the newest valid snapshot plus the segment
// chain after it, validating every frame and truncating a torn or
// corrupt tail instead of failing — a crash mid-write loses at most the
// records that were never acknowledged as committed. The FS interface
// abstracts the filesystem so tests inject write/fsync failures and
// take crash-consistent images at every commit boundary.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrFailed marks a journal whose disk has failed: the first write or
// sync error latches the writer into a failed state, and every
// subsequent operation reports it (wrapped) so the daemon can degrade
// instead of silently losing durability.
var ErrFailed = errors.New("journal failed")

const (
	// frameHeader is the per-frame overhead: u32 length + u32 CRC.
	frameHeader = 8
	// MaxFrame bounds one payload; a longer length prefix marks a
	// corrupt frame during recovery.
	MaxFrame = 16 << 20
)

// AppendFrame appends one framed payload to dst and returns it.
//
// This is the journal's 0-alloc gated path (BenchmarkJournalAppend):
// every live mutation and every beat frames a record through it.
//
//angstrom:hotpath
func AppendFrame(dst, payload []byte) []byte {
	// The header is built in place in dst (not a local array) so nothing
	// escapes into a per-call heap allocation: appending a record to a
	// warm buffer is allocation-free.
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(payload)))
	crc := crc32.ChecksumIEEE(dst[off : off+4])
	crc = crc32.Update(crc, crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(dst[off+4:], crc)
	return append(dst, payload...)
}

// Scan parses a frame sequence, returning the payloads of every valid
// frame and the byte offset where the valid prefix ends (== len(buf)
// when the buffer is clean). Anything after the first short, oversized,
// or checksum-failing frame is a torn tail to truncate. The payloads
// alias buf.
func Scan(buf []byte) (payloads [][]byte, valid int) {
	off := 0
	for {
		rest := len(buf) - off
		if rest < frameHeader {
			return payloads, off
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		want := binary.LittleEndian.Uint32(buf[off+4:])
		if n > MaxFrame || rest-frameHeader < n {
			return payloads, off
		}
		p := buf[off+frameHeader : off+frameHeader+n]
		crc := crc32.ChecksumIEEE(buf[off : off+4])
		crc = crc32.Update(crc, crc32.IEEETable, p)
		if crc != want {
			return payloads, off
		}
		payloads = append(payloads, p)
		off += frameHeader + n
	}
}

func segmentName(start uint64) string  { return fmt.Sprintf("wal-%016x.log", start) }
func snapshotName(seq uint64) string   { return fmt.Sprintf("snap-%016x.snap", seq) }
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	_, err := fmt.Sscanf(name[len(prefix):len(name)-len(suffix)], "%016x", &seq)
	return seq, err == nil
}

// Options tunes a Writer.
type Options struct {
	// FlushEvery, when positive, starts a background flusher that makes
	// buffered (asynchronously appended) records durable at least this
	// often. Synchronous commits flush regardless.
	FlushEvery time.Duration
	// OnError, when non-nil, is called once with the error that latched
	// the writer into the failed state (possibly from the background
	// flusher's goroutine).
	OnError func(error)
	// BeforeSync, when non-nil, runs immediately before every fsync with
	// the batch about to be made durable — the commit-boundary hook
	// crash-injection tests use to image the filesystem.
	BeforeSync func(batch []byte)
}

// Writer appends framed records to the current journal segment.
// Append buffers without touching the disk (hot paths); Commit is
// Append plus durability, amortized across concurrent committers by
// group commit. All methods are safe for concurrent use.
type Writer struct {
	fs   FS
	dir  string
	opts Options

	// mu guards the append buffer and the logical sequence number.
	mu       sync.Mutex
	buf      []byte
	appended uint64 // sequence number of the last appended record
	err      error  // latched first failure, wrapped in ErrFailed

	// flushMu serializes the write+fsync path; synced trails appended.
	flushMu sync.Mutex
	f       File
	spare   []byte // recycled batch buffer, guarded by flushMu
	synced  atomic.Uint64

	stopFlusher chan struct{}
	flusherDone chan struct{}
}

// NewWriter opens a fresh segment starting at sequence start (an
// existing file of that name is truncated — by construction it can only
// be an empty leftover of a crash between boots).
func NewWriter(fs FS, dir string, start uint64, opts Options) (*Writer, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	f, err := fs.Create(dir + "/" + segmentName(start))
	if err != nil {
		return nil, err
	}
	w := &Writer{fs: fs, dir: dir, opts: opts, f: f, appended: start}
	w.synced.Store(start)
	if opts.FlushEvery > 0 {
		w.stopFlusher = make(chan struct{})
		w.flusherDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// flushLoop is the interval writer behind asynchronous appends: beats
// and tick records become durable within FlushEvery of landing in the
// buffer even when no synchronous commit comes along to carry them.
func (w *Writer) flushLoop() {
	defer close(w.flusherDone)
	ticker := time.NewTicker(w.opts.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopFlusher:
			return
		case <-ticker.C:
			_ = w.Flush() // errors latch; the next caller sees them
		}
	}
}

// fail latches err (first one wins) and reports the wrapped form.
func (w *Writer) fail(err error) error {
	w.mu.Lock()
	if w.err == nil {
		w.err = fmt.Errorf("%w: %v", ErrFailed, err)
		if w.opts.OnError != nil {
			// Release the lock for the callback: it may call back into
			// Err or Seq.
			latched := w.err
			w.mu.Unlock()
			w.opts.OnError(latched)
			return latched
		}
	}
	latched := w.err
	w.mu.Unlock()
	return latched
}

// Err reports the latched failure, nil while healthy.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Seq reports the sequence number of the last appended record.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appended
}

// Append buffers one record and returns its sequence number without
// touching the disk: the record becomes durable with the next commit or
// interval flush. This is the hot-path entry — no I/O, no fsync.
//
//angstrom:hotpath
func (w *Writer) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxFrame {
		//lint:allow hotpath cold branch: records larger than MaxFrame are refused, never served
		return 0, fmt.Errorf("journal: %d-byte record exceeds %d", len(payload), MaxFrame)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	w.buf = AppendFrame(w.buf, payload)
	w.appended++
	return w.appended, nil
}

// Sync blocks until record seq is durable. Concurrent callers group:
// whoever takes the flush lock writes and fsyncs every record buffered
// so far, and the rest return without issuing their own.
func (w *Writer) Sync(seq uint64) error {
	if w.synced.Load() >= seq {
		return w.Err()
	}
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	if w.synced.Load() >= seq {
		return w.Err()
	}
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	batch := w.buf
	w.buf = w.spare[:0]
	upto := w.appended
	w.mu.Unlock()

	if w.opts.BeforeSync != nil {
		w.opts.BeforeSync(batch)
	}
	if len(batch) > 0 {
		if _, err := w.f.Write(batch); err != nil {
			return w.fail(err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return w.fail(err)
	}
	w.spare = batch[:0]
	w.synced.Store(upto)
	return nil
}

// Commit appends one record and blocks until it is durable.
func (w *Writer) Commit(payload []byte) (uint64, error) {
	seq, err := w.Append(payload)
	if err != nil {
		return 0, err
	}
	return seq, w.Sync(seq)
}

// Flush makes everything appended so far durable.
func (w *Writer) Flush() error {
	w.mu.Lock()
	seq := w.appended
	w.mu.Unlock()
	return w.Sync(seq)
}

// Rotate flushes and closes the current segment and starts a new one at
// the current sequence number, which it returns — the compaction
// boundary a snapshot is taken at. The buffer is drained atomically
// with capturing the boundary, so every record up to the returned
// sequence lands in the old segment and everything after it in the new.
func (w *Writer) Rotate() (uint64, error) {
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	batch := w.buf
	w.buf = w.spare[:0]
	seq := w.appended
	w.mu.Unlock()
	if len(batch) > 0 {
		if _, err := w.f.Write(batch); err != nil {
			return 0, w.fail(err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return 0, w.fail(err)
	}
	w.spare = batch[:0]
	w.synced.Store(seq)
	if err := w.f.Close(); err != nil {
		return 0, w.fail(err)
	}
	f, err := w.fs.Create(w.dir + "/" + segmentName(seq))
	if err != nil {
		return 0, w.fail(err)
	}
	w.f = f
	return seq, nil
}

// Close flushes the tail and closes the segment. The writer is
// unusable afterwards.
func (w *Writer) Close() error {
	if w.stopFlusher != nil {
		close(w.stopFlusher)
		<-w.flusherDone
		w.stopFlusher = nil
	}
	flushErr := w.Flush()
	w.flushMu.Lock()
	defer w.flushMu.Unlock()
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// State is what Recover reconstructs from a journal directory.
type State struct {
	// Snapshot is the newest valid snapshot's payload (nil if none) and
	// SnapshotSeq its compaction point: records before it are inside it.
	Snapshot    []byte
	SnapshotSeq uint64
	// Records is the replay tail: every durable record from SnapshotSeq
	// on, in append order.
	Records [][]byte
	// NextSeq is the sequence number the journal continues at — open
	// the next Writer with it.
	NextSeq uint64
	// TruncatedBytes counts torn-tail bytes discarded (and repaired on
	// disk) during recovery; DroppedSegments lists segment files beyond
	// a mid-chain corruption that had to be abandoned to keep the
	// recovered history a consistent prefix.
	TruncatedBytes  int
	DroppedSegments []string
}

// Recover reads a journal directory: newest valid snapshot, then the
// segment chain after it, frame-validating everything and truncating a
// torn or corrupt tail in place. An empty or missing directory is a
// genesis state, not an error.
func Recover(fs FS, dir string) (*State, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps, starts []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seq)
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			starts = append(starts, seq)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })

	st := &State{}
	for _, seq := range snaps {
		buf, err := fs.ReadFile(dir + "/" + snapshotName(seq))
		if err != nil {
			continue
		}
		if payloads, valid := Scan(buf); len(payloads) == 1 && valid == len(buf) {
			st.Snapshot = payloads[0]
			st.SnapshotSeq = seq
			break
		}
	}
	st.NextSeq = st.SnapshotSeq

	for i, start := range starts {
		name := dir + "/" + segmentName(start)
		end := start // exclusive end once scanned
		buf, err := fs.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("journal: read %s: %w", name, err)
		}
		payloads, valid := Scan(buf)
		end = start + uint64(len(payloads))
		if end <= st.NextSeq {
			// Entirely behind the snapshot (or the chain already walked
			// past it): nothing to replay from this segment.
			continue
		}
		if start > st.NextSeq {
			// A gap: records [NextSeq, start) are gone (a pruned or lost
			// segment). The consistent prefix ends here; everything from
			// this segment on is unusable.
			for _, s := range starts[i:] {
				st.DroppedSegments = append(st.DroppedSegments, segmentName(s))
			}
			break
		}
		skip := st.NextSeq - start // records the snapshot already covers
		st.Records = append(st.Records, payloads[skip:]...)
		st.NextSeq = end
		if valid < len(buf) {
			// Torn tail: repair in place. If this was not the last
			// segment, the chain is broken past it — drop the rest.
			st.TruncatedBytes += len(buf) - valid
			if err := fs.Truncate(name, int64(valid)); err != nil {
				return nil, fmt.Errorf("journal: repair %s: %w", name, err)
			}
			for _, s := range starts[i+1:] {
				st.DroppedSegments = append(st.DroppedSegments, segmentName(s))
			}
			break
		}
	}
	return st, nil
}

// WriteSnapshot atomically installs a snapshot at compaction point seq:
// the framed payload goes to a temp file, is fsynced, and renamed into
// its final name, so a crash mid-write can never leave a half snapshot
// under a valid name.
func WriteSnapshot(fs FS, dir string, seq uint64, payload []byte) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	tmp := dir + "/" + snapshotName(seq) + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(AppendFrame(nil, payload)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, dir+"/"+snapshotName(seq))
}

// Prune removes snapshots and segments made redundant by a durable
// snapshot at seq: older snapshots, their temp leftovers, and every
// segment whose records all precede seq (segments rotate exactly at
// snapshot points, so a segment starting before seq ends by it).
// Best-effort: an undeletable file costs disk, not correctness.
func Prune(fs FS, dir string, seq uint64) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, name := range names {
		if s, ok := parseSeq(name, "snap-", ".snap"); ok && s < seq {
			_ = fs.Remove(dir + "/" + name)
		}
		if s, ok := parseSeq(name, "snap-", ".snap.tmp"); ok && s <= seq {
			_ = fs.Remove(dir + "/" + name)
		}
		if s, ok := parseSeq(name, "wal-", ".log"); ok && s < seq {
			_ = fs.Remove(dir + "/" + name)
		}
	}
}

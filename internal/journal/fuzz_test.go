package journal

import (
	"bytes"
	"testing"
)

// FuzzScan hammers the frame decoder with arbitrary bytes: recovery
// feeds it whatever a crash left on disk, so it must never panic, never
// claim a valid prefix it can't re-parse, and stay stable under the
// truncation repair it prescribes.
func FuzzScan(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(AppendFrame(nil, []byte("hello")))
	f.Add(AppendFrame(AppendFrame(nil, []byte("a")), []byte("bb")))
	f.Add(AppendFrame(nil, nil))
	two := AppendFrame(AppendFrame(nil, []byte("first")), []byte("second"))
	f.Add(two[:len(two)-3]) // torn tail
	flipped := append([]byte(nil), two...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped) // checksum failure
	huge := AppendFrame(nil, []byte("x"))
	huge[3] = 0x7f
	f.Add(huge) // oversized length prefix
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, buf []byte) {
		payloads, valid := Scan(buf)
		if valid < 0 || valid > len(buf) {
			t.Fatalf("valid offset %d outside [0, %d]", valid, len(buf))
		}
		// The valid prefix must re-parse to exactly the same records —
		// this is the invariant torn-tail Truncate repair relies on.
		again, valid2 := Scan(buf[:valid])
		if valid2 != valid || len(again) != len(payloads) {
			t.Fatalf("truncated prefix re-parses to %d records/%d bytes, want %d/%d",
				len(again), valid2, len(payloads), valid)
		}
		for i := range payloads {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("record %d changed across re-parse", i)
			}
		}
		// Round-tripping the payloads yields the valid prefix verbatim.
		var rebuilt []byte
		for _, p := range payloads {
			rebuilt = AppendFrame(rebuilt, p)
		}
		if !bytes.Equal(rebuilt, buf[:valid]) {
			t.Fatalf("re-encoded prefix differs from scanned prefix")
		}
	})
}

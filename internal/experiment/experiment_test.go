package experiment

import (
	"strings"
	"testing"
)

// The experiment tests run reduced-size versions of each figure and
// assert the paper's qualitative claims — who wins, in which direction —
// rather than absolute numbers (see EXPERIMENTS.md for the full-size
// paper-vs-measured comparison).

func fig3Quick(t *testing.T) Fig3Result {
	t.Helper()
	res, err := RunFig3(Fig3Options{DurationS: 40, WarmupS: 15})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFig3OrderingMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop experiment")
	}
	res := fig3Quick(t)
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5 benchmarks", len(res.Rows))
	}
	// §5.2 headline claims (thresholds loosened for the shortened run;
	// EXPERIMENTS.md records the full-length numbers).
	if res.SEECOverStatic < 1.08 {
		t.Errorf("SEEC/static = %.3f, paper reports > 1.15", res.SEECOverStatic)
	}
	if res.SEECOverUncoordinated < 1.03 {
		t.Errorf("SEEC/uncoordinated = %.3f, paper reports > 1.20", res.SEECOverUncoordinated)
	}
	if res.SEECOfDynamic < 0.85 || res.SEECOfDynamic > 1.05 {
		t.Errorf("SEEC/dynamic = %.3f, paper reports ~0.94", res.SEECOfDynamic)
	}
	// SEEC must beat the non-adaptive baseline on every benchmark, and
	// beat uncoordinated adaptation on most.
	uncWins := 0
	for _, row := range res.Rows {
		if row.SEEC <= row.NoAdapt {
			t.Errorf("%s: SEEC %.3f not above no-adapt %.3f", row.Benchmark, row.SEEC, row.NoAdapt)
		}
		if row.SEEC > row.Uncoordinated {
			uncWins++
		}
	}
	if uncWins < 3 {
		t.Errorf("SEEC beat uncoordinated on only %d/5 benchmarks", uncWins)
	}
}

func TestFig3StringRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("closed-loop experiment")
	}
	res := fig3Quick(t)
	s := res.String()
	for _, want := range []string{"barnes", "ocean", "raytrace", "water", "volrend", "dynamic"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered figure missing %q", want)
		}
	}
}

func TestFig4MatchesPaperShape(t *testing.T) {
	res, err := RunFig4(1.15)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
	// §5.3: "the non-adaptive system allocates 64 cores out of a
	// possible 256".
	if res.NoAdaptCfg.Cores != 64 {
		t.Errorf("non-adaptive config uses %d cores, paper reports 64", res.NoAdaptCfg.Cores)
	}
	// §5.3: "a static oracle allocates 256 cores for running barnes,
	// outperforming the non-adaptive configuration by over 5x" — we
	// require the right allocation and a multiple-fold win.
	for _, row := range res.Rows {
		if row.Benchmark != "barnes" {
			continue
		}
		if row.StaticCfg.Cores != 256 {
			t.Errorf("barnes static oracle uses %d cores, paper reports 256", row.StaticCfg.Cores)
		}
		if ratio := row.StaticOracle / row.NoAdapt; ratio < 3 {
			t.Errorf("barnes static/no-adapt = %.2f, paper reports > 5", ratio)
		}
	}
	// Static oracle must beat no-adapt for every benchmark; overall
	// average substantially above 1 (paper: 1.72).
	for _, row := range res.Rows {
		if row.StaticOracle <= row.NoAdapt {
			t.Errorf("%s: static %.3f not above no-adapt %.3f", row.Benchmark, row.StaticOracle, row.NoAdapt)
		}
	}
	if res.AvgStaticOverNoAdapt < 1.5 {
		t.Errorf("avg static/no-adapt = %.2f, paper reports 1.72", res.AvgStaticOverNoAdapt)
	}
	if res.AvgSEECOverNoAdapt < 2.0 {
		t.Errorf("avg SEEC/no-adapt = %.2f, paper reports > 2", res.AvgSEECOverNoAdapt)
	}
}

func TestFig4MultiplierDefault(t *testing.T) {
	res, err := RunFig4(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Multiplier != 1.15 {
		t.Fatalf("default multiplier = %g, want the paper's 1.15", res.Multiplier)
	}
	if !strings.Contains(res.String(), "256-core Angstrom") {
		t.Fatal("rendered figure missing title")
	}
}

func TestFig2ClosedSystemsOffFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
	res, err := RunFig2(Fig2Options{Accesses: 40000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != len(Fig2Cores())*len(Fig2Caches()) {
		t.Fatalf("%d points, want %d", len(res.Points), len(Fig2Cores())*len(Fig2Caches()))
	}
	// There must be a frontier and at least one closed-system choice
	// strictly off it in each family (§2's claim).
	frontier := 0
	for _, pt := range res.Points {
		if pt.Pareto {
			frontier++
		}
	}
	if frontier < 2 {
		t.Fatalf("Pareto frontier has %d points; expected a trade-off curve", frontier)
	}
	cacheOff, coreOff := res.OffFrontier()
	if len(cacheOff) == 0 {
		t.Error("every cache-only choice landed on the frontier; §2 expects sub-optimality")
	}
	if len(coreOff) == 0 {
		t.Error("every core-only choice landed on the frontier; §2 expects sub-optimality")
	}
	if !strings.Contains(res.String(), "Pareto") && !strings.Contains(res.String(), "pareto") {
		t.Error("rendered figure missing frontier annotation")
	}
}

func TestFig2EnergyPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
	res, err := RunFig2(Fig2Options{Accesses: 40000})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		if pt.EnergyJ <= 0 || pt.IPS <= 0 {
			t.Fatalf("config (%d cores, %d KB): energy %g, IPS %g", pt.Cores, pt.CacheKB, pt.EnergyJ, pt.IPS)
		}
	}
}

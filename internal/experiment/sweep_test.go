package experiment

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSweepPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 3, 7, 128} {
		out, err := Sweep(items, workers, func(idx, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSweepPropagatesError(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Sweep(items, workers, func(idx, item int) (int, error) {
			if item == 5 {
				return 0, boom
			}
			return item, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want boom", workers, err)
		}
	}
}

func TestSweepEmptyAndIndexArg(t *testing.T) {
	out, err := Sweep(nil, 4, func(idx int, item string) (string, error) { return item, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	var calls atomic.Int64
	_, err = Sweep([]string{"a", "b"}, 2, func(idx int, item string) (string, error) {
		calls.Add(1)
		want := string(rune('a' + idx))
		if item != want {
			return "", fmt.Errorf("idx %d got item %q", idx, item)
		}
		return item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("fn ran %d times, want 2", calls.Load())
	}
}

func TestSafeRatio(t *testing.T) {
	if got := safeRatio(10, 2); got != 5 {
		t.Fatalf("safeRatio(10,2) = %g", got)
	}
	if got := safeRatio(10, 0); got != 0 {
		t.Fatalf("safeRatio(10,0) = %g, want 0", got)
	}
}

// encodeFig2Points serializes every field of every point with exact
// float bit patterns, so equality below means byte-identical results.
func encodeFig2Points(t *testing.T, pts []Fig2Point) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, pt := range pts {
		if err := binary.Write(&buf, binary.LittleEndian, struct {
			Cores, CacheKB                  int64
			IPS, EnergyJ                    float64
			Pareto, CacheChoice, CoreChoice bool
		}{
			int64(pt.Cores), int64(pt.CacheKB),
			pt.IPS, pt.EnergyJ,
			pt.Pareto, pt.CacheChoice, pt.CoreChoice,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFig2ParallelMatchesSerial is the sweep engine's determinism
// gate: the same seed must produce byte-identical Figure-2 points
// whether configurations are evaluated serially or on a worker pool.
func TestFig2ParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-driven experiment")
	}
	opts := Fig2Options{Accesses: 20000, Seed: 77}

	opts.Workers = 1
	serial, err := RunFig2(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	parallel, err := RunFig2(opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: serial %d, parallel %d", len(serial.Points), len(parallel.Points))
	}
	sb := encodeFig2Points(t, serial.Points)
	pb := encodeFig2Points(t, parallel.Points)
	if !bytes.Equal(sb, pb) {
		for i := range serial.Points {
			if serial.Points[i] != parallel.Points[i] {
				t.Errorf("point %d diverged:\n  serial   %+v\n  parallel %+v",
					i, serial.Points[i], parallel.Points[i])
			}
		}
		t.Fatal("parallel sweep is not byte-identical to the serial run")
	}
}

// TestFig4ParallelMatchesSerial covers the analytic sweep the same way
// (cheap enough to run unconditionally).
func TestFig4ParallelMatchesSerial(t *testing.T) {
	serial, err := RunFig4Opts(Fig4Options{Multiplier: 1.15, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunFig4Opts(Fig4Options{Multiplier: 1.15, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		if serial.Rows[i] != parallel.Rows[i] {
			t.Fatalf("row %d diverged:\n  serial   %+v\n  parallel %+v",
				i, serial.Rows[i], parallel.Rows[i])
		}
	}
}

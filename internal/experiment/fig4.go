package experiment

import (
	"fmt"

	"angstrom/internal/angstrom"
	"angstrom/internal/oracle"
	"angstrom/internal/workload"
)

// Fig4Row is one benchmark's §5.3 result: absolute perf/Watt for the
// non-adaptive system, the static oracle, and the predicted SEEC.
type Fig4Row struct {
	Benchmark  string
	TargetRate float64

	NoAdapt       float64
	StaticOracle  float64
	PredictedSEEC float64

	StaticCfg angstrom.Config
}

// Fig4Result is the Figure 4 dataset plus the §5.3 in-text numbers.
type Fig4Result struct {
	Rows       []Fig4Row
	NoAdaptCfg angstrom.Config
	// Multiplier is the SEEC/static-oracle ratio carried over from the
	// x86 experiment (the paper's 1.15).
	Multiplier float64

	AvgStaticOverNoAdapt    float64 // the paper's 72 %
	AvgSEECOverNoAdapt      float64 // the paper's "over 100 %"
	BarnesStaticOverNoAdapt float64 // the paper's "over 5x"
}

// Fig4Space enumerates the §5.3 configuration space: cache 32–128 KB by
// powers of two, cores 1–256 by powers of two, and the two V/f points.
func Fig4Space() []angstrom.Config {
	var out []angstrom.Config
	for cores := 1; cores <= 256; cores *= 2 {
		for _, kb := range []int{32, 64, 128} {
			for vf := 0; vf < 2; vf++ {
				out = append(out, angstrom.Config{Cores: cores, CacheKB: kb, VF: vf})
			}
		}
	}
	return out
}

// Fig4Options control the §5.3 experiment.
type Fig4Options struct {
	// Multiplier is the measured SEEC/static ratio from Figure 3
	// (<= 0 uses the paper's 1.15).
	Multiplier float64
	// Workers bounds the sweep's parallelism (0 = GOMAXPROCS, 1 =
	// serial). The characterization is a pure analytic model, so results
	// do not depend on the setting.
	Workers int
}

// RunFig4 regenerates Figure 4. multiplier is the measured SEEC/static
// ratio from Figure 3 (pass 0 to use the paper's 1.15).
func RunFig4(multiplier float64) (Fig4Result, error) {
	return RunFig4Opts(Fig4Options{Multiplier: multiplier})
}

// RunFig4Opts is RunFig4 with sweep control.
func RunFig4Opts(opts Fig4Options) (Fig4Result, error) {
	multiplier := opts.Multiplier
	if multiplier <= 0 {
		multiplier = 1.15
	}
	p := angstrom.DefaultParams()
	specs := workload.Specs()
	configs := Fig4Space()

	// Targets: half the maximum rate achievable on a 64-core-class
	// allocation (the goals applications bring from the deployments the
	// non-adaptive baseline represents). Anchoring targets to the
	// baseline class is what lets the static oracle choose *efficient*
	// configurations — e.g. all 256 cores at 0.4 V for barnes — instead
	// of being forced to the high-voltage point, which is the §5.3 story.
	// One sweep job per benchmark sweeps the whole configuration space.
	type charRes struct {
		pts    []oracle.Point
		target float64
	}
	chars, err := Sweep(specs, opts.Workers, func(_ int, spec workload.Spec) (charRes, error) {
		pts := make([]oracle.Point, len(configs))
		best64 := 0.0
		for c, cfg := range configs {
			m, err := angstrom.Evaluate(p, spec, cfg)
			if err != nil {
				return charRes{}, err
			}
			pts[c] = oracle.Point{Rate: m.HeartRate, Power: m.PowerW - p.UncoreW}
			if cfg.Cores == 64 && m.HeartRate > best64 {
				best64 = m.HeartRate
			}
		}
		return charRes{pts: pts, target: best64 / 2}, nil
	})
	if err != nil {
		return Fig4Result{}, err
	}
	points := make([][]oracle.Point, len(specs))
	targets := make([]float64, len(specs))
	for a := range specs {
		points[a] = chars[a].pts
		targets[a] = chars[a].target
	}

	noAdaptIdx := oracle.BestMeetingAll(points, targets)
	res := Fig4Result{NoAdaptCfg: configs[noAdaptIdx], Multiplier: multiplier}

	var sumStatic, sumSEEC float64
	for a, spec := range specs {
		staticIdx, _ := oracle.BestMeeting(points[a], targets[a])
		noAdapt := oracle.Metric(points[a][noAdaptIdx], targets[a])
		static := oracle.Metric(points[a][staticIdx], targets[a])
		seec := static * multiplier
		res.Rows = append(res.Rows, Fig4Row{
			Benchmark:     spec.Name,
			TargetRate:    targets[a],
			NoAdapt:       noAdapt,
			StaticOracle:  static,
			PredictedSEEC: seec,
			StaticCfg:     configs[staticIdx],
		})
		sumStatic += safeRatio(static, noAdapt)
		sumSEEC += safeRatio(seec, noAdapt)
		if spec.Name == "barnes" {
			res.BarnesStaticOverNoAdapt = safeRatio(static, noAdapt)
		}
	}
	n := float64(len(res.Rows))
	res.AvgStaticOverNoAdapt = sumStatic / n
	res.AvgSEECOverNoAdapt = sumSEEC / n
	return res, nil
}

// String renders the figure as the paper presents it: bars normalized to
// predicted SEEC.
func (r Fig4Result) String() string {
	out := "Figure 4: anticipated SEEC results on a 256-core Angstrom (perf/Watt normalized to predicted SEEC)\n"
	out += fmt.Sprintf("non-adaptive config: %d cores, %d KB L2, %d th V/f point (shared by all benchmarks)\n",
		r.NoAdaptCfg.Cores, r.NoAdaptCfg.CacheKB, r.NoAdaptCfg.VF)
	out += fmt.Sprintf("%-10s %10s %9s %8s %8s   %s\n",
		"benchmark", "target/s", "no-adapt", "static", "SEEC", "static-oracle config")
	for _, row := range r.Rows {
		norm := func(v float64) float64 {
			if row.PredictedSEEC == 0 {
				return 0
			}
			return v / row.PredictedSEEC
		}
		out += fmt.Sprintf("%-10s %10.1f %9.3f %8.3f %8.3f   %d cores, %d KB, VF%d\n",
			row.Benchmark, row.TargetRate,
			norm(row.NoAdapt), norm(row.StaticOracle), 1.0,
			row.StaticCfg.Cores, row.StaticCfg.CacheKB, row.StaticCfg.VF)
	}
	out += fmt.Sprintf("static oracle / non-adaptive (mean) = %.2f   predicted SEEC / non-adaptive (mean) = %.2f\n",
		r.AvgStaticOverNoAdapt, r.AvgSEECOverNoAdapt)
	out += fmt.Sprintf("barnes static oracle / non-adaptive = %.2f\n", r.BarnesStaticOverNoAdapt)
	return out
}

package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep is the parallel configuration-sweep engine behind every figure:
// it evaluates one independent job per item of a configuration space on
// a bounded worker pool and returns the results in input order.
//
// Determinism contract: fn must derive all of its state — including any
// RNG — from its (index, item) arguments alone, never from shared
// mutable state or scheduling order. Every experiment in this package
// seeds its per-configuration RNGs that way, so a sweep's results are
// bit-identical to a serial run regardless of worker count or
// interleaving; TestFig2ParallelMatchesSerial enforces this.
//
// workers <= 0 selects GOMAXPROCS. workers == 1 runs inline with no
// goroutines (the serial reference). The first error cancels the sweep:
// remaining queued jobs are skipped and the error is returned.
func Sweep[T, R any](items []T, workers int, fn func(idx int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]R, n)
	if workers <= 1 {
		for i, item := range items {
			r, err := fn(i, item)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}

	var (
		next    atomic.Int64 // shared job cursor
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow determinism this IS the sanctioned sweep worker pool: results land at out[i] by job index, so merge order is schedule-independent
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

// safeRatio divides num by den, returning 0 when den is 0 (sweep-safe:
// degenerate configurations — zero measured accesses, zero throughput —
// must yield a harmless point, not an Inf/NaN that poisons Pareto and
// oracle selection).
func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

package experiment

import (
	"fmt"
	"math"
	"sort"

	"angstrom/internal/angstrom"
	"angstrom/internal/workload"
)

// Fig2Point is one configuration of the §2 experiment: barnes on the
// trace-driven simulator, swept over core allocation and per-core L2
// size, reporting total energy for a fixed amount of work against
// aggregate instructions per second — the axes of Figure 2.
type Fig2Point struct {
	Cores   int
	CacheKB int
	IPS     float64
	EnergyJ float64

	// Pareto marks membership in the global Pareto frontier (the line in
	// the figure). CacheChoice marks configurations a closed cache-only
	// controller would pick (squares); CoreChoice, a closed core-only
	// allocator (triangles).
	Pareto      bool
	CacheChoice bool
	CoreChoice  bool
}

// Fig2Options control the experiment's cost.
type Fig2Options struct {
	// Accesses is the trace length per configuration.
	Accesses int
	// Seed drives the synthetic traces.
	Seed uint64
	// WorkInstr is the fixed work whose energy is reported.
	WorkInstr float64
	// Workers bounds the sweep's parallelism: 0 selects GOMAXPROCS,
	// 1 forces the serial reference path. Results are identical for any
	// value (see Sweep's determinism contract).
	Workers int
}

func (o *Fig2Options) fill() {
	if o.Accesses == 0 {
		o.Accesses = 60000
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
	if o.WorkInstr == 0 {
		o.WorkInstr = 2e9
	}
}

// Fig2Result is the dataset behind Figure 2.
type Fig2Result struct {
	Points []Fig2Point
}

// Fig2Cores and Fig2Caches are the swept values (§2: cores 1–64 by
// powers of two, per-core L2 16–256 KB by powers of two).
func Fig2Cores() []int  { return []int{1, 2, 4, 8, 16, 32, 64} }
func Fig2Caches() []int { return []int{16, 32, 64, 128, 256} }

// RunFig2 regenerates Figure 2 with the trace-driven simulator. The
// cores × cache grid is evaluated on the parallel sweep engine — every
// configuration's trace generators are seeded from (opts.Seed, core id)
// alone, so the result is identical for any Workers setting.
func RunFig2(opts Fig2Options) (Fig2Result, error) {
	opts.fill()
	spec, err := workload.ByName("barnes")
	if err != nil {
		return Fig2Result{}, err
	}
	p := angstrom.DefaultParams()

	cores, caches := Fig2Cores(), Fig2Caches()
	configs := make([]angstrom.Config, 0, len(cores)*len(caches))
	for _, c := range cores {
		for _, kb := range caches {
			configs = append(configs, angstrom.Config{Cores: c, CacheKB: kb, VF: 1})
		}
	}
	metrics, err := Sweep(configs, opts.Workers, func(_ int, cfg angstrom.Config) (angstrom.Metrics, error) {
		return angstrom.EvaluateDetailed(p, spec, cfg, opts.Accesses, opts.Seed)
	})
	if err != nil {
		return Fig2Result{}, err
	}

	// Aggregation. Degenerate configurations (zero throughput) are kept
	// as zero-energy points via safeRatio rather than Inf/NaN, so the
	// Pareto and closed-controller selections below stay well-defined.
	byCfg := make(map[[2]int]angstrom.Metrics, len(configs))
	var res Fig2Result
	for i, cfg := range configs {
		m := metrics[i]
		byCfg[[2]int{cfg.Cores, cfg.CacheKB}] = m
		res.Points = append(res.Points, Fig2Point{
			Cores: cfg.Cores, CacheKB: cfg.CacheKB,
			IPS:     m.IPS,
			EnergyJ: m.PowerW * safeRatio(opts.WorkInstr, m.IPS),
		})
	}

	markPareto(res.Points)

	// Closed cache-only controller: for each core count (set by someone
	// else), pick the cache size minimizing the memory hierarchy's own
	// energy-delay product — (cache + memory power)/IPS² — blind to core
	// and network costs. This is the [4]-style local policy of §2.
	for _, c := range cores {
		best, bestKB := math.Inf(1), 0
		for _, kb := range caches {
			m := byCfg[[2]int{c, kb}]
			edp := safeRatio(m.CacheW+m.MemW, m.IPS*m.IPS)
			if m.IPS > 0 && edp < best {
				best, bestKB = edp, kb
			}
		}
		markChoice(res.Points, c, bestKB, true)
	}
	// Closed core-only allocator: for each cache size, pick the core
	// count minimizing the cores' own energy-delay product, blind to the
	// memory system.
	for _, kb := range caches {
		best, bestCores := math.Inf(1), 0
		for _, c := range cores {
			m := byCfg[[2]int{c, kb}]
			edp := safeRatio(m.CoresW, m.IPS*m.IPS)
			if m.IPS > 0 && edp < best {
				best, bestCores = edp, c
			}
		}
		markChoice(res.Points, bestCores, kb, false)
	}
	return res, nil
}

func markChoice(points []Fig2Point, cores, kb int, cacheChoice bool) {
	for i := range points {
		if points[i].Cores == cores && points[i].CacheKB == kb {
			if cacheChoice {
				points[i].CacheChoice = true
			} else {
				points[i].CoreChoice = true
			}
			return
		}
	}
}

// markPareto flags the Pareto-optimal points: maximal IPS, minimal
// energy. Degenerate zero-throughput points (kept as zero-energy
// placeholders by the sweep aggregation) are never part of the
// frontier, matching the IPS > 0 guards on the closed-controller
// selections.
func markPareto(points []Fig2Point) {
	idx := make([]int, len(points))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa.EnergyJ != pb.EnergyJ {
			return pa.EnergyJ < pb.EnergyJ
		}
		return pa.IPS > pb.IPS
	})
	bestIPS := math.Inf(-1)
	for _, i := range idx {
		if points[i].IPS > bestIPS && points[i].IPS > 0 {
			points[i].Pareto = true
			bestIPS = points[i].IPS
		}
	}
}

// OffFrontier lists the closed-system choices that are NOT on the global
// Pareto frontier — the paper's point: local optimality composes into
// global sub-optimality.
func (r Fig2Result) OffFrontier() (cacheOnly, coreOnly []Fig2Point) {
	for _, pt := range r.Points {
		if pt.CacheChoice && !pt.Pareto {
			cacheOnly = append(cacheOnly, pt)
		}
		if pt.CoreChoice && !pt.Pareto {
			coreOnly = append(coreOnly, pt)
		}
	}
	return cacheOnly, coreOnly
}

// String renders the scatter as a table (energy ascending).
func (r Fig2Result) String() string {
	pts := make([]Fig2Point, len(r.Points))
	copy(pts, r.Points)
	sort.Slice(pts, func(i, j int) bool { return pts[i].EnergyJ < pts[j].EnergyJ })
	out := "Figure 2: efficiency of closed adaptive systems (barnes, trace-driven sim)\n"
	out += fmt.Sprintf("%-6s %-8s %12s %12s %8s %8s %8s\n",
		"cores", "cacheKB", "energy(J)", "IPS", "pareto", "cacheopt", "coreopt")
	for _, pt := range pts {
		out += fmt.Sprintf("%-6d %-8d %12.4f %12.3e %8v %8v %8v\n",
			pt.Cores, pt.CacheKB, pt.EnergyJ, pt.IPS, pt.Pareto, pt.CacheChoice, pt.CoreChoice)
	}
	cacheOff, coreOff := r.OffFrontier()
	out += fmt.Sprintf("closed-system choices off the Pareto frontier: cache-only %d/%d, core-only %d/%d\n",
		len(cacheOff), len(Fig2Cores()), len(coreOff), len(Fig2Caches()))
	return out
}

// Package experiment regenerates every table and figure in the paper's
// evaluation (§5) from the models in this repository: Figure 2 (closed
// adaptive systems compose badly), Figure 3 (SEEC vs. baselines on the
// Linux/x86 server), Figure 4 (projection onto a 256-core Angstrom), and
// the in-text numbers of §5.3.
//
// Every figure must be bit-identical across runs and worker counts
// (serial == parallel, pinned by the determinism tests), so the whole
// package is a deterministic scope: all randomness is seeded from the
// configuration, all concurrency goes through the Sweep worker pool.
//
//angstrom:deterministic
package experiment

import (
	"fmt"
	"math"

	"angstrom/internal/actuator"
	"angstrom/internal/control"
	"angstrom/internal/core"
	"angstrom/internal/heartbeat"
	"angstrom/internal/oracle"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
	"angstrom/internal/xeon"
)

// Fig3Options control the §5.2 experiment.
type Fig3Options struct {
	// DurationS is the measured run length per benchmark per system.
	DurationS float64
	// WarmupS runs each policy before measurement begins, so that a few
	// seconds of convergence transient do not dominate the averages (the
	// paper's executions run for minutes; ours are compressed).
	WarmupS float64
	// PeriodS is the decision period (1 s ≈ the WattsUp sampling rate).
	PeriodS float64
	// Seed drives workload noise.
	Seed uint64
	// Workers bounds the sweep's parallelism (0 = GOMAXPROCS, 1 =
	// serial). Every run is seeded per benchmark, so results do not
	// depend on the setting.
	Workers int
}

func (o *Fig3Options) fill() {
	if o.DurationS == 0 {
		o.DurationS = 120
	}
	if o.WarmupS == 0 {
		o.WarmupS = 20
	}
	if o.PeriodS == 0 {
		o.PeriodS = 1
	}
	if o.Seed == 0 {
		o.Seed = 2012
	}
}

// Fig3Row is one benchmark's results: absolute performance-per-Watt for
// each system (beats/s per Watt beyond idle).
type Fig3Row struct {
	Benchmark  string
	TargetRate float64

	NoAdapt       float64
	Uncoordinated float64
	SEEC          float64
	StaticOracle  float64
	DynamicOracle float64
}

// Fig3Result is the full Figure 3 dataset.
type Fig3Result struct {
	Rows []Fig3Row
	// NoAdaptCfg is the single configuration shared by all benchmarks in
	// the non-adaptive system.
	NoAdaptCfg xeon.Config

	// Summary ratios (means across benchmarks).
	SEECOverStatic        float64 // the multiplier §5.3 reuses
	SEECOverUncoordinated float64
	SEECOfDynamic         float64 // SEEC / dynamic oracle
}

// monitorWindow is the heart-rate averaging window used by the runtime:
// wide enough to suppress per-beat work noise, narrow enough to span a
// fraction of a decision period at the slowest configurations.
const monitorWindow = 41

// RunFig3 regenerates Figure 3.
func RunFig3(opts Fig3Options) (Fig3Result, error) {
	opts.fill()
	p := xeon.DefaultParams()
	specs := workload.Specs()
	configs := p.Configs()

	// Evaluate the full space per benchmark once (at nominal work), and
	// once derated to the heaviest phase. Every §5.2 policy is
	// goal-driven — its job is to meet the application's target — so the
	// static provisioners must size for the peak: with the windowed
	// metric an undershot window is performance lost for good. One sweep
	// job per benchmark: each characterizes the full configuration space
	// with the pure analytic model.
	type charRes struct {
		pts, peak []oracle.Point
		target    float64
	}
	chars, err := Sweep(specs, opts.Workers, func(_ int, spec workload.Spec) (charRes, error) {
		pts := make([]oracle.Point, len(configs))
		peak := make([]oracle.Point, len(configs))
		for c, cfg := range configs {
			m, err := xeon.Evaluate(p, spec, cfg)
			if err != nil {
				return charRes{}, err
			}
			pts[c] = oracle.Point{Rate: m.HeartRate, Power: m.PowerW - p.IdleW}
			peak[c] = oracle.Point{Rate: m.HeartRate / (1 + spec.PhaseAmp), Power: pts[c].Power}
		}
		return charRes{pts: pts, peak: peak, target: p.MaxHeartRate(spec) / 2}, nil
	})
	if err != nil {
		return Fig3Result{}, err
	}
	points := make([][]oracle.Point, len(specs))
	peakPoints := make([][]oracle.Point, len(specs))
	targets := make([]float64, len(specs))
	for a := range specs {
		points[a] = chars[a].pts
		peakPoints[a] = chars[a].peak
		targets[a] = chars[a].target
	}
	noAdaptIdx := oracle.BestMeetingAll(peakPoints, targets)
	noAdaptCfg := configs[noAdaptIdx]

	// Closed-loop stage: 5 systems × 5 benchmarks, each an independent
	// simulated run seeded per benchmark — one sweep job apiece.
	const nSystems = 5
	type job struct{ bench, system int }
	jobs := make([]job, 0, len(specs)*nSystems)
	for a := range specs {
		for s := 0; s < nSystems; s++ {
			jobs = append(jobs, job{bench: a, system: s})
		}
	}
	vals, err := Sweep(jobs, opts.Workers, func(_ int, j job) (float64, error) {
		spec := specs[j.bench]
		target := targets[j.bench]
		seed := opts.Seed + uint64(j.bench)*101
		switch j.system {
		case 0:
			return runFixed(p, spec, noAdaptCfg, target, seed, opts)
		case 1:
			// Static oracle: the cheapest configuration that still meets
			// the target through the heaviest phase — assigning resources
			// once means provisioning for the peak.
			staticIdx, _ := oracle.BestMeeting(peakPoints[j.bench], target)
			return runFixed(p, spec, configs[staticIdx], target, seed, opts)
		case 2:
			return runDynamicOracle(p, spec, configs, points[j.bench], target, seed, opts)
		case 3:
			return runSEEC(p, spec, target, seed, opts, false)
		default:
			return runSEEC(p, spec, target, seed, opts, true)
		}
	})
	if err != nil {
		return Fig3Result{}, err
	}

	res := Fig3Result{NoAdaptCfg: noAdaptCfg}
	var sumSEECStatic, sumSEECUnc, sumSEECDyn float64
	for a, spec := range specs {
		base := a * nSystems
		noAdapt, static, dynamic := vals[base], vals[base+1], vals[base+2]
		seec, unc := vals[base+3], vals[base+4]
		res.Rows = append(res.Rows, Fig3Row{
			Benchmark:  spec.Name,
			TargetRate: targets[a],

			NoAdapt:       noAdapt,
			Uncoordinated: unc,
			SEEC:          seec,
			StaticOracle:  static,
			DynamicOracle: dynamic,
		})
		sumSEECStatic += safeRatio(seec, static)
		sumSEECUnc += safeRatio(seec, unc)
		sumSEECDyn += safeRatio(seec, dynamic)
	}
	n := float64(len(res.Rows))
	res.SEECOverStatic = sumSEECStatic / n
	res.SEECOverUncoordinated = sumSEECUnc / n
	res.SEECOfDynamic = sumSEECDyn / n
	return res, nil
}

// initialConfig is where every benchmark starts (§5.2: "launched on a
// single core set to the minimum clock speed").
func initialConfig(p xeon.Params) xeon.Config {
	return xeon.Config{Cores: 1, PState: 0, Duty: p.DutyLevels}
}

// measurement captures §5.2's metric, excluding warmup. One refinement
// over the paper's wording: "the minimum of the achieved and desired
// performance" is applied per sampling window (1 s, the WattsUp period)
// rather than once to the whole-run mean. For a goal-driven application
// overshoot in one window cannot compensate undershoot in another — a
// video encoder alternating 60 and 10 fps is not delivering 35 fps — and
// without this reading every dynamic policy degenerates to the best
// static mix under a volume-only phase model (see EXPERIMENTS.md).
type measurement struct {
	mon    *heartbeat.Monitor
	meter  *xeon.PowerMeter
	active bool

	lapBeats uint64
	capped   float64 // Σ min(window rate, target) × window
	elapsed  float64
	joule0   float64
}

// start snapshots the counters at the end of warmup.
func (m *measurement) start() {
	m.active = true
	m.lapBeats = m.mon.Count()
	m.joule0 = m.meter.EnergyJoules()
}

// lap closes one sampling window of the given length.
func (m *measurement) lap(target, window float64) {
	if !m.active {
		return
	}
	beats := m.mon.Count()
	rate := float64(beats-m.lapBeats) / window
	m.lapBeats = beats
	m.capped += math.Min(rate, target) * window
	m.elapsed += window
}

// metric is min(achieved, desired) per Watt beyond idle, with the min
// applied per window as described above.
func (m *measurement) metric(p xeon.Params, target float64) float64 {
	if m.elapsed == 0 {
		return 0
	}
	meanRate := m.capped / m.elapsed
	meanPower := (m.meter.EnergyJoules() - m.joule0) / m.elapsed
	return oracle.Metric(oracle.Point{Rate: meanRate, Power: meanPower - p.IdleW}, target)
}

// runFixed measures perf/Watt for a fixed configuration.
func runFixed(p xeon.Params, spec workload.Spec, cfg xeon.Config, target float64, seed uint64, opts Fig3Options) (float64, error) {
	clock := sim.NewClock(0)
	srv, err := xeon.NewServer(p, cfg, clock)
	if err != nil {
		return 0, err
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter), heartbeat.WithWindow(monitorWindow))
	srv.Attach(workload.NewInstance(spec, seed), mon)
	meas := measurement{mon: mon, meter: srv.Meter}
	warm := int(opts.WarmupS / opts.PeriodS)
	steps := int(opts.DurationS / opts.PeriodS)
	for i := 0; i < warm+steps; i++ {
		if i == warm {
			meas.start()
		}
		if _, err := srv.RunInterval(opts.PeriodS); err != nil {
			return 0, err
		}
		meas.lap(target, opts.PeriodS)
	}
	return meas.metric(p, target), nil
}

// runDynamicOracle reconfigures every interval with perfect knowledge of
// the next interval's phase. The paper's oracle re-selects "at every
// heartbeat", i.e. orders of magnitude finer than our decision period;
// the continuum limit of per-heartbeat switching is the minimum-power
// fractional schedule over the configuration hull, which is what we
// execute (two sub-slices per interval).
func runDynamicOracle(p xeon.Params, spec workload.Spec, configs []xeon.Config, pts []oracle.Point, target float64, seed uint64, opts Fig3Options) (float64, error) {
	clock := sim.NewClock(0)
	srv, err := xeon.NewServer(p, initialConfig(p), clock)
	if err != nil {
		return 0, err
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter), heartbeat.WithWindow(monitorWindow))
	srv.Attach(workload.NewInstance(spec, seed), mon)
	meas := measurement{mon: mon, meter: srv.Meter}
	warm := int(opts.WarmupS / opts.PeriodS)
	steps := int(opts.DurationS / opts.PeriodS)
	cands := make([]control.Candidate, len(pts))
	for i := 0; i < warm+steps; i++ {
		if i == warm {
			meas.start()
		}
		w := spec.WorkAt(srv.BeatCount()) // perfect knowledge of the next phase
		for c := range pts {
			cands[c] = control.Candidate{ID: c, Speedup: pts[c].Rate / w, Power: pts[c].Power}
		}
		tr, err := control.NewTranslator(cands)
		if err != nil {
			return 0, err
		}
		sch := tr.Translate(target)
		slices := []struct {
			cfg xeon.Config
			dur float64
		}{
			{configs[sch.Lo.ID], opts.PeriodS * (1 - sch.HiFrac)},
			{configs[sch.Hi.ID], opts.PeriodS * sch.HiFrac},
		}
		for _, sl := range slices {
			if sl.dur <= 0 {
				continue
			}
			if err := srv.SetConfig(sl.cfg); err != nil {
				return 0, err
			}
			if _, err := srv.RunInterval(sl.dur); err != nil {
				return 0, err
			}
		}
		meas.lap(target, opts.PeriodS)
	}
	return meas.metric(p, target), nil
}

// runSEEC measures the SEEC runtime (coordinated) or the uncoordinated
// multi-runtime baseline.
func runSEEC(p xeon.Params, spec workload.Spec, target float64, seed uint64, opts Fig3Options, uncoordinated bool) (float64, error) {
	clock := sim.NewClock(0)
	srv, err := xeon.NewServer(p, initialConfig(p), clock)
	if err != nil {
		return 0, err
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter), heartbeat.WithWindow(monitorWindow))
	srv.Attach(workload.NewInstance(spec, seed), mon)
	mon.SetPerformanceGoal(target*0.98, target*1.02)

	acts, err := srv.Actuators()
	if err != nil {
		return 0, err
	}
	space, err := actuator.NewSpace(acts...)
	if err != nil {
		return 0, err
	}
	ropts := core.Options{
		Pole:    0.4,
		KalmanQ: (0.03 * target) * (0.03 * target),
		KalmanR: (0.02 * target) * (0.02 * target),
	}
	meas := measurement{mon: mon, meter: srv.Meter}
	warm := int(opts.WarmupS / opts.PeriodS)
	steps := int(opts.DurationS / opts.PeriodS)
	if uncoordinated {
		u, err := core.NewUncoordinated(spec.Name, clock, mon, space, ropts)
		if err != nil {
			return 0, err
		}
		for i := 0; i < warm+steps; i++ {
			if i == warm {
				meas.start()
			}
			cfg, _, err := u.Step()
			if err != nil {
				return 0, err
			}
			if err := space.Apply(cfg); err != nil {
				return 0, err
			}
			if _, err := srv.RunInterval(opts.PeriodS); err != nil {
				return 0, err
			}
			meas.lap(target, opts.PeriodS)
		}
	} else {
		rt, err := core.New(spec.Name, clock, mon, space, ropts)
		if err != nil {
			return 0, err
		}
		for i := 0; i < warm+steps; i++ {
			if i == warm {
				meas.start()
			}
			d, err := rt.Step()
			if err != nil {
				return 0, err
			}
			for _, sl := range d.Slices(opts.PeriodS) {
				if err := space.Apply(sl.Cfg); err != nil {
					return 0, err
				}
				if _, err := srv.RunInterval(sl.Duration); err != nil {
					return 0, err
				}
			}
			meas.lap(target, opts.PeriodS)
		}
	}
	return meas.metric(p, target), nil
}

// String renders the figure as the paper presents it: bars normalized to
// the dynamic oracle.
func (r Fig3Result) String() string {
	out := "Figure 3: SEEC on a Linux/x86 system (perf/Watt normalized to dynamic oracle)\n"
	out += fmt.Sprintf("non-adaptive config: %d cores, %d th P-state, duty %d\n",
		r.NoAdaptCfg.Cores, r.NoAdaptCfg.PState, r.NoAdaptCfg.Duty)
	out += fmt.Sprintf("%-10s %9s %8s %8s %8s %8s %8s\n",
		"benchmark", "target/s", "no-adapt", "uncoord", "SEEC", "static", "dynamic")
	for _, row := range r.Rows {
		d := row.DynamicOracle
		norm := func(v float64) float64 {
			if d == 0 {
				return 0
			}
			return v / d
		}
		out += fmt.Sprintf("%-10s %9.1f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			row.Benchmark, row.TargetRate,
			norm(row.NoAdapt), norm(row.Uncoordinated), norm(row.SEEC),
			norm(row.StaticOracle), 1.0)
	}
	out += fmt.Sprintf("mean SEEC/static = %.3f   mean SEEC/uncoordinated = %.3f   mean SEEC/dynamic = %.3f\n",
		r.SEECOverStatic, r.SEECOverUncoordinated, r.SEECOfDynamic)
	return out
}

package actuator

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// knob builds a valid test actuator whose speedups are the given values
// and whose power multipliers are speedup^2 (superlinear, like DVFS).
// The nominal setting is the first one with speedup exactly 1.
func knob(name string, speedups ...float64) *Actuator {
	settings := make([]Setting, len(speedups))
	nominal := -1
	for i, s := range speedups {
		settings[i] = Setting{
			Label:  name,
			Value:  i,
			Effect: Effect{Speedup: s, PowerX: s * s, Distort: 1},
		}
		if s == 1 && nominal < 0 {
			nominal = i
		}
	}
	return &Actuator{
		Name:         name,
		Settings:     settings,
		NominalIndex: nominal,
		Apply:        func(int) error { return nil },
		Scope:        GlobalScope,
		Axes:         []Axis{Performance, Power},
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	if err := knob("cores", 1, 2, 4).Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Actuator)
	}{
		{"empty name", func(a *Actuator) { a.Name = "" }},
		{"no settings", func(a *Actuator) { a.Settings = nil }},
		{"bad nominal index", func(a *Actuator) { a.NominalIndex = 99 }},
		{"non-identity nominal", func(a *Actuator) { a.Settings[a.NominalIndex].Effect.PowerX = 2 }},
		{"nil apply", func(a *Actuator) { a.Apply = nil }},
		{"negative delay", func(a *Actuator) { a.DelaySeconds = -1 }},
		{"non-positive multiplier", func(a *Actuator) { a.Settings[1].Effect.Speedup = 0 }},
		{"undeclared axis", func(a *Actuator) { a.Axes = []Axis{Performance} }},
	}
	for _, tc := range cases {
		a := knob("k", 1, 2)
		tc.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestSetAppliesAndTracks(t *testing.T) {
	applied := -1
	a := knob("freq", 1, 1.5)
	a.Apply = func(i int) error { applied = i; return nil }
	if err := a.Set(1); err != nil {
		t.Fatalf("Set(1): %v", err)
	}
	if applied != 1 || a.Current() != 1 {
		t.Fatalf("applied=%d Current()=%d, want 1/1", applied, a.Current())
	}
	if err := a.Set(5); err == nil {
		t.Fatal("Set(5) out of range did not error")
	}
	if a.Current() != 1 {
		t.Fatal("failed Set changed Current")
	}
}

func TestSetPropagatesApplyError(t *testing.T) {
	sentinel := errors.New("hardware said no")
	a := knob("freq", 1, 2)
	a.Apply = func(int) error { return sentinel }
	if err := a.Set(1); !errors.Is(err, sentinel) {
		t.Fatalf("Set error = %v, want wrapped sentinel", err)
	}
}

func TestEffectComposition(t *testing.T) {
	e := Effect{Speedup: 2, PowerX: 3, Distort: 1}.Mul(Effect{Speedup: 4, PowerX: 0.5, Distort: 1})
	if e.Speedup != 8 || e.PowerX != 1.5 || e.Distort != 1 {
		t.Fatalf("Mul = %+v, want {8 1.5 1}", e)
	}
}

func TestSpaceSizeAndNominal(t *testing.T) {
	s, err := NewSpace(knob("a", 1, 2, 4), knob("b", 0.5, 1, 1.5))
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 9 {
		t.Fatalf("Size() = %d, want 9", s.Size())
	}
	nom := s.Nominal()
	if nom[0] != 0 || nom[1] != 1 {
		t.Fatalf("Nominal() = %v, want [0 1]", nom)
	}
	e := s.Effect(nom)
	if e.Speedup != 1 || e.PowerX != 1 {
		t.Fatalf("nominal effect = %+v, want identity", e)
	}
}

func TestSpaceEffectIsProduct(t *testing.T) {
	s, err := NewSpace(knob("a", 1, 2), knob("b", 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	e := s.Effect(Config{1, 1})
	if e.Speedup != 6 {
		t.Fatalf("speedup = %g, want 6", e.Speedup)
	}
	if math.Abs(e.PowerX-36) > 1e-12 {
		t.Fatalf("power = %g, want 36", e.PowerX)
	}
}

func TestSpaceRejectsDuplicateNames(t *testing.T) {
	if _, err := NewSpace(knob("a", 1), knob("a", 1)); err == nil {
		t.Fatal("duplicate actuator names accepted")
	}
}

func TestSpaceRejectsEmpty(t *testing.T) {
	if _, err := NewSpace(); err == nil {
		t.Fatal("empty space accepted")
	}
}

func TestEnumerateVisitsAllOnce(t *testing.T) {
	s, err := NewSpace(knob("a", 1, 2, 4), knob("b", 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]int)
	s.Enumerate(func(cfg Config) {
		seen[[2]int{cfg[0], cfg[1]}]++
	})
	if len(seen) != 6 {
		t.Fatalf("enumerated %d distinct configs, want 6", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("config %v visited %d times", k, n)
		}
	}
}

func TestApplyConfigDrivesAllActuators(t *testing.T) {
	got := make(map[string]int)
	a, b := knob("a", 1, 2), knob("b", 1, 3)
	a.Apply = func(i int) error { got["a"] = i; return nil }
	b.Apply = func(i int) error { got["b"] = i; return nil }
	s, err := NewSpace(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Config{1, 0}); err != nil {
		t.Fatal(err)
	}
	if got["a"] != 1 || got["b"] != 0 {
		t.Fatalf("applied %v, want a=1 b=0", got)
	}
	if !s.Current().Equal(Config{1, 0}) {
		t.Fatalf("Current() = %v, want [1 0]", s.Current())
	}
}

func TestApplyRejectsWrongLength(t *testing.T) {
	s, _ := NewSpace(knob("a", 1, 2))
	if err := s.Apply(Config{0, 0}); err == nil {
		t.Fatal("wrong-length config accepted")
	}
}

func TestMaxDelay(t *testing.T) {
	a, b := knob("a", 1), knob("b", 1)
	a.DelaySeconds = 0.25
	b.DelaySeconds = 1.5
	s, _ := NewSpace(a, b)
	if d := s.MaxDelay(); d != 1.5 {
		t.Fatalf("MaxDelay = %g, want 1.5", d)
	}
}

func TestParetoFrontierBasic(t *testing.T) {
	pts := []Point{
		{Cfg: Config{0}, Effect: Effect{Speedup: 1, PowerX: 1, Distort: 1}},
		{Cfg: Config{1}, Effect: Effect{Speedup: 2, PowerX: 4, Distort: 1}},
		{Cfg: Config{2}, Effect: Effect{Speedup: 1.5, PowerX: 5, Distort: 1}}, // dominated by cfg1? no: slower and pricier than cfg1 -> dominated
		{Cfg: Config{3}, Effect: Effect{Speedup: 3, PowerX: 9, Distort: 1}},
	}
	f := ParetoFrontier(pts)
	if len(f) != 3 {
		t.Fatalf("frontier size = %d, want 3 (dominated point kept?) %+v", len(f), f)
	}
	for i := 1; i < len(f); i++ {
		if f[i].Effect.Speedup <= f[i-1].Effect.Speedup {
			t.Fatal("frontier speedups not strictly increasing")
		}
		if f[i].Effect.PowerX <= f[i-1].Effect.PowerX {
			t.Fatal("frontier powers not strictly increasing")
		}
	}
}

func TestParetoFrontierProperty(t *testing.T) {
	// Property: no frontier point is dominated by any input point, and
	// every input point is dominated-or-equal by some frontier point.
	f := func(raw []struct{ S, P uint8 }) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]Point, len(raw))
		for i, r := range raw {
			pts[i] = Point{
				Cfg:    Config{i},
				Effect: Effect{Speedup: 1 + float64(r.S)/16, PowerX: 1 + float64(r.P)/16, Distort: 1},
			}
		}
		front := ParetoFrontier(pts)
		dominates := func(a, b Effect) bool {
			return a.Speedup >= b.Speedup && a.PowerX <= b.PowerX &&
				(a.Speedup > b.Speedup || a.PowerX < b.PowerX)
		}
		for _, fp := range front {
			for _, p := range pts {
				if dominates(p.Effect, fp.Effect) {
					return false
				}
			}
		}
		for _, p := range pts {
			covered := false
			for _, fp := range front {
				if fp.Effect.Speedup >= p.Effect.Speedup && fp.Effect.PowerX <= p.Effect.PowerX {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPointsSortedBySpeedup(t *testing.T) {
	s, _ := NewSpace(knob("a", 1, 4, 2), knob("b", 1, 0.5))
	pts := s.Points()
	if len(pts) != 6 {
		t.Fatalf("Points() length = %d, want 6", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Effect.Speedup < pts[i-1].Effect.Speedup {
			t.Fatal("Points() not sorted by speedup")
		}
	}
}

func TestRegistryScoping(t *testing.T) {
	r := NewRegistry()
	global := knob("dvfs", 1, 2)
	if err := r.RegisterGlobal(global); err != nil {
		t.Fatal(err)
	}
	appKnob := knob("algo", 1, 1.3)
	appKnob.Scope = ApplicationScope
	if err := r.RegisterForApp("encoder", appKnob); err != nil {
		t.Fatal(err)
	}
	// encoder sees both; other apps see only the global knob.
	if got := r.AvailableTo("encoder"); len(got) != 2 {
		t.Fatalf("encoder sees %d actuators, want 2", len(got))
	}
	if got := r.AvailableTo("barnes"); len(got) != 1 || got[0].Name != "dvfs" {
		t.Fatalf("barnes sees %v, want only dvfs", got)
	}
}

func TestRegistryRejectsScopeMismatch(t *testing.T) {
	r := NewRegistry()
	a := knob("x", 1, 2) // GlobalScope by construction
	if err := r.RegisterForApp("app", a); err == nil {
		t.Fatal("global-scope actuator accepted via RegisterForApp")
	}
	b := knob("y", 1, 2)
	b.Scope = ApplicationScope
	if err := r.RegisterGlobal(b); err == nil {
		t.Fatal("application-scope actuator accepted via RegisterGlobal")
	}
}

func TestRegistryDuplicateAndUnregister(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterGlobal(knob("x", 1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterGlobal(knob("x", 1, 2)); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	r.Unregister("x")
	if err := r.RegisterGlobal(knob("x", 1, 2)); err != nil {
		t.Fatalf("re-registration after Unregister failed: %v", err)
	}
}

func TestSpaceFor(t *testing.T) {
	r := NewRegistry()
	if _, err := r.SpaceFor("app"); err == nil {
		t.Fatal("SpaceFor with no actuators did not error")
	}
	if err := r.RegisterGlobal(knob("cores", 1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterGlobal(knob("freq", 1, 1.5)); err != nil {
		t.Fatal(err)
	}
	s, err := r.SpaceFor("app")
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 6 {
		t.Fatalf("space size = %d, want 6", s.Size())
	}
}

func TestMaxSpeedup(t *testing.T) {
	a := knob("a", 1, 2, 8, 4)
	if got := a.MaxSpeedup(); got != 8 {
		t.Fatalf("MaxSpeedup = %g, want 8", got)
	}
}

func TestAxisAndScopeStrings(t *testing.T) {
	if Performance.String() != "performance" || Power.String() != "power" ||
		Accuracy.String() != "accuracy" {
		t.Fatal("axis names wrong")
	}
	if Axis(42).String() == "" {
		t.Fatal("unknown axis must still format")
	}
	if GlobalScope.String() != "global" || ApplicationScope.String() != "application" {
		t.Fatal("scope names wrong")
	}
}

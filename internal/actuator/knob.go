package actuator

import (
	"fmt"
	"sync"
)

// This file defines the hardware-facing half of the action interface:
// the Knob and Sensor contracts that connect the decision layers
// (internal/core, internal/server) to a platform model (internal/angstrom,
// internal/xeon) without either importing the other's internals.
//
//   - A Knob is the act side: an ordered, discrete hardware setting
//     (core allocation, cache capacity, a DVFS operating point) that a
//     decision engine drives through an Actuator built with FromKnob.
//   - A Sensor is the observe side: a point-in-time Sample of the
//     hardware the knob settings act on (IPS, power, stall fraction),
//     feeding model state back into the heartbeat-driven controller.
//
// Both contracts are deliberately tiny so the serving daemon can accept
// fakes in tests and alternative backends without code changes.

// Knob is one discrete, ordered hardware setting ("ladder"): level 0 is
// the lowest rung, Levels()-1 the highest. Implementations must be safe
// for the single-actuation-goroutine discipline of the SEEC runtime;
// implementations shared across goroutines must synchronize internally.
type Knob interface {
	// Name identifies the knob in reports and registries.
	Name() string
	// Levels reports the number of rungs.
	Levels() int
	// Level reports the current rung.
	Level() int
	// SetLevel moves the knob to the given rung. Implementations may
	// move less far than requested (rate limits, resource caps); Level
	// reports where the knob actually landed.
	SetLevel(level int) error
}

// Sample is one Sensor reading: the observable state of the hardware
// executing one application. Zero fields mean "not measured".
type Sample struct {
	// Time is the reading's timestamp in simulated seconds.
	Time float64
	// IPS is aggregate instructions per second.
	IPS float64
	// PowerW is the power drawn by this application's share of the
	// hardware, in watts.
	PowerW float64
	// StallFrac is the fraction of cycles stalled on memory [0, 1].
	StallFrac float64
	// HeartRate is the model-predicted beats/s at the current setting.
	HeartRate float64
	// EnergyJ is cumulative energy attributed to the application.
	EnergyJ float64
}

// Sensor is the observe-side contract: anything that can report a
// Sample. The Angstrom chip partition implements it; the serving daemon
// reads it on every status request, so implementations must be cheap and
// allocation-free.
type Sensor interface {
	Sense() Sample
}

// FromKnob builds an Actuator whose Apply drives k. The slices declare
// the effect of each rung relative to the nominal rung (the one where
// speedup and power are both exactly 1), in the same order as the knob's
// levels.
func FromKnob(k Knob, labels []string, speedup, power []float64, delaySeconds float64, scope Scope) (*Actuator, error) {
	if k == nil {
		return nil, fmt.Errorf("actuator: nil knob")
	}
	if len(labels) != k.Levels() {
		return nil, fmt.Errorf("actuator %q: %d labels for %d levels", k.Name(), len(labels), k.Levels())
	}
	if len(labels) != len(speedup) || len(labels) != len(power) {
		return nil, fmt.Errorf("actuator %q: knob slices disagree (%d labels, %d speedups, %d powers)",
			k.Name(), len(labels), len(speedup), len(power))
	}
	nominal := -1
	settings := make([]Setting, len(labels))
	for i := range labels {
		settings[i] = Setting{
			Label:  labels[i],
			Value:  i,
			Effect: Effect{Speedup: speedup[i], PowerX: power[i], Distort: 1},
		}
		if speedup[i] == 1 && power[i] == 1 {
			nominal = i
		}
	}
	if nominal < 0 {
		return nil, fmt.Errorf("actuator %q: no nominal rung (speedup and power both 1)", k.Name())
	}
	a := &Actuator{
		Name:         k.Name(),
		Settings:     settings,
		NominalIndex: nominal,
		Apply:        k.SetLevel,
		DelaySeconds: delaySeconds,
		Scope:        scope,
		Axes:         []Axis{Performance, Power},
	}
	a.current = k.Level()
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Stepped wraps a knob so each SetLevel moves at most one rung toward
// the requested level — the shape of real hardware transitions (DVFS
// relock, cache way power-up), and the property the chip-backed daemon's
// actuation tests assert: every observed move is monotone along the
// ladder, never a jump.
type Stepped struct {
	mu sync.Mutex
	k  Knob
}

// NewStepped wraps k in one-rung-per-call rate limiting.
func NewStepped(k Knob) *Stepped { return &Stepped{k: k} }

// Name implements Knob.
func (s *Stepped) Name() string { return s.k.Name() }

// Levels implements Knob.
func (s *Stepped) Levels() int { return s.k.Levels() }

// Level implements Knob.
func (s *Stepped) Level() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.k.Level()
}

// SetLevel moves one rung toward level (clamped to the ladder) and
// reports the underlying knob's error, if any.
func (s *Stepped) SetLevel(level int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if level < 0 {
		level = 0
	}
	if max := s.k.Levels() - 1; level > max {
		level = max
	}
	cur := s.k.Level()
	next := cur
	if level > cur {
		next = cur + 1
	} else if level < cur {
		next = cur - 1
	}
	if next == cur {
		return nil
	}
	return s.k.SetLevel(next)
}

var _ Knob = (*Stepped)(nil)

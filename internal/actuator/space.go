package actuator

import (
	"fmt"
	"sort"
)

// Config selects one setting index per actuator of a Space. Config i
// corresponds to Space.Acts[i].
type Config []int

// Clone returns an independent copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	copy(out, c)
	return out
}

// Equal reports element-wise equality.
func (c Config) Equal(o Config) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Space is the cartesian product of the action spaces of a set of
// actuators — the coordinated action space the SEEC decision engine
// searches (§2: the open interface is exactly what lets the runtime see
// the whole product space instead of one closed slice of it).
type Space struct {
	Acts []*Actuator
}

// NewSpace validates the actuators and builds their joint space.
func NewSpace(acts ...*Actuator) (*Space, error) {
	if len(acts) == 0 {
		return nil, fmt.Errorf("actuator: empty space")
	}
	seen := make(map[string]bool, len(acts))
	for _, a := range acts {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("actuator: duplicate name %q in space", a.Name)
		}
		seen[a.Name] = true
	}
	return &Space{Acts: acts}, nil
}

// Size reports the number of configurations in the space.
func (s *Space) Size() int {
	n := 1
	for _, a := range s.Acts {
		n *= len(a.Settings)
	}
	return n
}

// Nominal returns the configuration selecting every actuator's nominal
// setting.
func (s *Space) Nominal() Config {
	cfg := make(Config, len(s.Acts))
	for i, a := range s.Acts {
		cfg[i] = a.NominalIndex
	}
	return cfg
}

// Effect composes the declared effects of cfg across all actuators.
// This is the model the decision engine uses before any on-line
// correction by the adaptive layer.
func (s *Space) Effect(cfg Config) Effect {
	e := Nominal()
	for i, a := range s.Acts {
		e = e.Mul(a.EffectOf(cfg[i]))
	}
	return e
}

// Apply drives every actuator to its setting in cfg.
func (s *Space) Apply(cfg Config) error {
	if len(cfg) != len(s.Acts) {
		return fmt.Errorf("actuator: config length %d != %d actuators", len(cfg), len(s.Acts))
	}
	for i, a := range s.Acts {
		if err := a.Set(cfg[i]); err != nil {
			return err
		}
	}
	return nil
}

// Current returns the currently applied configuration.
func (s *Space) Current() Config {
	cfg := make(Config, len(s.Acts))
	for i, a := range s.Acts {
		cfg[i] = a.Current()
	}
	return cfg
}

// MaxDelay reports the largest actuation delay in the space; the runtime
// must wait at least this long before trusting observations after a
// reconfiguration.
func (s *Space) MaxDelay() float64 {
	d := 0.0
	for _, a := range s.Acts {
		if a.DelaySeconds > d {
			d = a.DelaySeconds
		}
	}
	return d
}

// Enumerate calls fn for every configuration in the space, in
// lexicographic order. fn must not retain cfg (it is reused).
func (s *Space) Enumerate(fn func(cfg Config)) {
	cfg := make(Config, len(s.Acts))
	var rec func(i int)
	rec = func(i int) {
		if i == len(s.Acts) {
			fn(cfg)
			return
		}
		for j := range s.Acts[i].Settings {
			cfg[i] = j
			rec(i + 1)
		}
	}
	rec(0)
}

// Point is a configuration annotated with its composed effect, used for
// Pareto analysis and by the translator.
type Point struct {
	Cfg    Config
	Effect Effect
}

// Points materializes the full space with composed effects, sorted by
// ascending speedup then ascending power.
func (s *Space) Points() []Point {
	pts := make([]Point, 0, s.Size())
	s.Enumerate(func(cfg Config) {
		pts = append(pts, Point{Cfg: cfg.Clone(), Effect: s.Effect(cfg)})
	})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Effect.Speedup != pts[j].Effect.Speedup {
			return pts[i].Effect.Speedup < pts[j].Effect.Speedup
		}
		return pts[i].Effect.PowerX < pts[j].Effect.PowerX
	})
	return pts
}

// ParetoFrontier filters pts (any order) to the subset not dominated in
// the (speedup up, power down) sense: a point is kept iff no other point
// has >= speedup and <= power with at least one strict. The result is
// sorted by ascending speedup, and power is strictly increasing along it.
func ParetoFrontier(pts []Point) []Point {
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	// Sort by speedup ascending; ties broken by power ascending.
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Effect.Speedup != sorted[j].Effect.Speedup {
			return sorted[i].Effect.Speedup < sorted[j].Effect.Speedup
		}
		return sorted[i].Effect.PowerX < sorted[j].Effect.PowerX
	})
	// Walk from the fastest point down: keep a point iff its power is
	// strictly below every faster point's power (minimum power suffix).
	var out []Point
	minPower := 0.0
	first := true
	for i := len(sorted) - 1; i >= 0; i-- {
		p := sorted[i]
		if first || p.Effect.PowerX < minPower {
			// Skip ties on speedup where a same-speed, cheaper point exists
			// later in `sorted` (it precedes in the reversed walk? no —
			// ties are ordered power-ascending, so the cheaper tie comes
			// first and would be visited last; handle by strict check).
			out = append(out, p)
			minPower = p.Effect.PowerX
			first = false
		}
	}
	// Reverse into ascending-speedup order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	// Remove speedup-duplicates keeping the cheaper (which, given the
	// suffix-min walk, is the one that survived with lower power).
	dedup := out[:0]
	for _, p := range out {
		if len(dedup) > 0 && dedup[len(dedup)-1].Effect.Speedup == p.Effect.Speedup {
			if p.Effect.PowerX < dedup[len(dedup)-1].Effect.PowerX {
				dedup[len(dedup)-1] = p
			}
			continue
		}
		dedup = append(dedup, p)
	}
	return dedup
}

package actuator

import "fmt"

// NewLadder builds a software-only actuator from parallel slices of
// speedup and power multipliers: a monotone "ladder" of settings whose
// Apply records the chosen rung without driving hardware. This is the
// shape of an advisory knob — a serving daemon decides the rung, and the
// remote application (or operator) reads it back through the decision
// interface and actuates on its side. Setting i's declared effect is
// (speedup[i], power[i]); the rung where both are 1 is nominal.
func NewLadder(name string, labels []string, speedup, power []float64) (*Actuator, error) {
	if len(labels) != len(speedup) || len(labels) != len(power) {
		return nil, fmt.Errorf("actuator %q: ladder slices disagree (%d labels, %d speedups, %d powers)",
			name, len(labels), len(speedup), len(power))
	}
	nominal := -1
	settings := make([]Setting, len(labels))
	for i := range labels {
		settings[i] = Setting{
			Label:  labels[i],
			Value:  i,
			Effect: Effect{Speedup: speedup[i], PowerX: power[i], Distort: 1},
		}
		if speedup[i] == 1 && power[i] == 1 {
			nominal = i
		}
	}
	if nominal < 0 {
		return nil, fmt.Errorf("actuator %q: no nominal rung (speedup and power both 1)", name)
	}
	a := &Actuator{
		Name:         name,
		Settings:     settings,
		NominalIndex: nominal,
		Apply:        func(int) error { return nil },
		Scope:        ApplicationScope,
		Axes:         []Axis{Performance, Power},
	}
	a.current = nominal
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Package actuator implements the SEEC action interface of §3.2: a single,
// general description of an adaptation that any layer of the stack —
// application, system software, or the Angstrom hardware — can register so
// that the runtime decision engine can coordinate it with every other
// registered adaptation.
//
// An actuator is "a data object with: a name, a list of allowable
// settings, a function that changes the setting, a set of axes which the
// actuator affects (e.g., performance and power), and the effects of each
// setting on each axis. These effects are listed as multipliers over a
// nominal setting, whose effects are 1 on all axes. Each actuator
// specifies a delay ... [and] whether it works on only the application
// that registered it or if it works on all applications." (§3.2)
package actuator

import (
	"errors"
	"fmt"
	"math"
)

// Axis identifies a behavioural dimension an actuator can affect.
type Axis int

const (
	// Performance is application speed (heart rate multiplier).
	Performance Axis = iota
	// Power is system power draw (multiplier over nominal active power).
	Power
	// Accuracy is application output quality (distortion multiplier).
	Accuracy
)

// String implements fmt.Stringer for diagnostics.
func (a Axis) String() string {
	switch a {
	case Performance:
		return "performance"
	case Power:
		return "power"
	case Accuracy:
		return "accuracy"
	default:
		return fmt.Sprintf("axis(%d)", int(a))
	}
}

// Scope says which applications an actuator affects (§3.2 final sentence).
type Scope int

const (
	// ApplicationScope actuators (e.g. an algorithm switch) affect only
	// the registering application.
	ApplicationScope Scope = iota
	// GlobalScope actuators (e.g. core allocation, DVFS) affect the whole
	// system.
	GlobalScope
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	if s == ApplicationScope {
		return "application"
	}
	return "global"
}

// Effect is the predicted multiplicative impact of one setting relative to
// the actuator's nominal setting. A nominal setting has all multipliers 1.
type Effect struct {
	Speedup float64 // performance axis
	PowerX  float64 // power axis
	Distort float64 // accuracy axis (1 = nominal quality)
}

// Nominal is the identity effect.
func Nominal() Effect { return Effect{Speedup: 1, PowerX: 1, Distort: 1} }

// Mul composes two effects (multipliers multiply).
func (e Effect) Mul(o Effect) Effect {
	return Effect{
		Speedup: e.Speedup * o.Speedup,
		PowerX:  e.PowerX * o.PowerX,
		Distort: e.Distort * o.Distort,
	}
}

// Setting is one allowable position of the knob.
type Setting struct {
	// Label names the setting for reports, e.g. "2.4GHz" or "8 cores".
	Label string
	// Value is the raw knob value handed to the apply function.
	Value int
	// Effect is the designer-declared multiplier vector for this setting.
	Effect Effect
}

// Actuator is one registered adaptation.
type Actuator struct {
	// Name identifies the actuator in reports and registries.
	Name string
	// Settings are the allowable positions, in ascending knob order.
	Settings []Setting
	// NominalIndex is the index of the setting whose effects are 1.
	NominalIndex int
	// Apply changes the underlying system to the setting with the given
	// index. It must be idempotent.
	Apply func(settingIndex int) error
	// DelaySeconds is the actuation delay: the time between Apply and the
	// effects becoming observable (§3.2).
	DelaySeconds float64
	// Scope says whether the actuator affects one application or all.
	Scope Scope
	// Axes lists which axes this actuator affects; effects on unlisted
	// axes must be 1.
	Axes []Axis

	current int // current setting index
}

// Validate checks the declaration for internal consistency. Every
// registry rejects invalid actuators, so downstream code can assume these
// invariants.
func (a *Actuator) Validate() error {
	if a.Name == "" {
		return errors.New("actuator: empty name")
	}
	if len(a.Settings) == 0 {
		return fmt.Errorf("actuator %q: no settings", a.Name)
	}
	if a.NominalIndex < 0 || a.NominalIndex >= len(a.Settings) {
		return fmt.Errorf("actuator %q: nominal index %d out of range [0,%d)",
			a.Name, a.NominalIndex, len(a.Settings))
	}
	nom := a.Settings[a.NominalIndex].Effect
	if nom.Speedup != 1 || nom.PowerX != 1 || nom.Distort != 1 {
		return fmt.Errorf("actuator %q: nominal setting effect %+v is not identity",
			a.Name, nom)
	}
	if a.Apply == nil {
		return fmt.Errorf("actuator %q: nil Apply", a.Name)
	}
	if a.DelaySeconds < 0 {
		return fmt.Errorf("actuator %q: negative delay %g", a.Name, a.DelaySeconds)
	}
	affects := make(map[Axis]bool, len(a.Axes))
	for _, ax := range a.Axes {
		affects[ax] = true
	}
	for i, s := range a.Settings {
		e := s.Effect
		if e.Speedup <= 0 || e.PowerX <= 0 || e.Distort <= 0 {
			return fmt.Errorf("actuator %q setting %d: non-positive multiplier %+v",
				a.Name, i, e)
		}
		if !affects[Performance] && e.Speedup != 1 {
			return fmt.Errorf("actuator %q setting %d: speedup %g declared without performance axis",
				a.Name, i, e.Speedup)
		}
		if !affects[Power] && e.PowerX != 1 {
			return fmt.Errorf("actuator %q setting %d: power %g declared without power axis",
				a.Name, i, e.PowerX)
		}
		if !affects[Accuracy] && e.Distort != 1 {
			return fmt.Errorf("actuator %q setting %d: distortion %g declared without accuracy axis",
				a.Name, i, e.Distort)
		}
	}
	return nil
}

// Set applies the setting with the given index and records it as current.
func (a *Actuator) Set(index int) error {
	if index < 0 || index >= len(a.Settings) {
		return fmt.Errorf("actuator %q: setting index %d out of range [0,%d)",
			a.Name, index, len(a.Settings))
	}
	if err := a.Apply(index); err != nil {
		return fmt.Errorf("actuator %q: apply setting %d: %w", a.Name, index, err)
	}
	a.current = index
	return nil
}

// Current reports the current setting index.
func (a *Actuator) Current() int { return a.current }

// EffectOf returns the declared effect of setting index i.
func (a *Actuator) EffectOf(i int) Effect { return a.Settings[i].Effect }

// MaxSpeedup reports the largest declared speedup across settings.
func (a *Actuator) MaxSpeedup() float64 {
	best := math.Inf(-1)
	for _, s := range a.Settings {
		if s.Effect.Speedup > best {
			best = s.Effect.Speedup
		}
	}
	return best
}

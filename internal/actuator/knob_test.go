package actuator

import (
	"fmt"
	"testing"
)

// fakeKnob is a minimal in-memory Knob.
type fakeKnob struct {
	name   string
	levels int
	cur    int
	moves  []int // every level actually applied
	fail   bool
}

func (k *fakeKnob) Name() string { return k.name }
func (k *fakeKnob) Levels() int  { return k.levels }
func (k *fakeKnob) Level() int   { return k.cur }
func (k *fakeKnob) SetLevel(level int) error {
	if k.fail {
		return fmt.Errorf("knob %s refused", k.name)
	}
	if level < 0 || level >= k.levels {
		return fmt.Errorf("level %d out of range", level)
	}
	k.cur = level
	k.moves = append(k.moves, level)
	return nil
}

func TestFromKnobBuildsActuator(t *testing.T) {
	k := &fakeKnob{name: "dvfs", levels: 3}
	a, err := FromKnob(k, []string{"low", "mid", "high"}, []float64{1, 2, 3}, []float64{1, 4, 9}, 0.001, GlobalScope)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "dvfs" || a.NominalIndex != 0 || len(a.Settings) != 3 {
		t.Fatalf("actuator %+v malformed", a)
	}
	if a.Scope != GlobalScope {
		t.Fatalf("scope = %v", a.Scope)
	}
	if err := a.Set(2); err != nil {
		t.Fatal(err)
	}
	if k.cur != 2 {
		t.Fatalf("knob at %d after Set(2)", k.cur)
	}
}

func TestFromKnobValidation(t *testing.T) {
	k := &fakeKnob{name: "x", levels: 2}
	cases := []struct {
		labels         []string
		speedup, power []float64
	}{
		{[]string{"a"}, []float64{1}, []float64{1}},             // label count != levels
		{[]string{"a", "b"}, []float64{2, 3}, []float64{2, 3}},  // no nominal rung
		{[]string{"a", "b"}, []float64{1, 2}, []float64{1}},     // slice mismatch
		{[]string{"a", "b"}, []float64{1, -2}, []float64{1, 2}}, // non-positive multiplier
	}
	for i, c := range cases {
		if _, err := FromKnob(k, c.labels, c.speedup, c.power, 0, GlobalScope); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := FromKnob(nil, nil, nil, nil, 0, GlobalScope); err == nil {
		t.Fatal("nil knob accepted")
	}
}

// Stepped moves one rung per call toward the target and clamps
// out-of-range requests to the ladder.
func TestSteppedOneRungPerCall(t *testing.T) {
	raw := &fakeKnob{name: "cores", levels: 5}
	s := NewStepped(raw)
	if err := s.SetLevel(4); err != nil {
		t.Fatal(err)
	}
	if raw.cur != 1 {
		t.Fatalf("first call landed at %d, want 1", raw.cur)
	}
	for i := 0; i < 10; i++ {
		if err := s.SetLevel(4); err != nil {
			t.Fatal(err)
		}
	}
	if raw.cur != 4 {
		t.Fatalf("did not converge to 4 (at %d)", raw.cur)
	}
	if err := s.SetLevel(-3); err != nil {
		t.Fatal(err)
	}
	if raw.cur != 3 {
		t.Fatalf("downward step landed at %d, want 3", raw.cur)
	}
	if err := s.SetLevel(99); err != nil {
		t.Fatal(err)
	}
	if raw.cur != 4 {
		t.Fatalf("clamped upward step landed at %d, want 4", raw.cur)
	}
	// Every observed hardware move was exactly one rung.
	prev := 0
	for _, m := range raw.moves {
		if d := m - prev; d < -1 || d > 1 {
			t.Fatalf("move %d -> %d jumps more than one rung (history %v)", prev, m, raw.moves)
		}
		prev = m
	}
	// A satisfied target is a no-op, not an Apply.
	n := len(raw.moves)
	if err := s.SetLevel(4); err != nil {
		t.Fatal(err)
	}
	if len(raw.moves) != n {
		t.Fatal("no-op target still applied")
	}
}

func TestSteppedPropagatesErrors(t *testing.T) {
	raw := &fakeKnob{name: "x", levels: 3, fail: true}
	s := NewStepped(raw)
	if err := s.SetLevel(2); err == nil {
		t.Fatal("knob refusal swallowed")
	}
}

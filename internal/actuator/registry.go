package actuator

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the system-wide directory of registered actuators. Hardware
// (the Angstrom model), system software (core allocator, clock governor)
// and applications all register here; the SEEC runtime composes the
// registered actions it is allowed to use into a Space.
type Registry struct {
	mu   sync.Mutex
	acts map[string]*registered
}

type registered struct {
	act *Actuator
	app string // owning application for ApplicationScope; "" for global
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{acts: make(map[string]*registered)}
}

// RegisterGlobal adds a global-scope actuator.
func (r *Registry) RegisterGlobal(a *Actuator) error {
	return r.register(a, "", GlobalScope)
}

// RegisterForApp adds an application-scope actuator owned by app.
func (r *Registry) RegisterForApp(app string, a *Actuator) error {
	if app == "" {
		return fmt.Errorf("actuator: empty app name for application-scope registration")
	}
	return r.register(a, app, ApplicationScope)
}

func (r *Registry) register(a *Actuator, app string, scope Scope) error {
	if a == nil {
		return fmt.Errorf("actuator: register nil actuator")
	}
	if a.Scope != scope {
		return fmt.Errorf("actuator %q: scope %v does not match registration kind %v",
			a.Name, a.Scope, scope)
	}
	if err := a.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.acts[a.Name]; dup {
		return fmt.Errorf("actuator: %q already registered", a.Name)
	}
	r.acts[a.Name] = &registered{act: a, app: app}
	return nil
}

// Unregister removes an actuator by name (e.g. when its app exits).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.acts, name)
}

// AvailableTo returns the actuators the runtime may use on behalf of app:
// all global actuators plus app's own application-scope actuators, in a
// deterministic (name-sorted) order.
func (r *Registry) AvailableTo(app string) []*Actuator {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*Actuator
	for _, reg := range r.acts {
		if reg.app == "" || reg.app == app {
			out = append(out, reg.act)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SpaceFor composes the action space available to app.
func (r *Registry) SpaceFor(app string) (*Space, error) {
	acts := r.AvailableTo(app)
	if len(acts) == 0 {
		return nil, fmt.Errorf("actuator: no actions available to %q", app)
	}
	return NewSpace(acts...)
}

// Names lists registered actuator names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.acts))
	for n := range r.acts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

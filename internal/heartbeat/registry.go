package heartbeat

import (
	"fmt"
	"sort"
	"sync"
)

// Registry is the system-wide directory of instrumented applications. The
// SEEC runtime discovers applications (and their goals) here, exactly as
// the reference Heartbeats implementation exposes enrolled applications
// through a shared-memory directory.
type Registry struct {
	mu   sync.Mutex
	apps map[string]*Monitor
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{apps: make(map[string]*Monitor)}
}

// Enroll registers an application's monitor under name. Enrolling the
// same name twice is a caller bug and returns an error. Enrollment is
// journaled daemon state: in internal/server only persist.go writers
// may call it.
//
//angstrom:journaled mutator
func (r *Registry) Enroll(name string, m *Monitor) error {
	if m == nil {
		return fmt.Errorf("heartbeat: enroll %q with nil monitor", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.apps[name]; dup {
		return fmt.Errorf("heartbeat: %q already enrolled", name)
	}
	r.apps[name] = m
	return nil
}

// Withdraw removes an application, e.g. at exit. Like Enroll, a
// journaled mutation when it happens inside the daemon.
//
//angstrom:journaled mutator
func (r *Registry) Withdraw(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.apps, name)
}

// Lookup returns the monitor for name.
func (r *Registry) Lookup(name string) (*Monitor, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.apps[name]
	return m, ok
}

// Names returns the enrolled application names, sorted for deterministic
// iteration.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.apps))
	for n := range r.apps {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

package heartbeat

import "fmt"

// The paper (§3.1) lists three application-specified goal classes:
// performance (target heart rate or tagged latency), accuracy (maximum
// distortion over a set of heartbeats), and power/energy (target average
// power at a heart rate, or energy between tagged beats). Goals collects
// whichever of these the application has declared.
type Goals struct {
	Performance *PerformanceGoal
	Latency     *LatencyGoal
	Accuracy    *AccuracyGoal
	Power       *PowerGoal
	Energy      *EnergyGoal
}

// PerformanceGoal asks for the windowed heart rate to stay inside
// [MinRate, MaxRate] beats per second. MaxRate <= 0 means "no upper bound".
type PerformanceGoal struct {
	MinRate float64
	MaxRate float64
}

// Target is the midpoint the runtime steers toward: the midpoint of the
// band, or MinRate when the band is half-open.
func (g PerformanceGoal) Target() float64 {
	if g.MaxRate > 0 {
		return (g.MinRate + g.MaxRate) / 2
	}
	return g.MinRate
}

// LatencyGoal asks for at most Target seconds between a beat tagged
// StartTag and the following beat tagged EndTag.
type LatencyGoal struct {
	StartTag, EndTag uint64
	Target           float64
}

// AccuracyGoal bounds mean distortion over the observation window.
type AccuracyGoal struct {
	MaxDistortion float64
}

// PowerGoal asks for average power at most TargetW while sustaining
// MinRate beats/s.
type PowerGoal struct {
	TargetW float64
	MinRate float64
}

// EnergyGoal bounds the energy between tagged beats.
type EnergyGoal struct {
	StartTag, EndTag uint64
	TargetJ          float64
}

// SetPerformanceGoal declares a target heart-rate band. It panics on an
// inverted band, which is always a caller bug. Goal changes are part of
// the daemon's replayed state, so inside internal/server only journaling
// writers may call it.
//
//angstrom:journaled mutator
func (m *Monitor) SetPerformanceGoal(minRate, maxRate float64) {
	if maxRate > 0 && maxRate < minRate {
		panic(fmt.Sprintf("heartbeat: inverted rate band [%g, %g]", minRate, maxRate))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.goals.Performance = &PerformanceGoal{MinRate: minRate, MaxRate: maxRate}
}

// SetLatencyGoal declares a tagged-latency target.
func (m *Monitor) SetLatencyGoal(startTag, endTag uint64, target float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.goals.Latency = &LatencyGoal{StartTag: startTag, EndTag: endTag, Target: target}
}

// SetAccuracyGoal declares a maximum mean distortion.
func (m *Monitor) SetAccuracyGoal(maxDistortion float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.goals.Accuracy = &AccuracyGoal{MaxDistortion: maxDistortion}
}

// SetPowerGoal declares a target average power for a given minimum rate.
func (m *Monitor) SetPowerGoal(targetW, minRate float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.goals.Power = &PowerGoal{TargetW: targetW, MinRate: minRate}
}

// SetEnergyGoal declares a tagged-energy target.
func (m *Monitor) SetEnergyGoal(startTag, endTag uint64, targetJ float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.goals.Energy = &EnergyGoal{StartTag: startTag, EndTag: endTag, TargetJ: targetJ}
}

// Goals returns a copy of the declared goals (pointers are to copies, so
// observers cannot mutate application goals).
func (m *Monitor) Goals() Goals {
	m.mu.Lock()
	defer m.mu.Unlock()
	var g Goals
	if m.goals.Performance != nil {
		v := *m.goals.Performance
		g.Performance = &v
	}
	if m.goals.Latency != nil {
		v := *m.goals.Latency
		g.Latency = &v
	}
	if m.goals.Accuracy != nil {
		v := *m.goals.Accuracy
		g.Accuracy = &v
	}
	if m.goals.Power != nil {
		v := *m.goals.Power
		g.Power = &v
	}
	if m.goals.Energy != nil {
		v := *m.goals.Energy
		g.Energy = &v
	}
	return g
}

// PerformanceBand reports the declared heart-rate band without
// allocating. Goals copies every declared goal into fresh pointers —
// correct for observers that hold the result, but two allocations per
// call; fleet-scale hot paths (the manager's per-tick observe loop runs
// once per enrolled application) read just the performance band through
// this accessor instead. ok is false when no performance goal is set.
func (m *Monitor) PerformanceBand() (minRate, maxRate float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.goals.Performance == nil {
		return 0, 0, false
	}
	return m.goals.Performance.MinRate, m.goals.Performance.MaxRate, true
}

// Status reports, for each declared goal, whether the current observation
// satisfies it.
type Status struct {
	PerformanceMet bool
	PerformanceSet bool
	LatencyMet     bool
	LatencySet     bool
	AccuracyMet    bool
	AccuracySet    bool
	PowerMet       bool
	PowerSet       bool
	EnergyMet      bool
	EnergySet      bool
}

// AllMet reports whether every declared goal is currently satisfied.
func (s Status) AllMet() bool {
	return (!s.PerformanceSet || s.PerformanceMet) &&
		(!s.LatencySet || s.LatencyMet) &&
		(!s.AccuracySet || s.AccuracyMet) &&
		(!s.PowerSet || s.PowerMet) &&
		(!s.EnergySet || s.EnergyMet)
}

// Check evaluates all declared goals against the current window.
func (m *Monitor) Check() Status {
	obs := m.Observe()
	goals := m.Goals()
	var s Status
	if g := goals.Performance; g != nil {
		s.PerformanceSet = true
		s.PerformanceMet = obs.WindowRate >= g.MinRate &&
			(g.MaxRate <= 0 || obs.WindowRate <= g.MaxRate)
	}
	if g := goals.Latency; g != nil {
		s.LatencySet = true
		if sec, _, ok := m.TaggedSpan(g.StartTag, g.EndTag); ok {
			s.LatencyMet = sec <= g.Target
		}
	}
	if g := goals.Accuracy; g != nil {
		s.AccuracySet = true
		s.AccuracyMet = obs.Distortion <= g.MaxDistortion
	}
	if g := goals.Power; g != nil {
		s.PowerSet = true
		s.PowerMet = obs.PowerW <= g.TargetW && obs.WindowRate >= g.MinRate
	}
	if g := goals.Energy; g != nil {
		s.EnergySet = true
		if _, joules, ok := m.TaggedSpan(g.StartTag, g.EndTag); ok {
			s.EnergyMet = joules <= g.TargetJ
		}
	}
	return s
}

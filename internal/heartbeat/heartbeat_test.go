package heartbeat

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"angstrom/internal/sim"
)

// fakeMeter is a settable cumulative energy source.
type fakeMeter struct{ joules float64 }

func (f *fakeMeter) EnergyJoules() float64 { return f.joules }

func TestFirstBeatHasNoRate(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	m.Beat()
	w := m.Window()
	if len(w) != 1 {
		t.Fatalf("window length = %d, want 1", len(w))
	}
	if w[0].Rate != 0 || w[0].Latency != 0 {
		t.Fatalf("first beat rate/latency = %g/%g, want 0/0", w[0].Rate, w[0].Latency)
	}
	if w[0].Seq != 1 {
		t.Fatalf("first Seq = %d, want 1", w[0].Seq)
	}
}

func TestSteadyRateMeasured(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	// 10 beats/s for 3 seconds.
	for i := 0; i < 30; i++ {
		c.Advance(0.1)
		m.Beat()
	}
	obs := m.Observe()
	if math.Abs(obs.WindowRate-10) > 1e-9 {
		t.Fatalf("WindowRate = %g, want 10", obs.WindowRate)
	}
	if math.Abs(obs.InstantRate-10) > 1e-9 {
		t.Fatalf("InstantRate = %g, want 10", obs.InstantRate)
	}
	if math.Abs(obs.WindowLatency-0.1) > 1e-9 {
		t.Fatalf("WindowLatency = %g, want 0.1", obs.WindowLatency)
	}
}

func TestWindowRateTracksRecentNotGlobal(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c, WithWindow(5))
	// Slow phase: 1 beat/s for 10 beats.
	for i := 0; i < 10; i++ {
		c.Advance(1.0)
		m.Beat()
	}
	// Fast phase: 100 beats/s for 10 beats, more than fills the window.
	for i := 0; i < 10; i++ {
		c.Advance(0.01)
		m.Beat()
	}
	obs := m.Observe()
	if math.Abs(obs.WindowRate-100) > 1e-6 {
		t.Fatalf("WindowRate = %g, want 100 (window must forget the slow phase)", obs.WindowRate)
	}
	if obs.GlobalRate > 5 {
		t.Fatalf("GlobalRate = %g, want < 5 (dominated by the slow phase)", obs.GlobalRate)
	}
}

func TestRingNeverExceedsWindow(t *testing.T) {
	f := func(nBeats uint8) bool {
		c := sim.NewClock(0)
		m := New(c, WithWindow(7))
		for i := 0; i < int(nBeats); i++ {
			c.Advance(0.5)
			m.Beat()
		}
		w := m.Window()
		if len(w) > 7 {
			return false
		}
		// Sequence numbers in the window must be consecutive and end at Count.
		for i := 1; i < len(w); i++ {
			if w[i].Seq != w[i-1].Seq+1 {
				return false
			}
		}
		return int(m.Count()) == int(nBeats)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObservePowerFromMeter(t *testing.T) {
	c := sim.NewClock(0)
	meter := &fakeMeter{}
	m := New(c, WithEnergyMeter(meter))
	for i := 0; i < 10; i++ {
		c.Advance(1.0)
		meter.joules += 50 // 50 W
		m.Beat()
	}
	obs := m.Observe()
	if math.Abs(obs.PowerW-50) > 1e-9 {
		t.Fatalf("PowerW = %g, want 50", obs.PowerW)
	}
}

func TestTaggedSpan(t *testing.T) {
	c := sim.NewClock(0)
	meter := &fakeMeter{}
	m := New(c, WithEnergyMeter(meter))
	m.BeatTagged(1) // start at t=0, E=0
	c.Advance(2.5)
	meter.joules = 100
	m.Beat()
	c.Advance(2.5)
	meter.joules = 250
	m.BeatTagged(2) // end at t=5, E=250
	sec, joules, ok := m.TaggedSpan(1, 2)
	if !ok {
		t.Fatal("TaggedSpan did not find the tag pair")
	}
	if math.Abs(sec-5) > 1e-9 || math.Abs(joules-250) > 1e-9 {
		t.Fatalf("TaggedSpan = (%g s, %g J), want (5, 250)", sec, joules)
	}
}

func TestTaggedSpanMissingTags(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	m.Beat()
	c.Advance(1)
	m.BeatTagged(2)
	if _, _, ok := m.TaggedSpan(1, 2); ok {
		t.Fatal("TaggedSpan reported ok without a start tag present")
	}
	if _, _, ok := m.TaggedSpan(2, 9); ok {
		t.Fatal("TaggedSpan reported ok without an end tag present")
	}
}

func TestDistortionAveraged(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c, WithWindow(4))
	for _, d := range []float64{0.1, 0.2, 0.3, 0.4} {
		c.Advance(1)
		m.BeatWithAccuracy(d)
	}
	obs := m.Observe()
	if math.Abs(obs.Distortion-0.25) > 1e-12 {
		t.Fatalf("Distortion = %g, want 0.25", obs.Distortion)
	}
}

func TestPerformanceGoalCheck(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	m.SetPerformanceGoal(9, 11)
	for i := 0; i < 25; i++ {
		c.Advance(0.1) // 10 beats/s: inside the band
		m.Beat()
	}
	s := m.Check()
	if !s.PerformanceSet || !s.PerformanceMet {
		t.Fatalf("performance goal not met at 10 beats/s with band [9,11]: %+v", s)
	}
	if !s.AllMet() {
		t.Fatal("AllMet() = false with only a satisfied performance goal")
	}
}

func TestPerformanceGoalViolated(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	m.SetPerformanceGoal(20, 0) // at least 20 beats/s, no cap
	for i := 0; i < 25; i++ {
		c.Advance(0.1) // only 10 beats/s
		m.Beat()
	}
	s := m.Check()
	if s.PerformanceMet {
		t.Fatal("performance goal reported met at half the target rate")
	}
	if s.AllMet() {
		t.Fatal("AllMet() = true with violated performance goal")
	}
}

func TestPerformanceGoalTarget(t *testing.T) {
	g := PerformanceGoal{MinRate: 10, MaxRate: 30}
	if got := g.Target(); got != 20 {
		t.Fatalf("Target() = %g, want 20 (band midpoint)", got)
	}
	open := PerformanceGoal{MinRate: 10}
	if got := open.Target(); got != 10 {
		t.Fatalf("Target() = %g, want 10 (half-open band)", got)
	}
}

func TestInvertedBandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted band did not panic")
		}
	}()
	New(sim.NewClock(0)).SetPerformanceGoal(10, 5)
}

func TestAccuracyAndPowerGoals(t *testing.T) {
	c := sim.NewClock(0)
	meter := &fakeMeter{}
	m := New(c, WithEnergyMeter(meter))
	m.SetAccuracyGoal(0.5)
	m.SetPowerGoal(80, 5)
	for i := 0; i < 25; i++ {
		c.Advance(0.1)
		meter.joules += 7 // 70 W
		m.BeatWithAccuracy(0.2)
	}
	s := m.Check()
	if !s.AccuracyMet {
		t.Fatalf("accuracy goal (0.2 <= 0.5) not met: %+v", s)
	}
	if !s.PowerMet {
		t.Fatalf("power goal (70 W <= 80 W at 10 beats/s >= 5) not met: %+v", s)
	}
}

func TestEnergyGoalCheck(t *testing.T) {
	c := sim.NewClock(0)
	meter := &fakeMeter{}
	m := New(c, WithEnergyMeter(meter))
	m.SetEnergyGoal(1, 2, 100)
	m.BeatTagged(1)
	c.Advance(1)
	meter.joules = 60
	m.BeatTagged(2)
	if s := m.Check(); !s.EnergySet || !s.EnergyMet {
		t.Fatalf("energy goal (60 J <= 100 J) not met: %+v", s)
	}
	m.SetEnergyGoal(1, 2, 10)
	if s := m.Check(); s.EnergyMet {
		t.Fatal("energy goal (60 J <= 10 J) incorrectly met")
	}
}

func TestLatencyGoalCheck(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	m.SetLatencyGoal(1, 2, 3.0)
	m.BeatTagged(1)
	c.Advance(2)
	m.BeatTagged(2)
	if s := m.Check(); !s.LatencyMet {
		t.Fatalf("latency goal (2 s <= 3 s) not met: %+v", s)
	}
}

func TestGoalsReturnsCopies(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c)
	m.SetPerformanceGoal(5, 15)
	g := m.Goals()
	g.Performance.MinRate = 999 // mutate the copy
	if m.Goals().Performance.MinRate != 5 {
		t.Fatal("observer mutated the application's goal through Goals()")
	}
}

func TestRegistryEnrollLookupWithdraw(t *testing.T) {
	r := NewRegistry()
	m := New(sim.NewClock(0))
	if err := r.Enroll("barnes", m); err != nil {
		t.Fatalf("Enroll: %v", err)
	}
	if err := r.Enroll("barnes", m); err == nil {
		t.Fatal("duplicate Enroll did not error")
	}
	if got, ok := r.Lookup("barnes"); !ok || got != m {
		t.Fatal("Lookup failed after Enroll")
	}
	if err := r.Enroll("ocean", New(sim.NewClock(0))); err != nil {
		t.Fatalf("Enroll second app: %v", err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "barnes" || names[1] != "ocean" {
		t.Fatalf("Names() = %v, want [barnes ocean]", names)
	}
	r.Withdraw("barnes")
	if _, ok := r.Lookup("barnes"); ok {
		t.Fatal("Lookup succeeded after Withdraw")
	}
}

func TestEnrollNilMonitorErrors(t *testing.T) {
	if err := NewRegistry().Enroll("x", nil); err == nil {
		t.Fatal("Enroll(nil) did not error")
	}
}

func TestTinyWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("window of 1 did not panic")
		}
	}()
	New(sim.NewClock(0), WithWindow(1))
}

// The ring must report records oldest-first with contiguous sequence
// numbers long after it has wrapped.
func TestRingWraparound(t *testing.T) {
	c := sim.NewClock(0)
	m := New(c, WithWindow(4))
	for i := 0; i < 11; i++ {
		c.Advance(0.5)
		m.Beat()
	}
	w := m.Window()
	if len(w) != 4 {
		t.Fatalf("window length = %d, want 4", len(w))
	}
	for i, r := range w {
		if want := uint64(8 + i); r.Seq != want {
			t.Fatalf("window[%d].Seq = %d, want %d", i, r.Seq, want)
		}
		if i > 0 && w[i].Time <= w[i-1].Time {
			t.Fatal("window not oldest-first")
		}
	}
	obs := m.Observe()
	if obs.Beats != 11 {
		t.Fatalf("Beats = %d, want 11", obs.Beats)
	}
	if math.Abs(obs.WindowRate-2) > 1e-9 {
		t.Fatalf("WindowRate = %g after wrap, want 2", obs.WindowRate)
	}
}

// TaggedSpan must keep working across the wrap boundary.
func TestTaggedSpanAfterWrap(t *testing.T) {
	c := sim.NewClock(0)
	meter := &fakeMeter{}
	m := New(c, WithWindow(5), WithEnergyMeter(meter))
	for i := 0; i < 20; i++ {
		c.Advance(1)
		meter.joules += 2
		switch i {
		case 16:
			m.BeatTagged(7)
		case 19:
			m.BeatTagged(9)
		default:
			m.Beat()
		}
	}
	sec, joules, ok := m.TaggedSpan(7, 9)
	if !ok {
		t.Fatal("tagged pair not found after wrap")
	}
	if sec != 3 || joules != 6 {
		t.Fatalf("span = %gs/%gJ, want 3s/6J", sec, joules)
	}
}

// Property: a wrapped ring's observation matches a never-wrapping one
// fed the same beats.
func TestRingMatchesUnboundedWindow(t *testing.T) {
	c1, c2 := sim.NewClock(0), sim.NewClock(0)
	small := New(c1, WithWindow(8))
	big := New(c2, WithWindow(1000))
	// Only the first 8 of these land in both windows; drive both and
	// compare the small window to the big one's trailing slice.
	for i := 0; i < 50; i++ {
		c1.Advance(0.1 + 0.01*float64(i%7))
		c2.AdvanceTo(c1.Now())
		small.Beat()
		big.Beat()
	}
	sw, bw := small.Window(), big.Window()
	tail := bw[len(bw)-len(sw):]
	for i := range sw {
		if sw[i] != tail[i] {
			t.Fatalf("record %d: small %+v != big tail %+v", i, sw[i], tail[i])
		}
	}
}

// lockedClock is a trivially race-safe Nower for concurrency tests.
type lockedClock struct {
	mu  sync.Mutex
	now sim.Time
}

func (c *lockedClock) Now() sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *lockedClock) advance(dt sim.Time) {
	c.mu.Lock()
	c.now += dt
	c.mu.Unlock()
}

// Many goroutines beating monitors found through a shared Registry while
// observers tick: must be race-detector clean and lose no beats.
func TestConcurrentBeatsAndObservers(t *testing.T) {
	clock := &lockedClock{}
	reg := NewRegistry()
	const apps = 8
	const beatsPerApp = 500
	for i := 0; i < apps; i++ {
		m := New(clock, WithWindow(16))
		m.SetPerformanceGoal(1, 0)
		if err := reg.Enroll(fmt.Sprintf("app-%d", i), m); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for _, name := range reg.Names() {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			m, ok := reg.Lookup(name)
			if !ok {
				t.Errorf("%s not found", name)
				return
			}
			for i := 0; i < beatsPerApp; i++ {
				clock.advance(1e-6)
				m.Beat()
			}
		}(name)
	}
	stop := make(chan struct{})
	var observers sync.WaitGroup
	for i := 0; i < 4; i++ {
		observers.Add(1)
		go func() {
			defer observers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, name := range reg.Names() {
					if m, ok := reg.Lookup(name); ok {
						m.Observe()
						m.Check()
						m.Window()
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	observers.Wait()
	for _, name := range reg.Names() {
		m, _ := reg.Lookup(name)
		if got := m.Count(); got != beatsPerApp {
			t.Fatalf("%s count = %d, want %d", name, got, beatsPerApp)
		}
	}
}

// BenchmarkEmitLargeWindow gates the O(1) ring insert: cost per beat
// must not scale with the window (it was O(window) before PR 2).
func BenchmarkEmitLargeWindow(b *testing.B) {
	c := sim.NewClock(0)
	m := New(c, WithWindow(4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Advance(1e-6)
		m.Beat()
	}
}

// BeatAt places beats at explicit times: rates follow the supplied
// spacing, not the call time, and non-monotone stamps clamp to the
// previous beat instead of corrupting rate math.
func TestBeatAtExplicitTimestamps(t *testing.T) {
	clock := sim.NewClock(0)
	m := New(clock, WithWindow(8))
	clock.Advance(10) // the call-time clock is irrelevant to BeatAt
	for i := 0; i < 5; i++ {
		m.BeatAt(float64(i) * 0.5) // 2 beats/s
	}
	obs := m.Observe()
	if obs.Beats != 5 {
		t.Fatalf("beats = %d", obs.Beats)
	}
	if math.Abs(obs.WindowRate-2) > 1e-9 {
		t.Fatalf("window rate %g from 0.5s spacing, want 2", obs.WindowRate)
	}
	if obs.LastTime != 2 {
		t.Fatalf("last time %g, want 2", obs.LastTime)
	}
	if m.LastTime() != 2 {
		t.Fatalf("LastTime() = %g, want 2", m.LastTime())
	}

	// A stamp before the previous beat clamps (zero-latency record).
	m.BeatAt(1.0)
	if got := m.LastTime(); got != 2 {
		t.Fatalf("clamped beat moved time to %g", got)
	}
	w := m.Window()
	if lat := w[len(w)-1].Latency; lat != 0 {
		t.Fatalf("clamped beat latency %g, want 0", lat)
	}
}

func TestBeatWithAccuracyAt(t *testing.T) {
	clock := sim.NewClock(0)
	m := New(clock, WithWindow(4))
	m.BeatWithAccuracyAt(1, 0.25)
	w := m.Window()
	if len(w) != 1 || w[0].Distortion != 0.25 || w[0].Time != 1 {
		t.Fatalf("record %+v", w[0])
	}
}

func TestLastTimeBeforeFirstBeat(t *testing.T) {
	m := New(sim.NewClock(5))
	if got := m.LastTime(); got != 0 {
		t.Fatalf("LastTime before any beat = %g, want 0", got)
	}
}

package heartbeat

import (
	"math/rand"
	"sync"
	"testing"

	"angstrom/internal/sim"
)

// TestDeltaFlushSemantics: Add publishes only at threshold crossings,
// Flush publishes the remainder, and the shared total reconciles
// exactly with ground truth.
func TestDeltaFlushSemantics(t *testing.T) {
	var c Counter
	d := Delta{C: &c, FlushEvery: 10}
	for i := 0; i < 9; i++ {
		d.Add(1)
	}
	if c.Load() != 0 {
		t.Fatalf("published %d below threshold, want 0", c.Load())
	}
	if d.Pending() != 9 {
		t.Fatalf("pending = %d, want 9", d.Pending())
	}
	d.Add(1) // crosses the threshold
	if c.Load() != 10 || d.Pending() != 0 {
		t.Fatalf("after crossing: published=%d pending=%d, want 10/0", c.Load(), d.Pending())
	}
	d.Add(25) // one large add publishes whole
	if c.Load() != 35 {
		t.Fatalf("large add: published=%d, want 35", c.Load())
	}
	d.Add(3)
	d.Flush()
	d.Flush() // idempotent
	if c.Load() != 38 || d.Pending() != 0 {
		t.Fatalf("after flush: published=%d pending=%d, want 38/0", c.Load(), d.Pending())
	}
}

// TestDeltaDefaultThreshold: zero FlushEvery uses DefaultDeltaFlush.
func TestDeltaDefaultThreshold(t *testing.T) {
	var c Counter
	d := Delta{C: &c}
	d.Add(DefaultDeltaFlush - 1)
	if c.Load() != 0 {
		t.Fatalf("published %d below default threshold", c.Load())
	}
	d.Add(1)
	if c.Load() != DefaultDeltaFlush {
		t.Fatalf("published %d, want %d", c.Load(), DefaultDeltaFlush)
	}
}

// TestCounterConcurrentDeltas: N goroutines each owning a Delta
// reconcile exactly after their flush barriers (run under -race).
func TestCounterConcurrentDeltas(t *testing.T) {
	var c Counter
	const writers, perWriter = 8, 10000
	var wg sync.WaitGroup
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			d := Delta{C: &c, FlushEvery: 64}
			for i := 0; i < perWriter; i++ {
				d.Add(uint64(1 + rng.Intn(3)))
			}
			d.Flush()
		}(int64(w))
	}
	wg.Wait()
	// Recompute ground truth with the same seeds.
	var want uint64
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWriter; i++ {
			want += uint64(1 + rng.Intn(3))
		}
	}
	if c.Load() != want {
		t.Fatalf("counter = %d, ground truth = %d", c.Load(), want)
	}
}

// TestBeatBatchSpreadAtMatchesLoop: the batched single-lock spread is
// byte-identical to the sequential BeatAt loop the daemon used to run,
// across first-batch, paused-clock, and spread regimes.
func TestBeatBatchSpreadAtMatchesLoop(t *testing.T) {
	clock := sim.NewClock(0)
	batched := New(clock, WithWindow(64))
	control := New(clock, WithWindow(64))

	// The control reimplements the historical per-beat sequence.
	loop := func(m *Monitor, now sim.Time, count int, distortion float64) {
		last := m.LastTime()
		if count == 1 || last <= 0 || now <= last {
			for i := 0; i < count-1; i++ {
				m.BeatAt(now)
			}
		} else {
			step := (now - last) / float64(count)
			for i := 1; i < count; i++ {
				m.BeatAt(last + step*float64(i))
			}
		}
		if distortion != 0 {
			m.BeatWithAccuracyAt(now, distortion)
		} else {
			m.BeatAt(now)
		}
	}

	rng := rand.New(rand.NewSource(11))
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		// Mix regimes: sometimes the clock pauses (accelerated daemons
		// between ticks), sometimes it jumps.
		if rng.Intn(3) > 0 {
			now += sim.Time(rng.Float64())
		}
		count := 1 + rng.Intn(30)
		var distortion float64
		if rng.Intn(2) == 0 {
			distortion = rng.Float64()
		}
		batched.BeatBatchSpreadAt(now, count, distortion)
		loop(control, now, count, distortion)
	}
	gotW, wantW := batched.Window(), control.Window()
	if len(gotW) != len(wantW) {
		t.Fatalf("window sizes differ: %d vs %d", len(gotW), len(wantW))
	}
	for i := range gotW {
		if gotW[i] != wantW[i] {
			t.Fatalf("window[%d]: batched %+v != loop %+v", i, gotW[i], wantW[i])
		}
	}
	if batched.Count() != control.Count() {
		t.Fatalf("counts differ: %d vs %d", batched.Count(), control.Count())
	}
	if batched.Observe() != control.Observe() {
		t.Fatalf("observations differ:\n  batched: %+v\n  loop:    %+v", batched.Observe(), control.Observe())
	}
}

// TestBeatBatchShiftedAtMatchesLoop: same property for the
// client-timestamped form, including the exact-now final beat.
func TestBeatBatchShiftedAtMatchesLoop(t *testing.T) {
	clock := sim.NewClock(0)
	batched := New(clock, WithWindow(64))
	control := New(clock, WithWindow(64))

	rng := rand.New(rand.NewSource(13))
	now := sim.Time(100)
	for i := 0; i < 100; i++ {
		now += sim.Time(rng.Float64())
		n := 1 + rng.Intn(12)
		ts := make([]sim.Time, n)
		cur := rng.Float64() * 50
		for j := range ts {
			ts[j] = sim.Time(cur)
			cur += rng.Float64()
		}
		shift := now - ts[n-1]
		distortion := rng.Float64()

		batched.BeatBatchShiftedAt(ts[:n-1], shift, now, distortion)
		for _, tt := range ts[:n-1] {
			control.BeatAt(tt + shift)
		}
		control.BeatWithAccuracyAt(now, distortion)
	}
	gotW, wantW := batched.Window(), control.Window()
	for i := range gotW {
		if gotW[i] != wantW[i] {
			t.Fatalf("window[%d]: batched %+v != loop %+v", i, gotW[i], wantW[i])
		}
	}
	if batched.Observe() != control.Observe() {
		t.Fatalf("observations differ:\n  batched: %+v\n  loop:    %+v", batched.Observe(), control.Observe())
	}
}

package heartbeat

import "sync/atomic"

// Shared beat counters. A fleet-wide total hammered by every ingesting
// connection turns one cache line into a coherence hot spot long before
// the monitor rings saturate, so the serving daemon batches its hot
// counters with the delta-then-atomic-add pattern: each writer
// accumulates privately and publishes one atomic add per threshold
// crossing (or on an explicit flush barrier), trading bounded staleness
// for a ~threshold-fold reduction in cross-core traffic.

// Counter is a shared monotonic counter on its own cache line. The
// leading and trailing pads keep neighbouring fields (other counters,
// struct headers) from false-sharing its line under heavy multi-core
// ingestion.
type Counter struct {
	_ [64]byte
	n atomic.Uint64
	_ [56]byte
}

// Add publishes n into the counter.
//
//angstrom:hotpath
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Load returns the published total. Writers holding unflushed deltas
// make the value stale by at most their flush thresholds.
func (c *Counter) Load() uint64 { return c.n.Load() }

// Store resets the counter (snapshot restore).
func (c *Counter) Store(n uint64) { c.n.Store(n) }

// DefaultDeltaFlush is the Delta publication threshold when the owner
// does not choose one: large enough that a million-beat/s writer issues
// a few hundred atomic adds per second instead of a million.
const DefaultDeltaFlush = 4096

// Delta is a writer-private accumulator in front of a shared Counter:
// Add buffers locally and publishes with a single atomic add once the
// pending count reaches FlushEvery. A Delta is owned by exactly one
// goroutine (it is deliberately not synchronized); the owner must call
// Flush at its barriers — connection close, explicit client flush —
// so the shared total reconciles exactly with per-beat ground truth.
type Delta struct {
	C *Counter
	// FlushEvery is the publication threshold (0 = DefaultDeltaFlush).
	FlushEvery uint64
	pending    uint64
}

// Add buffers n, publishing to the shared counter when the pending
// delta crosses the flush threshold.
//
//angstrom:hotpath
func (d *Delta) Add(n uint64) {
	d.pending += n
	limit := d.FlushEvery
	if limit == 0 {
		limit = DefaultDeltaFlush
	}
	if d.pending >= limit {
		d.C.Add(d.pending)
		d.pending = 0
	}
}

// Flush publishes any pending delta. After Flush the shared counter
// has seen every Add this writer made.
func (d *Delta) Flush() {
	if d.pending > 0 {
		d.C.Add(d.pending)
		d.pending = 0
	}
}

// Pending reports the buffered, not-yet-published count.
func (d *Delta) Pending() uint64 { return d.pending }

// Package heartbeat implements the Application Heartbeats API described
// in §3.1 of the paper (and in Hoffmann et al., ICAC 2010): applications
// emit heartbeats at semantically important intervals and declare goals
// (performance, accuracy, power, energy) in terms of those heartbeats;
// every other component of the system — most importantly the SEEC runtime
// in internal/core — observes progress toward the goals through a second,
// read-only interface.
//
// The API is deliberately split in two:
//
//   - the *application* side: Beat, BeatTagged, BeatWithAccuracy, and the
//     Set*Goal functions;
//   - the *observer* side: Observe and Goals, used by runtime deciders.
package heartbeat

import (
	"fmt"
	"sync"

	"angstrom/internal/sim"
)

// Record is one emitted heartbeat.
type Record struct {
	Seq        uint64   // sequence number, starting at 1
	Tag        uint64   // application tag (0 if untagged)
	Time       sim.Time // simulated timestamp of emission
	Latency    float64  // seconds since the previous beat (0 for the first)
	Rate       float64  // instantaneous rate = 1/Latency (0 for the first)
	Distortion float64  // accuracy distortion reported with this beat
	EnergyJ    float64  // cumulative energy reading at emission, if a meter is attached
}

// EnergyMeter supplies cumulative energy readings so that energy and power
// goals can be evaluated between beats. The Angstrom energy sensors and
// the WattsUp model both satisfy this.
type EnergyMeter interface {
	EnergyJoules() float64
}

// Monitor is the per-application heartbeat buffer. One Monitor exists per
// instrumented application; it holds a ring of recent Records plus the
// application's declared goals.
//
// Monitor is safe for concurrent use: the application beats from its own
// goroutine while observers read from the runtime's.
type Monitor struct {
	mu     sync.Mutex
	clock  sim.Nower
	meter  EnergyMeter // optional
	window int
	ring   []Record // circular buffer of the last `window` beats
	start  int      // ring index of the oldest retained record
	size   int      // retained records (<= window)
	count  uint64   // total beats ever emitted
	first  sim.Time // time of first beat
	goals  Goals
}

// DefaultWindow is the heart-rate averaging window (in beats) used when
// the caller does not specify one. Twenty beats matches the smoothing used
// in the Application Heartbeats reference implementation.
const DefaultWindow = 20

// Option configures a Monitor.
type Option func(*Monitor)

// WithWindow sets the averaging window, in beats.
func WithWindow(n int) Option {
	return func(m *Monitor) { m.window = n }
}

// WithEnergyMeter attaches a cumulative energy source, enabling power and
// energy goal observation.
func WithEnergyMeter(e EnergyMeter) Option {
	return func(m *Monitor) { m.meter = e }
}

// New creates a Monitor that timestamps beats from clock.
func New(clock sim.Nower, opts ...Option) *Monitor {
	m := &Monitor{clock: clock, window: DefaultWindow}
	for _, o := range opts {
		o(m)
	}
	if m.window < 2 {
		panic(fmt.Sprintf("heartbeat: window %d too small (need >= 2)", m.window))
	}
	m.ring = make([]Record, m.window)
	return m
}

// Beat emits an untagged heartbeat with zero distortion.
func (m *Monitor) Beat() { m.emit(0, 0) }

// BeatTagged emits a heartbeat carrying an application tag. Tags delimit
// latency and energy goals ("target latency between specially tagged
// heartbeats", §3.1).
func (m *Monitor) BeatTagged(tag uint64) { m.emit(tag, 0) }

// BeatWithAccuracy emits a heartbeat reporting the distortion (linear
// distance from the application-defined nominal value, §3.1) of the work
// completed since the previous beat.
func (m *Monitor) BeatWithAccuracy(distortion float64) { m.emit(0, distortion) }

// BeatAt emits an untagged heartbeat stamped at time t instead of the
// clock's current time. Batched transports (the serving daemon's beats
// endpoint) and interval simulators (the chip model) use it to place
// each beat at its true emission time, so windowed rates stay unbiased
// even when many beats arrive in one call. Timestamps must not precede
// the previous beat; an earlier t is clamped to the previous beat's time
// (yielding a zero-latency record) rather than corrupting rate math with
// negative intervals.
func (m *Monitor) BeatAt(t sim.Time) { m.emitAt(t, 0, 0) }

// BeatWithAccuracyAt is BeatAt carrying a distortion report.
func (m *Monitor) BeatWithAccuracyAt(t sim.Time, distortion float64) { m.emitAt(t, 0, distortion) }

// emit stamps a beat at the monitor clock's current time.
//
//angstrom:hotpath
func (m *Monitor) emit(tag uint64, distortion float64) {
	m.emitAt(m.clock.Now(), tag, distortion)
}

// emitAt is the per-beat hot path of the serving daemon: every Beat
// variant and every chip-emitted heartbeat lands here, so it is gated
// at 0 allocs/op (BenchmarkMonitorBeatWindow4096) — O(1) circular
// insert, no formatting, no boxing.
//
//angstrom:hotpath
func (m *Monitor) emitAt(now sim.Time, tag uint64, distortion float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.emitLocked(now, tag, distortion)
}

// BeatBatchSpreadAt ingests a server-spread batch under one lock
// acquisition: count beats spread evenly across the interval since the
// monitor's previous beat, the final one landing at now carrying
// distortion. With no prior beat, a single-beat batch, or a paused
// clock (accelerated daemons between ticks) every beat lands at now.
// The placement is byte-identical to count sequential BeatAt calls
// computed against the same last-beat time — the batched form just
// stops a large batch from bouncing the mutex per beat, and reads the
// spread reference under the same lock so concurrent writers to one
// monitor cannot interleave mid-batch.
//
//angstrom:hotpath
func (m *Monitor) BeatBatchSpreadAt(now sim.Time, count int, distortion float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var last sim.Time
	if m.count > 0 {
		last = m.last().Time
	}
	if count == 1 || last <= 0 || now <= last {
		for i := 0; i < count-1; i++ {
			m.emitLocked(now, 0, 0)
		}
	} else {
		step := (now - last) / float64(count)
		for i := 1; i < count; i++ {
			m.emitLocked(last+step*float64(i), 0, 0)
		}
	}
	m.emitLocked(now, 0, distortion)
}

// BeatBatchShiftedAt ingests a client-timestamped batch under one lock
// acquisition: every ts[i]+shift in order, then one final beat exactly
// at now carrying distortion. The final beat takes now directly rather
// than lastTS+shift because the two differ in float arithmetic, and
// the daemon's clock-skew contract is that a shifted batch's last beat
// lands exactly on the server clock.
//
//angstrom:hotpath
func (m *Monitor) BeatBatchShiftedAt(ts []sim.Time, shift, now sim.Time, distortion float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, t := range ts {
		m.emitLocked(t+shift, 0, 0)
	}
	m.emitLocked(now, 0, distortion)
}

// emitLocked inserts one record; caller holds m.mu.
//
//angstrom:hotpath
func (m *Monitor) emitLocked(now sim.Time, tag uint64, distortion float64) {
	if m.count > 0 {
		if last := m.last().Time; now < last {
			now = last
		}
	}
	rec := Record{
		Seq:        m.count + 1,
		Tag:        tag,
		Time:       now,
		Distortion: distortion,
	}
	if m.meter != nil {
		rec.EnergyJ = m.meter.EnergyJoules()
	}
	if m.count == 0 {
		m.first = now
	} else {
		prev := m.last()
		rec.Latency = now - prev.Time
		if rec.Latency > 0 {
			rec.Rate = 1 / rec.Latency
		}
	}
	// O(1) circular insert: overwrite the oldest slot once the window is
	// full. This is the per-beat hot path of the serving daemon — the old
	// copy(m.ring, m.ring[1:]) shift was O(window) per beat.
	if m.size < m.window {
		m.ring[(m.start+m.size)%m.window] = rec
		m.size++
	} else {
		m.ring[m.start] = rec
		m.start = (m.start + 1) % m.window
	}
	m.count++
}

// at returns the i-th oldest retained record (0 <= i < m.size); caller
// holds m.mu.
func (m *Monitor) at(i int) Record { return m.ring[(m.start+i)%m.window] }

// last returns the most recent record; caller holds m.mu and has checked
// m.count > 0.
func (m *Monitor) last() Record { return m.at(m.size - 1) }

// Count reports the total number of beats emitted so far. Like
// LastTime it is O(1) under the mutex, cheap enough for fleet-scale
// observers to poll once per app per tick phase.
func (m *Monitor) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// LastTime reports the timestamp of the most recent beat (0 before the
// first beat). Unlike Observe it is O(1), so per-batch hot paths can use
// it to spread server-side timestamps without scanning the window.
func (m *Monitor) LastTime() sim.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	return m.last().Time
}

// Observation is a consistent snapshot of application progress, the
// observer-side view of §3.1.
type Observation struct {
	Beats         uint64  // total beats emitted
	WindowRate    float64 // beats/s over the averaging window
	GlobalRate    float64 // beats/s since the first beat
	InstantRate   float64 // rate implied by the most recent inter-beat gap
	WindowLatency float64 // mean inter-beat latency over the window, seconds
	Distortion    float64 // mean distortion over the window
	PowerW        float64 // mean power over the window (0 if no meter)
	LastTime      sim.Time
}

// Observe returns the current snapshot. With fewer than two beats the
// rates are zero.
func (m *Monitor) Observe() Observation {
	m.mu.Lock()
	defer m.mu.Unlock()
	var o Observation
	o.Beats = m.count
	if m.size == 0 {
		return o
	}
	newest := m.last()
	o.LastTime = newest.Time
	if m.count >= 2 {
		oldest := m.at(0)
		span := newest.Time - oldest.Time
		nIntervals := float64(m.size - 1)
		if span > 0 && nIntervals > 0 {
			o.WindowRate = nIntervals / span
			o.WindowLatency = span / nIntervals
		}
		if meterSpan := newest.EnergyJ - oldest.EnergyJ; span > 0 && m.meter != nil {
			o.PowerW = meterSpan / span
		}
		o.InstantRate = newest.Rate
		total := newest.Time - m.first
		if total > 0 {
			o.GlobalRate = float64(m.count-1) / total
		}
	}
	sum := 0.0
	for i := 0; i < m.size; i++ {
		sum += m.at(i).Distortion
	}
	o.Distortion = sum / float64(m.size)
	return o
}

// Window returns a copy of the current ring contents, oldest first.
func (m *Monitor) Window() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, m.size)
	for i := range out {
		out[i] = m.at(i)
	}
	return out
}

// TaggedSpan reports the elapsed time and energy between the most recent
// beat tagged `end` and the closest preceding beat tagged `start` inside
// the window. ok is false if the window does not contain such a pair.
func (m *Monitor) TaggedSpan(start, end uint64) (seconds, joules float64, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	endIdx := -1
	for i := m.size - 1; i >= 0; i-- {
		if m.at(i).Tag == end {
			endIdx = i
			break
		}
	}
	if endIdx < 0 {
		return 0, 0, false
	}
	endRec := m.at(endIdx)
	for i := endIdx - 1; i >= 0; i-- {
		if r := m.at(i); r.Tag == start {
			return endRec.Time - r.Time, endRec.EnergyJ - r.EnergyJ, true
		}
	}
	return 0, 0, false
}

package xeon

import "angstrom/internal/sim"

// PowerMeter models the WattsUp .net device of §5.2 [1]: it integrates
// wall energy continuously and reports the average consumed power over
// fixed sampling windows (one second on the real device).
//
// It also satisfies heartbeat.EnergyMeter, so application monitors can
// evaluate power and energy goals against wall measurements exactly as
// the real SEEC deployment did.
type PowerMeter struct {
	clock    sim.Nower
	windowS  float64
	joules   float64 // cumulative energy
	winStart sim.Time
	winJ     float64
	samples  []float64
}

// NewPowerMeter builds a meter with the given sampling window.
func NewPowerMeter(clock sim.Nower, windowS float64) *PowerMeter {
	if windowS <= 0 {
		windowS = 1
	}
	return &PowerMeter{clock: clock, windowS: windowS, winStart: clock.Now()}
}

// Integrate accumulates powerW drawn for dt seconds. The caller advances
// the clock; Integrate closes sampling windows as they fill.
func (m *PowerMeter) Integrate(powerW, dt float64) {
	m.joules += powerW * dt
	remaining := dt
	for remaining > 0 {
		now := m.clock.Now() - remaining // interval start
		winEnd := m.winStart + m.windowS
		if now+remaining < winEnd {
			m.winJ += powerW * remaining
			return
		}
		inWindow := winEnd - now
		if inWindow > 0 {
			m.winJ += powerW * inWindow
			remaining -= inWindow
		} else {
			remaining = 0
		}
		m.samples = append(m.samples, m.winJ/m.windowS)
		m.winStart = winEnd
		m.winJ = 0
	}
}

// EnergyJoules implements heartbeat.EnergyMeter.
func (m *PowerMeter) EnergyJoules() float64 { return m.joules }

// Samples returns the completed per-window average powers, oldest first.
func (m *PowerMeter) Samples() []float64 {
	out := make([]float64, len(m.samples))
	copy(out, m.samples)
	return out
}

// LastSample returns the most recent completed window's average power
// (0 before the first window closes).
func (m *PowerMeter) LastSample() float64 {
	if len(m.samples) == 0 {
		return 0
	}
	return m.samples[len(m.samples)-1]
}

package xeon

import (
	"math"
	"testing"
	"testing/quick"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

func spec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.Cores != 8 {
		t.Fatalf("cores = %d, want 8 (2× quad-core E5530)", p.Cores)
	}
	if len(p.FreqsGHz) != 7 {
		t.Fatalf("%d P-states, want 7", len(p.FreqsGHz))
	}
	if p.FreqsGHz[0] != 1.6 || p.FreqsGHz[6] != 2.4 {
		t.Fatalf("P-state range [%g,%g], want [1.6,2.4] GHz", p.FreqsGHz[0], p.FreqsGHz[6])
	}
	// Power envelope: idle ~90 W, full load ~220 W.
	barnes := spec(t, "barnes")
	full, err := Evaluate(p, barnes, Config{Cores: 8, PState: 6, Duty: p.DutyLevels})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.PowerW-220) > 1 {
		t.Fatalf("full-load power = %g W, want ~220", full.PowerW)
	}
	min, _ := Evaluate(p, barnes, Config{Cores: 1, PState: 0, Duty: 1})
	if min.PowerW <= p.IdleW || min.PowerW > 110 {
		t.Fatalf("lightest config power = %g W, want slightly above 90", min.PowerW)
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := DefaultParams()
	barnes := spec(t, "barnes")
	for _, cfg := range []Config{
		{Cores: 0, PState: 0, Duty: 1},
		{Cores: 9, PState: 0, Duty: 1},
		{Cores: 1, PState: 7, Duty: 1},
		{Cores: 1, PState: 0, Duty: 0},
		{Cores: 1, PState: 0, Duty: 11},
	} {
		if _, err := Evaluate(p, barnes, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestMoreCoresFasterMorePower(t *testing.T) {
	p := DefaultParams()
	barnes := spec(t, "barnes")
	one, _ := Evaluate(p, barnes, Config{Cores: 1, PState: 3, Duty: 10})
	eight, _ := Evaluate(p, barnes, Config{Cores: 8, PState: 3, Duty: 10})
	if eight.HeartRate <= one.HeartRate*4 {
		t.Fatalf("8-core speedup %g too low for barnes", eight.HeartRate/one.HeartRate)
	}
	if eight.PowerW <= one.PowerW {
		t.Fatal("8 cores must draw more power")
	}
}

func TestClockSpeedupSublinearForMemoryBound(t *testing.T) {
	p := DefaultParams()
	ocean := spec(t, "ocean")
	water := spec(t, "water")
	rate := func(s workload.Spec, ps int) float64 {
		m, err := Evaluate(p, s, Config{Cores: 4, PState: ps, Duty: 10})
		if err != nil {
			t.Fatal(err)
		}
		return m.HeartRate
	}
	oceanGain := rate(ocean, 6) / rate(ocean, 0)
	waterGain := rate(water, 6) / rate(water, 0)
	clockRatio := 2.4 / 1.6
	if oceanGain >= waterGain {
		t.Fatalf("memory-bound ocean clock gain %g should trail water's %g", oceanGain, waterGain)
	}
	if waterGain > clockRatio {
		t.Fatalf("water clock gain %g exceeds the clock ratio %g", waterGain, clockRatio)
	}
}

func TestDutyScalesThroughputLinearly(t *testing.T) {
	p := DefaultParams()
	barnes := spec(t, "barnes")
	full, _ := Evaluate(p, barnes, Config{Cores: 4, PState: 3, Duty: 10})
	half, _ := Evaluate(p, barnes, Config{Cores: 4, PState: 3, Duty: 5})
	if math.Abs(half.HeartRate/full.HeartRate-0.5) > 1e-9 {
		t.Fatalf("half duty rate ratio = %g, want 0.5", half.HeartRate/full.HeartRate)
	}
	if half.PowerW >= full.PowerW {
		t.Fatal("half duty must save power")
	}
}

func TestPerfPerWattMetric(t *testing.T) {
	p := DefaultParams()
	m := Metrics{HeartRate: 100, PowerW: p.IdleW + 10}
	if got := p.PerfPerWatt(m, 40); math.Abs(got-4) > 1e-12 {
		t.Fatalf("PerfPerWatt = %g, want 4 (capped at target)", got)
	}
	if got := p.PerfPerWatt(Metrics{HeartRate: 5, PowerW: p.IdleW}, 5); got != 0 {
		t.Fatal("idle-only power must yield 0")
	}
}

func TestConfigsEnumeration(t *testing.T) {
	p := DefaultParams()
	want := 8 * 7 * 10
	if got := len(p.Configs()); got != want {
		t.Fatalf("|configs| = %d, want %d", got, want)
	}
}

func TestMaxHeartRatePositiveAndDominant(t *testing.T) {
	p := DefaultParams()
	for _, s := range workload.Specs() {
		max := p.MaxHeartRate(s)
		if max <= 0 {
			t.Fatalf("%s: max heart rate %g", s.Name, max)
		}
		m, _ := Evaluate(p, s, Config{Cores: 4, PState: 3, Duty: 7})
		if m.HeartRate > max {
			t.Fatalf("%s: mid config beats the reported maximum", s.Name)
		}
	}
}

func TestEvaluateDeterministicProperty(t *testing.T) {
	p := DefaultParams()
	specs := workload.Specs()
	f := func(c, ps, d, si uint8) bool {
		cfg := Config{
			Cores:  int(c)%8 + 1,
			PState: int(ps) % 7,
			Duty:   int(d)%10 + 1,
		}
		s := specs[int(si)%len(specs)]
		a, err1 := Evaluate(p, s, cfg)
		b, err2 := Evaluate(p, s, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		return a == b && a.HeartRate > 0 && a.PowerW > p.IdleW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRunIntervalEmitsBeats(t *testing.T) {
	p := DefaultParams()
	clock := sim.NewClock(0)
	srv, err := NewServer(p, Config{Cores: 2, PState: 2, Duty: 10}, clock)
	if err != nil {
		t.Fatal(err)
	}
	mon := heartbeat.New(clock, heartbeat.WithEnergyMeter(srv.Meter))
	srv.Attach(workload.NewInstance(spec(t, "water"), 1), mon)
	m, err := srv.RunInterval(2.0)
	if err != nil {
		t.Fatal(err)
	}
	// Beats over 2 s should approximate rate × 2 (work noise aside).
	got := float64(mon.Count())
	want := m.HeartRate * 2
	if got < want*0.7 || got > want*1.3 {
		t.Fatalf("beats = %g over 2s, want ~%g", got, want)
	}
	obs := mon.Observe()
	if obs.PowerW < p.IdleW {
		t.Fatalf("observed power %g below idle", obs.PowerW)
	}
}

func TestServerSetConfigValidates(t *testing.T) {
	clock := sim.NewClock(0)
	srv, _ := NewServer(DefaultParams(), Config{Cores: 1, PState: 0, Duty: 10}, clock)
	if err := srv.SetConfig(Config{Cores: 99, PState: 0, Duty: 10}); err == nil {
		t.Fatal("bad config accepted")
	}
	if srv.Config().Cores != 1 {
		t.Fatal("failed SetConfig mutated state")
	}
}

func TestServerActuatorsDriveConfig(t *testing.T) {
	p := DefaultParams()
	clock := sim.NewClock(0)
	srv, _ := NewServer(p, Config{Cores: 1, PState: 0, Duty: 10}, clock)
	srv.Attach(workload.NewInstance(spec(t, "barnes"), 2), heartbeat.New(clock))
	acts, err := srv.Actuators()
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("%d actuators, want 3 (cores, clock, idle)", len(acts))
	}
	for _, a := range acts {
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
	}
	// Apply 8 cores through the actuator; the server must follow.
	if err := acts[0].Set(7); err != nil {
		t.Fatal(err)
	}
	if srv.Config().Cores != 8 {
		t.Fatalf("server cores = %d after actuator, want 8", srv.Config().Cores)
	}
	// Speedup declared for 8 cores must exceed 1 for barnes.
	if acts[0].Settings[7].Effect.Speedup <= 1 {
		t.Fatal("8-core setting declares no speedup")
	}
}

func TestActuatorsRequireWorkload(t *testing.T) {
	clock := sim.NewClock(0)
	srv, _ := NewServer(DefaultParams(), Config{Cores: 1, PState: 0, Duty: 10}, clock)
	if _, err := srv.Actuators(); err == nil {
		t.Fatal("Actuators without workload did not error")
	}
}

func TestPowerMeterWindows(t *testing.T) {
	clock := sim.NewClock(0)
	m := NewPowerMeter(clock, 1.0)
	// 0.5 s at 100 W, 0.5 s at 200 W → window average 150 W.
	clock.Advance(0.5)
	m.Integrate(100, 0.5)
	clock.Advance(0.5)
	m.Integrate(200, 0.5)
	clock.Advance(1.0)
	m.Integrate(120, 1.0)
	s := m.Samples()
	if len(s) != 2 {
		t.Fatalf("%d samples, want 2", len(s))
	}
	if math.Abs(s[0]-150) > 1e-9 || math.Abs(s[1]-120) > 1e-9 {
		t.Fatalf("samples = %v, want [150 120]", s)
	}
	if m.LastSample() != s[1] {
		t.Fatal("LastSample mismatch")
	}
	if math.Abs(m.EnergyJoules()-270) > 1e-9 {
		t.Fatalf("energy = %g J, want 270", m.EnergyJoules())
	}
}

func TestPowerMeterSpanningIntegration(t *testing.T) {
	clock := sim.NewClock(0)
	m := NewPowerMeter(clock, 1.0)
	// One 2.5 s integration at 100 W must close two windows.
	clock.Advance(2.5)
	m.Integrate(100, 2.5)
	s := m.Samples()
	if len(s) != 2 || math.Abs(s[0]-100) > 1e-9 || math.Abs(s[1]-100) > 1e-9 {
		t.Fatalf("samples = %v, want two 100 W windows", s)
	}
}

// Package xeon models the existing-system testbed of §5.2: a Dell
// PowerEdge R410 with two quad-core Intel Xeon E5530 processors running
// Linux, seven cpufrequtils-controlled power states from 1.6 to 2.4 GHz,
// and a WattsUp wall-power meter sampling at one-second intervals. The
// measured envelope in the paper — ~90 W idle, up to 220 W loaded — is
// built into the defaults.
//
// The three actions SEEC uses there (§5.2) are exposed as actuators:
// the number of cores assigned to the application, the clock speed of
// those cores, and the fraction of active (non-idle) cycles.
package xeon

import (
	"fmt"
	"math"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// Params describes the server hardware.
type Params struct {
	// Cores is the total core count (2 sockets × 4).
	Cores int
	// FreqsGHz are the P-state clock frequencies, ascending.
	FreqsGHz []float64
	// IdleW is wall power with the machine idle.
	IdleW float64
	// CoreMaxW is one core's incremental power at the top P-state.
	CoreMaxW float64
	// VminVmax are the supply voltages at the lowest/highest P-state.
	Vmin, Vmax float64
	// L3KB is the (fixed) shared last-level cache.
	L3KB float64
	// MemLatencyNs is DRAM latency.
	MemLatencyNs float64
	// CPI0 is the core-bound cycles per instruction (superscalar < 1).
	CPI0 float64
	// DutyLevels is the number of active-cycle settings (1/n .. 1).
	DutyLevels int
}

// DefaultParams is the R410 of §5.2.
func DefaultParams() Params {
	return Params{
		Cores:        8,
		FreqsGHz:     []float64{1.60, 1.73, 1.86, 2.00, 2.13, 2.26, 2.40},
		IdleW:        90,
		CoreMaxW:     16.25, // 8 × 16.25 + 90 = 220 W at full load
		Vmin:         0.85,
		Vmax:         1.15,
		L3KB:         8192,
		MemLatencyNs: 70,
		CPI0:         0.8,
		DutyLevels:   10,
	}
}

// Config is one setting of the three §5.2 knobs.
type Config struct {
	Cores  int // cores assigned to the application, 1..Params.Cores
	PState int // index into FreqsGHz
	Duty   int // active-cycle level, 1..DutyLevels (level/DutyLevels active)
}

// Validate checks cfg against p.
func (p Params) Validate(cfg Config) error {
	if cfg.Cores < 1 || cfg.Cores > p.Cores {
		return fmt.Errorf("xeon: %d cores outside [1,%d]", cfg.Cores, p.Cores)
	}
	if cfg.PState < 0 || cfg.PState >= len(p.FreqsGHz) {
		return fmt.Errorf("xeon: P-state %d outside [0,%d)", cfg.PState, len(p.FreqsGHz))
	}
	if cfg.Duty < 1 || cfg.Duty > p.DutyLevels {
		return fmt.Errorf("xeon: duty level %d outside [1,%d]", cfg.Duty, p.DutyLevels)
	}
	return nil
}

// voltage interpolates the P-state supply voltage.
func (p Params) voltage(pstate int) float64 {
	if len(p.FreqsGHz) == 1 {
		return p.Vmax
	}
	t := float64(pstate) / float64(len(p.FreqsGHz)-1)
	return p.Vmin + t*(p.Vmax-p.Vmin)
}

// Metrics is the model output for one (workload, config) pair.
type Metrics struct {
	HeartRate float64 // beats/s
	PowerW    float64 // wall power
	IPS       float64
}

// Evaluate is the server performance/power model.
//
// Performance: seconds per instruction = CPI0/f + memOps·miss·t_mem; the
// memory term does not scale with clock, which is what makes high
// P-states progressively less useful for memory-bound codes. Cores scale
// by the workload's Amdahl curve; the duty knob scales throughput
// linearly (idle cycles do no work).
//
// Power: idle + per-active-core f·V² dynamic power, scaled by duty
// (a halted core burns only a small clock-gating residue).
func Evaluate(p Params, spec workload.Spec, cfg Config) (Metrics, error) {
	if err := p.Validate(cfg); err != nil {
		return Metrics{}, err
	}
	if err := spec.Validate(); err != nil {
		return Metrics{}, err
	}
	fGHz := p.FreqsGHz[cfg.PState]
	// The L3 is shared: the application sees all of it regardless of
	// core count (other cores are idle in the §5.2 single-app setup).
	miss := spec.AggregateMissRate(p.L3KB)
	nsPerInstr := p.CPI0/fGHz + spec.MemOpsPerInstr*miss*p.MemLatencyNs
	coreIPS := 1e9 / nsPerInstr
	duty := float64(cfg.Duty) / float64(p.DutyLevels)
	ips := coreIPS * spec.ParallelSpeedup(cfg.Cores) * duty

	v := p.voltage(cfg.PState)
	fmax := p.FreqsGHz[len(p.FreqsGHz)-1]
	perCore := p.CoreMaxW * (fGHz / fmax) * (v * v) / (p.Vmax * p.Vmax)
	const haltResidue = 0.08 // clock-gated fraction of dynamic power
	active := duty + haltResidue*(1-duty)
	// Cores allocated beyond the workload's parallel efficiency idle in
	// sync spins at a clock-gated residue rather than full power.
	busy := spec.ParallelSpeedup(cfg.Cores)
	const spinResidue = 0.35
	busyFrac := (busy + spinResidue*(float64(cfg.Cores)-busy)) / float64(cfg.Cores)
	power := p.IdleW + float64(cfg.Cores)*perCore*active*busyFrac

	return Metrics{
		HeartRate: ips / spec.InstrPerBeat,
		PowerW:    power,
		IPS:       ips,
	}, nil
}

// PerfPerWatt is the §5.2 metric: min(achieved, target) per Watt beyond
// idle.
func (p Params) PerfPerWatt(m Metrics, target float64) float64 {
	beyond := m.PowerW - p.IdleW
	if beyond <= 0 {
		return 0
	}
	return math.Min(m.HeartRate, target) / beyond
}

// Configs enumerates the full §5.2 action space.
func (p Params) Configs() []Config {
	var out []Config
	for c := 1; c <= p.Cores; c++ {
		for ps := range p.FreqsGHz {
			for d := 1; d <= p.DutyLevels; d++ {
				out = append(out, Config{Cores: c, PState: ps, Duty: d})
			}
		}
	}
	return out
}

// MaxHeartRate is the best achievable rate for spec across the space
// (used to pose the paper's "half of maximum" goals).
func (p Params) MaxHeartRate(spec workload.Spec) float64 {
	best := 0.0
	for _, cfg := range p.Configs() {
		m, err := Evaluate(p, spec, cfg)
		if err == nil && m.HeartRate > best {
			best = m.HeartRate
		}
	}
	return best
}

// Server is the closed-loop instance: a configuration, a power meter,
// and an attached application emitting heartbeats in simulated time.
type Server struct {
	p     Params
	cfg   Config
	clock *sim.Clock
	Meter *PowerMeter

	inst      *workload.Instance
	mon       *heartbeat.Monitor
	beat      uint64
	workCarry float64
}

// NewServer builds a server in the given initial configuration.
func NewServer(p Params, cfg Config, clock *sim.Clock) (*Server, error) {
	if err := p.Validate(cfg); err != nil {
		return nil, err
	}
	return &Server{p: p, cfg: cfg, clock: clock, Meter: NewPowerMeter(clock, 1.0)}, nil
}

// Attach connects the running application and its monitor.
func (s *Server) Attach(inst *workload.Instance, mon *heartbeat.Monitor) {
	s.inst = inst
	s.mon = mon
	s.beat = 0
	s.workCarry = 0
}

// Config returns the current knob settings.
func (s *Server) Config() Config { return s.cfg }

// BeatCount reports how many beats the attached application has emitted;
// the dynamic oracle uses it to index the phase signal with perfect
// knowledge.
func (s *Server) BeatCount() uint64 { return s.beat }

// Params returns the hardware constants.
func (s *Server) Params() Params { return s.p }

// SetConfig applies new knob settings (cpufrequtils / scheduler calls in
// the real system).
func (s *Server) SetConfig(cfg Config) error {
	if err := s.p.Validate(cfg); err != nil {
		return err
	}
	s.cfg = cfg
	return nil
}

// Metrics evaluates the model at the current configuration.
func (s *Server) Metrics() (Metrics, error) {
	if s.inst == nil {
		return Metrics{}, fmt.Errorf("xeon: no workload attached")
	}
	return Evaluate(s.p, s.inst.Spec, s.cfg)
}

// RunInterval advances the server by dt seconds, emitting heartbeats as
// work completes and integrating wall power into the meter.
func (s *Server) RunInterval(dt float64) (Metrics, error) {
	m, err := s.Metrics()
	if err != nil {
		return m, err
	}
	if dt <= 0 {
		return m, fmt.Errorf("xeon: non-positive interval %g", dt)
	}
	end := s.clock.Now() + dt
	for s.clock.Now() < end-1e-12 {
		need := s.inst.WorkForBeat(s.beat) - s.workCarry
		tBeat := need / m.IPS
		if s.clock.Now()+tBeat <= end {
			s.clock.Advance(tBeat)
			s.Meter.Integrate(m.PowerW, tBeat)
			if s.mon != nil {
				s.mon.Beat()
			}
			s.beat++
			s.workCarry = 0
		} else {
			rem := end - s.clock.Now()
			s.workCarry += rem * m.IPS
			s.clock.Advance(rem)
			s.Meter.Integrate(m.PowerW, rem)
		}
	}
	return m, nil
}

// Actuators exposes the three §5.2 knobs as SEEC actuators, with effects
// declared relative to the server's current configuration (the nominal
// point).
func (s *Server) Actuators() ([]*actuator.Actuator, error) {
	if s.inst == nil {
		return nil, fmt.Errorf("xeon: attach a workload before building actuators")
	}
	spec := s.inst.Spec
	base := s.cfg
	baseM, err := Evaluate(s.p, spec, base)
	if err != nil {
		return nil, err
	}
	effect := func(cfg Config) (actuator.Effect, error) {
		m, merr := Evaluate(s.p, spec, cfg)
		if merr != nil {
			return actuator.Effect{}, merr
		}
		return actuator.Effect{
			Speedup: m.HeartRate / baseM.HeartRate,
			PowerX:  (m.PowerW - s.p.IdleW) / (baseM.PowerW - s.p.IdleW),
			Distort: 1,
		}, nil
	}
	axes := []actuator.Axis{actuator.Performance, actuator.Power}

	var coreSettings []actuator.Setting
	for c := 1; c <= s.p.Cores; c++ {
		cfg := base
		cfg.Cores = c
		eff := actuator.Nominal()
		if c != base.Cores {
			if eff, err = effect(cfg); err != nil {
				return nil, err
			}
		}
		coreSettings = append(coreSettings, actuator.Setting{
			Label: fmt.Sprintf("%d cores", c), Value: c, Effect: eff,
		})
	}
	var freqSettings []actuator.Setting
	for ps := range s.p.FreqsGHz {
		cfg := base
		cfg.PState = ps
		eff := actuator.Nominal()
		if ps != base.PState {
			if eff, err = effect(cfg); err != nil {
				return nil, err
			}
		}
		freqSettings = append(freqSettings, actuator.Setting{
			Label: fmt.Sprintf("%.2fGHz", s.p.FreqsGHz[ps]), Value: ps, Effect: eff,
		})
	}
	var dutySettings []actuator.Setting
	for d := 1; d <= s.p.DutyLevels; d++ {
		cfg := base
		cfg.Duty = d
		eff := actuator.Nominal()
		if d != base.Duty {
			if eff, err = effect(cfg); err != nil {
				return nil, err
			}
		}
		dutySettings = append(dutySettings, actuator.Setting{
			Label: fmt.Sprintf("duty %d/%d", d, s.p.DutyLevels), Value: d, Effect: eff,
		})
	}

	acts := []*actuator.Actuator{
		{
			Name: "core-allocation", Settings: coreSettings, NominalIndex: base.Cores - 1,
			Apply: func(i int) error {
				cfg := s.cfg
				cfg.Cores = coreSettings[i].Value
				return s.SetConfig(cfg)
			},
			DelaySeconds: 0.05, Scope: actuator.GlobalScope, Axes: axes,
		},
		{
			Name: "clock-speed", Settings: freqSettings, NominalIndex: base.PState,
			Apply: func(i int) error {
				cfg := s.cfg
				cfg.PState = freqSettings[i].Value
				return s.SetConfig(cfg)
			},
			DelaySeconds: 0.01, Scope: actuator.GlobalScope, Axes: axes,
		},
		{
			Name: "idle-cycles", Settings: dutySettings, NominalIndex: base.Duty - 1,
			Apply: func(i int) error {
				cfg := s.cfg
				cfg.Duty = dutySettings[i].Value
				return s.SetConfig(cfg)
			},
			DelaySeconds: 0.001, Scope: actuator.GlobalScope, Axes: axes,
		},
	}
	for _, a := range acts {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	return acts, nil
}

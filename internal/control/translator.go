package control

import (
	"fmt"
	"sort"
)

// Candidate is one discrete configuration as seen by the translator:
// its (possibly corrected) speedup and power multipliers plus an opaque
// ID the caller maps back to a concrete configuration.
type Candidate struct {
	ID      int
	Speedup float64
	Power   float64
}

// Schedule is the translator's output: run Hi for HiFrac of the decision
// interval and Lo for the remainder. When the demanded speedup lands
// exactly on a candidate, Lo == Hi and HiFrac == 1.
//
// Time-multiplexing between two discrete settings is how SEEC realizes
// fractional speedups ("changing the number of active (or non-idle)
// cycles" is the degenerate one-knob case of the same idea).
type Schedule struct {
	Lo, Hi Candidate
	HiFrac float64
}

// AvgSpeedup is the schedule's time-weighted speedup.
func (s Schedule) AvgSpeedup() float64 {
	return s.HiFrac*s.Hi.Speedup + (1-s.HiFrac)*s.Lo.Speedup
}

// AvgPower is the schedule's time-weighted power multiplier.
func (s Schedule) AvgPower() float64 {
	return s.HiFrac*s.Hi.Power + (1-s.HiFrac)*s.Lo.Power
}

// Translator converts a continuous speedup demand into a minimum-power
// schedule over discrete candidates. It keeps only the lower convex hull
// of the Pareto-optimal (speedup, power) points: any demanded speedup is
// met at minimum average power by time-multiplexing between the two hull
// points that bracket it (power is the time-average of the two vertices,
// and the hull is by construction the lower envelope of such averages).
type Translator struct {
	hull []Candidate // ascending speedup, ascending power, convex
}

// NewTranslator builds a translator. It returns an error if no candidate
// has positive speedup.
func NewTranslator(cands []Candidate) (*Translator, error) {
	t := &Translator{}
	if err := t.Rebuild(cands); err != nil {
		return nil, err
	}
	return t, nil
}

// Rebuild replaces the candidate set, e.g. after the adaptive layer has
// corrected the models.
func (t *Translator) Rebuild(cands []Candidate) error {
	pts := make([]Candidate, 0, len(cands))
	for _, c := range cands {
		if c.Speedup > 0 && c.Power > 0 {
			pts = append(pts, c)
		}
	}
	if len(pts) == 0 {
		return fmt.Errorf("control: no usable candidates among %d", len(cands))
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].Speedup != pts[j].Speedup {
			return pts[i].Speedup < pts[j].Speedup
		}
		return pts[i].Power < pts[j].Power
	})
	// Pareto pass: strictly increasing power with speedup, dropping
	// dominated points (scan fastest-to-slowest keeping suffix minima).
	pareto := make([]Candidate, 0, len(pts))
	minPower := 0.0
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		if len(pareto) == 0 || p.Power < minPower {
			if len(pareto) > 0 && pareto[len(pareto)-1].Speedup == p.Speedup {
				pareto[len(pareto)-1] = p // cheaper tie replaces
				minPower = p.Power
				continue
			}
			pareto = append(pareto, p)
			minPower = p.Power
		}
	}
	for i, j := 0, len(pareto)-1; i < j; i, j = i+1, j-1 {
		pareto[i], pareto[j] = pareto[j], pareto[i]
	}
	// Lower convex hull in (speedup, power): drop points above the
	// segment joining their neighbours.
	hull := pareto[:0:0]
	for _, p := range pareto {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// Andrew monotone chain, lower hull: pop b unless a→b→p turns
			// counterclockwise (b strictly below segment a—p).
			cross := (b.Speedup-a.Speedup)*(p.Power-a.Power) -
				(b.Power-a.Power)*(p.Speedup-a.Speedup)
			if cross <= 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, p)
	}
	t.hull = hull
	return nil
}

// MinSpeedup and MaxSpeedup report the translator's achievable range.
func (t *Translator) MinSpeedup() float64 { return t.hull[0].Speedup }

// MaxSpeedup reports the fastest achievable speedup.
func (t *Translator) MaxSpeedup() float64 { return t.hull[len(t.hull)-1].Speedup }

// Hull exposes the retained candidates (ascending speedup), for reports.
func (t *Translator) Hull() []Candidate {
	out := make([]Candidate, len(t.hull))
	copy(out, t.hull)
	return out
}

// Translate returns the minimum-average-power schedule whose speedup is
// target. Targets outside the achievable range clamp to the extremes.
func (t *Translator) Translate(target float64) Schedule {
	h := t.hull
	if target <= h[0].Speedup {
		return Schedule{Lo: h[0], Hi: h[0], HiFrac: 1}
	}
	if target >= h[len(h)-1].Speedup {
		last := h[len(h)-1]
		return Schedule{Lo: last, Hi: last, HiFrac: 1}
	}
	// Binary search for the bracketing pair.
	idx := sort.Search(len(h), func(i int) bool { return h[i].Speedup >= target })
	hi := h[idx]
	if hi.Speedup == target {
		return Schedule{Lo: hi, Hi: hi, HiFrac: 1}
	}
	lo := h[idx-1]
	frac := (target - lo.Speedup) / (hi.Speedup - lo.Speedup)
	return Schedule{Lo: lo, Hi: hi, HiFrac: frac}
}

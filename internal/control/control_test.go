package control

import (
	"math"
	"testing"
	"testing/quick"

	"angstrom/internal/sim"
)

func TestKalmanConvergesOnConstantBase(t *testing.T) {
	k := NewKalman(0.01, 0.1)
	const b = 7.5
	rng := sim.NewRNG(1)
	for i := 0; i < 500; i++ {
		s := 1 + rng.Float64()*3
		h := b*s + rng.Norm(0, 0.05)
		k.Update(h, s)
	}
	if got := k.Estimate(); math.Abs(got-b) > 0.3 {
		t.Fatalf("estimate = %g, want ~%g", got, b)
	}
}

func TestKalmanTracksStepChange(t *testing.T) {
	k := NewKalman(0.05, 0.1)
	for i := 0; i < 100; i++ {
		k.Update(10*2.0, 2.0) // b = 10
	}
	for i := 0; i < 100; i++ {
		k.Update(20*2.0, 2.0) // b jumps to 20
	}
	if got := k.Estimate(); math.Abs(got-20) > 1 {
		t.Fatalf("estimate after step = %g, want ~20", got)
	}
}

func TestKalmanFirstSampleInitializes(t *testing.T) {
	k := NewKalman(0.01, 0.1)
	if got := k.Update(15, 3); math.Abs(got-5) > 1e-12 {
		t.Fatalf("first update estimate = %g, want 5", got)
	}
}

func TestKalmanIgnoresNonPositiveSpeedup(t *testing.T) {
	k := NewKalman(0.01, 0.1)
	k.Update(10, 2)
	before := k.Estimate()
	k.Update(123, 0)
	if k.Estimate() != before {
		t.Fatal("update with s=0 changed the estimate")
	}
}

func TestKalmanNeverNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		k := NewKalman(0.05, 0.1)
		for i := 0; i < 200; i++ {
			h := rng.Norm(1, 2) // may be negative
			s := 0.5 + rng.Float64()*3
			if k.Update(h, s) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKalmanResetAndCovariance(t *testing.T) {
	k := NewKalman(0.01, 0.1)
	k.Update(10, 2)
	if k.Covariance() <= 0 {
		t.Fatal("covariance must stay positive")
	}
	k.Reset()
	if k.Estimate() != 0 {
		t.Fatal("Reset did not clear the estimate")
	}
}

func TestKalmanPanicsOnBadCovariances(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewKalman(0, 1) did not panic")
		}
	}()
	NewKalman(0, 1)
}

func TestIntegralDeadbeatConvergesInOneStep(t *testing.T) {
	// pole 0 with an exact base estimate must reach the goal in one step.
	c := NewIntegral(0, 0.1, 100)
	const b = 5.0
	goal := 40.0
	s := c.Signal()
	h := b * s
	s = c.Step(goal, h, b)
	h = b * s
	if math.Abs(h-goal) > 1e-9 {
		t.Fatalf("heart rate after one deadbeat step = %g, want %g", h, goal)
	}
}

func TestIntegralConvergesWithPole(t *testing.T) {
	c := NewIntegral(0.5, 0.1, 100)
	const b = 3.0
	goal := 30.0
	h := b * c.Signal()
	for i := 0; i < 60; i++ {
		s := c.Step(goal, h, b)
		h = b * s
	}
	if math.Abs(h-goal) > 0.01 {
		t.Fatalf("converged heart rate = %g, want %g", h, goal)
	}
}

func TestIntegralSaturates(t *testing.T) {
	c := NewIntegral(0, 1, 4)
	s := c.Step(1000, 0, 1) // demands huge speedup
	if s != 4 {
		t.Fatalf("signal = %g, want saturation at 4", s)
	}
	s = c.Step(0, 1000, 1) // demands huge slowdown
	if s != 1 {
		t.Fatalf("signal = %g, want saturation at 1", s)
	}
}

func TestIntegralHoldsWithoutEstimate(t *testing.T) {
	c := NewIntegral(0.2, 1, 8)
	c.SetSignal(3)
	if got := c.Step(10, 5, 0); got != 3 {
		t.Fatalf("signal moved to %g on zero estimate, want hold at 3", got)
	}
}

func TestIntegralSetBoundsClamps(t *testing.T) {
	c := NewIntegral(0.2, 1, 8)
	c.SetSignal(8)
	c.SetBounds(1, 4)
	if c.Signal() != 4 {
		t.Fatalf("signal = %g after shrinking bounds, want 4", c.Signal())
	}
}

func TestIntegralPanicsOnBadPole(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pole=1 did not panic")
		}
	}()
	NewIntegral(1, 1, 2)
}

func TestTranslatorExactHit(t *testing.T) {
	tr, err := NewTranslator([]Candidate{
		{ID: 0, Speedup: 1, Power: 1},
		{ID: 1, Speedup: 2, Power: 3},
		{ID: 2, Speedup: 4, Power: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Translate(2)
	if s.Hi.ID != 1 || s.HiFrac != 1 {
		t.Fatalf("Translate(2) = %+v, want pure config 1", s)
	}
}

func TestTranslatorInterpolates(t *testing.T) {
	tr, err := NewTranslator([]Candidate{
		{ID: 0, Speedup: 1, Power: 1},
		{ID: 1, Speedup: 3, Power: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Translate(2)
	if math.Abs(s.AvgSpeedup()-2) > 1e-12 {
		t.Fatalf("AvgSpeedup = %g, want 2", s.AvgSpeedup())
	}
	if math.Abs(s.AvgPower()-3) > 1e-12 {
		t.Fatalf("AvgPower = %g, want 3 (linear blend)", s.AvgPower())
	}
	if s.Lo.ID != 0 || s.Hi.ID != 1 || math.Abs(s.HiFrac-0.5) > 1e-12 {
		t.Fatalf("schedule = %+v, want half/half of 0 and 1", s)
	}
}

func TestTranslatorClampsOutOfRange(t *testing.T) {
	tr, _ := NewTranslator([]Candidate{
		{ID: 0, Speedup: 1, Power: 1},
		{ID: 1, Speedup: 2, Power: 2},
	})
	if s := tr.Translate(0.1); s.Hi.ID != 0 || s.HiFrac != 1 {
		t.Fatalf("below-range target: %+v, want pure slowest", s)
	}
	if s := tr.Translate(99); s.Hi.ID != 1 || s.HiFrac != 1 {
		t.Fatalf("above-range target: %+v, want pure fastest", s)
	}
}

func TestTranslatorDropsDominatedAndNonConvex(t *testing.T) {
	tr, err := NewTranslator([]Candidate{
		{ID: 0, Speedup: 1, Power: 1},
		{ID: 1, Speedup: 2, Power: 10}, // above the 1→4 chord: never min-power
		{ID: 2, Speedup: 2, Power: 12}, // dominated by 1 outright
		{ID: 3, Speedup: 4, Power: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	hull := tr.Hull()
	if len(hull) != 2 || hull[0].ID != 0 || hull[1].ID != 3 {
		t.Fatalf("hull = %+v, want only configs 0 and 3", hull)
	}
	// The schedule for speedup 2 must multiplex 0 and 3, not use config 1.
	s := tr.Translate(2)
	want := 1 + (8.0-1.0)/3.0 // chord at speedup 2
	if math.Abs(s.AvgPower()-want) > 1e-9 {
		t.Fatalf("AvgPower = %g, want %g (chord)", s.AvgPower(), want)
	}
}

func TestTranslatorRejectsEmpty(t *testing.T) {
	if _, err := NewTranslator(nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	if _, err := NewTranslator([]Candidate{{Speedup: -1, Power: 1}}); err == nil {
		t.Fatal("all-invalid candidate set accepted")
	}
}

func TestTranslatorScheduleMeetsTargetProperty(t *testing.T) {
	// Property: for random candidate sets, any in-range target is met
	// exactly (time-weighted) and the schedule's power never exceeds the
	// cheapest single config that meets the target.
	f := func(raw []struct{ S, P uint8 }, tsel uint8) bool {
		if len(raw) < 2 {
			return true
		}
		cands := make([]Candidate, len(raw))
		for i, r := range raw {
			cands[i] = Candidate{ID: i, Speedup: 0.5 + float64(r.S)/32, Power: 0.5 + float64(r.P)/32}
		}
		tr, err := NewTranslator(cands)
		if err != nil {
			return true
		}
		target := tr.MinSpeedup() +
			(tr.MaxSpeedup()-tr.MinSpeedup())*float64(tsel)/255
		sch := tr.Translate(target)
		if math.Abs(sch.AvgSpeedup()-target) > 1e-9 {
			return false
		}
		bestSingle := math.Inf(1)
		for _, c := range cands {
			if c.Speedup >= target && c.Power < bestSingle {
				bestSingle = c.Power
			}
		}
		return sch.AvgPower() <= bestSingle+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRLSRecoversLinearModel(t *testing.T) {
	rls := NewRLS(3, 1.0, 100)
	truth := []float64{2, -1, 0.5}
	rng := sim.NewRNG(4)
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		y := 0.0
		for j := range x {
			y += truth[j] * x[j]
		}
		rls.Update(x, y+rng.Norm(0, 0.01))
	}
	got := rls.Theta()
	for j := range truth {
		if math.Abs(got[j]-truth[j]) > 0.05 {
			t.Fatalf("theta[%d] = %g, want ~%g", j, got[j], truth[j])
		}
	}
}

func TestRLSForgettingTracksDrift(t *testing.T) {
	rls := NewRLS(1, 0.95, 100)
	for i := 0; i < 200; i++ {
		rls.Update([]float64{1}, 5)
	}
	for i := 0; i < 200; i++ {
		rls.Update([]float64{1}, 9)
	}
	if got := rls.Theta()[0]; math.Abs(got-9) > 0.1 {
		t.Fatalf("theta after drift = %g, want ~9", got)
	}
}

func TestRLSUpdateReturnsPriorError(t *testing.T) {
	rls := NewRLS(1, 1, 10)
	e := rls.Update([]float64{1}, 4)
	if math.Abs(e-4) > 1e-12 {
		t.Fatalf("first error = %g, want 4 (theta starts at 0)", e)
	}
}

func TestRLSPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero features": func() { NewRLS(0, 1, 1) },
		"bad lambda":    func() { NewRLS(1, 0, 1) },
		"bad p0":        func() { NewRLS(1, 1, 0) },
		"bad predict":   func() { NewRLS(2, 1, 1).Predict([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMWConcentratesOnBestExpert(t *testing.T) {
	m := NewMW(3, 0.5)
	for i := 0; i < 50; i++ {
		m.Update([]float64{1.0, 0.1, 0.8}) // expert 1 is consistently best
	}
	if m.Best() != 1 {
		t.Fatalf("Best() = %d, want 1", m.Best())
	}
	if w := m.Weights(); w[1] < 0.95 {
		t.Fatalf("weight on best expert = %g, want > 0.95", w[1])
	}
}

func TestMWWeightsSumToOneProperty(t *testing.T) {
	f := func(losses [][3]uint8) bool {
		m := NewMW(3, 0.3)
		for _, l := range losses {
			m.Update([]float64{float64(l[0]) / 255, float64(l[1]) / 255, float64(l[2]) / 255})
			sum := 0.0
			for _, w := range m.Weights() {
				if w < 0 {
					return false
				}
				sum += w
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMWBlend(t *testing.T) {
	m := NewMW(2, 0.5)
	got := m.Blend([]float64{10, 20})
	if math.Abs(got-15) > 1e-12 {
		t.Fatalf("uniform blend = %g, want 15", got)
	}
}

func TestMWRecoversFromUnderflow(t *testing.T) {
	m := NewMW(2, 100)
	for i := 0; i < 200; i++ {
		m.Update([]float64{50, 50}) // drives all weights to zero
	}
	sum := 0.0
	for _, w := range m.Weights() {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum = %g after underflow, want 1", sum)
	}
}

func TestMWPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no experts":  func() { NewMW(0, 1) },
		"bad eta":     func() { NewMW(2, 0) },
		"bad lengths": func() { NewMW(2, 1).Update([]float64{1}) },
		"bad blend":   func() { NewMW(2, 1).Blend([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestClosedLoopKalmanIntegral exercises the two layers together the way
// the runtime composes them: unknown base speed, noisy measurements.
func TestClosedLoopKalmanIntegral(t *testing.T) {
	rng := sim.NewRNG(99)
	kf := NewKalman(0.01, 0.5)
	ctl := NewIntegral(0.3, 0.5, 16)
	const trueBase = 4.0
	goal := 24.0
	var h float64
	for i := 0; i < 200; i++ {
		s := ctl.Signal()
		h = trueBase*s + rng.Norm(0, 0.1)
		b := kf.Update(h, s)
		ctl.Step(goal, h, b)
	}
	if math.Abs(h-goal) > 1.0 {
		t.Fatalf("closed-loop heart rate = %g, want ~%g", h, goal)
	}
}

package control

import "fmt"

// RLS is a recursive least-squares estimator with exponential forgetting:
// it fits y ≈ x·θ on line, discounting old samples by λ per step. The
// SEEC adaptive layer uses it (with one-hot setting features in the log
// domain) to learn the *actual* effect of each actuator setting when the
// observed behaviour diverges from the designer-declared multipliers.
type RLS struct {
	n      int
	lambda float64
	theta  []float64
	p      [][]float64 // covariance matrix

	scratch []float64 // reusable P·x buffer
}

// NewRLS builds an estimator over n features with forgetting factor
// lambda in (0, 1] and initial covariance p0·I (larger p0 = faster
// initial learning).
func NewRLS(n int, lambda, p0 float64) *RLS {
	if n <= 0 {
		panic("control: RLS with no features")
	}
	if lambda <= 0 || lambda > 1 {
		panic("control: RLS forgetting factor must be in (0, 1]")
	}
	if p0 <= 0 {
		panic("control: RLS initial covariance must be positive")
	}
	r := &RLS{
		n:       n,
		lambda:  lambda,
		theta:   make([]float64, n),
		p:       make([][]float64, n),
		scratch: make([]float64, n),
	}
	for i := range r.p {
		r.p[i] = make([]float64, n)
		r.p[i][i] = p0
	}
	return r
}

// Predict returns x·θ.
func (r *RLS) Predict(x []float64) float64 {
	if len(x) != r.n {
		panic(fmt.Sprintf("control: RLS feature length %d, want %d", len(x), r.n))
	}
	y := 0.0
	for i, xi := range x {
		y += xi * r.theta[i]
	}
	return y
}

// Update folds in one observation (x, y) and returns the prediction error
// before the update.
func (r *RLS) Update(x []float64, y float64) float64 {
	err := y - r.Predict(x)
	// k = P·x / (λ + xᵀ·P·x)
	px := r.scratch
	for i := 0; i < r.n; i++ {
		s := 0.0
		for j := 0; j < r.n; j++ {
			s += r.p[i][j] * x[j]
		}
		px[i] = s
	}
	denom := r.lambda
	for i := 0; i < r.n; i++ {
		denom += x[i] * px[i]
	}
	// θ += k·err ;  P = (P − k·xᵀ·P) / λ
	for i := 0; i < r.n; i++ {
		k := px[i] / denom
		r.theta[i] += k * err
	}
	for i := 0; i < r.n; i++ {
		ki := px[i] / denom
		for j := 0; j < r.n; j++ {
			r.p[i][j] = (r.p[i][j] - ki*px[j]) / r.lambda
		}
	}
	return err
}

// Theta returns a copy of the coefficient estimates.
func (r *RLS) Theta() []float64 {
	out := make([]float64, r.n)
	copy(out, r.theta)
	return out
}

// Package control is the control-theory toolbox behind the SEEC decision
// engine (§3.3). The decision engine is layered:
//
//   - a classical feedback controller (Integral) computes the speedup the
//     application needs to meet its goal;
//   - an adaptive layer (Kalman, RLS) estimates the application's base
//     speed and corrects the declared actuator models on line, so the
//     runtime works "without prior knowledge of the application, or when
//     the behavior of the actuator diverges from the predicted behavior";
//   - a machine-learning layer (MW) selects among candidate prior models
//     using multiplicative weights.
//
// A Translator turns the continuous speedup demanded by the controller
// into a minimum-cost schedule over the discrete configuration space.
package control

// Kalman is a scalar Kalman filter estimating an application's base speed
// b(t): the heart rate the application would sustain at speedup 1. The
// measurement model is h(t) = s(t)·b(t) + v(t), where s(t) is the speedup
// the runtime applied during the interval and h(t) the observed heart
// rate; the state model is a random walk, b(t) = b(t−1) + w(t). This is
// the estimator used throughout the SEEC/Heartbeats literature (e.g.
// Maggio et al., CDC 2010).
type Kalman struct {
	x float64 // state estimate: base heart rate b̂
	p float64 // estimate covariance
	q float64 // process noise covariance
	r float64 // measurement noise covariance

	initialized bool
}

// NewKalman builds a filter with the given noise covariances. q controls
// how fast the estimate tracks workload phase changes; r how much a
// single noisy heart-rate sample can move it.
func NewKalman(q, r float64) *Kalman {
	if q <= 0 || r <= 0 {
		panic("control: Kalman covariances must be positive")
	}
	return &Kalman{q: q, r: r, p: 1}
}

// Update folds in one measurement: observed heart rate h under applied
// speedup s, and returns the new base-speed estimate. s must be positive.
func (k *Kalman) Update(h, s float64) float64 {
	if s <= 0 {
		return k.x
	}
	if !k.initialized {
		// First sample initializes the state directly. Negative heart
		// rates are measurement noise; the base speed is non-negative.
		k.x = max(h/s, 0)
		k.p = 1
		k.initialized = true
		return k.x
	}
	// Predict.
	pPred := k.p + k.q
	// Update with measurement matrix H = s.
	innov := h - s*k.x
	denom := s*s*pPred + k.r
	gain := pPred * s / denom
	k.x += gain * innov
	if k.x < 0 {
		k.x = 0
	}
	k.p = (1 - gain*s) * pPred
	return k.x
}

// Estimate returns the current base-speed estimate (0 before the first
// update).
func (k *Kalman) Estimate() float64 { return k.x }

// Covariance returns the current estimate covariance.
func (k *Kalman) Covariance() float64 { return k.p }

// Reset clears the filter, e.g. when the runtime switches applications.
func (k *Kalman) Reset() {
	k.x, k.p, k.initialized = 0, 1, false
}

package control

import "math"

// MW is a multiplicative-weights expert learner: the machine-learning
// layer of the SEEC decision engine. Each expert is a candidate system
// model (for example, the response profile of a previously seen
// application); each round the runtime scores every expert's prediction
// against the observed behaviour and MW concentrates weight on the
// experts that keep predicting well. This is the mechanism SEEC uses to
// act sensibly on applications "with which it has no prior experience"
// (§3.3) by matching them to known behaviour.
type MW struct {
	w   []float64
	eta float64
}

// NewMW builds a learner over k experts with learning rate eta > 0.
// Weights start uniform.
func NewMW(k int, eta float64) *MW {
	if k <= 0 {
		panic("control: MW with no experts")
	}
	if eta <= 0 {
		panic("control: MW learning rate must be positive")
	}
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / float64(k)
	}
	return &MW{w: w, eta: eta}
}

// Update applies one round of losses (one per expert; larger = worse,
// typically normalized to [0, 1]) and renormalizes.
func (m *MW) Update(losses []float64) {
	if len(losses) != len(m.w) {
		panic("control: MW loss vector length mismatch")
	}
	sum := 0.0
	for i, l := range losses {
		m.w[i] *= math.Exp(-m.eta * l)
		sum += m.w[i]
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		// Degenerate round (all weights underflowed): reset to uniform
		// rather than propagate NaNs into decisions.
		for i := range m.w {
			m.w[i] = 1 / float64(len(m.w))
		}
		return
	}
	for i := range m.w {
		m.w[i] /= sum
	}
}

// Weights returns a copy of the current distribution.
func (m *MW) Weights() []float64 {
	out := make([]float64, len(m.w))
	copy(out, m.w)
	return out
}

// Best returns the index of the highest-weight expert (smallest index on
// ties, for determinism).
func (m *MW) Best() int {
	best, bw := 0, m.w[0]
	for i, w := range m.w {
		if w > bw {
			best, bw = i, w
		}
	}
	return best
}

// Blend returns the weight-averaged combination of per-expert values,
// e.g. blending several models' speedup predictions.
func (m *MW) Blend(values []float64) float64 {
	if len(values) != len(m.w) {
		panic("control: MW value vector length mismatch")
	}
	s := 0.0
	for i, v := range values {
		s += m.w[i] * v
	}
	return s
}

package control

// Integral is the classical control layer of the SEEC decision engine: a
// pole-placed integral controller on the speedup applied to the
// application. With the first-order model h(t) = b·s(t), the closed loop
//
//	s(t+1) = s(t) + (1 − pole)·e(t)/b̂,   e(t) = goal − h(t)
//
// places the closed-loop pole at `pole`: pole = 0 is deadbeat (converges
// in one step when b̂ is exact), values toward 1 trade convergence speed
// for robustness to estimation error. See Maggio et al. (CDC 2010) and
// the SEEC technical report.
type Integral struct {
	pole float64
	s    float64 // current control signal (speedup)
	min  float64 // actuator floor
	max  float64 // actuator ceiling
}

// NewIntegral builds a controller with the given pole in [0, 1) and
// control-signal saturation bounds 0 < min <= max.
func NewIntegral(pole, min, max float64) *Integral {
	if pole < 0 || pole >= 1 {
		panic("control: pole must be in [0, 1)")
	}
	if min <= 0 || max < min {
		panic("control: invalid saturation bounds")
	}
	return &Integral{pole: pole, s: min, min: min, max: max}
}

// Step computes the next speedup demand from the goal heart rate, the
// observed heart rate, and the current base-speed estimate. A
// non-positive estimate leaves the signal unchanged (no information).
// The signal saturates at the actuator bounds (anti-windup: the integral
// state is the clamped signal itself).
func (c *Integral) Step(goal, observed, baseEstimate float64) float64 {
	if baseEstimate <= 0 {
		return c.s
	}
	e := goal - observed
	c.s += (1 - c.pole) * e / baseEstimate
	if c.s < c.min {
		c.s = c.min
	}
	if c.s > c.max {
		c.s = c.max
	}
	return c.s
}

// Signal returns the current control signal.
func (c *Integral) Signal() float64 { return c.s }

// SetSignal forces the control signal (used when the runtime knows the
// platform was reconfigured externally).
func (c *Integral) SetSignal(s float64) {
	if s < c.min {
		s = c.min
	}
	if s > c.max {
		s = c.max
	}
	c.s = s
}

// SetBounds updates the saturation bounds, clamping the current signal
// into the new range.
func (c *Integral) SetBounds(min, max float64) {
	if min <= 0 || max < min {
		panic("control: invalid saturation bounds")
	}
	c.min, c.max = min, max
	c.SetSignal(c.s)
}

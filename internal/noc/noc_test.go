package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func mustMesh(t *testing.T, cfg Config) *Mesh {
	t.Helper()
	m, err := NewMesh(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshRejectsBadConfig(t *testing.T) {
	if _, err := NewMesh(Config{Width: 0, Height: 4, LinkBandwidth: 1}); err == nil {
		t.Fatal("zero width accepted")
	}
	cfg := DefaultConfig(4, 4)
	cfg.LinkBandwidth = 0
	if _, err := NewMesh(cfg); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestHopsIsManhattan(t *testing.T) {
	m := mustMesh(t, DefaultConfig(8, 8))
	if got := m.Hops(0, 63); got != 14 {
		t.Fatalf("Hops(corner,corner) = %d, want 14", got)
	}
	if got := m.Hops(9, 9); got != 0 {
		t.Fatalf("Hops(self) = %d, want 0", got)
	}
	if m.Hops(3, 4) != 1 {
		t.Fatal("adjacent hops wrong")
	}
}

func TestPathReachesDestinationProperty(t *testing.T) {
	m := mustMesh(t, DefaultConfig(6, 5))
	f := func(s, d uint8, yx bool) bool {
		src, dst := int(s)%30, int(d)%30
		if yx {
			m.SetRoute(src, dst, RouteYX)
		} else {
			m.SetRoute(src, dst, RouteXY)
		}
		hops := m.path(src, dst)
		if len(hops) != m.Hops(src, dst) {
			return false
		}
		// Walk the path and confirm it lands on dst.
		x, y := m.xy(src)
		for _, h := range hops {
			if h.node != m.node(x, y) {
				return false
			}
			switch h.dir {
			case East:
				x++
			case West:
				x--
			case North:
				y++
			case South:
				y--
			}
			if x < 0 || x >= 6 || y < 0 || y >= 5 {
				return false // left the mesh
			}
		}
		return m.node(x, y) == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestXYNeverTurnsFromYToX(t *testing.T) {
	// Dimension order is what makes XY deadlock-free: once a packet
	// moves in Y it must never turn back to X.
	m := mustMesh(t, DefaultConfig(8, 8))
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst += 5 {
			sawY := false
			for _, h := range m.path(src, dst) {
				if h.dir == North || h.dir == South {
					sawY = true
				} else if sawY {
					t.Fatalf("XY route %d→%d turned from Y back to X", src, dst)
				}
			}
		}
	}
}

func TestYXNeverTurnsFromXToY(t *testing.T) {
	m := mustMesh(t, DefaultConfig(8, 8))
	for src := 0; src < 64; src += 7 {
		for dst := 0; dst < 64; dst += 5 {
			m.SetRoute(src, dst, RouteYX)
			sawX := false
			for _, h := range m.path(src, dst) {
				if h.dir == East || h.dir == West {
					sawX = true
				} else if sawX {
					t.Fatalf("YX route %d→%d turned from X back to Y", src, dst)
				}
			}
		}
	}
}

func TestUnloadedLatencyIsPipelineDepth(t *testing.T) {
	m := mustMesh(t, DefaultConfig(8, 8))
	// 0 → 3: 3 straight hops, no EVC: 3 × (3 router + 1 link) = 12.
	if got := m.LatencyCycles(0, 3); got != 12 {
		t.Fatalf("latency = %g, want 12", got)
	}
	if got := m.LatencyCycles(5, 5); got != 0 {
		t.Fatalf("self latency = %g, want 0", got)
	}
}

func TestEVCReducesStraightLineLatency(t *testing.T) {
	base := mustMesh(t, DefaultConfig(8, 8))
	cfg := DefaultConfig(8, 8)
	cfg.EVC = true
	evc := mustMesh(t, cfg)
	// 7 straight hops: EVC bypasses 6 of them.
	withOut := base.LatencyCycles(0, 7)
	with := evc.LatencyCycles(0, 7)
	// 7×4 = 28 vs 4 + 6×2 = 16.
	if withOut != 28 || with != 16 {
		t.Fatalf("EVC latency %g vs %g, want 16 vs 28", with, withOut)
	}
	// Single hop: no bypass possible.
	if base.LatencyCycles(0, 1) != evc.LatencyCycles(0, 1) {
		t.Fatal("EVC changed single-hop latency")
	}
}

func TestEVCPaysFullPriceAtTurns(t *testing.T) {
	cfg := DefaultConfig(8, 8)
	cfg.EVC = true
	m := mustMesh(t, cfg)
	// 0 → 9 via XY: one East hop then one North hop (a turn): both pay
	// full router latency. 2×4 = 8.
	if got := m.LatencyCycles(0, 9); got != 8 {
		t.Fatalf("turning path latency = %g, want 8", got)
	}
}

func TestEVCReducesBufferEnergy(t *testing.T) {
	base := mustMesh(t, DefaultConfig(8, 8))
	cfg := DefaultConfig(8, 8)
	cfg.EVC = true
	evc := mustMesh(t, cfg)
	if evc.EnergyPJPerFlit(0, 7) >= base.EnergyPJPerFlit(0, 7) {
		t.Fatal("EVC did not reduce flit energy on a straight path")
	}
}

func TestQueueingDelayGrowsWithLoad(t *testing.T) {
	m := mustMesh(t, DefaultConfig(8, 8))
	idle := m.LatencyCycles(0, 7)
	if err := m.SetFlow(0, 7, 0.8); err != nil {
		t.Fatal(err)
	}
	loaded := m.LatencyCycles(0, 7)
	if loaded <= idle {
		t.Fatalf("loaded latency %g not above idle %g", loaded, idle)
	}
}

func TestSetFlowValidation(t *testing.T) {
	m := mustMesh(t, DefaultConfig(4, 4))
	if err := m.SetFlow(-1, 3, 0.1); err == nil {
		t.Fatal("negative src accepted")
	}
	if err := m.SetFlow(0, 99, 0.1); err == nil {
		t.Fatal("out-of-mesh dst accepted")
	}
	if err := m.SetFlow(0, 3, -0.5); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := m.SetFlow(0, 3, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetFlow(0, 3, 0); err != nil { // removal
		t.Fatal(err)
	}
	if m.MaxUtilization() != 0 {
		t.Fatal("flow removal left load behind")
	}
}

func TestBANShiftsCapacityTowardDemand(t *testing.T) {
	// Heavy eastbound flow on a single row: with BAN the east direction
	// borrows west-direction wires, cutting queueing delay.
	run := func(ban bool) float64 {
		cfg := DefaultConfig(8, 1)
		cfg.BAN = ban
		m := mustMesh(t, cfg)
		if err := m.SetFlow(0, 7, 0.9); err != nil {
			t.Fatal(err)
		}
		return m.LatencyCycles(0, 7)
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("BAN latency %g not below fixed-link latency %g under asymmetric load", with, without)
	}
}

func TestBANDoesNotStarveReverseDirection(t *testing.T) {
	cfg := DefaultConfig(8, 1)
	cfg.BAN = true
	m := mustMesh(t, cfg)
	if err := m.SetFlow(0, 7, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := m.SetFlow(7, 0, 0.05); err != nil {
		t.Fatal(err)
	}
	// The reverse flow must still make progress: share clamp >= 10%.
	rev := m.LatencyCycles(7, 0)
	if math.IsInf(rev, 0) || rev <= 0 {
		t.Fatalf("reverse latency = %g, want finite positive", rev)
	}
	m.recompute()
	for node := 0; node < 7; node++ {
		id := m.linkID(node+1, West)
		if m.capacity[id] < 0.2*cfg.LinkBandwidth-1e-12 {
			t.Fatalf("reverse link capacity %g below clamp", m.capacity[id])
		}
	}
}

func TestAORBalancesAdversarialPattern(t *testing.T) {
	// Column-convergence traffic: sources along row 0 all target
	// distinct rows of column 7. Under pure XY every flow funnels up
	// column 7; routing some flows YX spreads them across their own
	// columns and rows.
	m := mustMesh(t, DefaultConfig(8, 8))
	for i := 1; i < 7; i++ {
		if err := m.SetFlow(m.node(i, 0), m.node(7, i), 0.2); err != nil {
			t.Fatal(err)
		}
	}
	xyWorst := m.MaxUtilization()
	aorWorst := m.OptimizeAOR()
	if aorWorst >= xyWorst {
		t.Fatalf("AOR worst-link %g not below XY %g", aorWorst, xyWorst)
	}
	avg := m.AvgFlowLatency()
	m.ResetRoutes()
	if m.AvgFlowLatency() <= avg {
		t.Fatalf("AOR avg latency %g not below XY %g", avg, m.AvgFlowLatency())
	}
}

func TestAORKeepsDimensionOrderedPaths(t *testing.T) {
	// Whatever AOR chooses, every path must still be XY or YX (that is
	// what keeps routing deadlock-free across the two VC classes).
	m := mustMesh(t, DefaultConfig(6, 6))
	for i := 0; i < 36; i += 5 {
		for j := 1; j < 36; j += 7 {
			if err := m.SetFlow(i, j, 0.1); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.OptimizeAOR()
	m.forEachFlow(func(src, dst int, _ float64) {
		turns := 0
		for _, h := range m.path(src, dst) {
			if h.turn {
				turns++
			}
		}
		if turns > 1 {
			t.Fatalf("route %d→%d has %d turns; dimension-ordered routes turn at most once", src, dst, turns)
		}
	})
}

func TestAvgFlowLatencyWeighting(t *testing.T) {
	m := mustMesh(t, DefaultConfig(8, 1))
	if m.AvgFlowLatency() != 0 {
		t.Fatal("empty flow set should have zero average latency")
	}
	if err := m.SetFlow(0, 1, 0.1); err != nil { // 1 hop
		t.Fatal(err)
	}
	if err := m.SetFlow(0, 7, 0.1); err != nil { // 7 hops
		t.Fatal(err)
	}
	got := m.AvgFlowLatency()
	lo := m.LatencyCycles(0, 1)
	hi := m.LatencyCycles(0, 7)
	want := (lo + hi) / 2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("AvgFlowLatency = %g, want %g", got, want)
	}
}

func TestEnergyScalesWithDistanceProperty(t *testing.T) {
	m := mustMesh(t, DefaultConfig(8, 8))
	f := func(s, d uint8) bool {
		src, dst := int(s)%64, int(d)%64
		e := m.EnergyPJPerFlit(src, dst)
		if src == dst {
			return e == 0
		}
		perHop := m.cfg.BufferPJ + m.cfg.SwitchPJ + m.cfg.LinkPJ
		return math.Abs(e-float64(m.Hops(src, dst))*perHop) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClearFlows(t *testing.T) {
	m := mustMesh(t, DefaultConfig(4, 4))
	if err := m.SetFlow(0, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	m.ClearFlows()
	if m.MaxUtilization() != 0 {
		t.Fatal("ClearFlows left utilization behind")
	}
}

package noc

import "sort"

// OptimizeAOR recomputes the routing table for the current flow matrix,
// implementing application-aware oblivious routing [22] online: for each
// flow, in descending demand order, pick whichever of the two
// dimension-ordered paths (XY on VC0, YX on VC1 — the O1TURN split that
// keeps the network deadlock-free) minimizes the worst link load that
// the flow's own traffic sees. Two refinement passes let early (heavy)
// flows react to the placement of later ones.
//
// This is the "online routing computation by exposing the routing table
// to software" of §4.2.2: the SEEC runtime calls it when the application
// (and hence the flow matrix) changes.
//
// It returns the resulting worst-link utilization.
func (m *Mesh) OptimizeAOR() float64 {
	type flow struct {
		key  [2]int
		rate float64
	}
	flows := make([]flow, 0, len(m.flows))
	for k, r := range m.flows {
		if k[0] != k[1] {
			flows = append(flows, flow{k, r})
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].rate != flows[j].rate {
			return flows[i].rate > flows[j].rate
		}
		return flows[i].key[0]*m.n+flows[i].key[1] < flows[j].key[0]*m.n+flows[j].key[1]
	})

	// Work on a raw load vector: add/remove path loads incrementally.
	loads := make([]float64, len(m.loads))
	addPath := func(src, dst int, r Route, rate float64) {
		m.table[[2]int{src, dst}] = r
		for _, h := range m.path(src, dst) {
			loads[m.linkID(h.node, h.dir)] += rate
		}
	}
	removePath := func(src, dst int, rate float64) {
		for _, h := range m.path(src, dst) {
			loads[m.linkID(h.node, h.dir)] -= rate
		}
	}
	pathCost := func(src, dst int, r Route, rate float64) float64 {
		m.table[[2]int{src, dst}] = r
		worst := 0.0
		for _, h := range m.path(src, dst) {
			if l := loads[m.linkID(h.node, h.dir)] + rate; l > worst {
				worst = l
			}
		}
		return worst
	}

	// Initial greedy placement.
	for _, f := range flows {
		xy := pathCost(f.key[0], f.key[1], RouteXY, f.rate)
		yx := pathCost(f.key[0], f.key[1], RouteYX, f.rate)
		if yx < xy {
			addPath(f.key[0], f.key[1], RouteYX, f.rate)
		} else {
			addPath(f.key[0], f.key[1], RouteXY, f.rate)
		}
	}
	// Refinement pass: re-place each flow against the full residual load.
	for _, f := range flows {
		cur := m.RouteOf(f.key[0], f.key[1])
		removePath(f.key[0], f.key[1], f.rate)
		xy := pathCost(f.key[0], f.key[1], RouteXY, f.rate)
		yx := pathCost(f.key[0], f.key[1], RouteYX, f.rate)
		best := RouteXY
		if yx < xy {
			best = RouteYX
		} else if yx == xy {
			best = cur
		}
		addPath(f.key[0], f.key[1], best, f.rate)
	}
	m.fresh = false
	return m.MaxUtilization()
}

// ResetRoutes restores the default XY routing table.
func (m *Mesh) ResetRoutes() {
	m.table = make(map[[2]int]Route)
	m.fresh = false
}

package noc

import "sort"

// OptimizeAOR recomputes the routing table for the current flow matrix,
// implementing application-aware oblivious routing [22] online: for each
// flow, in descending demand order, pick whichever of the two
// dimension-ordered paths (XY on VC0, YX on VC1 — the O1TURN split that
// keeps the network deadlock-free) minimizes the worst link load that
// the flow's own traffic sees. Two refinement passes let early (heavy)
// flows react to the placement of later ones.
//
// This is the "online routing computation by exposing the routing table
// to software" of §4.2.2: the SEEC runtime calls it when the application
// (and hence the flow matrix) changes.
//
// It returns the resulting worst-link utilization.
func (m *Mesh) OptimizeAOR() float64 {
	type flow struct {
		src, dst int
		rate     float64
	}
	flows := make([]flow, 0, m.nflows)
	m.forEachFlow(func(src, dst int, rate float64) {
		flows = append(flows, flow{src, dst, rate})
	})
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].rate != flows[j].rate {
			return flows[i].rate > flows[j].rate
		}
		return flows[i].src*m.n+flows[i].dst < flows[j].src*m.n+flows[j].dst
	})

	// Work on a raw load vector: add/remove path loads incrementally.
	loads := make([]float64, len(m.loads))
	addPath := func(src, dst int, r Route, rate float64) {
		m.table[src*m.n+dst] = r
		for it := m.pathFrom(src, dst); it.next(); {
			loads[m.linkID(it.node, it.dir)] += rate
		}
	}
	removePath := func(src, dst int, rate float64) {
		for it := m.pathFrom(src, dst); it.next(); {
			loads[m.linkID(it.node, it.dir)] -= rate
		}
	}
	pathCost := func(src, dst int, r Route, rate float64) float64 {
		m.table[src*m.n+dst] = r
		worst := 0.0
		for it := m.pathFrom(src, dst); it.next(); {
			if l := loads[m.linkID(it.node, it.dir)] + rate; l > worst {
				worst = l
			}
		}
		return worst
	}

	// Initial greedy placement.
	for _, f := range flows {
		xy := pathCost(f.src, f.dst, RouteXY, f.rate)
		yx := pathCost(f.src, f.dst, RouteYX, f.rate)
		if yx < xy {
			addPath(f.src, f.dst, RouteYX, f.rate)
		} else {
			addPath(f.src, f.dst, RouteXY, f.rate)
		}
	}
	// Refinement pass: re-place each flow against the full residual load.
	for _, f := range flows {
		cur := m.RouteOf(f.src, f.dst)
		removePath(f.src, f.dst, f.rate)
		xy := pathCost(f.src, f.dst, RouteXY, f.rate)
		yx := pathCost(f.src, f.dst, RouteYX, f.rate)
		best := RouteXY
		if yx < xy {
			best = RouteYX
		} else if yx == xy {
			best = cur
		}
		addPath(f.src, f.dst, best, f.rate)
	}
	m.fresh = false
	m.invalidateLat()
	m.invalidateEnergy()
	return m.MaxUtilization()
}

// ResetRoutes restores the default XY routing table.
func (m *Mesh) ResetRoutes() {
	for i := range m.table {
		m.table[i] = RouteXY
	}
	m.fresh = false
	m.invalidateLat()
	m.invalidateEnergy()
}

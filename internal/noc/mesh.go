// Package noc models Angstrom's adaptive on-chip network (§4.2.2): a 2-D
// mesh with three software-exposed adaptations:
//
//   - EVC, express virtual channels [8]: flits moving straight through a
//     router bypass buffering and arbitration, cutting both latency and
//     buffer energy on non-turning hops;
//   - BAN, bandwidth-adaptive networks [9]: each pair of opposing
//     unidirectional links is backed by bidirectional wires whose
//     capacity a hardware allocator splits between the two directions,
//     with the split policy exposed to software;
//   - AOR, application-aware oblivious routing [22]: per-(source,
//     destination) routing-table entries choose between the two
//     deadlock-free dimension-ordered paths (XY or YX, kept on disjoint
//     virtual channels as in O1TURN) to minimize the worst link load for
//     the application's measured flow matrix. The routing table is
//     memory-mapped, so the SEEC runtime can recompute routes online.
//
// The model is flow-level: traffic is a matrix of long-running flows,
// link contention follows an M/M/1-style queueing approximation, and
// per-flit energy is accounted per pipeline stage. This is the right
// granularity for the chip simulator (which needs latencies and energies
// as functions of configuration), while the unit tests pin down the
// relative effects the paper's citations report.
//
// The routing table and flow matrix are dense n×n slices indexed by
// src*n+dst (the memory-mapped layout real hardware would use), and
// per-pair latencies and flit energies are memoized in tables that are
// invalidated wholesale on reconfiguration. A warmed mesh therefore
// answers LatencyCycles/EnergyPJPerFlit with two array loads and no
// allocation — the property the trace-driven simulator's hot loop
// depends on.
package noc

import (
	"fmt"
	"math"
)

// Direction of a link out of a router.
type Direction int

// The four mesh directions.
const (
	East Direction = iota
	West
	North
	South
	numDirs
)

// Route selects a dimension order for one (src, dst) pair.
type Route int

// The two deadlock-free dimension-ordered routes.
const (
	RouteXY Route = iota
	RouteYX
)

// Config describes the network hardware.
type Config struct {
	Width, Height int
	// RouterCycles is the full router pipeline latency per hop
	// (buffer write + arbitration + switch traversal).
	RouterCycles float64
	// LinkCycles is the wire traversal latency per hop.
	LinkCycles float64
	// EVC enables express-channel bypass on straight-through hops.
	EVC bool
	// EVCCycles is the bypassed router latency on express hops.
	EVCCycles float64
	// BAN enables the bandwidth allocator on bidirectional link pairs.
	BAN bool
	// LinkBandwidth is flits/cycle per unidirectional link (per
	// direction without BAN; a pair shares 2× this with BAN).
	LinkBandwidth float64
	// BufferPJ, SwitchPJ, LinkPJ are per-flit energies by stage.
	BufferPJ, SwitchPJ, LinkPJ float64
}

// DefaultConfig returns a w×h mesh with parameters typical of low-swing
// 32 nm NoCs (cf. [8]): 3-cycle routers, 1-cycle links, 1 flit/cycle.
func DefaultConfig(w, h int) Config {
	return Config{
		Width: w, Height: h,
		RouterCycles: 3, LinkCycles: 1,
		EVCCycles:     1,
		LinkBandwidth: 1,
		BufferPJ:      1.5, SwitchPJ: 1.0, LinkPJ: 2.0,
	}
}

// Mesh is the network instance: topology, routing table, registered
// flows and computed link loads.
type Mesh struct {
	cfg Config
	n   int

	table  []Route   // AOR routing table, n×n; default XY
	flows  []float64 // flow matrix, n×n, flits/cycle
	nflows int       // live (nonzero, src≠dst) entries in flows

	loads    []float64 // flits/cycle per directed link
	capacity []float64 // effective capacity per directed link
	fresh    bool      // loads/capacity up to date

	// Memoized per-pair results. An entry i is valid iff its epoch
	// matches the mesh's: invalidation is a single counter bump, never an
	// O(n²) clear. Latencies depend on routes + flows + capacities;
	// energies only on routes.
	lat      []float64
	latEpoch []uint32
	epoch    uint32

	energy   []float64
	engEpoch []uint32
	eEpoch   uint32
}

// NewMesh builds a mesh. Width and height must be positive.
func NewMesh(cfg Config) (*Mesh, error) {
	if cfg.Width < 1 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: bad mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkBandwidth <= 0 {
		return nil, fmt.Errorf("noc: non-positive link bandwidth")
	}
	n := cfg.Width * cfg.Height
	m := &Mesh{
		cfg:      cfg,
		n:        n,
		table:    make([]Route, n*n),
		flows:    make([]float64, n*n),
		lat:      make([]float64, n*n),
		latEpoch: make([]uint32, n*n),
		epoch:    1,
		energy:   make([]float64, n*n),
		engEpoch: make([]uint32, n*n),
		eEpoch:   1,
	}
	m.loads = make([]float64, n*int(numDirs))
	m.capacity = make([]float64, n*int(numDirs))
	return m, nil
}

// Nodes reports the node count.
func (m *Mesh) Nodes() int { return m.n }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

func (m *Mesh) xy(node int) (x, y int) { return node % m.cfg.Width, node / m.cfg.Width }

func (m *Mesh) node(x, y int) int { return y*m.cfg.Width + x }

// Hops is the Manhattan distance between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// linkID identifies the directed link leaving node in direction d.
func (m *Mesh) linkID(node int, d Direction) int { return node*int(numDirs) + int(d) }

// pairID maps a directed link to its undirected wire pair and tells
// which side it is.
func (m *Mesh) pair(node int, d Direction) (pairKey [3]int, side int) {
	x, y := m.xy(node)
	switch d {
	case East:
		return [3]int{x, y, 0}, 0
	case West:
		return [3]int{x - 1, y, 0}, 1
	case North:
		return [3]int{x, y, 1}, 0
	default: // South
		return [3]int{x, y - 1, 1}, 1
	}
}

// invalidateLat drops every memoized latency (flows, routes or
// capacities changed).
func (m *Mesh) invalidateLat() { m.epoch++ }

// invalidateEnergy drops every memoized flit energy (routes changed).
func (m *Mesh) invalidateEnergy() { m.eEpoch++ }

// SetRoute writes one routing-table entry (the software interface AOR
// exposes).
func (m *Mesh) SetRoute(src, dst int, r Route) {
	m.table[src*m.n+dst] = r
	m.fresh = false
	m.invalidateLat()
	m.invalidateEnergy()
}

// RouteOf reads the routing-table entry (default XY).
func (m *Mesh) RouteOf(src, dst int) Route {
	return m.table[src*m.n+dst]
}

// pathIter walks the dimension-ordered route for one (src, dst) pair hop
// by hop without allocating — the hot loops (latency memo fill, load
// accumulation, AOR placement) all drive it.
type pathIter struct {
	m            *Mesh
	x, y, dx, dy int
	xFirst       bool
	started      bool

	node int
	dir  Direction
	turn bool
}

// pathFrom positions an iterator at src heading for dst under the
// current routing table.
func (m *Mesh) pathFrom(src, dst int) pathIter {
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	return pathIter{
		m: m, x: sx, y: sy, dx: dx, dy: dy,
		xFirst: m.table[src*m.n+dst] == RouteXY,
	}
}

// next advances to the following hop, reporting false past the last.
func (it *pathIter) next() bool {
	var d Direction
	switch {
	case it.xFirst && it.x != it.dx, !it.xFirst && it.y == it.dy && it.x != it.dx:
		d = East
		if it.dx < it.x {
			d = West
		}
	case it.y != it.dy:
		d = North
		if it.dy < it.y {
			d = South
		}
	default:
		return false
	}
	it.node = it.m.node(it.x, it.y)
	it.turn = it.started && d != it.dir
	it.dir = d
	it.started = true
	switch d {
	case East:
		it.x++
	case West:
		it.x--
	case North:
		it.y++
	default:
		it.y--
	}
	return true
}

// hop is one step of a path (kept for tests and tooling; the hot paths
// use pathIter directly).
type hop struct {
	node int
	dir  Direction
	turn bool // direction differs from the previous hop's
}

// path expands the dimension-ordered route for (src, dst).
func (m *Mesh) path(src, dst int) []hop {
	hops := make([]hop, 0, m.Hops(src, dst))
	for it := m.pathFrom(src, dst); it.next(); {
		hops = append(hops, hop{node: it.node, dir: it.dir, turn: it.turn})
	}
	return hops
}

// SetFlow registers (or replaces) a flow's demand in flits/cycle.
// Zero removes the flow.
func (m *Mesh) SetFlow(src, dst int, rate float64) error {
	if src < 0 || src >= m.n || dst < 0 || dst >= m.n {
		return fmt.Errorf("noc: flow endpoints (%d,%d) outside mesh", src, dst)
	}
	if rate < 0 {
		return fmt.Errorf("noc: negative flow rate %g", rate)
	}
	k := src*m.n + dst
	if src != dst {
		switch {
		case m.flows[k] == 0 && rate > 0:
			m.nflows++
		case m.flows[k] > 0 && rate == 0:
			m.nflows--
		}
	}
	m.flows[k] = rate
	m.fresh = false
	m.invalidateLat()
	return nil
}

// ClearFlows drops all registered flows.
func (m *Mesh) ClearFlows() {
	for i := range m.flows {
		m.flows[i] = 0
	}
	m.nflows = 0
	m.fresh = false
	m.invalidateLat()
}

// forEachFlow visits every live flow (src ≠ dst, rate > 0) in row-major
// order.
func (m *Mesh) forEachFlow(fn func(src, dst int, rate float64)) {
	if m.nflows == 0 {
		return
	}
	for src := 0; src < m.n; src++ {
		row := m.flows[src*m.n : (src+1)*m.n]
		for dst, rate := range row {
			if rate > 0 && src != dst {
				fn(src, dst, rate)
			}
		}
	}
}

// recompute fills link loads and (BAN-aware) capacities.
func (m *Mesh) recompute() {
	if m.fresh {
		return
	}
	for i := range m.loads {
		m.loads[i] = 0
	}
	m.forEachFlow(func(src, dst int, rate float64) {
		for it := m.pathFrom(src, dst); it.next(); {
			m.loads[m.linkID(it.node, it.dir)] += rate
		}
	})
	// Capacity: fixed per direction, or BAN-split by demand.
	if !m.cfg.BAN {
		for i := range m.capacity {
			m.capacity[i] = m.cfg.LinkBandwidth
		}
	} else {
		type sides struct {
			load [2]float64
			link [2]int
		}
		pairs := make(map[[3]int]*sides)
		for node := 0; node < m.n; node++ {
			x, y := m.xy(node)
			for d := East; d < numDirs; d++ {
				// Skip links that leave the mesh.
				if (d == East && x == m.cfg.Width-1) || (d == West && x == 0) ||
					(d == North && y == m.cfg.Height-1) || (d == South && y == 0) {
					continue
				}
				key, side := m.pair(node, d)
				p, ok := pairs[key]
				if !ok {
					p = &sides{link: [2]int{-1, -1}}
					pairs[key] = p
				}
				id := m.linkID(node, d)
				p.load[side] = m.loads[id]
				p.link[side] = id
			}
		}
		for _, p := range pairs {
			total := p.load[0] + p.load[1]
			share0 := 0.5
			if total > 0 {
				share0 = clamp(p.load[0]/total, 0.1, 0.9)
			}
			if p.link[0] >= 0 {
				m.capacity[p.link[0]] = 2 * m.cfg.LinkBandwidth * share0
			}
			if p.link[1] >= 0 {
				m.capacity[p.link[1]] = 2 * m.cfg.LinkBandwidth * (1 - share0)
			}
		}
	}
	m.fresh = true
	m.invalidateLat()
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// utilization of a directed link (load / effective capacity), capped
// just below saturation for the queueing formula.
func (m *Mesh) utilization(id int) float64 {
	cap := m.capacity[id]
	if cap <= 0 {
		return 0.99
	}
	return math.Min(m.loads[id]/cap, 0.99)
}

// LatencyCycles is the end-to-end latency of one packet from src to dst
// under the current flows: per-hop pipeline (with EVC bypass on
// straight hops), link traversal, and M/M/1-style queueing delay on
// loaded links. It satisfies the cache.Network interface. Results are
// memoized per pair until the next reconfiguration, so the simulator's
// per-access calls cost two array loads.
func (m *Mesh) LatencyCycles(src, dst int) float64 {
	if src == dst {
		return 0
	}
	m.recompute()
	k := src*m.n + dst
	if m.latEpoch[k] == m.epoch {
		return m.lat[k]
	}
	total := 0.0
	first := true
	for it := m.pathFrom(src, dst); it.next(); {
		router := m.cfg.RouterCycles
		if m.cfg.EVC && !first && !it.turn {
			router = m.cfg.EVCCycles
		}
		first = false
		id := m.linkID(it.node, it.dir)
		util := m.utilization(id)
		queue := util / (1 - util) / m.capacity[id]
		total += router + m.cfg.LinkCycles + queue
	}
	m.lat[k] = total
	m.latEpoch[k] = m.epoch
	return total
}

// EnergyPJPerFlit is the per-flit transport energy from src to dst:
// every hop pays switch + link; hops that cannot bypass also pay buffer.
// Memoized per pair until the routing table changes.
func (m *Mesh) EnergyPJPerFlit(src, dst int) float64 {
	if src == dst {
		return 0
	}
	k := src*m.n + dst
	if m.engEpoch[k] == m.eEpoch {
		return m.energy[k]
	}
	total := 0.0
	first := true
	for it := m.pathFrom(src, dst); it.next(); {
		e := m.cfg.SwitchPJ + m.cfg.LinkPJ
		if !(m.cfg.EVC && !first && !it.turn) {
			e += m.cfg.BufferPJ
		}
		first = false
		total += e
	}
	m.energy[k] = total
	m.engEpoch[k] = m.eEpoch
	return total
}

// MaxUtilization reports the worst directed-link load/capacity ratio
// under the current flows — the quantity AOR minimizes. Unlike the
// queueing model, it is not capped: values above 1 mean an oversubscribed
// link.
func (m *Mesh) MaxUtilization() float64 {
	m.recompute()
	worst := 0.0
	for id := range m.loads {
		if m.loads[id] == 0 || m.capacity[id] <= 0 {
			continue
		}
		if u := m.loads[id] / m.capacity[id]; u > worst {
			worst = u
		}
	}
	return worst
}

// AvgFlowLatency is the demand-weighted mean packet latency across all
// registered flows.
func (m *Mesh) AvgFlowLatency() float64 {
	m.recompute()
	num, den := 0.0, 0.0
	m.forEachFlow(func(src, dst int, rate float64) {
		num += rate * m.LatencyCycles(src, dst)
		den += rate
	})
	if den == 0 {
		return 0
	}
	return num / den
}

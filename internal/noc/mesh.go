// Package noc models Angstrom's adaptive on-chip network (§4.2.2): a 2-D
// mesh with three software-exposed adaptations:
//
//   - EVC, express virtual channels [8]: flits moving straight through a
//     router bypass buffering and arbitration, cutting both latency and
//     buffer energy on non-turning hops;
//   - BAN, bandwidth-adaptive networks [9]: each pair of opposing
//     unidirectional links is backed by bidirectional wires whose
//     capacity a hardware allocator splits between the two directions,
//     with the split policy exposed to software;
//   - AOR, application-aware oblivious routing [22]: per-(source,
//     destination) routing-table entries choose between the two
//     deadlock-free dimension-ordered paths (XY or YX, kept on disjoint
//     virtual channels as in O1TURN) to minimize the worst link load for
//     the application's measured flow matrix. The routing table is
//     memory-mapped, so the SEEC runtime can recompute routes online.
//
// The model is flow-level: traffic is a matrix of long-running flows,
// link contention follows an M/M/1-style queueing approximation, and
// per-flit energy is accounted per pipeline stage. This is the right
// granularity for the chip simulator (which needs latencies and energies
// as functions of configuration), while the unit tests pin down the
// relative effects the paper's citations report.
package noc

import (
	"fmt"
	"math"
)

// Direction of a link out of a router.
type Direction int

// The four mesh directions.
const (
	East Direction = iota
	West
	North
	South
	numDirs
)

// Route selects a dimension order for one (src, dst) pair.
type Route int

// The two deadlock-free dimension-ordered routes.
const (
	RouteXY Route = iota
	RouteYX
)

// Config describes the network hardware.
type Config struct {
	Width, Height int
	// RouterCycles is the full router pipeline latency per hop
	// (buffer write + arbitration + switch traversal).
	RouterCycles float64
	// LinkCycles is the wire traversal latency per hop.
	LinkCycles float64
	// EVC enables express-channel bypass on straight-through hops.
	EVC bool
	// EVCCycles is the bypassed router latency on express hops.
	EVCCycles float64
	// BAN enables the bandwidth allocator on bidirectional link pairs.
	BAN bool
	// LinkBandwidth is flits/cycle per unidirectional link (per
	// direction without BAN; a pair shares 2× this with BAN).
	LinkBandwidth float64
	// BufferPJ, SwitchPJ, LinkPJ are per-flit energies by stage.
	BufferPJ, SwitchPJ, LinkPJ float64
}

// DefaultConfig returns a w×h mesh with parameters typical of low-swing
// 32 nm NoCs (cf. [8]): 3-cycle routers, 1-cycle links, 1 flit/cycle.
func DefaultConfig(w, h int) Config {
	return Config{
		Width: w, Height: h,
		RouterCycles: 3, LinkCycles: 1,
		EVCCycles:     1,
		LinkBandwidth: 1,
		BufferPJ:      1.5, SwitchPJ: 1.0, LinkPJ: 2.0,
	}
}

// Mesh is the network instance: topology, routing table, registered
// flows and computed link loads.
type Mesh struct {
	cfg   Config
	n     int
	table map[[2]int]Route // AOR routing table; default XY
	flows map[[2]int]float64

	loads    []float64 // flits/cycle per directed link
	capacity []float64 // effective capacity per directed link
	fresh    bool      // loads/capacity up to date
}

// NewMesh builds a mesh. Width and height must be positive.
func NewMesh(cfg Config) (*Mesh, error) {
	if cfg.Width < 1 || cfg.Height < 1 {
		return nil, fmt.Errorf("noc: bad mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.LinkBandwidth <= 0 {
		return nil, fmt.Errorf("noc: non-positive link bandwidth")
	}
	n := cfg.Width * cfg.Height
	m := &Mesh{
		cfg:   cfg,
		n:     n,
		table: make(map[[2]int]Route),
		flows: make(map[[2]int]float64),
	}
	m.loads = make([]float64, n*int(numDirs))
	m.capacity = make([]float64, n*int(numDirs))
	return m, nil
}

// Nodes reports the node count.
func (m *Mesh) Nodes() int { return m.n }

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

func (m *Mesh) xy(node int) (x, y int) { return node % m.cfg.Width, node / m.cfg.Width }

func (m *Mesh) node(x, y int) int { return y*m.cfg.Width + x }

// Hops is the Manhattan distance between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// linkID identifies the directed link leaving node in direction d.
func (m *Mesh) linkID(node int, d Direction) int { return node*int(numDirs) + int(d) }

// pairID maps a directed link to its undirected wire pair and tells
// which side it is.
func (m *Mesh) pair(node int, d Direction) (pairKey [3]int, side int) {
	x, y := m.xy(node)
	switch d {
	case East:
		return [3]int{x, y, 0}, 0
	case West:
		return [3]int{x - 1, y, 0}, 1
	case North:
		return [3]int{x, y, 1}, 0
	default: // South
		return [3]int{x, y - 1, 1}, 1
	}
}

// SetRoute writes one routing-table entry (the software interface AOR
// exposes).
func (m *Mesh) SetRoute(src, dst int, r Route) {
	m.table[[2]int{src, dst}] = r
	m.fresh = false
}

// RouteOf reads the routing-table entry (default XY).
func (m *Mesh) RouteOf(src, dst int) Route {
	return m.table[[2]int{src, dst}]
}

// hop is one step of a path.
type hop struct {
	node int
	dir  Direction
	turn bool // direction differs from the previous hop's
}

// path expands the dimension-ordered route for (src, dst).
func (m *Mesh) path(src, dst int) []hop {
	sx, sy := m.xy(src)
	dx, dy := m.xy(dst)
	var hops []hop
	walkX := func(x, y int) int {
		for x != dx {
			d := East
			step := 1
			if dx < x {
				d = West
				step = -1
			}
			hops = append(hops, hop{node: m.node(x, y), dir: d})
			x += step
		}
		return x
	}
	walkY := func(x, y int) int {
		for y != dy {
			d := North
			step := 1
			if dy < y {
				d = South
				step = -1
			}
			hops = append(hops, hop{node: m.node(x, y), dir: d})
			y += step
		}
		return y
	}
	if m.RouteOf(src, dst) == RouteXY {
		x := walkX(sx, sy)
		walkY(x, sy)
	} else {
		y := walkY(sx, sy)
		walkX(sx, y)
	}
	for i := 1; i < len(hops); i++ {
		hops[i].turn = hops[i].dir != hops[i-1].dir
	}
	return hops
}

// SetFlow registers (or replaces) a flow's demand in flits/cycle.
// Zero removes the flow.
func (m *Mesh) SetFlow(src, dst int, rate float64) error {
	if src < 0 || src >= m.n || dst < 0 || dst >= m.n {
		return fmt.Errorf("noc: flow endpoints (%d,%d) outside mesh", src, dst)
	}
	if rate < 0 {
		return fmt.Errorf("noc: negative flow rate %g", rate)
	}
	k := [2]int{src, dst}
	if rate == 0 {
		delete(m.flows, k)
	} else {
		m.flows[k] = rate
	}
	m.fresh = false
	return nil
}

// ClearFlows drops all registered flows.
func (m *Mesh) ClearFlows() {
	m.flows = make(map[[2]int]float64)
	m.fresh = false
}

// recompute fills link loads and (BAN-aware) capacities.
func (m *Mesh) recompute() {
	if m.fresh {
		return
	}
	for i := range m.loads {
		m.loads[i] = 0
	}
	for k, rate := range m.flows {
		if k[0] == k[1] {
			continue
		}
		for _, h := range m.path(k[0], k[1]) {
			m.loads[m.linkID(h.node, h.dir)] += rate
		}
	}
	// Capacity: fixed per direction, or BAN-split by demand.
	if !m.cfg.BAN {
		for i := range m.capacity {
			m.capacity[i] = m.cfg.LinkBandwidth
		}
	} else {
		type sides struct {
			load [2]float64
			link [2]int
		}
		pairs := make(map[[3]int]*sides)
		for node := 0; node < m.n; node++ {
			x, y := m.xy(node)
			for d := East; d < numDirs; d++ {
				// Skip links that leave the mesh.
				if (d == East && x == m.cfg.Width-1) || (d == West && x == 0) ||
					(d == North && y == m.cfg.Height-1) || (d == South && y == 0) {
					continue
				}
				key, side := m.pair(node, d)
				p, ok := pairs[key]
				if !ok {
					p = &sides{link: [2]int{-1, -1}}
					pairs[key] = p
				}
				id := m.linkID(node, d)
				p.load[side] = m.loads[id]
				p.link[side] = id
			}
		}
		for _, p := range pairs {
			total := p.load[0] + p.load[1]
			share0 := 0.5
			if total > 0 {
				share0 = clamp(p.load[0]/total, 0.1, 0.9)
			}
			if p.link[0] >= 0 {
				m.capacity[p.link[0]] = 2 * m.cfg.LinkBandwidth * share0
			}
			if p.link[1] >= 0 {
				m.capacity[p.link[1]] = 2 * m.cfg.LinkBandwidth * (1 - share0)
			}
		}
	}
	m.fresh = true
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// utilization of a directed link (load / effective capacity), capped
// just below saturation for the queueing formula.
func (m *Mesh) utilization(id int) float64 {
	cap := m.capacity[id]
	if cap <= 0 {
		return 0.99
	}
	return math.Min(m.loads[id]/cap, 0.99)
}

// LatencyCycles is the end-to-end latency of one packet from src to dst
// under the current flows: per-hop pipeline (with EVC bypass on
// straight hops), link traversal, and M/M/1-style queueing delay on
// loaded links. It satisfies the cache.Network interface.
func (m *Mesh) LatencyCycles(src, dst int) float64 {
	if src == dst {
		return 0
	}
	m.recompute()
	total := 0.0
	hops := m.path(src, dst)
	for i, h := range hops {
		router := m.cfg.RouterCycles
		if m.cfg.EVC && i > 0 && !h.turn {
			router = m.cfg.EVCCycles
		}
		id := m.linkID(h.node, h.dir)
		util := m.utilization(id)
		queue := util / (1 - util) / m.capacity[id]
		total += router + m.cfg.LinkCycles + queue
	}
	return total
}

// EnergyPJPerFlit is the per-flit transport energy from src to dst:
// every hop pays switch + link; hops that cannot bypass also pay buffer.
func (m *Mesh) EnergyPJPerFlit(src, dst int) float64 {
	if src == dst {
		return 0
	}
	total := 0.0
	for i, h := range m.path(src, dst) {
		e := m.cfg.SwitchPJ + m.cfg.LinkPJ
		if !(m.cfg.EVC && i > 0 && !h.turn) {
			e += m.cfg.BufferPJ
		}
		total += e
	}
	return total
}

// MaxUtilization reports the worst directed-link load/capacity ratio
// under the current flows — the quantity AOR minimizes. Unlike the
// queueing model, it is not capped: values above 1 mean an oversubscribed
// link.
func (m *Mesh) MaxUtilization() float64 {
	m.recompute()
	worst := 0.0
	for id := range m.loads {
		if m.loads[id] == 0 || m.capacity[id] <= 0 {
			continue
		}
		if u := m.loads[id] / m.capacity[id]; u > worst {
			worst = u
		}
	}
	return worst
}

// AvgFlowLatency is the demand-weighted mean packet latency across all
// registered flows.
func (m *Mesh) AvgFlowLatency() float64 {
	m.recompute()
	num, den := 0.0, 0.0
	for k, rate := range m.flows {
		num += rate * m.LatencyCycles(k[0], k[1])
		den += rate
	}
	if den == 0 {
		return 0
	}
	return num / den
}

package workload

import "fmt"

// The five benchmarks of §5.1. Parameters encode the published scaling
// character of each SPLASH-2 code (Woo et al., ISCA 1995; the Graphite
// and ARCc papers) rather than any single measured machine:
//
//   - barnes: N-body; near-perfect scaling, small shared tree, moderate
//     private body data, little communication. The paper's example of an
//     application that profitably consumes all 256 cores.
//   - ocean (non-contiguous): grid solver; streams a very large
//     partitioned working set, memory- and bandwidth-bound, heavy
//     nearest-neighbour communication, abrupt per-timestep phases.
//   - raytrace: irregular task-parallel; large shared scene, very uneven
//     work per ray (strong phases and noise), scaling limited by load
//     imbalance.
//   - water (spatial): molecular dynamics; small working set, compute
//     bound, mild phases, scales well but not perfectly.
//   - volrend: volume renderer; modest parallel fraction and the worst
//     scaling of the five, bursty frames.
func Specs() []Spec {
	return []Spec{
		{
			Name:         "barnes",
			ParallelFrac: 0.9995, SyncOverhead: 0.0002,
			MemOpsPerInstr: 0.15,
			SharedWSKB:     96, PrivateWSKB: 2048,
			MissFloor: 0.004, ZipfS: 0.7,
			FlitsPerKiloInstr: 4,
			InstrPerBeat:      2e6,
			PhaseAmp:          0.2, PhasePeriodBeats: 150000,
			PhaseShapeKind: PhaseSine, NoiseStd: 0.05,
		},
		{
			Name:         "ocean",
			ParallelFrac: 0.995, SyncOverhead: 0.001,
			MemOpsPerInstr: 0.30,
			SharedWSKB:     64, PrivateWSKB: 12288,
			MissFloor: 0.015, ZipfS: 0.3,
			FlitsPerKiloInstr: 12,
			InstrPerBeat:      3e6,
			PhaseAmp:          0.3, PhasePeriodBeats: 8000,
			PhaseShapeKind: PhaseSquare, NoiseStd: 0.08,
		},
		{
			Name:         "raytrace",
			ParallelFrac: 0.998, SyncOverhead: 0.003,
			MemOpsPerInstr: 0.20,
			SharedWSKB:     512, PrivateWSKB: 256,
			MissFloor: 0.006, ZipfS: 0.9,
			FlitsPerKiloInstr: 6,
			InstrPerBeat:      1.5e6,
			PhaseAmp:          0.3, PhasePeriodBeats: 150000,
			PhaseShapeKind: PhaseSquare, NoiseStd: 0.15,
		},
		{
			Name:         "water",
			ParallelFrac: 0.992, SyncOverhead: 0.0015,
			MemOpsPerInstr: 0.12,
			SharedWSKB:     48, PrivateWSKB: 384,
			MissFloor: 0.003, ZipfS: 0.8,
			FlitsPerKiloInstr: 3,
			InstrPerBeat:      2.5e6,
			PhaseAmp:          0.15, PhasePeriodBeats: 120000,
			PhaseShapeKind: PhaseSine, NoiseStd: 0.04,
		},
		{
			Name:         "volrend",
			ParallelFrac: 0.97, SyncOverhead: 0.004,
			MemOpsPerInstr: 0.18,
			SharedWSKB:     256, PrivateWSKB: 192,
			MissFloor: 0.005, ZipfS: 1.0,
			FlitsPerKiloInstr: 5,
			InstrPerBeat:      1e6,
			PhaseAmp:          0.35, PhasePeriodBeats: 200000,
			PhaseShapeKind: PhaseSquare, NoiseStd: 0.12,
		},
	}
}

// ByName looks up one of the five benchmarks.
func ByName(name string) (Spec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names lists the benchmark names in canonical (paper) order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

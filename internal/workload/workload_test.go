package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestFiveBenchmarksInPaperOrder(t *testing.T) {
	want := []string{"barnes", "ocean", "raytrace", "water", "volrend"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("ocean")
	if err != nil || s.Name != "ocean" {
		t.Fatalf("ByName(ocean) = %v, %v", s.Name, err)
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("ByName(doom) did not error")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	base, _ := ByName("water")
	cases := map[string]func(*Spec){
		"empty name":    func(s *Spec) { s.Name = "" },
		"bad parallel":  func(s *Spec) { s.ParallelFrac = 1.5 },
		"neg sync":      func(s *Spec) { s.SyncOverhead = -1 },
		"bad memops":    func(s *Spec) { s.MemOpsPerInstr = 2 },
		"bad floor":     func(s *Spec) { s.MissFloor = 1 },
		"neg zipf":      func(s *Spec) { s.ZipfS = -1 },
		"neg ws":        func(s *Spec) { s.PrivateWSKB = -4 },
		"bad beat work": func(s *Spec) { s.InstrPerBeat = 0 },
		"bad amp":       func(s *Spec) { s.PhaseAmp = 1 },
		"bad period":    func(s *Spec) { s.PhasePeriodBeats = 0 },
		"neg noise":     func(s *Spec) { s.NoiseStd = -0.1 },
		"nan parallel":  func(s *Spec) { s.ParallelFrac = math.NaN() },
		"nan work":      func(s *Spec) { s.InstrPerBeat = math.NaN() },
		"nan noise":     func(s *Spec) { s.NoiseStd = math.NaN() },
		"inf period":    func(s *Spec) { s.PhasePeriodBeats = math.Inf(1) },
		"inf ws":        func(s *Spec) { s.PrivateWSKB = math.Inf(1) },
		"neg inf sync":  func(s *Spec) { s.SyncOverhead = math.Inf(-1) },
	}
	for name, mut := range cases {
		s := base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
		}
	}
}

func TestParallelSpeedupMonotoneUpToScalingLimit(t *testing.T) {
	barnes, _ := ByName("barnes")
	prev := 0.0
	for c := 1; c <= 256; c *= 2 {
		s := barnes.ParallelSpeedup(c)
		if s <= prev {
			t.Fatalf("barnes speedup not increasing at %d cores: %g <= %g", c, s, prev)
		}
		prev = s
	}
}

func TestParallelSpeedupBounds(t *testing.T) {
	f := func(c uint8) bool {
		cores := int(c)%256 + 1
		for _, s := range Specs() {
			sp := s.ParallelSpeedup(cores)
			if sp < 0.5 || sp > float64(cores) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarnesScalesBestVolrendWorst(t *testing.T) {
	barnes, _ := ByName("barnes")
	volrend, _ := ByName("volrend")
	if barnes.ParallelSpeedup(256) <= volrend.ParallelSpeedup(256) {
		t.Fatalf("barnes(256)=%g should scale past volrend(256)=%g",
			barnes.ParallelSpeedup(256), volrend.ParallelSpeedup(256))
	}
	// volrend must saturate well below 256.
	if volrend.ParallelSpeedup(256) > 40 {
		t.Fatalf("volrend speedup at 256 cores = %g, want saturation (< 40)",
			volrend.ParallelSpeedup(256))
	}
	// barnes must scale meaningfully from 64 to 256 cores (Figure 4's
	// in-text claim depends on it).
	ratio := barnes.ParallelSpeedup(256) / barnes.ParallelSpeedup(64)
	if ratio < 1.8 {
		t.Fatalf("barnes 256/64-core speedup ratio = %g, want >= 1.8", ratio)
	}
}

func TestMissRateDecreasesWithCache(t *testing.T) {
	// Strictly decreasing until the cache covers the working set, then
	// saturated at the floor.
	for _, s := range Specs() {
		prev := 1.1
		for _, kb := range []float64{16, 32, 64, 128, 256} {
			m := s.MissRate(kb, 16)
			saturated := kb >= s.EffectiveWSKB(16)
			if saturated {
				if m > prev {
					t.Fatalf("%s: miss rate rose at %g KB", s.Name, kb)
				}
			} else if m >= prev {
				t.Fatalf("%s: miss rate not decreasing at %g KB (%g >= %g)", s.Name, kb, m, prev)
			}
			if m < s.MissFloor {
				t.Fatalf("%s: miss rate %g below floor %g", s.Name, m, s.MissFloor)
			}
			prev = m
		}
	}
}

func TestMissRateSaturatesAtFloorWhenCovered(t *testing.T) {
	water, _ := ByName("water")
	ws := water.EffectiveWSKB(16)
	if got := water.MissRate(ws*2, 16); got != water.MissFloor {
		t.Fatalf("covered working set: miss = %g, want floor %g", got, water.MissFloor)
	}
}

func TestAggregateMissRateBelowPrivateForSharedFootprint(t *testing.T) {
	// A NUCA cache of the same total capacity sees the unpartitioned
	// footprint once instead of replicating it per core.
	ocean, _ := ByName("ocean")
	private := ocean.MissRate(64, 256)
	aggregate := ocean.AggregateMissRate(64 * 256)
	if aggregate >= private {
		t.Fatalf("aggregate miss %g not below private %g", aggregate, private)
	}
}

func TestMissRateDecreasesWithCores(t *testing.T) {
	// More cores → smaller per-core slice of the private data → fewer
	// capacity misses at equal cache size.
	ocean, _ := ByName("ocean")
	if ocean.MissRate(64, 256) >= ocean.MissRate(64, 1) {
		t.Fatal("ocean per-core miss rate should fall as cores divide the working set")
	}
}

func TestMissRateBoundsProperty(t *testing.T) {
	f := func(kb uint16, cores uint8) bool {
		c := int(cores)%256 + 1
		cache := float64(kb%512) + 1
		for _, s := range Specs() {
			m := s.MissRate(cache, c)
			if m < 0 || m > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissRateZeroCache(t *testing.T) {
	barnes, _ := ByName("barnes")
	if got := barnes.MissRate(0, 1); got != 1 {
		t.Fatalf("MissRate(0) = %g, want 1", got)
	}
}

func TestOceanMoreMemoryBoundThanWater(t *testing.T) {
	ocean, _ := ByName("ocean")
	water, _ := ByName("water")
	if ocean.MissRate(64, 64)*ocean.MemOpsPerInstr <= water.MissRate(64, 64)*water.MemOpsPerInstr {
		t.Fatal("ocean must generate more memory traffic per instruction than water")
	}
}

func TestWorkAtMeanIsOne(t *testing.T) {
	for _, s := range Specs() {
		sum := 0.0
		n := uint64(10 * s.PhasePeriodBeats)
		for i := uint64(0); i < n; i++ {
			sum += s.WorkAt(i)
		}
		mean := sum / float64(n)
		if math.Abs(mean-1) > 0.02 {
			t.Errorf("%s: phase signal mean = %g, want ~1", s.Name, mean)
		}
	}
}

func TestWorkAtAmplitudeRespected(t *testing.T) {
	for _, s := range Specs() {
		for i := uint64(0); i < uint64(4*s.PhasePeriodBeats); i++ {
			w := s.WorkAt(i)
			if w < 1-s.PhaseAmp-1e-9 || w > 1+s.PhaseAmp+1e-9 {
				t.Fatalf("%s: WorkAt(%d) = %g outside 1±%g", s.Name, i, w, s.PhaseAmp)
			}
		}
	}
}

func TestSquareWaveIsBimodal(t *testing.T) {
	ray, _ := ByName("raytrace")
	seen := map[float64]bool{}
	for i := uint64(0); i < uint64(2*ray.PhasePeriodBeats); i++ {
		seen[ray.WorkAt(i)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("square wave produced %d distinct levels, want 2", len(seen))
	}
}

func TestInstanceDeterministic(t *testing.T) {
	spec, _ := ByName("raytrace")
	a := NewInstance(spec, 42)
	b := NewInstance(spec, 42)
	for n := uint64(0); n < 100; n++ {
		if a.WorkForBeat(n) != b.WorkForBeat(n) {
			t.Fatalf("instances with same seed diverged at beat %d", n)
		}
	}
	c := NewInstance(spec, 43)
	same := 0
	for n := uint64(0); n < 100; n++ {
		if a.WorkForBeat(n) == c.WorkForBeat(n) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestWorkForBeatPositiveProperty(t *testing.T) {
	spec, _ := ByName("volrend")
	f := func(seed uint64, n uint16) bool {
		in := NewInstance(spec, seed)
		return in.WorkForBeat(uint64(n)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceGenAddressPartitioning(t *testing.T) {
	spec, _ := ByName("barnes")
	const cores = 4
	gens := make([]*TraceGen, cores)
	for i := range gens {
		gens[i] = NewTraceGen(spec, cores, i, 7)
	}
	privSeen := make([]map[uint64]bool, cores)
	for i := range privSeen {
		privSeen[i] = make(map[uint64]bool)
	}
	sharedCount := 0
	for i, g := range gens {
		for n := 0; n < 20000; n++ {
			line, _ := g.Next()
			if g.IsShared(line) {
				sharedCount++
			} else {
				privSeen[i][line] = true
			}
		}
	}
	if sharedCount == 0 {
		t.Fatal("no shared accesses generated")
	}
	// Private regions must be disjoint across cores.
	for i := 0; i < cores; i++ {
		for j := i + 1; j < cores; j++ {
			for line := range privSeen[i] {
				if privSeen[j][line] {
					t.Fatalf("line %d appears in private regions of cores %d and %d", line, i, j)
				}
			}
		}
	}
}

func TestTraceGenLocalitySkew(t *testing.T) {
	spec, _ := ByName("volrend") // highest Zipf skew
	g := NewTraceGen(spec, 1, 0, 3)
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		line, _ := g.Next()
		counts[line]++
	}
	// The hottest line must be dramatically hotter than the median.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < n/1000 {
		t.Fatalf("hottest line has %d/%d accesses; expected strong locality", maxC, n)
	}
}

func TestTraceGenWriteFraction(t *testing.T) {
	spec, _ := ByName("water")
	g := NewTraceGen(spec, 2, 0, 11)
	writes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, w := g.Next(); w {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("write fraction = %g, want ~0.3", frac)
	}
}

// Package workload provides the synthetic SPLASH-2-like benchmarks used
// throughout the evaluation (§5.1): barnes, ocean (non-contiguous),
// raytrace, water (spatial) and volrend.
//
// Real SPLASH-2 binaries cannot run inside this reproduction, but they do
// not need to: SEEC observes only heart rates, power, and counters, so
// any workload with the right *response surface* — how performance and
// power react to cores, cache, clock and network — exercises the same
// code paths. Each Spec captures the published scaling character of its
// namesake (parallel fraction, synchronization overhead, working set and
// locality, memory and communication intensity) plus a phase signal that
// makes work-per-heartbeat vary over time, which is what separates the
// dynamic oracle from the static oracle in Figure 3.
package workload

import (
	"fmt"
	"math"
	"sync"

	"angstrom/internal/sim"
)

// PhaseShape selects the waveform of the work-per-heartbeat signal.
type PhaseShape int

const (
	// PhaseSine is a smooth periodic load variation.
	PhaseSine PhaseShape = iota
	// PhaseSquare alternates abruptly between light and heavy phases
	// (e.g. raytrace moving between empty and dense screen regions).
	PhaseSquare
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name string

	// --- Parallel scaling ---
	// ParallelFrac is the Amdahl parallel fraction.
	ParallelFrac float64
	// SyncOverhead is the per-doubling synchronization cost: the serial
	// equivalent added per log2(cores), as a fraction of unit work.
	SyncOverhead float64

	// --- Memory behaviour ---
	// MemOpsPerInstr is the fraction of instructions accessing memory.
	MemOpsPerInstr float64
	// SharedWSKB is the working-set footprint replicated on every core.
	SharedWSKB float64
	// PrivateWSKB is the aggregate partitionable footprint (divides
	// across cores).
	PrivateWSKB float64
	// MissFloor is the asymptotic miss rate with an infinite cache
	// (compulsory + coherence misses).
	MissFloor float64
	// ZipfS is the temporal-locality skew of the address stream: it
	// drives both the detailed (trace-driven) simulator's generator and
	// the analytic miss curve, so the two modes share one theory.
	ZipfS float64

	// --- Communication ---
	// FlitsPerKiloInstr is on-chip traffic beyond cache misses
	// (synchronization, data exchange), in flits per 1000 instructions.
	FlitsPerKiloInstr float64

	// --- Heartbeat structure ---
	// InstrPerBeat is the nominal work per heartbeat, in instructions.
	InstrPerBeat float64
	// PhaseAmp is the relative amplitude of the phase signal (0–1).
	PhaseAmp float64
	// PhasePeriodBeats is the phase cycle length, in beats.
	PhasePeriodBeats float64
	// PhaseShapeKind selects the waveform.
	PhaseShapeKind PhaseShape
	// NoiseStd is the relative per-beat noise on work.
	NoiseStd float64
}

// Validate reports whether the spec's parameters are physically sensible.
// NaN and infinite parameters are rejected up front: NaN compares false
// against every bound below, so without this guard a NaN field would
// sail through the range checks and poison every downstream curve.
func (s Spec) Validate() error {
	for _, v := range []float64{
		s.ParallelFrac, s.SyncOverhead, s.MemOpsPerInstr, s.SharedWSKB,
		s.PrivateWSKB, s.MissFloor, s.ZipfS, s.FlitsPerKiloInstr,
		s.InstrPerBeat, s.PhaseAmp, s.PhasePeriodBeats, s.NoiseStd,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("workload %s: non-finite parameter %g", s.Name, v)
		}
	}
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.ParallelFrac <= 0 || s.ParallelFrac > 1:
		return fmt.Errorf("workload %s: parallel fraction %g outside (0,1]", s.Name, s.ParallelFrac)
	case s.SyncOverhead < 0:
		return fmt.Errorf("workload %s: negative sync overhead", s.Name)
	case s.MemOpsPerInstr < 0 || s.MemOpsPerInstr > 1:
		return fmt.Errorf("workload %s: memory intensity %g outside [0,1]", s.Name, s.MemOpsPerInstr)
	case s.MissFloor < 0 || s.MissFloor >= 1:
		return fmt.Errorf("workload %s: miss floor %g outside [0,1)", s.Name, s.MissFloor)
	case s.ZipfS < 0:
		return fmt.Errorf("workload %s: negative locality skew", s.Name)
	case s.SharedWSKB < 0 || s.PrivateWSKB < 0:
		return fmt.Errorf("workload %s: negative working set", s.Name)
	case s.InstrPerBeat <= 0:
		return fmt.Errorf("workload %s: non-positive work per beat", s.Name)
	case s.PhaseAmp < 0 || s.PhaseAmp >= 1:
		return fmt.Errorf("workload %s: phase amplitude %g outside [0,1)", s.Name, s.PhaseAmp)
	case s.PhasePeriodBeats <= 0:
		return fmt.Errorf("workload %s: non-positive phase period", s.Name)
	case s.NoiseStd < 0:
		return fmt.Errorf("workload %s: negative noise", s.Name)
	}
	return nil
}

// ParallelSpeedup is the ideal (memory-free) speedup on c cores:
// Amdahl's law plus a logarithmic synchronization term.
func (s Spec) ParallelSpeedup(c int) float64 {
	if c <= 1 {
		return 1
	}
	cf := float64(c)
	t := (1 - s.ParallelFrac) + s.ParallelFrac/cf + s.SyncOverhead*math.Log2(cf)
	return 1 / t
}

// speedupTables memoizes CachedSpeedup tables. The curve depends only
// on (ParallelFrac, SyncOverhead, size), so a fleet of thousands of
// applications enrolled over the same few specs shares a handful of
// tables instead of re-evaluating Amdahl + log2 per (app, unit count).
var speedupTables sync.Map // speedupKey -> []float64

type speedupKey struct {
	parallelFrac float64
	syncOverhead float64
	size         int
}

// CachedSpeedup returns ParallelSpeedup as a closure backed by a shared
// memoized table covering 1..size cores (larger counts fall through to
// the direct evaluation). Fleet-scale consumers — the serving daemon
// enrolls one scaling curve per application, and the manager's demand
// inversion probes it every decision period — read array slots instead
// of recomputing the transcendentals each call.
func (s Spec) CachedSpeedup(size int) func(int) float64 {
	if size < 1 {
		size = 1
	}
	key := speedupKey{s.ParallelFrac, s.SyncOverhead, size}
	v, ok := speedupTables.Load(key)
	if !ok {
		table := make([]float64, size+1)
		for c := 1; c <= size; c++ {
			table[c] = s.ParallelSpeedup(c)
		}
		v, _ = speedupTables.LoadOrStore(key, table)
	}
	table := v.([]float64)
	return func(c int) float64 {
		if c >= 1 && c < len(table) {
			return table[c]
		}
		return s.ParallelSpeedup(c)
	}
}

// EffectiveWSKB is the per-core working-set footprint on c cores: the
// shared footprint plus the core's slice of the partitionable data.
func (s Spec) EffectiveWSKB(c int) float64 {
	if c < 1 {
		c = 1
	}
	return s.SharedWSKB + s.PrivateWSKB/float64(c)
}

// MissRate is the analytic L2 miss-rate model, derived from the same
// Zipf reference model the trace generator samples: with skew s over W
// working-set lines, the hottest C lines carry ≈ (C/W)^(1−s) of the
// accesses, so a cache holding them misses the rest. A cache covering
// the whole working set misses only the floor (compulsory + coherence).
// The detailed simulator replaces this curve with real caches; the two
// agree because they instantiate the same reference model.
func (s Spec) MissRate(cacheKB float64, cores int) float64 {
	return missCurve(cacheKB, s.EffectiveWSKB(cores), s.ZipfS, s.MissFloor)
}

// AggregateMissRate is the same curve for a chip-wide shared (NUCA)
// cache of capacityKB against the full, unpartitioned footprint.
func (s Spec) AggregateMissRate(capacityKB float64) float64 {
	return missCurve(capacityKB, s.SharedWSKB+s.PrivateWSKB, s.ZipfS, s.MissFloor)
}

func missCurve(cacheKB, wsKB, zipfS, floor float64) float64 {
	if cacheKB <= 0 {
		return 1
	}
	x := cacheKB / wsKB
	if x > 1 {
		x = 1
	}
	// Exponent floor keeps very skewed streams (s near 1) from degener-
	// ating to "any cache captures everything".
	exp := math.Max(1-zipfS, 0.05)
	capacity := 1 - math.Pow(x, exp)
	return floor + (1-floor)*capacity
}

// WorkAt returns the deterministic (noise-free) work multiplier of the
// phase signal at beat n: mean 1, varying by ±PhaseAmp.
func (s Spec) WorkAt(n uint64) float64 {
	phase := 2 * math.Pi * float64(n) / s.PhasePeriodBeats
	switch s.PhaseShapeKind {
	case PhaseSquare:
		if math.Sin(phase) >= 0 {
			return 1 + s.PhaseAmp
		}
		return 1 - s.PhaseAmp
	default:
		return 1 + s.PhaseAmp*math.Sin(phase)
	}
}

// Instance is a running copy of a benchmark: the spec plus deterministic
// per-beat noise. Two instances built with the same seed produce
// identical work sequences, which is what lets the dynamic oracle be
// computed by post-processing the very same run (§5.2).
type Instance struct {
	Spec
	seed uint64
}

// NewInstance creates a run of the benchmark with the given noise seed.
func NewInstance(spec Spec, seed uint64) *Instance {
	return &Instance{Spec: spec, seed: seed}
}

// WorkForBeat returns the instructions the application must execute to
// emit beat n. Deterministic in (seed, n).
func (in *Instance) WorkForBeat(n uint64) float64 {
	w := in.Spec.InstrPerBeat * in.Spec.WorkAt(n)
	if in.NoiseStd > 0 {
		// Per-beat RNG keyed by (seed, n) so lookups are random access.
		r := sim.NewRNG(in.seed ^ (n+1)*0x9e3779b97f4a7c15)
		w *= math.Max(0.05, 1+r.Norm(0, in.NoiseStd))
	}
	return w
}

// MeanWorkPerBeat returns the long-run mean instructions per beat
// (≈ InstrPerBeat; the phase signal has mean 1).
func (in *Instance) MeanWorkPerBeat() float64 { return in.Spec.InstrPerBeat }

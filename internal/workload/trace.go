package workload

import (
	"sync"

	"angstrom/internal/sim"
)

// TraceGen produces the synthetic per-core address stream that drives
// the detailed (trace-driven) cache and coherence simulation. Addresses
// are cache-line granular and split between:
//
//   - a shared region (the spec's SharedWSKB), identical on all cores —
//     this is what coherence protocols fight over; and
//   - a private region (the core's 1/c slice of PrivateWSKB).
//
// Within each region, lines are drawn from a Zipf distribution with the
// spec's locality skew, giving a realistic stack-distance profile: a
// hotter head that fits small caches and a long tail that only large
// caches capture.
type TraceGen struct {
	rng         *sim.RNG
	sharedLines int
	privLines   int
	sharedFrac  float64
	sharedZipf  *sim.Zipf
	privZipf    *sim.Zipf
	privBase    uint64
	writeFrac   float64
}

// LineBytes is the cache-line size used throughout the simulators.
const LineBytes = 64

// sharedBase is the line address where the shared region starts; private
// regions are placed above it, per core.
const sharedBase = 0

// NewTraceGen builds the address generator for one core of a c-core run.
func NewTraceGen(spec Spec, cores, coreID int, seed uint64) *TraceGen {
	if cores < 1 {
		cores = 1
	}
	sharedLines := int(spec.SharedWSKB * 1024 / LineBytes)
	if sharedLines < 1 {
		sharedLines = 1
	}
	privLines := int(spec.PrivateWSKB * 1024 / float64(cores) / LineBytes)
	if privLines < 1 {
		privLines = 1
	}
	total := spec.SharedWSKB + spec.PrivateWSKB/float64(cores)
	rng := sim.NewRNG(seed).Split(uint64(coreID))
	g := &TraceGen{
		rng:         rng,
		sharedLines: sharedLines,
		privLines:   privLines,
		sharedFrac:  spec.SharedWSKB / total,
		writeFrac:   0.3,
	}
	g.sharedZipf = sim.NewZipfFromCDF(rng.Split(1), zipfTable(sharedLines, spec.ZipfS))
	g.privZipf = sim.NewZipfFromCDF(rng.Split(2), zipfTable(privLines, spec.ZipfS))
	// Private regions are disjoint across cores and from the shared one.
	g.privBase = uint64(sharedLines) + uint64(coreID)*uint64(privLines)
	return g
}

// Next returns the next access: a line address and whether it writes.
func (g *TraceGen) Next() (line uint64, write bool) {
	write = g.rng.Float64() < g.writeFrac
	if g.rng.Float64() < g.sharedFrac {
		return sharedBase + uint64(g.sharedZipf.Draw()), write
	}
	return g.privBase + uint64(g.privZipf.Draw()), write
}

// zipfCache memoizes Zipf CDF tables by (lines, skew). Every core of a
// c-core trace draws from the same two distributions, and a sweep
// re-visits the same handful of (lines, skew) pairs for every
// configuration, so sharing the tables removes the dominant cost of
// trace-generator construction. The tables are immutable once built;
// sync.Map keeps concurrent sweep workers safe, and a duplicated
// computation under a race is identical, so determinism is unaffected.
var zipfCache sync.Map // zipfKey -> []float64

type zipfKey struct {
	n int
	s float64
}

func zipfTable(n int, s float64) []float64 {
	k := zipfKey{n: n, s: s}
	if t, ok := zipfCache.Load(k); ok {
		return t.([]float64)
	}
	t, _ := zipfCache.LoadOrStore(k, sim.ZipfCDF(n, s))
	return t.([]float64)
}

// SharedLines reports the size of the shared region in lines.
func (g *TraceGen) SharedLines() int { return g.sharedLines }

// IsShared reports whether a line address falls in the shared region.
func (g *TraceGen) IsShared(line uint64) bool {
	return line < uint64(g.sharedLines)
}

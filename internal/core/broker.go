package core

import "sort"

// Broker is the federation layer's global arbiter: one level above the
// per-chip Managers, it splits a fleet-wide resource budget (core
// units, watts) across chips by each chip's aggregate corrected need —
// the same water-filling idea the Managers apply per application,
// lifted one level. The hierarchy keeps every Step incremental: the
// broker only moves each Manager's budget; demand caches, sort orders,
// and quiescence state inside the Managers survive untouched.
//
// Determinism contract: both splits are pure functions of their
// arguments, use index order for every tie-break, and allocate nothing
// in steady state — the per-chip budgets they produce feed journaled
// tick state, so replay must reproduce them bit for bit.
type Broker struct {
	out     []int
	floors  []int
	excess  []float64
	outW    []float64
	rank    []int
	demands []float64
}

// NewBroker builds an empty broker; scratch grows to the chip count.
func NewBroker() *Broker { return &Broker{} }

// SplitUnits divides `total` resource units across the per-chip
// managers by last tick's aggregate demand (Manager.AggregateDemand).
// Every non-empty manager is floored first — at its app count when the
// fleet is space-shared (each app keeps >= 1 unit), at one unit when
// oversubscribed — then the surplus is split proportionally to demand
// beyond the floor with largest-remainder rounding. Units no chip
// demands stay unallocated, mirroring Manager.partition. The returned
// slice is valid until the next call.
func (b *Broker) SplitUnits(total int, mgrs []*Manager) []int {
	n := len(mgrs)
	b.out = resizeInts(b.out, n)
	if n == 1 {
		// Single chip: the broker is the identity, bit for bit.
		b.out[0] = total
		return b.out
	}
	b.floors = resizeInts(b.floors, n)
	b.excess = resizeF(b.excess, n)
	b.demands = resizeF(b.demands, n)

	floorSum := 0
	for i, m := range mgrs {
		f := 0
		if apps := m.Apps(); apps > 0 {
			if m.Oversubscribed() {
				f = 1
			} else {
				f = apps
			}
			if f > total-floorSum {
				f = total - floorSum // admission should prevent this; never go negative
			}
		}
		b.floors[i] = f
		floorSum += f
		b.demands[i] = m.AggregateDemand()
	}

	surplus := total - floorSum
	var excessSum float64
	for i := range mgrs {
		e := b.demands[i] - float64(b.floors[i])
		if e < 0 || b.floors[i] == 0 {
			e = 0 // empty chips and chips already satisfied claim no surplus
		}
		b.excess[i] = e
		excessSum += e
	}
	for i := range b.out {
		b.out[i] = b.floors[i]
	}
	if surplus <= 0 || excessSum <= 0 {
		return b.out
	}

	// Largest-remainder apportionment of the surplus, ties by chip
	// index: integral, exact, and deterministic.
	granted := 0
	b.rank = b.rank[:0]
	for i := range b.excess {
		exact := float64(surplus) * b.excess[i] / excessSum
		whole := int(exact)
		b.out[i] += whole
		granted += whole
		b.excess[i] = exact - float64(whole) // reuse as the remainder key
		if b.excess[i] > 0 {
			b.rank = append(b.rank, i)
		}
	}
	sort.Slice(b.rank, func(x, y int) bool {
		if b.excess[b.rank[x]] != b.excess[b.rank[y]] {
			return b.excess[b.rank[x]] > b.excess[b.rank[y]]
		}
		return b.rank[x] < b.rank[y]
	})
	for _, i := range b.rank {
		if granted >= surplus {
			break
		}
		b.out[i]++
		granted++
	}
	return b.out
}

// SplitWatts divides an available power budget across chips: each chip
// is floored at `floor[i]` (the watts its apps need just to idle at
// their minimum operating points), then the remainder is granted
// toward each chip's full need proportionally to need beyond the
// floor, iterating so watts a satisfied chip cannot use flow to the
// others — the float water-fill counterpart of SplitUnits. The
// returned slice is valid until the next call.
func (b *Broker) SplitWatts(avail float64, need, floor []float64) []float64 {
	n := len(need)
	b.outW = resizeF(b.outW, n)
	if n == 1 {
		b.outW[0] = avail
		return b.outW
	}
	var floorSum float64
	for i := range b.outW {
		b.outW[i] = floor[i]
		floorSum += floor[i]
	}
	remaining := avail - floorSum
	if remaining <= 0 {
		return b.outW
	}
	// A few passes reach the fixed point: chips whose need is met drop
	// out and their unused grant is re-split over the rest.
	for iter := 0; iter < 4 && remaining > 1e-12; iter++ {
		var wantSum float64
		for i := range b.outW {
			if w := need[i] - b.outW[i]; w > 0 {
				wantSum += w
			}
		}
		if wantSum <= 0 {
			break
		}
		grant := remaining
		for i := range b.outW {
			w := need[i] - b.outW[i]
			if w <= 0 {
				continue
			}
			g := grant * w / wantSum
			if g > w {
				g = w
			}
			b.outW[i] += g
			remaining -= g
		}
	}
	return b.outW
}

func resizeInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func resizeF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

package core

import (
	"math"
	"testing"

	"angstrom/internal/sim"
)

func TestSetPriorityValidation(t *testing.T) {
	clock := sim.NewClock(0)
	mgr, _ := NewManager(clock, 4)
	h := newManagedHarness(t, 4, []float64{1}, []func(int) float64{linear})
	_ = mgr
	if w, ok := h.mgr.Priority("a"); !ok || w != 1 {
		t.Fatalf("default priority = (%g, %v), want (1, true)", w, ok)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := h.mgr.SetPriority("a", bad); err == nil {
			t.Errorf("SetPriority(%g) accepted", bad)
		}
	}
	if err := h.mgr.SetPriority("ghost", 2); err == nil {
		t.Fatal("SetPriority on unknown app accepted")
	}
	if err := h.mgr.SetPriority("a", 4); err != nil {
		t.Fatal(err)
	}
	if w, ok := h.mgr.Priority("a"); !ok || w != 4 {
		t.Fatalf("Priority = (%g, %v), want (4, true)", w, ok)
	}
	if _, ok := h.mgr.Priority("ghost"); ok {
		t.Fatal("Priority reported an unknown app")
	}
}

// Two identical apps both demanding the whole pool: with weights 3:1 the
// water-fill must split the contended units 3:1 instead of evenly.
func TestPriorityWeightsScarcePool(t *testing.T) {
	h := newManagedHarness(t, 8, []float64{1, 1}, []func(int) float64{linear, linear})
	for _, mon := range h.mons {
		mon.SetPerformanceGoal(100, 0) // unreachable: demand saturates at the pool
	}
	h.run(5)
	h.step(t)
	h.run(5)
	even := append([]Allocation(nil), h.step(t)...)
	if even[0].Units != 4 || even[1].Units != 4 {
		t.Fatalf("unweighted split = %d:%d, want 4:4", even[0].Units, even[1].Units)
	}
	if err := h.mgr.SetPriority("a", 3); err != nil {
		t.Fatal(err)
	}
	h.run(5)
	weighted := h.step(t)
	if weighted[0].Units != 6 || weighted[1].Units != 2 {
		t.Fatalf("3:1-weighted split = %d:%d, want 6:2", weighted[0].Units, weighted[1].Units)
	}
}

// Oversubscribed counterpart: four apps time-sharing two units, all
// wanting a full core-equivalent. The weight-3 app claims its whole
// weighted fair share; the rest split the remainder evenly.
func TestPriorityWeightsOversubscribed(t *testing.T) {
	h := newManagedHarness(t, 2, []float64{1, 1, 1, 1},
		[]func(int) float64{linear, linear, linear, linear}, withOversubscription())
	for _, mon := range h.mons {
		mon.SetPerformanceGoal(50, 0)
	}
	h.run(5)
	h.step(t)
	if err := h.mgr.SetPriority("a", 3); err != nil {
		t.Fatal(err)
	}
	h.run(5)
	got := h.step(t)
	if got[0].Share < 0.99 {
		t.Fatalf("weight-3 app share = %g, want ~1 (its weighted fair share)", got[0].Share)
	}
	for i := 1; i < 4; i++ {
		if math.Abs(got[i].Share-1.0/3) > 1e-9 {
			t.Fatalf("weight-1 app %d share = %g, want 1/3 of the remainder", i, got[i].Share)
		}
	}
}

// Demands that fit are served exactly regardless of weight: priority
// buys a larger slice of a contended pool, not idle cores.
func TestPriorityDoesNotInflateFittingDemand(t *testing.T) {
	h := newManagedHarness(t, 16, []float64{1, 1}, []func(int) float64{linear, linear})
	h.mons[0].SetPerformanceGoal(3, 0)
	h.mons[1].SetPerformanceGoal(3, 0)
	if err := h.mgr.SetPriority("a", 8); err != nil {
		t.Fatal(err)
	}
	h.run(5)
	h.step(t)
	h.run(5)
	got := h.step(t)
	if got[0].Units != got[1].Units {
		t.Fatalf("fitting demands diverged under weight: %d vs %d", got[0].Units, got[1].Units)
	}
	if got[0].Units > 4 {
		t.Fatalf("weight-8 app granted %d units for a ~3-unit demand", got[0].Units)
	}
}

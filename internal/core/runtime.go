// Package core implements the SEEC runtime decision system — the paper's
// primary contribution. SEEC closes an *open* observe-decide-act loop
// (Figure 1): applications state goals through the Application Heartbeats
// API (internal/heartbeat), system components at every layer register
// actions through the actuator interface (internal/actuator), and this
// runtime decides, every decision period, how to use the registered
// actions to meet the goals at minimum cost.
//
// The decision engine is layered exactly as §3.3 describes:
//
//  1. a classical control system (control.Integral) turns the heart-rate
//     error into a speedup demand;
//  2. an adaptive layer (control.Kalman for the workload's base speed,
//     an RLS corrector for actuator models whose observed behaviour
//     diverges from their declared multipliers);
//  3. a machine-learning layer (control.MW) that matches applications the
//     runtime has never seen to prior behaviour profiles.
//
// The speedup demand is translated to a minimum-power schedule over the
// discrete configuration space (control.Translator), possibly
// time-multiplexing two configurations inside one decision period.
package core

import (
	"errors"
	"fmt"
	"math"

	"angstrom/internal/actuator"
	"angstrom/internal/control"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Prior is a candidate behaviour profile for the machine-learning layer:
// the base heart rate a known application class sustains at speedup 1.
type Prior struct {
	Name     string
	BaseRate float64
}

// Options tune the runtime. The zero value of each field selects the
// documented default.
type Options struct {
	// Pole of the classical controller in [0, 1). Default 0.4: fast but
	// robust to the Kalman estimate lagging a phase change.
	Pole float64
	// KalmanQ and KalmanR are the process/measurement noise covariances
	// of the base-speed filter. Defaults 0.05 and 1.
	KalmanQ, KalmanR float64
	// DisableModelCorrection turns off the RLS actuator-model corrector
	// (used by ablation benches).
	DisableModelCorrection bool
	// CorrectionForgetting is the RLS forgetting factor (default 0.995).
	CorrectionForgetting float64
	// Priors, if non-empty, enables the machine-learning layer for
	// applications the runtime has no experience with.
	Priors []Prior
	// PriorRounds is how many decisions blend the prior models before
	// trusting the Kalman filter alone (default 8).
	PriorRounds int
}

func (o *Options) fill() {
	if o.Pole == 0 {
		o.Pole = 0.4
	}
	if o.KalmanQ == 0 {
		o.KalmanQ = 0.05
	}
	if o.KalmanR == 0 {
		o.KalmanR = 1
	}
	if o.CorrectionForgetting == 0 {
		o.CorrectionForgetting = 0.995
	}
	if o.PriorRounds == 0 {
		o.PriorRounds = 8
	}
}

// Decision is one output of the decide phase: the schedule the runtime
// wants executed during the next decision period.
type Decision struct {
	Time          sim.Time
	Goal          float64 // target heart rate (beats/s)
	Observed      float64 // windowed heart rate at decision time
	BaseEstimate  float64 // b̂: heart rate at speedup 1
	TargetSpeedup float64 // controller demand
	Schedule      control.Schedule

	// LoCfg/HiCfg are the concrete configurations behind the schedule;
	// run HiCfg for HiFrac of the period, LoCfg for the rest.
	LoCfg, HiCfg actuator.Config
	HiFrac       float64
	// PredictedPower is the schedule's power multiplier under the
	// (corrected) actuator models.
	PredictedPower float64
}

// Slice is one contiguous piece of an executed decision.
type Slice struct {
	Cfg      actuator.Config
	Duration float64
}

// Slices splits a decision period into the at-most-two slices the
// schedule requires, low-power slice first (SEEC runs the cheap
// configuration first so a truncated period errs toward saving power).
func (d Decision) Slices(period float64) []Slice {
	if d.HiFrac >= 1 || d.LoCfg.Equal(d.HiCfg) {
		return []Slice{{Cfg: d.HiCfg, Duration: period}}
	}
	if d.HiFrac <= 0 {
		return []Slice{{Cfg: d.LoCfg, Duration: period}}
	}
	return []Slice{
		{Cfg: d.LoCfg, Duration: period * (1 - d.HiFrac)},
		{Cfg: d.HiCfg, Duration: period * d.HiFrac},
	}
}

// Runtime is the SEEC runtime for one application.
type Runtime struct {
	app   string
	mon   *heartbeat.Monitor
	space *actuator.Space
	clock sim.Nower
	opts  Options

	points []actuator.Point // materialized space, index = Candidate.ID
	kf     *control.Kalman
	ctl    *control.Integral
	tr     *control.Translator
	corr   *corrector

	mw       *control.MW
	mwRounds int

	last      Decision
	hasLast   bool
	decisions int

	prevBeats uint64
	prevTime  sim.Time

	// Goal constraints (see powercap.go): zero means unconstrained.
	powerCap        float64
	distortionBound float64
}

// New builds a runtime for app, observing mon and acting on space. The
// application must have declared a performance goal before the first
// Step (the paper's experiments all use performance goals with power as
// the cost to minimize).
func New(app string, clock sim.Nower, mon *heartbeat.Monitor, space *actuator.Space, opts Options) (*Runtime, error) {
	if mon == nil || space == nil || clock == nil {
		return nil, errors.New("core: nil monitor, space or clock")
	}
	opts.fill()
	if opts.Pole < 0 || opts.Pole >= 1 {
		return nil, fmt.Errorf("core: pole %g outside [0, 1)", opts.Pole)
	}
	r := &Runtime{
		app:   app,
		mon:   mon,
		space: space,
		clock: clock,
		opts:  opts,
		kf:    control.NewKalman(opts.KalmanQ, opts.KalmanR),
	}
	r.points = space.Points()
	minS, maxS := math.Inf(1), math.Inf(-1)
	for _, p := range r.points {
		minS = math.Min(minS, p.Effect.Speedup)
		maxS = math.Max(maxS, p.Effect.Speedup)
	}
	r.ctl = control.NewIntegral(opts.Pole, minS, maxS)
	if !opts.DisableModelCorrection {
		r.corr = newCorrector(space, opts.CorrectionForgetting)
	}
	var err error
	r.tr, err = control.NewTranslator(r.candidates())
	if err != nil {
		return nil, err
	}
	if len(opts.Priors) > 0 {
		r.mw = control.NewMW(len(opts.Priors), 2)
		r.mwRounds = opts.PriorRounds
	}
	return r, nil
}

// App returns the controlled application's name.
func (r *Runtime) App() string { return r.app }

// MarkIdle advances the observation interval without deciding. A
// serving loop that holds an application's standing decision through a
// quiescent period (no new beats) calls this instead of Step each
// skipped tick. Two artifacts are avoided: stepping would feed the
// integral controller a zero rate (an artifact of the idle interval,
// not of the application) and wind it up toward maximum speedup; and
// NOT advancing the interval would dilute the first post-idle
// measurement over the whole gap, corrupting the Kalman base estimate
// on resume. With the interval resynced every skipped tick, the wake-up
// Step measures exactly the period in which beats reappeared.
func (r *Runtime) MarkIdle() { r.prevTime = r.clock.Now() }

// candidates maps the materialized space through the model corrector.
func (r *Runtime) candidates() []control.Candidate {
	out := make([]control.Candidate, len(r.points))
	for i, p := range r.points {
		sp, pw := p.Effect.Speedup, p.Effect.PowerX
		if r.corr != nil {
			sp = r.corr.correctedSpeedup(p.Cfg, sp)
		}
		out[i] = control.Candidate{ID: i, Speedup: sp, Power: pw}
	}
	return out
}

// Step runs one observe-decide iteration and returns the decision. The
// caller (the act phase) executes the decision's slices over the next
// decision period, then calls Step again.
func (r *Runtime) Step() (Decision, error) {
	goals := r.mon.Goals()
	if goals.Performance == nil {
		return Decision{}, fmt.Errorf("core: application %q declared no performance goal", r.app)
	}
	goal := goals.Performance.Target()
	obs := r.mon.Observe()
	now := r.clock.Now()

	// The controlled variable is the heart rate over the *whole* elapsed
	// decision interval, not the monitor's trailing window: a
	// time-multiplexed interval ends in its high slice, and a trailing
	// window would see only that slice and bias the controller.
	observedRate := obs.WindowRate
	if r.hasLast && now > r.prevTime {
		observedRate = float64(obs.Beats-r.prevBeats) / (now - r.prevTime)
	}
	r.prevBeats = obs.Beats
	r.prevTime = now

	// --- Observe: fold the last interval's measurement into the layers.
	applied := 1.0
	if r.hasLast {
		applied = r.last.Schedule.AvgSpeedup()
	}
	var base float64
	if obs.Beats >= 2 && observedRate > 0 {
		base = r.kf.Update(observedRate, applied)
		if r.corr != nil && r.hasLast {
			r.corr.observe(r.last, observedRate)
			if r.corr.dirty() {
				if err := r.tr.Rebuild(r.constrainedCandidates()); err != nil {
					return Decision{}, err
				}
			}
		}
		if r.mw != nil && r.decisions < r.mwRounds {
			base = r.blendPriors(observedRate, applied, base)
		}
	} else {
		// No signal yet: bootstrap from priors if present.
		base = r.kf.Estimate()
		if base == 0 && r.mw != nil {
			preds := make([]float64, len(r.opts.Priors))
			for i, p := range r.opts.Priors {
				preds[i] = p.BaseRate
			}
			base = r.mw.Blend(preds)
		}
	}

	// --- Decide: classical controller + translator.
	target := r.ctl.Step(goal, observedRate, base)
	sch := r.tr.Translate(target)
	d := Decision{
		Time:           now,
		Goal:           goal,
		Observed:       observedRate,
		BaseEstimate:   base,
		TargetSpeedup:  target,
		Schedule:       sch,
		LoCfg:          r.points[sch.Lo.ID].Cfg.Clone(),
		HiCfg:          r.points[sch.Hi.ID].Cfg.Clone(),
		HiFrac:         sch.HiFrac,
		PredictedPower: sch.AvgPower(),
	}
	r.last = d
	r.hasLast = true
	r.decisions++
	return d, nil
}

// blendPriors scores each prior model against the new measurement and
// returns the MW-weighted blend of prior predictions and the Kalman
// estimate. Losses are normalized relative prediction errors.
func (r *Runtime) blendPriors(h, applied, kalman float64) float64 {
	measured := h / applied
	losses := make([]float64, len(r.opts.Priors))
	preds := make([]float64, len(r.opts.Priors))
	for i, p := range r.opts.Priors {
		preds[i] = p.BaseRate
		denom := math.Max(measured, 1e-9)
		losses[i] = math.Min(math.Abs(p.BaseRate-measured)/denom, 1)
	}
	r.mw.Update(losses)
	blend := r.mw.Blend(preds)
	// Weight shifts from the prior blend to the Kalman estimate as
	// evidence accumulates.
	alpha := float64(r.decisions+1) / float64(r.mwRounds+1)
	return alpha*kalman + (1-alpha)*blend
}

// Apply executes cfg on the actuators (the act phase entry point used by
// drivers that do not time-multiplex).
func (r *Runtime) Apply(cfg actuator.Config) error { return r.space.Apply(cfg) }

// RequiredPowerX reports the smallest declared power multiplier among
// configurations whose (RLS-corrected) speedup reaches `speedup` — the
// headroom a power cap must leave for the speedup to stay attainable
// under the runtime's current model. If no configuration reaches it,
// the cheapest configuration of the highest corrected speedup tier is
// returned. Callers (power budget arbiters) re-evaluate it as the
// correction layer learns, so the answer tracks observed behaviour
// rather than the designer-declared model.
func (r *Runtime) RequiredPowerX(speedup float64) float64 {
	cands := r.candidates()
	best := math.Inf(1)
	fallbackS, fallbackX := math.Inf(-1), 1.0
	for _, c := range cands {
		x := r.points[c.ID].Effect.PowerX
		if c.Speedup > fallbackS || (c.Speedup == fallbackS && x < fallbackX) {
			fallbackS, fallbackX = c.Speedup, x
		}
		if c.Speedup >= speedup && x < best {
			best = x
		}
	}
	if math.IsInf(best, 1) {
		return fallbackX
	}
	return best
}

// Space exposes the runtime's action space (read-mostly; used by
// experiment drivers).
func (r *Runtime) Space() *actuator.Space { return r.space }

// BaseEstimate reports the current base-speed estimate.
func (r *Runtime) BaseEstimate() float64 { return r.kf.Estimate() }

// Decisions reports how many Steps have completed.
func (r *Runtime) Decisions() int { return r.decisions }

// PriorWeights exposes the ML layer's current distribution (nil if the
// layer is disabled); used in tests and reports.
func (r *Runtime) PriorWeights() []float64 {
	if r.mw == nil {
		return nil
	}
	return r.mw.Weights()
}

package core

import (
	"math"
	"testing"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// testPlatform is a closed-loop harness: a synthetic application whose
// true heart rate is base(t) × trueSpeedup(cfg), beating into a monitor
// as the clock advances. True speedups may deviate from the declared
// actuator models to exercise the adaptive layer.
type testPlatform struct {
	clock *sim.Clock
	mon   *heartbeat.Monitor
	space *actuator.Space
	base  func(t sim.Time) float64
	// trueSpeedup overrides the declared model; nil means "declared is true".
	trueSpeedup func(cfg actuator.Config) float64

	powerIntegral float64 // ∫ power multiplier dt, for cost comparisons
	elapsed       float64
}

func (p *testPlatform) speedup(cfg actuator.Config) float64 {
	if p.trueSpeedup != nil {
		return p.trueSpeedup(cfg)
	}
	return p.space.Effect(cfg).Speedup
}

// run executes d's slices over one period, emitting beats.
func (p *testPlatform) run(d Decision, period float64) {
	for _, sl := range d.Slices(period) {
		rate := p.base(p.clock.Now()) * p.speedup(sl.Cfg)
		end := p.clock.Now() + sl.Duration
		p.powerIntegral += p.space.Effect(sl.Cfg).PowerX * sl.Duration
		p.elapsed += sl.Duration
		for p.clock.Now() < end {
			p.clock.Advance(1 / rate)
			p.mon.Beat()
		}
	}
}

func (p *testPlatform) meanPower() float64 { return p.powerIntegral / p.elapsed }

// twoKnobSpace builds a cores-like knob (speedups 1,2,4 / power 1,2.2,5)
// and a frequency-like knob (speedups 1,1.5 / power 1,1.9).
func twoKnobSpace(t *testing.T) *actuator.Space {
	t.Helper()
	cores := &actuator.Actuator{
		Name: "cores",
		Settings: []actuator.Setting{
			{Label: "1", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "2", Effect: actuator.Effect{Speedup: 2, PowerX: 2.2, Distort: 1}},
			{Label: "4", Effect: actuator.Effect{Speedup: 4, PowerX: 5, Distort: 1}},
		},
		Apply: func(int) error { return nil },
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	freq := &actuator.Actuator{
		Name: "freq",
		Settings: []actuator.Setting{
			{Label: "slow", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "fast", Effect: actuator.Effect{Speedup: 1.5, PowerX: 1.9, Distort: 1}},
		},
		Apply: func(int) error { return nil },
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	s, err := actuator.NewSpace(cores, freq)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newHarness(t *testing.T, base func(sim.Time) float64) (*testPlatform, *Runtime) {
	t.Helper()
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	space := twoKnobSpace(t)
	p := &testPlatform{clock: clock, mon: mon, space: space, base: base}
	rt, err := New("app", clock, mon, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, rt
}

func TestRuntimeRequiresPerformanceGoal(t *testing.T) {
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	_ = p
	if _, err := rt.Step(); err == nil {
		t.Fatal("Step without a performance goal did not error")
	}
}

func TestRuntimeRejectsNilInputs(t *testing.T) {
	clock := sim.NewClock(0)
	if _, err := New("x", clock, nil, nil, Options{}); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestRuntimeRejectsBadPole(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	space := twoKnobSpace(t)
	if _, err := New("x", clock, mon, space, Options{Pole: -0.5}); err == nil {
		t.Fatal("negative pole accepted")
	}
}

func TestRuntimeConvergesToGoal(t *testing.T) {
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(28, 32) // target 30, needs speedup 3
	const period = 1.0
	for i := 0; i < 50; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, period)
	}
	// Measure the interval-average rate over the last 10 periods (the
	// trailing beat window only reflects the final multiplexed slice).
	before := p.mon.Count()
	t0 := p.clock.Now()
	for i := 0; i < 10; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, period)
	}
	avg := float64(p.mon.Count()-before) / (p.clock.Now() - t0)
	if math.Abs(avg-30) > 1.5 {
		t.Fatalf("converged rate = %g, want ~30", avg)
	}
}

func TestRuntimeMinimizesPowerAtGoal(t *testing.T) {
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(28, 32) // speedup 3 needed
	const period = 1.0
	for i := 0; i < 80; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, period)
	}
	// Optimal: multiplex between (2 cores, fast)=3.0 exactly, power 4.18,
	// or blends; cheapest way to get speedup 3 on the hull.
	// Compute the oracle cost over all pure and two-way blends.
	pts := p.space.Points()
	best := math.Inf(1)
	for _, a := range pts {
		if a.Effect.Speedup >= 3 && a.Effect.PowerX < best {
			best = a.Effect.PowerX
		}
		for _, b := range pts {
			if a.Effect.Speedup < 3 && b.Effect.Speedup > 3 {
				frac := (3 - a.Effect.Speedup) / (b.Effect.Speedup - a.Effect.Speedup)
				pw := (1-frac)*a.Effect.PowerX + frac*b.Effect.PowerX
				if pw < best {
					best = pw
				}
			}
		}
	}
	// Steady-state mean power must be within 20% of the oracle blend
	// (transient exploration inflates the long-run mean slightly).
	if p.meanPower() > best*1.2 {
		t.Fatalf("mean power multiplier %.3f, oracle %.3f — not minimizing cost", p.meanPower(), best)
	}
}

func TestRuntimeTracksPhaseChange(t *testing.T) {
	// Base speed halves at t=60: the runtime must re-converge.
	p, rt := newHarness(t, func(ti sim.Time) float64 {
		if ti < 60 {
			return 10
		}
		return 5
	})
	p.mon.SetPerformanceGoal(28, 32)
	const period = 1.0
	for i := 0; i < 60; i++ {
		d, _ := rt.Step()
		p.run(d, period)
	}
	for i := 0; i < 70; i++ {
		d, _ := rt.Step()
		p.run(d, period)
	}
	before := p.mon.Count()
	t0 := p.clock.Now()
	for i := 0; i < 10; i++ {
		d, _ := rt.Step()
		p.run(d, period)
	}
	avg := float64(p.mon.Count()-before) / (p.clock.Now() - t0)
	if math.Abs(avg-30) > 2.0 {
		t.Fatalf("rate after phase change = %g, want ~30", avg)
	}
}

func TestRuntimeSaturatesAtUnreachableGoal(t *testing.T) {
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(1000, 0) // needs speedup 100; max is 6
	const period = 1.0
	var last Decision
	for i := 0; i < 30; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		last = d
		p.run(d, period)
	}
	if last.Schedule.Hi.Speedup < 5.99 || last.HiFrac < 0.99 {
		t.Fatalf("unreachable goal should pin at max speedup; got %+v", last.Schedule)
	}
}

func TestCorrectorLearnsActuatorDeviation(t *testing.T) {
	// The "4 cores" setting actually delivers only 60% of its declared
	// speedup (e.g. sync overhead): true speedup 2.4 instead of 4. Only
	// *relative* speedups are identifiable (a uniform scale is absorbed
	// by the base-speed estimate), so excite the system by alternating
	// the goal between a 2-core and a 4-core operating point and assert
	// the corrected 4c/2c ratio approaches the true 1.2 (= 2 × 0.6)
	// instead of the declared 2.0.
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.trueSpeedup = func(cfg actuator.Config) float64 {
		s := p.space.Effect(cfg).Speedup
		if cfg[0] == 2 { // 4-core setting
			s *= 0.6
		}
		return s
	}
	const period = 1.0
	for cycle := 0; cycle < 20; cycle++ {
		if cycle%2 == 0 {
			p.mon.SetPerformanceGoal(19, 21) // pure 2-core point
		} else {
			p.mon.SetPerformanceGoal(39, 41) // pure 4-core point (declared)
		}
		for i := 0; i < 6; i++ {
			d, err := rt.Step()
			if err != nil {
				t.Fatal(err)
			}
			p.run(d, period)
		}
	}
	two := actuator.Config{1, 0}
	four := actuator.Config{2, 0}
	c2 := rt.corr.correctedSpeedup(two, p.space.Effect(two).Speedup)
	c4 := rt.corr.correctedSpeedup(four, p.space.Effect(four).Speedup)
	ratio := c4 / c2
	if math.Abs(ratio-1.2) > 0.3 {
		t.Fatalf("corrected 4c/2c speedup ratio = %g, want ~1.2 (declared 2.0)", ratio)
	}
}

func TestPriorsConcentrateOnMatchingProfile(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	space := twoKnobSpace(t)
	p := &testPlatform{clock: clock, mon: mon, space: space,
		base: func(sim.Time) float64 { return 10 }}
	rt, err := New("app", clock, mon, space, Options{
		Priors: []Prior{{Name: "tiny", BaseRate: 2}, {Name: "match", BaseRate: 10.5}, {Name: "huge", BaseRate: 50}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetPerformanceGoal(28, 32)
	for i := 0; i < 20; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, 1.0)
	}
	w := rt.PriorWeights()
	if w[1] < w[0] || w[1] < w[2] {
		t.Fatalf("prior weights = %v, want index 1 dominant", w)
	}
}

func TestDecisionSlices(t *testing.T) {
	d := Decision{
		LoCfg:  actuator.Config{0, 0},
		HiCfg:  actuator.Config{1, 0},
		HiFrac: 0.25,
	}
	sl := d.Slices(4)
	if len(sl) != 2 {
		t.Fatalf("len(Slices) = %d, want 2", len(sl))
	}
	if sl[0].Duration != 3 || sl[1].Duration != 1 {
		t.Fatalf("durations = %g/%g, want 3/1", sl[0].Duration, sl[1].Duration)
	}
	if !sl[0].Cfg.Equal(d.LoCfg) || !sl[1].Cfg.Equal(d.HiCfg) {
		t.Fatal("low-power slice must come first")
	}
	pure := Decision{LoCfg: actuator.Config{1}, HiCfg: actuator.Config{1}, HiFrac: 0.3}
	if got := pure.Slices(4); len(got) != 1 || got[0].Duration != 4 {
		t.Fatalf("equal-config decision must yield a single slice, got %+v", got)
	}
}

func TestUncoordinatedWorseThanSEEC(t *testing.T) {
	// Run the same plant under coordinated SEEC and under uncoordinated
	// per-knob runtimes. The goal (speedup 3.4) is deliberately not
	// achievable by any pure configuration, so the uncoordinated system
	// — which cannot time-multiplex across knobs — must limit-cycle
	// through discrete configurations. Compare the paper's efficiency
	// metric: min(achieved, goal) per unit power.
	runScore := func(uncoordinated bool) float64 {
		clock := sim.NewClock(0)
		mon := heartbeat.New(clock)
		space := twoKnobSpace(t)
		p := &testPlatform{clock: clock, mon: mon, space: space,
			base: func(sim.Time) float64 { return 10 }}
		mon.SetPerformanceGoal(33, 35) // target 34: no pure config hits it
		const period = 1.0
		achieved := 0.0
		steps := 0
		record := func(step int) {
			if step >= 40 {
				achieved += math.Min(p.mon.Observe().WindowRate, 34)
				steps++
			}
		}
		if uncoordinated {
			u, err := NewUncoordinated("app", clock, mon, space, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 160; i++ {
				cfg, _, err := u.Step()
				if err != nil {
					t.Fatal(err)
				}
				p.run(Decision{LoCfg: cfg, HiCfg: cfg, HiFrac: 1}, period)
				record(i)
			}
		} else {
			rt, err := New("app", clock, mon, space, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 160; i++ {
				d, err := rt.Step()
				if err != nil {
					t.Fatal(err)
				}
				p.run(d, period)
				record(i)
			}
		}
		return (achieved / float64(steps)) / p.meanPower()
	}
	seec := runScore(false)
	unc := runScore(true)
	if seec <= unc {
		t.Fatalf("SEEC perf/power %.4f not better than uncoordinated %.4f", seec, unc)
	}
}

func TestStepDeterministic(t *testing.T) {
	run := func() []float64 {
		p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
		p.mon.SetPerformanceGoal(28, 32)
		var trace []float64
		for i := 0; i < 30; i++ {
			d, err := rt.Step()
			if err != nil {
				t.Fatal(err)
			}
			trace = append(trace, d.TargetSpeedup)
			p.run(d, 1.0)
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision trace diverged at step %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestHiFracAlwaysInUnitInterval(t *testing.T) {
	p, rt := newHarness(t, func(ti sim.Time) float64 { return 8 + 4*math.Sin(ti/5) })
	p.mon.SetPerformanceGoal(20, 24)
	for i := 0; i < 100; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.HiFrac < 0 || d.HiFrac > 1 {
			t.Fatalf("HiFrac = %g outside [0,1]", d.HiFrac)
		}
		if d.PredictedPower <= 0 {
			t.Fatalf("PredictedPower = %g, want positive", d.PredictedPower)
		}
		p.run(d, 1.0)
	}
}

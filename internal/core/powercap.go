package core

import (
	"fmt"
	"math"

	"angstrom/internal/control"
)

// This file implements the remaining §3.1 goal classes in the decision
// engine. Beyond the performance goals the evaluation exercises, SEEC
// applications can declare power goals ("target average power for a
// given heartrate") and accuracy goals (maximum distortion). The runtime
// honours them by shaping the action space the translator sees:
//
//   - a power goal removes candidates whose (corrected) power multiplier
//     exceeds the cap, then meets as much of the performance goal as the
//     remaining space allows;
//   - an accuracy goal removes candidates whose declared distortion
//     multiplier exceeds the bound (application-level actuators — e.g.
//     algorithm switches [3, 16] — are the usual source of distortion
//     trades).

// SetPowerCap bounds the schedule's power multiplier: the translator
// will only use configurations whose predicted power is at most capX
// times nominal. A cap below the cheapest candidate is rejected. Caps
// derive from the journaled tick epoch, so inside the daemon only tick
// writers (rebalancePowerCaps) may call this.
//
//angstrom:journaled mutator
func (r *Runtime) SetPowerCap(capX float64) error {
	if capX <= 0 {
		return fmt.Errorf("core: non-positive power cap %g", capX)
	}
	cheapest := math.Inf(1)
	for _, p := range r.points {
		cheapest = math.Min(cheapest, p.Effect.PowerX)
	}
	if capX < cheapest {
		return fmt.Errorf("core: power cap %g below the cheapest configuration (%g)", capX, cheapest)
	}
	r.powerCap = capX
	return r.reshape()
}

// ClearPowerCap removes the bound.
func (r *Runtime) ClearPowerCap() error {
	r.powerCap = 0
	return r.reshape()
}

// SetDistortionBound excludes configurations whose composed distortion
// multiplier exceeds bound (1 = nominal quality; higher = worse). The
// bound must keep at least one configuration.
func (r *Runtime) SetDistortionBound(bound float64) error {
	if bound <= 0 {
		return fmt.Errorf("core: non-positive distortion bound %g", bound)
	}
	ok := false
	for _, p := range r.points {
		if p.Effect.Distort <= bound {
			ok = true
			break
		}
	}
	if !ok {
		return fmt.Errorf("core: distortion bound %g excludes every configuration", bound)
	}
	r.distortionBound = bound
	return r.reshape()
}

// ClearDistortionBound removes the bound.
func (r *Runtime) ClearDistortionBound() error {
	r.distortionBound = 0
	return r.reshape()
}

// reshape rebuilds the translator over the constrained candidate set.
func (r *Runtime) reshape() error {
	cands := r.constrainedCandidates()
	if len(cands) == 0 {
		return fmt.Errorf("core: goal constraints leave no configurations")
	}
	if err := r.tr.Rebuild(cands); err != nil {
		return err
	}
	// The controller's saturation bounds follow the constrained space.
	r.ctl.SetBounds(r.tr.MinSpeedup(), r.tr.MaxSpeedup())
	return nil
}

// constrainedCandidates filters the corrected candidates through the
// declared power and accuracy constraints.
func (r *Runtime) constrainedCandidates() []control.Candidate {
	all := r.candidates()
	if r.powerCap == 0 && r.distortionBound == 0 {
		return all
	}
	out := all[:0]
	for i, c := range all {
		eff := r.points[i].Effect
		if r.powerCap > 0 && eff.PowerX > r.powerCap {
			continue
		}
		if r.distortionBound > 0 && eff.Distort > r.distortionBound {
			continue
		}
		out = append(out, c)
	}
	return out
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Property-based invariant tests for the Manager: randomized
// add/remove/goal-churn/beat sequences drive the incremental Step and
// the full-recompute reference in lockstep, asserting after every step
// that (a) the two produce byte-identical allocations, (b) allocations
// never exceed the pool (integral units space-shared, core-equivalents
// oversubscribed), (c) floors hold (every app keeps >= 1 unit; shares
// stay in (0, 1]), and (d) the whole transcript is deterministic for a
// fixed seed. This covers the partition and partitionShared walks far
// beyond the example-driven tests, including the mode flips between
// them as membership churns across the pool size.

// propCurves is the scaling-curve zoo: unimodal shapes the binary
// search must invert exactly, a plateau that exercises the
// equal-neighbor interpolation guard, and a non-monotone zigzag that
// must fall back to the linear scan.
var propCurves = []struct {
	name string
	fn   func(int) float64
}{
	{"linear", func(u int) float64 { return float64(u) }},
	{"amdahl90", func(u int) float64 { return 1 / (0.1 + 0.9/float64(u)) }},
	{"amdahl-sync", func(u int) float64 {
		if u <= 1 {
			return 1
		}
		cf := float64(u)
		return 1 / (0.05 + 0.95/cf + 0.02*math.Log2(cf))
	}},
	{"plateau8", func(u int) float64 { return math.Min(float64(u), 8) }},
	{"zigzag", func(u int) float64 { return float64(u) + 3*math.Sin(float64(u)) }},
}

// propFleet drives one incremental/reference manager pair over shared
// monitors (reads are pure, so both managers observe identical state).
type propFleet struct {
	t     *testing.T
	clock *sim.Clock
	inc   *Manager // incremental path under test
	ref   *Manager // full-recompute reference
	names []string
	mons  map[string]*heartbeat.Monitor
	next  int
}

func newPropFleet(t *testing.T, total int, oversub bool) *propFleet {
	t.Helper()
	clock := sim.NewClock(0)
	inc, err := NewManager(clock, total)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewManager(clock, total)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetIncremental(false)
	inc.SetOversubscription(oversub)
	ref.SetOversubscription(oversub)
	return &propFleet{t: t, clock: clock, inc: inc, ref: ref, mons: make(map[string]*heartbeat.Monitor)}
}

func (f *propFleet) add(rng *rand.Rand) {
	name := fmt.Sprintf("app-%03d", f.next)
	f.next++
	mon := heartbeat.New(f.clock)
	mon.SetPerformanceGoal(1+rng.Float64()*40, 0)
	curve := propCurves[rng.Intn(len(propCurves))].fn
	errInc := f.inc.AddApp(name, mon, curve)
	errRef := f.ref.AddApp(name, mon, curve)
	if (errInc == nil) != (errRef == nil) {
		f.t.Fatalf("admission diverged for %s: inc=%v ref=%v", name, errInc, errRef)
	}
	if errInc == nil {
		f.names = append(f.names, name)
		f.mons[name] = mon
	}
}

func (f *propFleet) remove(rng *rand.Rand) {
	if len(f.names) == 0 {
		return
	}
	i := rng.Intn(len(f.names))
	name := f.names[i]
	f.names = append(f.names[:i], f.names[i+1:]...)
	delete(f.mons, name)
	if !f.inc.RemoveApp(name) || !f.ref.RemoveApp(name) {
		f.t.Fatalf("remove %s failed", name)
	}
}

func (f *propFleet) churnGoal(rng *rand.Rand) {
	if len(f.names) == 0 {
		return
	}
	mon := f.mons[f.names[rng.Intn(len(f.names))]]
	min := 0.5 + rng.Float64()*60
	if rng.Intn(2) == 0 {
		mon.SetPerformanceGoal(min, min*(1+rng.Float64()))
	} else {
		mon.SetPerformanceGoal(min, 0)
	}
}

func (f *propFleet) churnInterference(rng *rand.Rand) {
	if len(f.names) == 0 {
		return
	}
	name := f.names[rng.Intn(len(f.names))]
	factor := 0.05 + rng.Float64()*0.95
	f.inc.SetInterference(name, factor)
	f.ref.SetInterference(name, factor)
}

func (f *propFleet) churnPriority(rng *rand.Rand) {
	if len(f.names) == 0 {
		return
	}
	name := f.names[rng.Intn(len(f.names))]
	w := []float64{0.5, 1, 2, 4, 8}[rng.Intn(5)]
	if err := f.inc.SetPriority(name, w); err != nil {
		f.t.Fatal(err)
	}
	if err := f.ref.SetPriority(name, w); err != nil {
		f.t.Fatal(err)
	}
}

func (f *propFleet) beat(rng *rand.Rand) {
	dt := 0.05 + rng.Float64()
	start := f.clock.Now()
	f.clock.Advance(dt)
	for _, name := range f.names {
		if rng.Intn(3) == 0 {
			continue // this app idles through the interval
		}
		n := 1 + rng.Intn(30)
		mon := f.mons[name]
		for j := 1; j <= n; j++ {
			mon.BeatAt(start + dt*float64(j)/float64(n))
		}
	}
}

// step runs both managers and enforces every invariant.
func (f *propFleet) step(iter int) []Allocation {
	f.t.Helper()
	got, errInc := f.inc.Step()
	want, errRef := f.ref.Step()
	if (errInc == nil) != (errRef == nil) {
		f.t.Fatalf("iter %d: step errors diverged: inc=%v ref=%v", iter, errInc, errRef)
	}
	if errInc != nil {
		return nil
	}
	if !reflect.DeepEqual(got, want) {
		for i := range got {
			if i < len(want) && got[i] != want[i] {
				f.t.Errorf("iter %d: allocation %d diverged:\n  inc: %+v\n  ref: %+v", iter, i, got[i], want[i])
			}
		}
		f.t.Fatalf("iter %d: incremental step not byte-identical to full recompute", iter)
	}
	total := f.inc.total
	sumEquiv := 0.0
	sumUnits := 0
	for _, a := range got {
		if a.Units < 1 {
			f.t.Fatalf("iter %d: %s floored below 1 unit: %+v", iter, a.App, a)
		}
		if a.Share <= 0 || a.Share > 1 {
			f.t.Fatalf("iter %d: %s share %g outside (0, 1]", iter, a.App, a.Share)
		}
		if len(got) > total && a.Units != 1 {
			f.t.Fatalf("iter %d: oversubscribed %s holds %d units", iter, a.App, a.Units)
		}
		if len(got) <= total && a.Share != 1 {
			f.t.Fatalf("iter %d: space-shared %s time-shares at %g", iter, a.App, a.Share)
		}
		sumUnits += a.Units
		sumEquiv += float64(a.Units) * a.Share
	}
	if len(got) <= total && sumUnits > total {
		f.t.Fatalf("iter %d: %d units allocated on a %d-unit pool", iter, sumUnits, total)
	}
	if sumEquiv > float64(total)+1e-6 {
		f.t.Fatalf("iter %d: %g core-equivalents allocated on a %d-unit pool", iter, sumEquiv, total)
	}
	return got
}

// runScript executes one full randomized sequence and returns the
// transcript of every step's allocations.
func runScript(t *testing.T, seed int64, total int, oversub bool, iters int) [][]Allocation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := newPropFleet(t, total, oversub)
	var transcript [][]Allocation
	for iter := 0; iter < iters; iter++ {
		switch rng.Intn(12) {
		case 0, 1:
			f.add(rng)
		case 2:
			f.remove(rng)
		case 3:
			f.churnGoal(rng)
		case 4:
			f.churnInterference(rng)
		case 5:
			f.churnPriority(rng)
		default:
			f.beat(rng)
		}
		// Step reuses its output buffer; the transcript needs a copy.
		transcript = append(transcript, append([]Allocation(nil), f.step(iter)...))
	}
	return transcript
}

func TestManagerPropertyRandomChurn(t *testing.T) {
	cases := []struct {
		name    string
		total   int
		oversub bool
	}{
		{"tiny-pool-oversubscribed", 3, true},
		{"small-pool-oversubscribed", 16, true},
		{"wide-pool-spaceshared", 64, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 4; seed++ {
				runScript(t, seed, tc.total, tc.oversub, 250)
			}
		})
	}
}

// The same seed must replay to the same transcript: Step is
// deterministic state machinery, not a heuristic.
func TestManagerPropertyDeterministicReplay(t *testing.T) {
	first := runScript(t, 42, 8, true, 200)
	second := runScript(t, 42, 8, true, 200)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("identical seeds produced diverging allocation transcripts")
	}
}

// demandUnits: the binary search over a verified monotone prefix must
// return bit-identical results to the linear scan for every curve shape
// and a dense sweep of targets (including exact plateau hits and
// demands beyond the curve's ceiling).
func TestDemandUnitsBinarySearchMatchesLinear(t *testing.T) {
	clock := sim.NewClock(0)
	for _, c := range propCurves {
		t.Run(c.name, func(t *testing.T) {
			inc, _ := NewManager(clock, 4096)
			ref, _ := NewManager(clock, 4096)
			ref.SetIncremental(false)
			mon := heartbeat.New(clock)
			mon.SetPerformanceGoal(10, 0)
			if err := inc.AddApp("x", mon, c.fn); err != nil {
				t.Fatal(err)
			}
			if err := ref.AddApp("x", mon, c.fn); err != nil {
				t.Fatal(err)
			}
			ai, ar := inc.apps[0], ref.apps[0]
			ai.haveBase, ar.haveBase = true, true
			ai.kfBase, ar.kfBase = 1, 1
			for target := 0.125; target < 6000; target *= 1.0837 {
				got := inc.demandUnits(ai, target)
				want := ref.demandUnits(ar, target)
				if got != want {
					t.Fatalf("target %g: binary %v != linear %v", target, got, want)
				}
			}
			// Exact plateau/ceiling values, where >= boundaries bite.
			for u := 1; u <= 4096; u *= 2 {
				target := c.fn(u)
				if got, want := inc.demandUnits(ai, target), ref.demandUnits(ar, target); got != want {
					t.Fatalf("exact target s(%d)=%g: binary %v != linear %v", u, target, got, want)
				}
			}
		})
	}
}

// verifyCurve classifications: unimodal shapes get a usable prefix,
// non-monotone shapes are rejected to the linear path.
func TestVerifyCurve(t *testing.T) {
	for _, c := range propCurves {
		peak, unimodal := VerifyCurve(c.fn, 4096)
		switch c.name {
		case "zigzag":
			if unimodal {
				t.Fatalf("zigzag classified unimodal (peak %d)", peak)
			}
		default:
			if !unimodal {
				t.Fatalf("%s not classified unimodal", c.name)
			}
			if peak < 1 {
				t.Fatalf("%s peak %d", c.name, peak)
			}
		}
	}
}

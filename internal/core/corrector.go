package core

import (
	"math"

	"angstrom/internal/actuator"
	"angstrom/internal/control"
)

// corrector is the actuator-model half of the adaptive layer (§3.3): it
// learns, on line, how far each actuator setting's *actual* speedup
// deviates from its declared multiplier, and exposes corrected speedups
// for the translator.
//
// Identifiability dictates the learning signal. A single observation
// h = b·s cannot separate workload (b) from model error (s): the Kalman
// filter absorbs any constant discrepancy into b̂. What *is* identifiable
// is the relative speedup across a schedule change: between two adjacent
// decision periods the workload has barely drifted, so
//
//	log(h_t / h_{t−1}) ≈ log(S_t / S_{t−1}) + (f_t − f_{t−1})·δ
//
// where S is the declared schedule speedup, f is the schedule's
// fraction-weighted one-hot setting feature vector, and δ the per-setting
// log-corrections, estimated by recursive least squares. The common
// offset per actuator lies in the RLS null space and stays at zero, which
// is exactly right: a uniform rescaling of all speedups is absorbed by b̂
// and never affects decisions.
type corrector struct {
	space   *actuator.Space
	offsets []int // feature offset of each actuator's settings block
	rls     *control.RLS
	nfeat   int

	prevValid bool
	prevFeat  []float64
	prevDecl  float64
	prevRate  float64

	updates     int
	lastRebuild int
	features    []float64 // scratch buffer
}

// rebuildEvery is how many corrector updates accumulate before the
// translator's candidate table is refreshed. Rebuilding is O(space);
// doing it every update would chase noise.
const rebuildEvery = 8

// correctionClamp bounds |δ| per setting so one noisy interval cannot
// invert the model.
const correctionClamp = 0.7

// minExcitation is the minimum relative declared-speedup change between
// adjacent periods for the pair to carry identification signal.
const minExcitation = 0.02

func newCorrector(space *actuator.Space, forgetting float64) *corrector {
	c := &corrector{space: space}
	c.offsets = make([]int, len(space.Acts))
	n := 0
	for i, a := range space.Acts {
		c.offsets[i] = n
		n += len(a.Settings)
	}
	c.nfeat = n
	c.rls = control.NewRLS(n, forgetting, 0.5)
	c.features = make([]float64, n)
	c.prevFeat = make([]float64, n)
	return c
}

// scheduleFeatures returns the fraction-weighted one-hot features of the
// decision's schedule and its declared (uncorrected) average speedup.
func (c *corrector) scheduleFeatures(d Decision) (feat []float64, declared float64) {
	feat = make([]float64, c.nfeat)
	lo := c.space.Effect(d.LoCfg).Speedup
	hi := c.space.Effect(d.HiCfg).Speedup
	declared = d.HiFrac*hi + (1-d.HiFrac)*lo
	for i, setting := range d.LoCfg {
		feat[c.offsets[i]+setting] += 1 - d.HiFrac
	}
	for i, setting := range d.HiCfg {
		feat[c.offsets[i]+setting] += d.HiFrac
	}
	return feat, declared
}

// observe folds in one completed decision interval: the schedule that was
// executed and the heart rate observed at its end. Learning happens only
// when the declared speedup actually changed between adjacent periods
// (excitation) — steady state carries no identification signal.
func (c *corrector) observe(d Decision, heartRate float64) {
	if heartRate <= 0 {
		c.prevValid = false
		return
	}
	feat, declared := c.scheduleFeatures(d)
	if declared <= 0 {
		c.prevValid = false
		return
	}
	if c.prevValid {
		rel := declared / c.prevDecl
		if math.Abs(rel-1) >= minExcitation {
			y := math.Log(heartRate/c.prevRate) - math.Log(rel)
			if !math.IsNaN(y) && !math.IsInf(y, 0) {
				for i := range c.features {
					c.features[i] = feat[i] - c.prevFeat[i]
				}
				c.rls.Update(c.features, y)
				c.updates++
			}
		}
	}
	c.prevValid = true
	copy(c.prevFeat, feat)
	c.prevDecl = declared
	c.prevRate = heartRate
}

// dirty reports whether enough updates accumulated to justify rebuilding
// the translator, and resets the trigger.
func (c *corrector) dirty() bool {
	if c.updates-c.lastRebuild >= rebuildEvery {
		c.lastRebuild = c.updates
		return true
	}
	return false
}

// correctedSpeedup applies the learned residuals to a declared speedup.
func (c *corrector) correctedSpeedup(cfg actuator.Config, declared float64) float64 {
	theta := c.rls.Theta()
	sum := 0.0
	for i, setting := range cfg {
		d := theta[c.offsets[i]+setting]
		if d > correctionClamp {
			d = correctionClamp
		}
		if d < -correctionClamp {
			d = -correctionClamp
		}
		sum += d
	}
	return declared * math.Exp(sum)
}

package core

import (
	"math"
	"testing"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// managedHarness simulates N applications sharing a pool of units under
// a Manager: app i's heart rate = base_i × scaling_i(allocated).
type managedHarness struct {
	clock *sim.Clock
	mgr   *Manager
	mons  []*heartbeat.Monitor
	bases []float64
	curve []func(int) float64
	alloc []int
	share []float64
}

// harnessOption tweaks the manager before apps enroll.
type harnessOption func(*Manager)

func withOversubscription() harnessOption {
	return func(m *Manager) { m.SetOversubscription(true) }
}

func newManagedHarness(t *testing.T, total int, bases []float64, curves []func(int) float64, opts ...harnessOption) *managedHarness {
	t.Helper()
	clock := sim.NewClock(0)
	mgr, err := NewManager(clock, total)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range opts {
		o(mgr)
	}
	h := &managedHarness{clock: clock, mgr: mgr, bases: bases, curve: curves}
	for i := range bases {
		mon := heartbeat.New(clock)
		h.mons = append(h.mons, mon)
		name := string(rune('a' + i))
		if err := mgr.AddApp(name, mon, curves[i]); err != nil {
			t.Fatal(err)
		}
		h.alloc = append(h.alloc, 1)
		h.share = append(h.share, 1)
	}
	return h
}

// run advances one period: every app beats at its true rate.
func (h *managedHarness) run(period float64) {
	// Interleave beats: advance in small steps so all monitors fill.
	end := h.clock.Now() + period
	next := make([]float64, len(h.mons))
	for i := range next {
		rate := h.bases[i] * h.curve[i](h.alloc[i]) * h.share[i]
		next[i] = h.clock.Now() + 1/rate
	}
	for {
		min, idx := math.Inf(1), -1
		for i, tn := range next {
			if tn < min {
				min, idx = tn, i
			}
		}
		if min > end {
			break
		}
		h.clock.AdvanceTo(min)
		h.mons[idx].Beat()
		rate := h.bases[idx] * h.curve[idx](h.alloc[idx]) * h.share[idx]
		next[idx] = min + 1/rate
	}
	h.clock.AdvanceTo(end)
}

func (h *managedHarness) step(t *testing.T) []Allocation {
	t.Helper()
	allocs, err := h.mgr.Step()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		h.alloc[i] = a.Units
		h.share[i] = a.Share
	}
	return allocs
}

func linear(u int) float64 { return float64(u) }

func amdahl(p float64) func(int) float64 {
	return func(u int) float64 {
		return 1 / ((1 - p) + p/float64(u))
	}
}

func TestManagerValidation(t *testing.T) {
	clock := sim.NewClock(0)
	if _, err := NewManager(nil, 4); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewManager(clock, 0); err == nil {
		t.Fatal("zero units accepted")
	}
	mgr, _ := NewManager(clock, 2)
	if err := mgr.AddApp("a", nil, linear); err == nil {
		t.Fatal("nil monitor accepted")
	}
	mon := heartbeat.New(clock)
	if err := mgr.AddApp("a", mon, linear); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddApp("a", mon, linear); err == nil {
		t.Fatal("duplicate app accepted")
	}
	if err := mgr.AddApp("b", heartbeat.New(clock), linear); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddApp("c", heartbeat.New(clock), linear); err == nil {
		t.Fatal("more apps than units accepted")
	}
	if _, err := mgr.Step(); err == nil {
		t.Fatal("Step without goals did not error")
	}
}

func TestManagerMeetsBothGoalsWhenFeasible(t *testing.T) {
	// 16 units; app a needs ~4 (goal 40, base 10, linear), app b needs
	// ~8 (goal 40, base 5, linear). Total 12 < 16: both must be met.
	h := newManagedHarness(t, 16,
		[]float64{10, 5},
		[]func(int) float64{linear, linear})
	h.mons[0].SetPerformanceGoal(38, 42)
	h.mons[1].SetPerformanceGoal(38, 42)
	var allocs []Allocation
	for i := 0; i < 30; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	if !allocs[0].GoalMet || !allocs[1].GoalMet {
		t.Fatalf("goals not met at steady state: %+v", allocs)
	}
	if allocs[0].Units < 3 || allocs[0].Units > 5 {
		t.Fatalf("app a units = %d, want ~4", allocs[0].Units)
	}
	if allocs[1].Units < 7 || allocs[1].Units > 9 {
		t.Fatalf("app b units = %d, want ~8", allocs[1].Units)
	}
	total := allocs[0].Units + allocs[1].Units
	if total > 16 {
		t.Fatalf("allocated %d of 16 units", total)
	}
}

func TestManagerScalesDownOversubscription(t *testing.T) {
	// 8 units, both apps want ~8 each: shares must scale ~proportionally
	// and never exceed the pool.
	h := newManagedHarness(t, 8,
		[]float64{5, 5},
		[]func(int) float64{linear, linear})
	h.mons[0].SetPerformanceGoal(38, 42)
	h.mons[1].SetPerformanceGoal(38, 42)
	var allocs []Allocation
	for i := 0; i < 30; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	total := allocs[0].Units + allocs[1].Units
	if total > 8 {
		t.Fatalf("allocated %d of 8 units", total)
	}
	if allocs[0].GoalMet && allocs[1].GoalMet {
		t.Fatal("both goals reported met despite 2x oversubscription")
	}
	if d := allocs[0].Units - allocs[1].Units; d < -1 || d > 1 {
		t.Fatalf("equal demands split unevenly: %+v", allocs)
	}
}

func TestManagerRespectsScalingCurves(t *testing.T) {
	// App a scales linearly; app b saturates (Amdahl p=0.7, max ~3.3x).
	// With b's goal above its saturation ceiling, b's demand caps at the
	// pool and the proportional split leaves a enough to meet its goal
	// only if demands are honest — the point of measuring scaling.
	h := newManagedHarness(t, 12,
		[]float64{10, 10},
		[]func(int) float64{linear, amdahl(0.7)})
	h.mons[0].SetPerformanceGoal(28, 32) // needs ~3 units
	h.mons[1].SetPerformanceGoal(28, 32) // needs speedup 3 ≈ near b's ceiling
	var allocs []Allocation
	for i := 0; i < 40; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	if !allocs[0].GoalMet {
		t.Fatalf("linear app's modest goal unmet: %+v", allocs)
	}
	// b needs speedup 3: amdahl(0.7) gives 3.03 at 10 units, 2.99 at 9.
	if allocs[1].Units < 8 {
		t.Fatalf("saturating app granted only %d units for a near-ceiling goal", allocs[1].Units)
	}
}

func TestManagerAllocatedLookup(t *testing.T) {
	h := newManagedHarness(t, 4, []float64{10}, []func(int) float64{linear})
	h.mons[0].SetPerformanceGoal(10, 12)
	if _, ok := h.mgr.Allocated("nope"); ok {
		t.Fatal("unknown app reported allocated")
	}
	if u, ok := h.mgr.Allocated("a"); !ok || u != 1 {
		t.Fatalf("initial allocation = %d, want 1", u)
	}
}

func TestManagerOversubscriptionAdmission(t *testing.T) {
	clock := sim.NewClock(0)
	mgr, err := NewManager(clock, 2)
	if err != nil {
		t.Fatal(err)
	}
	add := func(name string) error {
		mon := heartbeat.New(clock)
		mon.SetPerformanceGoal(10, 12)
		return mgr.AddApp(name, mon, linear)
	}
	if err := add("a"); err != nil {
		t.Fatal(err)
	}
	if err := add("b"); err != nil {
		t.Fatal(err)
	}
	if err := add("c"); err == nil {
		t.Fatal("third app admitted to a 2-unit pool without oversubscription")
	}
	mgr.SetOversubscription(true)
	if !mgr.Oversubscribed() {
		t.Fatal("oversubscription not reported")
	}
	if err := add("c"); err != nil {
		t.Fatalf("oversubscribed admission refused: %v", err)
	}
}

// With twice as many apps as units, the manager time-shares: every app
// is pinned to one unit with a fractional share, shares sum to at most
// the pool, and a heavier goal earns a larger share.
func TestManagerTimeSharesOversubscribedFleet(t *testing.T) {
	h := newManagedHarness(t, 2,
		[]float64{10, 10, 10, 10},
		[]func(int) float64{linear, linear, linear, linear},
		withOversubscription())
	// Apps c and d want 4x the rate of a and b.
	h.mons[0].SetPerformanceGoal(1.9, 2.1)
	h.mons[1].SetPerformanceGoal(1.9, 2.1)
	h.mons[2].SetPerformanceGoal(7.6, 8.4)
	h.mons[3].SetPerformanceGoal(7.6, 8.4)
	var allocs []Allocation
	for i := 0; i < 40; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	sum := 0.0
	for _, a := range allocs {
		if a.Units != 1 {
			t.Fatalf("oversubscribed app %s holds %d units, want 1", a.App, a.Units)
		}
		if a.Share <= 0 || a.Share > 1 {
			t.Fatalf("share %g outside (0, 1]: %+v", a.Share, a)
		}
		sum += float64(a.Units) * a.Share
	}
	if sum > 2+1e-9 {
		t.Fatalf("shares sum to %g core-equivalents on a 2-unit pool", sum)
	}
	if allocs[2].Share <= allocs[0].Share {
		t.Fatalf("heavy app's share %g not above light app's %g", allocs[2].Share, allocs[0].Share)
	}
	// Light goals (rate 2 = share 0.2 at base 10) must be met even
	// oversubscribed; heavy goals (share 0.8 each) cannot all fit.
	if !allocs[0].GoalMet || !allocs[1].GoalMet {
		t.Fatalf("feasible light goals unmet: %+v", allocs)
	}
}

// Shrinking an oversubscribed fleet back under the pool restores
// dedicated (share = 1) allocations.
func TestManagerRecoversFromOversubscription(t *testing.T) {
	h := newManagedHarness(t, 2,
		[]float64{10, 10, 10},
		[]func(int) float64{linear, linear, linear},
		withOversubscription())
	for i := range h.mons {
		h.mons[i].SetPerformanceGoal(9, 11)
		_ = i
	}
	var allocs []Allocation
	for i := 0; i < 10; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	if allocs[0].Share >= 1 {
		t.Fatalf("3 apps on 2 units but share = %g", allocs[0].Share)
	}
	if !h.mgr.RemoveApp("c") {
		t.Fatal("remove failed")
	}
	h.mons = h.mons[:2]
	h.bases = h.bases[:2]
	h.curve = h.curve[:2]
	h.alloc = h.alloc[:2]
	h.share = h.share[:2]
	for i := 0; i < 10; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	for _, a := range allocs {
		if a.Share != 1 {
			t.Fatalf("dedicated fleet still time-shares: %+v", a)
		}
	}
}

// Contention reported through SetInterference inflates demand: the same
// goal under a 0.5x contention factor needs twice the units, while the
// base-speed estimate stays uncontended (the factor divides out of the
// observed rate).
func TestManagerInterferenceInflatesDemand(t *testing.T) {
	h := newManagedHarness(t, 64, []float64{1}, []func(int) float64{linear})
	h.mons[0].SetPerformanceGoal(9.5, 10.5)
	for i := 0; i < 6; i++ {
		h.run(20)
		h.step(t)
	}
	clean := h.step(t)[0]
	if math.Abs(clean.Demand-10) > 1.5 {
		t.Fatalf("uncontended demand %g, want ~10", clean.Demand)
	}

	// Co-location halves delivered throughput: the platform reports the
	// factor and the application's true rate drops to match.
	h.mgr.SetInterference("a", 0.5)
	h.bases[0] *= 0.5
	for i := 0; i < 8; i++ {
		h.run(20)
		h.step(t)
	}
	contended := h.step(t)[0]
	if math.Abs(contended.Demand-20) > 3 {
		t.Fatalf("contended demand %g, want ~20 (2x at interference 0.5)", contended.Demand)
	}
	if contended.Units < 17 {
		t.Fatalf("contended allocation %d units, want ~20", contended.Units)
	}

	// Out-of-range factors and unknown names are ignored.
	h.mgr.SetInterference("a", 0)
	h.mgr.SetInterference("a", 1.5)
	h.mgr.SetInterference("nosuch", 0.5)
	if f := h.mgr.apps[0].interf; f != 0.5 {
		t.Fatalf("interference %g after invalid updates, want 0.5", f)
	}
}

package core

import (
	"math"
	"testing"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// managedHarness simulates N applications sharing a pool of units under
// a Manager: app i's heart rate = base_i × scaling_i(allocated).
type managedHarness struct {
	clock *sim.Clock
	mgr   *Manager
	mons  []*heartbeat.Monitor
	bases []float64
	curve []func(int) float64
	alloc []int
}

func newManagedHarness(t *testing.T, total int, bases []float64, curves []func(int) float64) *managedHarness {
	t.Helper()
	clock := sim.NewClock(0)
	mgr, err := NewManager(clock, total)
	if err != nil {
		t.Fatal(err)
	}
	h := &managedHarness{clock: clock, mgr: mgr, bases: bases, curve: curves}
	for i := range bases {
		mon := heartbeat.New(clock)
		h.mons = append(h.mons, mon)
		name := string(rune('a' + i))
		if err := mgr.AddApp(name, mon, curves[i]); err != nil {
			t.Fatal(err)
		}
		h.alloc = append(h.alloc, 1)
	}
	return h
}

// run advances one period: every app beats at its true rate.
func (h *managedHarness) run(period float64) {
	// Interleave beats: advance in small steps so all monitors fill.
	end := h.clock.Now() + period
	next := make([]float64, len(h.mons))
	for i := range next {
		rate := h.bases[i] * h.curve[i](h.alloc[i])
		next[i] = h.clock.Now() + 1/rate
	}
	for {
		min, idx := math.Inf(1), -1
		for i, tn := range next {
			if tn < min {
				min, idx = tn, i
			}
		}
		if min > end {
			break
		}
		h.clock.AdvanceTo(min)
		h.mons[idx].Beat()
		rate := h.bases[idx] * h.curve[idx](h.alloc[idx])
		next[idx] = min + 1/rate
	}
	h.clock.AdvanceTo(end)
}

func (h *managedHarness) step(t *testing.T) []Allocation {
	t.Helper()
	allocs, err := h.mgr.Step()
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range allocs {
		h.alloc[i] = a.Units
	}
	return allocs
}

func linear(u int) float64 { return float64(u) }

func amdahl(p float64) func(int) float64 {
	return func(u int) float64 {
		return 1 / ((1 - p) + p/float64(u))
	}
}

func TestManagerValidation(t *testing.T) {
	clock := sim.NewClock(0)
	if _, err := NewManager(nil, 4); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewManager(clock, 0); err == nil {
		t.Fatal("zero units accepted")
	}
	mgr, _ := NewManager(clock, 2)
	if err := mgr.AddApp("a", nil, linear); err == nil {
		t.Fatal("nil monitor accepted")
	}
	mon := heartbeat.New(clock)
	if err := mgr.AddApp("a", mon, linear); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddApp("a", mon, linear); err == nil {
		t.Fatal("duplicate app accepted")
	}
	if err := mgr.AddApp("b", heartbeat.New(clock), linear); err != nil {
		t.Fatal(err)
	}
	if err := mgr.AddApp("c", heartbeat.New(clock), linear); err == nil {
		t.Fatal("more apps than units accepted")
	}
	if _, err := mgr.Step(); err == nil {
		t.Fatal("Step without goals did not error")
	}
}

func TestManagerMeetsBothGoalsWhenFeasible(t *testing.T) {
	// 16 units; app a needs ~4 (goal 40, base 10, linear), app b needs
	// ~8 (goal 40, base 5, linear). Total 12 < 16: both must be met.
	h := newManagedHarness(t, 16,
		[]float64{10, 5},
		[]func(int) float64{linear, linear})
	h.mons[0].SetPerformanceGoal(38, 42)
	h.mons[1].SetPerformanceGoal(38, 42)
	var allocs []Allocation
	for i := 0; i < 30; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	if !allocs[0].GoalMet || !allocs[1].GoalMet {
		t.Fatalf("goals not met at steady state: %+v", allocs)
	}
	if allocs[0].Units < 3 || allocs[0].Units > 5 {
		t.Fatalf("app a units = %d, want ~4", allocs[0].Units)
	}
	if allocs[1].Units < 7 || allocs[1].Units > 9 {
		t.Fatalf("app b units = %d, want ~8", allocs[1].Units)
	}
	total := allocs[0].Units + allocs[1].Units
	if total > 16 {
		t.Fatalf("allocated %d of 16 units", total)
	}
}

func TestManagerScalesDownOversubscription(t *testing.T) {
	// 8 units, both apps want ~8 each: shares must scale ~proportionally
	// and never exceed the pool.
	h := newManagedHarness(t, 8,
		[]float64{5, 5},
		[]func(int) float64{linear, linear})
	h.mons[0].SetPerformanceGoal(38, 42)
	h.mons[1].SetPerformanceGoal(38, 42)
	var allocs []Allocation
	for i := 0; i < 30; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	total := allocs[0].Units + allocs[1].Units
	if total > 8 {
		t.Fatalf("allocated %d of 8 units", total)
	}
	if allocs[0].GoalMet && allocs[1].GoalMet {
		t.Fatal("both goals reported met despite 2x oversubscription")
	}
	if d := allocs[0].Units - allocs[1].Units; d < -1 || d > 1 {
		t.Fatalf("equal demands split unevenly: %+v", allocs)
	}
}

func TestManagerRespectsScalingCurves(t *testing.T) {
	// App a scales linearly; app b saturates (Amdahl p=0.7, max ~3.3x).
	// With b's goal above its saturation ceiling, b's demand caps at the
	// pool and the proportional split leaves a enough to meet its goal
	// only if demands are honest — the point of measuring scaling.
	h := newManagedHarness(t, 12,
		[]float64{10, 10},
		[]func(int) float64{linear, amdahl(0.7)})
	h.mons[0].SetPerformanceGoal(28, 32) // needs ~3 units
	h.mons[1].SetPerformanceGoal(28, 32) // needs speedup 3 ≈ near b's ceiling
	var allocs []Allocation
	for i := 0; i < 40; i++ {
		allocs = h.step(t)
		h.run(1.0)
	}
	if !allocs[0].GoalMet {
		t.Fatalf("linear app's modest goal unmet: %+v", allocs)
	}
	// b needs speedup 3: amdahl(0.7) gives 3.03 at 10 units, 2.99 at 9.
	if allocs[1].Units < 8 {
		t.Fatalf("saturating app granted only %d units for a near-ceiling goal", allocs[1].Units)
	}
}

func TestManagerAllocatedLookup(t *testing.T) {
	h := newManagedHarness(t, 4, []float64{10}, []func(int) float64{linear})
	h.mons[0].SetPerformanceGoal(10, 12)
	if _, ok := h.mgr.Allocated("nope"); ok {
		t.Fatal("unknown app reported allocated")
	}
	if u, ok := h.mgr.Allocated("a"); !ok || u != 1 {
		t.Fatalf("initial allocation = %d, want 1", u)
	}
}

package core

import (
	"math"
	"testing"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

func TestPowerCapRejectsBadValues(t *testing.T) {
	_, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	if err := rt.SetPowerCap(0); err == nil {
		t.Fatal("zero cap accepted")
	}
	if err := rt.SetPowerCap(0.1); err == nil {
		t.Fatal("cap below the cheapest configuration accepted")
	}
}

func TestPowerCapLimitsSchedulePower(t *testing.T) {
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(45, 55) // wants speedup 5: needs expensive configs
	if err := rt.SetPowerCap(3.0); err != nil {
		t.Fatal(err)
	}
	const period = 1.0
	var last Decision
	for i := 0; i < 40; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.PredictedPower > 3.0+1e-9 {
			t.Fatalf("step %d: schedule power %g exceeds the 3.0 cap", i, d.PredictedPower)
		}
		p.run(d, period)
		last = d
	}
	// The goal is unreachable under the cap; the runtime must pin at the
	// best capped configuration rather than blow the power budget.
	if last.Schedule.Hi.Power > 3.0+1e-9 {
		t.Fatalf("final schedule %+v violates the cap", last.Schedule)
	}
}

func TestClearPowerCapRestoresRange(t *testing.T) {
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(45, 55)
	if err := rt.SetPowerCap(3.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, 1.0)
	}
	if err := rt.ClearPowerCap(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, 1.0)
	}
	// With the cap lifted the goal (speedup 5 of max 6) is reachable;
	// measure the interval-average rate over ten more periods.
	before := p.mon.Count()
	t0 := p.clock.Now()
	for i := 0; i < 10; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, 1.0)
	}
	rate := float64(p.mon.Count()-before) / (p.clock.Now() - t0)
	if math.Abs(rate-50) > 5 {
		t.Fatalf("rate after lifting cap = %g, want ~50", rate)
	}
}

// accuracySpace builds a space with one hardware knob and one
// application-level algorithm knob that trades accuracy for speed.
func accuracySpace(t *testing.T) *actuator.Space {
	t.Helper()
	cores := &actuator.Actuator{
		Name: "cores",
		Settings: []actuator.Setting{
			{Label: "1", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "2", Effect: actuator.Effect{Speedup: 2, PowerX: 2.2, Distort: 1}},
		},
		Apply: func(int) error { return nil },
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	algo := &actuator.Actuator{
		Name: "algorithm",
		Settings: []actuator.Setting{
			{Label: "exact", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "approx", Effect: actuator.Effect{Speedup: 2.5, PowerX: 1, Distort: 3}},
		},
		Apply: func(int) error { return nil },
		Scope: actuator.ApplicationScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Accuracy},
	}
	s, err := actuator.NewSpace(cores, algo)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDistortionBoundExcludesApproximateAlgorithms(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	space := accuracySpace(t)
	rt, err := New("app", clock, mon, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetPerformanceGoal(40, 50) // would love the approx algorithm
	if err := rt.SetDistortionBound(1.5); err != nil {
		t.Fatal(err)
	}
	p := &testPlatform{clock: clock, mon: mon, space: space,
		base: func(sim.Time) float64 { return 10 }}
	for i := 0; i < 30; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		// No chosen configuration may use the approximate setting.
		if d.HiCfg[1] != 0 || d.LoCfg[1] != 0 {
			t.Fatalf("step %d chose the approximate algorithm under a 1.5 distortion bound", i)
		}
		p.run(d, 1.0)
	}
}

func TestDistortionBoundValidation(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	rt, err := New("app", clock, mon, accuracySpace(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetDistortionBound(0); err == nil {
		t.Fatal("zero bound accepted")
	}
	if err := rt.SetDistortionBound(0.5); err == nil {
		t.Fatal("bound excluding every configuration accepted")
	}
	if err := rt.SetDistortionBound(1.0); err != nil {
		t.Fatalf("bound keeping the exact algorithm rejected: %v", err)
	}
	if err := rt.ClearDistortionBound(); err != nil {
		t.Fatal(err)
	}
}

func TestDistortionBoundAllowsApproxWhenLoose(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	space := accuracySpace(t)
	rt, err := New("app", clock, mon, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mon.SetPerformanceGoal(48, 52) // needs speedup 5 = 2 cores × approx
	if err := rt.SetDistortionBound(3); err != nil {
		t.Fatal(err)
	}
	p := &testPlatform{clock: clock, mon: mon, space: space,
		base: func(sim.Time) float64 { return 10 }}
	usedApprox := false
	for i := 0; i < 40; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.HiCfg[1] == 1 {
			usedApprox = true
		}
		p.run(d, 1.0)
	}
	if !usedApprox {
		t.Fatal("runtime never used the approximate algorithm despite needing its speedup")
	}
}

package core

import (
	"fmt"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Uncoordinated models the baseline of §5.2 in which "separate instances
// of the SEEC runtime system control cores, clock speed, and idle cycles
// but do not coordinate with each other" — i.e. what happens when several
// closed adaptive systems run side by side. One full SEEC runtime is
// instantiated per actuator; each observes the same application heartbeats,
// attributes the whole error to itself, and moves only its own knob.
//
// No new mechanism is needed to make this baseline misbehave: each
// sub-runtime's Kalman filter attributes speed changes caused by the
// *other* controllers to its own workload estimate, which is exactly the
// mis-attribution that makes composed closed systems oscillate through
// sub-optimal allocations (§2, §5.2).
type Uncoordinated struct {
	app   string
	space *actuator.Space
	subs  []*Runtime
}

// NewUncoordinated builds one single-knob runtime per actuator in space.
func NewUncoordinated(app string, clock sim.Nower, mon *heartbeat.Monitor, space *actuator.Space, opts Options) (*Uncoordinated, error) {
	if space == nil {
		return nil, fmt.Errorf("core: nil space")
	}
	u := &Uncoordinated{app: app, space: space}
	for _, act := range space.Acts {
		sub, err := newSingleKnob(app, clock, mon, act, opts)
		if err != nil {
			return nil, err
		}
		u.subs = append(u.subs, sub)
	}
	return u, nil
}

func newSingleKnob(app string, clock sim.Nower, mon *heartbeat.Monitor, act *actuator.Actuator, opts Options) (*Runtime, error) {
	sub, err := actuator.NewSpace(act)
	if err != nil {
		return nil, err
	}
	return New(app+"/"+act.Name, clock, mon, sub, opts)
}

// Step runs every sub-runtime's observe-decide phase and merges their
// independent choices into one configuration of the full space. Because
// the controllers cannot coordinate, no cross-knob time-multiplexing is
// possible: each controller contributes the dominant configuration of
// its own schedule.
func (u *Uncoordinated) Step() (actuator.Config, []Decision, error) {
	cfg := make(actuator.Config, len(u.subs))
	decisions := make([]Decision, len(u.subs))
	for i, sub := range u.subs {
		d, err := sub.Step()
		if err != nil {
			return nil, nil, err
		}
		decisions[i] = d
		if d.HiFrac >= 0.5 {
			cfg[i] = d.HiCfg[0]
		} else {
			cfg[i] = d.LoCfg[0]
		}
	}
	return cfg, decisions, nil
}

// Space returns the full (merged) action space.
func (u *Uncoordinated) Space() *actuator.Space { return u.space }

// Runtimes exposes the per-knob runtimes (for inspection in tests).
func (u *Uncoordinated) Runtimes() []*Runtime { return u.subs }

package core

import (
	"errors"
	"testing"

	"angstrom/internal/actuator"
	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Failure injection: the act phase touches real hardware (or a model of
// it), and hardware refuses sometimes. The runtime must surface errors
// without corrupting its control state.

func TestApplyErrorSurfacesAndStateSurvives(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	mon.SetPerformanceGoal(28, 32)

	failNext := false
	sentinel := errors.New("voltage regulator fault")
	knob := &actuator.Actuator{
		Name: "cores",
		Settings: []actuator.Setting{
			{Label: "1", Effect: actuator.Effect{Speedup: 1, PowerX: 1, Distort: 1}},
			{Label: "4", Effect: actuator.Effect{Speedup: 4, PowerX: 5, Distort: 1}},
		},
		Apply: func(int) error {
			if failNext {
				return sentinel
			}
			return nil
		},
		Scope: actuator.GlobalScope,
		Axes:  []actuator.Axis{actuator.Performance, actuator.Power},
	}
	space, err := actuator.NewSpace(knob)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New("app", clock, mon, space, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy step.
	d, err := rt.Step()
	if err != nil {
		t.Fatal(err)
	}
	// Act phase fails: Apply must wrap the hardware error.
	failNext = true
	if err := rt.Apply(d.HiCfg); !errors.Is(err, sentinel) {
		t.Fatalf("Apply error = %v, want wrapped sentinel", err)
	}
	// Recovery: the runtime keeps deciding.
	failNext = false
	clock.Advance(1)
	mon.Beat()
	clock.Advance(0.1)
	mon.Beat()
	if _, err := rt.Step(); err != nil {
		t.Fatalf("Step after apply failure: %v", err)
	}
}

func TestStepWithNoBeatsUsesBootstrapOnly(t *testing.T) {
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock)
	mon.SetPerformanceGoal(10, 12)
	space := twoKnobSpace(t)
	rt, err := New("app", clock, mon, space, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No beats at all: Step must not panic or divide by zero, and must
	// produce a valid (if uninformed) schedule.
	for i := 0; i < 5; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.HiFrac < 0 || d.HiFrac > 1 {
			t.Fatalf("HiFrac = %g with no observations", d.HiFrac)
		}
		clock.Advance(1)
	}
}

func TestStalledApplicationHoldsEstimate(t *testing.T) {
	// The application beats, converges, then stalls completely (e.g.
	// blocked on IO). The runtime must keep operating on its last
	// estimate rather than exploding.
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(28, 32)
	for i := 0; i < 30; i++ {
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		p.run(d, 1.0)
	}
	// Stall: time passes, no beats. The controller must ramp its demand
	// monotonically toward maximum speedup — the correct response to a
	// stall — without collapsing or oscillating.
	prev := 0.0
	var last float64
	for i := 0; i < 40; i++ {
		p.clock.Advance(1.0)
		d, err := rt.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.TargetSpeedup <= 0 {
			t.Fatalf("demand collapsed to %g during stall", d.TargetSpeedup)
		}
		if d.TargetSpeedup < prev-1e-9 {
			t.Fatalf("demand fell from %g to %g during stall", prev, d.TargetSpeedup)
		}
		prev = d.TargetSpeedup
		last = d.TargetSpeedup
	}
	if last < 5 {
		t.Fatalf("demand = %g after a long stall, want ramped toward max (6)", last)
	}
}

func TestZeroLengthWindowDelta(t *testing.T) {
	// Two Steps at the same instant: the delta-rate path must not divide
	// by zero.
	p, rt := newHarness(t, func(sim.Time) float64 { return 10 })
	p.mon.SetPerformanceGoal(28, 32)
	d, err := rt.Step()
	if err != nil {
		t.Fatal(err)
	}
	p.run(d, 1.0)
	if _, err := rt.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Step(); err != nil { // same timestamp as previous
		t.Fatal(err)
	}
}

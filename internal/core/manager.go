package core

import (
	"fmt"
	"math"
	"sort"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Manager coordinates SEEC across multiple applications competing for a
// shared, partitionable global resource (cores, in both of the paper's
// platforms). This is the scenario §2 contrasts with Bitirgen et al.'s
// closed resource manager: here every application brings its *own* goal
// through the heartbeat interface, and the decision engine allocates the
// shared resource to meet all goals at minimum total cost rather than
// optimizing one fixed system-wide objective.
//
// The mechanism reuses the single-application layers: each application
// gets a Kalman base-speed estimate and an error integrator; each
// period the manager computes every application's resource demand (the
// share that meets its goal under its measured scaling) and resolves
// over-subscription by proportional scaling — the water-filling solution
// for concave per-application utility.
type Manager struct {
	clock sim.Nower
	total int // shared resource units (e.g. cores)
	// oversub permits more applications than units; the surplus is
	// resolved by time-sharing (fractional Allocation.Share).
	oversub bool

	apps   []*managedApp
	byName map[string]*managedApp
}

// managedApp is the per-application control state.
type managedApp struct {
	name string
	mon  *heartbeat.Monitor
	// scaling maps resource units to relative speed (1 unit = 1.0);
	// measured or declared by the platform (e.g. Amdahl curve).
	scaling func(units int) float64

	kfBase    float64 // smoothed base rate: rate at 1 unit
	haveBase  bool
	allocated int
	share     float64 // time share of the allocated units (1 = dedicated)
	// interf is the platform-reported contention factor in (0, 1]: the
	// fraction of the scaling curve's throughput the application
	// actually achieves under current co-location (1 = uncontended).
	interf float64

	prevBeats uint64
	prevTime  sim.Time
}

// NewManager builds a coordinator over `total` resource units.
func NewManager(clock sim.Nower, total int) (*Manager, error) {
	if clock == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	if total < 1 {
		return nil, fmt.Errorf("core: no resource units to manage")
	}
	return &Manager{clock: clock, total: total, byName: make(map[string]*managedApp)}, nil
}

// SetOversubscription switches the manager between refusing enrollment
// beyond one application per unit (the default, matching the paper's
// space-shared platforms) and time-sharing: with oversubscription on, a
// fleet larger than the unit pool is admitted and the surplus resolved
// by fractional time shares (Allocation.Share < 1) instead of refusal.
func (m *Manager) SetOversubscription(on bool) { m.oversub = on }

// Oversubscribed reports whether time-sharing admission is enabled.
func (m *Manager) Oversubscribed() bool { return m.oversub }

// AddApp enrolls an application: its monitor (with a declared
// performance goal) and its resource-scaling curve. Every application
// starts with one unit. Without oversubscription, enrollment beyond one
// application per resource unit is refused.
func (m *Manager) AddApp(name string, mon *heartbeat.Monitor, scaling func(int) float64) error {
	if mon == nil || scaling == nil {
		return fmt.Errorf("core: nil monitor or scaling for %q", name)
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("core: %q already managed", name)
	}
	if !m.oversub && len(m.apps)+1 > m.total {
		return fmt.Errorf("core: %d applications exceed %d resource units", len(m.apps)+1, m.total)
	}
	a := &managedApp{
		name: name, mon: mon, scaling: scaling,
		allocated: 1,
		share:     1,
		interf:    1,
		prevTime:  m.clock.Now(),
	}
	m.apps = append(m.apps, a)
	m.byName[name] = a
	return nil
}

// SetInterference reports the platform's measured contention factor for
// one application: the multiplier (0, 1] by which shared-resource
// contention (memory bandwidth, NoC) degrades its throughput below the
// declared scaling curve. The manager divides it out of the observed
// rate when estimating the base speed, and inflates the application's
// unit demand so the water-filling pass provisions for *contended*
// throughput rather than the per-app projection. Unknown names and
// out-of-range factors are ignored.
func (m *Manager) SetInterference(name string, factor float64) {
	if factor <= 0 || factor > 1 {
		return
	}
	if a, ok := m.byName[name]; ok {
		a.interf = factor
	}
}

// RemoveApp withdraws an application (e.g. at exit), freeing its share
// for the next Step. It reports whether the application was managed.
func (m *Manager) RemoveApp(name string) bool {
	if _, ok := m.byName[name]; !ok {
		return false
	}
	delete(m.byName, name)
	for i, a := range m.apps {
		if a.name == name {
			m.apps = append(m.apps[:i], m.apps[i+1:]...)
			break
		}
	}
	return true
}

// Apps reports how many applications are currently managed.
func (m *Manager) Apps() int { return len(m.apps) }

// Allocation is one application's share after a decision.
type Allocation struct {
	App    string
	Units  int
	Demand float64 // un-rounded units the goal asks for
	// Share is the time share of the allocated units in (0, 1]: 1 means
	// the units are dedicated; below 1 the application time-shares them
	// with others (oversubscribed fleets). Effective core-equivalents
	// are Units × Share.
	Share   float64
	GoalMet bool // demand fit within the partition
}

// Step observes every application, computes demands, and returns the new
// partition (allocations always sum to at most the total; every app
// keeps at least one unit).
func (m *Manager) Step() ([]Allocation, error) {
	if len(m.apps) == 0 {
		return nil, fmt.Errorf("core: no applications enrolled")
	}
	now := m.clock.Now()
	demands := make([]float64, len(m.apps))
	for i, a := range m.apps {
		goals := a.mon.Goals()
		if goals.Performance == nil {
			return nil, fmt.Errorf("core: %q has no performance goal", a.name)
		}
		obs := a.mon.Observe()
		// Interval-average rate since the last decision.
		rate := obs.WindowRate
		if now > a.prevTime {
			rate = float64(obs.Beats-a.prevBeats) / (now - a.prevTime)
		}
		a.prevBeats = obs.Beats
		a.prevTime = now

		if rate > 0 {
			base := rate / (a.scaling(a.allocated) * a.share * a.interf)
			if !a.haveBase {
				a.kfBase = base
				a.haveBase = true
			} else {
				// EWMA: cheap, stable smoothing of the base estimate.
				a.kfBase += 0.3 * (base - a.kfBase)
			}
		}
		target := goals.Performance.Target()
		demands[i] = m.demandUnits(a, target)
	}
	if len(m.apps) > m.total {
		m.partitionShared(demands)
	} else {
		m.partition(demands)
	}
	out := make([]Allocation, len(m.apps))
	for i, a := range m.apps {
		out[i] = Allocation{
			App:     a.name,
			Units:   a.allocated,
			Demand:  demands[i],
			Share:   a.share,
			GoalMet: float64(a.allocated)*a.share >= demands[i],
		}
	}
	return out, nil
}

// demandUnits inverts the application's scaling curve: the smallest unit
// count whose predicted rate meets the target (fractional via linear
// interpolation between unit counts). The contention factor divides the
// target speed: under interference every granted unit delivers only
// interf of its curve throughput, so meeting the same goal takes more
// units.
func (m *Manager) demandUnits(a *managedApp, target float64) float64 {
	if !a.haveBase || a.kfBase <= 0 {
		return 1
	}
	needSpeed := target / (a.kfBase * a.interf)
	prev := a.scaling(1)
	if needSpeed <= prev {
		return needSpeed / prev
	}
	for u := 2; u <= m.total; u++ {
		s := a.scaling(u)
		if s >= needSpeed {
			// Interpolate between u-1 and u.
			if s == prev {
				return float64(u)
			}
			return float64(u-1) + (needSpeed-prev)/(s-prev)
		}
		prev = s
	}
	return float64(m.total)
}

// partition assigns integral units by water-filling: applications are
// served in ascending order of demand; each receives its full (rounded
// up) demand when that fits its progressive fair share, otherwise the
// fair share. Units nobody demands stay unallocated — powering cores an
// application cannot use is exactly the waste SEEC exists to avoid.
// Every application keeps at least one unit.
func (m *Manager) partition(demands []float64) {
	order := make([]int, len(m.apps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if demands[order[i]] != demands[order[j]] {
			return demands[order[i]] < demands[order[j]]
		}
		return order[i] < order[j]
	})
	remaining := m.total
	left := len(order)
	for _, idx := range order {
		fair := float64(remaining) / float64(left)
		want := int(math.Ceil(demands[idx] - 1e-9))
		units := want
		if float64(want) > fair {
			units = int(math.Round(fair))
		}
		if units < 1 {
			units = 1
		}
		if max := remaining - (left - 1); units > max {
			units = max
		}
		m.apps[idx].allocated = units
		m.apps[idx].share = 1
		remaining -= units
		left--
	}
}

// minTimeShare floors an oversubscribed application's time share so a
// starved app still makes observable progress (and its rate measurement
// stays meaningful for the next demand estimate).
const minTimeShare = 0.01

// partitionShared is the oversubscribed counterpart of partition: with
// more applications than units, nobody can hold a dedicated core, so
// every application is pinned to one time-shared unit and the pool is
// water-filled over *fractional* shares. Demand above one core-equivalent
// is unsatisfiable at Units=1 and is clamped; the same progressive
// fair-share walk as the integral case then yields sum(shares) <= total.
func (m *Manager) partitionShared(demands []float64) {
	order := make([]int, len(m.apps))
	want := make([]float64, len(m.apps))
	for i := range order {
		order[i] = i
		w := demands[i]
		if w < minTimeShare {
			w = minTimeShare
		}
		if w > 1 {
			w = 1
		}
		want[i] = w
	}
	sort.Slice(order, func(i, j int) bool {
		if want[order[i]] != want[order[j]] {
			return want[order[i]] < want[order[j]]
		}
		return order[i] < order[j]
	})
	remaining := float64(m.total)
	left := len(order)
	for _, idx := range order {
		fair := remaining / float64(left)
		s := want[idx]
		if s > fair {
			s = fair
		}
		m.apps[idx].allocated = 1
		m.apps[idx].share = s
		remaining -= s
		left--
	}
}

// Allocated reports an application's current share.
func (m *Manager) Allocated(name string) (int, bool) {
	if a, ok := m.byName[name]; ok {
		return a.allocated, true
	}
	return 0, false
}

package core

import (
	"fmt"
	"math"
	"sort"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Manager coordinates SEEC across multiple applications competing for a
// shared, partitionable global resource (cores, in both of the paper's
// platforms). This is the scenario §2 contrasts with Bitirgen et al.'s
// closed resource manager: here every application brings its *own* goal
// through the heartbeat interface, and the decision engine allocates the
// shared resource to meet all goals at minimum total cost rather than
// optimizing one fixed system-wide objective.
//
// The mechanism reuses the single-application layers: each application
// gets a Kalman base-speed estimate and an error integrator; each
// period the manager computes every application's resource demand (the
// share that meets its goal under its measured scaling) and resolves
// over-subscription by proportional scaling — the water-filling solution
// for concave per-application utility.
//
// Step is incremental so the pass stays cheap at fleet scale (10k+
// applications): per-application demands are cached and re-priced only
// when their inputs (base-speed estimate, goal target, interference
// factor) move, the demand inversion binary-searches the scaling curve's
// verified monotone prefix instead of walking every unit, and the
// water-fill ordering is patched in place when few demands changed —
// falling back to a full deterministic sort past a threshold or after
// any membership change. Every shortcut is byte-identical to the full
// recompute (SetIncremental(false) forces the reference path; the
// property tests drive both in lockstep).
type Manager struct {
	clock sim.Nower
	total int // shared resource units (e.g. cores)
	// budget caps the units the water-fill may hand out this period
	// (0 = the full total). A federation broker moves it tick to tick;
	// total stays fixed as the scaling-curve domain and admission bound,
	// so cached demands survive budget changes.
	budget int
	// oversub permits more applications than units; the surplus is
	// resolved by time-sharing (fractional Allocation.Share).
	oversub bool
	// lastPool / lastOversub detect walk-input changes that do not move
	// any per-app sort key (a broker budget change, a mode flip).
	lastPool     int
	lastOversub  bool
	haveLastPool bool
	// incremental enables demand caching, binary-search inversion, and
	// in-place order patching; false forces the reference full recompute.
	incremental bool

	apps   []*managedApp
	byName map[string]*managedApp
	// freeIDs recycles the stable integer handles of removed apps so
	// ID-indexed caller tables stay bounded by the peak fleet size.
	freeIDs []int
	nextID  int
	// out is the Allocation buffer Step returns, reused across calls.
	out []Allocation

	// Running water-fill structure: apps indices sorted by
	// (sortKey, index). orderValid goes false whenever membership changes
	// (indices shift and the space-shared/oversubscribed mode may flip).
	order      []int
	orderValid bool
	changed    []int  // scratch: indices whose sort key moved this Step
	scratch    []int  // scratch: surviving order entries during a patch
	inChanged  []bool // scratch: membership bitmap for the patch filter
}

// managedApp is the per-application control state.
type managedApp struct {
	name string
	id   int // stable handle, recycled after removal
	mon  *heartbeat.Monitor
	// scaling maps resource units to relative speed (1 unit = 1.0);
	// measured or declared by the platform (e.g. Amdahl curve).
	scaling func(units int) float64

	kfBase    float64 // smoothed base rate: rate at 1 unit
	haveBase  bool
	allocated int
	share     float64 // time share of the allocated units (1 = dedicated)
	// interf is the platform-reported contention factor in (0, 1]: the
	// fraction of the scaling curve's throughput the application
	// actually achieves under current co-location (1 = uncontended).
	interf float64
	// weight is the water-fill priority weight (default 1): under
	// scarcity an application's progressive fair share is proportional
	// to its weight, so a weight-4 SLO class outbids a weight-1
	// best-effort class 4:1 for the contended remainder while demands
	// that fit are still served exactly.
	weight float64

	prevBeats uint64
	prevTime  sim.Time

	// Cached demand, valid while (kfBase, target, interf) are unchanged.
	demand      float64
	demandValid bool
	lastBase    float64
	lastTarget  float64
	lastInterf  float64
	// sortKey is the water-fill ordering key: the raw demand when the
	// pool is space-shared, the clamped time-share want when
	// oversubscribed (the walk consumes exactly this key, so an
	// unchanged key means an unchanged partition for this app).
	sortKey float64

	// Scaling-curve shape, verified once at AddApp: peak is the last
	// unit of the longest non-decreasing prefix; unimodal records that
	// no later unit exceeds the prefix maximum, which makes a binary
	// search over [2, peak] exactly equivalent to the linear scan.
	peak     int
	unimodal bool
}

// NewManager builds a coordinator over `total` resource units.
func NewManager(clock sim.Nower, total int) (*Manager, error) {
	if clock == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	if total < 1 {
		return nil, fmt.Errorf("core: no resource units to manage")
	}
	return &Manager{clock: clock, total: total, incremental: true, byName: make(map[string]*managedApp)}, nil
}

// SetOversubscription switches the manager between refusing enrollment
// beyond one application per unit (the default, matching the paper's
// space-shared platforms) and time-sharing: with oversubscription on, a
// fleet larger than the unit pool is admitted and the surplus resolved
// by fractional time shares (Allocation.Share < 1) instead of refusal.
func (m *Manager) SetOversubscription(on bool) { m.oversub = on }

// Oversubscribed reports whether time-sharing admission is enabled.
func (m *Manager) Oversubscribed() bool { return m.oversub }

// SetBudget caps the units the next Step's water-fill may distribute.
// A federation broker calls it each tick to move the global pool
// between per-chip managers; the scaling-curve domain (total) and the
// admission bound are unaffected, so cached demands stay valid. 0
// restores the full pool. The budget is journaled tick state: inside
// the daemon only the tick writer calls it.
//
//angstrom:journaled mutator
func (m *Manager) SetBudget(units int) error {
	if units < 0 || units > m.total {
		return fmt.Errorf("core: budget %d outside [0, %d]", units, m.total)
	}
	m.budget = units
	return nil
}

// Budget reports the current water-fill pool: the broker-set budget, or
// the full total when none is set.
func (m *Manager) Budget() int {
	if m.budget > 0 {
		return m.budget
	}
	return m.total
}

// AggregateDemand sums the fleet's cached unit demands as of the last
// Step — the RLS/EWMA-corrected need a federation broker splits the
// global budget by. Before the first Step it is zero (the broker's
// floors then drive an even split).
func (m *Manager) AggregateDemand() float64 {
	var d float64
	for _, a := range m.apps {
		d += a.demand
	}
	return d
}

// SetIncremental toggles the incremental Step machinery (on by
// default). With it off every Step re-prices every demand with the
// linear scaling-curve scan, fully re-sorts, and re-walks the
// water-fill — the reference algorithm the incremental path must match
// byte for byte. Tests drive both modes in lockstep to enforce that.
func (m *Manager) SetIncremental(on bool) { m.incremental = on }

// VerifyCurve inspects a scaling curve once: the longest non-decreasing
// prefix [1, peak], and whether the tail beyond it ever exceeds the
// prefix maximum. For unimodal curves (Amdahl plus a synchronization
// penalty: rising to a peak, then declining) the answer is no, and the
// demand inversion can binary-search the prefix; any other shape keeps
// the exact linear scan. AddApp runs it per enrollment; callers
// enrolling fleets over a handful of shared curves memoize the result
// and enroll through AddAppWithShape instead.
func VerifyCurve(scaling func(int) float64, total int) (peak int, unimodal bool) {
	peak = 1
	prev := scaling(1)
	u := 2
	for ; u <= total; u++ {
		s := scaling(u)
		if !(s >= prev) { // NaN or a decrease ends the prefix
			break
		}
		prev = s
		peak = u
	}
	for ; u <= total; u++ {
		if !(scaling(u) <= prev) {
			return peak, false
		}
	}
	return peak, true
}

// AddApp enrolls an application: its monitor (with a declared
// performance goal) and its resource-scaling curve. Every application
// starts with one unit. Without oversubscription, enrollment beyond one
// application per resource unit is refused. Fleet membership is
// journaled daemon state: inside internal/server only persist.go
// writers may call it.
//
//angstrom:journaled mutator
func (m *Manager) AddApp(name string, mon *heartbeat.Monitor, scaling func(int) float64) error {
	if scaling == nil {
		return fmt.Errorf("core: nil scaling for %q", name)
	}
	peak, unimodal := VerifyCurve(scaling, m.total)
	return m.AddAppWithShape(name, mon, scaling, peak, unimodal)
}

// AddAppWithShape is AddApp for callers that already know the curve's
// verified shape (peak of the non-decreasing prefix, unimodality) —
// typically because many applications share one memoized curve and the
// O(total) VerifyCurve scan only needs to run once per curve, not once
// per enrollment. The shape must come from VerifyCurve over the same
// curve and total; a wrong shape silently degrades demand inversion.
//
//angstrom:journaled mutator
func (m *Manager) AddAppWithShape(name string, mon *heartbeat.Monitor, scaling func(int) float64, peak int, unimodal bool) error {
	if mon == nil || scaling == nil {
		return fmt.Errorf("core: nil monitor or scaling for %q", name)
	}
	if _, dup := m.byName[name]; dup {
		return fmt.Errorf("core: %q already managed", name)
	}
	if !m.oversub && len(m.apps)+1 > m.total {
		return fmt.Errorf("core: %d applications exceed %d resource units", len(m.apps)+1, m.total)
	}
	a := &managedApp{
		name: name, mon: mon, scaling: scaling,
		allocated: 1,
		share:     1,
		interf:    1,
		weight:    1,
		prevTime:  m.clock.Now(),
		peak:      peak,
		unimodal:  unimodal,
	}
	if k := len(m.freeIDs); k > 0 {
		a.id = m.freeIDs[k-1]
		m.freeIDs = m.freeIDs[:k-1]
	} else {
		a.id = m.nextID
		m.nextID++
	}
	m.apps = append(m.apps, a)
	m.byName[name] = a
	m.orderValid = false
	return nil
}

// AppID reports an application's stable integer handle: assigned at
// AddApp, recycled after RemoveApp, and always below the peak
// concurrent fleet size. Callers index per-app state by it to keep
// their per-tick paths free of string hashing.
func (m *Manager) AppID(name string) (int, bool) {
	if a, ok := m.byName[name]; ok {
		return a.id, true
	}
	return 0, false
}

// SetInterference reports the platform's measured contention factor for
// one application: the multiplier (0, 1] by which shared-resource
// contention (memory bandwidth, NoC) degrades its throughput below the
// declared scaling curve. The manager divides it out of the observed
// rate when estimating the base speed, and inflates the application's
// unit demand so the water-filling pass provisions for *contended*
// throughput rather than the per-app projection. Unknown names and
// out-of-range factors are ignored. Interference feeds the journaled
// tick's water-fill, so inside the daemon only tick writers call it.
//
//angstrom:journaled mutator
func (m *Manager) SetInterference(name string, factor float64) {
	if factor <= 0 || factor > 1 {
		return
	}
	if a, ok := m.byName[name]; ok {
		a.interf = factor
	}
}

// SetPriority sets an application's water-fill weight: under scarcity
// the progressive fair share each application may claim is proportional
// to its weight (all weights default to 1, which reproduces the
// unweighted walk bit for bit). Demands that fit inside the weighted
// fair share are still served exactly — priority buys a larger slice of
// a contended pool, not idle cores. Weights are journaled fleet state:
// inside internal/server only persist.go writers may call it.
//
//angstrom:journaled mutator
func (m *Manager) SetPriority(name string, weight float64) error {
	if math.IsNaN(weight) || math.IsInf(weight, 0) || weight <= 0 {
		return fmt.Errorf("core: priority weight %g for %q outside (0, +Inf)", weight, name)
	}
	a, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("core: %q not managed", name)
	}
	if a.weight == weight {
		return nil
	}
	a.weight = weight
	// A weight reshapes every application's progressive fair share, not
	// just this one's: force the next Step through the full sort + walk.
	m.orderValid = false
	return nil
}

// Priority reports an application's water-fill weight.
func (m *Manager) Priority(name string) (float64, bool) {
	if a, ok := m.byName[name]; ok {
		return a.weight, true
	}
	return 0, false
}

// RemoveApp withdraws an application (e.g. at exit), freeing its share
// for the next Step. It reports whether the application was managed.
//
//angstrom:journaled mutator
func (m *Manager) RemoveApp(name string) bool {
	if _, ok := m.byName[name]; !ok {
		return false
	}
	delete(m.byName, name)
	for i, a := range m.apps {
		if a.name == name {
			m.freeIDs = append(m.freeIDs, a.id)
			m.apps = append(m.apps[:i], m.apps[i+1:]...)
			break
		}
	}
	m.orderValid = false
	return true
}

// Apps reports how many applications are currently managed.
func (m *Manager) Apps() int { return len(m.apps) }

// Allocation is one application's share after a decision.
type Allocation struct {
	App string
	// ID is the app's stable integer handle (see AppID): hot paths
	// index by it instead of hashing App.
	ID     int
	Units  int
	Demand float64 // un-rounded units the goal asks for
	// Share is the time share of the allocated units in (0, 1]: 1 means
	// the units are dedicated; below 1 the application time-shares them
	// with others (oversubscribed fleets). Effective core-equivalents
	// are Units × Share.
	Share   float64
	GoalMet bool // demand fit within the partition
}

// Step observes every application, computes demands, and returns the new
// partition (allocations always sum to at most the total; every app
// keeps at least one unit). Only applications whose demand inputs moved
// since the previous Step are re-priced; when no water-fill key changed
// the previous partition stands and the walk is skipped entirely. The
// returned slice is valid until the next Step (the buffer is reused).
// Step advances journaled fleet state (allocations, demand caches), so
// inside the daemon only the tick writer calls it.
//
//angstrom:journaled mutator
func (m *Manager) Step() ([]Allocation, error) {
	if len(m.apps) == 0 {
		return nil, fmt.Errorf("core: no applications enrolled")
	}
	now := m.clock.Now()
	n := len(m.apps)
	pool := m.Budget()
	oversub := n > pool
	// A budget move or an oversubscription flip changes the walk's
	// inputs (and the sort key's meaning) without touching any per-app
	// key: force the walk, and on a mode flip the full sort too.
	poolMoved := !m.haveLastPool || pool != m.lastPool
	if m.haveLastPool && oversub != m.lastOversub {
		m.orderValid = false
	}
	m.lastPool, m.lastOversub, m.haveLastPool = pool, oversub, true
	m.changed = m.changed[:0]
	anyKeyChanged := false
	for i, a := range m.apps {
		minRate, maxRate, ok := a.mon.PerformanceBand()
		if !ok {
			return nil, fmt.Errorf("core: %q has no performance goal", a.name)
		}
		count := a.mon.Count()
		// Interval-average rate since the last decision.
		var rate float64
		if now > a.prevTime {
			rate = float64(count-a.prevBeats) / (now - a.prevTime)
		} else {
			rate = a.mon.Observe().WindowRate
		}
		a.prevBeats = count
		a.prevTime = now

		if rate > 0 {
			base := rate / (a.scaling(a.allocated) * a.share * a.interf)
			if !a.haveBase {
				a.kfBase = base
				a.haveBase = true
			} else {
				// EWMA: cheap, stable smoothing of the base estimate.
				a.kfBase += 0.3 * (base - a.kfBase)
			}
		}
		target := heartbeat.PerformanceGoal{MinRate: minRate, MaxRate: maxRate}.Target()
		if !m.incremental || !a.demandValid ||
			a.kfBase != a.lastBase || target != a.lastTarget || a.interf != a.lastInterf {
			a.demand = m.demandUnits(a, target)
			a.lastBase, a.lastTarget, a.lastInterf = a.kfBase, target, a.interf
			a.demandValid = true
		}
		key := a.demand
		if oversub {
			// partitionShared consumes the clamped time-share want; using
			// it as the ordering key means an unchanged key is exactly an
			// unchanged walk input for this app.
			key = clampShareWant(a.demand)
		}
		if key != a.sortKey || !m.orderValid {
			a.sortKey = key
			if m.orderValid {
				m.changed = append(m.changed, i)
			}
			anyKeyChanged = true
		}
	}

	runWalk := true
	switch {
	case !m.incremental || !m.orderValid:
		m.fullSort()
	case !anyKeyChanged:
		// Same membership, same keys, same pool: the previous partition
		// is byte-identical to what a full recompute would produce.
		runWalk = poolMoved
	case len(m.changed)*8 > n:
		m.fullSort()
	default:
		m.patchOrder()
	}
	if runWalk {
		if oversub {
			m.partitionShared(pool)
		} else {
			m.partition(pool)
		}
	}

	// The returned slice is reused by the next Step: callers that keep
	// allocations across decisions copy what they need.
	if cap(m.out) < n {
		m.out = make([]Allocation, n)
	}
	out := m.out[:n]
	for i, a := range m.apps {
		out[i] = Allocation{
			App:     a.name,
			ID:      a.id,
			Units:   a.allocated,
			Demand:  a.demand,
			Share:   a.share,
			GoalMet: float64(a.allocated)*a.share >= a.demand,
		}
	}
	return out, nil
}

// demandUnits inverts the application's scaling curve: the smallest unit
// count whose predicted rate meets the target (fractional via linear
// interpolation between unit counts). The contention factor divides the
// target speed: under interference every granted unit delivers only
// interf of its curve throughput, so meeting the same goal takes more
// units. Curves verified unimodal at AddApp are binary-searched over
// their monotone prefix — identical output to the linear scan, O(log
// total) instead of O(total); any other shape takes the scan.
func (m *Manager) demandUnits(a *managedApp, target float64) float64 {
	if !a.haveBase || a.kfBase <= 0 {
		return 1
	}
	needSpeed := target / (a.kfBase * a.interf)
	prev := a.scaling(1)
	if needSpeed <= prev {
		return needSpeed / prev
	}
	if m.incremental && a.unimodal {
		if a.peak < 2 || a.scaling(a.peak) < needSpeed {
			// Nothing in the prefix reaches needSpeed, and the tail never
			// exceeds the prefix maximum: the scan would come up empty.
			return float64(m.total)
		}
		lo, hi := 2, a.peak
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if a.scaling(mid) >= needSpeed {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		s, p := a.scaling(lo), a.scaling(lo-1)
		if s == p {
			return float64(lo)
		}
		return float64(lo-1) + (needSpeed-p)/(s-p)
	}
	for u := 2; u <= m.total; u++ {
		s := a.scaling(u)
		if s >= needSpeed {
			// Interpolate between u-1 and u.
			if s == prev {
				return float64(u)
			}
			return float64(u-1) + (needSpeed-prev)/(s-prev)
		}
		prev = s
	}
	return float64(m.total)
}

// keyLess is the water-fill ordering: ascending sort key, ties broken
// by enrollment index — a strict total order, so every maintenance
// strategy (full sort, patch-and-merge) yields the same sequence.
func (m *Manager) keyLess(a, b int) bool {
	if m.apps[a].sortKey != m.apps[b].sortKey {
		return m.apps[a].sortKey < m.apps[b].sortKey
	}
	return a < b
}

// fullSort rebuilds the water-fill order from scratch.
func (m *Manager) fullSort() {
	n := len(m.apps)
	if cap(m.order) < n {
		m.order = make([]int, n)
	}
	m.order = m.order[:n]
	for i := range m.order {
		m.order[i] = i
	}
	sort.Slice(m.order, func(i, j int) bool { return m.keyLess(m.order[i], m.order[j]) })
	m.orderValid = true
}

// patchOrder re-sorts in place after a small changed set: the surviving
// entries keep their relative order (their keys did not move), the
// changed entries are sorted among themselves and merged back in.
// Because keyLess is a strict total order the result is the unique
// sorted sequence — byte-identical to a full sort.
func (m *Manager) patchOrder() {
	n := len(m.apps)
	if cap(m.inChanged) < n {
		m.inChanged = make([]bool, n)
	}
	mark := m.inChanged[:n]
	for _, idx := range m.changed {
		mark[idx] = true
	}
	kept := m.scratch[:0]
	for _, idx := range m.order {
		if !mark[idx] {
			kept = append(kept, idx)
		}
	}
	m.scratch = kept
	for _, idx := range m.changed {
		mark[idx] = false
	}
	sort.Slice(m.changed, func(i, j int) bool { return m.keyLess(m.changed[i], m.changed[j]) })
	m.order = m.order[:0]
	i, j := 0, 0
	for i < len(kept) && j < len(m.changed) {
		if m.keyLess(kept[i], m.changed[j]) {
			m.order = append(m.order, kept[i])
			i++
		} else {
			m.order = append(m.order, m.changed[j])
			j++
		}
	}
	m.order = append(m.order, kept[i:]...)
	m.order = append(m.order, m.changed[j:]...)
}

// partition assigns integral units by water-filling: applications are
// served in ascending order of demand; each receives its full (rounded
// up) demand when that fits its progressive fair share, otherwise the
// fair share. The fair share is weight-proportional (weightedFair): with
// the default weight 1 everywhere it is exactly remaining/left. Units
// nobody demands stay unallocated — powering cores an application
// cannot use is exactly the waste SEEC exists to avoid. Every
// application keeps at least one unit.
func (m *Manager) partition(pool int) {
	remaining := pool
	left := len(m.order)
	weightLeft := m.weightLeft()
	for _, idx := range m.order {
		a := m.apps[idx]
		fair := weightedFair(float64(remaining), a.weight, weightLeft, left)
		want := int(math.Ceil(a.demand - 1e-9))
		units := want
		if float64(want) > fair {
			units = int(math.Round(fair))
		}
		if units < 1 {
			units = 1
		}
		if max := remaining - (left - 1); units > max {
			units = max
		}
		a.allocated = units
		a.share = 1
		remaining -= units
		left--
		weightLeft -= a.weight
	}
}

// weightLeft sums the water-fill weights over the current order — the
// denominator of the first weighted fair share. Summing small integral
// weights is exact, so the all-ones fleet reproduces float64(left).
func (m *Manager) weightLeft() float64 {
	total := 0.0
	for _, idx := range m.order {
		total += m.apps[idx].weight
	}
	return total
}

// weightedFair is one application's progressive fair share of the
// remaining pool: remaining × weight / weightLeft, falling back to the
// unweighted remaining/left if accumulated subtraction ever drove the
// weight denominator to zero ahead of the count.
func weightedFair(remaining, weight, weightLeft float64, left int) float64 {
	if weightLeft > 0 {
		return remaining * weight / weightLeft
	}
	return remaining / float64(left)
}

// minTimeShare floors an oversubscribed application's time share so a
// starved app still makes observable progress (and its rate measurement
// stays meaningful for the next demand estimate).
const minTimeShare = 0.01

// clampShareWant turns a unit demand into the time-share want of the
// oversubscribed walk: demand above one core-equivalent is
// unsatisfiable at Units=1 and is clamped, and every app floors at
// minTimeShare.
func clampShareWant(demand float64) float64 {
	if demand < minTimeShare {
		return minTimeShare
	}
	if demand > 1 {
		return 1
	}
	return demand
}

// partitionShared is the oversubscribed counterpart of partition: with
// more applications than units, nobody can hold a dedicated core, so
// every application is pinned to one time-shared unit and the pool is
// water-filled over *fractional* shares. The sort key already carries
// the clamped want; the same progressive fair-share walk as the
// integral case then yields sum(shares) <= pool.
func (m *Manager) partitionShared(pool int) {
	remaining := float64(pool)
	left := len(m.order)
	weightLeft := m.weightLeft()
	for _, idx := range m.order {
		a := m.apps[idx]
		fair := weightedFair(remaining, a.weight, weightLeft, left)
		s := a.sortKey
		if s > fair {
			s = fair
		}
		a.allocated = 1
		a.share = s
		remaining -= s
		left--
		weightLeft -= a.weight
	}
}

// Allocated reports an application's current share.
func (m *Manager) Allocated(name string) (int, bool) {
	if a, ok := m.byName[name]; ok {
		return a.allocated, true
	}
	return 0, false
}

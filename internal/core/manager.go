package core

import (
	"fmt"
	"math"
	"sort"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
)

// Manager coordinates SEEC across multiple applications competing for a
// shared, partitionable global resource (cores, in both of the paper's
// platforms). This is the scenario §2 contrasts with Bitirgen et al.'s
// closed resource manager: here every application brings its *own* goal
// through the heartbeat interface, and the decision engine allocates the
// shared resource to meet all goals at minimum total cost rather than
// optimizing one fixed system-wide objective.
//
// The mechanism reuses the single-application layers: each application
// gets a Kalman base-speed estimate and an error integrator; each
// period the manager computes every application's resource demand (the
// share that meets its goal under its measured scaling) and resolves
// over-subscription by proportional scaling — the water-filling solution
// for concave per-application utility.
type Manager struct {
	clock sim.Nower
	total int // shared resource units (e.g. cores)

	apps []*managedApp
}

// managedApp is the per-application control state.
type managedApp struct {
	name string
	mon  *heartbeat.Monitor
	// scaling maps resource units to relative speed (1 unit = 1.0);
	// measured or declared by the platform (e.g. Amdahl curve).
	scaling func(units int) float64

	kfBase    float64 // smoothed base rate: rate at 1 unit
	haveBase  bool
	allocated int

	prevBeats uint64
	prevTime  sim.Time
}

// NewManager builds a coordinator over `total` resource units.
func NewManager(clock sim.Nower, total int) (*Manager, error) {
	if clock == nil {
		return nil, fmt.Errorf("core: nil clock")
	}
	if total < 1 {
		return nil, fmt.Errorf("core: no resource units to manage")
	}
	return &Manager{clock: clock, total: total}, nil
}

// AddApp enrolls an application: its monitor (with a declared
// performance goal) and its resource-scaling curve. Every application
// starts with one unit.
func (m *Manager) AddApp(name string, mon *heartbeat.Monitor, scaling func(int) float64) error {
	if mon == nil || scaling == nil {
		return fmt.Errorf("core: nil monitor or scaling for %q", name)
	}
	for _, a := range m.apps {
		if a.name == name {
			return fmt.Errorf("core: %q already managed", name)
		}
	}
	if len(m.apps)+1 > m.total {
		return fmt.Errorf("core: %d applications exceed %d resource units", len(m.apps)+1, m.total)
	}
	m.apps = append(m.apps, &managedApp{
		name: name, mon: mon, scaling: scaling,
		allocated: 1,
		prevTime:  m.clock.Now(),
	})
	return nil
}

// RemoveApp withdraws an application (e.g. at exit), freeing its share
// for the next Step. It reports whether the application was managed.
func (m *Manager) RemoveApp(name string) bool {
	for i, a := range m.apps {
		if a.name == name {
			m.apps = append(m.apps[:i], m.apps[i+1:]...)
			return true
		}
	}
	return false
}

// Apps reports how many applications are currently managed.
func (m *Manager) Apps() int { return len(m.apps) }

// Allocation is one application's share after a decision.
type Allocation struct {
	App     string
	Units   int
	Demand  float64 // un-rounded units the goal asks for
	GoalMet bool    // demand fit within the partition
}

// Step observes every application, computes demands, and returns the new
// partition (allocations always sum to at most the total; every app
// keeps at least one unit).
func (m *Manager) Step() ([]Allocation, error) {
	if len(m.apps) == 0 {
		return nil, fmt.Errorf("core: no applications enrolled")
	}
	now := m.clock.Now()
	demands := make([]float64, len(m.apps))
	for i, a := range m.apps {
		goals := a.mon.Goals()
		if goals.Performance == nil {
			return nil, fmt.Errorf("core: %q has no performance goal", a.name)
		}
		obs := a.mon.Observe()
		// Interval-average rate since the last decision.
		rate := obs.WindowRate
		if now > a.prevTime {
			rate = float64(obs.Beats-a.prevBeats) / (now - a.prevTime)
		}
		a.prevBeats = obs.Beats
		a.prevTime = now

		if rate > 0 {
			base := rate / a.scaling(a.allocated)
			if !a.haveBase {
				a.kfBase = base
				a.haveBase = true
			} else {
				// EWMA: cheap, stable smoothing of the base estimate.
				a.kfBase += 0.3 * (base - a.kfBase)
			}
		}
		target := goals.Performance.Target()
		demands[i] = m.demandUnits(a, target)
	}
	m.partition(demands)
	out := make([]Allocation, len(m.apps))
	for i, a := range m.apps {
		out[i] = Allocation{
			App:     a.name,
			Units:   a.allocated,
			Demand:  demands[i],
			GoalMet: float64(a.allocated) >= demands[i],
		}
	}
	return out, nil
}

// demandUnits inverts the application's scaling curve: the smallest unit
// count whose predicted rate meets the target (fractional via linear
// interpolation between unit counts).
func (m *Manager) demandUnits(a *managedApp, target float64) float64 {
	if !a.haveBase || a.kfBase <= 0 {
		return 1
	}
	needSpeed := target / a.kfBase
	prev := a.scaling(1)
	if needSpeed <= prev {
		return needSpeed / prev
	}
	for u := 2; u <= m.total; u++ {
		s := a.scaling(u)
		if s >= needSpeed {
			// Interpolate between u-1 and u.
			if s == prev {
				return float64(u)
			}
			return float64(u-1) + (needSpeed-prev)/(s-prev)
		}
		prev = s
	}
	return float64(m.total)
}

// partition assigns integral units by water-filling: applications are
// served in ascending order of demand; each receives its full (rounded
// up) demand when that fits its progressive fair share, otherwise the
// fair share. Units nobody demands stay unallocated — powering cores an
// application cannot use is exactly the waste SEEC exists to avoid.
// Every application keeps at least one unit.
func (m *Manager) partition(demands []float64) {
	order := make([]int, len(m.apps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if demands[order[i]] != demands[order[j]] {
			return demands[order[i]] < demands[order[j]]
		}
		return order[i] < order[j]
	})
	remaining := m.total
	left := len(order)
	for _, idx := range order {
		fair := float64(remaining) / float64(left)
		want := int(math.Ceil(demands[idx] - 1e-9))
		units := want
		if float64(want) > fair {
			units = int(math.Round(fair))
		}
		if units < 1 {
			units = 1
		}
		if max := remaining - (left - 1); units > max {
			units = max
		}
		m.apps[idx].allocated = units
		remaining -= units
		left--
	}
}

// Allocated reports an application's current share.
func (m *Manager) Allocated(name string) (int, bool) {
	for _, a := range m.apps {
		if a.name == name {
			return a.allocated, true
		}
	}
	return 0, false
}

package angstrom

import (
	"math"
	"testing"
	"testing/quick"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

func TestCounterFileReadAddDelta(t *testing.T) {
	var cf CounterFile
	cf.Add(CtrInstructions, 100)
	cf.Add(CtrL2Misses, 7)
	if cf.Read(CtrInstructions) != 100 || cf.Read(CtrL2Misses) != 7 {
		t.Fatal("counter reads wrong")
	}
	snap := cf.Snapshot()
	cf.Add(CtrInstructions, 50)
	d := cf.Delta(snap)
	if d[CtrInstructions] != 50 || d[CtrL2Misses] != 0 {
		t.Fatalf("delta = %v, want 50 instructions only", d)
	}
	cf.Reset()
	if cf.Read(CtrInstructions) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCounterNames(t *testing.T) {
	if CtrInstructions.String() != "instructions" || CtrEnergyNJ.String() != "energy_nj" {
		t.Fatal("counter names wrong")
	}
	if CounterID(99).String() == "" {
		t.Fatal("unknown counter must still format")
	}
}

func TestEventQueueFIFOAndOverflow(t *testing.T) {
	q, err := NewEventQueue(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		q.Push(Event{Value: uint64(i)})
	}
	if q.Len() != 3 || q.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", q.Len(), q.Dropped())
	}
	for i := 0; i < 3; i++ {
		e, ok := q.Pop()
		if !ok || e.Value != uint64(i) {
			t.Fatalf("Pop %d = %+v, want value %d", i, e, i)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue succeeded")
	}
	if _, err := NewEventQueue(0); err == nil {
		t.Fatal("zero-capacity queue accepted")
	}
}

func TestProbeEdgeTriggeredInterrupt(t *testing.T) {
	var cf CounterFile
	var ps ProbeSet
	fired := 0
	err := ps.Attach(&Probe{
		Counter:   CtrL2Misses,
		Op:        OpGE,
		Trigger:   100,
		Interrupt: func(Event) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	cf.Add(CtrL2Misses, 50)
	ps.Evaluate(&cf, 0)
	if fired != 0 {
		t.Fatal("probe fired below trigger")
	}
	cf.Add(CtrL2Misses, 60) // 110 >= 100
	ps.Evaluate(&cf, 1)
	ps.Evaluate(&cf, 2) // still above: edge-triggered, no refire
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly 1 (edge-triggered)", fired)
	}
}

func TestProbeQueueAndMask(t *testing.T) {
	var cf CounterFile
	var ps ProbeSet
	q, _ := NewEventQueue(8)
	// Watch only the low byte: trigger when low byte == 0x2A.
	if err := ps.Attach(&Probe{
		Counter: CtrInstructions, Op: OpEQ, Trigger: 0x2A, Mask: 0xFF, Queue: q,
	}); err != nil {
		t.Fatal(err)
	}
	cf.Add(CtrInstructions, 0x12A) // low byte 0x2A
	ps.Evaluate(&cf, 5)
	e, ok := q.Pop()
	if !ok || e.Value != 0x12A || e.Time != 5 {
		t.Fatalf("queued event = %+v, want value 0x12A at t=5", e)
	}
}

func TestProbeComparatorOps(t *testing.T) {
	cases := []struct {
		op      CompareOp
		trigger uint64
		value   uint64
		want    bool
	}{
		{OpEQ, 5, 5, true}, {OpEQ, 5, 6, false},
		{OpNE, 5, 6, true}, {OpNE, 5, 5, false},
		{OpLT, 5, 4, true}, {OpLT, 5, 5, false},
		{OpGE, 5, 5, true}, {OpGE, 5, 4, false},
		{OpGT, 5, 6, true}, {OpGT, 5, 5, false},
		{OpLE, 5, 5, true}, {OpLE, 5, 6, false},
	}
	for _, tc := range cases {
		p := Probe{Op: tc.op, Trigger: tc.trigger}
		if got := p.matches(tc.value); got != tc.want {
			t.Errorf("%v %v vs %v = %v, want %v", tc.value, tc.op, tc.trigger, got, tc.want)
		}
	}
}

func TestProbeValidation(t *testing.T) {
	var ps ProbeSet
	if err := ps.Attach(&Probe{Counter: CounterID(99), Interrupt: func(Event) {}}); err == nil {
		t.Fatal("bad counter accepted")
	}
	if err := ps.Attach(&Probe{Counter: CtrCycles}); err == nil {
		t.Fatal("probe without action accepted")
	}
}

func TestThermalApproachesSteadyState(t *testing.T) {
	th, err := NewThermal(45, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		th.Step(2.0, 0.01) // 2 W → steady 45 + 16 = 61°C
	}
	if math.Abs(th.ReadC()-61) > 0.5 {
		t.Fatalf("steady temperature = %g, want ~61", th.ReadC())
	}
	// Power off: must cool toward ambient.
	for i := 0; i < 100; i++ {
		th.Step(0, 0.01)
	}
	if math.Abs(th.ReadC()-45) > 0.5 {
		t.Fatalf("cooled temperature = %g, want ~45", th.ReadC())
	}
}

func TestThermalCoolingFailure(t *testing.T) {
	th, _ := NewThermal(45, 8, 0.05)
	th.SetEnv(70) // cooling failure
	for i := 0; i < 200; i++ {
		th.Step(1.0, 0.01)
	}
	if th.ReadC() < 75 {
		t.Fatalf("temperature %g did not rise after cooling failure", th.ReadC())
	}
	if _, err := NewThermal(45, 0, 1); err == nil {
		t.Fatal("zero thermal resistance accepted")
	}
}

func TestBatteryDrain(t *testing.T) {
	b, err := NewBattery(100)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Drain(40) || math.Abs(b.Fraction()-0.6) > 1e-12 {
		t.Fatalf("fraction = %g after 40 J, want 0.6", b.Fraction())
	}
	if b.Drain(100) {
		t.Fatal("empty battery reported charge")
	}
	if b.RemainingJ() != 0 {
		t.Fatal("battery went negative")
	}
	if _, err := NewBattery(0); err == nil {
		t.Fatal("zero-capacity battery accepted")
	}
}

func TestEnergySensorAccumulates(t *testing.T) {
	var e EnergySensor
	e.Add(1.5)
	e.Add(2.5)
	if e.EnergyJoules() != 4 {
		t.Fatalf("EnergyJoules = %g, want 4", e.EnergyJoules())
	}
}

func TestCoreEnergyModel(t *testing.T) {
	ce := DefaultCoreEnergy()
	if err := ce.Validate(); err != nil {
		t.Fatal(err)
	}
	// The design anchor: ~10 pJ/cycle at the 0.4 V point (paper's [17]
	// demonstrates 10.2 pJ/cycle at 0.54 V for this class of core).
	if got := ce.DynamicPJPerCycle(0.4); math.Abs(got-10) > 0.1 {
		t.Fatalf("E/cycle at 0.4V = %g pJ, want ~10", got)
	}
	if ce.DynamicPJPerCycle(0.8) != 4*ce.DynamicPJPerCycle(0.4) {
		t.Fatal("CV² scaling broken")
	}
	if ce.LeakW(0.4) >= ce.LeakW(0.8) {
		t.Fatal("leakage must drop at low voltage")
	}
}

func TestPartnerCoreCheaperThanMain(t *testing.T) {
	var cf CounterFile
	q, _ := NewEventQueue(4)
	pc, err := NewPartnerCore(VFPoints()[1], DefaultCoreEnergy(), &cf, q)
	if err != nil {
		t.Fatal(err)
	}
	onPartner := pc.RunDecision(1e6)
	onMain := pc.RunDecisionOnMain(1e6)
	if onPartner.Joules >= onMain.Joules {
		t.Fatalf("partner energy %g J not below main %g J", onPartner.Joules, onMain.Joules)
	}
	if onPartner.Seconds <= onMain.Seconds {
		t.Fatal("partner core should be slower than the main core")
	}
	// §4.3: ~10% power. Energy ratio = powerRatio × timeRatio.
	wantJ := onMain.Joules * 0.1 * (onMain.Seconds / onPartner.Seconds)
	_ = wantJ
	ratio := onPartner.Joules / onMain.Joules
	if ratio > 0.95 {
		t.Fatalf("partner/main energy ratio = %g, want well below 1", ratio)
	}
}

func TestPartnerCoreDrainsEvents(t *testing.T) {
	var cf CounterFile
	q, _ := NewEventQueue(8)
	pc, _ := NewPartnerCore(VFPoints()[0], DefaultCoreEnergy(), &cf, q)
	for i := 0; i < 5; i++ {
		q.Push(Event{Value: uint64(i)})
	}
	ev := pc.DrainEvents(3)
	if len(ev) != 3 || ev[0].Value != 0 {
		t.Fatalf("DrainEvents = %+v, want first 3 events", ev)
	}
	if len(pc.DrainEvents(10)) != 2 {
		t.Fatal("remaining events wrong")
	}
}

func defaultSpec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvaluateValidation(t *testing.T) {
	p := DefaultParams()
	spec := defaultSpec(t, "barnes")
	bad := []Config{
		{Cores: 0, CacheKB: 64, VF: 0},
		{Cores: 3, CacheKB: 64, VF: 0},
		{Cores: 4, CacheKB: 0, VF: 0},
		{Cores: 4, CacheKB: 64, VF: 9},
		{Cores: 2048, CacheKB: 64, VF: 0},
	}
	for _, cfg := range bad {
		if _, err := Evaluate(p, spec, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
	if _, err := Evaluate(p, spec, Config{Cores: 4, CacheKB: 64, VF: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluatePerformanceScalesWithCores(t *testing.T) {
	p := DefaultParams()
	barnes := defaultSpec(t, "barnes")
	prev := 0.0
	for c := 1; c <= 256; c *= 4 {
		m, err := Evaluate(p, barnes, Config{Cores: c, CacheKB: 64, VF: 1})
		if err != nil {
			t.Fatal(err)
		}
		if m.HeartRate <= prev {
			t.Fatalf("barnes heart rate not increasing at %d cores", c)
		}
		prev = m.HeartRate
	}
}

func TestEvaluateVolrendSaturates(t *testing.T) {
	p := DefaultParams()
	volrend := defaultSpec(t, "volrend")
	m64, _ := Evaluate(p, volrend, Config{Cores: 64, CacheKB: 64, VF: 1})
	m256, _ := Evaluate(p, volrend, Config{Cores: 256, CacheKB: 64, VF: 1})
	if m256.HeartRate > m64.HeartRate*1.3 {
		t.Fatalf("volrend gained %gx from 64→256 cores; should saturate",
			m256.HeartRate/m64.HeartRate)
	}
	if m256.PowerW <= m64.PowerW {
		t.Fatal("more cores must cost more power")
	}
}

func TestEvaluateDVFSTradeoff(t *testing.T) {
	p := DefaultParams()
	water := defaultSpec(t, "water")
	lo, _ := Evaluate(p, water, Config{Cores: 16, CacheKB: 64, VF: 0})
	hi, _ := Evaluate(p, water, Config{Cores: 16, CacheKB: 64, VF: 1})
	if hi.HeartRate <= lo.HeartRate {
		t.Fatal("higher frequency must be faster")
	}
	if hi.PowerW <= lo.PowerW {
		t.Fatal("higher V/f must cost more power")
	}
	// Energy per instruction beyond idle must be better at the
	// low-voltage point — that is the whole point of voltage scaling.
	// (Beyond idle, because the fixed uncore power amortizes over
	// whatever throughput exists; the paper's §5.2 metric subtracts idle
	// for the same reason.)
	loEPI := (lo.PowerW - p.UncoreW) / lo.IPS
	hiEPI := (hi.PowerW - p.UncoreW) / hi.IPS
	if loEPI >= hiEPI {
		t.Fatalf("low-voltage energy/instr %g pJ not below high-voltage %g pJ",
			loEPI*1e12, hiEPI*1e12)
	}
}

func TestEvaluateCacheHelpsOcean(t *testing.T) {
	p := DefaultParams()
	ocean := defaultSpec(t, "ocean")
	small, _ := Evaluate(p, ocean, Config{Cores: 64, CacheKB: 32, VF: 1})
	big, _ := Evaluate(p, ocean, Config{Cores: 64, CacheKB: 128, VF: 1})
	if big.HeartRate <= small.HeartRate {
		t.Fatal("ocean must speed up with more cache")
	}
	if big.MissRate >= small.MissRate {
		t.Fatal("bigger cache must lower miss rate")
	}
}

func TestEvaluateNUCAHelpsCapacityBoundWorkload(t *testing.T) {
	p := DefaultParams()
	ocean := defaultSpec(t, "ocean") // 12 MB working set
	cfg := Config{Cores: 256, CacheKB: 64, VF: 1}
	dir, _ := Evaluate(p, ocean, cfg)
	cfg.Coherence = CoherenceNUCA
	nuca, _ := Evaluate(p, ocean, cfg)
	if nuca.MissRate >= dir.MissRate {
		t.Fatalf("NUCA miss rate %g not below directory %g for ocean", nuca.MissRate, dir.MissRate)
	}
	// And the adaptive protocol must not be worse than both.
	cfg.Coherence = CoherenceAdaptive
	ad, _ := Evaluate(p, ocean, cfg)
	if ad.HeartRate < math.Min(dir.HeartRate, nuca.HeartRate)*0.97 {
		t.Fatal("adaptive protocol worse than both fixed protocols")
	}
}

func TestEvaluateEVCReducesNetworkLatency(t *testing.T) {
	p := DefaultParams()
	barnes := defaultSpec(t, "barnes")
	cfg := Config{Cores: 256, CacheKB: 64, VF: 1}
	base, _ := Evaluate(p, barnes, cfg)
	cfg.EVC = true
	evc, _ := Evaluate(p, barnes, cfg)
	if evc.NetCycles >= base.NetCycles {
		t.Fatal("EVC must cut average network latency on a big mesh")
	}
	if evc.HeartRate <= base.HeartRate {
		t.Fatal("lower network latency must help performance")
	}
}

func TestEvaluateDeterministicProperty(t *testing.T) {
	p := DefaultParams()
	specs := workload.Specs()
	f := func(ci, ki, vi, si uint8) bool {
		cores := 1 << (ci % 9)
		kbs := []int{16, 32, 64, 128, 256}
		cfg := Config{Cores: cores, CacheKB: kbs[int(ki)%len(kbs)], VF: int(vi) % 2}
		spec := specs[int(si)%len(specs)]
		a, err1 := Evaluate(p, spec, cfg)
		b, err2 := Evaluate(p, spec, cfg)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil
		}
		if a != b {
			return false
		}
		return a.HeartRate > 0 && a.PowerW > 0 && a.CPI >= 1 &&
			a.MissRate >= 0 && a.MissRate <= 1 && a.MemRho >= 0 && a.MemRho <= 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfPerWatt(t *testing.T) {
	p := DefaultParams()
	m := Metrics{HeartRate: 100, PowerW: p.UncoreW + 2}
	if got := p.PerfPerWatt(m, 50); math.Abs(got-25) > 1e-12 {
		t.Fatalf("PerfPerWatt = %g, want 25 (capped at target)", got)
	}
	if got := p.PerfPerWatt(Metrics{HeartRate: 1, PowerW: p.UncoreW}, 1); got != 0 {
		t.Fatal("zero beyond-idle power must yield 0, not Inf")
	}
}

func TestEvaluateDetailedAgreesWithStatistical(t *testing.T) {
	// The two modes share the assembler; the trace-driven caches should
	// produce miss rates in the same regime as the analytic curve, and
	// headline metrics should agree within a factor of 2 — they are
	// calibrated models of the same machine, not independent guesses.
	p := DefaultParams()
	barnes := defaultSpec(t, "barnes")
	cfg := Config{Cores: 16, CacheKB: 64, VF: 1}
	stat, err := Evaluate(p, barnes, cfg)
	if err != nil {
		t.Fatal(err)
	}
	det, err := EvaluateDetailed(p, barnes, cfg, 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	ratio := det.HeartRate / stat.HeartRate
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("detailed/statistical heart-rate ratio = %g, want within 2x", ratio)
	}
	if det.PowerW <= 0 {
		t.Fatal("detailed power must be positive")
	}
}

func TestEvaluateDetailedCacheSizeEffect(t *testing.T) {
	p := DefaultParams()
	ocean := defaultSpec(t, "ocean")
	small, err := EvaluateDetailed(p, ocean, Config{Cores: 4, CacheKB: 16, VF: 1}, 120000, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := EvaluateDetailed(p, ocean, Config{Cores: 4, CacheKB: 256, VF: 1}, 120000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if big.MissRate >= small.MissRate {
		t.Fatalf("detailed: 256KB miss %g not below 16KB miss %g", big.MissRate, small.MissRate)
	}
	if big.HeartRate <= small.HeartRate {
		t.Fatal("detailed: bigger cache must be faster for ocean")
	}
}

func TestEvaluateDetailedRejectsTinyTrace(t *testing.T) {
	p := DefaultParams()
	if _, err := EvaluateDetailed(p, defaultSpec(t, "barnes"),
		Config{Cores: 4, CacheKB: 64, VF: 1}, 10, 1); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

// testChip builds a one-core chip with barnes attached, for regression
// tests on the ODA hot loop.
func testChip(t *testing.T) (*Chip, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock(0)
	ch, err := NewChip(DefaultParams(), Config{Cores: 1, CacheKB: 64, VF: 0}, 4, clock)
	if err != nil {
		t.Fatal(err)
	}
	ch.Attach(workload.NewInstance(defaultSpec(t, "barnes"), 1), heartbeat.New(clock))
	return ch, clock
}

// Regression: CPI < 1 made (1 - 1/CPI) negative and the float→uint64
// conversion implementation-defined, corrupting the stall counter with
// values near 2^64. Stalls must clamp at zero.
func TestUpdateTilesClampsNegativeStallFraction(t *testing.T) {
	ch, _ := testChip(t)
	m := Metrics{IPS: 1e9, CPI: 0.5, PowerW: 10, MissRate: 0.1}
	ch.updateTiles(m, 1.0)
	if got := ch.Tiles[0].Counters.Read(CtrStallCycles); got != 0 {
		t.Fatalf("stall counter = %d with CPI 0.5, want 0", got)
	}
	// Sanity: CPI > 1 still records stalls.
	ch2, _ := testChip(t)
	ch2.updateTiles(Metrics{IPS: 1e9, CPI: 2, PowerW: 10, MissRate: 0.1}, 1.0)
	if got := ch2.Tiles[0].Counters.Read(CtrStallCycles); got == 0 {
		t.Fatal("stall counter = 0 with CPI 2, want > 0")
	}
}

// Regression: PowerW below the uncore floor made perCorePower negative
// and corrupted the per-tile energy counter the same way.
func TestUpdateTilesClampsNegativePerCorePower(t *testing.T) {
	ch, _ := testChip(t)
	p := ch.Params()
	m := Metrics{IPS: 1e9, CPI: 2, PowerW: p.UncoreW / 2, MissRate: 0.1}
	ch.updateTiles(m, 1.0)
	if got := ch.Tiles[0].Counters.Read(CtrEnergyNJ); got != 0 {
		t.Fatalf("energy counter = %d with PowerW below uncore, want 0", got)
	}
	if got := ch.Tiles[0].Counters.Read(CtrStallCycles); got == 0 {
		t.Fatal("stall counter should still accumulate with CPI 2")
	}
}

// Regression: advance with IPS <= 0 (or NaN) divided by zero and moved
// the clock by ±Inf/NaN; it must error without advancing time.
func TestAdvanceRejectsNonPositiveIPS(t *testing.T) {
	for _, ips := range []float64{0, -1e9, math.NaN()} {
		ch, clock := testChip(t)
		if err := ch.advance(Metrics{IPS: ips}, 1.0); err == nil {
			t.Fatalf("advance accepted IPS %g", ips)
		}
		if clock.Now() != 0 {
			t.Fatalf("clock moved to %g on rejected IPS %g", clock.Now(), ips)
		}
	}
}

// Regression: a non-positive per-beat work target span the loop forever
// (tBeat <= 0 never reaches the interval end); it must error instead.
func TestAdvanceRejectsNonPositiveWork(t *testing.T) {
	clock := sim.NewClock(0)
	ch, err := NewChip(DefaultParams(), Config{Cores: 1, CacheKB: 64, VF: 0}, 4, clock)
	if err != nil {
		t.Fatal(err)
	}
	bad := defaultSpec(t, "barnes")
	bad.InstrPerBeat = -5 // bypasses Validate: NewInstance does not validate
	ch.Attach(workload.NewInstance(bad, 1), heartbeat.New(clock))
	if err := ch.advance(Metrics{IPS: 1e9}, 1.0); err == nil {
		t.Fatal("advance accepted non-positive work per beat")
	}
}

// RunInterval still emits beats and accounts energy after the guards.
func TestRunIntervalStillBeats(t *testing.T) {
	ch, _ := testChip(t)
	if _, err := ch.RunInterval(0.5); err != nil {
		t.Fatal(err)
	}
	if ch.Energy.EnergyJoules() <= 0 {
		t.Fatal("no energy accounted")
	}
}

package angstrom

import (
	"fmt"
	"math"

	"angstrom/internal/cache"
	"angstrom/internal/workload"
)

// CoherenceKind selects the chip's cache-coherence protocol (§4.2.2).
type CoherenceKind int

// The protocols Angstrom exposes: fixed directory, fixed shared-NUCA, or
// ARCc-style adaptive selection.
const (
	CoherenceDirectory CoherenceKind = iota
	CoherenceNUCA
	CoherenceAdaptive
)

// String implements fmt.Stringer.
func (k CoherenceKind) String() string {
	switch k {
	case CoherenceDirectory:
		return "directory"
	case CoherenceNUCA:
		return "nuca"
	case CoherenceAdaptive:
		return "arcc"
	default:
		return fmt.Sprintf("coherence(%d)", int(k))
	}
}

// Config is one hardware configuration of the chip — the joint setting
// of every actuator Angstrom exposes to SEEC.
type Config struct {
	// Cores allocated to the application (power of two up to MaxCores).
	Cores int
	// CacheKB is the enabled per-core L2 capacity.
	CacheKB int
	// VF indexes Params.VF.
	VF int
	// Coherence selects the protocol.
	Coherence CoherenceKind
	// EVC, BAN, AOR enable the corresponding NoC adaptations.
	EVC, BAN, AOR bool
}

// Params are the chip-wide constants of the Angstrom model.
type Params struct {
	// MaxCores is the physical core count (the Angstrom design point is
	// 1000+; the §5.3 evaluation uses a 256-core instance).
	MaxCores int
	// VF lists the per-core operating points.
	VF []VFPoint
	// Core is the core energy model.
	Core CoreEnergy
	// SRAM is the cache array model.
	SRAM cache.SRAM
	// RouterCycles/LinkCycles/EVCCycles: NoC hop pipeline (see noc).
	RouterCycles, LinkCycles, EVCCycles float64
	// FlitEnergyPJ is transport energy per flit-hop at nominal voltage.
	FlitEnergyPJ float64
	// MemLatencyNs and MemEnergyPJ describe off-chip DRAM access.
	MemLatencyNs float64
	MemEnergyPJ  float64
	// MemBandwidthBps is aggregate off-chip bandwidth.
	MemBandwidthBps float64
	// NoCFlitBW is the per-link mesh bandwidth in flits/cycle (the
	// noc.Config.LinkBandwidth of the chip-wide mesh); the contention
	// model derives total flit-hop capacity from it. Non-positive means
	// the default of 1.
	NoCFlitBW float64
	// UncoreW is constant chip overhead (clock spine, IO); it is also
	// the idle power subtracted by the perf/Watt metric.
	UncoreW float64
}

// DefaultParams is the 256-core-class Angstrom model used by the
// evaluation: 2012-era research-chip numbers (cf. [17, 8, 30]).
func DefaultParams() Params {
	return Params{
		MaxCores:        1024,
		VF:              VFPoints(),
		Core:            DefaultCoreEnergy(),
		SRAM:            cache.DefaultSRAM(),
		RouterCycles:    3,
		LinkCycles:      1,
		EVCCycles:       1,
		FlitEnergyPJ:    4.5,
		MemLatencyNs:    60,
		MemEnergyPJ:     20000,
		MemBandwidthBps: 51.2e9,
		NoCFlitBW:       1,
		UncoreW:         0.35,
	}
}

// Validate checks a configuration against the chip parameters.
func (p Params) Validate(cfg Config) error {
	if cfg.Cores < 1 || cfg.Cores > p.MaxCores {
		return fmt.Errorf("angstrom: %d cores outside [1,%d]", cfg.Cores, p.MaxCores)
	}
	if cfg.Cores&(cfg.Cores-1) != 0 {
		return fmt.Errorf("angstrom: core allocation %d not a power of two", cfg.Cores)
	}
	if cfg.CacheKB < 1 {
		return fmt.Errorf("angstrom: cache %d KB", cfg.CacheKB)
	}
	if cfg.VF < 0 || cfg.VF >= len(p.VF) {
		return fmt.Errorf("angstrom: VF index %d outside [0,%d)", cfg.VF, len(p.VF))
	}
	if !p.SRAM.Operational(p.VF[cfg.VF].Volts) {
		return fmt.Errorf("angstrom: SRAM not operational at %g V", p.VF[cfg.VF].Volts)
	}
	return nil
}

// Metrics is the model's output for one (workload, configuration) pair.
type Metrics struct {
	HeartRate float64 // application beats/s
	IPS       float64 // aggregate instructions/s
	PowerW    float64 // chip power
	CPI       float64 // per-core cycles per instruction
	MissRate  float64 // protocol-level miss rate per L2 access
	NetCycles float64 // average one-way network latency, cycles
	MemRho    float64 // off-chip bandwidth utilization

	// Shared-resource demand terms, the inputs of the cross-partition
	// contention model (contention.go): how hard this (workload,
	// configuration) pair pushes on the chip-wide memory bus and mesh
	// when it runs full-time at the model's IPS.
	MemBytesPerSec  float64 // off-chip traffic demand
	FlitHopsPerSec  float64 // NoC injection demand, flit-hops/s
	OffChipPerMemOp float64 // off-chip accesses per memory operation

	// Power breakdown (sums to PowerW). The closed local controllers of
	// Figure 2 optimize against their own component only.
	CoresW float64 // core dynamic + leakage, all allocated cores
	CacheW float64 // L2 dynamic + leakage, all allocated cores
	NoCW   float64 // network transport
	MemW   float64 // off-chip accesses
}

// PerfPerWatt is the paper's metric: min(achieved, target) heart rate
// per Watt beyond idle (§5.2).
func (p Params) PerfPerWatt(m Metrics, targetRate float64) float64 {
	beyond := m.PowerW - p.UncoreW
	if beyond <= 0 {
		return 0
	}
	return math.Min(m.HeartRate, targetRate) / beyond
}

// memBehavior summarizes the memory system as the model assembler needs
// it; the statistical path computes it from the workload spec, the
// detailed path measures it on real caches and a real mesh.
type memBehavior struct {
	// perMemOpStallCycles: average stall cycles per memory operation,
	// excluding off-chip time (which the assembler scales by bandwidth
	// contention).
	perMemOpStallCycles float64
	// offChipPerMemOp: off-chip accesses per memory operation.
	offChipPerMemOp float64
	// flitHopsPerInstr: network flit-hops per instruction.
	flitHopsPerInstr float64
	// missRate is the protocol-level miss ratio (for reporting).
	missRate float64
}

// netLatency returns the average one-way packet latency in cycles for a
// cfg.Cores mesh, with EVC bypass if enabled.
func (p Params) netLatency(cfg Config) float64 {
	side := int(math.Ceil(math.Sqrt(float64(cfg.Cores))))
	if side < 1 {
		side = 1
	}
	avgHops := 2.0 * float64(side) / 3.0
	if avgHops < 1 {
		avgHops = 1
	}
	fullHop := p.RouterCycles + p.LinkCycles
	if !cfg.EVC || avgHops <= 2 {
		return avgHops * fullHop
	}
	// Dimension-ordered paths turn at most once: the first hop and the
	// turn hop pay the full pipeline, the rest bypass.
	express := avgHops - 2
	return 2*fullHop + express*(p.EVCCycles+p.LinkCycles)
}

// statBehavior is the analytic memory model (statistical mode).
func (p Params) statBehavior(spec workload.Spec, cfg Config) memBehavior {
	lnet := p.netLatency(cfg)
	v := p.VF[cfg.VF].Volts
	l2 := p.SRAM.LatencyCycles(v)
	var b memBehavior
	dir := func() memBehavior {
		miss := spec.MissRate(float64(cfg.CacheKB), cfg.Cores)
		eff := spec.EffectiveWSKB(cfg.Cores)
		sharedFrac := 0.0
		if eff > 0 {
			sharedFrac = spec.SharedWSKB / eff
		}
		onChip := 0.8 * sharedFrac // shared lines are usually cached by a peer
		if cfg.Cores == 1 {
			onChip = 0
		}
		return memBehavior{
			perMemOpStallCycles: miss * (2*lnet + onChip*(lnet+l2)),
			offChipPerMemOp:     miss * (1 - onChip),
			flitHopsPerInstr:    spec.MemOpsPerInstr * miss * 6 * 2 * lnetHops(cfg),
			missRate:            miss,
		}
	}
	nuca := func() memBehavior {
		miss := spec.AggregateMissRate(float64(cfg.Cores * cfg.CacheKB))
		remote := float64(cfg.Cores-1) / float64(cfg.Cores)
		return memBehavior{
			perMemOpStallCycles: remote * 2 * lnet,
			offChipPerMemOp:     miss,
			flitHopsPerInstr:    spec.MemOpsPerInstr * remote * 6 * 2 * lnetHops(cfg),
			missRate:            miss,
		}
	}
	switch cfg.Coherence {
	case CoherenceNUCA:
		b = nuca()
	case CoherenceAdaptive:
		// ARCc measures both and keeps the cheaper, with a small
		// monitoring overhead.
		d, n := dir(), nuca()
		memCyc := p.MemLatencyNs * 1e-9 * p.VF[cfg.VF].FHz
		dc := d.perMemOpStallCycles + d.offChipPerMemOp*memCyc
		nc := n.perMemOpStallCycles + n.offChipPerMemOp*memCyc
		if nc < dc {
			b = n
		} else {
			b = d
		}
		b.perMemOpStallCycles *= 1.02
	default:
		b = dir()
	}
	// Synchronization/data-exchange traffic beyond misses.
	b.flitHopsPerInstr += spec.FlitsPerKiloInstr / 1000 * lnetHops(cfg)
	return b
}

// lnetHops is the average hop count for the allocation's mesh.
func lnetHops(cfg Config) float64 {
	side := math.Ceil(math.Sqrt(float64(cfg.Cores)))
	h := 2 * side / 3
	if h < 1 {
		h = 1
	}
	return h
}

// assemble turns a memory behaviour into chip metrics, running the
// bandwidth-contention fixed point.
func (p Params) assemble(spec workload.Spec, cfg Config, b memBehavior) Metrics {
	vf := p.VF[cfg.VF]
	f, v := vf.FHz, vf.Volts
	memCycBase := p.MemLatencyNs * 1e-9 * f
	commStall := spec.FlitsPerKiloInstr / 1000 * p.netLatency(cfg) * 0.2

	rho := 0.0
	var cpi, ips, bw float64
	for iter := 0; iter < 4; iter++ {
		memCyc := memCycBase / math.Max(1-rho, 0.05)
		cpi = 1 + spec.MemOpsPerInstr*(b.perMemOpStallCycles+b.offChipPerMemOp*memCyc) + commStall
		coreIPS := f / cpi
		ips = coreIPS * spec.ParallelSpeedup(cfg.Cores)
		bw = ips * spec.MemOpsPerInstr * b.offChipPerMemOp * float64(workload.LineBytes)
		rho = math.Min(bw/p.MemBandwidthBps, 0.95)
	}

	// Power assembly. Only allocated cores draw power (the rest are
	// power-gated); stalled cycles burn StallActivity of dynamic energy.
	// Allocated cores beyond what the workload's parallelism keeps busy
	// (Amdahl serial sections, load imbalance) sit clock-gated at the
	// spin-wait residue.
	util := 1 / cpi
	if util > 1 {
		util = 1
	}
	activity := util + p.Core.StallActivity*(1-util)
	busy := spec.ParallelSpeedup(cfg.Cores)
	const spinResidue = 0.25
	busyFrac := (busy + spinResidue*(float64(cfg.Cores)-busy)) / float64(cfg.Cores)
	coreDynW := f * p.Core.DynamicPJPerCycle(v) * 1e-12 * activity * busyFrac
	coreLeakW := p.Core.LeakW(v)
	perCoreMemOps := (f / cpi) * spec.MemOpsPerInstr
	cacheDynW := perCoreMemOps * (0.7*p.SRAM.ReadPJ(v) + 0.3*p.SRAM.WritePJ(v)) * 1e-12
	cacheLeakW := p.SRAM.LeakW(float64(cfg.CacheKB), v)

	flitHopsPerSec := ips * b.flitHopsPerInstr
	flitPJ := p.FlitEnergyPJ * (v * v) / (0.8 * 0.8)
	if cfg.EVC {
		flitPJ *= 0.8 // bypassed buffering
	}
	nocW := flitHopsPerSec * flitPJ * 1e-12
	if cfg.BAN {
		nocW *= 1.05 // allocator overhead
	}

	memAccPerSec := ips * spec.MemOpsPerInstr * b.offChipPerMemOp
	memW := memAccPerSec * p.MemEnergyPJ * 1e-12

	coresW := float64(cfg.Cores) * (coreDynW + coreLeakW)
	cachesW := float64(cfg.Cores) * (cacheDynW + cacheLeakW)
	power := coresW + cachesW + nocW + memW + p.UncoreW

	return Metrics{
		HeartRate:       ips / spec.InstrPerBeat,
		IPS:             ips,
		PowerW:          power,
		CPI:             cpi,
		MissRate:        b.missRate,
		NetCycles:       p.netLatency(cfg),
		MemRho:          rho,
		MemBytesPerSec:  bw,
		FlitHopsPerSec:  flitHopsPerSec,
		OffChipPerMemOp: b.offChipPerMemOp,
		CoresW:          coresW,
		CacheW:          cachesW,
		NoCW:            nocW,
		MemW:            memW,
	}
}

// Evaluate is the statistical (interval-analytic) chip model: fast
// enough to sweep the full configuration space of §5.3.
func Evaluate(p Params, spec workload.Spec, cfg Config) (Metrics, error) {
	if err := p.Validate(cfg); err != nil {
		return Metrics{}, err
	}
	if err := spec.Validate(); err != nil {
		return Metrics{}, err
	}
	return p.assemble(spec, cfg, p.statBehavior(spec, cfg)), nil
}

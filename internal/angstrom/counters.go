// Package angstrom models the Angstrom processor (§4): a manycore design
// whose defining property is that the hardware's sensors and adaptations
// are *exposed* rather than self-managed, so the SEEC runtime can
// coordinate hardware actions with software ones.
//
// The package provides the observation layer (memory-mapped performance
// counters, event probes, environmental sensors — §4.1), the action layer
// (per-core DVFS, reconfigurable caches, adaptive coherence and NoC —
// §4.2, built on the cache and noc packages), the partner cores that make
// decision-making cheap (§4.3), and an interval chip simulator that
// produces performance and power for any configuration of a workload —
// the substitute for the Graphite testbed of §5.3.
package angstrom

import "fmt"

// CounterID names one per-tile hardware performance counter (§4.1 lists
// the classes: memory operations, cache hits and misses, pipeline stalls,
// network flits sent/received; we add energy, which §4.1 exposes through
// the sensor file).
type CounterID int

// The counter file layout. Every counter is 64-bit and saturating-free
// (wrap is the software's problem, as in real hardware).
const (
	CtrInstructions CounterID = iota
	CtrCycles
	CtrMemOps
	CtrL2Hits
	CtrL2Misses
	CtrStallCycles
	CtrFlitsTx
	CtrFlitsRx
	CtrMemAccesses
	CtrEnergyNJ
	NumCounters
)

// String implements fmt.Stringer for reports.
func (id CounterID) String() string {
	names := [...]string{
		"instructions", "cycles", "mem_ops", "l2_hits", "l2_misses",
		"stall_cycles", "flits_tx", "flits_rx", "mem_accesses", "energy_nj",
	}
	if int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("counter(%d)", int(id))
}

// CounterFile is one tile's counter block. In hardware these are
// memory-mapped and readable by any layer of the software stack (§4.1:
// no fixed limit on simultaneously-read counters, unlike conventional
// PMUs); here that translates to: any component holding a reference may
// Read any counter at any time, with no "event selection" step.
//
// The simulator is single-goroutine, so CounterFile is unsynchronized by
// design — like the hardware, reads are just loads.
type CounterFile struct {
	v [NumCounters]uint64
}

// Read returns the current value of one counter.
func (c *CounterFile) Read(id CounterID) uint64 { return c.v[id] }

// Add increments a counter.
func (c *CounterFile) Add(id CounterID, n uint64) { c.v[id] += n }

// Snapshot copies the whole file (for delta computation by pollers).
func (c *CounterFile) Snapshot() [NumCounters]uint64 { return c.v }

// Delta returns the per-counter difference against an older snapshot.
func (c *CounterFile) Delta(prev [NumCounters]uint64) [NumCounters]uint64 {
	var d [NumCounters]uint64
	for i := range d {
		d[i] = c.v[i] - prev[i]
	}
	return d
}

// Reset zeroes the file (simulation convenience; hardware counters reset
// through a control register write, same effect).
func (c *CounterFile) Reset() { c.v = [NumCounters]uint64{} }

// Package angstrom models the Angstrom processor (§4): a manycore design
// whose defining property is that the hardware's sensors and adaptations
// are *exposed* rather than self-managed, so the SEEC runtime can
// coordinate hardware actions with software ones.
//
// The package provides the observation layer (memory-mapped performance
// counters, event probes, environmental sensors — §4.1), the action layer
// (per-core DVFS, reconfigurable caches, adaptive coherence and NoC —
// §4.2, built on the cache and noc packages), the partner cores that make
// decision-making cheap (§4.3), and an interval chip simulator that
// produces performance and power for any configuration of a workload —
// the substitute for the Graphite testbed of §5.3.
//
// The chip model executes inside journal replay and the tick's
// transcript-equality tests: the whole package is a deterministic
// scope (time flows in through sim.Time arguments, partitions iterate
// in acquisition order, never map order).
//
//angstrom:deterministic
package angstrom

import "fmt"

// CounterID names one per-tile hardware performance counter (§4.1 lists
// the classes: memory operations, cache hits and misses, pipeline stalls,
// network flits sent/received; we add energy, which §4.1 exposes through
// the sensor file).
type CounterID int

// The counter file layout. Every counter is 64-bit and saturating-free
// (wrap is the software's problem, as in real hardware).
const (
	CtrInstructions CounterID = iota
	CtrCycles
	CtrMemOps
	CtrL2Hits
	CtrL2Misses
	CtrStallCycles
	CtrFlitsTx
	CtrFlitsRx
	CtrFlitHops
	CtrMemAccesses
	CtrEnergyNJ
	NumCounters
)

// String implements fmt.Stringer for reports.
func (id CounterID) String() string {
	names := [...]string{
		"instructions", "cycles", "mem_ops", "l2_hits", "l2_misses",
		"stall_cycles", "flits_tx", "flits_rx", "flit_hops", "mem_accesses", "energy_nj",
	}
	if int(id) < len(names) {
		return names[id]
	}
	return fmt.Sprintf("counter(%d)", int(id))
}

// CounterFile is one tile's counter block. In hardware these are
// memory-mapped and readable by any layer of the software stack (§4.1:
// no fixed limit on simultaneously-read counters, unlike conventional
// PMUs); here that translates to: any component holding a reference may
// Read any counter at any time, with no "event selection" step.
//
// The simulator is single-goroutine, so CounterFile is unsynchronized by
// design — like the hardware, reads are just loads.
type CounterFile struct {
	v [NumCounters]uint64
}

// Read returns the current value of one counter.
func (c *CounterFile) Read(id CounterID) uint64 { return c.v[id] }

// Add increments a counter.
func (c *CounterFile) Add(id CounterID, n uint64) { c.v[id] += n }

// Snapshot copies the whole file (for delta computation by pollers).
func (c *CounterFile) Snapshot() [NumCounters]uint64 { return c.v }

// Delta returns the per-counter difference against an older snapshot.
func (c *CounterFile) Delta(prev [NumCounters]uint64) [NumCounters]uint64 {
	var d [NumCounters]uint64
	for i := range d {
		d[i] = c.v[i] - prev[i]
	}
	return d
}

// Reset zeroes the file (simulation convenience; hardware counters reset
// through a control register write, same effect).
func (c *CounterFile) Reset() { c.v = [NumCounters]uint64{} }

// paddedCounterFile rounds one core's counter block up to a multiple of
// the cache-line size. A bank is written by a single goroutine (the
// simulator walks cores in one loop), so the padding's job is layout
// isolation between banks: a worker's bank never straddles a line with
// a neighbouring worker's heap allocations, and the layout stays safe
// if a later PR gives each core its own simulation goroutine.
type paddedCounterFile struct {
	CounterFile
	_ [(128 - (NumCounters*8)%128) % 128]byte
}

// PerCore is a bank of per-core counter files, one padded cache-line
// region per core. The trace-driven simulator increments a core's own
// file on every access and aggregates the bank once at the end of a
// sweep — the layout that stays false-sharing-free when configurations
// are evaluated on parallel workers.
type PerCore struct {
	files []paddedCounterFile
}

// NewPerCore builds a bank for n cores.
func NewPerCore(n int) *PerCore {
	return &PerCore{files: make([]paddedCounterFile, n)}
}

// Cores reports the bank width.
func (p *PerCore) Cores() int { return len(p.files) }

// File returns core i's counter file.
func (p *PerCore) File(i int) *CounterFile { return &p.files[i].CounterFile }

// Aggregate sums the bank into one counter vector, walking cores in
// index order (deterministic regardless of how work was scheduled).
func (p *PerCore) Aggregate() [NumCounters]uint64 {
	var total [NumCounters]uint64
	for i := range p.files {
		for c, v := range p.files[i].v {
			total[c] += v
		}
	}
	return total
}

// Reset zeroes every core's file.
func (p *PerCore) Reset() {
	for i := range p.files {
		p.files[i].Reset()
	}
}

// paddedFloat is one cache-line-padded float accumulator.
type paddedFloat struct {
	v float64
	_ [120]byte
}

// PerCoreFloat is the float companion of PerCore, for quantities the
// simulator keeps in floating point (cycle latencies). Same contract:
// per-core accumulation during the run, one in-order aggregation at
// sweep end.
type PerCoreFloat struct {
	vals []paddedFloat
}

// NewPerCoreFloat builds a bank of n padded accumulators.
func NewPerCoreFloat(n int) *PerCoreFloat {
	return &PerCoreFloat{vals: make([]paddedFloat, n)}
}

// Add accumulates into core i's slot.
func (p *PerCoreFloat) Add(i int, v float64) { p.vals[i].v += v }

// Sum aggregates the bank in index order.
func (p *PerCoreFloat) Sum() float64 {
	total := 0.0
	for i := range p.vals {
		total += p.vals[i].v
	}
	return total
}

package angstrom

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

// scarceParams returns the default chip with off-chip bandwidth cut to
// the given bytes/s, so a couple of memory-heavy partitions saturate it.
func scarceParams(memBps float64) Params {
	p := DefaultParams()
	p.MemBandwidthBps = memBps
	return p
}

func acquireOn(t testing.TB, sc *SharedChip, name, wl string, cfg Config, share float64) *Partition {
	t.Helper()
	spec, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	mon := heartbeat.New(sim.NewClock(0), heartbeat.WithWindow(64))
	pt, err := sc.Acquire(name, workload.NewInstance(spec, 1), mon, cfg, share, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

// A partition running alone reproduces its isolated model evaluation
// for memory exactly and pays only its own small mesh queueing term.
func TestContentionSoloNearIdentity(t *testing.T) {
	sc, err := NewSharedChip(DefaultParams(), 64)
	if err != nil {
		t.Fatal(err)
	}
	pt := acquireOn(t, sc, "solo", "ocean", Config{Cores: 16, CacheKB: 64, VF: 1}, 1)
	before := pt.Sense()
	sc.UpdateContention()
	in := pt.Interference()
	if in.Slowdown > 1 || in.Slowdown < 0.97 {
		t.Fatalf("solo slowdown %g, want ~1 (only self mesh queueing)", in.Slowdown)
	}
	after := pt.Sense()
	if after.IPS > before.IPS+1e-9 {
		t.Fatalf("contention pass raised IPS: %g -> %g", before.IPS, after.IPS)
	}
	c := sc.Contention()
	if c.Passes != 1 || c.MemDemandBps <= 0 || c.MemRho <= 0 {
		t.Fatalf("chip snapshot %+v after one pass", c)
	}
	// The solo partition's mem demand matches its model evaluation.
	if rel := math.Abs(c.MemDemandBps-pt.Metrics().MemBytesPerSec*in.Slowdown) / c.MemDemandBps; rel > 1e-9 {
		t.Fatalf("aggregated demand %g vs model %g", c.MemDemandBps, pt.Metrics().MemBytesPerSec)
	}
}

// Two bandwidth-heavy partitions on a scarce-bandwidth chip each sense
// lower IPS than the same partition running alone, and the chip-wide
// utilization reflects both tenants.
func TestContentionCoLocationDegrades(t *testing.T) {
	cfg := Config{Cores: 16, CacheKB: 64, VF: 1}
	p := scarceParams(12e9)

	solo, err := NewSharedChip(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	ptSolo := acquireOn(t, solo, "a", "ocean", cfg, 1)
	solo.UpdateContention()
	soloIPS := ptSolo.Sense().IPS
	soloSlow := ptSolo.Interference().Slowdown

	both, err := NewSharedChip(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireOn(t, both, "a", "ocean", cfg, 1)
	b := acquireOn(t, both, "b", "ocean", cfg, 1)
	both.UpdateContention()
	for _, pt := range []*Partition{a, b} {
		in := pt.Interference()
		if in.Slowdown >= soloSlow {
			t.Fatalf("%s: co-located slowdown %g not below solo %g", pt.Name(), in.Slowdown, soloSlow)
		}
		if got := pt.Sense().IPS; got >= soloIPS {
			t.Fatalf("%s: co-located IPS %g not below solo %g", pt.Name(), got, soloIPS)
		}
		if in.MemRho <= ptSolo.Interference().MemRho {
			t.Fatalf("%s: shared mem rho %g not above solo %g", pt.Name(), in.MemRho, ptSolo.Interference().MemRho)
		}
	}
	if c := both.Contention(); c.MemRho <= solo.Contention().MemRho {
		t.Fatalf("chip mem rho %g with two tenants vs %g solo", c.MemRho, solo.Contention().MemRho)
	}
}

// Degradation slows actual execution, not just the sensor view: the
// co-located partition emits fewer beats over the same interval.
func TestContentionSlowsAdvance(t *testing.T) {
	cfg := Config{Cores: 16, CacheKB: 64, VF: 1}
	p := scarceParams(10e9)

	run := func(tenants int) uint64 {
		sc, err := NewSharedChip(p, 64)
		if err != nil {
			t.Fatal(err)
		}
		var first *Partition
		for i := 0; i < tenants; i++ {
			pt := acquireOn(t, sc, fmt.Sprintf("p%d", i), "ocean", cfg, 1)
			if i == 0 {
				first = pt
			}
		}
		sc.UpdateContention()
		for i := 0; i < tenants; i++ {
			if err := sc.parts[fmt.Sprintf("p%d", i)].Advance(5); err != nil {
				t.Fatal(err)
			}
		}
		return first.mon.Count()
	}
	soloBeats := run(1)
	coBeats := run(3)
	if coBeats >= soloBeats {
		t.Fatalf("co-located partition emitted %d beats vs %d solo", coBeats, soloBeats)
	}
}

// Time shares scale demand: a half-share tenant contributes half its
// full-rate traffic to the chip ledger.
func TestContentionShareScalesDemand(t *testing.T) {
	cfg := Config{Cores: 8, CacheKB: 64, VF: 1}
	p := DefaultParams()
	full, err := NewSharedChip(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	acquireOn(t, full, "a", "ocean", cfg, 1)
	full.UpdateContention()

	half, err := NewSharedChip(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	acquireOn(t, half, "a", "ocean", cfg, 0.5)
	half.UpdateContention()

	fullD, halfD := full.Contention().MemDemandBps, half.Contention().MemDemandBps
	if rel := math.Abs(halfD*2-fullD) / fullD; rel > 0.02 {
		t.Fatalf("half-share demand %g vs full %g (want ~half)", halfD, fullD)
	}
}

// Sense must stay allocation-free after contention passes, and the
// pass itself must not allocate in steady state (scratch reuse).
func TestContentionZeroAlloc(t *testing.T) {
	sc, err := NewSharedChip(scarceParams(10e9), 64)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireOn(t, sc, "a", "ocean", Config{Cores: 16, CacheKB: 64, VF: 1}, 1)
	acquireOn(t, sc, "b", "barnes", Config{Cores: 16, CacheKB: 64, VF: 1}, 1)
	sc.UpdateContention()
	var s float64
	if allocs := testing.AllocsPerRun(1000, func() { s += a.Sense().IPS }); allocs != 0 {
		t.Fatalf("Sense allocates %g objects per call under contention", allocs)
	}
	if allocs := testing.AllocsPerRun(100, sc.UpdateContention); allocs != 0 {
		t.Fatalf("UpdateContention allocates %g objects per pass in steady state", allocs)
	}
	_ = s
}

// Released partitions drop out of the ledger and the pass never
// resurrects them.
func TestContentionAfterRelease(t *testing.T) {
	sc, err := NewSharedChip(scarceParams(10e9), 64)
	if err != nil {
		t.Fatal(err)
	}
	a := acquireOn(t, sc, "a", "ocean", Config{Cores: 16, CacheKB: 64, VF: 1}, 1)
	acquireOn(t, sc, "b", "ocean", Config{Cores: 16, CacheKB: 64, VF: 1}, 1)
	sc.UpdateContention()
	contended := a.Interference().Slowdown
	sc.Release("b")
	sc.UpdateContention()
	if relieved := a.Interference().Slowdown; relieved <= contended {
		t.Fatalf("slowdown %g did not recover above %g after co-tenant release", relieved, contended)
	}
	if sc.LedgerFaults() != 0 {
		t.Fatalf("%d ledger faults from a clean release", sc.LedgerFaults())
	}
}

// The tile ledger under concurrent churn: Acquire/Release/SetShare and
// knob reconfiguration racing a ticking Advance and contention passes.
// The pool must never overcommit mid-churn and the ledger must never
// drift negative (LedgerFaults stays zero). Run under -race.
func TestSharedChipConcurrentChurnInvariant(t *testing.T) {
	const tiles = 32
	sc, err := NewSharedChip(DefaultParams(), tiles)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Cores: 2, CacheKB: 64, VF: 0}

	// One long-lived partition whose share and knobs churn.
	pinned := acquireOn(t, sc, "pinned", "ocean", Config{Cores: 4, CacheKB: 64, VF: 0}, 1)
	cores, cache, dvfs, err := pinned.Knobs([]int{1, 2, 4, 8}, []int{32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churn goroutines: transient acquire/release, share resizing, knob
	// moves, and contention passes.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mon := heartbeat.New(sim.NewClock(0))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("churn-%d-%d", g, i%4)
				if pt, err := sc.Acquire(name, workload.NewInstance(spec, uint64(i)), mon, base, 0.25+0.5*float64(i%2), 0); err == nil {
					_ = pt.SetShare(0.1 + 0.3*float64(i%3))
					sc.Release(name)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = cores.SetLevel(i % 4)
			_ = cache.SetLevel(i % 3)
			_ = dvfs.SetLevel(i % 2)
			_ = pinned.SetShare(0.25 + 0.25*float64(i%4))
			sc.UpdateContention()
		}
	}()
	// Invariant checker + advancing tick.
	for i := 1; i <= 200; i++ {
		if err := pinned.Advance(float64(i) * 0.005); err != nil {
			t.Fatal(err)
		}
		if _, used := sc.Usage(); used > tiles+1e-6 {
			close(stop)
			wg.Wait()
			t.Fatalf("ledger overcommitted mid-churn: %g > %d", used, tiles)
		}
		if f := sc.LedgerFaults(); f != 0 {
			close(stop)
			wg.Wait()
			t.Fatalf("%d ledger faults mid-churn", f)
		}
	}
	close(stop)
	wg.Wait()
	if f := sc.LedgerFaults(); f != 0 {
		t.Fatalf("%d ledger faults after churn", f)
	}
	if _, used := sc.Usage(); used > tiles+1e-6 {
		t.Fatalf("ledger overcommitted after churn: %g > %d", used, tiles)
	}
}

package angstrom

import (
	"math"
	"sync"
	"testing"

	"angstrom/internal/heartbeat"
	"angstrom/internal/sim"
	"angstrom/internal/workload"
)

func newSharedChip(t testing.TB, tiles int) *SharedChip {
	t.Helper()
	sc, err := NewSharedChip(DefaultParams(), tiles)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func acquire(t testing.TB, sc *SharedChip, name string, cores int, share float64) (*Partition, *heartbeat.Monitor) {
	t.Helper()
	spec, err := workload.ByName("barnes")
	if err != nil {
		t.Fatal(err)
	}
	clock := sim.NewClock(0)
	mon := heartbeat.New(clock, heartbeat.WithWindow(64))
	pt, err := sc.Acquire(name, workload.NewInstance(spec, 1), mon,
		Config{Cores: cores, CacheKB: 64, VF: 0}, share, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pt, mon
}

func TestSharedChipLedger(t *testing.T) {
	sc := newSharedChip(t, 8)
	a, _ := acquire(t, sc, "a", 4, 1)
	b, _ := acquire(t, sc, "b", 2, 1)
	if parts, used := sc.Usage(); parts != 2 || used != 6 {
		t.Fatalf("usage = %d parts, %g core-equivalents; want 2, 6", parts, used)
	}
	// Growth beyond the pool is refused; the old config survives.
	cfg := a.Config()
	cfg.Cores = 8
	if err := a.setConfig(cfg); err == nil {
		t.Fatal("8+2 cores fit an 8-tile chip")
	}
	if a.Config().Cores != 4 {
		t.Fatalf("failed resize mutated config to %d cores", a.Config().Cores)
	}
	// Halving b's time share frees core-equivalents for a to grow.
	cfgB := b.Config()
	cfgB.Cores = 1
	if err := b.setConfig(cfgB); err != nil {
		t.Fatal(err)
	}
	if err := b.SetShare(0.5); err != nil {
		t.Fatal(err)
	}
	if _, used := sc.Usage(); used != 4.5 {
		t.Fatalf("used = %g after shrink, want 4.5", used)
	}
	sc.Release("b")
	if err := a.setConfig(cfg); err != nil {
		t.Fatalf("4 core-equivalents free but 8-core resize refused: %v", err)
	}
	sc.Release("a")
	if parts, used := sc.Usage(); parts != 0 || used != 0 {
		t.Fatalf("after release: %d parts, %g used; want 0, 0", parts, used)
	}
	// Operations on a released partition fail cleanly.
	if err := a.Advance(1); err == nil {
		t.Fatal("released partition advanced")
	}
	if err := a.SetShare(0.5); err == nil {
		t.Fatal("released partition reshared")
	}
	sc.Release("nosuch") // no-op
}

func TestSharedChipAcquireValidation(t *testing.T) {
	sc := newSharedChip(t, 8)
	spec, _ := workload.ByName("barnes")
	inst := workload.NewInstance(spec, 1)
	mon := heartbeat.New(sim.NewClock(0))
	good := Config{Cores: 1, CacheKB: 64, VF: 0}
	if _, err := sc.Acquire("x", nil, mon, good, 1, 0); err == nil {
		t.Fatal("nil instance accepted")
	}
	if _, err := sc.Acquire("x", inst, nil, good, 1, 0); err == nil {
		t.Fatal("nil monitor accepted")
	}
	if _, err := sc.Acquire("x", inst, mon, Config{Cores: 3, CacheKB: 64}, 1, 0); err == nil {
		t.Fatal("non-power-of-two cores accepted")
	}
	if _, err := sc.Acquire("x", inst, mon, good, 1.5, 0); err == nil {
		t.Fatal("share > 1 accepted")
	}
	if _, err := sc.Acquire("x", inst, mon, good, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Acquire("x", inst, mon, good, 1, 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := sc.Acquire("y", inst, mon, Config{Cores: 16, CacheKB: 64}, 1, 0); err == nil {
		t.Fatal("16 cores fit 7 free tiles")
	}
}

// Advance emits beats at model-exact times: the monitor's windowed rate
// matches the model's share-scaled heart rate, with timestamps strictly
// inside the advanced interval.
func TestPartitionAdvanceEmitsModelRate(t *testing.T) {
	sc := newSharedChip(t, 16)
	pt, mon := acquire(t, sc, "a", 4, 0.5)
	want := pt.Sense().HeartRate
	if full := pt.Metrics().HeartRate; math.Abs(want-full*0.5) > 1e-9*full {
		t.Fatalf("share-scaled rate %g, model %g at share 0.5", want, full)
	}
	if err := pt.Advance(2); err != nil {
		t.Fatal(err)
	}
	obs := mon.Observe()
	if obs.Beats == 0 {
		t.Fatal("no beats after 2s")
	}
	if rel := math.Abs(obs.WindowRate-want) / want; rel > 0.25 {
		t.Fatalf("window rate %g vs model %g (%.0f%% off)", obs.WindowRate, want, rel*100)
	}
	for _, r := range mon.Window() {
		if r.Time <= 0 || r.Time > 2 {
			t.Fatalf("beat stamped at %g outside (0, 2]", r.Time)
		}
	}
	if now := pt.Now(); now != 2 {
		t.Fatalf("frontier %g after Advance(2)", now)
	}
	if err := pt.Advance(1); err != nil {
		t.Fatal(err) // no-op, never backwards
	}
	if pt.Sense().EnergyJ <= 0 {
		t.Fatal("no energy attributed")
	}
}

// Reconfiguring mid-run changes the rate going forward and keeps beat
// accounting consistent (work carry, no double emission).
func TestPartitionReconfigureMidRun(t *testing.T) {
	sc := newSharedChip(t, 16)
	pt, mon := acquire(t, sc, "a", 1, 1)
	if err := pt.Advance(1); err != nil {
		t.Fatal(err)
	}
	slowBeats := mon.Count()
	cores, cache, dvfs, err := pt.Knobs([]int{1, 2, 4, 8}, []int{32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := cores.SetLevel(3); err != nil {
		t.Fatal(err)
	}
	if err := dvfs.SetLevel(1); err != nil {
		t.Fatal(err)
	}
	if cache.Level() != 1 {
		t.Fatalf("cache level %d, want 1 (64KB)", cache.Level())
	}
	if got := pt.Config(); got.Cores != 8 || got.VF != 1 {
		t.Fatalf("config %+v after knob moves", got)
	}
	if err := pt.Advance(2); err != nil {
		t.Fatal(err)
	}
	fastBeats := mon.Count() - slowBeats
	if fastBeats <= slowBeats {
		t.Fatalf("8 cores at VF1 emitted %d beats/s vs %d at 1 core VF0", fastBeats, slowBeats)
	}
}

func TestPartitionKnobValidation(t *testing.T) {
	sc := newSharedChip(t, 16)
	pt, _ := acquire(t, sc, "a", 4, 1)
	if _, _, _, err := pt.Knobs([]int{1, 2}, []int{32, 64, 128}); err == nil {
		t.Fatal("core options missing current setting accepted")
	}
	if _, _, _, err := pt.Knobs([]int{4, 2, 1}, []int{64}); err == nil {
		t.Fatal("descending core options accepted")
	}
	cores, _, dvfs, err := pt.Knobs([]int{1, 2, 4, 8}, []int{64})
	if err != nil {
		t.Fatal(err)
	}
	if err := cores.SetLevel(9); err == nil {
		t.Fatal("out-of-range core level accepted")
	}
	if err := dvfs.SetLevel(-1); err == nil {
		t.Fatal("negative VF level accepted")
	}
	if cores.Level() != 2 || cores.Levels() != 4 {
		t.Fatalf("core knob level %d/%d", cores.Level(), cores.Levels())
	}
}

// Sense is the serving hot path: it must not allocate.
func TestSenseZeroAlloc(t *testing.T) {
	sc := newSharedChip(t, 16)
	pt, _ := acquire(t, sc, "a", 4, 1)
	var s float64
	allocs := testing.AllocsPerRun(1000, func() { s += pt.Sense().IPS })
	if allocs != 0 {
		t.Fatalf("Sense allocates %g objects per call", allocs)
	}
	_ = s
}

// The partition surface is race-clean: knob moves, shares, Sense, and
// ledger reads from many goroutines while one goroutine advances.
func TestSharedChipConcurrent(t *testing.T) {
	sc := newSharedChip(t, 64)
	pt, _ := acquire(t, sc, "a", 4, 1)
	cores, cache, dvfs, err := pt.Knobs([]int{1, 2, 4, 8, 16}, []int{32, 64, 128})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, k := range []struct {
		knob interface{ SetLevel(int) error }
	}{{cores}, {cache}, {dvfs}} {
		wg.Add(1)
		go func(set func(int) error) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = set(i % 3)
				i++
			}
		}(k.knob.SetLevel)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			pt.Sense()
			sc.Usage()
			sc.TotalPowerW()
			_ = pt.SetShare(0.5)
			_ = pt.SetShare(1)
		}
	}()
	for i := 1; i <= 100; i++ {
		if err := pt.Advance(float64(i) * 0.01); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, used := sc.Usage(); used > 64 {
		t.Fatalf("ledger overdrawn: %g > 64", used)
	}
}

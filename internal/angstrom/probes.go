package angstrom

import (
	"fmt"

	"angstrom/internal/sim"
)

// CompareOp is an event-probe comparator operation (§4.1: "equal, less
// than, greater than and their logical inverses").
type CompareOp int

// The six comparator operations.
const (
	OpEQ CompareOp = iota
	OpNE
	OpLT
	OpGE // inverse of LT
	OpGT
	OpLE // inverse of GT
)

// String implements fmt.Stringer.
func (op CompareOp) String() string {
	switch op {
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpGE:
		return ">="
	case OpGT:
		return ">"
	case OpLE:
		return "<="
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// Event is one probe match record.
type Event struct {
	Time    sim.Time
	Counter CounterID
	Value   uint64
}

// EventQueue is the "small hardware queue" a probe can feed (§4.1).
// When full, new records are dropped and counted — back-pressuring the
// processor would be worse than losing monitoring data.
type EventQueue struct {
	ring    []Event
	head    int
	n       int
	dropped uint64
}

// NewEventQueue builds a queue with the given capacity.
func NewEventQueue(capacity int) (*EventQueue, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("angstrom: event queue capacity %d", capacity)
	}
	return &EventQueue{ring: make([]Event, capacity)}, nil
}

// Push appends an event, dropping it if the queue is full.
func (q *EventQueue) Push(e Event) {
	if q.n == len(q.ring) {
		q.dropped++
		return
	}
	q.ring[(q.head+q.n)%len(q.ring)] = e
	q.n++
}

// Pop removes the oldest event.
func (q *EventQueue) Pop() (Event, bool) {
	if q.n == 0 {
		return Event{}, false
	}
	e := q.ring[q.head]
	q.head = (q.head + 1) % len(q.ring)
	q.n--
	return e, true
}

// Len reports queued events; Dropped reports lost ones.
func (q *EventQueue) Len() int { return q.n }

// Dropped reports how many events were lost to overflow.
func (q *EventQueue) Dropped() uint64 { return q.dropped }

// Probe is one event probe (§4.1): a trigger register, a programmable
// comparator with a bit mask, and an action — either an interrupt
// (callback) or an event record pushed to a hardware queue.
//
// Matches are edge-triggered: the probe fires when the masked comparison
// transitions from false to true, mirroring hardware that raises one
// interrupt per event rather than one per cycle the condition holds.
type Probe struct {
	Counter CounterID
	Op      CompareOp
	Trigger uint64
	// Mask selects compared bits; zero means "all bits" for ergonomics.
	Mask uint64
	// Interrupt, if non-nil, is invoked on a match.
	Interrupt func(Event)
	// Queue, if non-nil, receives a record on a match.
	Queue *EventQueue

	armed bool // true when the condition was false at last evaluation
}

// Validate checks the probe's configuration.
func (p *Probe) Validate() error {
	if p.Counter < 0 || p.Counter >= NumCounters {
		return fmt.Errorf("angstrom: probe on unknown counter %d", p.Counter)
	}
	if p.Interrupt == nil && p.Queue == nil {
		return fmt.Errorf("angstrom: probe with no action")
	}
	return nil
}

func (p *Probe) matches(v uint64) bool {
	mask := p.Mask
	if mask == 0 {
		mask = ^uint64(0)
	}
	a, b := v&mask, p.Trigger&mask
	switch p.Op {
	case OpEQ:
		return a == b
	case OpNE:
		return a != b
	case OpLT:
		return a < b
	case OpGE:
		return a >= b
	case OpGT:
		return a > b
	case OpLE:
		return a <= b
	default:
		return false
	}
}

// ProbeSet is the per-tile collection of probes, evaluated against the
// tile's counter file whenever the simulator advances.
type ProbeSet struct {
	probes []*Probe
}

// Attach validates and adds a probe.
func (s *ProbeSet) Attach(p *Probe) error {
	if err := p.Validate(); err != nil {
		return err
	}
	p.armed = true
	s.probes = append(s.probes, p)
	return nil
}

// Evaluate runs every comparator against the counter file, firing
// edge-triggered actions.
func (s *ProbeSet) Evaluate(cf *CounterFile, now sim.Time) {
	for _, p := range s.probes {
		v := cf.Read(p.Counter)
		m := p.matches(v)
		if m && p.armed {
			e := Event{Time: now, Counter: p.Counter, Value: v}
			if p.Interrupt != nil {
				p.Interrupt(e)
			}
			if p.Queue != nil {
				p.Queue.Push(e)
			}
		}
		p.armed = !m
	}
}

// Len reports the number of attached probes.
func (s *ProbeSet) Len() int { return len(s.probes) }
